// Domain example: real finite-automata motif search over a synthetic genome,
// using the full engine stack (IUPAC regex -> NFA -> DFA -> minimization ->
// chunk-parallel matching) and the heterogeneous executor to split the scan
// between the "host" and the emulated "device" exactly as the tuned
// configuration dictates.
//
// Run:  ./dna_search [--genome=human] [--mb=64] [--host-percent=60]
//                    [--motif=TATAWAW --motif2=GGGNCC]
#include <iostream>

#include "automata/hopcroft.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "core/executor.hpp"
#include "dna/catalog.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("human"));
  const double mb = args.get("mb", 64.0);
  const double host_percent = args.get("host-percent", 60.0);
  const std::vector<std::string> motifs{
      args.get("motif", std::string("TATAWAW")),   // TATA box (IUPAC W = A/T)
      args.get("motif2", std::string("GGGCGG")),   // GC box (Sp1 site)
  };

  std::cout << "Compiling motifs:";
  for (const auto& m : motifs) std::cout << ' ' << m;
  std::cout << '\n';
  const auto compiled = automata::compile_motifs(motifs);
  automata::DenseDfa dfa =
      automata::determinize(compiled.nfa, compiled.synchronization_bound);
  const std::uint32_t before = dfa.state_count();
  dfa = automata::minimize(dfa);
  std::cout << "  DFA: " << before << " states -> " << dfa.state_count()
            << " after Hopcroft minimization; synchronization bound "
            << dfa.synchronization_bound() << " bp\n";

  const dna::GenomeCatalog catalog;
  std::cout << "Generating " << mb << " MB of synthetic " << genome << " sequence...\n";
  const auto bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);
  const dna::Sequence seq = catalog.materialize(genome, bytes);

  core::HeterogeneousExecutor exec(dfa, /*host_threads=*/8, /*device_threads=*/8);
  util::Timer timer;
  const core::ExecutionReport report = exec.run(seq.view(), host_percent);
  const double wall = timer.seconds();

  std::cout << "Scan complete in " << wall << " s ("
            << mb / wall << " MB/s overlapped)\n"
            << "  host share:   " << report.host_bytes << " bytes, "
            << report.host_matches << " motif hits, " << report.host_seconds << " s\n"
            << "  device share: " << report.device_bytes << " bytes, "
            << report.device_matches << " motif hits, " << report.device_seconds << " s\n"
            << "  total motif occurrences: " << report.total_matches() << "\n";

  // Cross-check against a plain sequential scan.
  const std::uint64_t sequential = automata::count_matches(dfa, seq.view());
  std::cout << "  sequential verification: " << sequential
            << (sequential == report.total_matches() ? "  [OK]" : "  [MISMATCH!]") << '\n';
  return sequential == report.total_matches() ? 0 : 1;
}
