// Domain example: real finite-automata motif search over a synthetic genome,
// using the full engine stack (IUPAC regex -> NFA -> DFA -> minimization ->
// chunk-parallel matching) — with the work distribution chosen by *tuning
// the live code*: a TuningSession drives the RealWorkloadEvaluator, which
// times actual scans of the materialized genome, then the winning
// configuration runs once more through the heterogeneous executor.
//
// Run:  ./dna_search [--genome=human] [--mb=8] [--budget=40]
//                    [--motif=TATAWAW] [--motif2=GGGCGG]
#include <algorithm>
#include <iostream>
#include <memory>

#include "core/hetopt.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("human"));
  const double mb = args.get("mb", 8.0);
  const std::int64_t budget_raw = args.get("budget", std::int64_t{40});
  if (!(mb > 0.0) || budget_raw < 1) {
    std::cerr << "dna_search: --mb must be > 0 and --budget >= 1\n";
    return 2;
  }
  const auto budget = static_cast<std::size_t>(budget_raw);
  const std::vector<std::string> motifs{
      args.get("motif", std::string("TATAWAW")),   // TATA box (IUPAC W = A/T)
      args.get("motif2", std::string("GGGCGG")),   // GC box (Sp1 site)
  };

  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  std::cout << "Compiling motifs:";
  for (const auto& m : motifs) std::cout << ' ' << m;
  std::cout << '\n';

  // Materialize `mb` megabytes of physical sequence for the logical workload,
  // widening the evaluator's default clamps so --mb is honored exactly.
  const auto requested_bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);
  core::RealWorkloadOptions options;
  options.motifs = motifs;
  options.bytes_per_logical_mb = mb * 1024.0 * 1024.0 / info.size_mb;
  options.min_physical_bytes = std::min(options.min_physical_bytes, requested_bytes);
  options.max_physical_bytes = std::max(options.max_physical_bytes, requested_bytes);
  const auto evaluator = std::make_shared<core::RealWorkloadEvaluator>(catalog, options);

  std::cout << "Generating " << mb << " MB of synthetic " << genome << " sequence...\n";
  const core::RealWorkload& real = evaluator->real(workload);
  std::cout << "  DFA: " << real.dfa().state_count() << " states, synchronization bound "
            << real.dfa().synchronization_bound() << " bp; sequential match count "
            << real.sequential_matches() << '\n';

  // Tune the live matcher: simulated annealing over the machine-sized space,
  // every candidate priced by a real timed scan.
  core::TuningSession session(opt::ConfigSpace::real());
  session.with_strategy("annealing")
      .with_evaluator(evaluator)
      .with_budget(budget + 1)
      .with_seed(42);
  std::cout << "Tuning the live matcher (" << budget << " timed iterations)...\n";
  const core::SessionReport tuned = session.run(workload);
  std::cout << "  chose " << opt::to_string(tuned.config) << " after " << tuned.evaluations
            << " real experiments\n";

  // Execute the winner once more, reporting both halves of the split.
  core::HeterogeneousExecutor exec(
      real.dfa(), static_cast<std::size_t>(tuned.config.host_threads),
      static_cast<std::size_t>(tuned.config.device_threads), tuned.config.host_affinity,
      tuned.config.device_affinity);
  util::Timer timer;
  const core::ExecutionReport report = exec.run(real.text(), tuned.config.host_percent);
  const double wall = timer.seconds();

  std::cout << "Scan complete in " << wall << " s (" << real.physical_mb() / wall
            << " MB/s overlapped)\n"
            << "  " << report.to_string() << "\n"
            << "  host share:   " << report.host_bytes << " bytes, "
            << report.host_matches << " motif hits\n"
            << "  device share: " << report.device_bytes << " bytes, "
            << report.device_matches << " motif hits\n";

  // Cross-check against the plain sequential scan.
  const std::uint64_t sequential = real.sequential_matches();
  std::cout << "  sequential verification: " << sequential
            << (sequential == report.total_matches() ? "  [OK]" : "  [MISMATCH!]") << '\n';
  return sequential == report.total_matches() ? 0 : 1;
}
