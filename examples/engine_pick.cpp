// Domain example: let the tuner pick the *scan engine*, not just the thread
// layout. Two contrasting motif sets are tuned with the engine axis enabled:
//
//   few long literals     a couple of 14-bp exact sites — every engine
//                         qualifies (compiled DFA, Aho–Corasick, bitap);
//   many short IUPAC      six ambiguous motifs — Aho–Corasick is out
//                         (it needs literal ACGT), bitap still fits in its
//                         64 state bits.
//
// For each set the example materializes a genome, reports which engines the
// motif set qualifies for (and why the others are skipped), runs an
// exhaustive search over a small engine-enabled space where every candidate
// is priced by a real timed scan, and prints the engine inside the winning
// configuration.
//
// Run:  ./engine_pick [--genome=human] [--mb=4] [--fast]
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/hetopt.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("human"));
  const double mb = args.get("mb", 4.0);
  // --fast swaps wall-clock for the deterministic work model (CI-friendly).
  const bool fast = args.flag("fast");
  if (!(mb > 0.0)) {
    std::cerr << "engine_pick: --mb must be > 0\n";
    return 2;
  }

  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  struct MotifSet {
    const char* label;
    std::vector<std::string> motifs;
  };
  const std::vector<MotifSet> sets = {
      {"few long literals", {"GATTACAGATTACA", "CCCGGGTTTAAACC"}},
      {"many short IUPAC motifs",
       {"TATAWAW", "GGNCC", "CCWGG", "RRYYRR", "ACGTN", "TTSAA"}},
  };

  int status = 0;
  for (const MotifSet& set : sets) {
    std::cout << "=== " << set.label << " ===\n  motifs:";
    for (const std::string& m : set.motifs) std::cout << ' ' << m;
    std::cout << '\n';

    const auto requested_bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);
    core::RealWorkloadOptions options;
    options.motifs = set.motifs;
    options.bytes_per_logical_mb = mb * 1024.0 * 1024.0 / info.size_mb;
    options.min_physical_bytes = std::min(options.min_physical_bytes, requested_bytes);
    options.max_physical_bytes = std::max(options.max_physical_bytes, requested_bytes);
    options.deterministic_timing = fast;
    const auto evaluator = std::make_shared<core::RealWorkloadEvaluator>(catalog, options);
    const core::RealWorkload& real = evaluator->real(workload);

    std::cout << "  " << util::format_double(real.physical_mb(), 1) << " MB of synthetic "
              << genome << ", " << real.sequential_matches() << " motif hits\n";
    for (const automata::EngineKind kind : automata::kAllEngineKinds) {
      if (real.find_engine(kind) != nullptr) {
        std::cout << "  engine " << automata::to_string(kind) << ": available\n";
      } else {
        std::cout << "  engine " << automata::to_string(kind) << ": skipped ("
                  << real.engine_gap(kind) << ")\n";
      }
    }

    // A small space — the interesting axis here is the engine — searched
    // exhaustively so the winner is the measured optimum, not a sample.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const std::vector<int> threads =
        hw > 1 ? std::vector<int>{1, static_cast<int>(hw)} : std::vector<int>{1};
    const opt::ConfigSpace space(
        threads, {parallel::HostAffinity::kNone}, threads,
        {parallel::DeviceAffinity::kBalanced}, {0.0, 50.0, 100.0}, real.engines());

    core::TuningSession session(space);
    session.with_strategy("exhaustive")
        .with_evaluator(evaluator)
        .with_budget(space.size())
        .with_seed(42);
    std::cout << "  tuning over " << space.size() << " configurations ("
              << real.engines().size() << " engines x threads x fractions)...\n";
    const core::SessionReport tuned = session.run(workload);

    const core::RealMeasurement best = evaluator->measure(tuned.config, workload);
    std::cout << "  winner: " << opt::to_string(tuned.config) << "\n"
              << "  -> the tuner picked the '" << automata::to_string(tuned.config.engine)
              << "' engine (" << util::format_double(best.throughput_mb_s, 0)
              << " MB/s, " << best.matches << " matches)\n";
    if (best.matches != real.sequential_matches()) {
      std::cout << "  [MISMATCH vs sequential scan!]\n";
      status = 1;
    }
  }
  return status;
}
