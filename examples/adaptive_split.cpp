// Domain example: let the tuner pick the *work-distribution schedule*, not
// just the thread layout. The schedule axis is enabled (static / dynamic /
// guided / adaptive) and an exhaustive search prices every candidate by a
// real timed scan of a materialized genome — so the winner is the measured
// optimum, including *how* chunks reach the two pools.
//
// The winning configuration is then executed once more through the
// heterogeneous executor, and the run's ExecutionReport is printed: under
// the shared-queue schedules the realized host fraction is an *outcome*
// (it emerges from chunk stealing at runtime), so the example closes by
// comparing it with the configured fraction.
//
// Run:  ./adaptive_split [--genome=human] [--mb=4] [--fast]
#include <algorithm>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/hetopt.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("human"));
  const double mb = args.get("mb", 4.0);
  // --fast swaps wall-clock for the deterministic work model (CI-friendly).
  const bool fast = args.flag("fast");
  if (!(mb > 0.0)) {
    std::cerr << "adaptive_split: --mb must be > 0\n";
    return 2;
  }

  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  const auto requested_bytes = static_cast<std::size_t>(mb * 1024.0 * 1024.0);
  core::RealWorkloadOptions options;
  options.bytes_per_logical_mb = mb * 1024.0 * 1024.0 / info.size_mb;
  options.min_physical_bytes = std::min(options.min_physical_bytes, requested_bytes);
  options.max_physical_bytes = std::max(options.max_physical_bytes, requested_bytes);
  options.deterministic_timing = fast;
  const auto evaluator = std::make_shared<core::RealWorkloadEvaluator>(catalog, options);
  const core::RealWorkload& real = evaluator->real(workload);

  std::cout << "Tuning the work distribution for "
            << util::format_double(real.physical_mb(), 1) << " MB of synthetic "
            << genome << " (" << real.sequential_matches() << " motif hits)\n";

  // A small thread/fraction grid with the full schedule axis — the
  // interesting dimension here is *how* the bytes reach the pools.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::vector<int> threads =
      hw > 1 ? std::vector<int>{1, static_cast<int>(hw)} : std::vector<int>{1};
  const opt::ConfigSpace space =
      opt::ConfigSpace(threads, {parallel::HostAffinity::kNone}, threads,
                       {parallel::DeviceAffinity::kBalanced},
                       {0.0, 25.0, 50.0, 75.0, 100.0})
          .with_schedules({parallel::SchedulePolicy::kStatic,
                           parallel::SchedulePolicy::kDynamic,
                           parallel::SchedulePolicy::kGuided,
                           parallel::SchedulePolicy::kAdaptive});

  core::TuningSession session(space);
  session.with_strategy("exhaustive")
      .with_evaluator(evaluator)
      .with_budget(space.size())
      .with_seed(42);
  std::cout << "  searching " << space.size() << " configurations ("
            << space.schedules().size() << " schedules x threads x fractions)...\n";
  const core::SessionReport tuned = session.run(workload);

  std::cout << "  winner: " << opt::to_string(tuned.config) << "\n"
            << "  -> the tuner picked the '"
            << parallel::to_string(tuned.config.schedule) << "' schedule\n";

  // Execute the winner once more and show the distribution runtime's view.
  core::HeterogeneousExecutor executor(
      real.engine(tuned.config.engine),
      static_cast<std::size_t>(tuned.config.host_threads),
      static_cast<std::size_t>(tuned.config.device_threads));
  const core::ExecutionReport report =
      executor.run(real.text(), tuned.config.host_percent, 0, 0, tuned.config.schedule);
  std::cout << "  " << report.to_string() << "\n"
            << "  realized host fraction "
            << util::format_trimmed(report.realized_host_percent, 1)
            << "% vs configured " << util::format_trimmed(tuned.config.host_percent, 1)
            << "% (" << report.host_steals << " host / " << report.device_steals
            << " device chunks stolen)\n";

  const bool ok = report.total_matches() == real.sequential_matches();
  std::cout << "  sequential verification: " << real.sequential_matches()
            << (ok ? "  [OK]" : "  [MISMATCH!]") << '\n';
  return ok ? 0 : 1;
}
