// Domain example: the paper's future-work scenario — a node with several
// accelerators. Shows the work-distribution problem generalized from one
// fraction to a share vector, solved by the water-filling balancer, and how
// the optimal shares react when one card sits behind a degraded link.
//
// Run:  ./multi_accelerator [--mb=3170] [--devices=4]
#include <iostream>

#include "sim/multi.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const double mb = args.get("mb", 3170.0);
  const auto devices = static_cast<std::size_t>(args.get("devices", std::int64_t{4}));
  constexpr auto kScatter = parallel::HostAffinity::kScatter;

  // Homogeneous node: N identical Phi cards.
  const sim::MultiDeviceMachine homogeneous = sim::emil_with_phis(devices);
  const sim::ShareVector balanced = homogeneous.balance(mb, 48, kScatter);
  const sim::ShareVector equal = homogeneous.equal_split(mb, 48, kScatter);

  std::cout << "Node: 2x Xeon E5 host + " << devices << "x Xeon Phi, input " << mb
            << " MB\n"
            << "  water-filling: makespan " << util::format_double(balanced.makespan_s, 3)
            << " s, host " << util::format_double(balanced.host_percent, 1)
            << "%, each device "
            << util::format_double(devices ? balanced.device_percent[0] : 0.0, 1) << "%\n"
            << "  equal split:   makespan " << util::format_double(equal.makespan_s, 3)
            << " s  ("
            << util::format_double(
                   100.0 * (equal.makespan_s - balanced.makespan_s) / balanced.makespan_s, 1)
            << "% worse)\n\n";

  // Heterogeneous node: same cards, but one sits behind a quarter-speed link
  // (e.g. a contended PCIe switch). Watch its share shrink.
  const sim::MachineSpec base = sim::emil_spec();
  std::vector<sim::DeviceContext> mixed;
  for (std::size_t i = 0; i < devices; ++i) {
    sim::DeviceContext d;
    d.spec = base.device;
    d.offload = base.offload;
    if (i == 0) d.offload.pcie_gbps /= 4.0;
    d.threads = d.spec.max_threads();
    mixed.push_back(d);
  }
  const sim::MultiDeviceMachine hetero(base.host, std::move(mixed));
  const sim::ShareVector hshares = hetero.balance(mb, 48, kScatter);

  util::Table table("Heterogeneous node: device 0 behind a 1/4-speed PCIe link");
  table.header({"Participant", "Share", "Completion time [s]"});
  table.row({"host (48t scatter)", util::format_double(hshares.host_percent, 1) + "%",
             util::format_double(
                 hetero.host_time(mb * hshares.host_percent / 100.0, 48, kScatter), 3)});
  for (std::size_t i = 0; i < devices; ++i) {
    table.row({"device " + std::to_string(i) + (i == 0 ? " (slow link)" : ""),
               util::format_double(hshares.device_percent[i], 1) + "%",
               util::format_double(
                   hetero.device_time(i, mb * hshares.device_percent[i] / 100.0), 3)});
  }
  table.note("all participants finish together; the slow-link card automatically "
             "receives less work");
  table.print(std::cout);
  return 0;
}
