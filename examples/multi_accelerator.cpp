// Domain example: the paper's future-work scenario — a node with several
// accelerators — tuned end-to-end through the same TuningSession API as the
// single-device methods. A MultiDeviceMeasurementEvaluator prices each
// (threads, affinity, host-fraction) candidate by water-filling the device
// share across the cards, so the search simultaneously picks the host
// threading AND how much of the input the host should keep. A second node
// with one card behind a degraded PCIe link shows the shares adapting.
//
// Run:  ./multi_accelerator [--mb=3170] [--devices=4] [--strategy=annealing]
//                           [--budget=800]
#include <iostream>
#include <memory>

#include "core/hetopt.hpp"
#include "sim/multi.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

/// Tunes the node through a TuningSession and prints the resulting
/// distribution, one row per participant.
void tune_and_report(const std::string& title, const hetopt::sim::MultiDeviceMachine& node,
                     const hetopt::core::Workload& workload, const std::string& strategy,
                     std::size_t budget) {
  using namespace hetopt;

  const auto evaluator = std::make_shared<core::MultiDeviceMeasurementEvaluator>(node);
  core::TuningSession session(opt::ConfigSpace::paper());
  session.with_strategy(strategy).with_evaluator(evaluator).with_budget(budget).with_seed(42);
  const core::SessionReport r = session.run(workload);
  const sim::ShareVector shares = evaluator->shares(r.config, workload);

  util::Table table(title);
  table.header({"Participant", "Share", "Completion time [s]"});
  table.row({"host (" + std::to_string(r.config.host_threads) + "t " +
                 std::string(parallel::to_string(r.config.host_affinity)) + ")",
             util::format_double(shares.host_percent, 1) + "%",
             util::format_double(
                 node.host_time(workload.size_mb * shares.host_percent / 100.0,
                                r.config.host_threads, r.config.host_affinity),
                 3)});
  for (std::size_t i = 0; i < node.device_count(); ++i) {
    const double t = node.device_time(i, workload.size_mb * shares.device_percent[i] / 100.0,
                                      r.config.device_threads, r.config.device_affinity);
    table.row({"device " + std::to_string(i),
               util::format_double(shares.device_percent[i], 1) + "%",
               util::format_double(t, 3)});
  }
  table.note("tuned with strategy \"" + r.strategy + "\" x evaluator \"" + r.evaluator +
             "\": " + std::to_string(r.evaluations) + " evaluations, makespan " +
             util::format_double(r.measured_time, 3) + " s, config " +
             opt::to_string(r.config));
  table.print(std::cout);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const double mb = args.get("mb", 3170.0);
  const auto devices = static_cast<std::size_t>(args.get("devices", std::int64_t{4}));
  const std::string strategy = args.get("strategy", std::string("annealing"));
  const auto budget = static_cast<std::size_t>(args.get("budget", std::int64_t{800}));
  constexpr auto kScatter = parallel::HostAffinity::kScatter;

  const core::Workload workload("genome", mb);

  // Homogeneous node: the water-filling bound vs the naive equal split.
  const sim::MultiDeviceMachine homogeneous = sim::emil_with_phis(devices);
  const sim::ShareVector balanced = homogeneous.balance(mb, 48, kScatter);
  const sim::ShareVector equal = homogeneous.equal_split(mb, 48, kScatter);
  std::cout << "Node: 2x Xeon E5 host + " << devices << "x Xeon Phi, input " << mb
            << " MB\n"
            << "  water-filling (48t scatter host): makespan "
            << util::format_double(balanced.makespan_s, 3) << " s, host "
            << util::format_double(balanced.host_percent, 1) << "%\n"
            << "  equal split:                      makespan "
            << util::format_double(equal.makespan_s, 3) << " s  ("
            << util::format_double(
                   100.0 * (equal.makespan_s - balanced.makespan_s) / balanced.makespan_s, 1)
            << "% worse)\n\n";

  // End-to-end tuning: the session searches host threads, affinities and the
  // host fraction at once; the evaluator water-fills the rest per candidate.
  tune_and_report("Tuned homogeneous node (" + std::to_string(devices) + " devices)",
                  homogeneous, workload, strategy, budget);

  // Heterogeneous node: same cards, but one sits behind a quarter-speed link
  // (e.g. a contended PCIe switch). Watch its share shrink.
  const sim::MachineSpec base = sim::emil_spec();
  std::vector<sim::DeviceContext> mixed;
  for (std::size_t i = 0; i < devices; ++i) {
    sim::DeviceContext d;
    d.spec = base.device;
    d.offload = base.offload;
    if (i == 0) d.offload.pcie_gbps /= 4.0;
    d.threads = d.spec.max_threads();
    mixed.push_back(d);
  }
  const sim::MultiDeviceMachine hetero(base.host, std::move(mixed));
  tune_and_report("Tuned heterogeneous node (device 0 behind a 1/4-speed PCIe link)", hetero,
                  workload, strategy, budget);
  return 0;
}
