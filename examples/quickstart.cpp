// Quickstart: tune the work distribution of a DNA-analysis workload on the
// simulated Xeon E5 + Xeon Phi platform, exactly the paper's SAML flow —
// through the composable TuningSession API.
//
//   1. Build the platform (sim::emil_machine) and the Table I space.
//   2. Run the 7200-experiment training sweep and fit the boosted-tree
//      predictor (one-off; afterwards any workload is tuned by prediction).
//   3. Ask the SAML preset (AnnealingSearch x PredictionEvaluator) for a
//      near-optimal configuration with a 1000-iteration budget (~5% of what
//      enumeration would need).
//
// Run:  ./quickstart [--genome=human] [--iterations=1000]
#include <iostream>

#include "core/hetopt.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("human"));
  const auto iterations = static_cast<std::size_t>(args.get("iterations", std::int64_t{1000}));

  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  const sim::Machine machine = sim::emil_machine();
  const opt::ConfigSpace space = opt::ConfigSpace::paper();

  std::cout << "Training the performance predictor (7200 experiments, one-off)...\n";
  const core::TrainingData data = core::generate_training_data(
      machine, catalog, core::TrainingSweepOptions::paper());
  core::PerformancePredictor predictor;
  predictor.train(data.host, data.device);
  std::cout << "  trained on " << data.host.size() + data.device.size() << " experiments\n\n";

  core::TuningSession session =
      core::TuningSession::preset(core::Method::kSAML, machine, space, &predictor, iterations);
  const core::SessionReport result = session.run(workload);
  const core::MethodResult host_only = core::host_only_baseline(space, machine, workload);
  const core::MethodResult device_only = core::device_only_baseline(space, machine, workload);

  std::cout << "Workload: " << workload.name << " (" << workload.size_mb << " MB)\n"
            << result.strategy << " x " << result.evaluator << " recommendation after "
            << iterations << " iterations: " << opt::to_string(result.config) << "\n"
            << "  predicted time: " << result.search_energy << " s\n"
            << "  measured  time: " << result.measured_time << " s\n"
            << "  host-only (48t): " << host_only.measured_time << " s  ("
            << host_only.measured_time / result.measured_time << "x slower)\n"
            << "  device-only (240t): " << device_only.measured_time << " s  ("
            << device_only.measured_time / result.measured_time << "x slower)\n"
            << "  search evaluations: " << result.evaluations << " (vs " << space.size()
            << " for enumeration)\n";
  return 0;
}
