// Domain example: "what if" platform studies, something the real testbed
// cannot do — clone the machine model, change the hardware (slower PCIe,
// more device cores, weaker host), re-tune, and see how the optimal work
// distribution shifts. Demonstrates the simulator's value beyond pure
// reproduction. Each variant is tuned through the same TuningSession
// (ExhaustiveSearch x MeasurementEvaluator = the EM preset) that the real
// pipeline uses, over a space clamped to the variant's feasible threads.
//
// Run:  ./whatif_platform [--genome=human]
#include <iostream>
#include <memory>

#include "core/hetopt.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hetopt;

struct Variant {
  std::string name;
  sim::MachineSpec spec;
};

/// The paper space with thread axes restricted to what `spec` can run (an
/// 8-core host cannot run 48 threads; the objective throws on infeasible
/// counts, so the space is clamped instead).
opt::ConfigSpace feasible_space(const sim::MachineSpec& spec) {
  const opt::ConfigSpace paper = opt::ConfigSpace::paper();
  std::vector<int> host;
  for (const int t : paper.host_threads()) {
    if (t <= spec.host.max_threads()) host.push_back(t);
  }
  std::vector<int> device;
  for (const int t : paper.device_threads()) {
    if (t <= spec.device.max_threads()) device.push_back(t);
  }
  return opt::ConfigSpace(std::move(host), paper.host_affinities(), std::move(device),
                          paper.device_affinities(), paper.fractions());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("human"));
  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  std::vector<Variant> variants;
  variants.push_back({"baseline (Emil)", sim::emil_spec()});
  {
    sim::MachineSpec s = sim::emil_spec();
    s.offload.pcie_gbps /= 4.0;  // PCIe gen1-era link
    variants.push_back({"slow PCIe (/4)", s});
  }
  {
    sim::MachineSpec s = sim::emil_spec();
    s.device.per_thread_gbps *= 2.0;  // next-gen accelerator
    variants.push_back({"2x faster device", s});
  }
  {
    sim::MachineSpec s = sim::emil_spec();
    s.host.cores = 8;  // small workstation host (16 HW threads)
    variants.push_back({"8-core host", s});
  }
  {
    sim::MachineSpec s = sim::emil_spec();
    s.offload.launch_latency_s = 0.5;  // pathological offload runtime
    variants.push_back({"0.5s launch latency", s});
  }

  util::Table table("What-if platform study: EM-optimal distribution for " +
                    workload.name);
  table.header({"Platform variant", "Best time [s]", "Host share", "Configuration"});
  for (const Variant& v : variants) {
    core::TuningSession session(feasible_space(v.spec));
    session.with_strategy("exhaustive")
        .with_evaluator(std::make_shared<core::MeasurementEvaluator>(sim::Machine{v.spec}));
    const core::SessionReport result = session.run(workload);
    table.row({v.name, util::format_double(result.measured_time, 3),
               util::format_double(result.config.host_percent, 1) + "%",
               opt::to_string(result.config)});
  }
  table.note("shifting hardware moves the optimal fraction: slower PCIe / launch "
             "pushes work to the host; faster device or weaker host pushes it out");
  table.print(std::cout);
  return 0;
}
