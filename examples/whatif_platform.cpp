// Domain example: "what if" platform studies, something the real testbed
// cannot do — clone the machine model, change the hardware (slower PCIe,
// more device cores, weaker host), re-tune, and see how the optimal work
// distribution shifts. Demonstrates the simulator's value beyond pure
// reproduction.
//
// Run:  ./whatif_platform [--genome=human]
#include <iostream>

#include "core/hetopt.hpp"
#include "opt/enumeration.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace hetopt;

struct Variant {
  std::string name;
  sim::MachineSpec spec;
};

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("human"));
  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  std::vector<Variant> variants;
  variants.push_back({"baseline (Emil)", sim::emil_spec()});
  {
    sim::MachineSpec s = sim::emil_spec();
    s.offload.pcie_gbps /= 4.0;  // PCIe gen1-era link
    variants.push_back({"slow PCIe (/4)", s});
  }
  {
    sim::MachineSpec s = sim::emil_spec();
    s.device.per_thread_gbps *= 2.0;  // next-gen accelerator
    variants.push_back({"2x faster device", s});
  }
  {
    sim::MachineSpec s = sim::emil_spec();
    s.host.cores = 8;  // small workstation host (16 HW threads)
    variants.push_back({"8-core host", s});
  }
  {
    sim::MachineSpec s = sim::emil_spec();
    s.offload.launch_latency_s = 0.5;  // pathological offload runtime
    variants.push_back({"0.5s launch latency", s});
  }

  util::Table table("What-if platform study: EM-optimal distribution for " +
                    workload.name);
  table.header({"Platform variant", "Best time [s]", "Host share", "Configuration"});
  for (const Variant& v : variants) {
    // Guard: an 8-core host cannot run 48 threads; clamp the space instead of
    // crashing (the objective throws for infeasible thread counts).
    const sim::Machine machine{v.spec};
    const opt::ConfigSpace space = opt::ConfigSpace::paper();
    const auto safe_objective = [&](const opt::SystemConfig& c) {
      if (c.host_threads > v.spec.host.max_threads() ||
          c.device_threads > v.spec.device.max_threads()) {
        return 1e9;  // infeasible
      }
      return machine.measure_combined(workload.size_mb, c.host_percent, c.host_threads,
                                      c.host_affinity, c.device_threads,
                                      c.device_affinity);
    };
    const auto result = opt::enumerate_best(space, safe_objective);
    table.row({v.name, util::format_double(result.best_energy, 3),
               util::format_double(result.best.host_percent, 1) + "%",
               opt::to_string(result.best)});
  }
  table.note("shifting hardware moves the optimal fraction: slower PCIe / launch "
             "pushes work to the host; faster device or weaker host pushes it out");
  table.print(std::cout);
  return 0;
}
