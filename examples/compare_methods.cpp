// Domain example: the paper's Table II generalized. The four paper methods
// (EM, EML, SAM, SAML) are TuningSession presets; the Strategy x Evaluator
// redesign also makes the genetic and random-sampling strategies first-class,
// so this harness compares all six on one workload: search effort (number of
// experiments/predictions) against solution quality. Candidate batches are
// evaluated concurrently through a thread pool.
//
// Run:  ./compare_methods [--genome=cat] [--iterations=1000] [--threads=4]
#include <iostream>
#include <memory>

#include "core/hetopt.hpp"
#include "parallel/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("cat"));
  const auto iterations = static_cast<std::size_t>(args.get("iterations", std::int64_t{1000}));
  const auto threads = static_cast<std::size_t>(args.get("threads", std::int64_t{4}));

  const sim::Machine machine = sim::emil_machine();
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  std::cout << "Training predictor for the ML-based methods...\n";
  const core::TrainingData data = core::generate_training_data(
      machine, catalog, core::TrainingSweepOptions::paper());
  core::PerformancePredictor predictor;
  predictor.train(data.host, data.device);

  const auto pool = std::make_shared<parallel::ThreadPool>(threads);
  const auto measurement = std::make_shared<core::MeasurementEvaluator>(machine);

  util::Timer timer;
  std::vector<core::SessionReport> reports;

  // The four paper presets...
  for (const core::Method m : {core::Method::kEM, core::Method::kEML, core::Method::kSAM,
                               core::Method::kSAML}) {
    core::TuningSession session =
        core::TuningSession::preset(m, machine, space, &predictor, iterations, 42);
    session.with_thread_pool(pool);
    core::SessionReport r = session.run(workload);
    r.strategy = std::string(core::to_string(m));  // label rows with the paper's names
    reports.push_back(std::move(r));
  }
  // ...plus the strategies the old Method enum could not reach, through the
  // same session API (picked from the registry by name).
  for (const char* name : {"genetic", "random"}) {
    core::TuningSession session(space);
    session.with_strategy(name)
        .with_evaluator(measurement)
        .with_budget(iterations + 1)  // same budget as SAM: initial + iterations
        .with_seed(42)
        .with_thread_pool(pool);
    reports.push_back(session.run(workload));
  }

  const double em_time = reports.front().measured_time;
  util::Table table("Strategy x evaluator comparison on " + workload.name + " (" +
                    std::to_string(static_cast<int>(workload.size_mb)) + " MB)");
  table.header({"Strategy", "Evaluator", "Evaluations", "Measured time [s]", "vs EM",
                "Configuration"});
  for (const core::SessionReport& r : reports) {
    std::string vs_em = "+";
    vs_em += util::format_double(100.0 * (r.measured_time - em_time) / em_time, 2);
    vs_em += '%';
    table.row({r.strategy, r.evaluator, std::to_string(r.evaluations),
               util::format_double(r.measured_time, 3), std::move(vs_em),
               opt::to_string(r.config)});
  }
  table.note("Table II semantics: EM = exhaustive+measured (optimal, high effort); "
             "SAM/SAML = ~5% of the effort, near-optimal; ML variants can predict "
             "unseen workloads without re-measuring; genetic/random run on the same "
             "budget as SAM for comparison");
  table.note("all six methods completed in " + util::format_double(timer.seconds(), 2) +
             " s of wall time (candidate batches on " + std::to_string(threads) +
             " pool threads)");
  table.print(std::cout);
  return 0;
}
