// Domain example: reproduce the paper's Table II in practice — run all four
// optimization methods (EM, EML, SAM, SAML) on one workload and compare
// effort (number of experiments/predictions) against solution quality.
//
// Run:  ./compare_methods [--genome=cat] [--iterations=1000]
#include <iostream>

#include "core/hetopt.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace hetopt;
  const util::CliArgs args(argc, argv);
  const std::string genome = args.get("genome", std::string("cat"));
  const auto iterations = static_cast<std::size_t>(args.get("iterations", std::int64_t{1000}));

  const sim::Machine machine = sim::emil_machine();
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  const dna::GenomeCatalog catalog;
  const dna::GenomeInfo& info = catalog.get(genome);
  const core::Workload workload(info.name, info.size_mb);

  std::cout << "Training predictor for the ML-based methods...\n";
  const core::TrainingData data = core::generate_training_data(
      machine, catalog, core::TrainingSweepOptions::paper());
  core::PerformancePredictor predictor;
  predictor.train(data.host, data.device);

  const auto sa = core::sa_params_for_iterations(iterations, 42);

  util::Table table("Method comparison on " + workload.name + " (" +
                    std::to_string(static_cast<int>(workload.size_mb)) + " MB)");
  table.header({"Method", "Evaluations", "Measured time [s]", "vs EM", "Configuration"});

  util::Timer timer;
  const core::MethodResult em = core::run_em(space, machine, workload);
  const core::MethodResult eml = core::run_eml(space, machine, workload, predictor);
  const core::MethodResult sam = core::run_sam(space, machine, workload, sa);
  const core::MethodResult saml = core::run_saml(space, machine, workload, predictor, sa);

  for (const core::MethodResult* r : {&em, &eml, &sam, &saml}) {
    std::string vs_em = "+";
    vs_em += util::format_double(
        100.0 * (r->measured_time - em.measured_time) / em.measured_time, 2);
    vs_em += '%';
    table.row({std::string(core::to_string(r->method)), std::to_string(r->evaluations),
               util::format_double(r->measured_time, 3), std::move(vs_em),
               opt::to_string(r->config)});
  }
  table.note("Table II semantics: EM = exhaustive+measured (optimal, high effort); "
             "SAM/SAML = ~5% of the effort, near-optimal; ML variants can predict "
             "unseen workloads without re-measuring");
  table.note("all four methods completed in " +
             util::format_double(timer.seconds(), 2) + " s of wall time");
  table.print(std::cout);
  return 0;
}
