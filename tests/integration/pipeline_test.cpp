// End-to-end integration: the full paper pipeline on the real configuration
// space — training sweep -> predictor -> all four methods -> speedups — plus
// the real DFA execution path driven by a tuned configuration.
#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"
#include "automata/scanner.hpp"
#include "core/hetopt.hpp"
#include "ml/metrics.hpp"

namespace hetopt {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new sim::Machine(sim::emil_machine());
    space_ = new opt::ConfigSpace(opt::ConfigSpace::paper());
    catalog_ = new dna::GenomeCatalog();
    data_ = new core::TrainingData(core::generate_training_data(
        *machine_, *catalog_, core::TrainingSweepOptions::paper()));
    predictor_ = new core::PerformancePredictor();
    predictor_->train(data_->host, data_->device);
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete data_;
    delete catalog_;
    delete space_;
    delete machine_;
  }

  static sim::Machine* machine_;
  static opt::ConfigSpace* space_;
  static dna::GenomeCatalog* catalog_;
  static core::TrainingData* data_;
  static core::PerformancePredictor* predictor_;
};

sim::Machine* PipelineFixture::machine_ = nullptr;
opt::ConfigSpace* PipelineFixture::space_ = nullptr;
dna::GenomeCatalog* PipelineFixture::catalog_ = nullptr;
core::TrainingData* PipelineFixture::data_ = nullptr;
core::PerformancePredictor* PipelineFixture::predictor_ = nullptr;

TEST_F(PipelineFixture, TrainingSweepHasPaperCardinality) {
  EXPECT_EQ(data_->host.size(), 2880u);
  EXPECT_EQ(data_->device.size(), 4320u);
}

TEST_F(PipelineFixture, HalfSplitPredictionAccuracyInPaperBand) {
  // The paper reports ~5.2% host / ~3.1% device average percent error with a
  // half/half protocol. Verify the same protocol lands in a sane band.
  const auto [host_train, host_eval] = data_->host.split_half(77);
  const auto [device_train, device_eval] = data_->device.split_half(77);
  core::PerformancePredictor p;
  p.train(host_train, device_train);

  std::vector<double> measured;
  std::vector<double> predicted;
  for (std::size_t i = 0; i < host_eval.size(); ++i) {
    const auto row = host_eval.row(i);
    measured.push_back(host_eval.target(i));
    // Decode the one-hot affinity back out of the feature row.
    const auto aff = row[2] > 0.5   ? parallel::HostAffinity::kNone
                     : row[3] > 0.5 ? parallel::HostAffinity::kScatter
                                    : parallel::HostAffinity::kCompact;
    predicted.push_back(p.predict_host(row[0], static_cast<int>(row[1]), aff));
  }
  const auto host_summary = ml::summarize_errors(measured, predicted);
  EXPECT_LT(host_summary.mean_percent, 9.0);
  EXPECT_GT(host_summary.mean_percent, 1.0);  // noise floor exists

  measured.clear();
  predicted.clear();
  for (std::size_t i = 0; i < device_eval.size(); ++i) {
    const auto row = device_eval.row(i);
    measured.push_back(device_eval.target(i));
    const auto aff = row[2] > 0.5   ? parallel::DeviceAffinity::kBalanced
                     : row[3] > 0.5 ? parallel::DeviceAffinity::kScatter
                                    : parallel::DeviceAffinity::kCompact;
    predicted.push_back(p.predict_device(row[0], static_cast<int>(row[1]), aff));
  }
  const auto device_summary = ml::summarize_errors(measured, predicted);
  EXPECT_LT(device_summary.mean_percent, 7.0);
}

TEST_F(PipelineFixture, AllFourMethodsProduceCompetitiveConfigs) {
  const core::Workload dog("dog", 2380.0);
  const auto em = core::run_em(*space_, *machine_, dog);
  const auto eml = core::run_eml(*space_, *machine_, dog, *predictor_);
  const auto sam = core::run_sam(*space_, *machine_, dog,
                                 core::sa_params_for_iterations(1000, 5));
  const auto saml = core::run_saml(*space_, *machine_, dog, *predictor_,
                                   core::sa_params_for_iterations(1000, 5));
  // EM is the optimum; every other method is within 40% of it.
  for (const auto* r : {&eml, &sam, &saml}) {
    EXPECT_GE(r->measured_time, em.measured_time * 0.999);
    EXPECT_LE(r->measured_time, em.measured_time * 1.4);
  }
  // SA methods used ~5% of EM's experiments.
  EXPECT_LE(sam.evaluations, em.evaluations / 15);
}

TEST_F(PipelineFixture, SpeedupsReproducePaperShape) {
  // Table VIII/IX shape: combined beats host-only by >1.4x and device-only
  // by >1.9x on every genome, and device-only is slower than host-only.
  for (const auto& genome : catalog_->all()) {
    const core::Workload w(genome.name, genome.size_mb);
    const auto em = core::run_em(*space_, *machine_, w);
    const auto host = core::host_only_baseline(*space_, *machine_, w);
    const auto device = core::device_only_baseline(*space_, *machine_, w);
    EXPECT_GT(host.measured_time / em.measured_time, 1.4) << genome.name;
    EXPECT_GT(device.measured_time / em.measured_time, 1.9) << genome.name;
    EXPECT_GT(device.measured_time, host.measured_time) << genome.name;
  }
}

TEST_F(PipelineFixture, SamlIterationSweepImprovesMonotonically) {
  // Table VI: percent difference decreases as iterations grow (averaged over
  // seeds to suppress SA variance).
  const core::Workload cat("cat", 2430.0);
  const auto em = core::run_em(*space_, *machine_, cat);
  double prev_avg = 1e9;
  for (const std::size_t iters : {250u, 1000u, 2000u}) {
    double sum = 0.0;
    constexpr int kSeeds = 5;
    for (int seed = 0; seed < kSeeds; ++seed) {
      const auto r = core::run_saml(*space_, *machine_, cat, *predictor_,
                                    core::sa_params_for_iterations(iters, seed));
      sum += r.measured_time;
    }
    const double avg = sum / kSeeds;
    EXPECT_LE(avg, prev_avg * 1.05) << iters;  // allow small seed noise
    EXPECT_GE(avg, em.measured_time * 0.999);
    prev_avg = avg;
  }
}

TEST_F(PipelineFixture, TunedConfigDrivesRealExecution) {
  // Close the loop: tune with SAML, then actually run the DNA kernel with
  // the recommended fraction on a materialized (scaled) genome.
  const core::Workload human("human", 3170.0);
  const auto saml = core::run_saml(*space_, *machine_, human, *predictor_,
                                   core::sa_params_for_iterations(500, 9));
  const dna::Sequence seq = catalog_->materialize(
      "human", 1 << 20, {{"GATTACAGATTACA", 10}});
  const automata::DenseDfa dfa = automata::build_aho_corasick({"GATTACAGATTACA"});
  core::HeterogeneousExecutor exec(dfa, 4, 4);
  const core::ExecutionReport report = exec.run(seq.view(), saml.config.host_percent);
  EXPECT_EQ(report.total_matches(), automata::count_matches(dfa, seq.view()));
  EXPECT_GE(report.total_matches(), 10u);
}

}  // namespace
}  // namespace hetopt
