// Self-test for hetopt_lint (tools/lint/): every rule must fire on a known-bad
// fixture with the right rule-id and file:line, stay quiet on the matching
// known-good shape, honor suppression comments — and the real src/ tree must
// be clean (the same property the `lint` ctest and CI gate enforce).
#include "lint/lint.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;
using hetopt::lint::Diagnostic;
using hetopt::lint::lint_source;
using hetopt::lint::lint_tree;

namespace {

/// A scratch tree laid out like src/ (layer dirs at the top level).
class LintFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    root_ = fs::temp_directory_path() /
            ("hetopt_lint_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void write(const std::string& relative, const std::string& content) {
    const fs::path path = root_ / relative;
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary);
    out << content;
  }

  [[nodiscard]] std::vector<Diagnostic> run() const { return lint_tree(root_); }

  static std::string dump(const std::vector<Diagnostic>& diagnostics) {
    std::string all;
    for (const auto& d : diagnostics) all += hetopt::lint::to_string(d) + "\n";
    return all;
  }

  /// The single diagnostic of `rule`, asserting its location.
  static void expect_one(const std::vector<Diagnostic>& diagnostics,
                         const std::string& rule, const std::string& file_suffix,
                         std::size_t line) {
    std::size_t hits = 0;
    for (const auto& d : diagnostics) {
      if (d.rule != rule) continue;
      ++hits;
      EXPECT_EQ(d.line, line) << hetopt::lint::to_string(d);
      EXPECT_TRUE(d.file.size() >= file_suffix.size() &&
                  d.file.compare(d.file.size() - file_suffix.size(),
                                 file_suffix.size(), file_suffix) == 0)
          << hetopt::lint::to_string(d);
    }
    EXPECT_EQ(hits, 1u) << "rule " << rule << " in:\n" << dump(diagnostics);
  }

  fs::path root_;
};

// --- layer-dag --------------------------------------------------------------

TEST_F(LintFixture, UpwardIncludeFires) {
  write("dna/bad_upward.cpp", "#include \"core/executor.hpp\"\n");
  expect_one(run(), "layer-dag", "dna/bad_upward.cpp", 1);
}

TEST_F(LintFixture, CrossLayerIncludeFires) {
  write("dna/bad_cross.cpp",
        "#include \"dna/alphabet.hpp\"\n"
        "#include \"ml/dataset.hpp\"\n");
  expect_one(run(), "layer-dag", "dna/bad_cross.cpp", 2);
}

TEST_F(LintFixture, DagEdgesPass) {
  write("automata/ok.cpp",
        "#include \"automata/nfa.hpp\"\n"
        "#include \"dna/alphabet.hpp\"\n"
        "#include \"parallel/thread_pool.hpp\"\n"
        "#include \"util/rng.hpp\"\n"
        "#include <vector>\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

// --- atomic-order -----------------------------------------------------------

TEST_F(LintFixture, NakedSeqCstAtomicFires) {
  write("parallel/bad_atomic.cpp",
        "#include <atomic>\n"
        "std::atomic<int> counter;\n"
        "int peek() { return counter.load(); }\n");
  expect_one(run(), "atomic-order", "parallel/bad_atomic.cpp", 3);
}

TEST_F(LintFixture, ExplicitOrderPasses) {
  write("parallel/ok_atomic.cpp",
        "#include <atomic>\n"
        "std::atomic<int> counter;\n"
        "int peek() { return counter.load(std::memory_order_acquire); }\n"
        "void bump() {\n"
        "  counter.fetch_add(1,\n"
        "                    std::memory_order_relaxed);\n"  // multi-line call
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, AtomicRuleOnlyCoversConcurrentLayers) {
  write("ml/free_pass.cpp",
        "#include <atomic>\n"
        "std::atomic<int> counter;\n"
        "int peek() { return counter.load(); }\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

// --- nondeterminism ---------------------------------------------------------

TEST_F(LintFixture, RandomDeviceInCoreFires) {
  write("core/bad_random.cpp",
        "#include <random>\n"
        "unsigned roll() { std::random_device rd; return rd(); }\n");
  expect_one(run(), "nondeterminism", "core/bad_random.cpp", 2);
}

TEST_F(LintFixture, UtilMayTouchEntropy) {
  write("util/entropy_ok.cpp",
        "#include <random>\n"
        "unsigned roll() { std::random_device rd; return rd(); }\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, WallClockCallsFire) {
  write("opt/bad_clock.cpp",
        "#include <chrono>\n"
        "#include <ctime>\n"
        "long stamp() { return std::time(nullptr); }\n"
        "auto wall() { return std::chrono::system_clock::now(); }\n");
  const auto diagnostics = run();
  // Two independent hits: std::time() on line 3, system_clock on line 4.
  std::vector<std::size_t> lines;
  for (const auto& d : diagnostics) {
    if (d.rule != "nondeterminism") continue;
    EXPECT_TRUE(d.file.ends_with("opt/bad_clock.cpp")) << hetopt::lint::to_string(d);
    lines.push_back(d.line);
  }
  EXPECT_EQ(lines, (std::vector<std::size_t>{3, 4})) << dump(diagnostics);
}

TEST_F(LintFixture, SuffixedIdentifiersAndProseDoNotFire) {
  write("sim/ok_time.cpp",
        "// rand() and time() in a comment never fire; nor do strings.\n"
        "const char* label() { return \"call time() now\"; }\n"
        "double host_time(int t);\n"
        "double cost() { return host_time(3); }\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

// --- kernel-throw -----------------------------------------------------------

TEST_F(LintFixture, ThrowInsideKernelLoopFires) {
  write("automata/compiled_dfa.cpp",
        "void scan(const int* bytes, int n) {\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    if (bytes[i] < 0) throw bytes[i];\n"
        "  }\n"
        "}\n");
  expect_one(run(), "kernel-throw", "automata/compiled_dfa.cpp", 3);
}

TEST_F(LintFixture, BracelessKernelLoopThrowFires) {
  write("automata/bitap.cpp",
        "void scan(int n) {\n"
        "  while (n-- > 0) throw n;\n"
        "}\n");
  expect_one(run(), "kernel-throw", "automata/bitap.cpp", 2);
}

TEST_F(LintFixture, ColdPathThrowOutsideLoopPasses) {
  write("automata/compiled_dfa.cpp",
        "int scan(const int* bytes, int n) {\n"
        "  int bad = 0;\n"
        "  for (int i = 0; i < n; ++i) bad += bytes[i] < 0;\n"
        "  if (bad != 0) throw bad;\n"
        "  return n;\n"
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, KernelRuleOnlyCoversKernelFiles) {
  write("automata/regex.cpp",
        "void parse(int n) {\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    throw i;\n"
        "  }\n"
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, AllowCommentSuppresses) {
  write("automata/compiled_dfa.cpp",
        "void scan(int n) {\n"
        "  for (int i = 0; i < n; ++i) {\n"
        "    throw i;  // hetopt-lint: allow(kernel-throw)\n"
        "  }\n"
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

// --- silent-catch -----------------------------------------------------------

TEST_F(LintFixture, SwallowingCatchInCoreFires) {
  write("core/bad_catch.cpp",
        "void risky();\n"
        "void run() {\n"
        "  try {\n"
        "    risky();\n"
        "  } catch (...) {\n"
        "  }\n"
        "}\n");
  expect_one(run(), "silent-catch", "core/bad_catch.cpp", 5);
}

TEST_F(LintFixture, CatchCommentAloneDoesNotCountAsHandling) {
  write("parallel/bad_catch_comment.cpp",
        "void risky();\n"
        "void run() {\n"
        "  try {\n"
        "    risky();\n"
        "  } catch (...) {\n"
        "    // the error is fine, ignore it\n"
        "  }\n"
        "}\n");
  expect_one(run(), "silent-catch", "parallel/bad_catch_comment.cpp", 5);
}

TEST_F(LintFixture, RethrowingCatchPasses) {
  write("core/ok_catch_rethrow.cpp",
        "void risky();\n"
        "void run() {\n"
        "  try {\n"
        "    risky();\n"
        "  } catch (...) {\n"
        "    throw;\n"
        "  }\n"
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, RecordingCatchPasses) {
  write("parallel/ok_catch_record.cpp",
        "void record_worker_error();\n"
        "void run() {\n"
        "  try {\n"
        "  } catch (...) {\n"
        "    record_worker_error();\n"
        "  }\n"
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, SilentCatchRuleOnlyCoversRuntimeLayers) {
  write("opt/free_catch.cpp",
        "bool ok() {\n"
        "  try {\n"
        "    return true;\n"
        "  } catch (...) {\n"
        "    return false;\n"
        "  }\n"
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, SilentCatchAllowCommentSuppresses) {
  write("core/allowed_catch.cpp",
        "void best_effort();\n"
        "void run() {\n"
        "  try {\n"
        "    best_effort();\n"
        "  } catch (...) {  // hetopt-lint: allow(silent-catch) — best-effort\n"
        "  }\n"
        "}\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

// --- raw-intrinsics ---------------------------------------------------------

TEST_F(LintFixture, IntrinsicCallOutsideSimdDirFires) {
  write("automata/bad_vector.cpp",
        "#include <immintrin.h>\n"
        "int hits(const char* p) { return _mm_movemask_epi8(_mm_set1_epi8(p[0])); }\n");
  // Two intrinsic identifiers on the line; expect_one wants a single hit, so
  // count directly.
  std::size_t hits = 0;
  for (const auto& d : run()) {
    if (d.rule == "raw-intrinsics") {
      ++hits;
      EXPECT_EQ(d.line, 2u) << hetopt::lint::to_string(d);
    }
  }
  EXPECT_EQ(hits, 2u);
}

TEST_F(LintFixture, VectorTypeOutsideSimdDirFires) {
  write("parallel/bad_vector_type.cpp", "struct S { void* lanes; };\n__m256i g;\n");
  expect_one(run(), "raw-intrinsics", "parallel/bad_vector_type.cpp", 2);
}

TEST_F(LintFixture, SimdDirectoryMayUseIntrinsics) {
  write("automata/simd/simd_avx2.cpp",
        "#include <immintrin.h>\n"
        "__m256i load(const void* p) { return _mm256_loadu_si256((const __m256i*)p); }\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, IntrinsicLikeProseAndSubstringsDoNotFire) {
  write("core/ok_mentions.cpp",
        "// _mm256_add_epi64 is only a comment, and \"_mm_set1_epi8\" a string\n"
        "const char* label() { return \"_mm_set1_epi8\"; }\n"
        "int summ_mm_total = 0;  // contains _mm_ but not as a prefix\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

TEST_F(LintFixture, RawIntrinsicsAllowCommentSuppresses) {
  write("core/justified_vector.cpp",
        "__m128i special;  // hetopt-lint: allow(raw-intrinsics)\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

// --- pragma-once ------------------------------------------------------------

TEST_F(LintFixture, HeaderWithoutPragmaOnceFires) {
  write("core/bad_header.hpp", "struct Naked {};\n");
  expect_one(run(), "pragma-once", "core/bad_header.hpp", 1);
}

TEST_F(LintFixture, HeaderWithPragmaOncePasses) {
  write("core/ok_header.hpp", "#pragma once\nstruct Covered {};\n");
  EXPECT_TRUE(run().empty()) << dump(run());
}

// --- plumbing ---------------------------------------------------------------

TEST(LintFormat, DiagnosticRendersFileLineRuleMessage) {
  const auto diagnostics =
      lint_source("dna/bad.cpp", "#include \"core/executor.hpp\"\n");
  ASSERT_EQ(diagnostics.size(), 1u);
  const std::string text = hetopt::lint::to_string(diagnostics[0]);
  EXPECT_NE(text.find("dna/bad.cpp:1: layer-dag: "), std::string::npos) << text;
}

TEST(LintTree, MissingRootThrows) {
  EXPECT_THROW((void)lint_tree("/nonexistent/hetopt/lint/root"), std::runtime_error);
}

// The property the CI gate enforces: the live tree has zero violations.
TEST(LintTree, RealSourceTreeIsClean) {
  const auto diagnostics = lint_tree(HETOPT_REPO_SOURCE_DIR "/src");
  std::string all;
  for (const auto& d : diagnostics) all += hetopt::lint::to_string(d) + "\n";
  EXPECT_TRUE(diagnostics.empty()) << all;
}

}  // namespace
