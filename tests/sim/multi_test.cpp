#include "sim/multi.hpp"

#include <gtest/gtest.h>

namespace hetopt::sim {
namespace {

using parallel::HostAffinity;

TEST(MultiDevice, SingleDeviceMatchesMachineModel) {
  const MultiDeviceMachine multi = emil_with_phis(1);
  const Machine single = emil_machine();
  EXPECT_NEAR(multi.device_time(0, 1500.0),
              single.device_time_model(1500.0, 240, parallel::DeviceAffinity::kBalanced),
              1e-12);
  EXPECT_NEAR(multi.host_time(1500.0, 48, HostAffinity::kScatter),
              single.host_time_model(1500.0, 48, HostAffinity::kScatter), 1e-12);
}

TEST(MultiDevice, BalanceSharesSumTo100) {
  for (std::size_t k : {1u, 2u, 4u, 8u}) {
    const MultiDeviceMachine multi = emil_with_phis(k);
    const ShareVector s = multi.balance(3170.0, 48, HostAffinity::kScatter);
    EXPECT_NEAR(s.total_percent(), 100.0, 1e-6) << k << " devices";
    EXPECT_EQ(s.device_percent.size(), k);
  }
}

TEST(MultiDevice, MakespanDecreasesWithMoreAccelerators) {
  double prev = 1e300;
  for (std::size_t k : {0u, 1u, 2u, 4u, 8u}) {
    const MultiDeviceMachine multi = emil_with_phis(k);
    const ShareVector s = multi.balance(3170.0, 48, HostAffinity::kScatter);
    EXPECT_LT(s.makespan_s, prev) << k << " devices";
    prev = s.makespan_s;
  }
}

TEST(MultiDevice, ZeroDevicesReducesToHostOnly) {
  const MultiDeviceMachine multi = emil_with_phis(0);
  const ShareVector s = multi.balance(2000.0, 48, HostAffinity::kScatter);
  EXPECT_NEAR(s.host_percent, 100.0, 1e-9);
  EXPECT_NEAR(s.makespan_s, multi.host_time(2000.0, 48, HostAffinity::kScatter), 1e-6);
}

TEST(MultiDevice, BalanceBeatsEqualSplit) {
  for (std::size_t k : {1u, 2u, 4u}) {
    const MultiDeviceMachine multi = emil_with_phis(k);
    const ShareVector balanced = multi.balance(3170.0, 48, HostAffinity::kScatter);
    const ShareVector equal = multi.equal_split(3170.0, 48, HostAffinity::kScatter);
    EXPECT_LE(balanced.makespan_s, equal.makespan_s * 1.0000001) << k << " devices";
  }
}

TEST(MultiDevice, BalancedSidesFinishTogether) {
  // Water-filling equalizes completion times of all participating sides.
  const MultiDeviceMachine multi = emil_with_phis(2);
  const ShareVector s = multi.balance(3170.0, 48, HostAffinity::kScatter);
  const double host = multi.host_time(3170.0 * s.host_percent / 100.0, 48,
                                      HostAffinity::kScatter);
  for (std::size_t i = 0; i < 2; ++i) {
    const double dev = multi.device_time(i, 3170.0 * s.device_percent[i] / 100.0);
    EXPECT_NEAR(dev, host, host * 0.01);
  }
}

TEST(MultiDevice, IdenticalDevicesGetIdenticalShares) {
  const MultiDeviceMachine multi = emil_with_phis(4);
  const ShareVector s = multi.balance(3170.0, 48, HostAffinity::kScatter);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(s.device_percent[i], s.device_percent[0], 1e-6);
  }
}

TEST(MultiDevice, SmallInputExcludesDevices) {
  // If the host finishes before a device could even launch, devices get 0.
  const MultiDeviceMachine multi = emil_with_phis(2);
  const ShareVector s = multi.balance(10.0, 48, HostAffinity::kScatter);
  // Host alone takes ~0.02 s overhead + tiny compute; launch latency is
  // 0.068 s, so devices cannot contribute.
  for (double d : s.device_percent) EXPECT_NEAR(d, 0.0, 1e-9);
  EXPECT_NEAR(s.host_percent, 100.0, 1e-9);
}

TEST(MultiDevice, HeterogeneousDevicesShareByCapability) {
  const MachineSpec base = emil_spec();
  DeviceContext fast;
  fast.spec = base.device;
  fast.spec.per_thread_gbps *= 2.0;
  fast.offload = base.offload;
  fast.threads = fast.spec.max_threads();
  DeviceContext slow;
  slow.spec = base.device;
  slow.offload = base.offload;
  slow.threads = slow.spec.max_threads();
  const MultiDeviceMachine multi(base.host, {fast, slow});
  const ShareVector s = multi.balance(3170.0, 48, parallel::HostAffinity::kScatter);
  EXPECT_GT(s.device_percent[0], s.device_percent[1] * 1.5);
}

TEST(MultiDevice, MakespanValidatesShares) {
  const MultiDeviceMachine multi = emil_with_phis(2);
  ShareVector bad;
  bad.host_percent = 50.0;
  bad.device_percent = {25.0};  // wrong size
  EXPECT_THROW((void)multi.makespan(100.0, bad, 48, HostAffinity::kScatter),
               std::invalid_argument);
  bad.device_percent = {25.0, 10.0};  // sums to 85
  EXPECT_THROW((void)multi.makespan(100.0, bad, 48, HostAffinity::kScatter),
               std::invalid_argument);
}

TEST(MultiDevice, ConstructorValidation) {
  const MachineSpec base = emil_spec();
  DeviceContext bad;
  bad.spec = base.device;
  bad.offload = base.offload;
  bad.threads = 0;
  EXPECT_THROW(MultiDeviceMachine(base.host, {bad}), std::invalid_argument);
  bad.threads = 1;
  bad.offload.pcie_gbps = 0.0;
  EXPECT_THROW(MultiDeviceMachine(base.host, {bad}), std::invalid_argument);
  ProcessorSpec coreless_host = base.host;
  coreless_host.cores = 0;
  EXPECT_THROW(MultiDeviceMachine(coreless_host, {}), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::sim
