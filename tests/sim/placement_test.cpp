#include "sim/placement.hpp"

#include <gtest/gtest.h>

namespace hetopt::sim {
namespace {

using parallel::DeviceAffinity;
using parallel::HostAffinity;

class PlacementFixture : public ::testing::Test {
 protected:
  MachineSpec spec_ = emil_spec();
};

TEST_F(PlacementFixture, ScatterSpreadsAcrossCoresFirst) {
  const Placement p = host_placement(spec_.host, 12, HostAffinity::kScatter);
  EXPECT_EQ(p.cores_used, 12);
  EXPECT_DOUBLE_EQ(p.thread_units, 12.0);
}

TEST_F(PlacementFixture, ScatterStacksAfterAllCoresBusy) {
  const Placement p = host_placement(spec_.host, 36, HostAffinity::kScatter);
  EXPECT_EQ(p.cores_used, 24);
  EXPECT_DOUBLE_EQ(p.thread_units, 24.0 + 12.0 * spec_.host.smt_yield);
}

TEST_F(PlacementFixture, CompactPacksSmtWaysFirst) {
  const Placement p = host_placement(spec_.host, 12, HostAffinity::kCompact);
  EXPECT_EQ(p.cores_used, 6);
  EXPECT_DOUBLE_EQ(p.thread_units, 6.0 + 6.0 * spec_.host.smt_yield);
}

TEST_F(PlacementFixture, ScatterAndCompactAgreeAtFullSubscription) {
  const Placement s = host_placement(spec_.host, 48, HostAffinity::kScatter);
  const Placement c = host_placement(spec_.host, 48, HostAffinity::kCompact);
  EXPECT_EQ(s.cores_used, c.cores_used);
  EXPECT_DOUBLE_EQ(s.thread_units, c.thread_units);
}

TEST_F(PlacementFixture, NoneCarriesPenalty) {
  const Placement none = host_placement(spec_.host, 8, HostAffinity::kNone);
  const Placement scatter = host_placement(spec_.host, 8, HostAffinity::kScatter);
  EXPECT_LT(none.penalty, scatter.penalty);
  EXPECT_EQ(none.cores_used, scatter.cores_used);
}

TEST_F(PlacementFixture, ThroughputHigherWithScatterThanCompactAtLowCounts) {
  const double ts = throughput_gbps(
      spec_.host, host_placement(spec_.host, 8, HostAffinity::kScatter));
  const double tc = throughput_gbps(
      spec_.host, host_placement(spec_.host, 8, HostAffinity::kCompact));
  EXPECT_GT(ts, tc);
}

TEST_F(PlacementFixture, DeviceBalancedBeatsCompactAtLowCounts) {
  const double tb = throughput_gbps(
      spec_.device, device_placement(spec_.device, 60, DeviceAffinity::kBalanced));
  const double tc = throughput_gbps(
      spec_.device, device_placement(spec_.device, 60, DeviceAffinity::kCompact));
  EXPECT_GT(tb, tc);
}

TEST_F(PlacementFixture, DeviceScatterSlightlyBelowBalanced) {
  const double tb = throughput_gbps(
      spec_.device, device_placement(spec_.device, 120, DeviceAffinity::kBalanced));
  const double ts = throughput_gbps(
      spec_.device, device_placement(spec_.device, 120, DeviceAffinity::kScatter));
  EXPECT_GT(tb, ts);
  EXPECT_GT(ts, tb * 0.95);  // but only slightly
}

TEST_F(PlacementFixture, ThroughputMonotoneInThreadsForScatter) {
  double prev = 0.0;
  for (int t : {2, 6, 12, 24, 36, 48}) {
    const double cur = throughput_gbps(
        spec_.host, host_placement(spec_.host, t, HostAffinity::kScatter));
    EXPECT_GT(cur, prev) << t << " threads";
    prev = cur;
  }
}

TEST_F(PlacementFixture, DeviceThroughputMonotoneInThreadsForBalanced) {
  double prev = 0.0;
  for (int t : {2, 4, 8, 16, 30, 60, 120, 180, 240}) {
    const double cur = throughput_gbps(
        spec_.device, device_placement(spec_.device, t, DeviceAffinity::kBalanced));
    EXPECT_GT(cur, prev) << t << " threads";
    prev = cur;
  }
}

TEST_F(PlacementFixture, RejectsInvalidThreadCounts) {
  EXPECT_THROW((void)host_placement(spec_.host, 0, HostAffinity::kScatter),
               std::invalid_argument);
  EXPECT_THROW((void)host_placement(spec_.host, 49, HostAffinity::kScatter),
               std::invalid_argument);
  EXPECT_THROW((void)device_placement(spec_.device, 241, DeviceAffinity::kBalanced),
               std::invalid_argument);
}

TEST_F(PlacementFixture, MaxThreadsMatchesPaperHardware) {
  EXPECT_EQ(spec_.host.max_threads(), 48);
  EXPECT_EQ(spec_.device.max_threads(), 240);  // 60 usable cores x 4
}

}  // namespace
}  // namespace hetopt::sim
