// Calibration invariants: these tests pin the simulated time surface to the
// quantities the paper reports (DESIGN.md §5). If the model drifts, these
// fail before any benchmark does.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

namespace hetopt::sim {
namespace {

using parallel::DeviceAffinity;
using parallel::HostAffinity;

class MachineFixture : public ::testing::Test {
 protected:
  Machine machine_ = emil_machine();
};

TEST_F(MachineFixture, HostSpanMatchesPaper) {
  // Paper: host execution times span ~0.74 - 5.5 s on full genomes.
  const double slow = machine_.host_time_model(3170, 2, HostAffinity::kScatter);
  const double fast = machine_.host_time_model(3170, 48, HostAffinity::kScatter);
  EXPECT_NEAR(slow, 5.5, 0.5);
  EXPECT_NEAR(fast, 0.74, 0.08);
}

TEST_F(MachineFixture, DeviceSpanMatchesPaper) {
  // Paper: device times span ~0.9 - 42 s.
  const double slow = machine_.device_time_model(3170, 2, DeviceAffinity::kBalanced);
  const double fast = machine_.device_time_model(3170, 240, DeviceAffinity::kBalanced);
  EXPECT_NEAR(slow, 42.0, 2.0);
  EXPECT_NEAR(fast, 0.95, 0.15);
}

TEST_F(MachineFixture, DeviceOnlySlowerThanHostOnly) {
  // EM speedups (1.95 vs host, 2.36 vs device) imply device-only is ~1.2x
  // slower than host-only.
  const double host = machine_.host_time_model(3170, 48, HostAffinity::kScatter);
  const double device = machine_.device_time_model(3170, 240, DeviceAffinity::kBalanced);
  EXPECT_GT(device, host);
  EXPECT_NEAR(device / host, 1.25, 0.2);
}

TEST_F(MachineFixture, ZeroBytesCostNothing) {
  EXPECT_EQ(machine_.host_time_model(0, 24, HostAffinity::kScatter), 0.0);
  EXPECT_EQ(machine_.device_time_model(0, 60, DeviceAffinity::kBalanced), 0.0);
  EXPECT_EQ(machine_.measure_host(0, 24, HostAffinity::kScatter), 0.0);
  EXPECT_EQ(machine_.measure_device(0, 60, DeviceAffinity::kBalanced), 0.0);
}

TEST_F(MachineFixture, NegativeSizeRejected) {
  EXPECT_THROW((void)machine_.host_time_model(-1, 24, HostAffinity::kScatter),
               std::invalid_argument);
  EXPECT_THROW((void)machine_.device_time_model(-1, 60, DeviceAffinity::kBalanced),
               std::invalid_argument);
}

TEST_F(MachineFixture, TimeMonotoneInSize) {
  double prev = 0.0;
  for (double mb : {100.0, 500.0, 1000.0, 2000.0, 3170.0}) {
    const double t = machine_.host_time_model(mb, 24, HostAffinity::kScatter);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST_F(MachineFixture, HostTimeDecreasesWithThreads) {
  double prev = 1e9;
  for (int t : {2, 6, 12, 24, 36, 48}) {
    const double cur = machine_.host_time_model(2000, t, HostAffinity::kScatter);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST_F(MachineFixture, MeasurementsAreReproducible) {
  const double a = machine_.measure_host(1234, 24, HostAffinity::kScatter, 0);
  const double b = machine_.measure_host(1234, 24, HostAffinity::kScatter, 0);
  EXPECT_EQ(a, b);
}

TEST_F(MachineFixture, RepetitionsDrawFreshNoise) {
  const double a = machine_.measure_host(1234, 24, HostAffinity::kScatter, 0);
  const double b = machine_.measure_host(1234, 24, HostAffinity::kScatter, 1);
  EXPECT_NE(a, b);
}

TEST_F(MachineFixture, NoiseIsSmallAndCentered) {
  // Mean of many repetitions should sit within ~2% of the model (sigma 5.2%).
  const double model = machine_.host_time_model(2000, 24, HostAffinity::kScatter);
  double sum = 0.0;
  constexpr int kReps = 400;
  for (int r = 0; r < kReps; ++r) {
    sum += machine_.measure_host(2000, 24, HostAffinity::kScatter, r);
  }
  EXPECT_NEAR(sum / kReps / model, 1.0, 0.02);
}

TEST_F(MachineFixture, UnpinnedAffinityIsNoisier) {
  const double model_none = machine_.host_time_model(2000, 24, HostAffinity::kNone);
  const double model_scatter = machine_.host_time_model(2000, 24, HostAffinity::kScatter);
  double var_none = 0.0;
  double var_scatter = 0.0;
  constexpr int kReps = 500;
  for (int r = 0; r < kReps; ++r) {
    const double dn =
        machine_.measure_host(2000, 24, HostAffinity::kNone, r) / model_none - 1.0;
    const double ds =
        machine_.measure_host(2000, 24, HostAffinity::kScatter, r) / model_scatter - 1.0;
    var_none += dn * dn;
    var_scatter += ds * ds;
  }
  EXPECT_GT(var_none, var_scatter * 1.5);
}

TEST_F(MachineFixture, CombinedIsMaxOfSides) {
  // Eq. 2: E = max(T_host, T_device).
  const double host = machine_.host_time_model(3170.0 * 0.6, 48, HostAffinity::kScatter);
  const double device =
      machine_.device_time_model(3170.0 * 0.4, 240, DeviceAffinity::kBalanced);
  const double combined = machine_.combined_time_model(3170, 60, 48, HostAffinity::kScatter,
                                                       240, DeviceAffinity::kBalanced);
  EXPECT_DOUBLE_EQ(combined, std::max(host, device));
}

TEST_F(MachineFixture, CombinedEndpointsReduceToSingleDevice) {
  const double host_only = machine_.combined_time_model(
      2000, 100, 48, HostAffinity::kScatter, 240, DeviceAffinity::kBalanced);
  EXPECT_DOUBLE_EQ(host_only, machine_.host_time_model(2000, 48, HostAffinity::kScatter));
  const double device_only = machine_.combined_time_model(
      2000, 0, 48, HostAffinity::kScatter, 240, DeviceAffinity::kBalanced);
  EXPECT_DOUBLE_EQ(device_only,
                   machine_.device_time_model(2000, 240, DeviceAffinity::kBalanced));
}

TEST_F(MachineFixture, CombinedRejectsBadFraction) {
  EXPECT_THROW((void)machine_.combined_time_model(100, -5, 48, HostAffinity::kScatter, 240,
                                                  DeviceAffinity::kBalanced),
               std::invalid_argument);
  EXPECT_THROW((void)machine_.measure_combined(100, 101, 48, HostAffinity::kScatter, 240,
                                               DeviceAffinity::kBalanced),
               std::invalid_argument);
}

TEST_F(MachineFixture, Fig2aSmallInputPrefersCpuOnly) {
  // 190 MB, 48 host threads: offload overhead dominates; CPU-only wins.
  double best = 1e30;
  int best_pct = -1;
  for (int pct = 0; pct <= 100; pct += 10) {
    const double t = machine_.combined_time_model(190, pct, 48, HostAffinity::kScatter, 240,
                                                  DeviceAffinity::kBalanced);
    if (t < best) {
      best = t;
      best_pct = pct;
    }
  }
  EXPECT_EQ(best_pct, 100);
}

TEST_F(MachineFixture, Fig2bLargeInputPrefersSeventyThirty) {
  // 3250 MB, 48 host threads: optimum around 60-70% on the host.
  double best = 1e30;
  int best_pct = -1;
  for (int pct = 0; pct <= 100; pct += 10) {
    const double t = machine_.combined_time_model(3250, pct, 48, HostAffinity::kScatter,
                                                  240, DeviceAffinity::kBalanced);
    if (t < best) {
      best = t;
      best_pct = pct;
    }
  }
  EXPECT_GE(best_pct, 60);
  EXPECT_LE(best_pct, 70);
}

TEST_F(MachineFixture, Fig2cFewHostThreadsPreferDevice) {
  // 3250 MB, 4 host threads: the device should get ~70-80% of the work.
  double best = 1e30;
  int best_pct = -1;
  for (int pct = 0; pct <= 100; pct += 10) {
    const double t = machine_.combined_time_model(3250, pct, 4, HostAffinity::kScatter, 240,
                                                  DeviceAffinity::kBalanced);
    if (t < best) {
      best = t;
      best_pct = pct;
    }
  }
  EXPECT_LE(best_pct, 30);
  EXPECT_GT(best_pct, 0);
}

TEST_F(MachineFixture, BadSpecsRejected) {
  MachineSpec bad = emil_spec();
  bad.host.cores = 0;
  EXPECT_THROW(Machine{bad}, std::invalid_argument);
  MachineSpec bad2 = emil_spec();
  bad2.offload.pcie_gbps = 0.0;
  EXPECT_THROW(Machine{bad2}, std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::sim
