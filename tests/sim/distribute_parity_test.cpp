// Differential oracle between the two halves of the reproduction: the
// analytical multi-device model (sim::MultiDeviceMachine::distribute) and
// the executed N-pool fleet (core::RealWorkloadEvaluator). The shares the
// model water-fills must be *exactly* the shares the evaluator configures
// its fleet with, and the shares the live runtime realizes must track them
// — the latter only up to machine noise, so deviations warn instead of fail
// (the PR-5 single_hw_thread convention: parallel-behavior expectations are
// advisory on arbitrary CI hardware).
#include "sim/multi.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <iostream>

#include "core/real_workload.hpp"
#include "opt/config.hpp"

namespace hetopt::sim {
namespace {

core::RealWorkloadOptions tiny_options(bool deterministic) {
  core::RealWorkloadOptions options;
  options.bytes_per_logical_mb = 54.0;  // cat (2430 logical MB) -> ~128 KB
  options.min_physical_bytes = 64 * 1024;
  options.deterministic_timing = deterministic;
  return options;
}

core::Workload cat() { return core::Workload("cat", 2430.0); }

opt::SystemConfig fleet_config(int devices) {
  opt::SystemConfig c;
  c.host_threads = 2;
  c.device_threads = 3;
  c.host_percent = 40.0;
  c.device_count = devices;
  return c;
}

TEST(DistributeParityTest, ConfiguredSharesAgreeWithDistributeExactly) {
  // The evaluator and this test make the *same* distribute call, so the
  // configured shares must be bit-identical, for every fleet size.
  const dna::GenomeCatalog catalog;
  const core::RealWorkloadEvaluator evaluator(catalog, tiny_options(true));
  const double mb = evaluator.real(cat()).physical_mb();
  for (const int devices : {2, 3, 4}) {
    const opt::SystemConfig c = fleet_config(devices);
    const core::RealMeasurement m = evaluator.measure(c, cat());
    const ShareVector sv = emil_with_phis(static_cast<std::size_t>(devices))
                               .distribute(mb, c.host_percent, c.host_threads,
                                           c.host_affinity, c.device_threads,
                                           c.device_affinity);
    ASSERT_EQ(m.pool_count, devices + 1);
    ASSERT_EQ(m.configured_percents.size(), static_cast<std::size_t>(devices) + 1);
    EXPECT_DOUBLE_EQ(m.configured_percents[0], sv.host_percent) << devices;
    for (int d = 0; d < devices; ++d) {
      EXPECT_DOUBLE_EQ(m.configured_percents[static_cast<std::size_t>(d) + 1],
                       sv.device_percent[static_cast<std::size_t>(d)])
          << devices << "/" << d;
    }
    EXPECT_NEAR(sv.total_percent(), 100.0, 1e-9);
  }
}

TEST(DistributeParityTest, PairConfiguredSharesAreTheRawFraction) {
  // device_count = 1 is the paper's pair: no water-filling, the configured
  // shares are literally {host_percent, 100 - host_percent}.
  const dna::GenomeCatalog catalog;
  const core::RealWorkloadEvaluator evaluator(catalog, tiny_options(true));
  const core::RealMeasurement m = evaluator.measure(fleet_config(1), cat());
  ASSERT_EQ(m.configured_percents.size(), 2u);
  EXPECT_DOUBLE_EQ(m.configured_percents[0], 40.0);
  EXPECT_DOUBLE_EQ(m.configured_percents[1], 60.0);
}

TEST(DistributeParityTest, StaticRealizedSharesMatchConfiguredUpToRounding) {
  // Under the static schedule the realized split is the configured one cut
  // at byte granularity: the live run's realized shares may differ from the
  // model's only by segment rounding (< one percent on a 128 KB genome).
  const dna::GenomeCatalog catalog;
  const core::RealWorkloadEvaluator evaluator(catalog, tiny_options(false));
  for (const int devices : {1, 3}) {
    const core::RealMeasurement m = evaluator.measure(fleet_config(devices), cat());
    ASSERT_EQ(m.realized_percents.size(), m.configured_percents.size());
    double realized_total = 0.0;
    for (std::size_t i = 0; i < m.realized_percents.size(); ++i) {
      EXPECT_NEAR(m.realized_percents[i], m.configured_percents[i], 0.5)
          << devices << "/" << i;
      realized_total += m.realized_percents[i];
      EXPECT_EQ(m.pool_steals[i], 0u);
    }
    EXPECT_NEAR(realized_total, 100.0, 1e-9);
  }
}

TEST(DistributeParityTest, SharedQueueRealizedSharesTrackConfiguredOrWarn) {
  // Under the adaptive schedule the realized distribution emerges from
  // relative pool speeds on whatever machine CI gives us; a large drift from
  // the configured water-filled shares is machine noise, not a bug, so it
  // warns (stderr) instead of failing. The hard invariants — shares
  // accounted for every byte, exact match counts — still fail loudly.
  const dna::GenomeCatalog catalog;
  const core::RealWorkloadEvaluator evaluator(catalog, tiny_options(false));
  opt::SystemConfig c = fleet_config(3);
  c.schedule = parallel::SchedulePolicy::kAdaptive;
  const core::RealMeasurement m = evaluator.measure(c, cat());
  EXPECT_EQ(m.matches, evaluator.real(cat()).sequential_matches());
  std::size_t bytes = 0;
  for (const std::size_t b : m.pool_bytes) bytes += b;
  EXPECT_EQ(bytes, evaluator.real(cat()).physical_bytes());
  constexpr double kAdvisoryTolerancePercent = 25.0;
  for (std::size_t i = 0; i < m.realized_percents.size(); ++i) {
    const double drift = std::abs(m.realized_percents[i] - m.configured_percents[i]);
    if (drift > kAdvisoryTolerancePercent) {
      std::cerr << "[          ] warning: pool " << i << " realized "
                << m.realized_percents[i] << "% vs configured "
                << m.configured_percents[i] << "% (drift " << drift
                << " > " << kAdvisoryTolerancePercent
                << "); machine-dependent, not failing\n";
    }
  }
}

TEST(DistributeParityTest, FleetModelCollapsesToThePairModel) {
  // The 2-arg work model and the 1-device fleet model are the same function
  // — the delegation the deterministic evaluator's bit-identity rests on.
  const opt::SystemConfig c = fleet_config(1);
  const std::size_t mb = 4 * 1024 * 1024;
  for (const auto [host_b, device_b] :
       {std::pair<std::size_t, std::size_t>{2 * mb, mb},
        {0, mb},
        {mb, 0},
        {0, 0}}) {
    EXPECT_DOUBLE_EQ(
        core::real_workload_model_seconds(c, host_b, device_b),
        core::real_workload_model_fleet_seconds(c, host_b, {device_b}));
  }
}

TEST(DistributeParityTest, DeterministicFleetMeasurementsReproduce) {
  // Seeded determinism across the whole differential surface: the same
  // fleet config measured twice produces identical seconds and shares.
  const dna::GenomeCatalog catalog;
  const core::RealWorkloadEvaluator evaluator(catalog, tiny_options(true));
  for (const int devices : {1, 2, 4}) {
    opt::SystemConfig c = fleet_config(devices);
    c.schedule = parallel::SchedulePolicy::kGuided;
    const core::RealMeasurement a = evaluator.measure(c, cat());
    const core::RealMeasurement b = evaluator.measure(c, cat());
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << devices;
    EXPECT_EQ(a.matches, b.matches) << devices;
    EXPECT_EQ(a.configured_percents, b.configured_percents) << devices;
    EXPECT_EQ(a.pool_bytes, b.pool_bytes) << devices;
    EXPECT_EQ(a.matches, evaluator.real(cat()).sequential_matches()) << devices;
  }
}

TEST(DistributeParityTest, MoreDevicesNeverSlowTheModelDown) {
  // Sanity on the model's fleet shape: under the shared-queue drain, extra
  // identical devices only add rate; under static, splitting the device
  // remainder K ways shrinks the slowest device share.
  opt::SystemConfig c = fleet_config(1);
  const std::size_t mb = 8 * 1024 * 1024;
  c.schedule = parallel::SchedulePolicy::kDynamic;
  const double one = core::real_workload_model_fleet_seconds(c, mb, {mb});
  const double two =
      core::real_workload_model_fleet_seconds(c, mb, {mb / 2, mb / 2});
  EXPECT_LT(two, one);
  c.schedule = parallel::SchedulePolicy::kStatic;
  const double one_s = core::real_workload_model_fleet_seconds(c, mb / 4, {mb});
  const double two_s =
      core::real_workload_model_fleet_seconds(c, mb / 4, {mb / 2, mb / 2});
  EXPECT_LT(two_s, one_s);
}

}  // namespace
}  // namespace hetopt::sim
