#include "ml/linalg.hpp"

#include <gtest/gtest.h>

namespace hetopt::ml {
namespace {

TEST(MatrixTest, StorageAndBounds) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 0), 7.0);
  EXPECT_THROW((void)m.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)m.at(0, 3), std::out_of_range);
}

TEST(Solve, IdentityReturnsRhs) {
  Matrix a(3, 3, 0.0);
  for (std::size_t i = 0; i < 3; ++i) a.at(i, i) = 1.0;
  const auto x = solve(a, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[2], 3.0);
}

TEST(Solve, KnownSystem) {
  // 2x + y = 5; x + 3y = 10  ->  x = 1, y = 3.
  Matrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, RequiresPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  const auto x = solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, SingularThrows) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  EXPECT_THROW((void)solve(a, {1.0, 2.0}), std::runtime_error);
}

TEST(Solve, ShapeMismatchThrows) {
  Matrix a(2, 3);
  EXPECT_THROW((void)solve(a, {1.0, 2.0}), std::invalid_argument);
  Matrix b(2, 2);
  EXPECT_THROW((void)solve(b, {1.0}), std::invalid_argument);
}

TEST(Solve, LargerRandomSystemResidualSmall) {
  constexpr std::size_t n = 12;
  Matrix a(n, n);
  std::vector<double> truth(n);
  // Diagonally dominant deterministic matrix.
  for (std::size_t i = 0; i < n; ++i) {
    truth[i] = static_cast<double>(i) - 3.5;
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) = (i == j) ? 20.0 : 1.0 / (1.0 + static_cast<double>(i + 2 * j));
    }
  }
  std::vector<double> b(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b[i] += a.at(i, j) * truth[j];
  }
  const auto x = solve(a, b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], truth[i], 1e-9);
}

}  // namespace
}  // namespace hetopt::ml
