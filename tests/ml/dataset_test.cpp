#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hetopt::ml {
namespace {

Dataset make_dataset(std::size_t n) {
  Dataset d({"x", "y"});
  for (std::size_t i = 0; i < n; ++i) {
    const double xi = static_cast<double>(i);
    d.add(std::vector<double>{xi, 2.0 * xi}, 3.0 * xi);
  }
  return d;
}

TEST(DatasetTest, AddAndAccess) {
  Dataset d({"a", "b", "c"});
  d.add(std::vector<double>{1.0, 2.0, 3.0}, 4.0);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.feature_count(), 3u);
  EXPECT_DOUBLE_EQ(d.row(0)[1], 2.0);
  EXPECT_DOUBLE_EQ(d.target(0), 4.0);
}

TEST(DatasetTest, RejectsBadRows) {
  Dataset d({"a", "b"});
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(d.add(std::vector<double>{1.0, std::nan("")}, 0.0), std::invalid_argument);
  EXPECT_THROW(d.add(std::vector<double>{1.0, 2.0},
                     std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)d.row(0), std::out_of_range);
}

TEST(DatasetTest, NoFeatureNamesRejected) {
  EXPECT_THROW(Dataset(std::vector<std::string>{}), std::invalid_argument);
}

TEST(DatasetTest, SplitHalfPartitionsAllRows) {
  const Dataset d = make_dataset(101);
  const auto [train, eval] = d.split_half(42);
  EXPECT_EQ(train.size() + eval.size(), 101u);
  EXPECT_NEAR(static_cast<double>(train.size()), 50.5, 1.0);
}

TEST(DatasetTest, SplitIsSeedDeterministic) {
  const Dataset d = make_dataset(50);
  const auto [t1, e1] = d.split_half(7);
  const auto [t2, e2] = d.split_half(7);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_DOUBLE_EQ(t1.target(i), t2.target(i));
  }
  const auto [t3, e3] = d.split_half(8);
  (void)e3;
  bool any_differ = t3.size() != t1.size();
  for (std::size_t i = 0; !any_differ && i < t1.size(); ++i) {
    any_differ = t1.target(i) != t3.target(i);
  }
  EXPECT_TRUE(any_differ);
}

TEST(DatasetTest, SplitFractionBounds) {
  const Dataset d = make_dataset(10);
  EXPECT_THROW((void)d.split_fraction(0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)d.split_fraction(1.0, 1), std::invalid_argument);
  const Dataset one = make_dataset(1);
  EXPECT_THROW((void)one.split_fraction(0.5, 1), std::invalid_argument);
}

TEST(DatasetTest, SplitPreservesRowIntegrity) {
  // Each row satisfies y = 2x and target = 3x; splits must not shear rows.
  const Dataset d = make_dataset(60);
  const auto [train, eval] = d.split_half(3);
  for (const Dataset* part : {&train, &eval}) {
    for (std::size_t i = 0; i < part->size(); ++i) {
      const auto row = part->row(i);
      EXPECT_DOUBLE_EQ(row[1], 2.0 * row[0]);
      EXPECT_DOUBLE_EQ(part->target(i), 3.0 * row[0]);
    }
  }
}

TEST(DatasetTest, SubsetByIndices) {
  const Dataset d = make_dataset(10);
  const std::vector<std::size_t> idx{0, 5, 9, 5};
  const Dataset s = d.subset(idx);
  ASSERT_EQ(s.size(), 4u);
  EXPECT_DOUBLE_EQ(s.target(1), 15.0);
  EXPECT_DOUBLE_EQ(s.target(3), 15.0);  // duplicates allowed (bootstrap)
}

TEST(NormalizerTest, MapsToUnitRange) {
  Dataset d({"x"});
  d.add(std::vector<double>{10.0}, 0.0);
  d.add(std::vector<double>{20.0}, 0.0);
  d.add(std::vector<double>{30.0}, 0.0);
  Normalizer n;
  n.fit(d);
  const Dataset t = n.transform(d);
  EXPECT_DOUBLE_EQ(t.row(0)[0], 0.0);
  EXPECT_DOUBLE_EQ(t.row(1)[0], 0.5);
  EXPECT_DOUBLE_EQ(t.row(2)[0], 1.0);
}

TEST(NormalizerTest, ConstantFeatureMapsToZero) {
  Dataset d({"x"});
  d.add(std::vector<double>{5.0}, 1.0);
  d.add(std::vector<double>{5.0}, 2.0);
  Normalizer n;
  n.fit(d);
  EXPECT_DOUBLE_EQ(n.transform(d).row(1)[0], 0.0);
}

TEST(NormalizerTest, TransformRowMatchesTransform) {
  const Dataset d = make_dataset(20);
  Normalizer n;
  n.fit(d);
  const Dataset t = n.transform(d);
  std::vector<double> buf(2);
  n.transform_row(d.row(7), buf);
  EXPECT_DOUBLE_EQ(buf[0], t.row(7)[0]);
  EXPECT_DOUBLE_EQ(buf[1], t.row(7)[1]);
}

TEST(NormalizerTest, UsageErrors) {
  Normalizer n;
  const Dataset d = make_dataset(5);
  EXPECT_THROW((void)n.transform(d), std::logic_error);
  EXPECT_THROW(n.fit(Dataset({"x"})), std::invalid_argument);
  n.fit(d);
  std::vector<double> small(1);
  EXPECT_THROW(n.transform_row(d.row(0), small), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::ml
