#include "ml/regression_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hetopt::ml {
namespace {

TEST(RegressionTreeTest, FitsPiecewiseConstantExactly) {
  Dataset d({"x"});
  for (int i = 0; i < 40; ++i) {
    const double x = i;
    d.add(std::vector<double>{x}, x < 20 ? 1.0 : 5.0);
  }
  RegressionTree tree(TreeParams{4, 1, 2});
  tree.fit(d);
  EXPECT_NEAR(tree.predict(std::vector<double>{5.0}), 1.0, 1e-12);
  EXPECT_NEAR(tree.predict(std::vector<double>{30.0}), 5.0, 1e-12);
}

TEST(RegressionTreeTest, DepthZeroIsGlobalMean) {
  Dataset d({"x"});
  d.add(std::vector<double>{0.0}, 2.0);
  d.add(std::vector<double>{1.0}, 4.0);
  RegressionTree tree(TreeParams{0, 1, 2});
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.5}), 3.0);
}

TEST(RegressionTreeTest, RespectsMaxDepth) {
  Dataset d({"x"});
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 10);
    d.add(std::vector<double>{x}, std::sin(x));
  }
  RegressionTree tree(TreeParams{3, 1, 2});
  tree.fit(d);
  EXPECT_LE(tree.depth(), 4);  // depth counts nodes on the path
}

TEST(RegressionTreeTest, MinSamplesLeafHonoured) {
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, static_cast<double>(i));
  }
  RegressionTree tree(TreeParams{10, 4, 8});
  tree.fit(d);
  // With min_samples_leaf = 4 and 10 rows, at most one split is possible.
  EXPECT_LE(tree.leaf_count(), 2u);
}

TEST(RegressionTreeTest, PureNodeStopsSplitting) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) {
    d.add(std::vector<double>{static_cast<double>(i % 7)}, 3.0);
  }
  RegressionTree tree(TreeParams{8, 1, 2});
  tree.fit(d);
  EXPECT_EQ(tree.leaf_count(), 1u);
}

TEST(RegressionTreeTest, ConstantFeatureCannotSplit) {
  Dataset d({"x"});
  for (int i = 0; i < 20; ++i) {
    d.add(std::vector<double>{1.0}, static_cast<double>(i));
  }
  RegressionTree tree(TreeParams{8, 1, 2});
  tree.fit(d);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0}), 9.5);
}

TEST(RegressionTreeTest, SelectsInformativeFeature) {
  // Feature 0 is noise, feature 1 carries the signal.
  Dataset d({"noise", "signal"});
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 100; ++i) {
    const double noise = rng.uniform(0, 1);
    const double signal = (i % 2 == 0) ? 0.0 : 10.0;
    d.add(std::vector<double>{noise, signal}, signal > 5.0 ? 100.0 : -100.0);
  }
  RegressionTree tree(TreeParams{1, 1, 2});
  tree.fit(d);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.5, 0.0}), -100.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{0.5, 10.0}), 100.0, 1e-9);
}

TEST(RegressionTreeTest, FitTargetsOverridesDatasetTargets) {
  Dataset d({"x"});
  for (int i = 0; i < 10; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, 0.0);
  }
  std::vector<double> residuals(10, 7.0);
  RegressionTree tree;
  tree.fit_targets(d, residuals);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{4.0}), 7.0);
}

TEST(RegressionTreeTest, UsageErrors) {
  RegressionTree tree;
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(tree.fit(Dataset({"x"})), std::invalid_argument);
  EXPECT_THROW(RegressionTree(TreeParams{-1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(RegressionTree(TreeParams{3, 0, 2}), std::invalid_argument);

  Dataset d({"x"});
  d.add(std::vector<double>{1.0}, 1.0);
  std::vector<double> wrong_size(2, 0.0);
  EXPECT_THROW(tree.fit_targets(d, wrong_size), std::invalid_argument);
  tree.fit(d);
  EXPECT_THROW((void)tree.predict(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(RegressionTreeTest, TrainingErrorDecreasesWithDepth) {
  Dataset d({"x"});
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.uniform(0, 10);
    d.add(std::vector<double>{x}, x * x);
  }
  double prev_sse = 1e300;
  for (int depth : {1, 2, 4, 8}) {
    RegressionTree tree(TreeParams{depth, 1, 2});
    tree.fit(d);
    double sse = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
      const double e = d.target(i) - tree.predict(d.row(i));
      sse += e * e;
    }
    EXPECT_LE(sse, prev_sse + 1e-9) << "depth " << depth;
    prev_sse = sse;
  }
}

}  // namespace
}  // namespace hetopt::ml
