#include "ml/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/rng.hpp"

namespace hetopt::ml {
namespace {

Dataset surface(std::size_t n, std::uint64_t seed) {
  Dataset d({"x1", "x2", "x3"});
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0, 5);
    const double b = rng.uniform(0, 5);
    const double c = rng.uniform(0, 1);
    d.add(std::vector<double>{a, b, c}, 1.0 + a * 0.5 + b * b * 0.1 + c);
  }
  return d;
}

TEST(SerializeNormalizer, RoundTripPreservesTransform) {
  const Dataset data = surface(50, 1);
  Normalizer original;
  original.fit(data);

  std::stringstream ss;
  save(ss, original);
  const Normalizer loaded = load_normalizer(ss);

  std::vector<double> a(3);
  std::vector<double> b(3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    original.transform_row(data.row(i), a);
    loaded.transform_row(data.row(i), b);
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(a[j], b[j]);
  }
}

TEST(SerializeNormalizer, RejectsUnfittedAndGarbage) {
  std::stringstream ss;
  EXPECT_THROW(save(ss, Normalizer{}), std::runtime_error);
  std::stringstream bad("not-a-normalizer 3");
  EXPECT_THROW((void)load_normalizer(bad), std::runtime_error);
  std::stringstream truncated("hetopt-normalizer-v1\n2\n0.0 1.0\n");
  EXPECT_THROW((void)load_normalizer(truncated), std::runtime_error);
}

TEST(SerializeBoostedTrees, RoundTripPredictsIdentically) {
  const Dataset train = surface(300, 2);
  BoostedTreesParams params;
  params.rounds = 80;
  params.subsample = 0.8;
  BoostedTreesRegressor original(params);
  original.fit(train);

  std::stringstream ss;
  save(ss, original);
  const BoostedTreesRegressor loaded = load_boosted_trees(ss);

  EXPECT_EQ(loaded.trained_rounds(), original.trained_rounds());
  util::Xoshiro256 rng(3);
  for (int probe = 0; probe < 200; ++probe) {
    const std::vector<double> q{rng.uniform(0, 5), rng.uniform(0, 5), rng.uniform(0, 1)};
    EXPECT_DOUBLE_EQ(loaded.predict(q), original.predict(q));
  }
}

TEST(SerializeBoostedTrees, RoundTripPreservesParams) {
  const Dataset train = surface(100, 4);
  BoostedTreesParams params;
  params.rounds = 25;
  params.learning_rate = 0.07;
  params.tree.max_depth = 4;
  BoostedTreesRegressor original(params);
  original.fit(train);

  std::stringstream ss;
  save(ss, original);
  const BoostedTreesRegressor loaded = load_boosted_trees(ss);
  EXPECT_EQ(loaded.params().rounds, 25);
  EXPECT_DOUBLE_EQ(loaded.params().learning_rate, 0.07);
  EXPECT_EQ(loaded.params().tree.max_depth, 4);
  EXPECT_DOUBLE_EQ(loaded.base_prediction(), original.base_prediction());
}

TEST(SerializeBoostedTrees, RejectsUnfittedAndGarbage) {
  std::stringstream ss;
  EXPECT_THROW(save(ss, BoostedTreesRegressor{}), std::runtime_error);
  std::stringstream bad("wrong-magic");
  EXPECT_THROW((void)load_boosted_trees(bad), std::runtime_error);
  std::stringstream truncated("hetopt-boosted-trees-v1\n10 0.1 5 3 6 1 99\n2.5\n3 1\n");
  EXPECT_THROW((void)load_boosted_trees(truncated), std::runtime_error);
}

TEST(ExportedNodes, FromNodesValidatesStructure) {
  std::vector<RegressionTree::ExportedNode> bad_child{
      {0, 0.5, 7, 2, 0.0}, {-1, 0, -1, -1, 1.0}, {-1, 0, -1, -1, 2.0}};
  EXPECT_THROW((void)RegressionTree::from_nodes(TreeParams{}, bad_child, 2),
               std::invalid_argument);
  std::vector<RegressionTree::ExportedNode> bad_feature{
      {5, 0.5, 1, 2, 0.0}, {-1, 0, -1, -1, 1.0}, {-1, 0, -1, -1, 2.0}};
  EXPECT_THROW((void)RegressionTree::from_nodes(TreeParams{}, bad_feature, 2),
               std::invalid_argument);
  std::vector<RegressionTree::ExportedNode> half_leaf{{0, 0.5, 1, -1, 0.0},
                                                      {-1, 0, -1, -1, 1.0}};
  EXPECT_THROW((void)RegressionTree::from_nodes(TreeParams{}, half_leaf, 2),
               std::invalid_argument);
  EXPECT_THROW((void)RegressionTree::from_nodes(TreeParams{}, {}, 2),
               std::invalid_argument);
}

TEST(FeatureImportance, IdentifiesInformativeFeature) {
  // Feature 1 carries all signal; importance must concentrate there.
  Dataset d({"noise", "signal"});
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 300; ++i) {
    const double noise = rng.uniform(0, 1);
    const double signal = rng.uniform(0, 10);
    d.add(std::vector<double>{noise, signal}, signal * signal);
  }
  BoostedTreesParams params;
  params.rounds = 40;
  BoostedTreesRegressor model(params);
  model.fit(d);
  const auto importance = model.feature_importance(2);
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_NEAR(importance[0] + importance[1], 1.0, 1e-12);
  EXPECT_GT(importance[1], 0.8);
}

TEST(FeatureImportance, AllZeroWhenNoSplits) {
  Dataset d({"x"});
  d.add(std::vector<double>{1.0}, 5.0);
  d.add(std::vector<double>{1.0}, 5.0);
  BoostedTreesParams params;
  params.rounds = 5;
  BoostedTreesRegressor model(params);
  model.fit(d);  // constant target & feature: no splits possible
  const auto importance = model.feature_importance(1);
  EXPECT_DOUBLE_EQ(importance[0], 0.0);
}

}  // namespace
}  // namespace hetopt::ml
