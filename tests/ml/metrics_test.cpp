#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/linear_regression.hpp"

namespace hetopt::ml {
namespace {

TEST(Metrics, PaperEquations) {
  // Eq. 5 and Eq. 6 from the paper.
  EXPECT_DOUBLE_EQ(absolute_error(2.0, 1.5), 0.5);
  EXPECT_DOUBLE_EQ(absolute_error(1.5, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(percent_error(2.0, 1.5), 25.0);
  EXPECT_THROW((void)percent_error(0.0, 1.0), std::invalid_argument);
}

TEST(Metrics, SummaryOverKnownVectors) {
  const std::vector<double> measured{1.0, 2.0, 4.0};
  const std::vector<double> predicted{1.1, 1.8, 4.0};
  const ErrorSummary s = summarize_errors(measured, predicted);
  EXPECT_EQ(s.count, 3u);
  EXPECT_NEAR(s.mean_absolute, (0.1 + 0.2 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(s.mean_percent, (10.0 + 10.0 + 0.0) / 3.0, 1e-9);
  EXPECT_NEAR(s.max_absolute, 0.2, 1e-12);
  EXPECT_NEAR(s.rmse, std::sqrt((0.01 + 0.04) / 3.0), 1e-12);
}

TEST(Metrics, SummaryRejectsBadInput) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)summarize_errors(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW((void)summarize_errors(empty, empty), std::invalid_argument);
}

TEST(Metrics, EvaluateRunsModelOverDataset) {
  Dataset train({"x"});
  for (int i = 0; i < 10; ++i) {
    train.add(std::vector<double>{static_cast<double>(i)}, 2.0 * i + 1.0);
  }
  LinearRegressor model;
  model.fit(train);
  std::vector<double> abs_errors;
  const ErrorSummary s = evaluate(model, train, &abs_errors);
  EXPECT_EQ(s.count, 10u);
  EXPECT_LT(s.mean_absolute, 1e-9);
  EXPECT_EQ(abs_errors.size(), 10u);
}

TEST(Metrics, EvaluateRejectsEmptyDataset) {
  LinearRegressor model;
  Dataset d({"x"});
  d.add(std::vector<double>{1.0}, 2.0);
  model.fit(d);
  EXPECT_THROW((void)evaluate(model, Dataset({"x"})), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::ml
