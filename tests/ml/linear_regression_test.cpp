#include "ml/linear_regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hetopt::ml {
namespace {

TEST(LinearRegressorTest, RecoversExactLinearModel) {
  Dataset d({"x1", "x2"});
  // y = 2 + 3*x1 - x2, noiseless.
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 50; ++i) {
    const double x1 = rng.uniform(-5, 5);
    const double x2 = rng.uniform(-5, 5);
    d.add(std::vector<double>{x1, x2}, 2.0 + 3.0 * x1 - x2);
  }
  LinearRegressor model(0.0);
  model.fit(d);
  ASSERT_TRUE(model.fitted());
  EXPECT_NEAR(model.coefficients()[0], 2.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[1], 3.0, 1e-9);
  EXPECT_NEAR(model.coefficients()[2], -1.0, 1e-9);
  EXPECT_NEAR(model.predict(std::vector<double>{1.0, 1.0}), 4.0, 1e-9);
}

TEST(LinearRegressorTest, RidgeRescuesCollinearFeatures) {
  Dataset d({"x", "x_copy"});
  for (int i = 0; i < 20; ++i) {
    const double x = i;
    d.add(std::vector<double>{x, x}, 2.0 * x);  // perfectly collinear
  }
  LinearRegressor model(1e-6);
  EXPECT_NO_THROW(model.fit(d));
  EXPECT_NEAR(model.predict(std::vector<double>{10.0, 10.0}), 20.0, 1e-3);
}

TEST(LinearRegressorTest, UsageErrors) {
  LinearRegressor model;
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(model.fit(Dataset({"x"})), std::invalid_argument);
  EXPECT_THROW(LinearRegressor(-1.0), std::invalid_argument);

  Dataset d({"x"});
  d.add(std::vector<double>{1.0}, 1.0);
  d.add(std::vector<double>{2.0}, 2.0);
  model.fit(d);
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(PoissonRegressorTest, RecoversExponentialModel) {
  Dataset d({"x"});
  // y = exp(0.5 + 0.3 x), noiseless.
  for (int i = 0; i < 40; ++i) {
    const double x = 0.1 * i - 2.0;
    d.add(std::vector<double>{x}, std::exp(0.5 + 0.3 * x));
  }
  PoissonRegressor model;
  model.fit(d);
  ASSERT_TRUE(model.fitted());
  EXPECT_NEAR(model.predict(std::vector<double>{0.0}), std::exp(0.5), 0.02);
  EXPECT_NEAR(model.predict(std::vector<double>{2.0}), std::exp(1.1), 0.05);
}

TEST(PoissonRegressorTest, PredictionsAlwaysPositive) {
  Dataset d({"x"});
  for (int i = 1; i <= 30; ++i) {
    d.add(std::vector<double>{static_cast<double>(i)}, 0.1 * i);
  }
  PoissonRegressor model;
  model.fit(d);
  for (double x = -100.0; x <= 100.0; x += 10.0) {
    EXPECT_GT(model.predict(std::vector<double>{x}), 0.0);
  }
}

TEST(PoissonRegressorTest, RejectsNonPositiveTargets) {
  Dataset d({"x"});
  d.add(std::vector<double>{1.0}, 0.0);
  PoissonRegressor model;
  EXPECT_THROW(model.fit(d), std::invalid_argument);
  EXPECT_THROW(PoissonRegressor(0), std::invalid_argument);
}

TEST(RegressorInterface, NamesIdentifyModels) {
  EXPECT_EQ(LinearRegressor().name(), "LinearRegression");
  EXPECT_EQ(PoissonRegressor().name(), "PoissonRegression");
}

}  // namespace
}  // namespace hetopt::ml
