#include "ml/boosted_trees.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace hetopt::ml {
namespace {

Dataset smooth_surface(std::size_t n, std::uint64_t seed, double noise_sigma = 0.0) {
  Dataset d({"x1", "x2"});
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(0, 4);
    const double x2 = rng.uniform(0, 4);
    const double y =
        std::exp(0.3 * x1) + 2.0 / (1.0 + x2) + (noise_sigma > 0 ? rng.normal(0, noise_sigma) : 0.0);
    d.add(std::vector<double>{x1, x2}, y);
  }
  return d;
}

TEST(BoostedTreesTest, BeatsSingleTreeOnSmoothSurface) {
  const Dataset train = smooth_surface(400, 1);
  const Dataset test = smooth_surface(200, 2);

  RegressionTree tree(TreeParams{5, 3, 6});
  tree.fit(train);
  const ErrorSummary tree_err = evaluate(tree, test);

  BoostedTreesParams params;
  params.rounds = 150;
  params.learning_rate = 0.1;
  BoostedTreesRegressor boosted(params);
  boosted.fit(train);
  const ErrorSummary boosted_err = evaluate(boosted, test);

  EXPECT_LT(boosted_err.rmse, tree_err.rmse);
}

TEST(BoostedTreesTest, TrainingErrorNonIncreasingInRounds) {
  // Staged-prediction property: adding rounds never hurts the training SSE
  // (least-squares boosting with full sampling).
  const Dataset train = smooth_surface(300, 3);
  BoostedTreesParams params;
  params.rounds = 60;
  params.subsample = 1.0;
  BoostedTreesRegressor model(params);
  model.fit(train);

  double prev = 1e300;
  for (int rounds : {0, 5, 15, 30, 60}) {
    double sse = 0.0;
    for (std::size_t i = 0; i < train.size(); ++i) {
      const double e = train.target(i) - model.predict_staged(train.row(i), rounds);
      sse += e * e;
    }
    EXPECT_LE(sse, prev + 1e-9) << "rounds " << rounds;
    prev = sse;
  }
}

TEST(BoostedTreesTest, ZeroRoundsIsBaseMean) {
  Dataset d({"x"});
  d.add(std::vector<double>{0.0}, 2.0);
  d.add(std::vector<double>{1.0}, 6.0);
  BoostedTreesRegressor model;
  model.fit(d);
  EXPECT_DOUBLE_EQ(model.predict_staged(std::vector<double>{0.5}, 0), 4.0);
}

TEST(BoostedTreesTest, DeterministicWithFixedSeed) {
  const Dataset train = smooth_surface(200, 4);
  BoostedTreesParams params;
  params.rounds = 40;
  params.subsample = 0.7;
  params.seed = 99;
  BoostedTreesRegressor a(params);
  BoostedTreesRegressor b(params);
  a.fit(train);
  b.fit(train);
  for (double x = 0.0; x < 4.0; x += 0.5) {
    const std::vector<double> q{x, 4.0 - x};
    EXPECT_DOUBLE_EQ(a.predict(q), b.predict(q));
  }
}

TEST(BoostedTreesTest, SubsamplingStillLearns) {
  const Dataset train = smooth_surface(400, 5);
  const Dataset test = smooth_surface(200, 6);
  BoostedTreesParams params;
  params.rounds = 120;
  params.subsample = 0.6;
  BoostedTreesRegressor model(params);
  model.fit(train);
  const ErrorSummary err = evaluate(model, test);
  EXPECT_LT(err.mean_percent, 5.0);
}

TEST(BoostedTreesTest, NoisyTargetsStillCloseToTruth) {
  const Dataset train = smooth_surface(600, 7, /*noise_sigma=*/0.05);
  BoostedTreesParams params;
  params.rounds = 150;
  BoostedTreesRegressor model(params);
  model.fit(train);
  // Compare against the noiseless surface at fresh points.
  util::Xoshiro256 rng(8);
  double pct = 0.0;
  constexpr int kProbes = 200;
  for (int i = 0; i < kProbes; ++i) {
    const double x1 = rng.uniform(0.2, 3.8);
    const double x2 = rng.uniform(0.2, 3.8);
    const double truth = std::exp(0.3 * x1) + 2.0 / (1.0 + x2);
    pct += percent_error(truth, model.predict(std::vector<double>{x1, x2}));
  }
  EXPECT_LT(pct / kProbes, 8.0);
}

TEST(BoostedTreesTest, ParameterValidation) {
  BoostedTreesParams p;
  p.rounds = 0;
  EXPECT_THROW(BoostedTreesRegressor{p}, std::invalid_argument);
  p = {};
  p.learning_rate = 0.0;
  EXPECT_THROW(BoostedTreesRegressor{p}, std::invalid_argument);
  p = {};
  p.learning_rate = 1.5;
  EXPECT_THROW(BoostedTreesRegressor{p}, std::invalid_argument);
  p = {};
  p.subsample = 0.0;
  EXPECT_THROW(BoostedTreesRegressor{p}, std::invalid_argument);
}

TEST(BoostedTreesTest, UsageErrors) {
  BoostedTreesRegressor model;
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW((void)model.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(model.fit(Dataset({"x"})), std::invalid_argument);

  Dataset d({"x"});
  d.add(std::vector<double>{1.0}, 1.0);
  d.add(std::vector<double>{2.0}, 2.0);
  model.fit(d);
  EXPECT_THROW((void)model.predict_staged(std::vector<double>{1.0}, -1),
               std::invalid_argument);
  EXPECT_THROW((void)model.predict_staged(std::vector<double>{1.0},
                                          model.trained_rounds() + 1),
               std::invalid_argument);
  EXPECT_EQ(model.name(), "BoostedDecisionTreeRegression");
}

class LearningRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(LearningRateSweep, ConvergesForReasonableRates) {
  const double lr = GetParam();
  const Dataset train = smooth_surface(300, 11);
  BoostedTreesParams params;
  params.rounds = 200;
  params.learning_rate = lr;
  BoostedTreesRegressor model(params);
  model.fit(train);
  const ErrorSummary err = evaluate(model, train);
  EXPECT_LT(err.mean_percent, 3.0) << "learning rate " << lr;
}

INSTANTIATE_TEST_SUITE_P(Rates, LearningRateSweep, ::testing::Values(0.05, 0.1, 0.3));

}  // namespace
}  // namespace hetopt::ml
