// Unit tests of the out-of-core page cache: LRU eviction under a bounded
// resident budget, pin refcounts blocking eviction, backpressure when every
// slot is pinned, halo layout, per-source byte parity, and the background
// PrefetchReader's ring/backpressure behavior. Everything here must be
// TSan-clean (the `io` ctest label runs under the sanitizer jobs).
#include "dna/paged_genome.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "dna/generator.hpp"
#include "dna/prefetch_reader.hpp"
#include "util/rng.hpp"

namespace hetopt::dna {
namespace {

[[nodiscard]] std::string pattern_text(std::size_t n) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(n, 'A');
  for (std::size_t i = 0; i < n; ++i) s[i] = kBases[(i / 3 + i) % 4];
  return s;
}

[[nodiscard]] PagedGenome make_buffer_genome(const std::string& text,
                                             std::size_t page_bytes,
                                             std::size_t resident,
                                             std::size_t halo = 63) {
  PagedGenomeOptions options;
  options.page_bytes = page_bytes;
  options.resident_pages = resident;
  options.halo_bytes = halo;
  return PagedGenome(std::make_unique<BufferPageSource>(text), options);
}

TEST(PagedGenome, RejectsBadConstruction) {
  PagedGenomeOptions zero_page;
  zero_page.page_bytes = 0;
  EXPECT_THROW(PagedGenome(std::make_unique<BufferPageSource>("ACGT"), zero_page),
               std::invalid_argument);
  PagedGenomeOptions zero_budget;
  zero_budget.resident_pages = 0;
  EXPECT_THROW(PagedGenome(std::make_unique<BufferPageSource>("ACGT"), zero_budget),
               std::invalid_argument);
  EXPECT_THROW(PagedGenome(nullptr, PagedGenomeOptions{}), std::invalid_argument);
}

TEST(PagedGenome, PageGeometryAndPayloadParity) {
  const std::string text = pattern_text(1000);
  PagedGenome genome = make_buffer_genome(text, 256, 4);
  EXPECT_EQ(genome.size(), text.size());
  EXPECT_EQ(genome.page_count(), 4u);  // 256+256+256+232
  EXPECT_EQ(genome.page_payload_bytes(3), 232u);

  std::string reassembled;
  for (std::size_t p = 0; p < genome.page_count(); ++p) {
    auto ref = genome.acquire(p);
    EXPECT_EQ(ref.page(), p);
    EXPECT_EQ(ref.begin(), p * 256);
    reassembled.append(ref.payload());
  }
  EXPECT_EQ(reassembled, text);
}

TEST(PagedGenome, HaloCarriesPrecedingBytes) {
  const std::string text = pattern_text(1024);
  PagedGenome genome = make_buffer_genome(text, 256, 4, /*halo=*/16);
  {
    auto ref = genome.acquire(0);
    EXPECT_EQ(ref.halo(), 0u);  // nothing precedes page 0
    EXPECT_EQ(ref.view(), ref.payload());
  }
  {
    auto ref = genome.acquire(2);
    EXPECT_EQ(ref.halo(), 16u);
    // view = 16 halo bytes (the tail of page 1) + the payload.
    EXPECT_EQ(ref.view().substr(0, 16), text.substr(2 * 256 - 16, 16));
    EXPECT_EQ(ref.payload(), text.substr(2 * 256, 256));
  }
}

TEST(PagedGenome, AcquireOutOfRangeThrows) {
  PagedGenome genome = make_buffer_genome(pattern_text(100), 64, 2);
  EXPECT_THROW((void)genome.acquire(genome.page_count()), std::out_of_range);
}

TEST(PagedGenome, LruEvictsLeastRecentlyUsedUnpinnedPage) {
  const std::string text = pattern_text(1024);
  PagedGenome genome = make_buffer_genome(text, 128, 2);  // 8 pages, 2 resident
  (void)genome.acquire(0);  // released immediately
  (void)genome.acquire(1);
  EXPECT_EQ(genome.stats().loads, 2u);
  EXPECT_EQ(genome.stats().evictions, 0u);

  // Touch page 0 so page 1 is the LRU victim; page 2 must evict page 1.
  (void)genome.acquire(0);
  EXPECT_EQ(genome.stats().hits, 1u);
  (void)genome.acquire(2);
  EXPECT_EQ(genome.stats().evictions, 1u);
  // Page 0 stayed resident; page 1 was evicted and reloads.
  (void)genome.acquire(0);
  EXPECT_EQ(genome.stats().hits, 2u);
  (void)genome.acquire(1);
  EXPECT_EQ(genome.stats().loads, 4u);
}

TEST(PagedGenome, PinBlocksEviction) {
  const std::string text = pattern_text(512);
  PagedGenome genome = make_buffer_genome(text, 128, 2);  // 4 pages, 2 resident
  auto pinned = genome.acquire(0);
  (void)genome.acquire(1);
  (void)genome.acquire(2);  // must evict page 1 (page 0 is pinned), not page 0
  (void)genome.acquire(3);  // must evict page 2
  EXPECT_EQ(genome.stats().evictions, 2u);
  // Page 0 never left the cache while pinned.
  const auto again = genome.acquire(0);
  EXPECT_EQ(genome.stats().hits, 1u);
  EXPECT_EQ(again.payload(), text.substr(0, 128));
}

TEST(PagedGenome, BackpressureWaitsUntilAPinDrops) {
  const std::string text = pattern_text(512);
  PagedGenome genome = make_buffer_genome(text, 128, 2);
  auto pin0 = genome.acquire(0);
  auto pin1 = genome.acquire(1);

  // Every slot pinned: a third acquire must block until one pin releases.
  std::atomic<bool> acquired{false};
  std::thread blocked([&] {
    const auto ref = genome.acquire(2);
    acquired.store(true, std::memory_order_release);
    EXPECT_EQ(ref.payload(), text.substr(2 * 128, 128));
  });
  // Give the thread a chance to hit the wait (not a proof, but the stats
  // check below confirms the wait actually happened).
  while (genome.stats().backpressure_waits == 0) std::this_thread::yield();
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  pin0.release();
  blocked.join();
  EXPECT_TRUE(acquired.load(std::memory_order_acquire));
  EXPECT_GE(genome.stats().backpressure_waits, 1u);
}

TEST(PagedGenome, PageRefMoveTransfersThePin) {
  PagedGenome genome = make_buffer_genome(pattern_text(512), 128, 2);
  auto a = genome.acquire(0);
  auto b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): moved-from query is the point
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.page(), 0u);
  b.release();
  EXPECT_FALSE(b.valid());
  // The pin is gone: both slots are evictable again.
  (void)genome.acquire(1);
  (void)genome.acquire(2);
  ASSERT_NO_THROW((void)genome.acquire(3));
}

TEST(PagedGenome, GeneratorSourceIsDeterministicAcrossAccessOrder) {
  MarkovParams params;
  auto make = [&] {
    PagedGenomeOptions options;
    options.page_bytes = 4096;
    options.resident_pages = 3;
    return PagedGenome(std::make_unique<GeneratorPageSource>(
                           std::size_t{64} * 1024, /*seed=*/42u, params,
                           std::vector<std::string>{"TATAAA"}, /*copies_per_block=*/2),
                       options);
  };
  PagedGenome forward = make();
  PagedGenome backward = make();
  std::string a;
  std::string b;
  for (std::size_t p = 0; p < forward.page_count(); ++p) {
    a.append(forward.acquire(p).payload());
  }
  for (std::size_t p = backward.page_count(); p-- > 0;) {
    const auto ref = backward.acquire(p);
    b.insert(0, std::string(ref.payload()));
  }
  EXPECT_EQ(a, b);
  // The planted motif actually appears.
  EXPECT_NE(a.find("TATAAA"), std::string::npos);
}

TEST(PagedGenome, FileSourceServesExactBytes) {
  const std::string text = pattern_text(3000);
  const std::string path = ::testing::TempDir() + "hetopt_paged_file_test.raw";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
    ASSERT_TRUE(out.good());
  }
  PagedGenomeOptions options;
  options.page_bytes = 512;
  options.resident_pages = 2;
  PagedGenome genome(std::make_unique<FilePageSource>(path), options);
  EXPECT_EQ(genome.size(), text.size());
  std::string reassembled;
  for (std::size_t p = 0; p < genome.page_count(); ++p) {
    reassembled.append(genome.acquire(p).payload());
  }
  EXPECT_EQ(reassembled, text);
  EXPECT_GE(genome.stats().bytes_read, text.size());
  std::remove(path.c_str());
}

TEST(PagedGenome, FileSourceMissingFileThrows) {
  EXPECT_THROW(FilePageSource("/nonexistent/hetopt-no-such-file.raw"),
               std::runtime_error);
}

TEST(PagedGenome, ColdStallsCountConsumerLoadsOnly) {
  PagedGenome genome = make_buffer_genome(pattern_text(1024), 256, 4);
  (void)genome.acquire(0);            // consumer load: a cold stall
  (void)genome.acquire_prefetch(1);   // prefetch load: not a stall
  const CacheStats stats = genome.stats();
  EXPECT_EQ(stats.loads, 2u);
  EXPECT_EQ(stats.cold_stalls, 1u);
  genome.reset_stats();
  EXPECT_EQ(genome.stats().loads, 0u);
}

// --- PrefetchReader ----------------------------------------------------------

TEST(PrefetchReader, LoadsAheadOfThePublishedFrontier) {
  const std::string text = pattern_text(2048);
  PagedGenome genome = make_buffer_genome(text, 256, 6);  // 8 pages
  PrefetchReader reader(genome, 0, genome.page_count(), /*depth=*/2);
  // Pages 0..1 load without the consumer asking.
  while (genome.stats().loads < 2) std::this_thread::yield();
  // Publishing page 4 moves the window to [4, 6). The reader chases the
  // frontier: pages 2..3 were passed by the consumer and are skipped, not
  // re-fetched behind it.
  reader.publish(4);
  while (genome.stats().loads < 4) std::this_thread::yield();
  reader.stop();
  EXPECT_EQ(genome.stats().loads, 4u);  // pages 0, 1, 4, 5 only
  const PrefetchStats stats = reader.stats();
  EXPECT_GE(stats.pages_prefetched, 4u);
  // Everything the reader loaded was a prefetch, not a consumer stall.
  EXPECT_EQ(genome.stats().cold_stalls, 0u);
}

TEST(PrefetchReader, RingFullWaitsUntilFrontierMoves) {
  PagedGenome genome = make_buffer_genome(pattern_text(2048), 256, 6);
  PrefetchReader reader(genome, 0, genome.page_count(), /*depth=*/1);
  while (genome.stats().loads < 1) std::this_thread::yield();
  // Depth 1 with frontier 0: the ring is full after page 0 — the reader
  // must wait rather than run ahead.
  while (reader.stats().ring_full_waits == 0) std::this_thread::yield();
  EXPECT_EQ(genome.stats().loads, 1u);
  // Publishing page 3 moves the one-page window to [3, 4): the reader
  // jumps straight there instead of walking 1..2 behind the consumer.
  reader.publish(3);
  while (genome.stats().loads < 2) std::this_thread::yield();
  reader.stop();
  EXPECT_EQ(genome.stats().loads, 2u);  // pages 0 and 3 only
  EXPECT_GE(reader.stats().pages_prefetched, 2u);
}

TEST(PrefetchReader, DepthZeroStartsNoThread) {
  PagedGenome genome = make_buffer_genome(pattern_text(1024), 256, 4);
  PrefetchReader reader(genome, 0, genome.page_count(), /*depth=*/0);
  reader.publish(2);
  reader.stop();
  EXPECT_EQ(genome.stats().loads, 0u);
  EXPECT_EQ(reader.stats().pages_prefetched, 0u);
}

TEST(PrefetchReader, DepthSelfClampsToTheResidentBudget) {
  PagedGenome genome = make_buffer_genome(pattern_text(2048), 256, 3);
  PrefetchReader reader(genome, 0, genome.page_count(), /*depth=*/100);
  EXPECT_EQ(reader.depth(), 2u);  // resident_pages - 1
  reader.stop();
}

TEST(PrefetchReader, StopCancelsAnAcquireBlockedOnBackpressure) {
  // Budget 3, two consumer pins held for the whole test: after prefetching
  // page 0 the reader's acquire of page 1 blocks on backpressure (all three
  // slots pinned). stop() must cancel that wait and join anyway.
  PagedGenome genome = make_buffer_genome(pattern_text(2560), 256, 3);
  auto pin_a = genome.acquire(8);
  auto pin_b = genome.acquire(9);
  PrefetchReader reader(genome, 0, 8, /*depth=*/2);
  while (genome.stats().loads < 3) std::this_thread::yield();
  while (genome.stats().backpressure_waits == 0) std::this_thread::yield();
  reader.stop();  // joins even though the acquire never completed
  EXPECT_GE(reader.stats().pages_prefetched, 1u);
  EXPECT_EQ(genome.stats().loads, 3u);
}

}  // namespace
}  // namespace hetopt::dna
