#include "dna/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hetopt::dna {
namespace {

TEST(Fasta, WriteReadRoundTrip) {
  const std::vector<Sequence> seqs{Sequence("alpha", "ACGTACGTACGT"),
                                   Sequence("beta", "GGGGCCCC")};
  std::stringstream ss;
  write_fasta(ss, seqs, 5);
  const auto back = read_fasta(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[0].bases(), "ACGTACGTACGT");
  EXPECT_EQ(back[1].name(), "beta");
  EXPECT_EQ(back[1].bases(), "GGGGCCCC");
}

TEST(Fasta, LineWidthWrapsOutput) {
  std::stringstream ss;
  write_fasta(ss, {Sequence("s", "ACGTACGT")}, 4);
  EXPECT_EQ(ss.str(), ">s\nACGT\nACGT\n");
}

TEST(Fasta, RejectsZeroLineWidth) {
  std::stringstream ss;
  EXPECT_THROW(write_fasta(ss, {}, 0), std::invalid_argument);
}

TEST(Fasta, ReadsMultilineRecordsAndCrLf) {
  std::stringstream ss(">one desc ignored\r\nACGT\r\nAC\r\n>two\nGGTT\n");
  const auto seqs = read_fasta(ss);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].name(), "one");
  EXPECT_EQ(seqs[0].bases(), "ACGTAC");
  EXPECT_EQ(seqs[1].bases(), "GGTT");
}

TEST(Fasta, SkipPolicyDropsAmbiguous) {
  std::stringstream ss(">s\nACNNGT\n");
  const auto seqs = read_fasta(ss, AmbiguityPolicy::kSkip);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].bases(), "ACGT");
}

TEST(Fasta, RejectPolicyThrows) {
  std::stringstream ss(">s\nACNT\n");
  EXPECT_THROW((void)read_fasta(ss, AmbiguityPolicy::kReject), std::invalid_argument);
}

TEST(Fasta, RandomizePolicyPreservesLength) {
  std::stringstream ss(">s\nACNNNNGT\n");
  const auto seqs = read_fasta(ss, AmbiguityPolicy::kRandomize);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].size(), 8u);
}

TEST(Fasta, LowercaseInputUppercased) {
  std::stringstream ss(">s\nacgt\n");
  EXPECT_EQ(read_fasta(ss)[0].bases(), "ACGT");
}

TEST(Fasta, EmptyStreamYieldsNothing) {
  std::stringstream ss("");
  EXPECT_TRUE(read_fasta(ss).empty());
}

TEST(Fasta, HeaderlessBasesGetDefaultName) {
  std::stringstream ss("ACGT\n");
  const auto seqs = read_fasta(ss);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].name(), "unnamed");
}

}  // namespace
}  // namespace hetopt::dna
