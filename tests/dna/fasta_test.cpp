#include "dna/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hetopt::dna {
namespace {

TEST(Fasta, WriteReadRoundTrip) {
  const std::vector<Sequence> seqs{Sequence("alpha", "ACGTACGTACGT"),
                                   Sequence("beta", "GGGGCCCC")};
  std::stringstream ss;
  write_fasta(ss, seqs, 5);
  const auto back = read_fasta(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name(), "alpha");
  EXPECT_EQ(back[0].bases(), "ACGTACGTACGT");
  EXPECT_EQ(back[1].name(), "beta");
  EXPECT_EQ(back[1].bases(), "GGGGCCCC");
}

TEST(Fasta, LineWidthWrapsOutput) {
  std::stringstream ss;
  write_fasta(ss, {Sequence("s", "ACGTACGT")}, 4);
  EXPECT_EQ(ss.str(), ">s\nACGT\nACGT\n");
}

TEST(Fasta, RejectsZeroLineWidth) {
  std::stringstream ss;
  EXPECT_THROW(write_fasta(ss, {}, 0), std::invalid_argument);
}

TEST(Fasta, ReadsMultilineRecordsAndCrLf) {
  std::stringstream ss(">one desc ignored\r\nACGT\r\nAC\r\n>two\nGGTT\n");
  const auto seqs = read_fasta(ss);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].name(), "one");
  EXPECT_EQ(seqs[0].bases(), "ACGTAC");
  EXPECT_EQ(seqs[1].bases(), "GGTT");
}

TEST(Fasta, SkipPolicyDropsAmbiguous) {
  std::stringstream ss(">s\nACNNGT\n");
  const auto seqs = read_fasta(ss, AmbiguityPolicy::kSkip);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].bases(), "ACGT");
}

TEST(Fasta, RejectPolicyThrows) {
  std::stringstream ss(">s\nACNT\n");
  EXPECT_THROW((void)read_fasta(ss, AmbiguityPolicy::kReject), std::invalid_argument);
}

TEST(Fasta, RandomizePolicyPreservesLength) {
  std::stringstream ss(">s\nACNNNNGT\n");
  const auto seqs = read_fasta(ss, AmbiguityPolicy::kRandomize);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].size(), 8u);
}

TEST(Fasta, LowercaseInputUppercased) {
  std::stringstream ss(">s\nacgt\n");
  EXPECT_EQ(read_fasta(ss)[0].bases(), "ACGT");
}

TEST(Fasta, EmptyStreamYieldsNothing) {
  std::stringstream ss("");
  EXPECT_TRUE(read_fasta(ss).empty());
}

TEST(Fasta, HeaderlessBasesGetDefaultName) {
  std::stringstream ss("ACGT\n");
  const auto seqs = read_fasta(ss);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0].name(), "unnamed");
}

// --- FastaStreamDecoder: block-wise ingestion ------------------------------

/// Oracle: all bases of every record, concatenated, via the whole-file reader.
[[nodiscard]] std::string read_all_bases(const std::string& fasta, AmbiguityPolicy policy) {
  std::stringstream ss(fasta);
  std::string bases;
  for (const Sequence& s : read_fasta(ss, policy)) bases += s.bases();
  return bases;
}

/// Streams `fasta` through a fresh decoder in `block` byte pieces.
[[nodiscard]] std::string decode_blocked(const std::string& fasta, std::size_t block,
                                         AmbiguityPolicy policy = AmbiguityPolicy::kSkip) {
  FastaStreamDecoder decoder(policy);
  std::string out;
  for (std::size_t pos = 0; pos < fasta.size(); pos += block) {
    decoder.feed(std::string_view(fasta).substr(pos, block), out);
  }
  return out;
}

TEST(FastaStream, BlockingInvarianceProperty) {
  // The load-bearing guarantee of the paged materializer: the decoded bases
  // are byte-identical for EVERY blocking of the same input, even when
  // headers, CRLF pairs and line breaks straddle block boundaries.
  const std::string fasta =
      ">chr1 some long description that blocks will cut\r\n"
      "ACGTacgtNNGTACCA\r\nTTGGCCAA\r\n"
      ">chr2\nACGT\nacgtn\n"
      ">chr3 trailing, no final newline\nGATTACA";
  const std::string oracle = read_all_bases(fasta, AmbiguityPolicy::kSkip);
  ASSERT_FALSE(oracle.empty());
  for (const std::size_t block : {1u, 2u, 3u, 5u, 7u, 11u, 16u, 64u, 4096u}) {
    EXPECT_EQ(decode_blocked(fasta, block), oracle) << "block=" << block;
  }
}

TEST(FastaStream, HeaderStraddlingBlocksIsNotDecoded) {
  // '>' arrives in one block, the header body and newline in later ones.
  FastaStreamDecoder decoder;
  std::string out;
  decoder.feed(">", out);
  decoder.feed("chrACGT name with base letters", out);
  decoder.feed("\nACGT", out);
  EXPECT_EQ(out, "ACGT");  // nothing inside the header leaked into the bases
  EXPECT_EQ(decoder.records(), 1u);
}

TEST(FastaStream, MidLineGreaterThanIsNotAHeader) {
  // A '>' that is not at a line start is data, not a record marker; under
  // kSkip it is dropped as a non-base, and no record is counted.
  FastaStreamDecoder decoder;
  std::string out;
  decoder.feed("AC", out);
  decoder.feed(">GT\n", out);
  EXPECT_EQ(out, "ACGT");
  EXPECT_EQ(decoder.records(), 0u);
}

TEST(FastaStream, CountsRecordsAcrossFeeds) {
  const std::string fasta = ">a\nAC\n>b\nGT\n>c\nTT\n";
  for (const std::size_t block : {1u, 4u, 100u}) {
    FastaStreamDecoder decoder;
    std::string out;
    for (std::size_t pos = 0; pos < fasta.size(); pos += block) {
      decoder.feed(std::string_view(fasta).substr(pos, block), out);
    }
    EXPECT_EQ(decoder.records(), 3u) << "block=" << block;
    EXPECT_EQ(out, "ACGTTT") << "block=" << block;
  }
}

TEST(FastaStream, RejectPolicyThrowsAcrossBlockBoundary) {
  FastaStreamDecoder decoder(AmbiguityPolicy::kReject);
  std::string out;
  decoder.feed(">s\nAC", out);
  EXPECT_THROW(decoder.feed("NT\n", out), std::invalid_argument);
}

TEST(FastaStream, RandomizePolicyIsBlockingInvariant) {
  // The randomizer stream carries across feeds, so even the pseudo-random
  // replacements are identical for every blocking.
  const std::string fasta = ">s\nACNNNNGTNNACGTNN\n>t\nNNNN\n";
  const std::string whole = decode_blocked(fasta, fasta.size(), AmbiguityPolicy::kRandomize);
  EXPECT_EQ(whole.size(), 20u);
  EXPECT_EQ(whole, read_all_bases(fasta, AmbiguityPolicy::kRandomize));
  for (const std::size_t block : {1u, 3u, 7u}) {
    EXPECT_EQ(decode_blocked(fasta, block, AmbiguityPolicy::kRandomize), whole)
        << "block=" << block;
  }
}

TEST(FastaStream, MaterializeToRawMatchesTheWholeFileReader) {
  std::string fasta;
  for (int r = 0; r < 5; ++r) {
    fasta += ">record" + std::to_string(r) + " description\n";
    for (int line = 0; line < 40; ++line) fasta += "ACGTACGTACGTacgtNACGT\n";
  }
  const std::string oracle = read_all_bases(fasta, AmbiguityPolicy::kSkip);
  // Tiny blocks force header/newline straddling inside the materializer.
  for (const std::size_t block : {3u, 64u, 1u << 16}) {
    std::stringstream in(fasta);
    std::stringstream raw;
    const std::size_t written = materialize_fasta_to_raw(in, raw, AmbiguityPolicy::kSkip, block);
    EXPECT_EQ(written, oracle.size()) << "block=" << block;
    EXPECT_EQ(raw.str(), oracle) << "block=" << block;
  }
}

TEST(FastaStream, MaterializeRejectsZeroBlock) {
  std::stringstream in(">s\nACGT\n");
  std::stringstream out;
  EXPECT_THROW((void)materialize_fasta_to_raw(in, out, AmbiguityPolicy::kSkip, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::dna
