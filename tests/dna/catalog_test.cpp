#include "dna/catalog.hpp"

#include <gtest/gtest.h>

namespace hetopt::dna {
namespace {

TEST(Catalog, ContainsThePapersFourGenomes) {
  const GenomeCatalog catalog;
  ASSERT_EQ(catalog.all().size(), 4u);
  EXPECT_DOUBLE_EQ(catalog.get("human").size_mb, 3170.0);
  EXPECT_DOUBLE_EQ(catalog.get("mouse").size_mb, 2770.0);
  EXPECT_DOUBLE_EQ(catalog.get("cat").size_mb, 2430.0);
  EXPECT_DOUBLE_EQ(catalog.get("dog").size_mb, 2380.0);
}

TEST(Catalog, SizesDescendHumanToDog) {
  const GenomeCatalog catalog;
  const auto& all = catalog.all();
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GT(all[i - 1].size_mb, all[i].size_mb);
  }
}

TEST(Catalog, UnknownOrganismThrows) {
  const GenomeCatalog catalog;
  EXPECT_THROW((void)catalog.get("platypus"), std::out_of_range);
}

TEST(Catalog, MaterializeIsDeterministicPerOrganism) {
  const GenomeCatalog catalog;
  const Sequence a = catalog.materialize("human", 10000);
  const Sequence b = catalog.materialize("human", 10000);
  EXPECT_EQ(a.bases(), b.bases());
  EXPECT_EQ(a.name(), "human");
  const Sequence c = catalog.materialize("mouse", 10000);
  EXPECT_NE(a.bases(), c.bases());
}

TEST(Catalog, MaterializeHonoursRequestedSize) {
  const GenomeCatalog catalog;
  EXPECT_EQ(catalog.materialize("cat", 12345).size(), 12345u);
}

TEST(Catalog, SeedsDerivedFromNames) {
  const GenomeCatalog catalog;
  EXPECT_NE(catalog.get("human").seed, catalog.get("mouse").seed);
}

TEST(Catalog, SizeBytesMatchesMb) {
  const GenomeCatalog catalog;
  const auto& human = catalog.get("human");
  EXPECT_EQ(human.size_bytes(),
            static_cast<std::size_t>(3170.0 * 1024.0 * 1024.0));
}

}  // namespace
}  // namespace hetopt::dna
