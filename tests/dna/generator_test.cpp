#include "dna/generator.hpp"

#include <gtest/gtest.h>

#include "automata/scanner.hpp"
#include "automata/aho_corasick.hpp"

namespace hetopt::dna {
namespace {

TEST(GeneratorTest, DeterministicInSeed) {
  const GenomeGenerator gen;
  EXPECT_EQ(gen.generate(1000, 42), gen.generate(1000, 42));
  EXPECT_NE(gen.generate(1000, 42), gen.generate(1000, 43));
}

TEST(GeneratorTest, LengthAndAlphabet) {
  const GenomeGenerator gen;
  const std::string s = gen.generate(5000, 1);
  EXPECT_EQ(s.size(), 5000u);
  for (char c : s) {
    EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T');
  }
}

TEST(GeneratorTest, ZeroLength) {
  const GenomeGenerator gen;
  EXPECT_TRUE(gen.generate(0, 1).empty());
}

TEST(GeneratorTest, TransitionMatrixRowsAreStochastic) {
  const GenomeGenerator gen(MarkovParams{0.45, 0.2, 0.3});
  for (const auto& row : gen.transition_matrix()) {
    double sum = 0.0;
    for (double p : row) {
      EXPECT_GE(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(GeneratorTest, GcContentApproachesTarget) {
  // CpG suppression slightly skews the stationary distribution away from the
  // nominal target, so use a generous tolerance.
  const GenomeGenerator gen(MarkovParams{0.41, 0.15, 0.25});
  const Sequence s("s", gen.generate(200000, 7));
  EXPECT_NEAR(s.gc_content(), 0.41, 0.04);
}

TEST(GeneratorTest, CpgSuppressionReducesCgDinucleotides) {
  const GenomeGenerator suppressed(MarkovParams{0.5, 0.0, 0.1});
  const GenomeGenerator neutral(MarkovParams{0.5, 0.0, 1.0});
  const auto count_cg = [](const std::string& s) {
    std::size_t n = 0;
    for (std::size_t i = 0; i + 1 < s.size(); ++i) {
      n += (s[i] == 'C' && s[i + 1] == 'G') ? 1U : 0U;
    }
    return n;
  };
  const std::size_t with = count_cg(suppressed.generate(100000, 3));
  const std::size_t without = count_cg(neutral.generate(100000, 3));
  EXPECT_LT(with * 2, without);  // at least halved
}

TEST(GeneratorTest, RejectsBadParams) {
  EXPECT_THROW(GenomeGenerator(MarkovParams{0.0, 0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(GenomeGenerator(MarkovParams{1.0, 0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(GenomeGenerator(MarkovParams{0.4, 1.0, 0.5}), std::invalid_argument);
  EXPECT_THROW(GenomeGenerator(MarkovParams{0.4, -0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(GenomeGenerator(MarkovParams{0.4, 0.1, 0.0}), std::invalid_argument);
}

TEST(MotifPlanting, PlantedMotifsAreFound) {
  const GenomeGenerator gen;
  const std::string motif = "GATTACAGATTACA";  // long enough to be rare
  const Sequence seq =
      gen.generate_with_motifs("s", 100000, 11, {{motif, 25}});
  const auto dfa = automata::build_aho_corasick({motif});
  // Planted copies never overlap, and a 14-mer essentially never occurs by
  // chance in 100 kB, so the count is >= 25 (paranoid: >=).
  EXPECT_GE(automata::count_matches(dfa, seq.view()), 25u);
}

TEST(MotifPlanting, RejectsOversizedAndInvalidMotifs) {
  const GenomeGenerator gen;
  EXPECT_THROW((void)gen.generate_with_motifs("s", 4, 1, {{"ACGTA", 1}}),
               std::invalid_argument);
  EXPECT_THROW((void)gen.generate_with_motifs("s", 100, 1, {{"ACNT", 1}}),
               std::invalid_argument);
  EXPECT_THROW((void)gen.generate_with_motifs("s", 100, 1, {{"", 1}}),
               std::invalid_argument);
}

TEST(MotifPlanting, NoMotifsEqualsPlainGeneration) {
  const GenomeGenerator gen;
  const Sequence planted = gen.generate_with_motifs("s", 1000, 5, {});
  EXPECT_EQ(planted.bases(), gen.generate(1000, 5));
}

class GcSweep : public ::testing::TestWithParam<double> {};

TEST_P(GcSweep, StationaryCompositionTracksParameter) {
  const double gc = GetParam();
  const GenomeGenerator gen(MarkovParams{gc, 0.1, 1.0});  // no CpG skew
  const Sequence s("s", gen.generate(150000, 99));
  EXPECT_NEAR(s.gc_content(), gc, 0.03);
}

INSTANTIATE_TEST_SUITE_P(Range, GcSweep, ::testing::Values(0.3, 0.41, 0.5, 0.6));

}  // namespace
}  // namespace hetopt::dna
