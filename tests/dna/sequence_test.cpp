#include "dna/sequence.hpp"

#include <gtest/gtest.h>

namespace hetopt::dna {
namespace {

TEST(SequenceTest, StoresUppercased) {
  const Sequence s("s1", "acgT");
  EXPECT_EQ(s.bases(), "ACGT");
  EXPECT_EQ(s.name(), "s1");
  EXPECT_EQ(s.size(), 4u);
  EXPECT_FALSE(s.empty());
}

TEST(SequenceTest, RejectsInvalidBases) {
  EXPECT_THROW(Sequence("bad", "ACXG"), std::invalid_argument);
  EXPECT_THROW(Sequence("bad", "AC GT"), std::invalid_argument);
}

TEST(SequenceTest, EmptyIsAllowed) {
  const Sequence s("empty", "");
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.gc_content(), 0.0);
}

TEST(SequenceTest, SliceClampsAtEnd) {
  const Sequence s("s", "ACGTACGT");
  EXPECT_EQ(s.slice(0, 4), "ACGT");
  EXPECT_EQ(s.slice(6, 10), "GT");
  EXPECT_EQ(s.slice(8, 2), "");
  EXPECT_EQ(s.slice(100, 2), "");
}

TEST(SequenceTest, GcContent) {
  EXPECT_DOUBLE_EQ(Sequence("s", "GGCC").gc_content(), 1.0);
  EXPECT_DOUBLE_EQ(Sequence("s", "AATT").gc_content(), 0.0);
  EXPECT_DOUBLE_EQ(Sequence("s", "ACGT").gc_content(), 0.5);
}

TEST(SequenceTest, BaseCountsSumToSize) {
  const Sequence s("s", "AACCCGGGGT");
  const auto counts = s.base_counts();
  EXPECT_EQ(counts[0], 2u);  // A
  EXPECT_EQ(counts[1], 3u);  // C
  EXPECT_EQ(counts[2], 4u);  // G
  EXPECT_EQ(counts[3], 1u);  // T
}

TEST(SequenceTest, IndexOperator) {
  const Sequence s("s", "ACGT");
  EXPECT_EQ(s[0], 'A');
  EXPECT_EQ(s[3], 'T');
}

}  // namespace
}  // namespace hetopt::dna
