#include "dna/alphabet.hpp"

#include <gtest/gtest.h>

namespace hetopt::dna {
namespace {

TEST(BaseCodes, RoundTrip) {
  for (const Base b : {Base::A, Base::C, Base::G, Base::T}) {
    const auto back = base_from_char(to_char(b));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, b);
  }
}

TEST(BaseCodes, CaseInsensitive) {
  EXPECT_EQ(base_from_char('a'), Base::A);
  EXPECT_EQ(base_from_char('t'), Base::T);
}

TEST(BaseCodes, RejectsNonBases) {
  EXPECT_FALSE(base_from_char('N').has_value());
  EXPECT_FALSE(base_from_char('X').has_value());
  EXPECT_FALSE(base_from_char(' ').has_value());
}

TEST(BaseSetTest, SingleAndAll) {
  const BaseSet a = BaseSet::single(Base::A);
  EXPECT_TRUE(a.contains(Base::A));
  EXPECT_FALSE(a.contains(Base::C));
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(BaseSet::all().size(), 4u);
  EXPECT_TRUE(BaseSet().empty());
}

TEST(Iupac, CanonicalCodes) {
  EXPECT_EQ(iupac_from_char('A')->size(), 1u);
  EXPECT_EQ(iupac_from_char('N')->size(), 4u);
  EXPECT_EQ(iupac_from_char('R')->size(), 2u);  // A,G
  EXPECT_TRUE(iupac_from_char('R')->contains(Base::A));
  EXPECT_TRUE(iupac_from_char('R')->contains(Base::G));
  EXPECT_EQ(iupac_from_char('B')->size(), 3u);  // not A
  EXPECT_FALSE(iupac_from_char('B')->contains(Base::A));
  EXPECT_EQ(iupac_from_char('u'), iupac_from_char('T'));  // RNA alias
}

TEST(Iupac, TwoBaseCodesPartitionCorrectly) {
  // W = A/T (weak), S = C/G (strong): complementary partitions.
  const BaseSet w = *iupac_from_char('W');
  const BaseSet s = *iupac_from_char('S');
  EXPECT_EQ(w.mask() | s.mask(), BaseSet::all().mask());
  EXPECT_EQ(w.mask() & s.mask(), 0);
}

TEST(Iupac, RejectsInvalid) {
  EXPECT_FALSE(iupac_from_char('Z').has_value());
  EXPECT_FALSE(iupac_from_char('1').has_value());
}

TEST(ValidateMotif, AcceptsIupacRejectsOthers) {
  EXPECT_TRUE(validate_motif("ACGT").empty());
  EXPECT_TRUE(validate_motif("TATAWAW").empty());
  EXPECT_FALSE(validate_motif("").empty());
  const std::string err = validate_motif("ACZT");
  EXPECT_NE(err.find("position 2"), std::string::npos);
}

TEST(Complement, WatsonCrickPairs) {
  EXPECT_EQ(complement(Base::A), Base::T);
  EXPECT_EQ(complement(Base::T), Base::A);
  EXPECT_EQ(complement(Base::C), Base::G);
  EXPECT_EQ(complement(Base::G), Base::C);
}

TEST(ReverseComplement, KnownSequences) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AAAA"), "TTTT");
  EXPECT_EQ(reverse_complement("GATTACA"), "TGTAATC");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(ReverseComplement, InvolutionProperty) {
  const std::string seq = "ACGTTGCAGGTACCATG";
  EXPECT_EQ(reverse_complement(reverse_complement(seq)), seq);
}

TEST(ReverseComplement, RejectsInvalidBases) {
  EXPECT_THROW((void)reverse_complement("ACNT"), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::dna
