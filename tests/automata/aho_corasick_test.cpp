#include "automata/aho_corasick.hpp"

#include <gtest/gtest.h>

#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::automata {
namespace {

TEST(AhoCorasick, SinglePatternEqualsNaive) {
  const DenseDfa dfa = build_aho_corasick({"GATTACA"});
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(30000, 1);
  EXPECT_EQ(count_matches(dfa, text), naive_count(text, "GATTACA"));
  EXPECT_EQ(dfa.synchronization_bound(), 7u);
  EXPECT_EQ(dfa.pattern_count(), 1u);
}

TEST(AhoCorasick, MultiPatternEqualsSumOfNaive) {
  const std::vector<std::string> patterns{"ACG", "TTT", "GGGG", "CACA"};
  const DenseDfa dfa = build_aho_corasick(patterns);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(20000, 2);
  std::uint64_t expected = 0;
  for (const auto& p : patterns) expected += naive_count(text, p);
  EXPECT_EQ(count_matches(dfa, text), expected);
}

TEST(AhoCorasick, SuffixPatternsBothCount) {
  // "ACGT" contains suffix "GT": both must fire when ACGT occurs.
  const DenseDfa dfa = build_aho_corasick({"ACGT", "GT"});
  EXPECT_EQ(count_matches(dfa, "ACGT"), 2u);
  EXPECT_EQ(count_matches(dfa, "AGTC"), 1u);  // only "GT"
}

TEST(AhoCorasick, DuplicatePatternsCountSeparately) {
  const DenseDfa dfa = build_aho_corasick({"ACG", "ACG"});
  EXPECT_EQ(count_matches(dfa, "TACGT"), 2u);
}

TEST(AhoCorasick, OverlappingOccurrences) {
  const DenseDfa dfa = build_aho_corasick({"ATA"});
  EXPECT_EQ(count_matches(dfa, "ATATATA"), 3u);
}

TEST(AhoCorasick, CaseInsensitivePatterns) {
  const DenseDfa dfa = build_aho_corasick({"acgt"});
  EXPECT_EQ(count_matches(dfa, "ACGT"), 1u);
}

TEST(AhoCorasick, AgreesWithSubsetConstruction) {
  const std::vector<std::string> patterns{"GGC", "TATA", "CCGG"};
  const DenseDfa ac = build_aho_corasick(patterns);
  const auto compiled = compile_motifs(patterns);
  const DenseDfa subset = determinize(compiled.nfa, compiled.synchronization_bound);
  const dna::GenomeGenerator gen;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const std::string text = gen.generate(8000, seed + 100);
    EXPECT_EQ(count_matches(ac, text), count_matches(subset, text)) << "seed " << seed;
  }
}

TEST(AhoCorasick, MatchEventsCarryPatternIds) {
  const DenseDfa dfa = build_aho_corasick({"AC", "CG"});
  std::vector<Match> matches;
  (void)scan_collect(dfa, "ACG", dfa.start(), 0, matches);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].pattern_mask, 1ULL << 0);
  EXPECT_EQ(matches[1].pattern_mask, 1ULL << 1);
}

TEST(AhoCorasick, RejectsBadInput) {
  EXPECT_THROW((void)build_aho_corasick({}), std::invalid_argument);
  EXPECT_THROW((void)build_aho_corasick({""}), std::invalid_argument);
  EXPECT_THROW((void)build_aho_corasick({"ACNT"}), std::invalid_argument);
}

TEST(AhoCorasick, ValidatesStructure) {
  const DenseDfa dfa = build_aho_corasick({"ACGT", "TTTT", "GG"});
  EXPECT_TRUE(dfa.validate().empty());
}

class AcVsNaiveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AcVsNaiveSweep, RandomPatternSetsMatchNaive) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed);
  const dna::GenomeGenerator gen;
  // Draw 1-6 random patterns of length 2-8 from the same alphabet.
  std::vector<std::string> patterns;
  const auto n_patterns = static_cast<std::size_t>(rng.range(1, 6));
  for (std::size_t i = 0; i < n_patterns; ++i) {
    const auto len = static_cast<std::size_t>(rng.range(2, 8));
    std::string p;
    for (std::size_t j = 0; j < len; ++j) {
      p.push_back(dna::kBaseChars[rng.bounded(4)]);
    }
    patterns.push_back(std::move(p));
  }
  const DenseDfa dfa = build_aho_corasick(patterns);
  const std::string text = gen.generate(4000, seed * 31 + 7);
  std::uint64_t expected = 0;
  for (const auto& p : patterns) expected += naive_count(text, p);
  EXPECT_EQ(count_matches(dfa, text), expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AcVsNaiveSweep, ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace hetopt::automata
