// Cross-ISA parity for the SIMD engine tier: every vector variant the host
// can run (and the forced-scalar path) must produce counts, collected match
// events, and error behavior byte-identical to the scalar engines, across
// random motif sets, chunk counts, and every schedule policy. Suite names
// matter: the `simd_parity` ctest entry runs exactly SimdEngine* and
// SimdDispatch*.
#include "automata/simd_engine.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "automata/match_engine.hpp"
#include "automata/parallel_matcher.hpp"
#include "automata/simd/simd_kernels.hpp"
#include "dna/generator.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::automata {
namespace {

/// Saves and restores HETOPT_FORCE_ISA around a test (the CI forced-scalar
/// job sets it process-wide; tests must not clobber it for later tests).
class ForceIsaGuard {
 public:
  ForceIsaGuard() {
    const char* value = std::getenv("HETOPT_FORCE_ISA");
    if (value != nullptr) {
      had_value_ = true;
      value_ = value;
    }
  }
  ~ForceIsaGuard() {
    if (had_value_) {
      ::setenv("HETOPT_FORCE_ISA", value_.c_str(), 1);
    } else {
      ::unsetenv("HETOPT_FORCE_ISA");
    }
  }

 private:
  bool had_value_ = false;
  std::string value_;
};

std::string random_literal(std::mt19937_64& rng) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string p(2 + rng() % 7, 'A');
  for (char& c : p) c = kBases[rng() % 4];
  return p;
}

std::string random_iupac(std::mt19937_64& rng) {
  static constexpr char kIupac[] = {'A', 'C', 'G', 'T', 'W', 'S', 'R', 'Y', 'N'};
  std::string p(3 + rng() % 5, 'A');
  for (char& c : p) c = kIupac[rng() % 9];
  return p;
}

/// Random genome with some positions folded to lowercase, so the prefilter's
/// case-folding vector compare sees mixed-case input.
std::string random_text(std::mt19937_64& rng, std::size_t size, std::uint64_t seed) {
  const dna::GenomeGenerator gen;
  std::string text = gen.generate(size, seed);
  for (std::size_t i = 0; i < text.size() / 10; ++i) {
    char& c = text[rng() % text.size()];
    c = static_cast<char>(c | 0x20);
  }
  return text;
}

TEST(SimdEngine, BitapCountParityAcrossIsasOnRandomMotifSets) {
  std::mt19937_64 rng(71);
  const std::vector<util::IsaLevel> isas = simd::available_isas();
  ASSERT_FALSE(isas.empty());
  for (std::uint64_t round = 0; round < 8; ++round) {
    std::vector<std::string> motifs;
    const std::size_t n = 1 + rng() % 5;
    for (std::size_t i = 0; i < n; ++i) {
      motifs.push_back(round % 2 == 0 ? random_literal(rng) : random_iupac(rng));
    }
    if (!BitapMatcher::supports(motifs)) continue;
    const std::string text = random_text(rng, 30000 + rng() % 50000, round);
    const BitapEngine scalar(motifs);
    const std::uint64_t expected = scalar.count(text);
    for (const util::IsaLevel isa : isas) {
      const BitapSimdEngine simd(motifs, isa);
      EXPECT_EQ(simd.isa(), isa);
      EXPECT_EQ(simd.count(text), expected)
          << util::to_string(isa) << " round " << round;
    }
  }
}

TEST(SimdEngine, BitapChunkedCountParityAcrossIsasChunksAndSchedules) {
  std::mt19937_64 rng(73);
  parallel::ThreadPool pool(4);
  const std::vector<util::IsaLevel> isas = simd::available_isas();
  for (std::uint64_t round = 0; round < 3; ++round) {
    std::vector<std::string> motifs;
    const std::size_t n = 1 + rng() % 4;
    for (std::size_t i = 0; i < n; ++i) motifs.push_back(random_literal(rng));
    std::string text = random_text(rng, 60000, 100 + round);
    // Plant a motif across chunk boundaries so cross-chunk warm-up matters.
    for (std::size_t boundary = text.size() / 7; boundary < text.size();
         boundary += text.size() / 7) {
      const std::string& m = motifs[boundary % motifs.size()];
      if (boundary >= m.size()) text.replace(boundary - m.size() / 2, m.size(), m);
    }
    const BitapEngine scalar(motifs);
    const std::uint64_t expected = scalar.count(text);
    for (const util::IsaLevel isa : isas) {
      const BitapSimdEngine simd(motifs, isa);
      const ParallelMatcher matcher(simd, pool);
      for (const std::size_t chunks : {std::size_t{1}, std::size_t{3}, std::size_t{16}}) {
        for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
          MatcherOptions options;
          options.schedule = policy;
          EXPECT_EQ(matcher.count(text, chunks, options).match_count, expected)
              << util::to_string(isa) << " chunks " << chunks << " schedule "
              << to_string(policy);
        }
      }
    }
  }
}

TEST(SimdEngine, BitapCollectParityAcrossIsas) {
  std::mt19937_64 rng(79);
  parallel::ThreadPool pool(4);
  const std::vector<std::string> motifs{"GATTACA", "CCGG", "TTT"};
  const std::string text = random_text(rng, 40000, 7);
  const BitapEngine scalar(motifs);
  std::vector<Match> expected;
  (void)scalar.collect(text, expected);
  ASSERT_FALSE(expected.empty());
  for (const util::IsaLevel isa : simd::available_isas()) {
    const BitapSimdEngine simd(motifs, isa);
    std::vector<Match> got;
    EXPECT_EQ(simd.collect(text, got), expected.size());
    EXPECT_EQ(got, expected) << util::to_string(isa);
    // And through the chunked matcher across schedules.
    const ParallelMatcher matcher(simd, pool);
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      MatcherOptions options;
      options.schedule = policy;
      std::vector<Match> chunked;
      EXPECT_EQ(matcher.collect(text, 9, chunked, options).match_count,
                expected.size());
      EXPECT_EQ(chunked, expected)
          << util::to_string(isa) << " schedule " << to_string(policy);
    }
  }
}

TEST(SimdEngine, PrefilterCountAndCollectParityAcrossIsas) {
  std::mt19937_64 rng(83);
  parallel::ThreadPool pool(4);
  // "CCGT" leaves A/G/T quiet at the start state; a text that is mostly 'A'
  // exercises long vector skips, the random tail exercises dense stepping.
  const std::vector<std::string> motifs{"CCGT", "GWCC"};
  std::string text(20000, 'A');
  text += random_text(rng, 40000, 11);
  text.replace(500, 4, "CCGT");
  text.replace(text.size() - 777, 4, "CCGT");
  const auto oracle = lower(EngineKind::kCompiledDfa, motifs);
  const std::uint64_t expected = oracle->count(text);
  std::vector<Match> expected_matches;
  (void)oracle->collect(text, expected_matches);
  ASSERT_FALSE(expected_matches.empty());
  for (const util::IsaLevel isa : simd::available_isas()) {
    const PrefilterDfaEngine prefilter(motifs, isa);
    EXPECT_TRUE(prefilter.skip_enabled());
    EXPECT_EQ(prefilter.quiet_base_count(), 2u);  // A and T; C/G/W open motifs
    EXPECT_EQ(prefilter.count(text), expected) << util::to_string(isa);
    std::vector<Match> got;
    EXPECT_EQ(prefilter.collect(text, got), expected);
    EXPECT_EQ(got, expected_matches) << util::to_string(isa);
    // The chunked path drives this engine through the generic chunk-aware
    // interface (it exposes no DFA kernel on purpose).
    const ParallelMatcher matcher(prefilter, pool);
    EXPECT_FALSE(matcher.dfa_backed());
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      MatcherOptions options;
      options.schedule = policy;
      EXPECT_EQ(matcher.count(text, 11, options).match_count, expected)
          << util::to_string(isa) << " schedule " << to_string(policy);
      std::vector<Match> chunked;
      (void)matcher.collect(text, 11, chunked, options);
      EXPECT_EQ(chunked, expected_matches)
          << util::to_string(isa) << " schedule " << to_string(policy);
    }
  }
}

TEST(SimdEngine, PrefilterDisabledSetsStillCountExactly) {
  // Motifs opening with every base leave no byte quiet: the skip degenerates
  // to the plain fused scan and stays exact.
  const std::vector<std::string> motifs{"AAC", "CCG", "GGT", "TTA"};
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(20000, 3);
  const auto oracle = lower(EngineKind::kCompiledDfa, motifs);
  for (const util::IsaLevel isa : simd::available_isas()) {
    const PrefilterDfaEngine prefilter(motifs, isa);
    EXPECT_FALSE(prefilter.skip_enabled());
    EXPECT_EQ(prefilter.quiet_base_count(), 0u);
    EXPECT_EQ(prefilter.count(text), oracle->count(text)) << util::to_string(isa);
  }
}

TEST(SimdEngine, InvalidByteErrorsMatchTheScalarEnginesExactly) {
  const std::vector<std::string> motifs{"GATTACA", "CCGG"};
  const dna::GenomeGenerator gen;
  std::string text = gen.generate(50000, 17);
  text[text.size() / 2] = 'X';

  const auto message_of = [&](const MatchEngine& engine) -> std::string {
    try {
      (void)engine.count_chunk(text, 0, text.size());
    } catch (const std::invalid_argument& e) {
      return e.what();
    }
    return "";
  };

  const BitapEngine scalar_bitap(motifs);
  const std::string bitap_message = message_of(scalar_bitap);
  ASSERT_NE(bitap_message.find('X'), std::string::npos);
  const auto dfa = lower(EngineKind::kCompiledDfa, motifs);
  const std::string dfa_message = message_of(*dfa);
  ASSERT_NE(dfa_message.find('X'), std::string::npos);

  for (const util::IsaLevel isa : simd::available_isas()) {
    const BitapSimdEngine simd(motifs, isa);
    EXPECT_EQ(message_of(simd), bitap_message) << util::to_string(isa);
    const PrefilterDfaEngine prefilter(motifs, isa);
    EXPECT_EQ(message_of(prefilter), dfa_message) << util::to_string(isa);
  }
}

TEST(SimdEngine, PartialCollectOnInvalidInputMatchesTheScalarEvents) {
  // On invalid input, whatever events a collect appended before throwing
  // must equal the scalar engine's pre-throw event set — recovery code
  // replays chunks and must not see ISA-dependent partial output.
  const std::vector<std::string> motifs{"GAT", "CCG"};
  const dna::GenomeGenerator gen;
  std::string text = gen.generate(30000, 19);
  text.replace(100, 3, "GAT");
  text[text.size() - 5000] = '?';

  const auto events_of = [&](const MatchEngine& engine, std::string* message) {
    std::vector<Match> out;
    try {
      (void)engine.collect_chunk(text, 0, text.size(), out);
    } catch (const std::invalid_argument& e) {
      *message = e.what();
    }
    return out;
  };

  std::string scalar_message;
  const BitapEngine scalar_bitap(motifs);
  const std::vector<Match> bitap_events = events_of(scalar_bitap, &scalar_message);
  ASSERT_FALSE(scalar_message.empty());
  ASSERT_FALSE(bitap_events.empty());

  std::string dfa_message;
  const auto dfa = lower(EngineKind::kCompiledDfa, motifs);
  const std::vector<Match> dfa_events = events_of(*dfa, &dfa_message);
  ASSERT_FALSE(dfa_message.empty());

  for (const util::IsaLevel isa : simd::available_isas()) {
    std::string message;
    const BitapSimdEngine simd(motifs, isa);
    EXPECT_EQ(events_of(simd, &message), bitap_events) << util::to_string(isa);
    EXPECT_EQ(message, scalar_message);
    message.clear();
    const PrefilterDfaEngine prefilter(motifs, isa);
    EXPECT_EQ(events_of(prefilter, &message), dfa_events) << util::to_string(isa);
    EXPECT_EQ(message, dfa_message);
  }
}

TEST(SimdEngine, LaneCountMatchesTheIsa) {
  const std::vector<std::string> motifs{"ACGT"};
  for (const util::IsaLevel isa : simd::available_isas()) {
    const BitapSimdEngine engine(motifs, isa);
    switch (isa) {
      case util::IsaLevel::kScalar:
        EXPECT_EQ(engine.lanes(), 1u);
        break;
      case util::IsaLevel::kSse2:
        EXPECT_EQ(engine.lanes(), 2u);
        break;
      case util::IsaLevel::kAvx2:
        EXPECT_EQ(engine.lanes(), 4u);
        break;
    }
  }
}

TEST(SimdDispatch, AvailableIsasStartScalarAndAscend) {
  const std::vector<util::IsaLevel> isas = simd::available_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), util::IsaLevel::kScalar);
  for (std::size_t i = 1; i < isas.size(); ++i) {
    EXPECT_LT(static_cast<int>(isas[i - 1]), static_cast<int>(isas[i]));
  }
}

TEST(SimdDispatch, ResolvePrecedenceIsRequestThenEnvThenWidest) {
  const ForceIsaGuard guard;
  ::unsetenv("HETOPT_FORCE_ISA");
  const std::vector<util::IsaLevel> isas = simd::available_isas();
  // No request, no env: the widest available level.
  EXPECT_EQ(simd::resolve_isa(std::nullopt), isas.back());
  // An explicit request wins even against the env override.
  ::setenv("HETOPT_FORCE_ISA", "scalar", 1);
  EXPECT_EQ(simd::resolve_isa(isas.back()), isas.back());
  // The env override applies when no request is made.
  EXPECT_EQ(simd::resolve_isa(std::nullopt), util::IsaLevel::kScalar);
}

TEST(SimdDispatch, ForcedScalarEnvironmentGovernsEngineConstruction) {
  const ForceIsaGuard guard;
  const std::vector<std::string> motifs{"GATTACA"};
  ::setenv("HETOPT_FORCE_ISA", "scalar", 1);
  const BitapSimdEngine forced(motifs);
  EXPECT_EQ(forced.isa(), util::IsaLevel::kScalar);
  EXPECT_EQ(forced.lanes(), 1u);
  const PrefilterDfaEngine prefilter(motifs);
  EXPECT_EQ(prefilter.isa(), util::IsaLevel::kScalar);
  ::unsetenv("HETOPT_FORCE_ISA");
  const BitapSimdEngine widest(motifs);
  EXPECT_EQ(widest.isa(), simd::available_isas().back());
}

TEST(SimdDispatch, UnknownOrUnavailableForcedIsaIsAHardError) {
  const ForceIsaGuard guard;
  const std::vector<std::string> motifs{"GATTACA"};
  ::setenv("HETOPT_FORCE_ISA", "turbo", 1);
  EXPECT_THROW((void)BitapSimdEngine(motifs), std::runtime_error);
  ::unsetenv("HETOPT_FORCE_ISA");
  // A level the host cannot run (or that was not compiled in) must throw,
  // never silently fall back. Only checkable when some level is unavailable.
  bool all_available = true;
  for (const util::IsaLevel level :
       {util::IsaLevel::kScalar, util::IsaLevel::kSse2, util::IsaLevel::kAvx2}) {
    bool found = false;
    for (const util::IsaLevel a : simd::available_isas()) found |= a == level;
    if (!found) {
      all_available = false;
      EXPECT_THROW((void)BitapSimdEngine(motifs, level), std::runtime_error);
      EXPECT_THROW((void)simd::bitap_kernel(level), std::runtime_error);
    }
  }
  if (all_available) {
    GTEST_SKIP() << "every ISA level is runnable on this host";
  }
}

// --- Density-aware prefilter cutoff ----------------------------------------

TEST(SimdEngine, DenseSampleDisablesTheSkipButStaysExact) {
  // "CCGT"/"GWCC" leave A and T quiet. A sample with no quiet byte at all
  // (pure CG alternation) measures a mean quiet run of zero: the vector
  // probe would fire on every byte, so the skip self-disables and the
  // engine degenerates to the plain fused scan — still exact.
  const std::vector<std::string> motifs{"CCGT", "GWCC"};
  const std::string dense_sample(4096, 'C');
  std::mt19937_64 rng(91);
  std::string text = random_text(rng, 30000, 7);
  text.replace(100, 4, "CCGT");
  const auto oracle = lower(EngineKind::kCompiledDfa, motifs);
  for (const util::IsaLevel isa : simd::available_isas()) {
    const PrefilterDfaEngine probed(motifs, isa, dense_sample);
    EXPECT_FALSE(probed.skip_enabled()) << util::to_string(isa);
    EXPECT_EQ(probed.sampled_quiet_run(), 0.0);
    EXPECT_GT(probed.density_cutoff(), 0.0);
    EXPECT_EQ(probed.count(text), oracle->count(text)) << util::to_string(isa);
    std::vector<Match> got;
    std::vector<Match> want;
    (void)probed.collect(text, got);
    (void)oracle->collect(text, want);
    EXPECT_EQ(got, want) << util::to_string(isa);
  }
}

TEST(SimdEngine, SparseSampleKeepsTheSkipEnabled) {
  // Long quiet runs (mostly-'A' corpus) are exactly what the skip is for.
  const std::vector<std::string> motifs{"CCGT", "GWCC"};
  std::string sparse_sample(4096, 'A');
  sparse_sample.replace(1000, 4, "CCGT");
  std::string text(30000, 'A');
  text.replace(500, 4, "CCGT");
  text.replace(20000, 4, "CCGT");
  const auto oracle = lower(EngineKind::kCompiledDfa, motifs);
  for (const util::IsaLevel isa : simd::available_isas()) {
    const PrefilterDfaEngine probed(motifs, isa, sparse_sample);
    EXPECT_TRUE(probed.skip_enabled()) << util::to_string(isa);
    EXPECT_GE(probed.sampled_quiet_run(), probed.density_cutoff());
    EXPECT_EQ(probed.count(text), oracle->count(text)) << util::to_string(isa);
  }
}

TEST(SimdEngine, EmptySampleKeepsTheStaticRule) {
  // No sample means no probe: the pre-probe behavior (skip whenever the
  // byte classes allow it) is preserved, so existing callers see no change.
  const std::vector<std::string> motifs{"CCGT", "GWCC"};
  const PrefilterDfaEngine unprobed(motifs, std::nullopt, std::string_view{});
  EXPECT_TRUE(unprobed.skip_enabled());
  EXPECT_EQ(unprobed.sampled_quiet_run(), 0.0);
  EXPECT_EQ(unprobed.density_cutoff(), 0.0);  // probe never ran
}

TEST(SimdEngine, DensityCutoffIsIsaAdaptive) {
  // Mean quiet run of exactly 3: "AAA" quiet islands between candidate 'C's.
  // The scalar probe (cutoff 2) keeps the skip; a vector probe (cutoff 4)
  // must clear more bytes per step to pay for itself and disables it.
  const std::vector<std::string> motifs{"CCGT", "GWCC"};
  std::string sample;
  for (int i = 0; i < 512; ++i) sample += "AAAC";
  const PrefilterDfaEngine scalar(motifs, util::IsaLevel::kScalar, sample);
  EXPECT_DOUBLE_EQ(scalar.sampled_quiet_run(), 3.0);
  EXPECT_DOUBLE_EQ(scalar.density_cutoff(), 2.0);
  EXPECT_TRUE(scalar.skip_enabled());
  for (const util::IsaLevel isa : simd::available_isas()) {
    if (isa == util::IsaLevel::kScalar) continue;
    const PrefilterDfaEngine vector(motifs, isa, sample);
    EXPECT_DOUBLE_EQ(vector.sampled_quiet_run(), 3.0);
    EXPECT_DOUBLE_EQ(vector.density_cutoff(), 4.0);
    EXPECT_FALSE(vector.skip_enabled()) << util::to_string(isa);
  }
}

TEST(SimdEngine, TryLowerThreadsTheDensitySampleThrough) {
  const std::vector<std::string> motifs{"CCGT"};
  const std::string dense(1024, 'C');
  const auto probed = try_lower(EngineKind::kPrefilterDfa, motifs, nullptr, dense);
  ASSERT_NE(probed, nullptr);
  const auto* engine = dynamic_cast<const PrefilterDfaEngine*>(probed.get());
  ASSERT_NE(engine, nullptr);
  EXPECT_FALSE(engine->skip_enabled());
  // Other engine kinds ignore the sample (it is advisory, not semantic).
  const auto bitap = try_lower(EngineKind::kBitap, motifs, nullptr, dense);
  ASSERT_NE(bitap, nullptr);
  EXPECT_EQ(bitap->kind(), EngineKind::kBitap);
}

}  // namespace
}  // namespace hetopt::automata
