// Cross-engine parity property tests: every MatchEngine applicable to a
// motif set — compiled DFA, Aho–Corasick, bitap — must produce identical
// match counts (and identical collect output) on identical input, for whole
// texts, for chunk-aware scans at every chunk count, and for matches
// spanning chunk boundaries. The oracle is the seed per-byte scanner over
// the subset-construction automaton, which is independent of every engine's
// fast path.
#include "automata/match_engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "automata/hopcroft.hpp"
#include "automata/parallel_matcher.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::automata {
namespace {

/// Seed-loop oracle over the subset-construction automaton (independent of
/// every engine's fast path).
std::uint64_t oracle_count(const std::vector<std::string>& motifs, std::string_view text) {
  const CompiledMotifs compiled = compile_motifs(motifs);
  const DenseDfa dfa = minimize(determinize(compiled.nfa, compiled.synchronization_bound));
  return scan_count_naive(dfa, text, dfa.start()).match_count;
}

std::vector<Match> oracle_collect(const std::vector<std::string>& motifs,
                                  std::string_view text) {
  const CompiledMotifs compiled = compile_motifs(motifs);
  const DenseDfa dfa = minimize(determinize(compiled.nfa, compiled.synchronization_bound));
  std::vector<Match> out;
  (void)scan_collect_naive(dfa, text, dfa.start(), 0, out);
  return out;
}

/// All engines applicable to `motifs` (at least the compiled DFA).
std::vector<std::unique_ptr<const MatchEngine>> applicable_engines(
    const std::vector<std::string>& motifs) {
  std::vector<std::unique_ptr<const MatchEngine>> engines;
  for (const EngineKind kind : kAllEngineKinds) {
    auto engine = try_lower(kind, motifs);
    if (engine != nullptr) engines.push_back(std::move(engine));
  }
  return engines;
}

/// A random literal pattern of length in [2, 8].
std::string random_literal(std::mt19937_64& rng) {
  static constexpr char kBases[] = {'A', 'C', 'G', 'T'};
  std::string p(2 + rng() % 7, 'A');
  for (char& c : p) c = kBases[rng() % 4];
  return p;
}

/// A random IUPAC pattern (classes, no operators) of length in [3, 7].
std::string random_iupac(std::mt19937_64& rng) {
  static constexpr char kIupac[] = {'A', 'C', 'G', 'T', 'W', 'S', 'R', 'Y', 'N'};
  std::string p(3 + rng() % 5, 'A');
  for (char& c : p) c = kIupac[rng() % 9];
  return p;
}

TEST(MatchEngine, LowerBuildsTheRightBackends) {
  const std::vector<std::string> literal{"GATTACA", "CCGG"};
  EXPECT_EQ(lower(EngineKind::kCompiledDfa, literal)->kind(), EngineKind::kCompiledDfa);
  EXPECT_EQ(lower(EngineKind::kAhoCorasick, literal)->kind(), EngineKind::kAhoCorasick);
  EXPECT_EQ(lower(EngineKind::kBitap, literal)->kind(), EngineKind::kBitap);
  EXPECT_EQ(lower(EngineKind::kBitap, literal)->name(), "bitap");
  EXPECT_EQ(lower(EngineKind::kBitapSimd, literal)->kind(), EngineKind::kBitapSimd);
  EXPECT_EQ(lower(EngineKind::kBitapSimd, literal)->name(), "bitap-simd");
  EXPECT_EQ(lower(EngineKind::kPrefilterDfa, literal)->kind(),
            EngineKind::kPrefilterDfa);
  EXPECT_EQ(lower(EngineKind::kPrefilterDfa, literal)->name(), "prefilter-dfa");

  // IUPAC classes: no Aho–Corasick (it needs literal ACGT).
  const std::vector<std::string> iupac{"TATAWAW"};
  EXPECT_EQ(try_lower(EngineKind::kAhoCorasick, iupac), nullptr);
  EXPECT_NE(try_lower(EngineKind::kBitap, iupac), nullptr);
  EXPECT_NE(try_lower(EngineKind::kBitapSimd, iupac), nullptr);
  EXPECT_NE(try_lower(EngineKind::kPrefilterDfa, iupac), nullptr);
  EXPECT_FALSE(engine_gap(EngineKind::kAhoCorasick, iupac).empty());

  // Regex operators: compiled DFA only ('*'/'+' also defeat the prefilter's
  // bounded warm-up).
  const std::vector<std::string> regex{"GC(N)*GC"};
  EXPECT_NE(try_lower(EngineKind::kCompiledDfa, regex), nullptr);
  EXPECT_EQ(try_lower(EngineKind::kAhoCorasick, regex), nullptr);
  EXPECT_EQ(try_lower(EngineKind::kBitap, regex), nullptr);
  EXPECT_EQ(try_lower(EngineKind::kBitapSimd, regex), nullptr);
  std::string prefilter_why;
  EXPECT_EQ(try_lower(EngineKind::kPrefilterDfa, regex, &prefilter_why), nullptr);
  EXPECT_NE(prefilter_why.find("unbounded"), std::string::npos);
  // The optional operator '?' keeps the bound finite: prefilter stays in.
  const std::vector<std::string> optional{"GAT?TACA"};
  EXPECT_NE(try_lower(EngineKind::kPrefilterDfa, optional), nullptr);

  // > 64 summed bits: no bitap (scalar or SIMD), and the gap says why.
  const std::vector<std::string> wide{std::string(40, 'A'), std::string(30, 'C')};
  std::string why;
  EXPECT_EQ(try_lower(EngineKind::kBitap, wide, &why), nullptr);
  EXPECT_NE(why.find("64"), std::string::npos);
  std::string simd_why;
  EXPECT_EQ(try_lower(EngineKind::kBitapSimd, wide, &simd_why), nullptr);
  EXPECT_EQ(simd_why, why);  // same matcher, same applicability, same message
  EXPECT_THROW((void)lower(EngineKind::kBitap, wide), std::invalid_argument);
}

TEST(MatchEngine, CountParityOnRandomLiteralSets) {
  std::mt19937_64 rng(11);
  const dna::GenomeGenerator gen;
  for (std::uint64_t round = 0; round < 12; ++round) {
    std::vector<std::string> motifs;
    const std::size_t n = 1 + rng() % 5;
    for (std::size_t i = 0; i < n; ++i) motifs.push_back(random_literal(rng));
    const std::string text = gen.generate(4000 + rng() % 30000, round);
    const std::uint64_t expected = oracle_count(motifs, text);

    const auto engines = applicable_engines(motifs);
    ASSERT_EQ(engines.size(), 5u);  // literal sets qualify for every engine
    for (const auto& engine : engines) {
      EXPECT_EQ(engine->count(text), expected)
          << engine->name() << " round " << round;
    }
  }
}

TEST(MatchEngine, CountParityOnRandomIupacSets) {
  std::mt19937_64 rng(23);
  const dna::GenomeGenerator gen;
  for (std::uint64_t round = 0; round < 12; ++round) {
    std::vector<std::string> motifs;
    const std::size_t n = 1 + rng() % 4;
    for (std::size_t i = 0; i < n; ++i) motifs.push_back(random_iupac(rng));
    const std::string text = gen.generate(3000 + rng() % 20000, 100 + round);
    const std::uint64_t expected = oracle_count(motifs, text);

    const auto engines = applicable_engines(motifs);
    ASSERT_GE(engines.size(), 2u);  // compiled DFA + bitap at least
    for (const auto& engine : engines) {
      EXPECT_EQ(engine->count(text), expected)
          << engine->name() << " round " << round;
    }
  }
}

TEST(MatchEngine, ChunkedCountsAreExactAtEveryChunkCount) {
  std::mt19937_64 rng(37);
  const dna::GenomeGenerator gen;
  parallel::ThreadPool pool(4);
  for (std::uint64_t round = 0; round < 6; ++round) {
    std::vector<std::string> motifs;
    const std::size_t n = 1 + rng() % 4;
    for (std::size_t i = 0; i < n; ++i) motifs.push_back(random_literal(rng));
    std::string text = gen.generate(20000, 200 + round);
    // Plant a motif across every boundary the 7-chunk split will produce, so
    // cross-chunk matches are guaranteed to exist at several chunk counts.
    for (std::size_t boundary = text.size() / 7; boundary < text.size();
         boundary += text.size() / 7) {
      const std::string& m = motifs[boundary % motifs.size()];
      const std::size_t at = boundary - std::min(boundary, m.size() / 2);
      if (at + m.size() <= text.size()) text.replace(at, m.size(), m);
    }
    const std::uint64_t expected = oracle_count(motifs, text);

    for (const auto& engine : applicable_engines(motifs)) {
      // The raw chunk interface must tile exactly...
      for (const std::size_t chunks : {1u, 2u, 3u, 7u, 16u}) {
        std::uint64_t sum = 0;
        const std::size_t step = text.size() / chunks;
        std::size_t begin = 0;
        for (std::size_t c = 0; c < chunks; ++c) {
          const std::size_t end = (c + 1 == chunks) ? text.size() : begin + step;
          sum += engine->count_chunk(text, begin, end);
          begin = end;
        }
        EXPECT_EQ(sum, expected) << engine->name() << " chunks=" << chunks;
      }
      // ...and so must the pool-driven matcher built on the engine.
      const ParallelMatcher matcher(*engine, pool);
      for (const std::size_t chunks : {1u, 2u, 3u, 7u, 16u, 61u}) {
        EXPECT_EQ(matcher.count(text, chunks).match_count, expected)
            << engine->name() << " chunks=" << chunks;
      }
    }
  }
}

TEST(MatchEngine, CollectParityIncludingChunkedRuns) {
  std::mt19937_64 rng(53);
  const dna::GenomeGenerator gen;
  parallel::ThreadPool pool(4);
  for (std::uint64_t round = 0; round < 6; ++round) {
    std::vector<std::string> motifs;
    const std::size_t n = 1 + rng() % 3;
    for (std::size_t i = 0; i < n; ++i) motifs.push_back(random_literal(rng));
    std::string text = gen.generate(8000, 300 + round);
    const std::string& m0 = motifs.front();
    text.replace(text.size() / 2 - m0.size() / 2, m0.size(), m0);  // spans 2-chunk cut
    const std::vector<Match> expected = oracle_collect(motifs, text);

    for (const auto& engine : applicable_engines(motifs)) {
      ASSERT_TRUE(engine->supports_collect()) << engine->name();
      std::vector<Match> whole;
      (void)engine->collect(text, whole);
      EXPECT_EQ(whole, expected) << engine->name();

      const ParallelMatcher matcher(*engine, pool);
      for (const std::size_t chunks : {1u, 2u, 5u, 13u}) {
        std::vector<Match> chunked;
        (void)matcher.collect(text, chunks, chunked);
        EXPECT_EQ(chunked, expected) << engine->name() << " chunks=" << chunks;
      }
    }
  }
}

TEST(MatchEngine, InvalidBytesThrowFromEveryEngine) {
  const std::vector<std::string> motifs{"ACGT", "TTT"};
  const std::string text = "ACGTACGXTACGT";  // 'X' is not a base
  for (const auto& engine : applicable_engines(motifs)) {
    EXPECT_THROW((void)engine->count(text), std::invalid_argument) << engine->name();
    std::vector<Match> out;
    EXPECT_THROW((void)engine->collect(text, out), std::invalid_argument)
        << engine->name();
  }
}

TEST(MatchEngine, LowercaseInputIsDecodedByEveryEngine) {
  const std::vector<std::string> motifs{"GATTACA"};
  const std::string text = "ttgattacagattacatt";
  for (const auto& engine : applicable_engines(motifs)) {
    EXPECT_EQ(engine->count(text), 2u) << engine->name();
  }
}

TEST(MatchEngine, ParallelMatcherRejectsUnboundedGenericEngines) {
  // A generic (non-DFA) engine must declare a synchronization bound; bitap
  // always has one, so construction through the engine path succeeds.
  parallel::ThreadPool pool(2);
  const auto bitap = lower(EngineKind::kBitap, {"ACGT"});
  EXPECT_NO_THROW(ParallelMatcher(*bitap, pool));
  // DFA-backed engines may be unbounded (regex '+'); the matcher falls back
  // to the speculative kernels, which stay exact.
  const auto unbounded = lower(EngineKind::kCompiledDfa, {"GC(N)+GC"});
  EXPECT_EQ(unbounded->synchronization_bound(), 0u);
  const ParallelMatcher matcher(*unbounded, pool);
  const std::string text = "GCAAGCTTGCGC";
  EXPECT_EQ(matcher.count(text, 4).match_count, unbounded->count(text));
}

}  // namespace
}  // namespace hetopt::automata
