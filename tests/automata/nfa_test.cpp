#include "automata/nfa.hpp"

#include <gtest/gtest.h>

namespace hetopt::automata {
namespace {

/// NFA recognizing Σ* "AC": start loops on all, then A then C accept.
Nfa make_ac_nfa() {
  Nfa nfa;
  const StateId s0 = nfa.add_state();
  const StateId s1 = nfa.add_state();
  const StateId s2 = nfa.add_state();
  nfa.set_start(s0);
  nfa.add_transition(s0, dna::BaseSet::all(), s0);
  nfa.add_transition(s0, dna::BaseSet::single(dna::Base::A), s1);
  nfa.add_transition(s1, dna::BaseSet::single(dna::Base::C), s2);
  nfa.set_accepting(s2, 0);
  return nfa;
}

TEST(NfaTest, StatesAndTransitions) {
  Nfa nfa;
  const StateId a = nfa.add_state();
  const StateId b = nfa.add_state();
  EXPECT_EQ(nfa.state_count(), 2u);
  nfa.add_transition(a, dna::BaseSet::single(dna::Base::G), b);
  EXPECT_EQ(nfa.transitions(a).size(), 1u);
  EXPECT_TRUE(nfa.transitions(b).empty());
}

TEST(NfaTest, RejectsEmptyClassAndUnknownStates) {
  Nfa nfa;
  const StateId a = nfa.add_state();
  EXPECT_THROW(nfa.add_transition(a, dna::BaseSet(), a), std::invalid_argument);
  EXPECT_THROW(nfa.add_transition(a, dna::BaseSet::all(), 99), std::out_of_range);
  EXPECT_THROW(nfa.add_epsilon(a, 99), std::out_of_range);
}

TEST(NfaTest, AcceptMaskPerPattern) {
  Nfa nfa;
  const StateId a = nfa.add_state();
  nfa.set_accepting(a, 0);
  nfa.set_accepting(a, 5);
  EXPECT_EQ(nfa.accept_mask(a), (1ULL << 0) | (1ULL << 5));
  EXPECT_THROW(nfa.set_accepting(a, kMaxPatterns), std::out_of_range);
}

TEST(NfaTest, EpsilonClosureFollowsChains) {
  Nfa nfa;
  const StateId a = nfa.add_state();
  const StateId b = nfa.add_state();
  const StateId c = nfa.add_state();
  const StateId d = nfa.add_state();
  nfa.add_epsilon(a, b);
  nfa.add_epsilon(b, c);
  nfa.add_epsilon(c, a);  // cycle must terminate
  const auto closure = nfa.epsilon_closure({a});
  EXPECT_EQ(closure, (std::vector<StateId>{a, b, c}));
  const auto lone = nfa.epsilon_closure({d});
  EXPECT_EQ(lone, (std::vector<StateId>{d}));
}

TEST(NfaTest, SimulateFindsSubstring) {
  const Nfa nfa = make_ac_nfa();
  EXPECT_EQ(nfa.simulate("AC"), 1u);
  EXPECT_EQ(nfa.simulate("TTACTT"), 1u);
  EXPECT_EQ(nfa.simulate("AAAA"), 0u);
  EXPECT_EQ(nfa.simulate(""), 0u);
  EXPECT_EQ(nfa.simulate("CA"), 0u);
}

TEST(NfaTest, SimulateRejectsInvalidInput) {
  const Nfa nfa = make_ac_nfa();
  EXPECT_THROW((void)nfa.simulate("AXC"), std::invalid_argument);
}

TEST(NfaTest, SimulateWithoutStartThrows) {
  Nfa nfa;
  (void)nfa.add_state();
  EXPECT_THROW((void)nfa.simulate("A"), std::logic_error);
}

}  // namespace
}  // namespace hetopt::automata
