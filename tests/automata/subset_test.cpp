#include "automata/subset.hpp"

#include <gtest/gtest.h>

#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "dna/generator.hpp"

namespace hetopt::automata {
namespace {

TEST(Determinize, ValidDfaFromMotifNfa) {
  const auto compiled = compile_motifs({"ACGT"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  EXPECT_TRUE(dfa.validate().empty());
  EXPECT_EQ(dfa.synchronization_bound(), 4u);
  EXPECT_GT(dfa.state_count(), 0u);
}

TEST(Determinize, CountsEqualNaive) {
  const auto compiled = compile_motifs({"GATTACA"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(50000, 3);
  EXPECT_EQ(count_matches(dfa, text), naive_count(text, "GATTACA"));
}

TEST(Determinize, OverlappingOccurrencesAllCounted) {
  const auto compiled = compile_motifs({"AAA"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  EXPECT_EQ(count_matches(dfa, "AAAAA"), 3u);  // ends at 3,4,5
}

TEST(Determinize, MultiPatternMasksSurvive) {
  const auto compiled = compile_motifs({"AC", "CA"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  std::vector<Match> matches;
  (void)scan_collect(dfa, "ACA", dfa.start(), 0, matches);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].end, 2u);
  EXPECT_EQ(matches[0].pattern_mask, 1ULL << 0);  // "AC"
  EXPECT_EQ(matches[1].end, 3u);
  EXPECT_EQ(matches[1].pattern_mask, 1ULL << 1);  // "CA"
}

TEST(Determinize, TwoPatternsEndingTogetherCountTwice) {
  // "AAC" and "AC" both end at every occurrence of ...AAC.
  const auto compiled = compile_motifs({"AAC", "AC"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  EXPECT_EQ(count_matches(dfa, "AAC"), 2u);
}

TEST(Determinize, IupacEquivalentToAlternation) {
  const auto iupac = compile_motifs({"AWA"});
  const auto alt = compile_motifs({"AAA|ATA"});
  const DenseDfa d1 = determinize(iupac.nfa, iupac.synchronization_bound);
  const DenseDfa d2 = determinize(alt.nfa, alt.synchronization_bound);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(20000, 5);
  EXPECT_EQ(count_matches(d1, text), count_matches(d2, text));
}

TEST(Determinize, AgreesWithNfaSimulationOnRandomTexts) {
  const auto compiled = compile_motifs({"GGC(A|T)GG", "TTT"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const dna::GenomeGenerator gen;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const std::string text = gen.generate(500, seed);
    // NFA::simulate reports which patterns matched anywhere; recreate that
    // from DFA scan events.
    std::vector<Match> matches;
    (void)scan_collect(dfa, text, dfa.start(), 0, matches);
    std::uint64_t dfa_mask = 0;
    for (const Match& m : matches) dfa_mask |= m.pattern_mask;
    EXPECT_EQ(dfa_mask, compiled.nfa.simulate(text)) << "seed " << seed;
  }
}

TEST(Determinize, ThrowsWithoutStart) {
  Nfa nfa;
  (void)nfa.add_state();
  EXPECT_THROW((void)determinize(nfa), std::logic_error);
}

}  // namespace
}  // namespace hetopt::automata
