#include "automata/regex.hpp"

#include <gtest/gtest.h>

namespace hetopt::automata {
namespace {

TEST(RegexCompile, LiteralPattern) {
  const auto compiled = compile_motifs({"ACGT"});
  EXPECT_EQ(compiled.lengths.size(), 1u);
  EXPECT_EQ(compiled.lengths[0].min_len, 4u);
  EXPECT_EQ(compiled.lengths[0].max_len, 4u);
  EXPECT_EQ(compiled.synchronization_bound, 4u);
  EXPECT_EQ(compiled.nfa.simulate("TTACGTTT"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("ACG"), 0u);
}

TEST(RegexCompile, IupacClasses) {
  // W = A or T.
  const auto compiled = compile_motifs({"AWA"});
  EXPECT_EQ(compiled.nfa.simulate("AAA"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("ATA"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("AGA"), 0u);
}

TEST(RegexCompile, Alternation) {
  const auto compiled = compile_motifs({"CCC|GGG"});
  EXPECT_EQ(compiled.nfa.simulate("ACCCA"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("AGGGA"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("ACGCA"), 0u);
  EXPECT_EQ(compiled.lengths[0].min_len, 3u);
  EXPECT_EQ(compiled.lengths[0].max_len, 3u);
}

TEST(RegexCompile, OptionalAndGroups) {
  const auto compiled = compile_motifs({"GG(AC)?TT"});
  EXPECT_EQ(compiled.nfa.simulate("GGTT"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("GGACTT"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("GGATT"), 0u);
  EXPECT_EQ(compiled.lengths[0].min_len, 4u);
  EXPECT_EQ(compiled.lengths[0].max_len, 6u);
  EXPECT_EQ(compiled.synchronization_bound, 6u);
}

TEST(RegexCompile, StarIsUnbounded) {
  const auto compiled = compile_motifs({"GC(A)*GC"});
  EXPECT_EQ(compiled.nfa.simulate("GCGC"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("GCAGC"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("GCAAAAAGC"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("GCTGC"), 0u);
  EXPECT_EQ(compiled.lengths[0].max_len, LengthRange::kUnbounded);
  EXPECT_EQ(compiled.synchronization_bound, 0u);  // unbounded disables warm-up
}

TEST(RegexCompile, PlusRequiresOne) {
  const auto compiled = compile_motifs({"GA+T"});
  EXPECT_EQ(compiled.nfa.simulate("GAT"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("GAAAT"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("GT"), 0u);
  EXPECT_EQ(compiled.lengths[0].min_len, 3u);
}

TEST(RegexCompile, MultiplePatternsGetDistinctIds) {
  const auto compiled = compile_motifs({"AAA", "CCC"});
  EXPECT_EQ(compiled.nfa.simulate("AAA"), 1ULL << 0);
  EXPECT_EQ(compiled.nfa.simulate("CCC"), 1ULL << 1);
  EXPECT_EQ(compiled.nfa.simulate("AAACCC"), 3u);
  EXPECT_EQ(compiled.synchronization_bound, 3u);
}

TEST(RegexCompile, SyntaxErrorsCarryPosition) {
  EXPECT_THROW((void)compile_motifs({"AC(GT"}), std::invalid_argument);
  EXPECT_THROW((void)compile_motifs({"AC)GT"}), std::invalid_argument);
  EXPECT_THROW((void)compile_motifs({"*AC"}), std::invalid_argument);
  EXPECT_THROW((void)compile_motifs({"ACZT"}), std::invalid_argument);
  EXPECT_THROW((void)compile_motifs({""}), std::invalid_argument);
}

TEST(RegexCompile, EmptyMatchingPatternsRejected) {
  EXPECT_THROW((void)compile_motifs({"A*"}), std::invalid_argument);
  EXPECT_THROW((void)compile_motifs({"(A?)"}), std::invalid_argument);
}

TEST(RegexCompile, NoPatternsRejected) {
  EXPECT_THROW((void)compile_motifs({}), std::invalid_argument);
}

TEST(RegexCompile, TooManyPatternsRejected) {
  std::vector<std::string> many(kMaxPatterns + 1, "ACGT");
  EXPECT_THROW((void)compile_motifs(many), std::invalid_argument);
}

TEST(RegexCompile, NestedGroupsAndAlternation) {
  const auto compiled = compile_motifs({"A(C|G(T|A))C"});
  EXPECT_EQ(compiled.nfa.simulate("ACC"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("AGTC"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("AGAC"), 1u);
  EXPECT_EQ(compiled.nfa.simulate("AGC"), 0u);
}

}  // namespace
}  // namespace hetopt::automata
