// Property tests for the PaREM-style chunk-parallel matcher: for every
// strategy and chunk count, the parallel result must be byte-identical to a
// sequential scan.
#include "automata/parallel_matcher.hpp"

#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"
#include "automata/regex.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::automata {
namespace {

class ParallelMatcherFixture : public ::testing::Test {
 protected:
  parallel::ThreadPool pool_{8};
  dna::GenomeGenerator gen_;
};

TEST_F(ParallelMatcherFixture, WarmupMatchesSequentialCounts) {
  const DenseDfa dfa = build_aho_corasick({"GATTACA", "TTT"});
  const std::string text = gen_.generate(100000, 5);
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool_);
  for (std::size_t chunks : {1u, 2u, 3u, 8u, 17u, 64u}) {
    const auto stats = matcher.count(text, chunks, ParallelStrategy::kWarmup);
    EXPECT_EQ(stats.match_count, expected) << "chunks=" << chunks;
    EXPECT_EQ(stats.chunks, chunks);
  }
}

TEST_F(ParallelMatcherFixture, SpeculativeMatchesSequentialCounts) {
  const DenseDfa dfa = build_aho_corasick({"GATTACA", "TTT"});
  const std::string text = gen_.generate(100000, 5);
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool_);
  for (std::size_t chunks : {1u, 2u, 3u, 8u, 17u, 64u}) {
    const auto stats = matcher.count(text, chunks, ParallelStrategy::kSpeculative);
    EXPECT_EQ(stats.match_count, expected) << "chunks=" << chunks;
  }
}

TEST_F(ParallelMatcherFixture, UnboundedPatternFallsBackToSpeculative) {
  const auto compiled = compile_motifs({"GC(A)*GC"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  ASSERT_EQ(dfa.synchronization_bound(), 0u);
  const std::string text = gen_.generate(40000, 9);
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool_);
  // Requesting warm-up must silently use the exact speculative path.
  const auto stats = matcher.count(text, 16, ParallelStrategy::kWarmup);
  EXPECT_EQ(stats.match_count, expected);
}

TEST_F(ParallelMatcherFixture, CollectReturnsSortedIdenticalEvents) {
  const DenseDfa dfa = build_aho_corasick({"ACG", "CGT", "TT"});
  const std::string text = gen_.generate(30000, 11);
  std::vector<Match> sequential;
  (void)scan_collect(dfa, text, dfa.start(), 0, sequential);

  ParallelMatcher matcher(dfa, pool_);
  for (const auto strategy :
       {ParallelStrategy::kWarmup, ParallelStrategy::kSpeculative}) {
    std::vector<Match> par;
    (void)matcher.collect(text, 13, par, strategy);
    EXPECT_EQ(par, sequential);
  }
}

TEST_F(ParallelMatcherFixture, MatchSpanningChunkBoundaryIsCounted) {
  // Construct a text whose only match straddles the cut between two chunks.
  const DenseDfa dfa = build_aho_corasick({"ACGTACGT"});
  std::string text(1000, 'T');
  text.replace(496, 8, "ACGTACGT");  // crosses the 500-byte midpoint
  ParallelMatcher matcher(dfa, pool_);
  for (const auto strategy :
       {ParallelStrategy::kWarmup, ParallelStrategy::kSpeculative}) {
    EXPECT_EQ(matcher.count(text, 2, strategy).match_count, 1u);
  }
}

TEST_F(ParallelMatcherFixture, EmptyTextYieldsNothing) {
  const DenseDfa dfa = build_aho_corasick({"AC"});
  ParallelMatcher matcher(dfa, pool_);
  const auto stats = matcher.count("", 8);
  EXPECT_EQ(stats.match_count, 0u);
  EXPECT_EQ(stats.chunks, 0u);
}

TEST_F(ParallelMatcherFixture, MoreChunksThanBytesClamps) {
  const DenseDfa dfa = build_aho_corasick({"A"});
  ParallelMatcher matcher(dfa, pool_);
  const auto stats = matcher.count("AAA", 100);
  EXPECT_EQ(stats.match_count, 3u);
  EXPECT_LE(stats.chunks, 3u);
}

TEST_F(ParallelMatcherFixture, SpeculativeReportsRescans) {
  // A pattern automaton rarely mispredicts; force it with a text that keeps
  // the automaton mid-pattern at chunk boundaries.
  const DenseDfa dfa = build_aho_corasick({"AAAAAAAA"});
  const std::string text(64, 'A');  // every boundary is mid-pattern
  ParallelMatcher matcher(dfa, pool_);
  const auto stats = matcher.count(text, 8, ParallelStrategy::kSpeculative);
  EXPECT_EQ(stats.match_count, 64u - 8u + 1u);
  EXPECT_GT(stats.rescanned_chunks, 0u);
}

TEST_F(ParallelMatcherFixture, EverySchedulePolicyMatchesSequentialCounts) {
  // Cross-policy parity: static, dynamic, guided and adaptive must count
  // byte-identically, including a motif planted across a chunk boundary.
  const auto compiled = compile_motifs({"TATAWAW", "GGGCGG", "ACGTACGT"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  std::string text = gen_.generate(80000, 21);
  text.replace(text.size() / 2 - 4, 8, "ACGTACGT");  // straddles the midpoint cut
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool_);
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    for (std::size_t chunks : {1u, 2u, 8u, 17u, 64u}) {
      MatcherOptions options;
      options.schedule = policy;
      const auto stats = matcher.count(text, chunks, options);
      EXPECT_EQ(stats.match_count, expected)
          << "policy=" << parallel::to_string(policy) << " chunks=" << chunks;
    }
  }
}

TEST_F(ParallelMatcherFixture, EverySchedulePolicyCollectsIdenticalEvents) {
  const DenseDfa dfa = build_aho_corasick({"ACG", "CGT", "TT"});
  const std::string text = gen_.generate(30000, 13);
  std::vector<Match> sequential;
  (void)scan_collect(dfa, text, dfa.start(), 0, sequential);
  ParallelMatcher matcher(dfa, pool_);
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    MatcherOptions options;
    options.schedule = policy;
    std::vector<Match> par;
    (void)matcher.collect(text, 13, par, options);
    EXPECT_EQ(par, sequential) << "policy=" << parallel::to_string(policy);
  }
}

TEST_F(ParallelMatcherFixture, DemandDrivenMultiStreamCountsExactly) {
  // Pull scheduling composes with multi-stream counting: workers claim
  // several tickets at once and scan them interleaved.
  const DenseDfa dfa = build_aho_corasick({"GATTACA", "TTT"});
  const std::string text = gen_.generate(120000, 17);
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool_);
  for (const std::size_t streams : {2u, 4u, 8u}) {
    MatcherOptions options;
    options.schedule = parallel::SchedulePolicy::kDynamic;
    options.streams_per_worker = streams;
    EXPECT_EQ(matcher.count(text, 64, options).match_count, expected)
        << "streams=" << streams;
  }
}

TEST_F(ParallelMatcherFixture, UnboundedPatternDegradesScheduleToStatic) {
  // No synchronization bound -> per-chunk warm-up is impossible; demand
  // schedules must fall back to the exact static speculative path.
  const auto compiled = compile_motifs({"GC(A)*GC"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  ASSERT_EQ(dfa.synchronization_bound(), 0u);
  const std::string text = gen_.generate(40000, 23);
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool_);
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    MatcherOptions options;
    options.schedule = policy;
    EXPECT_EQ(matcher.count(text, 16, options).match_count, expected)
        << "policy=" << parallel::to_string(policy);
  }
}

TEST_F(ParallelMatcherFixture, GuidedScheduleUsesDecreasingChunks) {
  const DenseDfa dfa = build_aho_corasick({"ACGT"});
  const std::string text = gen_.generate(50000, 29);
  ParallelMatcher matcher(dfa, pool_);
  MatcherOptions options;
  options.schedule = parallel::SchedulePolicy::kGuided;
  const auto stats = matcher.count(text, 8, options);
  // Guided re-cuts the input (tail granularity ~ total/(4*chunks)), so it
  // produces more, finer chunks than the equal split would.
  EXPECT_GT(stats.chunks, 8u);
  EXPECT_EQ(stats.match_count, count_matches(dfa, text));
}

/// Exhaustive sweep: strategy x chunk count x several seeds, mixed motif set
/// with IUPAC classes via subset construction.
struct SweepParam {
  std::uint64_t seed;
  std::size_t chunks;
};

class MatcherSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MatcherSweep, ParallelEqualsSequential) {
  const auto [seed, chunks] = GetParam();
  parallel::ThreadPool pool(4);
  const auto compiled = compile_motifs({"TATAWAW", "GGN?CC", "ACGT"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(20000 + 137 * seed, seed);
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool);
  EXPECT_EQ(matcher.count(text, chunks, ParallelStrategy::kWarmup).match_count, expected);
  EXPECT_EQ(matcher.count(text, chunks, ParallelStrategy::kSpeculative).match_count,
            expected);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndChunks, MatcherSweep,
    ::testing::Values(SweepParam{1, 1}, SweepParam{1, 4}, SweepParam{2, 7},
                      SweepParam{3, 16}, SweepParam{4, 33}, SweepParam{5, 64},
                      SweepParam{6, 5}, SweepParam{7, 12}));

}  // namespace
}  // namespace hetopt::automata
