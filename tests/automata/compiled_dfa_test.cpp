// Property tests for the compiled scan kernels: every fast path — byte-fused,
// paired 2-bases-per-step, multi-stream interleaved, and the kernel-backed
// ParallelMatcher modes — must be byte-identical to the seed per-byte scanner
// loops (scan_count_naive / scan_collect_naive): counts, collected matches,
// final states, and invalid-byte errors.
#include "automata/compiled_dfa.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <string>
#include <vector>

#include "automata/aho_corasick.hpp"
#include "automata/parallel_matcher.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::automata {
namespace {

/// A random (valid) automaton: arbitrary transitions, sparse accepts, random
/// start. No synchronization bound, so the matcher exercises kSpeculative.
DenseDfa random_dfa(std::mt19937_64& rng, std::uint32_t states) {
  DenseDfa dfa(states);
  std::uniform_int_distribution<std::uint32_t> pick_state(0, states - 1);
  for (StateId s = 0; s < states; ++s) {
    for (unsigned b = 0; b < dna::kAlphabetSize; ++b) {
      dfa.set_transition(s, static_cast<dna::Base>(b), pick_state(rng));
    }
    if (rng() % 4 == 0) {
      const std::uint64_t mask = 1 + rng() % 7;
      std::uint32_t count = 0;
      for (std::uint64_t m = mask; m != 0; m >>= 1) count += m & 1;
      dfa.set_accept(s, mask, count);
    }
  }
  dfa.set_start(pick_state(rng));
  EXPECT_TRUE(dfa.validate().empty());
  return dfa;
}

/// Random ACGT text with a sprinkle of lowercase (valid) characters.
std::string random_text(std::mt19937_64& rng, std::size_t size) {
  static constexpr char kChars[] = {'A', 'C', 'G', 'T', 'a', 'c', 'g', 't'};
  std::string text(size, 'A');
  for (char& c : text) c = kChars[rng() % 8];
  return text;
}

TEST(CompiledDfa, CountKernelsMatchNaiveOnRandomAutomata) {
  std::mt19937_64 rng(7);
  for (const std::uint32_t states : {1u, 2u, 5u, 17u, 47u}) {
    const DenseDfa dfa = random_dfa(rng, states);
    const CompiledDfa compiled(dfa);
    for (const std::size_t size : {0u, 1u, 2u, 3u, 7u, 255u, 256u, 4097u, 20000u}) {
      const std::string text = random_text(rng, size);
      const StateId entry = static_cast<StateId>(rng() % states);
      const ScanResult expect = scan_count_naive(dfa, text, entry);
      for (const ScanResult got :
           {compiled.count(text, entry), compiled.count_fused(text, entry),
            compiled.count_paired(text, entry), scan_count(dfa, text, entry)}) {
        EXPECT_EQ(got.final_state, expect.final_state)
            << "states=" << states << " size=" << size;
        EXPECT_EQ(got.match_count, expect.match_count)
            << "states=" << states << " size=" << size;
      }
    }
  }
}

TEST(CompiledDfa, MultiStreamMatchesPerStreamScans) {
  std::mt19937_64 rng(11);
  const DenseDfa dfa = random_dfa(rng, 23);
  const CompiledDfa compiled(dfa);
  // 13 streams of uneven lengths (> kMaxStreams, so batching kicks in),
  // including empty ones.
  std::vector<std::string> texts;
  std::vector<std::string_view> views;
  std::vector<StateId> entries;
  for (std::size_t k = 0; k < 13; ++k) {
    texts.push_back(random_text(rng, (k % 3 == 0) ? 0 : 100 + 997 * k));
    entries.push_back(static_cast<StateId>(rng() % 23));
  }
  for (const std::string& t : texts) views.push_back(t);
  std::vector<ScanResult> results(texts.size());
  compiled.count_multi(views.data(), entries.data(), results.data(), texts.size());
  for (std::size_t k = 0; k < texts.size(); ++k) {
    const ScanResult expect = scan_count_naive(dfa, texts[k], entries[k]);
    EXPECT_EQ(results[k].final_state, expect.final_state) << "stream " << k;
    EXPECT_EQ(results[k].match_count, expect.match_count) << "stream " << k;
  }
}

TEST(CompiledDfa, CollectMatchesNaiveEventsAndOffsets) {
  std::mt19937_64 rng(13);
  const DenseDfa dfa = build_aho_corasick({"ACG", "CGT", "TT", "acgtacgt"});
  const CompiledDfa compiled(dfa);
  const std::string text = random_text(rng, 30000);
  std::vector<Match> expect;
  const ScanResult er = scan_collect_naive(dfa, text, dfa.start(), 1000, expect);
  std::vector<Match> got;
  const ScanResult gr = compiled.collect(text, dfa.start(), 1000, got);
  EXPECT_EQ(gr.final_state, er.final_state);
  EXPECT_EQ(gr.match_count, er.match_count);
  EXPECT_EQ(got, expect);
  // The dispatching wrapper too.
  std::vector<Match> wrapped;
  (void)scan_collect(dfa, text, dfa.start(), 1000, wrapped);
  EXPECT_EQ(wrapped, expect);
}

TEST(CompiledDfa, InvalidBytesThrowTheSeedScannerError) {
  std::mt19937_64 rng(17);
  const DenseDfa dfa = build_aho_corasick({"GATTACA", "TTT"});
  const CompiledDfa compiled(dfa);
  for (const std::size_t bad_pos : {0u, 1u, 5000u, 9998u, 9999u}) {
    std::string text = random_text(rng, 10000);
    text[bad_pos] = 'X';
    std::string expect_message;
    try {
      (void)scan_count_naive(dfa, text, dfa.start());
      FAIL() << "naive scanner accepted invalid input";
    } catch (const std::invalid_argument& e) {
      expect_message = e.what();
    }
    const auto expect_throw = [&](const std::function<void()>& fn) {
      try {
        fn();
        FAIL() << "kernel accepted invalid byte at " << bad_pos;
      } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string(e.what()), expect_message) << "bad_pos=" << bad_pos;
      }
    };
    expect_throw([&] { (void)compiled.count(text, dfa.start()); });
    expect_throw([&] { (void)compiled.count_fused(text, dfa.start()); });
    expect_throw([&] { (void)compiled.count_paired(text, dfa.start()); });
    expect_throw([&] { (void)scan_count(dfa, text, dfa.start()); });
    expect_throw([&] {
      const std::string_view view = text;
      const StateId entry = dfa.start();
      ScanResult result;
      compiled.count_multi(&view, &entry, &result, 1);
    });
    // Collect must leave exactly the seed scanner's partial output behind.
    std::vector<Match> expect_partial;
    EXPECT_THROW(
        (void)scan_collect_naive(dfa, text, dfa.start(), 0, expect_partial),
        std::invalid_argument);
    std::vector<Match> got_partial;
    expect_throw([&] { (void)compiled.collect(text, dfa.start(), 0, got_partial); });
    EXPECT_EQ(got_partial, expect_partial) << "bad_pos=" << bad_pos;
  }
}

TEST(CompiledDfa, RejectsBadEntryStatesAndCorruptAutomata) {
  const DenseDfa dfa = build_aho_corasick({"AC"});
  const CompiledDfa compiled(dfa);
  EXPECT_THROW((void)compiled.count("AC", 999), std::out_of_range);
  EXPECT_THROW((void)compiled.count_paired(std::string(1000, 'A'), 999),
               std::out_of_range);
  DenseDfa broken(1);
  broken.set_accept(0, 5, 0);  // mask without count
  EXPECT_THROW(CompiledDfa{broken}, std::invalid_argument);
}

TEST(CompiledDfa, ExposesAutomatonMetadata) {
  const DenseDfa dfa = build_aho_corasick({"GATTACA"});
  const CompiledDfa compiled(dfa);
  EXPECT_EQ(compiled.state_count(), dfa.state_count());
  EXPECT_EQ(compiled.start(), dfa.start());
  EXPECT_EQ(compiled.sink(), dfa.state_count());
  EXPECT_EQ(compiled.synchronization_bound(), dfa.synchronization_bound());
  EXPECT_EQ(compiled.accept_count(compiled.sink()), 0u);
  for (StateId s = 0; s < dfa.state_count(); ++s) {
    EXPECT_EQ(compiled.accept_count(s), dfa.accept_count(s));
    EXPECT_EQ(compiled.accept_mask(s), dfa.accept_mask(s));
  }
}

/// ParallelMatcher sweep: random + motif automata x chunk counts x
/// strategies x stream widths, counts and collected events vs sequential.
struct KernelSweepParam {
  std::uint64_t seed;
  std::size_t chunks;
  std::size_t streams;  // MatcherOptions::streams_per_worker (0 = auto)
};

class KernelMatcherSweep : public ::testing::TestWithParam<KernelSweepParam> {};

TEST_P(KernelMatcherSweep, ParallelPathsEqualSequential) {
  const auto [seed, chunks, streams] = GetParam();
  std::mt19937_64 rng(seed);
  parallel::ThreadPool pool(3);

  // One synchronizing motif automaton (exercises kWarmup) and one random
  // automaton with no bound (exercises the speculative wave rescans).
  const auto compiled_motifs = compile_motifs({"TATAWAW", "GGN?CC", "ACGT"});
  const DenseDfa motif_dfa =
      determinize(compiled_motifs.nfa, compiled_motifs.synchronization_bound);
  const DenseDfa rand_dfa = random_dfa(rng, 11 + static_cast<std::uint32_t>(seed));

  for (const DenseDfa* dfa : {&motif_dfa, &rand_dfa}) {
    const std::string text = random_text(rng, 20000 + 137 * seed);
    const ScanResult expect = scan_count_naive(*dfa, text, dfa->start());
    std::vector<Match> expect_events;
    (void)scan_collect_naive(*dfa, text, dfa->start(), 0, expect_events);

    ParallelMatcher matcher(*dfa, pool);
    for (const auto strategy :
         {ParallelStrategy::kWarmup, ParallelStrategy::kSpeculative}) {
      const MatcherOptions options{strategy, streams};
      const auto stats = matcher.count(text, chunks, options);
      EXPECT_EQ(stats.match_count, expect.match_count)
          << "chunks=" << chunks << " streams=" << streams;
      std::vector<Match> events;
      (void)matcher.collect(text, chunks, events, options);
      EXPECT_EQ(events, expect_events) << "chunks=" << chunks;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsChunksStreams, KernelMatcherSweep,
    ::testing::Values(KernelSweepParam{1, 1, 0},   // single-chunk fast path
                      KernelSweepParam{2, 4, 0},   // auto stream width
                      KernelSweepParam{3, 7, 1},   // scalar per-chunk tasks
                      KernelSweepParam{4, 16, 2},  // explicit 2-wide streams
                      KernelSweepParam{5, 33, 8},  // full-width streams
                      KernelSweepParam{6, 64, 5},
                      KernelSweepParam{7, 12, 3}));

TEST(KernelMatcher, SpeculativeWaveRescanStaysExact) {
  // Every chunk boundary sits mid-pattern, forcing rescans; the wave-parallel
  // phase 2 must still produce the sequential answer and report the rescans.
  parallel::ThreadPool pool(4);
  const DenseDfa dfa = build_aho_corasick({"AAAAAAAA"});
  const std::string text(64, 'A');
  ParallelMatcher matcher(dfa, pool);
  for (const std::size_t streams : {0u, 1u, 4u}) {
    const auto stats = matcher.count(
        text, 8, MatcherOptions{ParallelStrategy::kSpeculative, streams});
    EXPECT_EQ(stats.match_count, 64u - 8u + 1u);
    EXPECT_GT(stats.rescanned_chunks, 0u);
  }
}

TEST(KernelMatcher, ScratchReuseAcrossRunsIsInvisible) {
  // Back-to-back runs of different shapes on one matcher must not leak state
  // through the reused per-chunk scratch buffers.
  parallel::ThreadPool pool(2);
  const DenseDfa dfa = build_aho_corasick({"ACG", "TT"});
  const dna::GenomeGenerator gen;
  const std::string big = gen.generate(50000, 3);
  const std::string small = gen.generate(500, 4);
  ParallelMatcher matcher(dfa, pool);

  const std::uint64_t expect_big = scan_count_naive(dfa, big, dfa.start()).match_count;
  const std::uint64_t expect_small =
      scan_count_naive(dfa, small, dfa.start()).match_count;
  std::vector<Match> expect_events;
  (void)scan_collect_naive(dfa, small, dfa.start(), 0, expect_events);

  EXPECT_EQ(matcher.count(big, 16).match_count, expect_big);
  std::vector<Match> events;
  (void)matcher.collect(small, 3, events);
  EXPECT_EQ(events, expect_events);
  EXPECT_EQ(matcher.count(small, 7).match_count, expect_small);
  events.clear();
  (void)matcher.collect(big, 16, events);
  EXPECT_EQ(matcher.count(big, 2).match_count, expect_big);
}

}  // namespace
}  // namespace hetopt::automata
