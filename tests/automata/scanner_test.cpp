#include "automata/scanner.hpp"

#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"

namespace hetopt::automata {
namespace {

TEST(ScanCount, EmptyTextLeavesStateAndCountsNothing) {
  const DenseDfa dfa = build_aho_corasick({"AC"});
  const auto r = scan_count(dfa, "", dfa.start());
  EXPECT_EQ(r.final_state, dfa.start());
  EXPECT_EQ(r.match_count, 0u);
}

TEST(ScanCount, FinalStateComposes) {
  const DenseDfa dfa = build_aho_corasick({"ACGT"});
  const std::string text = "TTACGTATACGTT";
  const auto whole = scan_count(dfa, text, dfa.start());
  const auto first = scan_count(dfa, text.substr(0, 6), dfa.start());
  const auto second = scan_count(dfa, text.substr(6), first.final_state);
  EXPECT_EQ(first.match_count + second.match_count, whole.match_count);
  EXPECT_EQ(second.final_state, whole.final_state);
}

TEST(ScanCount, RejectsBadStateAndBadBases) {
  const DenseDfa dfa = build_aho_corasick({"AC"});
  EXPECT_THROW((void)scan_count(dfa, "AC", 999), std::out_of_range);
  EXPECT_THROW((void)scan_count(dfa, "AXC", dfa.start()), std::invalid_argument);
}

TEST(ScanCollect, EndOffsetsAreOnePastMatch) {
  const DenseDfa dfa = build_aho_corasick({"CG"});
  std::vector<Match> matches;
  (void)scan_collect(dfa, "ACGACG", dfa.start(), 0, matches);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].end, 3u);
  EXPECT_EQ(matches[1].end, 6u);
}

TEST(ScanCollect, BaseOffsetShiftsReports) {
  const DenseDfa dfa = build_aho_corasick({"CG"});
  std::vector<Match> matches;
  (void)scan_collect(dfa, "ACG", dfa.start(), 1000, matches);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].end, 1003u);
}

TEST(ScanCollect, AppendsToExistingVector) {
  const DenseDfa dfa = build_aho_corasick({"A"});
  std::vector<Match> matches{Match{0, 0}};
  (void)scan_collect(dfa, "AA", dfa.start(), 0, matches);
  EXPECT_EQ(matches.size(), 3u);
}

TEST(ScanNaive, ReferenceLoopsShareWrapperBehavior) {
  // The exposed reference loops must behave exactly like the wrappers on
  // short inputs (where the wrappers run them directly).
  const DenseDfa dfa = build_aho_corasick({"ACGT", "GG"});
  const std::string text = "GGACGTACGTGGG";
  const auto naive = scan_count_naive(dfa, text, dfa.start());
  const auto wrapped = scan_count(dfa, text, dfa.start());
  EXPECT_EQ(naive.final_state, wrapped.final_state);
  EXPECT_EQ(naive.match_count, wrapped.match_count);
  EXPECT_THROW((void)scan_count_naive(dfa, "AC", 999), std::out_of_range);
  EXPECT_THROW((void)scan_count_naive(dfa, "AXC", dfa.start()), std::invalid_argument);
}

TEST(ScanFastPath, LongTextsDispatchToIdenticalKernel) {
  // Above the compile threshold scan_count runs the lowered kernel; results
  // must stay byte-identical to the reference loop.
  const DenseDfa dfa = build_aho_corasick({"GATTACA", "TT"});
  std::string text;
  for (int i = 0; i < 4000; ++i) text += "GATTACATT";
  const auto naive = scan_count_naive(dfa, text, dfa.start());
  const auto fast = scan_count(dfa, text, dfa.start());
  EXPECT_EQ(fast.final_state, naive.final_state);
  EXPECT_EQ(fast.match_count, naive.match_count);

  std::vector<Match> naive_events;
  (void)scan_collect_naive(dfa, text, dfa.start(), 7, naive_events);
  std::vector<Match> fast_events;
  (void)scan_collect(dfa, text, dfa.start(), 7, fast_events);
  EXPECT_EQ(fast_events, naive_events);
}

TEST(NaiveCount, ReferenceBehaviour) {
  EXPECT_EQ(naive_count("AAAA", "AA"), 3u);
  EXPECT_EQ(naive_count("ACGT", "ACGT"), 1u);
  EXPECT_EQ(naive_count("ACGT", "TTTTT"), 0u);
  EXPECT_EQ(naive_count("ACGT", ""), 0u);
  EXPECT_EQ(naive_count("", "A"), 0u);
}

TEST(DenseDfaRun, FollowsTransitions) {
  const DenseDfa dfa = build_aho_corasick({"ACG"});
  const StateId end = dfa.run(dfa.start(), "AC");
  // From that state, G must complete the match.
  EXPECT_GT(dfa.accept_count(dfa.step(end, dna::Base::G)), 0u);
}

TEST(DenseDfaValidate, CatchesCorruption) {
  DenseDfa dfa(2);
  dfa.set_accept(1, 1, 1);
  EXPECT_TRUE(dfa.validate().empty());
  DenseDfa broken(1);
  broken.set_accept(0, 5, 0);  // mask without count
  EXPECT_FALSE(broken.validate().empty());
}

}  // namespace
}  // namespace hetopt::automata
