#include "automata/hopcroft.hpp"

#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::automata {
namespace {

TEST(Minimize, NeverGrowsAndStaysValid) {
  const auto compiled = compile_motifs({"GGATCC", "GAATTC", "AAGCTT"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const DenseDfa min = minimize(dfa);
  EXPECT_LE(min.state_count(), dfa.state_count());
  EXPECT_TRUE(min.validate().empty());
  EXPECT_EQ(min.synchronization_bound(), dfa.synchronization_bound());
}

TEST(Minimize, PreservesMatchCountsOnRandomTexts) {
  const auto compiled = compile_motifs({"TATAWAW", "GGC"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const DenseDfa min = minimize(dfa);
  const dna::GenomeGenerator gen;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::string text = gen.generate(5000, seed);
    EXPECT_EQ(count_matches(min, text), count_matches(dfa, text)) << "seed " << seed;
  }
}

TEST(Minimize, PreservesMatchEventsExactly) {
  const auto compiled = compile_motifs({"ACG", "CGT"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const DenseDfa min = minimize(dfa);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(2000, 17);
  std::vector<Match> a;
  std::vector<Match> b;
  (void)scan_collect(dfa, text, dfa.start(), 0, a);
  (void)scan_collect(min, text, min.start(), 0, b);
  EXPECT_EQ(a, b);
}

TEST(Minimize, CollapsesRedundantStates) {
  // Build a DFA with two identical accepting sinks; minimization must merge
  // them.
  DenseDfa dfa(4);
  // state 0: on A -> 1, else 0; state 1: on C -> 2 or 3 alternating, else 0.
  for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
    dfa.set_transition(0, static_cast<dna::Base>(b), 0);
    dfa.set_transition(1, static_cast<dna::Base>(b), 0);
    dfa.set_transition(2, static_cast<dna::Base>(b), 0);
    dfa.set_transition(3, static_cast<dna::Base>(b), 0);
  }
  dfa.set_transition(0, dna::Base::A, 1);
  dfa.set_transition(1, dna::Base::C, 2);
  dfa.set_transition(1, dna::Base::G, 3);
  dfa.set_accept(2, 1, 1);
  dfa.set_accept(3, 1, 1);  // identical signature to state 2
  dfa.set_start(0);
  const DenseDfa min = minimize(dfa);
  EXPECT_EQ(min.state_count(), 3u);
}

TEST(Minimize, IdempotentOnMinimalAutomata) {
  const auto compiled = compile_motifs({"ACGT"});
  const DenseDfa min1 = minimize(determinize(compiled.nfa, 4));
  const DenseDfa min2 = minimize(min1);
  EXPECT_EQ(min2.state_count(), min1.state_count());
}

TEST(Minimize, AhoCorasickAlreadyNearMinimal) {
  const DenseDfa ac = build_aho_corasick({"ACGT", "GT"});
  const DenseDfa min = minimize(ac);
  EXPECT_LE(min.state_count(), ac.state_count());
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(3000, 23);
  EXPECT_EQ(count_matches(min, text), count_matches(ac, text));
}

TEST(Minimize, RejectsEmptyAutomaton) {
  EXPECT_THROW((void)minimize(DenseDfa{}), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::automata
