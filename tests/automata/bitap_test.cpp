#include "automata/bitap.hpp"

#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::automata {
namespace {

TEST(Bitap, SinglePatternEqualsNaive) {
  const BitapMatcher m({"GATTACA"});
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(30000, 1);
  EXPECT_EQ(m.count(text), naive_count(text, "GATTACA"));
  EXPECT_EQ(m.synchronization_bound(), 7u);
  EXPECT_EQ(m.pattern_count(), 1u);
}

TEST(Bitap, MultiPatternEqualsAhoCorasick) {
  const std::vector<std::string> patterns{"ACG", "TTT", "GGGG", "CACA"};
  const BitapMatcher m(patterns);
  const DenseDfa ac = build_aho_corasick(patterns);
  const dna::GenomeGenerator gen;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::string text = gen.generate(10000, seed);
    EXPECT_EQ(m.count(text), count_matches(ac, text)) << "seed " << seed;
  }
}

TEST(Bitap, IupacClassesEqualSubsetConstruction) {
  const std::vector<std::string> patterns{"TATAWAW", "GGNCC"};
  const BitapMatcher m(patterns);
  const auto compiled = compile_motifs(patterns);
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(50000, 5);
  EXPECT_EQ(m.count(text), count_matches(dfa, text));
}

TEST(Bitap, OverlappingOccurrences) {
  const BitapMatcher m({"AAA"});
  EXPECT_EQ(m.count("AAAAA"), 3u);
}

TEST(Bitap, SuffixPatternsBothFire) {
  const BitapMatcher m({"ACGT", "GT"});
  EXPECT_EQ(m.count("ACGT"), 2u);
}

TEST(Bitap, AdjacentPackingDoesNotBleed) {
  // Two patterns packed back-to-back in the state word: a final bit of the
  // first must not fake a prefix of the second.
  const BitapMatcher m({"AC", "GT"});
  EXPECT_EQ(m.count("ACGT"), 2u);   // both real
  EXPECT_EQ(m.count("ACTT"), 1u);   // only AC
  EXPECT_EQ(m.count("AGTT"), 1u);   // only GT
  EXPECT_EQ(m.count("AATT"), 0u);
}

TEST(Bitap, CollectMatchesDfaEvents) {
  const std::vector<std::string> patterns{"AC", "CG"};
  const BitapMatcher m(patterns);
  const DenseDfa ac = build_aho_corasick(patterns);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(5000, 9);
  std::vector<Match> bitap_events;
  m.collect(text, 0, bitap_events);
  std::vector<Match> dfa_events;
  (void)scan_collect(ac, text, ac.start(), 0, dfa_events);
  EXPECT_EQ(bitap_events, dfa_events);
}

TEST(Bitap, ResumableScanComposes) {
  const BitapMatcher m({"ACGT"});
  const std::string text = "TTACGTATACGTT";
  std::uint64_t state = 0;
  const std::uint64_t first = m.scan(text.substr(0, 6), state);
  const std::uint64_t second = m.scan(text.substr(6), state);
  EXPECT_EQ(first + second, m.count(text));
}

TEST(Bitap, CapacityLimit64Bits) {
  EXPECT_NO_THROW(BitapMatcher({std::string(64, 'A')}));
  EXPECT_THROW(BitapMatcher({std::string(65, 'A')}), std::invalid_argument);
  EXPECT_THROW(BitapMatcher({std::string(33, 'A'), std::string(32, 'C')}),
               std::invalid_argument);
}

TEST(Bitap, SupportsQueryMirrorsTheConstructor) {
  // supports() answers without throwing, so callers can skip the engine
  // cleanly; the constructor throws exactly when supports() is false.
  EXPECT_TRUE(BitapMatcher::supports({"GATTACA", "TATAWAW"}));
  EXPECT_TRUE(BitapMatcher::supports({std::string(64, 'A')}));

  std::string why;
  EXPECT_FALSE(BitapMatcher::supports({}, &why));
  EXPECT_EQ(why, "no patterns");
  EXPECT_FALSE(BitapMatcher::supports({""}, &why));
  EXPECT_EQ(why, "empty pattern");
  EXPECT_FALSE(BitapMatcher::supports({"AC?T"}, &why));  // operators excluded
  EXPECT_NE(why.find("AC?T"), std::string::npos);
  EXPECT_FALSE(BitapMatcher::supports({std::string(33, 'A'), std::string(32, 'C')}, &why));
  EXPECT_NE(why.find("65"), std::string::npos);
  EXPECT_NE(why.find("64"), std::string::npos);
  // The null-reason overload is fine too.
  EXPECT_FALSE(BitapMatcher::supports({std::string(65, 'A')}));
}

TEST(Bitap, InputValidation) {
  EXPECT_THROW(BitapMatcher({}), std::invalid_argument);
  EXPECT_THROW(BitapMatcher({""}), std::invalid_argument);
  EXPECT_THROW(BitapMatcher({"AC?T"}), std::invalid_argument);  // no operators
  const BitapMatcher m({"AC"});
  EXPECT_THROW((void)m.count("AXC"), std::invalid_argument);
}

class BitapVsDfaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BitapVsDfaSweep, RandomPatternsAgreeWithAhoCorasick) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed * 7919 + 3);
  std::vector<std::string> patterns;
  std::size_t budget = 64;
  const auto n_patterns = static_cast<std::size_t>(rng.range(1, 5));
  for (std::size_t i = 0; i < n_patterns && budget > 1; ++i) {
    const auto len = static_cast<std::size_t>(
        rng.range(2, static_cast<std::int64_t>(std::min<std::size_t>(10, budget))));
    std::string p;
    for (std::size_t j = 0; j < len; ++j) p.push_back(dna::kBaseChars[rng.bounded(4)]);
    budget -= len;
    patterns.push_back(std::move(p));
  }
  const BitapMatcher m(patterns);
  const DenseDfa ac = build_aho_corasick(patterns);
  const dna::GenomeGenerator gen;
  const std::string text = gen.generate(6000, seed + 500);
  EXPECT_EQ(m.count(text), count_matches(ac, text));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitapVsDfaSweep, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace hetopt::automata
