// Page-seam parity property suite for the out-of-core scan path: every
// (page size x chunks-per-page x schedule x engine) combination must produce
// byte-identical counts and collected positions to the in-memory naive
// oracle over the same bytes — including motifs planted to straddle page
// boundaries exactly. Plus validation and telemetry behavior of the paged
// runtime. TSan-clean (runs under the `io` ctest label).
#include "automata/parallel_matcher.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automata/aho_corasick.hpp"
#include "automata/match_engine.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::automata {
namespace {

constexpr const char* kMotif = "GATTACA";

/// Corpus with one planted motif copy straddling every multiple of
/// `seam_stride` (centered on the seam), plus background matches.
[[nodiscard]] std::string seam_text(std::size_t n, std::size_t seam_stride,
                                    std::uint64_t seed) {
  dna::GenomeGenerator gen;
  std::string text = gen.generate(n, seed);
  const std::size_t m = std::string_view(kMotif).size();
  for (std::size_t seam = seam_stride; seam + m / 2 < n; seam += seam_stride) {
    if (seam < m / 2 + 1) continue;
    text.replace(seam - m / 2 - 1, m, kMotif);  // crosses the seam off-center
  }
  return text;
}

[[nodiscard]] dna::PagedGenome paged(const std::string& text, std::size_t page_bytes,
                                     std::size_t resident, std::size_t halo = 63) {
  dna::PagedGenomeOptions options;
  options.page_bytes = page_bytes;
  options.resident_pages = resident;
  options.halo_bytes = halo;
  return dna::PagedGenome(std::make_unique<dna::BufferPageSource>(text), options);
}

class PagedScanFixture : public ::testing::Test {
 protected:
  parallel::ThreadPool pool_{4};
};

TEST_F(PagedScanFixture, SeamParityAcrossPageSizesChunksAndSchedules) {
  // Motifs planted across every page boundary of the *smallest* page size,
  // so every tested geometry has seam-straddling matches.
  const std::string text = seam_text(40000, 512, 3);
  const DenseDfa dfa = build_aho_corasick({kMotif, "TTT"});
  const std::uint64_t expected = count_matches(dfa, text);
  ASSERT_GT(expected, 70u);  // the planted seam copies are actually there
  ParallelMatcher matcher(dfa, pool_);

  for (const std::size_t page_bytes : {512u, 1024u, 4096u, 16384u}) {
    for (const std::size_t chunks_per_page : {0u, 1u, 3u}) {
      for (const parallel::SchedulePolicy schedule : parallel::kAllSchedulePolicies) {
        dna::PagedGenome genome = paged(text, page_bytes, /*resident=*/6);
        PagedScanOptions options;
        options.schedule = schedule;
        options.chunks_per_page = chunks_per_page;
        const PagedScanStats stats = matcher.count_paged(genome, options);
        EXPECT_EQ(stats.match_count, expected)
            << "page=" << page_bytes << " cpp=" << chunks_per_page
            << " sched=" << parallel::to_string(schedule);
        EXPECT_EQ(stats.bytes, text.size());
        EXPECT_EQ(stats.pages, genome.page_count());
      }
    }
  }
}

TEST_F(PagedScanFixture, CollectParityWithInMemoryOracle) {
  const std::string text = seam_text(20000, 1024, 7);
  const DenseDfa dfa = build_aho_corasick({kMotif, "ACG"});
  std::vector<Match> oracle;
  (void)scan_collect_naive(dfa, text, dfa.start(), 0, oracle);
  ParallelMatcher matcher(dfa, pool_);

  for (const std::size_t page_bytes : {1024u, 4096u}) {
    for (const parallel::SchedulePolicy schedule :
         {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic,
          parallel::SchedulePolicy::kGuided}) {
      dna::PagedGenome genome = paged(text, page_bytes, 5);
      PagedScanOptions options;
      options.schedule = schedule;
      std::vector<Match> collected;
      const PagedScanStats stats = matcher.collect_paged(genome, collected, options);
      EXPECT_EQ(stats.match_count, oracle.size());
      EXPECT_EQ(collected, oracle)
          << "page=" << page_bytes << " sched=" << parallel::to_string(schedule);
    }
  }
}

TEST_F(PagedScanFixture, EngineParityAcrossThePagedPath) {
  const std::string text = seam_text(30000, 2048, 11);
  const std::vector<std::string> motifs{kMotif, "TATAA"};
  const DenseDfa dfa = build_aho_corasick(motifs);
  const std::uint64_t expected = count_matches(dfa, text);

  for (const EngineKind kind : kAllEngineKinds) {
    const auto engine = try_lower(kind, motifs);
    ASSERT_NE(engine, nullptr) << to_string(kind);
    ParallelMatcher matcher(*engine, pool_);
    for (const parallel::SchedulePolicy schedule :
         {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic}) {
      dna::PagedGenome genome = paged(text, 2048, 6);
      PagedScanOptions options;
      options.schedule = schedule;
      const PagedScanStats stats = matcher.count_paged(genome, options);
      EXPECT_EQ(stats.match_count, expected)
          << to_string(kind) << "/" << parallel::to_string(schedule);
    }
  }
}

TEST_F(PagedScanFixture, MotifExactlyOnPageBoundary) {
  // The hardest seam: a motif whose first byte is the last byte of a page,
  // and one ending exactly on the boundary.
  const std::size_t page = 1024;
  std::string text(4 * page, 'T');
  const std::string_view m = kMotif;
  text.replace(page - 1, m.size(), m);            // starts on page 0's last byte
  text.replace(2 * page - m.size(), m.size(), m); // ends exactly at the seam
  text.replace(3 * page - m.size() / 2, m.size(), m);  // centered on the seam
  const DenseDfa dfa = build_aho_corasick({std::string(m)});
  ASSERT_EQ(count_matches(dfa, text), 3u);
  ParallelMatcher matcher(dfa, pool_);
  for (const parallel::SchedulePolicy schedule : parallel::kAllSchedulePolicies) {
    dna::PagedGenome genome = paged(text, page, 4);
    PagedScanOptions options;
    options.schedule = schedule;
    EXPECT_EQ(matcher.count_paged(genome, options).match_count, 3u)
        << parallel::to_string(schedule);
  }
}

TEST_F(PagedScanFixture, PrefetchDepthSweepKeepsParityAndReportsTelemetry) {
  const std::string text = seam_text(60000, 4096, 13);
  const DenseDfa dfa = build_aho_corasick({kMotif});
  const std::uint64_t expected = count_matches(dfa, text);
  ParallelMatcher matcher(dfa, pool_);
  for (const std::size_t depth : {0u, 1u, 2u, 4u}) {
    dna::PagedGenome genome = paged(text, 2048, /*resident=*/12);
    PagedScanOptions options;
    options.prefetch_depth = depth;
    const PagedScanStats stats = matcher.count_paged(genome, options);
    EXPECT_EQ(stats.match_count, expected) << "depth=" << depth;
    EXPECT_EQ(stats.prefetch_depth, depth);  // budget 12 - 4 workers - 2 >= 4
    // Roughly one load per page: the frontier-chasing reader must not
    // re-load the corpus behind fast consumers (that would double IO).
    EXPECT_GE(stats.cache.loads, genome.page_count());
    EXPECT_LT(stats.cache.loads, 2 * genome.page_count());
    if (depth == 0) {
      // No prefetch thread: every load is a cold consumer stall.
      EXPECT_EQ(stats.cache.cold_stalls, stats.cache.loads);
      EXPECT_EQ(stats.prefetch.pages_prefetched, 0u);
    }
    const double overlap = stats.overlap_efficiency();
    EXPECT_GE(overlap, 0.0);
    EXPECT_LE(overlap, 1.0);
  }
}

TEST_F(PagedScanFixture, PageRangeRestrictsTheScan) {
  const std::string text = seam_text(16384, 2048, 17);
  const DenseDfa dfa = build_aho_corasick({kMotif});
  ParallelMatcher matcher(dfa, pool_);
  dna::PagedGenome genome = paged(text, 2048, 6);
  PagedScanOptions options;
  options.first_page = 2;
  options.last_page = 5;
  const PagedScanStats stats = matcher.count_paged(genome, options);
  EXPECT_EQ(stats.pages, 3u);
  EXPECT_EQ(stats.bytes, 3u * 2048u);
  // Parity for the sub-range: matches with end positions in (begin, end].
  const std::uint64_t whole_to_5 =
      count_matches(dfa, text.substr(0, 5 * 2048));
  const std::uint64_t whole_to_2 = count_matches(dfa, text.substr(0, 2 * 2048));
  EXPECT_EQ(stats.match_count, whole_to_5 - whole_to_2);
}

TEST_F(PagedScanFixture, ValidatesHaloBudgetAndBound) {
  const std::string text = seam_text(8192, 2048, 19);
  const DenseDfa dfa = build_aho_corasick({kMotif});  // bound 7, needs halo >= 6
  ParallelMatcher matcher(dfa, pool_);
  {
    dna::PagedGenome thin = paged(text, 2048, 6, /*halo=*/3);
    EXPECT_THROW((void)matcher.count_paged(thin), std::invalid_argument);
  }
  {
    // Budget below the pool's worker count could deadlock on backpressure.
    dna::PagedGenome tight = paged(text, 2048, 2);
    EXPECT_THROW((void)matcher.count_paged(tight), std::invalid_argument);
  }
  {
    // A halo of exactly bound-1 is enough.
    dna::PagedGenome exact = paged(text, 2048, 6, /*halo=*/6);
    EXPECT_EQ(matcher.count_paged(exact).match_count, count_matches(dfa, text));
  }
  {
    // Unbounded operators have no synchronization bound: the per-chunk
    // warm-up out of the halo is impossible, so streaming must refuse.
    const auto compiled = compile_motifs({"GC(A)*GC"});
    const DenseDfa unbounded = determinize(compiled.nfa, compiled.synchronization_bound);
    ASSERT_EQ(unbounded.synchronization_bound(), 0u);
    ParallelMatcher streaming(unbounded, pool_);
    dna::PagedGenome genome = paged(text, 2048, 6);
    EXPECT_THROW((void)streaming.count_paged(genome), std::invalid_argument);
  }
}

TEST_F(PagedScanFixture, PinBudgetTightensTheResidentLimit) {
  const std::string text = seam_text(16384, 2048, 31);
  const DenseDfa dfa = build_aho_corasick({kMotif});
  ParallelMatcher matcher(dfa, pool_);
  dna::PagedGenome genome = paged(text, 2048, 8);
  PagedScanOptions options;
  options.pin_budget = 3;  // below the pool's 4 workers
  EXPECT_THROW((void)matcher.count_paged(genome, options), std::invalid_argument);
  options.pin_budget = 4;  // exactly the workers: legal, but no prefetch room
  options.prefetch_depth = 4;
  const PagedScanStats stats = matcher.count_paged(genome, options);
  EXPECT_EQ(stats.match_count, count_matches(dfa, text));
  EXPECT_EQ(stats.prefetch_depth, 0u);  // clamped: 4 - workers - 2 < 0
}

TEST_F(PagedScanFixture, EmptyRangeReturnsEmptyStats) {
  const std::string text = seam_text(8192, 2048, 23);
  const DenseDfa dfa = build_aho_corasick({kMotif});
  ParallelMatcher matcher(dfa, pool_);
  dna::PagedGenome genome = paged(text, 2048, 6);
  PagedScanOptions options;
  options.first_page = 3;
  options.last_page = 3;
  const PagedScanStats stats = matcher.count_paged(genome, options);
  EXPECT_EQ(stats.match_count, 0u);
  EXPECT_EQ(stats.pages, 0u);
  EXPECT_EQ(stats.chunks, 0u);
}

TEST_F(PagedScanFixture, RepeatedRunsReuseWarmPages) {
  const std::string text = seam_text(16384, 2048, 29);
  const DenseDfa dfa = build_aho_corasick({kMotif});
  ParallelMatcher matcher(dfa, pool_);
  // Budget covers the whole corpus: the second run must be all hits.
  dna::PagedGenome genome = paged(text, 2048, 8);
  const std::uint64_t expected = count_matches(dfa, text);
  PagedScanOptions options;
  options.prefetch_depth = 0;
  EXPECT_EQ(matcher.count_paged(genome, options).match_count, expected);
  const PagedScanStats warm = matcher.count_paged(genome, options);
  EXPECT_EQ(warm.match_count, expected);
  EXPECT_EQ(warm.cache.loads, 0u);
  EXPECT_EQ(warm.cache.cold_stalls, 0u);
  // Every acquire is a hit; several workers may re-acquire the same page.
  EXPECT_GE(warm.cache.hits, genome.page_count());
  EXPECT_DOUBLE_EQ(warm.overlap_efficiency(), 1.0);
}

}  // namespace
}  // namespace hetopt::automata
