// Randomized cross-validation of the whole automata stack: generate random
// motif expressions, compile through every engine, and check that all
// engines agree with each other and with the NFA oracle on random texts.
#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"
#include "core/executor.hpp"
#include "automata/hopcroft.hpp"
#include "automata/parallel_matcher.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"
#include "util/rng.hpp"

namespace hetopt::automata {
namespace {

/// Generates a random motif expression from the grammar (depth-bounded).
/// Returns expressions that cannot match the empty string.
std::string random_motif(util::Xoshiro256& rng, int depth) {
  static constexpr const char* kAtoms = "ACGTRYSWKMN";
  const auto atom = [&rng]() {
    return std::string(1, kAtoms[rng.bounded(11)]);
  };
  if (depth <= 0) return atom();
  switch (rng.bounded(6)) {
    case 0:  // concatenation
      return random_motif(rng, depth - 1) + random_motif(rng, depth - 1);
    case 1:  // alternation
      return "(" + random_motif(rng, depth - 1) + "|" + random_motif(rng, depth - 1) + ")";
    case 2:  // optional suffix after a required atom (stays non-empty)
      return atom() + "(" + random_motif(rng, depth - 1) + ")?";
    case 3:  // plus
      return "(" + random_motif(rng, depth - 1) + ")+";
    case 4:  // star after a required atom (stays non-empty)
      return atom() + "(" + random_motif(rng, depth - 1) + ")*";
    default:
      return atom();
  }
}

class RegexFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegexFuzz, DfaMinimizedDfaAndNfaAgree) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed * 2654435761ULL + 17);
  const dna::GenomeGenerator gen;

  std::vector<std::string> patterns;
  const auto n = static_cast<std::size_t>(rng.range(1, 3));
  for (std::size_t i = 0; i < n; ++i) patterns.push_back(random_motif(rng, 3));

  const auto compiled = compile_motifs(patterns);
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  ASSERT_TRUE(dfa.validate().empty()) << "patterns: " << patterns[0];
  const DenseDfa min = minimize(dfa);
  ASSERT_TRUE(min.validate().empty());
  EXPECT_LE(min.state_count(), dfa.state_count());

  for (int round = 0; round < 4; ++round) {
    const std::string text = gen.generate(800, seed * 31 + round);
    // Full engines agree on counts.
    const auto dfa_count = count_matches(dfa, text);
    EXPECT_EQ(count_matches(min, text), dfa_count);
    // NFA oracle agrees on *which* patterns matched.
    std::vector<Match> events;
    (void)scan_collect(dfa, text, dfa.start(), 0, events);
    std::uint64_t mask = 0;
    for (const Match& m : events) mask |= m.pattern_mask;
    EXPECT_EQ(mask, compiled.nfa.simulate(text))
        << "patterns:" << [&] {
             std::string all;
             for (const auto& p : patterns) all += " " + p;
             return all;
           }();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexFuzz, ::testing::Range<std::uint64_t>(0, 25));

class ParallelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelFuzz, ChunkedEqualsSequentialOnRandomRegexes) {
  const std::uint64_t seed = GetParam();
  util::Xoshiro256 rng(seed * 40503 + 7);
  const dna::GenomeGenerator gen;
  const std::string pattern = random_motif(rng, 3);
  const auto compiled = compile_motifs({pattern});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);

  parallel::ThreadPool pool(4);
  const ParallelMatcher matcher(dfa, pool);
  const std::string text = gen.generate(12000, seed + 99);
  const std::uint64_t expected = count_matches(dfa, text);
  const auto chunks = static_cast<std::size_t>(rng.range(2, 31));
  EXPECT_EQ(matcher.count(text, chunks, ParallelStrategy::kWarmup).match_count, expected)
      << "pattern " << pattern << " chunks " << chunks;
  EXPECT_EQ(matcher.count(text, chunks, ParallelStrategy::kSpeculative).match_count,
            expected)
      << "pattern " << pattern << " chunks " << chunks;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzz, ::testing::Range<std::uint64_t>(0, 15));

TEST(DfaRandomWalk, MinimizedBehavesIdenticallyAlongRandomWalks) {
  // Walk both automata with the same random input and compare accept
  // signatures at every step — a stronger check than count equality.
  const auto compiled = compile_motifs({"GGATCC", "GANTC", "TTYAA"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const DenseDfa min = minimize(dfa);
  util::Xoshiro256 rng(1234);
  StateId a = dfa.start();
  StateId b = min.start();
  for (int step = 0; step < 20000; ++step) {
    const auto base = static_cast<dna::Base>(rng.bounded(4));
    a = dfa.step(a, base);
    b = min.step(b, base);
    ASSERT_EQ(dfa.accept_mask(a), min.accept_mask(b)) << "step " << step;
    ASSERT_EQ(dfa.accept_count(a), min.accept_count(b)) << "step " << step;
  }
}

TEST(ExecutorFuzz, RandomSplitsNeverLoseMatches) {
  const dna::GenomeGenerator gen;
  const auto compiled = compile_motifs({"GATNNACA", "TTTT"});
  const DenseDfa dfa = determinize(compiled.nfa, compiled.synchronization_bound);
  const std::string text = gen.generate(40000, 77);
  const std::uint64_t expected = count_matches(dfa, text);
  util::Xoshiro256 rng(42);
  core::HeterogeneousExecutor exec(dfa, 3, 3);
  for (int round = 0; round < 12; ++round) {
    const double pct = rng.uniform(0.0, 100.0);
    EXPECT_EQ(exec.run(text, pct).total_matches(), expected) << "pct " << pct;
  }
}

}  // namespace
}  // namespace hetopt::automata
