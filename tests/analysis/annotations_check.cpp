// Compile-time coverage for src/util/annotations.hpp + src/util/sync.hpp.
//
// This TU is built as part of the default build on every compiler:
//  - under clang it is compiled with -Wthread-safety (see CMakeLists.txt), so
//    every macro below must expand to a *working* attribute and the annotated
//    usage must be analysis-clean — together with tsa_negative.cpp (which
//    must fail) this proves the attributes are live;
//  - under any other compiler the static_assert block at the bottom proves,
//    at preprocessing time, that every annotation macro expands to NOTHING:
//    a non-empty expansion spliced between `true` and `== true` would be a
//    syntax error.
#include <cstddef>

#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace hetopt::analysis_check {

/// A guarded structure exercising every annotation in its documented
/// position; mirrors the conventions in docs/ARCHITECTURE.md.
class GuardedCounter {
 public:
  GuardedCounter() = default;

  /// RAII path — the common idiom.
  void increment() HETOPT_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    ++value_;
    ++*boxed_;
  }

  /// Caller-holds-the-lock path.
  [[nodiscard]] std::size_t value_locked() const HETOPT_REQUIRES(mutex_) {
    return value_;
  }

  /// Manual acquire/release pair.
  void lock() HETOPT_ACQUIRE(mutex_) { mutex_.lock(); }
  void unlock() HETOPT_RELEASE(mutex_) { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() HETOPT_TRY_ACQUIRE(true, mutex_) {
    return mutex_.try_lock();
  }

  /// Exposes the capability for callers that annotate against it.
  [[nodiscard]] util::Mutex& mutex() HETOPT_RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }

  /// Deliberate, documented escape hatch: single-threaded use only (e.g.
  /// constructors in tests); the annotation is the audit trail.
  [[nodiscard]] std::size_t value_unsafe() const HETOPT_NO_THREAD_SAFETY_ANALYSIS {
    return value_;
  }

 private:
  util::Mutex mutex_;
  std::size_t value_ HETOPT_GUARDED_BY(mutex_) = 0;
  std::size_t* boxed_ HETOPT_PT_GUARDED_BY(mutex_) = &storage_;
  std::size_t storage_ = 0;
};

/// Lock-ordering declaration between two capabilities.
class TwoLocks {
 public:
  void both() HETOPT_EXCLUDES(first_, second_) {
    const util::MutexLock outer(first_);
    const util::MutexLock inner(second_);
    ++a_;
    ++b_;
  }

 private:
  util::Mutex first_ HETOPT_ACQUIRED_BEFORE(second_);
  util::Mutex second_ HETOPT_ACQUIRED_AFTER(first_);
  int a_ HETOPT_GUARDED_BY(first_) = 0;
  int b_ HETOPT_GUARDED_BY(second_) = 0;
};

/// Anchor so the static library has a symbol and the classes are ODR-used.
std::size_t annotations_check_anchor() {
  GuardedCounter counter;
  counter.increment();
  TwoLocks two;
  two.both();
  counter.lock();
  const std::size_t v = counter.value_locked();
  counter.unlock();
  return v + counter.value_unsafe();
}

}  // namespace hetopt::analysis_check

#if !defined(__clang__)
// Emptiness proof: on non-clang compilers each macro spliced into an
// expression must vanish entirely — anything left over breaks the parse.
#define HETOPT_CHECK_EMPTY(expansion) \
  static_assert(true expansion == true, "annotation must expand to nothing")
HETOPT_CHECK_EMPTY(HETOPT_CAPABILITY("mutex"));
HETOPT_CHECK_EMPTY(HETOPT_SCOPED_CAPABILITY);
HETOPT_CHECK_EMPTY(HETOPT_GUARDED_BY(dummy));
HETOPT_CHECK_EMPTY(HETOPT_PT_GUARDED_BY(dummy));
HETOPT_CHECK_EMPTY(HETOPT_REQUIRES(dummy));
HETOPT_CHECK_EMPTY(HETOPT_ACQUIRE(dummy));
HETOPT_CHECK_EMPTY(HETOPT_RELEASE(dummy));
HETOPT_CHECK_EMPTY(HETOPT_TRY_ACQUIRE(true, dummy));
HETOPT_CHECK_EMPTY(HETOPT_EXCLUDES(dummy));
HETOPT_CHECK_EMPTY(HETOPT_ACQUIRED_BEFORE(dummy));
HETOPT_CHECK_EMPTY(HETOPT_ACQUIRED_AFTER(dummy));
HETOPT_CHECK_EMPTY(HETOPT_RETURN_CAPABILITY(dummy));
HETOPT_CHECK_EMPTY(HETOPT_NO_THREAD_SAFETY_ANALYSIS);
#undef HETOPT_CHECK_EMPTY
#endif
