// Negative fixture for the clang thread-safety gate: reads and writes a
// HETOPT_GUARDED_BY member without holding its mutex. Under
// `clang++ -Wthread-safety -Werror` this TU MUST fail to compile — the
// `thread_safety_negative` ctest builds it and asserts the failure
// (WILL_FAIL). It is never built under other compilers (the annotations
// expand to nothing there, so it would compile and prove nothing).
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace hetopt::analysis_check {

class Unsafe {
 public:
  /// BUG (deliberate): touches value_ with mutex_ unheld. The analysis
  /// reports `-Wthread-safety-analysis: writing variable 'value_' requires
  /// holding mutex 'mutex_' exclusively`.
  int bump() { return ++value_; }

 private:
  util::Mutex mutex_;
  int value_ HETOPT_GUARDED_BY(mutex_) = 0;
};

int tsa_negative_anchor() {
  Unsafe unsafe;
  return unsafe.bump();
}

}  // namespace hetopt::analysis_check
