#include "core/features.hpp"

#include <gtest/gtest.h>

namespace hetopt::core {
namespace {

TEST(Features, HostLayout) {
  const auto f = host_features(1500.0, 24, parallel::HostAffinity::kScatter);
  ASSERT_EQ(f.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(f[0], 1500.0);
  EXPECT_DOUBLE_EQ(f[1], 24.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // none
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // scatter
  EXPECT_DOUBLE_EQ(f[4], 0.0);  // compact
  EXPECT_DOUBLE_EQ(f[5], 1.0);  // compiled-dfa (the default engine)
  EXPECT_DOUBLE_EQ(f[6], 0.0);  // aho-corasick
  EXPECT_DOUBLE_EQ(f[7], 0.0);  // bitap
}

TEST(Features, DeviceLayout) {
  const auto f = device_features(800.0, 120, parallel::DeviceAffinity::kCompact);
  ASSERT_EQ(f.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(f[0], 800.0);
  EXPECT_DOUBLE_EQ(f[1], 120.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // balanced
  EXPECT_DOUBLE_EQ(f[3], 0.0);  // scatter
  EXPECT_DOUBLE_EQ(f[4], 1.0);  // compact
  EXPECT_DOUBLE_EQ(f[5], 1.0);  // compiled-dfa (the default engine)
}

TEST(Features, EngineOneHot) {
  for (const automata::EngineKind kind : automata::kAllEngineKinds) {
    const auto h = host_features(1.0, 2, parallel::HostAffinity::kNone, kind);
    const auto d = device_features(1.0, 2, parallel::DeviceAffinity::kBalanced, kind);
    EXPECT_DOUBLE_EQ(h[5] + h[6] + h[7], 1.0);
    EXPECT_DOUBLE_EQ(d[5] + d[6] + d[7], 1.0);
    EXPECT_DOUBLE_EQ(h[5 + static_cast<std::size_t>(kind)], 1.0);
    EXPECT_DOUBLE_EQ(d[5 + static_cast<std::size_t>(kind)], 1.0);
  }
  const auto bitap =
      host_features(1.0, 2, parallel::HostAffinity::kNone, automata::EngineKind::kBitap);
  EXPECT_DOUBLE_EQ(bitap[5], 0.0);
  EXPECT_DOUBLE_EQ(bitap[7], 1.0);
}

TEST(Features, OneHotIsExclusive) {
  for (parallel::HostAffinity a : parallel::kAllHostAffinities) {
    const auto f = host_features(1.0, 2, a);
    EXPECT_DOUBLE_EQ(f[2] + f[3] + f[4], 1.0);
  }
  for (parallel::DeviceAffinity a : parallel::kAllDeviceAffinities) {
    const auto f = device_features(1.0, 2, a);
    EXPECT_DOUBLE_EQ(f[2] + f[3] + f[4], 1.0);
  }
}

TEST(Features, NamesMatchLayoutWidth) {
  EXPECT_EQ(host_feature_names().size(), kFeatureCount);
  EXPECT_EQ(device_feature_names().size(), kFeatureCount);
  EXPECT_EQ(host_feature_names()[0], "size_mb");
  EXPECT_EQ(device_feature_names()[2], "affinity_balanced");
  EXPECT_EQ(host_feature_names()[5], "engine_compiled_dfa");
  EXPECT_EQ(host_feature_names()[6], "engine_aho_corasick");
  EXPECT_EQ(device_feature_names()[7], "engine_bitap");
}

TEST(Features, Validation) {
  EXPECT_THROW((void)host_features(-1.0, 2, parallel::HostAffinity::kNone),
               std::invalid_argument);
  EXPECT_THROW((void)host_features(1.0, 0, parallel::HostAffinity::kNone),
               std::invalid_argument);
  EXPECT_THROW((void)device_features(-1.0, 2, parallel::DeviceAffinity::kBalanced),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::core
