#include "core/features.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "ml/dataset.hpp"

namespace hetopt::core {
namespace {

TEST(Features, HostLayout) {
  const auto f = host_features(1500.0, 24, parallel::HostAffinity::kScatter);
  ASSERT_EQ(f.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(f[0], 1500.0);
  EXPECT_DOUBLE_EQ(f[1], 24.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // none
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // scatter
  EXPECT_DOUBLE_EQ(f[4], 0.0);  // compact
  EXPECT_DOUBLE_EQ(f[5], 1.0);  // compiled-dfa (the default engine)
  EXPECT_DOUBLE_EQ(f[6], 0.0);  // aho-corasick
  EXPECT_DOUBLE_EQ(f[7], 0.0);  // bitap
  EXPECT_DOUBLE_EQ(f[8], 0.0);  // bitap-simd
  EXPECT_DOUBLE_EQ(f[9], 0.0);  // prefilter-dfa
  EXPECT_DOUBLE_EQ(f[10], 1.0);  // static (the default schedule)
  EXPECT_DOUBLE_EQ(f[11], 0.0);  // dynamic
  EXPECT_DOUBLE_EQ(f[12], 0.0);  // guided
  EXPECT_DOUBLE_EQ(f[13], 0.0);  // adaptive
}

TEST(Features, DeviceLayout) {
  const auto f = device_features(800.0, 120, parallel::DeviceAffinity::kCompact);
  ASSERT_EQ(f.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(f[0], 800.0);
  EXPECT_DOUBLE_EQ(f[1], 120.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // balanced
  EXPECT_DOUBLE_EQ(f[3], 0.0);  // scatter
  EXPECT_DOUBLE_EQ(f[4], 1.0);  // compact
  EXPECT_DOUBLE_EQ(f[5], 1.0);  // compiled-dfa (the default engine)
}

TEST(Features, EngineOneHot) {
  for (const automata::EngineKind kind : automata::kAllEngineKinds) {
    const auto h = host_features(1.0, 2, parallel::HostAffinity::kNone, kind);
    const auto d = device_features(1.0, 2, parallel::DeviceAffinity::kBalanced, kind);
    EXPECT_DOUBLE_EQ(h[5] + h[6] + h[7] + h[8] + h[9], 1.0);
    EXPECT_DOUBLE_EQ(d[5] + d[6] + d[7] + d[8] + d[9], 1.0);
    EXPECT_DOUBLE_EQ(h[5 + static_cast<std::size_t>(kind)], 1.0);
    EXPECT_DOUBLE_EQ(d[5 + static_cast<std::size_t>(kind)], 1.0);
  }
  const auto bitap =
      host_features(1.0, 2, parallel::HostAffinity::kNone, automata::EngineKind::kBitap);
  EXPECT_DOUBLE_EQ(bitap[5], 0.0);
  EXPECT_DOUBLE_EQ(bitap[7], 1.0);
  const auto simd = host_features(1.0, 2, parallel::HostAffinity::kNone,
                                  automata::EngineKind::kBitapSimd);
  EXPECT_DOUBLE_EQ(simd[7], 0.0);
  EXPECT_DOUBLE_EQ(simd[8], 1.0);
  const auto prefilter = host_features(1.0, 2, parallel::HostAffinity::kNone,
                                       automata::EngineKind::kPrefilterDfa);
  EXPECT_DOUBLE_EQ(prefilter[9], 1.0);
}

TEST(Features, ScheduleOneHot) {
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    const auto h = host_features(1.0, 2, parallel::HostAffinity::kNone,
                                 automata::EngineKind::kCompiledDfa, policy);
    const auto d = device_features(1.0, 2, parallel::DeviceAffinity::kBalanced,
                                   automata::EngineKind::kCompiledDfa, policy);
    EXPECT_DOUBLE_EQ(h[10] + h[11] + h[12] + h[13], 1.0);
    EXPECT_DOUBLE_EQ(d[10] + d[11] + d[12] + d[13], 1.0);
    EXPECT_DOUBLE_EQ(h[10 + static_cast<std::size_t>(policy)], 1.0);
    EXPECT_DOUBLE_EQ(d[10 + static_cast<std::size_t>(policy)], 1.0);
  }
  const auto adaptive =
      host_features(1.0, 2, parallel::HostAffinity::kNone,
                    automata::EngineKind::kCompiledDfa,
                    parallel::SchedulePolicy::kAdaptive);
  EXPECT_DOUBLE_EQ(adaptive[10], 0.0);
  EXPECT_DOUBLE_EQ(adaptive[13], 1.0);
}

TEST(Features, ConstantScheduleColumnNormalizesToZero) {
  // Sweeps that never vary the schedule produce constant one-hot columns;
  // the min-max normalizer must map them to zero so legacy predictor models
  // (and default-schedule predictions) are unchanged by the wider layout.
  ml::Dataset data(host_feature_names());
  data.add(host_features(1.0, 2, parallel::HostAffinity::kNone), 1.0);
  data.add(host_features(2.0, 4, parallel::HostAffinity::kScatter), 2.0);
  ml::Normalizer norm;
  norm.fit(data);
  std::vector<double> out(kFeatureCount);
  norm.transform_row(host_features(1.5, 2, parallel::HostAffinity::kNone), out);
  for (std::size_t j = 10; j < kFeatureCount; ++j) {
    EXPECT_DOUBLE_EQ(out[j], 0.0) << "column " << j;
  }
  EXPECT_DOUBLE_EQ(out[5], 0.0);  // the constant engine column, same rule
}

TEST(Features, OneHotIsExclusive) {
  for (parallel::HostAffinity a : parallel::kAllHostAffinities) {
    const auto f = host_features(1.0, 2, a);
    EXPECT_DOUBLE_EQ(f[2] + f[3] + f[4], 1.0);
  }
  for (parallel::DeviceAffinity a : parallel::kAllDeviceAffinities) {
    const auto f = device_features(1.0, 2, a);
    EXPECT_DOUBLE_EQ(f[2] + f[3] + f[4], 1.0);
  }
}

TEST(Features, FleetColumnsEncodePoolShapeWithPairDefaults) {
  // Defaults encode the paper's pair: 2 pools, this environment holding
  // 100% of its side — the constant columns legacy sweeps produce.
  const auto h = host_features(1.0, 2, parallel::HostAffinity::kNone);
  EXPECT_DOUBLE_EQ(h[14], 2.0);
  EXPECT_DOUBLE_EQ(h[15], 100.0);
  // A 4-device fleet: 5 pools, each device holding a quarter of the side.
  const auto d = device_features(1.0, 2, parallel::DeviceAffinity::kBalanced,
                                 automata::EngineKind::kCompiledDfa,
                                 parallel::SchedulePolicy::kStatic, 5, 25.0);
  EXPECT_DOUBLE_EQ(d[14], 5.0);
  EXPECT_DOUBLE_EQ(d[15], 25.0);
  // Out-of-range fleet shapes are rejected.
  EXPECT_THROW((void)host_features(1.0, 2, parallel::HostAffinity::kNone,
                                   automata::EngineKind::kCompiledDfa,
                                   parallel::SchedulePolicy::kStatic, 0, 100.0),
               std::invalid_argument);
  EXPECT_THROW((void)device_features(1.0, 2, parallel::DeviceAffinity::kBalanced,
                                     automata::EngineKind::kCompiledDfa,
                                     parallel::SchedulePolicy::kStatic, 2, 101.0),
               std::invalid_argument);
}

TEST(Features, NamesMatchLayoutWidth) {
  EXPECT_EQ(host_feature_names().size(), kFeatureCount);
  EXPECT_EQ(device_feature_names().size(), kFeatureCount);
  EXPECT_EQ(host_feature_names()[0], "size_mb");
  EXPECT_EQ(device_feature_names()[2], "affinity_balanced");
  EXPECT_EQ(host_feature_names()[5], "engine_compiled_dfa");
  EXPECT_EQ(host_feature_names()[6], "engine_aho_corasick");
  EXPECT_EQ(device_feature_names()[7], "engine_bitap");
  EXPECT_EQ(host_feature_names()[8], "engine_bitap_simd");
  EXPECT_EQ(device_feature_names()[9], "engine_prefilter_dfa");
  EXPECT_EQ(host_feature_names()[10], "schedule_static");
  EXPECT_EQ(host_feature_names()[11], "schedule_dynamic");
  EXPECT_EQ(host_feature_names()[12], "schedule_guided");
  EXPECT_EQ(device_feature_names()[13], "schedule_adaptive");
  EXPECT_EQ(host_feature_names()[14], "pool_count");
  EXPECT_EQ(device_feature_names()[15], "pool_share_pct");
}

TEST(Features, Validation) {
  EXPECT_THROW((void)host_features(-1.0, 2, parallel::HostAffinity::kNone),
               std::invalid_argument);
  EXPECT_THROW((void)host_features(1.0, 0, parallel::HostAffinity::kNone),
               std::invalid_argument);
  EXPECT_THROW((void)device_features(-1.0, 2, parallel::DeviceAffinity::kBalanced),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::core
