#include "core/features.hpp"

#include <gtest/gtest.h>

namespace hetopt::core {
namespace {

TEST(Features, HostLayout) {
  const auto f = host_features(1500.0, 24, parallel::HostAffinity::kScatter);
  ASSERT_EQ(f.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(f[0], 1500.0);
  EXPECT_DOUBLE_EQ(f[1], 24.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // none
  EXPECT_DOUBLE_EQ(f[3], 1.0);  // scatter
  EXPECT_DOUBLE_EQ(f[4], 0.0);  // compact
}

TEST(Features, DeviceLayout) {
  const auto f = device_features(800.0, 120, parallel::DeviceAffinity::kCompact);
  ASSERT_EQ(f.size(), kFeatureCount);
  EXPECT_DOUBLE_EQ(f[0], 800.0);
  EXPECT_DOUBLE_EQ(f[1], 120.0);
  EXPECT_DOUBLE_EQ(f[2], 0.0);  // balanced
  EXPECT_DOUBLE_EQ(f[3], 0.0);  // scatter
  EXPECT_DOUBLE_EQ(f[4], 1.0);  // compact
}

TEST(Features, OneHotIsExclusive) {
  for (parallel::HostAffinity a : parallel::kAllHostAffinities) {
    const auto f = host_features(1.0, 2, a);
    EXPECT_DOUBLE_EQ(f[2] + f[3] + f[4], 1.0);
  }
  for (parallel::DeviceAffinity a : parallel::kAllDeviceAffinities) {
    const auto f = device_features(1.0, 2, a);
    EXPECT_DOUBLE_EQ(f[2] + f[3] + f[4], 1.0);
  }
}

TEST(Features, NamesMatchLayoutWidth) {
  EXPECT_EQ(host_feature_names().size(), kFeatureCount);
  EXPECT_EQ(device_feature_names().size(), kFeatureCount);
  EXPECT_EQ(host_feature_names()[0], "size_mb");
  EXPECT_EQ(device_feature_names()[2], "affinity_balanced");
}

TEST(Features, Validation) {
  EXPECT_THROW((void)host_features(-1.0, 2, parallel::HostAffinity::kNone),
               std::invalid_argument);
  EXPECT_THROW((void)host_features(1.0, 0, parallel::HostAffinity::kNone),
               std::invalid_argument);
  EXPECT_THROW((void)device_features(-1.0, 2, parallel::DeviceAffinity::kBalanced),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::core
