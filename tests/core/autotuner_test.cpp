#include "core/autotuner.hpp"

#include <gtest/gtest.h>

namespace hetopt::core {
namespace {

AutotunerOptions fast_options() {
  AutotunerOptions o;
  o.sweep = TrainingSweepOptions::tiny();
  o.predictor.host_params.rounds = 60;
  o.predictor.device_params.rounds = 60;
  o.sa_iterations = 300;
  return o;
}

TEST(AutotunerTest, SamWorksWithoutTraining) {
  Autotuner tuner(sim::emil_machine(), opt::ConfigSpace::paper(), fast_options());
  EXPECT_FALSE(tuner.trained());
  const MethodResult r = tuner.tune(Workload("human", 3170.0), Method::kSAM);
  EXPECT_GT(r.measured_time, 0.0);
  EXPECT_LE(r.evaluations, 301u);
}

TEST(AutotunerTest, MlMethodsRequireTraining) {
  Autotuner tuner(sim::emil_machine(), opt::ConfigSpace::paper(), fast_options());
  EXPECT_THROW((void)tuner.tune(Workload("human", 3170.0), Method::kSAML),
               std::logic_error);
  EXPECT_THROW((void)tuner.tune(Workload("human", 3170.0), Method::kEML),
               std::logic_error);
}

TEST(AutotunerTest, TrainReportsExperimentCount) {
  Autotuner tuner(sim::emil_machine(), opt::ConfigSpace::paper(), fast_options());
  const dna::GenomeCatalog catalog;
  const std::size_t experiments = tuner.train(catalog);
  // tiny sweep: 4 genomes x 4 fractions x (2 host threads x 3 aff +
  // 2 device threads x 3 aff) = 16 * 12 = 192.
  EXPECT_EQ(experiments, 192u);
  EXPECT_TRUE(tuner.trained());
}

TEST(AutotunerTest, SamlRecommendsASharedConfiguration) {
  Autotuner tuner(sim::emil_machine(), opt::ConfigSpace::paper(), fast_options());
  const dna::GenomeCatalog catalog;
  (void)tuner.train(catalog);
  const MethodResult r = tuner.tune(Workload("mouse", 2770.0), Method::kSAML);
  // A large workload should be genuinely shared: fraction strictly inside
  // (0, 100) — the whole point of the paper.
  EXPECT_GT(r.config.host_percent, 0.0);
  EXPECT_LT(r.config.host_percent, 100.0);
}

TEST(AutotunerTest, BudgetOverrideControlsEvaluations) {
  Autotuner tuner(sim::emil_machine(), opt::ConfigSpace::paper(), fast_options());
  const MethodResult r =
      tuner.tune_with_budget(Workload("cat", 2430.0), Method::kSAM, 100);
  EXPECT_LE(r.evaluations, 101u);
}

TEST(AutotunerTest, AccessorsExposeComponents) {
  Autotuner tuner(sim::emil_machine(), opt::ConfigSpace::tiny(), fast_options());
  EXPECT_EQ(tuner.space().size(), opt::ConfigSpace::tiny().size());
  EXPECT_EQ(tuner.machine().spec().host.cores, 24);
}

}  // namespace
}  // namespace hetopt::core
