#include "core/tuning_session.hpp"

#include <gtest/gtest.h>

#include "core/autotuner.hpp"
#include "core/strategy_registry.hpp"
#include "core/training.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/multi.hpp"

namespace hetopt::core {
namespace {

class SessionFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new sim::Machine(sim::emil_machine());
    node_ = new sim::MultiDeviceMachine(sim::emil_with_phis(2));
    const dna::GenomeCatalog catalog;
    const TrainingData data =
        generate_training_data(*machine_, catalog, TrainingSweepOptions::tiny());
    predictor_ = new PerformancePredictor();
    predictor_->train(data.host, data.device);
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete node_;
    delete machine_;
    predictor_ = nullptr;
    node_ = nullptr;
    machine_ = nullptr;
  }

  static sim::Machine* machine_;
  static sim::MultiDeviceMachine* node_;
  static PerformancePredictor* predictor_;
  Workload human_{"human", 3170.0};
};

sim::Machine* SessionFixture::machine_ = nullptr;
sim::MultiDeviceMachine* SessionFixture::node_ = nullptr;
PerformancePredictor* SessionFixture::predictor_ = nullptr;

void expect_method_results_identical(const MethodResult& a, const MethodResult& b) {
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.config, b.config);
  // Bit-identical, not just approximately equal: the presets must reproduce
  // the legacy implementations exactly at a fixed seed.
  EXPECT_EQ(a.measured_time, b.measured_time);
  EXPECT_EQ(a.search_energy, b.search_energy);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(SessionFixture, EveryStrategyEvaluatorCombinationReturnsAConfigInsideTheSpace) {
  const opt::ConfigSpace space = opt::ConfigSpace::tiny();
  const std::vector<std::string> strategies = StrategyRegistry::instance().names();
  ASSERT_GE(strategies.size(), 4u);

  const auto evaluators = [&]() {
    std::vector<std::shared_ptr<Evaluator>> out;
    out.push_back(std::make_shared<MeasurementEvaluator>(*machine_));
    out.push_back(std::make_shared<PredictionEvaluator>(*predictor_, *machine_));
    out.push_back(std::make_shared<MultiDeviceMeasurementEvaluator>(*node_));
    return out;
  }();

  for (const std::string& strategy : strategies) {
    for (const auto& evaluator : evaluators) {
      TuningSession session(space);
      session.with_strategy(strategy).with_evaluator(evaluator).with_budget(64).with_seed(3);
      const SessionReport r = session.run(human_);
      EXPECT_TRUE(space.contains(r.config))
          << strategy << " x " << r.evaluator << " left the space";
      EXPECT_GT(r.measured_time, 0.0) << strategy << " x " << r.evaluator;
      EXPECT_GT(r.evaluations, 0u) << strategy << " x " << r.evaluator;
      EXPECT_EQ(r.strategy, strategy);
    }
  }
}

TEST_F(SessionFixture, EmPresetBitIdenticalToRunEm) {
  const opt::ConfigSpace space = opt::ConfigSpace::tiny();
  TuningSession session = TuningSession::preset(Method::kEM, *machine_, space);
  const MethodResult preset = to_method_result(session.run(human_), Method::kEM);
  expect_method_results_identical(preset, run_em(space, *machine_, human_));
  EXPECT_EQ(preset.evaluations, space.size());
}

TEST_F(SessionFixture, EmlPresetBitIdenticalToRunEml) {
  const opt::ConfigSpace space = opt::ConfigSpace::tiny();
  TuningSession session = TuningSession::preset(Method::kEML, *machine_, space, predictor_);
  const MethodResult preset = to_method_result(session.run(human_), Method::kEML);
  expect_method_results_identical(preset, run_eml(space, *machine_, human_, *predictor_));
}

TEST_F(SessionFixture, SamPresetBitIdenticalToRunSam) {
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  const std::uint64_t seed = 77;
  TuningSession session =
      TuningSession::preset(Method::kSAM, *machine_, space, nullptr, 300, seed);
  const MethodResult preset = to_method_result(session.run(human_), Method::kSAM);
  expect_method_results_identical(
      preset, run_sam(space, *machine_, human_, sa_params_for_iterations(300, seed)));
  EXPECT_EQ(preset.evaluations, 301u);
}

TEST_F(SessionFixture, SamlPresetBitIdenticalToRunSaml) {
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  const std::uint64_t seed = 78;
  TuningSession session =
      TuningSession::preset(Method::kSAML, *machine_, space, predictor_, 300, seed);
  const MethodResult preset = to_method_result(session.run(human_), Method::kSAML);
  expect_method_results_identical(
      preset,
      run_saml(space, *machine_, human_, *predictor_, sa_params_for_iterations(300, seed)));
}

TEST_F(SessionFixture, PresetsMatchAutotunerAtSameSeed) {
  AutotunerOptions options;
  options.sweep = TrainingSweepOptions::tiny();
  options.sa_iterations = 250;
  options.seed = 99;
  const Autotuner tuner(*machine_, opt::ConfigSpace::paper(), options);
  const MethodResult via_tuner = tuner.tune(human_, Method::kSAM);
  TuningSession session = tuner.session(Method::kSAM);
  expect_method_results_identical(via_tuner,
                                  to_method_result(session.run(human_), Method::kSAM));
}

TEST_F(SessionFixture, ThreadPoolBatchingChangesNothing) {
  const opt::ConfigSpace space = opt::ConfigSpace::tiny();
  TuningSession serial = TuningSession::preset(Method::kEM, *machine_, space);
  TuningSession pooled = TuningSession::preset(Method::kEM, *machine_, space);
  pooled.with_thread_pool(std::make_shared<parallel::ThreadPool>(2));
  const SessionReport a = serial.run(human_);
  const SessionReport b = pooled.run(human_);
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.measured_time, b.measured_time);
  EXPECT_EQ(a.search_energy, b.search_energy);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST_F(SessionFixture, GeneticAndRandomTuneTheMultiDeviceNodeEndToEnd) {
  // The acceptance scenario: strategies the old Method enum could not reach,
  // tuning a 1-host + K-device platform through the same session API.
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  const auto evaluator = std::make_shared<MultiDeviceMeasurementEvaluator>(*node_);
  for (const char* strategy : {"genetic", "random"}) {
    TuningSession session(space);
    session.with_strategy(strategy).with_evaluator(evaluator).with_budget(200).with_seed(21);
    const SessionReport r = session.run(human_);
    EXPECT_TRUE(space.contains(r.config)) << strategy;
    EXPECT_LE(r.evaluations, 200u) << strategy;
    // Sharing beats sensible single-sided baselines on a big workload.
    opt::SystemConfig host_only = r.config;
    host_only.host_percent = 100.0;
    host_only.host_threads = space.host_threads().back();
    EXPECT_LT(r.measured_time, evaluator->score(host_only, human_)) << strategy;
  }
}

TEST_F(SessionFixture, RunWithoutStrategyOrEvaluatorThrows) {
  TuningSession no_strategy(opt::ConfigSpace::tiny());
  no_strategy.with_evaluator(std::make_shared<MeasurementEvaluator>(*machine_));
  EXPECT_THROW((void)no_strategy.run(human_), std::logic_error);

  TuningSession no_evaluator(opt::ConfigSpace::tiny());
  no_evaluator.with_strategy("random");
  EXPECT_THROW((void)no_evaluator.run(human_), std::logic_error);
}

TEST_F(SessionFixture, MlPresetsWithoutPredictorThrow) {
  EXPECT_THROW((void)TuningSession::preset(Method::kEML, *machine_, opt::ConfigSpace::tiny()),
               std::logic_error);
  EXPECT_THROW((void)TuningSession::preset(Method::kSAML, *machine_, opt::ConfigSpace::tiny()),
               std::logic_error);
}

TEST(StrategyRegistryTest, KnowsTheBuiltInsAndRejectsUnknownNames) {
  const StrategyRegistry& registry = StrategyRegistry::instance();
  for (const char* name : {"exhaustive", "random", "annealing", "genetic"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
    EXPECT_EQ(registry.create(name)->name(), name);
  }
  EXPECT_THROW((void)registry.create("gradient-descent"), std::invalid_argument);
}

TEST(StrategyRegistryTest, CustomRegistrationsAreCreatable) {
  StrategyRegistry registry;  // isolated instance, not the process-wide one
  registry.add("exhaustive-small-batch", [] { return std::make_shared<opt::ExhaustiveSearch>(8); });
  EXPECT_TRUE(registry.contains("exhaustive-small-batch"));
  EXPECT_EQ(registry.create("exhaustive-small-batch")->name(), "exhaustive");
  EXPECT_THROW(registry.add("", [] { return std::make_shared<opt::RandomSearch>(); }),
               std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::core
