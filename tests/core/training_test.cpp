#include "core/training.hpp"

#include <gtest/gtest.h>

namespace hetopt::core {
namespace {

TEST(TrainingSweep, PaperCountsAre2880And4320) {
  // §IV-B: 7200 experiments = 2880 host + 4320 device.
  const auto options = TrainingSweepOptions::paper();
  EXPECT_EQ(options.fractions.size(), 40u);
  EXPECT_EQ(options.host_threads.size(), 6u);
  EXPECT_EQ(options.device_threads.size(), 9u);

  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data = generate_training_data(machine, catalog, options);
  EXPECT_EQ(data.host.size(), 2880u);
  EXPECT_EQ(data.device.size(), 4320u);
  EXPECT_EQ(data.host.size() + data.device.size(), 7200u);
}

TEST(TrainingSweep, TargetsArePositiveAndFinite) {
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data =
      generate_training_data(machine, catalog, TrainingSweepOptions::tiny());
  for (std::size_t i = 0; i < data.host.size(); ++i) {
    EXPECT_GT(data.host.target(i), 0.0);
  }
  for (std::size_t i = 0; i < data.device.size(); ++i) {
    EXPECT_GT(data.device.target(i), 0.0);
  }
}

TEST(TrainingSweep, FeatureRangesCoverTableOne) {
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data =
      generate_training_data(machine, catalog, TrainingSweepOptions::paper());
  double max_threads = 0.0;
  double max_mb = 0.0;
  for (std::size_t i = 0; i < data.host.size(); ++i) {
    max_threads = std::max(max_threads, data.host.row(i)[1]);
    max_mb = std::max(max_mb, data.host.row(i)[0]);
  }
  EXPECT_DOUBLE_EQ(max_threads, 48.0);
  EXPECT_DOUBLE_EQ(max_mb, 3170.0);  // 100% of human
}

TEST(TrainingSweep, DeterministicAcrossRuns) {
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const auto tiny = TrainingSweepOptions::tiny();
  const TrainingData a = generate_training_data(machine, catalog, tiny);
  const TrainingData b = generate_training_data(machine, catalog, tiny);
  ASSERT_EQ(a.host.size(), b.host.size());
  for (std::size_t i = 0; i < a.host.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.host.target(i), b.host.target(i));
  }
}

TEST(TrainingSweep, EmptyAxesRejected) {
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  TrainingSweepOptions bad = TrainingSweepOptions::tiny();
  bad.fractions.clear();
  EXPECT_THROW((void)generate_training_data(machine, catalog, bad), std::invalid_argument);
  bad = TrainingSweepOptions::tiny();
  bad.host_threads.clear();
  EXPECT_THROW((void)generate_training_data(machine, catalog, bad), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::core
