#include "core/real_workload.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/tuning_session.hpp"
#include "opt/config_space.hpp"

namespace hetopt::core {
namespace {

/// A fast evaluator: ~128 KB of physical "cat" sequence, timing replaced by
/// the deterministic work model where noted.
RealWorkloadOptions tiny_options(bool deterministic) {
  RealWorkloadOptions options;
  options.bytes_per_logical_mb = 54.0;  // cat (2430 logical MB) -> ~128 KB
  options.min_physical_bytes = 64 * 1024;
  options.deterministic_timing = deterministic;
  return options;
}

Workload cat() { return Workload("cat", 2430.0); }

TEST(RealWorkloadTest, MaterializesScaledGenomeWithGroundTruth) {
  const dna::GenomeCatalog catalog;
  const RealWorkload rw(catalog, cat(), tiny_options(false));
  EXPECT_EQ(rw.logical().name, "cat");
  EXPECT_NEAR(static_cast<double>(rw.physical_bytes()), 2430.0 * 54.0, 1.0);
  // Planted motifs guarantee a non-trivial ground truth.
  EXPECT_GT(rw.sequential_matches(), 0u);
  // The materialization is deterministic.
  const RealWorkload again(catalog, cat(), tiny_options(false));
  EXPECT_EQ(again.text(), rw.text());
  EXPECT_EQ(again.sequential_matches(), rw.sequential_matches());
}

TEST(RealWorkloadTest, RejectsEmptyMotifsAndBadOptions) {
  const dna::GenomeCatalog catalog;
  RealWorkloadOptions options = tiny_options(false);
  options.motifs.clear();
  EXPECT_THROW((void)RealWorkload(catalog, cat(), options), std::invalid_argument);

  RealWorkloadOptions zero_repeats = tiny_options(false);
  zero_repeats.repeats = 0;
  EXPECT_THROW((void)RealWorkloadEvaluator(catalog, zero_repeats), std::invalid_argument);
  RealWorkloadOptions zero_chunks = tiny_options(false);
  zero_chunks.chunks_per_thread = 0;
  EXPECT_THROW((void)RealWorkloadEvaluator(catalog, zero_chunks), std::invalid_argument);
}

TEST(RealWorkloadEvaluatorTest, MatchCountsEqualSequentialScanAcrossChunkCounts) {
  const dna::GenomeCatalog catalog;
  // Sweep thread counts and chunks-per-thread: every parallel decomposition
  // must reproduce the sequential match count exactly (the PaREM property).
  for (const std::size_t chunks_per_thread : {std::size_t{1}, std::size_t{3}}) {
    RealWorkloadOptions options = tiny_options(false);
    options.chunks_per_thread = chunks_per_thread;
    const RealWorkloadEvaluator evaluator(catalog, options);
    const std::uint64_t expected = evaluator.real(cat()).sequential_matches();
    for (const int host_threads : {1, 2, 5}) {
      for (const int device_threads : {1, 4}) {
        for (const double fraction : {0.0, 33.0, 75.0, 100.0}) {
          opt::SystemConfig c;
          c.host_threads = host_threads;
          c.device_threads = device_threads;
          c.host_percent = fraction;
          const RealMeasurement m = evaluator.measure(c, cat());
          EXPECT_EQ(m.matches, expected)
              << "host_threads=" << host_threads << " device_threads=" << device_threads
              << " fraction=" << fraction << " cpt=" << chunks_per_thread;
          EXPECT_EQ(m.host_bytes + m.device_bytes, evaluator.real(cat()).physical_bytes());
          EXPECT_GT(m.seconds, 0.0);
          EXPECT_GT(m.throughput_mb_s, 0.0);
        }
      }
    }
  }
}

TEST(RealWorkloadEvaluatorTest, SeededTinyGenomeTuningIsDeterministic) {
  const dna::GenomeCatalog catalog;
  const opt::ConfigSpace space = opt::ConfigSpace::real(4);

  const auto tune = [&]() {
    TuningSession session(space);
    session.with_strategy("annealing")
        .with_evaluator(std::make_shared<RealWorkloadEvaluator>(catalog, tiny_options(true)))
        .with_budget(40)
        .with_seed(1234);
    return session.run(cat());
  };
  const SessionReport first = tune();
  const SessionReport second = tune();
  EXPECT_EQ(first.config, second.config);
  EXPECT_DOUBLE_EQ(first.measured_time, second.measured_time);
  EXPECT_DOUBLE_EQ(first.search_energy, second.search_energy);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_EQ(first.evaluator, "real-workload");
}

TEST(RealWorkloadEvaluatorTest, DeterministicModelPrefersMoreThreads) {
  opt::SystemConfig few;
  few.host_threads = 1;
  few.device_threads = 1;
  few.host_percent = 50.0;
  opt::SystemConfig many = few;
  many.host_threads = 8;
  many.device_threads = 8;
  const std::size_t mb = 4 * 1024 * 1024;
  EXPECT_LT(real_workload_model_seconds(many, mb, mb),
            real_workload_model_seconds(few, mb, mb));
  // Overlapped time is the max of the sides: dropping one side never slows
  // the other down.
  EXPECT_LE(real_workload_model_seconds(few, 0, mb),
            real_workload_model_seconds(few, mb, mb) + 1e-12);
  EXPECT_GT(real_workload_model_seconds(few, mb, 0), 0.0);
}

TEST(RealWorkloadEvaluatorTest, CachesMaterializedWorkloads) {
  const dna::GenomeCatalog catalog;
  const RealWorkloadEvaluator evaluator(catalog, tiny_options(true));
  const RealWorkload& a = evaluator.real(cat());
  const RealWorkload& b = evaluator.real(cat());
  EXPECT_EQ(&a, &b);  // same materialization, no regeneration
}

TEST(RealWorkloadTest, BuildsEveryApplicableEngine) {
  const dna::GenomeCatalog catalog;
  // The default motifs (TATAWAW has IUPAC W): every engine but AC (IUPAC
  // classes are fine for bitap, its SIMD twin, and the prefiltered DFA).
  const RealWorkload iupac(catalog, cat(), tiny_options(false));
  EXPECT_EQ(iupac.engines(),
            (std::vector<automata::EngineKind>{
                automata::EngineKind::kCompiledDfa, automata::EngineKind::kBitap,
                automata::EngineKind::kBitapSimd,
                automata::EngineKind::kPrefilterDfa}));
  EXPECT_EQ(iupac.find_engine(automata::EngineKind::kAhoCorasick), nullptr);
  EXPECT_FALSE(iupac.engine_gap(automata::EngineKind::kAhoCorasick).empty());
  EXPECT_THROW((void)iupac.engine(automata::EngineKind::kAhoCorasick),
               std::invalid_argument);

  // Literal motifs qualify for every engine.
  RealWorkloadOptions literal = tiny_options(false);
  literal.motifs = {"GATTACA", "GGGCGG"};
  const RealWorkload all(catalog, cat(), literal);
  EXPECT_EQ(all.engines().size(), 5u);
  for (const automata::EngineKind kind : automata::kAllEngineKinds) {
    ASSERT_NE(all.find_engine(kind), nullptr);
    EXPECT_EQ(all.find_engine(kind)->count(all.text()), all.sequential_matches())
        << to_string(kind);
  }
}

TEST(RealWorkloadTest, SkipsBitapCleanlyBeyond64Bits) {
  // > 64 summed pattern bits: the workload still builds (compiled DFA and AC
  // carry it) and records why bitap is out — the capability-query fallback.
  const dna::GenomeCatalog catalog;
  RealWorkloadOptions wide = tiny_options(false);
  wide.motifs = {std::string(40, 'A') + "CGT", std::string(30, 'C') + "GTA"};
  const RealWorkload rw(catalog, cat(), wide);
  EXPECT_EQ(rw.engines(),
            (std::vector<automata::EngineKind>{
                automata::EngineKind::kCompiledDfa, automata::EngineKind::kAhoCorasick,
                automata::EngineKind::kPrefilterDfa}));
  EXPECT_EQ(rw.find_engine(automata::EngineKind::kBitap), nullptr);
  EXPECT_NE(rw.engine_gap(automata::EngineKind::kBitap).find("64"), std::string::npos);
  // The SIMD bitap shares the scalar matcher's 64-bit budget exactly.
  EXPECT_EQ(rw.find_engine(automata::EngineKind::kBitapSimd), nullptr);
  EXPECT_NE(rw.engine_gap(automata::EngineKind::kBitapSimd).find("64"),
            std::string::npos);
  // Both surviving engines agree with the oracle.
  for (const automata::EngineKind kind : rw.engines()) {
    EXPECT_EQ(rw.engine(kind).count(rw.text()), rw.sequential_matches());
  }
}

TEST(RealWorkloadEvaluatorTest, HonorsTheConfiguredEngine) {
  const dna::GenomeCatalog catalog;
  const RealWorkloadEvaluator evaluator(catalog, tiny_options(true));
  const std::uint64_t expected = evaluator.real(cat()).sequential_matches();

  opt::SystemConfig c;
  c.host_threads = 2;
  c.device_threads = 2;
  c.host_percent = 50.0;
  for (const automata::EngineKind kind : evaluator.real(cat()).engines()) {
    c.engine = kind;
    const RealMeasurement m = evaluator.measure(c, cat());
    EXPECT_EQ(m.matches, expected) << to_string(kind);
  }
  // Asking for an engine the motif set does not qualify for is an error with
  // the gap reason, not a silent fallback.
  c.engine = automata::EngineKind::kAhoCorasick;
  EXPECT_THROW((void)evaluator.measure(c, cat()), std::invalid_argument);
}

TEST(RealWorkloadEvaluatorTest, DeterministicModelDifferentiatesEngines) {
  opt::SystemConfig c;
  c.host_threads = 4;
  c.device_threads = 4;
  c.host_percent = 50.0;
  const std::size_t mb = 4 * 1024 * 1024;
  const double dfa_s = real_workload_model_seconds(c, mb, mb);
  c.engine = automata::EngineKind::kBitap;
  const double bitap_s = real_workload_model_seconds(c, mb, mb);
  c.engine = automata::EngineKind::kAhoCorasick;
  const double ac_s = real_workload_model_seconds(c, mb, mb);
  c.engine = automata::EngineKind::kBitapSimd;
  const double simd_s = real_workload_model_seconds(c, mb, mb);
  c.engine = automata::EngineKind::kPrefilterDfa;
  const double prefilter_s = real_workload_model_seconds(c, mb, mb);
  EXPECT_LT(bitap_s, dfa_s);
  EXPECT_GT(ac_s, dfa_s);
  // The SIMD tier: vectorized bitap under the scalar one, the prefiltered
  // DFA between bitap and the plain DFA.
  EXPECT_LT(simd_s, bitap_s);
  EXPECT_LT(prefilter_s, dfa_s);
  EXPECT_GT(prefilter_s, bitap_s);
}

TEST(RealWorkloadEvaluatorTest, TuningWithTheEngineAxisPicksTheModelWinner) {
  // Deterministic timing makes the engine landscape a pure function: the
  // SIMD bitap's model factor is the cheapest, so an exhaustive search over
  // an engine-enabled space must select it.
  const dna::GenomeCatalog catalog;
  const auto evaluator =
      std::make_shared<RealWorkloadEvaluator>(catalog, tiny_options(true));
  const opt::ConfigSpace space =
      opt::ConfigSpace::real(2).with_engines(evaluator->real(cat()).engines());
  EXPECT_EQ(space.engines().size(), 4u);

  TuningSession session(space);
  session.with_strategy("exhaustive")
      .with_evaluator(evaluator)
      .with_budget(space.size())
      .with_seed(7);
  const SessionReport report = session.run(cat());
  EXPECT_EQ(report.config.engine, automata::EngineKind::kBitapSimd);
  EXPECT_TRUE(space.contains(report.config));
}

TEST(RealWorkloadEvaluatorTest, HonorsTheConfiguredSchedule) {
  // Every schedule policy runs the live executor and must reproduce the
  // sequential match count exactly — the cross-policy parity property on
  // the measurement path.
  const dna::GenomeCatalog catalog;
  const RealWorkloadEvaluator evaluator(catalog, tiny_options(false));
  const std::uint64_t expected = evaluator.real(cat()).sequential_matches();

  opt::SystemConfig c;
  c.host_threads = 2;
  c.device_threads = 2;
  c.host_percent = 75.0;
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    c.schedule = policy;
    const RealMeasurement m = evaluator.measure(c, cat());
    EXPECT_EQ(m.matches, expected) << parallel::to_string(policy);
    EXPECT_EQ(m.host_bytes + m.device_bytes, evaluator.real(cat()).physical_bytes());
    EXPECT_GE(m.realized_host_percent, 0.0);
    EXPECT_LE(m.realized_host_percent, 100.0);
    if (policy == parallel::SchedulePolicy::kStatic) {
      EXPECT_EQ(m.host_steals, 0u);
      EXPECT_EQ(m.device_steals, 0u);
      EXPECT_DOUBLE_EQ(m.realized_host_percent, 75.0);
    }
  }
}

TEST(RealWorkloadEvaluatorTest, DeterministicModelDifferentiatesSchedules) {
  opt::SystemConfig c;
  c.host_threads = 4;
  c.device_threads = 4;
  const std::size_t mb = 4 * 1024 * 1024;

  // At a deliberately bad fraction the static split is bottlenecked by one
  // side; every shared-queue policy beats it, adaptive cheapest of all
  // (static's factor is exactly 1.0 — its formula is untouched).
  c.host_percent = 100.0;
  const double skewed_static = real_workload_model_seconds(c, 2 * mb, 0);
  c.schedule = parallel::SchedulePolicy::kDynamic;
  const double skewed_dynamic = real_workload_model_seconds(c, 2 * mb, 0);
  c.schedule = parallel::SchedulePolicy::kGuided;
  const double skewed_guided = real_workload_model_seconds(c, 2 * mb, 0);
  c.schedule = parallel::SchedulePolicy::kAdaptive;
  const double skewed_adaptive = real_workload_model_seconds(c, 2 * mb, 0);
  EXPECT_LT(skewed_dynamic, skewed_static);
  EXPECT_LT(skewed_guided, skewed_dynamic);
  EXPECT_LT(skewed_adaptive, skewed_guided);

  // Seeded determinism: the model is a pure function of the configured
  // split, so shared-queue pricing reproduces exactly.
  EXPECT_DOUBLE_EQ(skewed_adaptive, real_workload_model_seconds(c, 2 * mb, 0));
}

TEST(RealWorkloadEvaluatorTest, DeterministicTuningWithScheduleAxisReproduces) {
  // Seeded runs over a schedule-enabled space must reproduce bit-identically
  // (deterministic timing prices the configured split, never the realized
  // one), and the winner must carry a shared-queue schedule somewhere the
  // model rewards it.
  const dna::GenomeCatalog catalog;
  const auto evaluator =
      std::make_shared<RealWorkloadEvaluator>(catalog, tiny_options(true));
  const opt::ConfigSpace space =
      opt::ConfigSpace::real(2).with_schedules(
          {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic,
           parallel::SchedulePolicy::kGuided, parallel::SchedulePolicy::kAdaptive});
  const auto tune = [&] {
    TuningSession session(space);
    session.with_strategy("annealing")
        .with_evaluator(evaluator)
        .with_budget(40)
        .with_seed(2024);
    return session.run(cat());
  };
  const SessionReport first = tune();
  const SessionReport second = tune();
  EXPECT_EQ(first.config, second.config);
  EXPECT_DOUBLE_EQ(first.measured_time, second.measured_time);
  EXPECT_EQ(first.evaluations, second.evaluations);
  EXPECT_TRUE(space.contains(first.config));
}

TEST(RealWorkloadEvaluatorTest, AllFourPresetsCompleteOnTheRealMatcher) {
  // The acceptance path of the measurement pipeline: exhaustive and
  // annealing searches both drive the live matcher end-to-end (EM/SAM), and
  // the evaluator slots into the same session API the ML presets use.
  const dna::GenomeCatalog catalog;
  const auto evaluator =
      std::make_shared<RealWorkloadEvaluator>(catalog, tiny_options(true));
  const opt::ConfigSpace space = opt::ConfigSpace::real(2);
  for (const char* strategy : {"exhaustive", "annealing"}) {
    TuningSession session(space);
    session.with_strategy(strategy).with_evaluator(evaluator).with_budget(20).with_seed(7);
    const SessionReport report = session.run(cat());
    EXPECT_GT(report.evaluations, 0u) << strategy;
    EXPECT_GT(report.measured_time, 0.0) << strategy;
    EXPECT_TRUE(space.contains(report.config)) << strategy;
  }
}

}  // namespace
}  // namespace hetopt::core
