// The N-way invariant layer for the fleet executor: whatever the pool count,
// the share vector (degenerate 0%/100% pools included), the schedule policy,
// or the engine, a fleet run must reproduce the naive sequential oracle —
// match counts exactly, and collected match positions byte for byte.
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "automata/aho_corasick.hpp"
#include "automata/hopcroft.hpp"
#include "automata/match_engine.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"
#include "util/rng.hpp"

namespace hetopt::core {
namespace {

/// A random share vector of `pools` entries: integer percents >= 0 summing
/// to exactly 100 (cut points drawn from the seeded generator), so
/// validate_shares accepts it without fp slack and degenerate zero-share
/// pools occur naturally.
std::vector<double> random_shares(std::size_t pools, util::Xoshiro256& rng) {
  std::vector<std::uint64_t> cuts{0, 100};
  for (std::size_t i = 0; i + 1 < pools; ++i) cuts.push_back(rng.bounded(101));
  std::sort(cuts.begin(), cuts.end());
  std::vector<double> shares;
  shares.reserve(pools);
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    shares.push_back(static_cast<double>(cuts[i + 1] - cuts[i]));
  }
  return shares;
}

/// One PoolSpec per pool with small varied thread counts.
std::vector<PoolSpec> fleet_specs(std::size_t pools) {
  std::vector<PoolSpec> specs(pools);
  for (std::size_t i = 0; i < pools; ++i) {
    specs[i].threads = 1 + (i % 3);
    specs[i].share_percent = i == 0 ? 100.0 : 0.0;  // overridden per run
  }
  return specs;
}

class MultiPoolFixture : public ::testing::Test {
 protected:
  dna::GenomeGenerator gen_;
};

TEST_F(MultiPoolFixture, FleetCountsMatchNaiveOracleAcrossPoolCountsSharesAndPolicies) {
  // The core N-way property: random motif sets x genomes x pool counts
  // (1..4) x random share vectors x every schedule policy, all against the
  // per-byte naive oracle.
  const std::vector<std::vector<std::string>> motif_sets = {
      {"GATTACA", "CCGG"},
      {"TATAWAW", "GGNCC", "TTSAA"},
      {"AAAA", "ACGT", "TGCA"},
  };
  util::Xoshiro256 rng(20260808);
  std::uint64_t seed = 3;
  for (const auto& motifs : motif_sets) {
    const auto compiled = automata::compile_motifs(motifs);
    const automata::DenseDfa dfa =
        automata::determinize(compiled.nfa, compiled.synchronization_bound);
    const std::string text = gen_.generate(30000 + 1013 * seed, seed);
    ++seed;
    const std::uint64_t expected =
        automata::scan_count_naive(dfa, text, dfa.start()).match_count;
    for (std::size_t pools = 1; pools <= 4; ++pools) {
      HeterogeneousExecutor exec(dfa, fleet_specs(pools));
      ASSERT_EQ(exec.pool_count(), pools);
      for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
        for (int round = 0; round < 2; ++round) {
          const std::vector<double> shares = random_shares(pools, rng);
          const ExecutionReport r = exec.run_fleet(text, shares, policy);
          EXPECT_EQ(r.total_matches(), expected)
              << "pools=" << pools << " policy=" << parallel::to_string(policy)
              << " round=" << round;
          std::size_t bytes = 0;
          for (const PoolReport& pool : r.pools) bytes += pool.bytes;
          EXPECT_EQ(bytes, text.size());
        }
      }
    }
  }
}

TEST_F(MultiPoolFixture, CollectedPositionsAreByteIdenticalToNaiveOracle) {
  // Position parity, not just count parity: collect_fleet must emit exactly
  // the event stream of a sequential naive scan — same ends, same pattern
  // masks, same (ascending) order — for every pool count and policy.
  const automata::DenseDfa dfa =
      automata::build_aho_corasick({"TATA", "GGCC", "ACGTACGT"});
  std::string text = gen_.generate(40000, 11);
  text.replace(text.size() / 4 - 4, 8, "ACGTACGT");   // straddles a 25% cut
  text.replace(text.size() / 2 - 4, 8, "ACGTACGT");   // straddles the 50% cut
  std::vector<automata::Match> expected;
  (void)automata::scan_collect_naive(dfa, text, dfa.start(), 0, expected);
  ASSERT_FALSE(expected.empty());
  util::Xoshiro256 rng(77);
  for (std::size_t pools = 1; pools <= 4; ++pools) {
    HeterogeneousExecutor exec(dfa, fleet_specs(pools));
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      for (int round = 0; round < 2; ++round) {
        const std::vector<double> shares =
            round == 0 ? random_shares(pools, rng)
                       : std::vector<double>(pools, 100.0 / static_cast<double>(pools));
        std::vector<automata::Match> got;
        const ExecutionReport r = exec.collect_fleet(text, shares, policy, got);
        EXPECT_EQ(r.total_matches(), expected.size());
        ASSERT_EQ(got.size(), expected.size())
            << "pools=" << pools << " policy=" << parallel::to_string(policy);
        EXPECT_TRUE(got == expected)
            << "pools=" << pools << " policy=" << parallel::to_string(policy)
            << " round=" << round;
      }
    }
  }
}

TEST_F(MultiPoolFixture, DegenerateSharesSkipPoolLaunchEntirely) {
  // A pool configured to 0% must not be dispatched at all under the static
  // schedule — its report fields stay exactly zero, generalizing the 2-pool
  // 0%/100% convention.
  const automata::DenseDfa dfa = automata::build_aho_corasick({"TTT"});
  const std::string text = gen_.generate(20000, 9);
  const std::uint64_t expected =
      automata::scan_count_naive(dfa, text, dfa.start()).match_count;
  HeterogeneousExecutor exec(dfa, fleet_specs(4));
  const std::vector<std::vector<double>> degenerate = {
      {100.0, 0.0, 0.0, 0.0},
      {0.0, 0.0, 100.0, 0.0},
      {0.0, 50.0, 0.0, 50.0},
  };
  for (const auto& shares : degenerate) {
    const ExecutionReport r =
        exec.run_fleet(text, shares, parallel::SchedulePolicy::kStatic);
    EXPECT_EQ(r.total_matches(), expected);
    for (std::size_t i = 0; i < shares.size(); ++i) {
      if (shares[i] == 0.0) {
        EXPECT_EQ(r.pools[i].bytes, 0u) << i;
        EXPECT_EQ(r.pools[i].matches, 0u) << i;
        EXPECT_EQ(r.pools[i].seconds, 0.0) << i;
        EXPECT_DOUBLE_EQ(r.pools[i].realized_percent, 0.0) << i;
      } else {
        EXPECT_GT(r.pools[i].bytes, 0u) << i;
      }
      EXPECT_EQ(r.pools[i].steals, 0u) << i;
    }
  }
  // Same degenerate shares under collect: zero pools stay silent and the
  // position stream is still the oracle's.
  std::vector<automata::Match> expected_pos;
  (void)automata::scan_collect_naive(dfa, text, dfa.start(), 0, expected_pos);
  std::vector<automata::Match> got;
  const ExecutionReport rc = exec.collect_fleet(text, {0.0, 100.0, 0.0, 0.0},
                                                parallel::SchedulePolicy::kStatic, got);
  EXPECT_EQ(rc.pools[0].seconds, 0.0);
  EXPECT_EQ(rc.pools[2].seconds, 0.0);
  EXPECT_TRUE(got == expected_pos);
}

TEST_F(MultiPoolFixture, LegacyPairPathIsTheTwoPoolFleet) {
  // run(text, pct, ...) and a 2-pool run_fleet with {pct, 100-pct} are the
  // same computation: identical counts, byte splits, and realized shares.
  const automata::DenseDfa dfa = automata::build_aho_corasick({"GATTACA", "CCGG"});
  const std::string text = gen_.generate(60000, 5);
  HeterogeneousExecutor legacy(dfa, 3, 2);
  std::vector<PoolSpec> specs(2);
  specs[0].threads = 3;
  specs[1].threads = 2;
  HeterogeneousExecutor fleet(dfa, specs);
  for (const double pct : {0.0, 37.5, 75.0, 100.0}) {
    const ExecutionReport a = legacy.run(text, pct);
    const ExecutionReport b =
        fleet.run_fleet(text, {pct, 100.0 - pct}, parallel::SchedulePolicy::kStatic);
    EXPECT_EQ(a.total_matches(), b.total_matches()) << pct;
    EXPECT_EQ(a.host_bytes, b.host_bytes) << pct;
    EXPECT_EQ(a.device_bytes, b.device_bytes) << pct;
    EXPECT_EQ(a.host_matches, b.host_matches) << pct;
    EXPECT_DOUBLE_EQ(a.realized_host_percent, b.realized_host_percent) << pct;
  }
}

TEST_F(MultiPoolFixture, LegacyScalarsMirrorThePoolVector) {
  // host_* == pools[0], device_* aggregates pools[1..] (sums; seconds the
  // max) for every policy — the contract the pre-fleet call sites rely on.
  const automata::DenseDfa dfa = automata::build_aho_corasick({"TATA", "GGCC"});
  const std::string text = gen_.generate(50000, 21);
  HeterogeneousExecutor exec(dfa, fleet_specs(3));
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    const ExecutionReport r = exec.run_fleet(text, {40.0, 35.0, 25.0}, policy);
    ASSERT_EQ(r.pools.size(), 3u);
    EXPECT_EQ(r.host_matches, r.pools[0].matches);
    EXPECT_EQ(r.host_bytes, r.pools[0].bytes);
    EXPECT_EQ(r.host_steals, r.pools[0].steals);
    EXPECT_DOUBLE_EQ(r.host_seconds, r.pools[0].seconds);
    EXPECT_EQ(r.device_matches, r.pools[1].matches + r.pools[2].matches);
    EXPECT_EQ(r.device_bytes, r.pools[1].bytes + r.pools[2].bytes);
    EXPECT_EQ(r.device_steals, r.pools[1].steals + r.pools[2].steals);
    EXPECT_DOUBLE_EQ(r.device_seconds, std::max(r.pools[1].seconds, r.pools[2].seconds));
    double realized = 0.0;
    for (const PoolReport& pool : r.pools) realized += pool.realized_percent;
    EXPECT_NEAR(realized, 100.0, 1e-9);
  }
}

TEST_F(MultiPoolFixture, EveryEngineKindRunsTheFleetExactly) {
  // Engine-generic fleets: each available engine (compiled DFA, AC, bitap)
  // drives a 3-pool fleet to the same oracle count.
  const std::vector<std::string> motifs = {"GATTACA", "CCGG", "TTTT"};
  const auto compiled = automata::compile_motifs(motifs);
  const automata::DenseDfa dfa =
      automata::determinize(compiled.nfa, compiled.synchronization_bound);
  const std::string text = gen_.generate(30000, 13);
  const std::uint64_t expected =
      automata::scan_count_naive(dfa, text, dfa.start()).match_count;
  for (const automata::EngineKind kind : automata::kAllEngineKinds) {
    std::string gap;
    const auto engine = automata::try_lower(kind, motifs, &gap);
    ASSERT_NE(engine, nullptr) << gap;
    HeterogeneousExecutor exec(*engine, fleet_specs(3));
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      const ExecutionReport r = exec.run_fleet(text, {50.0, 30.0, 20.0}, policy);
      EXPECT_EQ(r.total_matches(), expected)
          << automata::to_string(kind) << " " << parallel::to_string(policy);
    }
  }
}

TEST_F(MultiPoolFixture, UnboundedEngineFleetDegradesToStaticAndStaysExact) {
  // Unbounded patterns cannot warm up per chunk; an N-pool fleet must run
  // the static path (prefix replay per pool) and still be exact.
  const auto compiled = automata::compile_motifs({"GC(A)*GC"});
  const automata::DenseDfa dfa =
      automata::determinize(compiled.nfa, compiled.synchronization_bound);
  ASSERT_EQ(dfa.synchronization_bound(), 0u);
  const std::string text = gen_.generate(20000, 7);
  const std::uint64_t expected =
      automata::scan_count_naive(dfa, text, dfa.start()).match_count;
  HeterogeneousExecutor exec(dfa, fleet_specs(3));
  const ExecutionReport r =
      exec.run_fleet(text, {40.0, 30.0, 30.0}, parallel::SchedulePolicy::kAdaptive);
  EXPECT_EQ(r.schedule, parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(r.total_matches(), expected);
}

TEST_F(MultiPoolFixture, FleetReportToStringListsEveryPool) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACG"});
  const std::string text = gen_.generate(20000, 3);
  HeterogeneousExecutor exec(dfa, fleet_specs(3));
  const ExecutionReport r =
      exec.run_fleet(text, {50.0, 25.0, 25.0}, parallel::SchedulePolicy::kDynamic);
  const std::string line = r.to_string();
  EXPECT_NE(line.find("[dynamic]"), std::string::npos) << line;
  EXPECT_NE(line.find("host"), std::string::npos) << line;
  EXPECT_NE(line.find("dev1"), std::string::npos) << line;
  EXPECT_NE(line.find("dev2"), std::string::npos) << line;
  EXPECT_NE(line.find("steals"), std::string::npos) << line;
}

TEST_F(MultiPoolFixture, InvalidFleetsAndSharesAreRejected) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACG"});
  EXPECT_THROW(HeterogeneousExecutor(dfa, std::vector<PoolSpec>{}),
               std::invalid_argument);
  std::vector<PoolSpec> both(1);
  both[0].share_percent = 100.0;
  both[0].host_affinity = parallel::HostAffinity::kScatter;
  both[0].device_affinity = parallel::DeviceAffinity::kCompact;
  EXPECT_THROW(HeterogeneousExecutor(dfa, both), std::invalid_argument);
  HeterogeneousExecutor exec(dfa, fleet_specs(3));
  const std::string text = gen_.generate(1000, 1);
  EXPECT_THROW((void)exec.run_fleet(text, {50.0, 50.0},
                                    parallel::SchedulePolicy::kStatic),
               std::invalid_argument);  // wrong arity
  EXPECT_THROW((void)exec.run_fleet(text, {60.0, 30.0, 20.0},
                                    parallel::SchedulePolicy::kStatic),
               std::invalid_argument);  // sums to 110
  EXPECT_THROW((void)exec.run(text, 50.0), std::logic_error);  // not a pair
}

}  // namespace
}  // namespace hetopt::core
