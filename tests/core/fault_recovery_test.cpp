// Parity under faults — the headline invariant of the fault-tolerant
// execution runtime: for any armed fault plan short of total fleet loss
// (and including it: the coordinator's final sweep covers even that), match
// counts and collected positions must stay byte-identical to the sequential
// naive oracle, while the failure telemetry records what the recovery
// machinery actually did. Plus the evaluator's self-healing measure():
// transient measurement faults are retried with backoff, hopeless ones come
// back marked invalid (infinite seconds) so a tuning session keeps searching.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "automata/aho_corasick.hpp"
#include "automata/scanner.hpp"
#include "core/executor.hpp"
#include "core/real_workload.hpp"
#include "core/tuning_session.hpp"
#include "dna/generator.hpp"
#include "opt/config_space.hpp"
#include "util/fault.hpp"

namespace hetopt::core {
namespace {

std::vector<PoolSpec> fleet_specs(std::size_t pools) {
  std::vector<PoolSpec> specs(pools);
  for (std::size_t i = 0; i < pools; ++i) {
    specs[i].threads = 1 + (i % 3);
    specs[i].chunks = 4;  // every pool contributes several chunks to fault at
  }
  return specs;
}

std::vector<double> equal_shares(std::size_t pools) {
  return std::vector<double>(pools, 100.0 / static_cast<double>(pools));
}

class FaultRecoveryFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dfa_ = std::make_unique<automata::DenseDfa>(
        automata::build_aho_corasick({"TATA", "GGCC", "ACGTACGT"}));
    dna::GenomeGenerator gen;
    text_ = gen.generate(30000, 17);
    text_.replace(text_.size() / 3 - 4, 8, "ACGTACGT");  // straddles chunk cuts
    text_.replace(text_.size() / 2 - 4, 8, "ACGTACGT");
    expected_count_ =
        automata::scan_count_naive(*dfa_, text_, dfa_->start()).match_count;
    (void)automata::scan_collect_naive(*dfa_, text_, dfa_->start(), 0, expected_matches_);
    ASSERT_GT(expected_count_, 0u);
  }

  /// The fault plans a `pools`-sized fleet is exercised under: last pool
  /// dies, last pool stalls, chunk 0 throws forever (exhausts the retry
  /// budget and degrades), chunk 0 runs slow, and the no-fault probe.
  static std::vector<std::string> plans_for(std::size_t pools) {
    const std::string last = std::to_string(pools - 1);
    return {
        "pool-death:pool=" + last,
        "pool-stall:pool=" + last,
        "chunk-throw:chunk=0,times=99",
        "chunk-slow:chunk=0,factor=3",
        "probe",
    };
  }

  std::unique_ptr<automata::DenseDfa> dfa_;
  std::string text_;
  std::uint64_t expected_count_ = 0;
  std::vector<automata::Match> expected_matches_;
};

TEST_F(FaultRecoveryFixture, CountParityHoldsForEveryPlanPoolCountAndPolicy) {
  for (std::size_t pools = 1; pools <= 4; ++pools) {
    HeterogeneousExecutor exec(*dfa_, fleet_specs(pools));
    exec.set_recovery({0.02, 3});  // fast watchdog keeps the stall runs short
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      for (const std::string& spec : plans_for(pools)) {
        const util::FaultInjector injector(util::FaultPlan::parse(spec));
        const ExecutionReport r = exec.run_fleet(text_, equal_shares(pools), policy);
        EXPECT_EQ(r.total_matches(), expected_count_)
            << "pools=" << pools << " policy=" << parallel::to_string(policy)
            << " plan=" << spec;
        std::size_t bytes = 0;
        for (const PoolReport& pool : r.pools) bytes += pool.bytes;
        EXPECT_EQ(bytes, text_.size()) << "plan=" << spec;
      }
    }
  }
}

TEST_F(FaultRecoveryFixture, CollectedPositionsStayByteIdenticalUnderFaults) {
  for (std::size_t pools = 1; pools <= 4; ++pools) {
    HeterogeneousExecutor exec(*dfa_, fleet_specs(pools));
    exec.set_recovery({0.02, 3});
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      for (const std::string& spec : plans_for(pools)) {
        const util::FaultInjector injector(util::FaultPlan::parse(spec));
        std::vector<automata::Match> got;
        const ExecutionReport r =
            exec.collect_fleet(text_, equal_shares(pools), policy, got);
        EXPECT_EQ(r.total_matches(), expected_matches_.size()) << "plan=" << spec;
        ASSERT_EQ(got.size(), expected_matches_.size())
            << "pools=" << pools << " policy=" << parallel::to_string(policy)
            << " plan=" << spec;
        EXPECT_TRUE(got == expected_matches_)
            << "pools=" << pools << " policy=" << parallel::to_string(policy)
            << " plan=" << spec;
      }
    }
  }
}

TEST_F(FaultRecoveryFixture, PoolDeathUnderStaticRequeuesToSurvivorsAndIsRecorded) {
  HeterogeneousExecutor exec(*dfa_, fleet_specs(3));
  const util::FaultInjector injector(util::FaultPlan::parse("pool-death:pool=2"));
  const ExecutionReport r =
      exec.run_fleet(text_, equal_shares(3), parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(r.total_matches(), expected_count_);
  // Under static the dead pool's segment is untouched by live stealing, so
  // its chunks are provably requeued (survivor steals + final sweep).
  EXPECT_GT(r.requeued_chunks, 0u);
  ASSERT_EQ(std::count(r.failed_pools.begin(), r.failed_pools.end(), 2u), 1);
  EXPECT_TRUE(r.pools[2].failed);
  EXPECT_FALSE(r.pools[0].failed);
  const std::string line = r.to_string();
  EXPECT_NE(line.find("faults:"), std::string::npos) << line;
  EXPECT_NE(line.find("requeued"), std::string::npos) << line;
}

TEST_F(FaultRecoveryFixture, PoolStallIsReleasedByTheWatchdogAndRecorded) {
  HeterogeneousExecutor exec(*dfa_, fleet_specs(2));
  exec.set_recovery({0.02, 3});
  const util::FaultInjector injector(util::FaultPlan::parse("pool-stall:pool=1"));
  const ExecutionReport r =
      exec.run_fleet(text_, equal_shares(2), parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(r.total_matches(), expected_count_);
  EXPECT_EQ(std::count(r.failed_pools.begin(), r.failed_pools.end(), 1u), 1);
  EXPECT_TRUE(r.pools[1].failed);
}

TEST_F(FaultRecoveryFixture, TransientChunkThrowIsRetriedWithoutDegrading) {
  HeterogeneousExecutor exec(*dfa_, fleet_specs(2));
  // times=2 < max_chunk_attempts=3: the third attempt on chunk 0 succeeds
  // on the real engine, so no degradation to the naive scanner is needed.
  const util::FaultInjector injector(
      util::FaultPlan::parse("chunk-throw:chunk=0,times=2"));
  const ExecutionReport r =
      exec.run_fleet(text_, equal_shares(2), parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(r.total_matches(), expected_count_);
  EXPECT_EQ(r.chunk_retries, 2u);
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.failed_pools.empty());
  EXPECT_EQ(injector.injected(), 2u);
}

TEST_F(FaultRecoveryFixture, ExhaustedChunkRetriesDegradeToTheNaiveScanner) {
  HeterogeneousExecutor exec(*dfa_, fleet_specs(2));
  const util::FaultInjector injector(
      util::FaultPlan::parse("chunk-throw:chunk=0,times=99"));
  const ExecutionReport r =
      exec.run_fleet(text_, equal_shares(2), parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(r.total_matches(), expected_count_);  // the fallback is still exact
  EXPECT_TRUE(r.degraded);
  EXPECT_GE(r.chunk_retries, 3u);
}

TEST_F(FaultRecoveryFixture, DisarmRestoresTheCleanPathAndCleanTelemetry) {
  HeterogeneousExecutor exec(*dfa_, fleet_specs(3));
  {
    const util::FaultInjector injector(util::FaultPlan::parse("pool-death:pool=1"));
    const ExecutionReport faulted =
        exec.run_fleet(text_, equal_shares(3), parallel::SchedulePolicy::kStatic);
    EXPECT_FALSE(faulted.failed_pools.empty());
  }
  ASSERT_EQ(util::FaultInjector::current(), nullptr);
  const ExecutionReport clean =
      exec.run_fleet(text_, equal_shares(3), parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(clean.total_matches(), expected_count_);
  EXPECT_TRUE(clean.failed_pools.empty());
  EXPECT_EQ(clean.requeued_chunks, 0u);
  EXPECT_EQ(clean.chunk_retries, 0u);
  EXPECT_FALSE(clean.degraded);
  EXPECT_EQ(clean.to_string().find("faults:"), std::string::npos);
}

// --- Evaluator self-healing -------------------------------------------------

RealWorkloadOptions tiny_options(bool deterministic) {
  RealWorkloadOptions options;
  options.bytes_per_logical_mb = 54.0;  // cat (2430 logical MB) -> ~128 KB
  options.min_physical_bytes = 64 * 1024;
  options.deterministic_timing = deterministic;
  return options;
}

Workload cat() { return Workload("cat", 2430.0); }

TEST(SelfHealingEvaluatorTest, TransientMeasureFailuresAreRetriedToSuccess) {
  const dna::GenomeCatalog catalog;
  const RealWorkloadEvaluator evaluator(catalog, tiny_options(true));
  const util::FaultInjector injector(
      util::FaultPlan::parse("measure-fail:after=0,times=2", 5));
  const RealMeasurement m = evaluator.measure(opt::SystemConfig{}, cat());
  EXPECT_TRUE(m.valid);
  EXPECT_EQ(m.measure_failures, 2u);  // both retries burned, third attempt ran
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_EQ(m.matches, evaluator.real(cat()).sequential_matches());
  EXPECT_EQ(evaluator.invalid_measurements(), 0u);
}

TEST(SelfHealingEvaluatorTest, ExhaustedRetryBudgetYieldsInvalidInfiniteCost) {
  const dna::GenomeCatalog catalog;
  const RealWorkloadEvaluator evaluator(catalog, tiny_options(true));
  const util::FaultInjector injector(
      util::FaultPlan::parse("measure-fail:after=0,times=99", 5));
  const RealMeasurement m = evaluator.measure(opt::SystemConfig{}, cat());
  EXPECT_FALSE(m.valid);
  EXPECT_TRUE(std::isinf(m.seconds));
  EXPECT_EQ(m.measure_failures, 3u);  // repeats=1 + retry budget of 2
  EXPECT_EQ(m.matches, 0u);
  EXPECT_EQ(evaluator.invalid_measurements(), 1u);
  // score() must surface the infinite cost, not throw.
  EXPECT_TRUE(std::isinf(evaluator.score(opt::SystemConfig{}, cat())));
  EXPECT_EQ(evaluator.invalid_measurements(), 2u);
}

TEST(SelfHealingEvaluatorTest, NoiseSpikesAreRejectedByTheMedianFilter) {
  const dna::GenomeCatalog catalog;
  RealWorkloadOptions options = tiny_options(false);  // wall timing: noise is visible
  options.repeats = 3;
  const RealWorkloadEvaluator evaluator(catalog, options);
  const util::FaultInjector injector(
      util::FaultPlan::parse("measure-noise:repeat=1,factor=10000", 5));
  const RealMeasurement m = evaluator.measure(opt::SystemConfig{}, cat());
  EXPECT_TRUE(m.valid);
  EXPECT_EQ(m.rejected_outliers, 1u);
  EXPECT_EQ(m.measure_failures, 0u);
  EXPECT_GT(m.seconds, 0.0);
  EXPECT_EQ(m.matches, evaluator.real(cat()).sequential_matches());
}

TEST(SelfHealingEvaluatorTest, TuningSessionsCompleteThroughHardMeasureFaults) {
  // Two hard-failure windows, each long enough (repeats + retry budget = 3
  // attempts) to sink one whole measurement into invalid/infinite cost —
  // one during each strategy's search. The sessions must keep searching
  // past the infinite-cost candidates and report a finite winner.
  const dna::GenomeCatalog catalog;
  const auto evaluator =
      std::make_shared<RealWorkloadEvaluator>(catalog, tiny_options(true));
  const opt::ConfigSpace space = opt::ConfigSpace::real(2);
  const util::FaultInjector injector(util::FaultPlan::parse(
      "measure-fail:after=4,times=3; measure-fail:after=40,times=3", 5));
  for (const char* strategy : {"exhaustive", "annealing"}) {
    TuningSession session(space);
    session.with_strategy(strategy).with_evaluator(evaluator).with_budget(20).with_seed(7);
    const SessionReport report = session.run(cat());
    EXPECT_GT(report.evaluations, 0u) << strategy;
    EXPECT_TRUE(std::isfinite(report.measured_time)) << strategy;
    EXPECT_TRUE(space.contains(report.config)) << strategy;
  }
  EXPECT_GT(evaluator->invalid_measurements(), 0u);
}

}  // namespace
}  // namespace hetopt::core
