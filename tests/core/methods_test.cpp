#include "core/methods.hpp"

#include <gtest/gtest.h>

#include "core/training.hpp"

namespace hetopt::core {
namespace {

class MethodsFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new sim::Machine(sim::emil_machine());
    space_ = new opt::ConfigSpace(opt::ConfigSpace::paper());
    const dna::GenomeCatalog catalog;
    const TrainingData data =
        generate_training_data(*machine_, catalog, TrainingSweepOptions::paper());
    predictor_ = new PerformancePredictor();
    predictor_->train(data.host, data.device);
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete space_;
    delete machine_;
    predictor_ = nullptr;
    space_ = nullptr;
    machine_ = nullptr;
  }

  static sim::Machine* machine_;
  static opt::ConfigSpace* space_;
  static PerformancePredictor* predictor_;
  Workload human_{"human", 3170.0};
};

sim::Machine* MethodsFixture::machine_ = nullptr;
opt::ConfigSpace* MethodsFixture::space_ = nullptr;
PerformancePredictor* MethodsFixture::predictor_ = nullptr;

TEST_F(MethodsFixture, EmEvaluatesEntireSpace) {
  const MethodResult em = run_em(*space_, *machine_, human_);
  EXPECT_EQ(em.evaluations, 19926u);
  EXPECT_GT(em.measured_time, 0.0);
  EXPECT_EQ(em.method, Method::kEM);
}

TEST_F(MethodsFixture, EmBeatsBothSingleDeviceBaselines) {
  const MethodResult em = run_em(*space_, *machine_, human_);
  const MethodResult host = host_only_baseline(*space_, *machine_, human_);
  const MethodResult device = device_only_baseline(*space_, *machine_, human_);
  EXPECT_LT(em.measured_time, host.measured_time);
  EXPECT_LT(em.measured_time, device.measured_time);
  // The paper's headline speedups: >1.5x vs host, >2x vs device.
  EXPECT_GT(host.measured_time / em.measured_time, 1.4);
  EXPECT_GT(device.measured_time / em.measured_time, 1.9);
}

TEST_F(MethodsFixture, BaselinesFixFractionAndMaxThreads) {
  const MethodResult host = host_only_baseline(*space_, *machine_, human_);
  EXPECT_DOUBLE_EQ(host.config.host_percent, 100.0);
  EXPECT_EQ(host.config.host_threads, 48);
  const MethodResult device = device_only_baseline(*space_, *machine_, human_);
  EXPECT_DOUBLE_EQ(device.config.host_percent, 0.0);
  EXPECT_EQ(device.config.device_threads, 240);
}

TEST_F(MethodsFixture, SamUsesExactlyTheIterationBudget) {
  const auto sa = sa_params_for_iterations(500, 1);
  const MethodResult sam = run_sam(*space_, *machine_, human_, sa);
  EXPECT_EQ(sam.evaluations, 501u);  // initial + 500 iterations
  EXPECT_EQ(sam.method, Method::kSAM);
}

TEST_F(MethodsFixture, SamlSearchEnergyIsPredictionButScoreIsMeasured) {
  const auto sa = sa_params_for_iterations(500, 2);
  const MethodResult saml = run_saml(*space_, *machine_, human_, *predictor_, sa);
  EXPECT_GT(saml.measured_time, 0.0);
  EXPECT_GT(saml.search_energy, 0.0);
  // Prediction and measurement agree only approximately.
  EXPECT_NE(saml.search_energy, saml.measured_time);
  EXPECT_NEAR(saml.search_energy / saml.measured_time, 1.0, 0.35);
}

TEST_F(MethodsFixture, SamWithGenerousBudgetApproachesEm) {
  const MethodResult em = run_em(*space_, *machine_, human_);
  const MethodResult sam =
      run_sam(*space_, *machine_, human_, sa_params_for_iterations(2000, 3));
  // Table VI: ~7% difference at 2000 iterations; allow 25% headroom.
  EXPECT_LT(sam.measured_time, em.measured_time * 1.25);
}

TEST_F(MethodsFixture, SamlFindsConfigurationsNearEm) {
  const MethodResult em = run_em(*space_, *machine_, human_);
  const MethodResult saml =
      run_saml(*space_, *machine_, human_, *predictor_, sa_params_for_iterations(1000, 4));
  // Result 3: ~10% difference at 1000 iterations; allow headroom for seeds.
  EXPECT_LT(saml.measured_time, em.measured_time * 1.35);
  EXPECT_LE(saml.evaluations, 1001u);
}

TEST_F(MethodsFixture, EmlEvaluatesWholeSpaceWithPredictions) {
  const MethodResult eml = run_eml(*space_, *machine_, human_, *predictor_);
  EXPECT_EQ(eml.evaluations, 19926u);
  EXPECT_GT(eml.measured_time, 0.0);
  const MethodResult em = run_em(*space_, *machine_, human_);
  // EML picks by prediction; its measured score is never better than EM's
  // optimum by more than noise.
  EXPECT_GT(eml.measured_time, em.measured_time * 0.9);
}

TEST_F(MethodsFixture, MethodNamesRoundTrip) {
  EXPECT_EQ(to_string(Method::kEM), "EM");
  EXPECT_EQ(to_string(Method::kEML), "EML");
  EXPECT_EQ(to_string(Method::kSAM), "SAM");
  EXPECT_EQ(to_string(Method::kSAML), "SAML");
}

TEST_F(MethodsFixture, PredictionObjectiveRequiresTrainedPredictor) {
  PerformancePredictor untrained;
  EXPECT_THROW((void)prediction_objective(untrained, human_), std::logic_error);
}

TEST_F(MethodsFixture, ObjectivesAgreeWithMachine) {
  const auto obj = measurement_objective(*machine_, human_);
  const opt::SystemConfig c = space_->at(1234);
  const double direct = machine_->measure_combined(
      human_.size_mb, c.host_percent, c.host_threads, c.host_affinity, c.device_threads,
      c.device_affinity);
  EXPECT_DOUBLE_EQ(obj(c), direct);
}

TEST(WorkloadTest, RejectsNonPositiveSizes) {
  EXPECT_THROW(Workload("x", 0.0), std::invalid_argument);
  EXPECT_THROW(Workload("x", -5.0), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::core
