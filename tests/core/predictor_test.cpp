#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/training.hpp"
#include "ml/metrics.hpp"

namespace hetopt::core {
namespace {

class PredictorFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    machine_ = new sim::Machine(sim::emil_machine());
    catalog_ = new dna::GenomeCatalog();
    data_ = new TrainingData(
        generate_training_data(*machine_, *catalog_, TrainingSweepOptions::paper()));
    predictor_ = new PerformancePredictor();
    predictor_->train(data_->host, data_->device);
  }
  static void TearDownTestSuite() {
    delete predictor_;
    delete data_;
    delete catalog_;
    delete machine_;
    predictor_ = nullptr;
    data_ = nullptr;
    catalog_ = nullptr;
    machine_ = nullptr;
  }

  static sim::Machine* machine_;
  static dna::GenomeCatalog* catalog_;
  static TrainingData* data_;
  static PerformancePredictor* predictor_;
};

sim::Machine* PredictorFixture::machine_ = nullptr;
dna::GenomeCatalog* PredictorFixture::catalog_ = nullptr;
TrainingData* PredictorFixture::data_ = nullptr;
PerformancePredictor* PredictorFixture::predictor_ = nullptr;

TEST_F(PredictorFixture, HostPredictionsTrackModelWithinTenPercent) {
  // Probe unseen sizes (not on the training fraction grid).
  double pct_sum = 0.0;
  int n = 0;
  for (double mb : {333.0, 1001.0, 1777.0, 2999.0}) {
    for (int threads : {6, 24, 48}) {
      const double truth =
          machine_->host_time_model(mb, threads, parallel::HostAffinity::kScatter);
      const double pred =
          predictor_->predict_host(mb, threads, parallel::HostAffinity::kScatter);
      pct_sum += ml::percent_error(truth, pred);
      ++n;
    }
  }
  EXPECT_LT(pct_sum / n, 10.0);
}

TEST_F(PredictorFixture, DevicePredictionsTrackModelWithinTenPercent) {
  double pct_sum = 0.0;
  int n = 0;
  for (double mb : {333.0, 1001.0, 1777.0, 2999.0}) {
    for (int threads : {30, 120, 240}) {
      const double truth =
          machine_->device_time_model(mb, threads, parallel::DeviceAffinity::kBalanced);
      const double pred =
          predictor_->predict_device(mb, threads, parallel::DeviceAffinity::kBalanced);
      pct_sum += ml::percent_error(truth, pred);
      ++n;
    }
  }
  EXPECT_LT(pct_sum / n, 10.0);
}

TEST_F(PredictorFixture, CombinedIsMaxOfSides) {
  opt::SystemConfig c;
  c.host_threads = 24;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 120;
  c.device_affinity = parallel::DeviceAffinity::kBalanced;
  c.host_percent = 60.0;
  const double combined = predictor_->predict_combined(c, 2000.0);
  const double host = predictor_->predict_host(1200.0, 24, parallel::HostAffinity::kScatter);
  const double device =
      predictor_->predict_device(800.0, 120, parallel::DeviceAffinity::kBalanced);
  EXPECT_DOUBLE_EQ(combined, std::max(host, device));
}

TEST_F(PredictorFixture, SharedScheduleCombinesRatesAndIgnoresFraction) {
  // Shared-queue schedules drain the combined input with both pools: the
  // combined estimate is the harmonic sum of the whole-input side times and
  // must not depend on the configured fraction (which the runtime ignores).
  opt::SystemConfig c;
  c.host_threads = 24;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 120;
  c.device_affinity = parallel::DeviceAffinity::kBalanced;
  c.host_percent = 60.0;
  c.schedule = parallel::SchedulePolicy::kDynamic;
  const double combined = predictor_->predict_combined(c, 2000.0);
  const double host = predictor_->predict_host(2000.0, 24, parallel::HostAffinity::kScatter,
                                               c.engine, c.schedule);
  const double device = predictor_->predict_device(
      2000.0, 120, parallel::DeviceAffinity::kBalanced, c.engine, c.schedule);
  EXPECT_DOUBLE_EQ(combined, host * device / (host + device));
  // Both pools working can only help over either side alone.
  EXPECT_LT(combined, std::min(host, device));
  // Fraction-independent: the runtime's realized split emerges at runtime.
  opt::SystemConfig other = c;
  other.host_percent = 0.0;
  EXPECT_DOUBLE_EQ(predictor_->predict_combined(other, 2000.0), combined);
}

TEST_F(PredictorFixture, ZeroByteSidesPredictZero) {
  EXPECT_EQ(predictor_->predict_host(0.0, 24, parallel::HostAffinity::kScatter), 0.0);
  EXPECT_EQ(predictor_->predict_device(0.0, 60, parallel::DeviceAffinity::kBalanced), 0.0);
  opt::SystemConfig c;
  c.host_threads = 48;
  c.host_percent = 100.0;
  c.device_threads = 240;
  const double t = predictor_->predict_combined(c, 1000.0);
  EXPECT_DOUBLE_EQ(
      t, predictor_->predict_host(1000.0, 48, parallel::HostAffinity::kNone));
}

TEST_F(PredictorFixture, PredictionsNonNegativeEverywhere) {
  for (double mb : {1.0, 50.0, 5000.0}) {
    for (int threads : {2, 48}) {
      EXPECT_GE(predictor_->predict_host(mb, threads, parallel::HostAffinity::kCompact), 0.0);
    }
  }
}

TEST(PredictorUsage, ErrorsBeforeTraining) {
  PerformancePredictor p;
  EXPECT_FALSE(p.trained());
  EXPECT_THROW((void)p.predict_host(1.0, 2, parallel::HostAffinity::kNone),
               std::logic_error);
  EXPECT_THROW(p.train(ml::Dataset({"x"}), ml::Dataset({"x"})), std::invalid_argument);
}

TEST(PredictorUsage, RejectsWrongFeatureLayout) {
  PerformancePredictor p;
  ml::Dataset bad({"a", "b"});
  bad.add(std::vector<double>{1.0, 2.0}, 1.0);
  EXPECT_THROW(p.train(bad, bad), std::invalid_argument);
}

TEST(PredictorUsage, SaveLoadRoundTripPredictsIdentically) {
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data =
      generate_training_data(machine, catalog, TrainingSweepOptions::tiny());
  PerformancePredictor original;
  original.train(data.host, data.device);

  std::stringstream ss;
  original.save(ss);
  const PerformancePredictor loaded = PerformancePredictor::load(ss);
  EXPECT_TRUE(loaded.trained());
  for (double mb : {100.0, 999.0, 3170.0}) {
    for (int threads : {2, 24, 48}) {
      EXPECT_DOUBLE_EQ(
          loaded.predict_host(mb, threads, parallel::HostAffinity::kScatter),
          original.predict_host(mb, threads, parallel::HostAffinity::kScatter));
    }
    EXPECT_DOUBLE_EQ(
        loaded.predict_device(mb, 120, parallel::DeviceAffinity::kBalanced),
        original.predict_device(mb, 120, parallel::DeviceAffinity::kBalanced));
  }
}

TEST(PredictorUsage, SaveLoadErrors) {
  PerformancePredictor untrained;
  std::stringstream ss;
  EXPECT_THROW(untrained.save(ss), std::runtime_error);
  std::stringstream bad("not-a-predictor 1 1");
  EXPECT_THROW((void)PerformancePredictor::load(bad), std::runtime_error);
  // A pre-schedule-axis v1 file must fail cleanly at load time (not with a
  // row-size mismatch at predict time).
  std::stringstream v1("hetopt-predictor-v1 1 1");
  EXPECT_THROW((void)PerformancePredictor::load(v1), std::runtime_error);
  // A v2 file whose recorded width disagrees with this build's layout too.
  std::stringstream narrow("hetopt-predictor-v2 8 1 1");
  EXPECT_THROW((void)PerformancePredictor::load(narrow), std::runtime_error);
  // A v3 file uses the pre-SIMD three-way engine one-hot; rejected at load
  // time with the retrain message.
  std::stringstream v3("hetopt-predictor-v3 14 1 1");
  EXPECT_THROW((void)PerformancePredictor::load(v3), std::runtime_error);
  // A v4 header with a stale feature width (the pre-SIMD 14 columns) is
  // rejected with the retrain message, not a predict-time row mismatch.
  std::stringstream stale("hetopt-predictor-v4 14 1 1");
  EXPECT_THROW((void)PerformancePredictor::load(stale), std::runtime_error);
}

TEST(PredictorUsage, FleetDefaultsReproducePairPredictions) {
  // The fleet columns are constant at their defaults (pool_count 2, share
  // 100), and the normalizer maps constant columns to zero: predictions
  // through the new signature must be bit-identical to the short calls, and
  // predict_combined at device_count = 1 is the classic Eq. 2.
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data =
      generate_training_data(machine, catalog, TrainingSweepOptions::tiny());
  PerformancePredictor p;
  p.train(data.host, data.device);
  for (double mb : {100.0, 3170.0}) {
    EXPECT_DOUBLE_EQ(
        p.predict_host(mb, 12, parallel::HostAffinity::kScatter),
        p.predict_host(mb, 12, parallel::HostAffinity::kScatter,
                       automata::EngineKind::kCompiledDfa,
                       parallel::SchedulePolicy::kStatic, 2, 100.0));
    EXPECT_DOUBLE_EQ(
        p.predict_device(mb, 120, parallel::DeviceAffinity::kBalanced),
        p.predict_device(mb, 120, parallel::DeviceAffinity::kBalanced,
                         automata::EngineKind::kCompiledDfa,
                         parallel::SchedulePolicy::kStatic, 2, 100.0));
  }
  opt::SystemConfig c;
  c.host_threads = 12;
  c.device_threads = 120;
  c.host_percent = 40.0;
  ASSERT_EQ(c.device_count, 1);
  const double pair = p.predict_combined(c, 1000.0);
  const double host_t = p.predict_host(400.0, 12, c.host_affinity);
  const double device_t = p.predict_device(600.0, 120, c.device_affinity);
  EXPECT_DOUBLE_EQ(pair, std::max(host_t, device_t));
}

TEST(PredictorUsage, CombinedHandlesDeviceFleets) {
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data =
      generate_training_data(machine, catalog, TrainingSweepOptions::tiny());
  PerformancePredictor p;
  p.train(data.host, data.device);
  opt::SystemConfig c;
  c.host_threads = 12;
  c.device_threads = 120;
  c.host_percent = 40.0;
  c.device_count = 0;
  EXPECT_THROW((void)p.predict_combined(c, 1000.0), std::invalid_argument);
  // Static fleets: each of K identical devices prices a 1/K slice of the
  // device side, so the device term can only shrink as K grows.
  c.device_count = 1;
  const double one = p.predict_combined(c, 1000.0);
  c.device_count = 4;
  const double four = p.predict_combined(c, 1000.0);
  EXPECT_GT(one, 0.0);
  EXPECT_GT(four, 0.0);
  const double host_t = p.predict_host(400.0, 12, c.host_affinity,
                                       automata::EngineKind::kCompiledDfa,
                                       parallel::SchedulePolicy::kStatic, 5, 100.0);
  EXPECT_GE(four, host_t);  // the host side is a floor on the fleet makespan
}

TEST(PredictorUsage, CombinedRejectsNonPositiveTotal) {
  PerformancePredictor p;
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data =
      generate_training_data(machine, catalog, TrainingSweepOptions::tiny());
  p.train(data.host, data.device);
  EXPECT_THROW((void)p.predict_combined(opt::SystemConfig{}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::core
