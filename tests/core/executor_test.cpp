#include "core/executor.hpp"

#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::core {
namespace {

class ExecutorFixture : public ::testing::Test {
 protected:
  dna::GenomeGenerator gen_;
};

TEST_F(ExecutorFixture, TotalMatchesEqualSequentialScan) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"GATTACA", "CCGG"});
  const std::string text = gen_.generate(200000, 1);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 4, 4);
  for (double pct : {0.0, 10.0, 37.5, 50.0, 90.0, 100.0}) {
    const ExecutionReport r = exec.run(text, pct);
    EXPECT_EQ(r.total_matches(), expected) << "host% = " << pct;
    EXPECT_EQ(r.host_bytes + r.device_bytes, text.size());
  }
}

TEST_F(ExecutorFixture, MatchSpanningTheSplitIsCountedOnce) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACGTACGT"});
  std::string text(1000, 'T');
  text.replace(496, 8, "ACGTACGT");  // straddles the 50% cut
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport r = exec.run(text, 50.0);
  EXPECT_EQ(r.total_matches(), 1u);
  // The match ends at position 504 > 500, so the device side owns it.
  EXPECT_EQ(r.device_matches, 1u);
  EXPECT_EQ(r.host_matches, 0u);
}

TEST_F(ExecutorFixture, UnboundedPatternsStillExact) {
  const auto compiled = automata::compile_motifs({"GC(A)*GC"});
  const automata::DenseDfa dfa =
      automata::determinize(compiled.nfa, compiled.synchronization_bound);
  const std::string text = gen_.generate(50000, 7);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 3, 3);
  for (double pct : {0.0, 33.0, 66.0, 100.0}) {
    EXPECT_EQ(exec.run(text, pct).total_matches(), expected) << pct;
  }
}

TEST_F(ExecutorFixture, EmptyTextProducesEmptyReport) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"AC"});
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport r = exec.run("", 50.0);
  EXPECT_EQ(r.total_matches(), 0u);
  EXPECT_EQ(r.host_bytes, 0u);
  EXPECT_EQ(r.device_bytes, 0u);
}

TEST_F(ExecutorFixture, TimersArePopulated) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACG"});
  const std::string text = gen_.generate(500000, 3);
  HeterogeneousExecutor exec(dfa, 4, 4);
  const ExecutionReport r = exec.run(text, 60.0);
  EXPECT_GT(r.host_seconds, 0.0);
  EXPECT_GT(r.device_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.total_seconds, std::max(r.host_seconds, r.device_seconds));
}

TEST_F(ExecutorFixture, FractionEndpointsRouteAllBytesToOneSide) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"TTT"});
  const std::string text = gen_.generate(10000, 9);
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport host_all = exec.run(text, 100.0);
  EXPECT_EQ(host_all.device_bytes, 0u);
  EXPECT_EQ(host_all.device_matches, 0u);
  const ExecutionReport device_all = exec.run(text, 0.0);
  EXPECT_EQ(device_all.host_bytes, 0u);
  EXPECT_EQ(device_all.host_matches, 0u);
  EXPECT_EQ(host_all.total_matches(), device_all.total_matches());
}

class SplitSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitSweep, CountsInvariantUnderSplit) {
  const double pct = GetParam();
  const dna::GenomeGenerator gen;
  const automata::DenseDfa dfa =
      automata::build_aho_corasick({"TATA", "GGCC", "AAAAA"});
  const std::string text = gen.generate(60000, 42);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 3, 5);
  EXPECT_EQ(exec.run(text, pct).total_matches(), expected);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitSweep,
                         ::testing::Values(0.0, 2.5, 25.0, 49.9, 50.0, 50.1, 75.0,
                                           97.5, 100.0));

}  // namespace
}  // namespace hetopt::core
