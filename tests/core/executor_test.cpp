#include "core/executor.hpp"

#include <gtest/gtest.h>

#include "automata/aho_corasick.hpp"
#include "automata/hopcroft.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "dna/generator.hpp"

namespace hetopt::core {
namespace {

class ExecutorFixture : public ::testing::Test {
 protected:
  dna::GenomeGenerator gen_;
};

TEST_F(ExecutorFixture, TotalMatchesEqualSequentialScan) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"GATTACA", "CCGG"});
  const std::string text = gen_.generate(200000, 1);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 4, 4);
  for (double pct : {0.0, 10.0, 37.5, 50.0, 90.0, 100.0}) {
    const ExecutionReport r = exec.run(text, pct);
    EXPECT_EQ(r.total_matches(), expected) << "host% = " << pct;
    EXPECT_EQ(r.host_bytes + r.device_bytes, text.size());
  }
}

TEST_F(ExecutorFixture, MatchSpanningTheSplitIsCountedOnce) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACGTACGT"});
  std::string text(1000, 'T');
  text.replace(496, 8, "ACGTACGT");  // straddles the 50% cut
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport r = exec.run(text, 50.0);
  EXPECT_EQ(r.total_matches(), 1u);
  // The match ends at position 504 > 500, so the device side owns it.
  EXPECT_EQ(r.device_matches, 1u);
  EXPECT_EQ(r.host_matches, 0u);
}

TEST_F(ExecutorFixture, UnboundedPatternsStillExact) {
  const auto compiled = automata::compile_motifs({"GC(A)*GC"});
  const automata::DenseDfa dfa =
      automata::determinize(compiled.nfa, compiled.synchronization_bound);
  const std::string text = gen_.generate(50000, 7);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 3, 3);
  for (double pct : {0.0, 33.0, 66.0, 100.0}) {
    EXPECT_EQ(exec.run(text, pct).total_matches(), expected) << pct;
  }
}

TEST_F(ExecutorFixture, EmptyTextProducesEmptyReport) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"AC"});
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport r = exec.run("", 50.0);
  EXPECT_EQ(r.total_matches(), 0u);
  EXPECT_EQ(r.host_bytes, 0u);
  EXPECT_EQ(r.device_bytes, 0u);
}

TEST_F(ExecutorFixture, TimersArePopulated) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACG"});
  const std::string text = gen_.generate(500000, 3);
  HeterogeneousExecutor exec(dfa, 4, 4);
  const ExecutionReport r = exec.run(text, 60.0);
  EXPECT_GT(r.host_seconds, 0.0);
  EXPECT_GT(r.device_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.total_seconds, std::max(r.host_seconds, r.device_seconds));
}

TEST_F(ExecutorFixture, FractionEndpointsRouteAllBytesToOneSide) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"TTT"});
  const std::string text = gen_.generate(10000, 9);
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport host_all = exec.run(text, 100.0);
  EXPECT_EQ(host_all.device_bytes, 0u);
  EXPECT_EQ(host_all.device_matches, 0u);
  const ExecutionReport device_all = exec.run(text, 0.0);
  EXPECT_EQ(device_all.host_bytes, 0u);
  EXPECT_EQ(device_all.host_matches, 0u);
  EXPECT_EQ(host_all.total_matches(), device_all.total_matches());
}

TEST_F(ExecutorFixture, EmptySideIsSkippedWithExactZeroFields) {
  // 0%/100% fractions must not dispatch to the empty side at all; the
  // zero side's matches/bytes/seconds stay exactly zero.
  const automata::DenseDfa dfa = automata::build_aho_corasick({"TTT"});
  const std::string text = gen_.generate(20000, 9);
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport host_all = exec.run(text, 100.0);
  EXPECT_EQ(host_all.device_bytes, 0u);
  EXPECT_EQ(host_all.device_matches, 0u);
  EXPECT_EQ(host_all.device_seconds, 0.0);
  EXPECT_DOUBLE_EQ(host_all.realized_host_percent, 100.0);
  EXPECT_EQ(host_all.imbalance, 0.0);
  const ExecutionReport device_all = exec.run(text, 0.0);
  EXPECT_EQ(device_all.host_bytes, 0u);
  EXPECT_EQ(device_all.host_matches, 0u);
  EXPECT_EQ(device_all.host_seconds, 0.0);
  EXPECT_DOUBLE_EQ(device_all.realized_host_percent, 0.0);
  EXPECT_EQ(host_all.total_matches(), device_all.total_matches());
}

TEST_F(ExecutorFixture, EverySchedulePolicyMatchesSequentialScan) {
  // Cross-policy parity across fractions and chunk counts, with a motif
  // planted across the configured split boundary.
  const auto compiled = automata::compile_motifs({"TATAWAW", "GGGCGG", "ACGTACGT"});
  const automata::DenseDfa dfa =
      automata::minimize(automata::determinize(compiled.nfa,
                                               compiled.synchronization_bound));
  std::string text = gen_.generate(150000, 31);
  text.replace(text.size() / 2 - 4, 8, "ACGTACGT");  // straddles the 50% cut
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 3, 4);
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    for (const double pct : {0.0, 25.0, 50.0, 87.5, 100.0}) {
      for (const std::size_t chunks : {std::size_t{0}, std::size_t{9}}) {
        const ExecutionReport r = exec.run(text, pct, chunks, chunks, policy);
        EXPECT_EQ(r.total_matches(), expected)
            << "policy=" << parallel::to_string(policy) << " pct=" << pct
            << " chunks=" << chunks;
        EXPECT_EQ(r.host_bytes + r.device_bytes, text.size());
        EXPECT_EQ(r.schedule, policy);
        EXPECT_DOUBLE_EQ(r.configured_host_percent, pct);
        EXPECT_GE(r.realized_host_percent, 0.0);
        EXPECT_LE(r.realized_host_percent, 100.0);
        EXPECT_GE(r.imbalance, 0.0);
        EXPECT_LE(r.imbalance, 1.0);
        if (policy == parallel::SchedulePolicy::kStatic) {
          EXPECT_EQ(r.host_steals, 0u);
          EXPECT_EQ(r.device_steals, 0u);
        }
      }
    }
  }
}

TEST_F(ExecutorFixture, RandomMotifSetsAgreeAcrossPoliciesAndFractions) {
  // Random motif sets x random genomes x fractions x chunk counts: every
  // policy must reproduce the static path's match count exactly.
  const std::vector<std::vector<std::string>> motif_sets = {
      {"GATTACA", "CCGG"},
      {"TATAWAW", "GGNCC", "TTSAA"},
      {"AAAA", "ACGT", "TGCA", "GGGG"},
  };
  std::uint64_t seed = 101;
  for (const auto& motifs : motif_sets) {
    const auto compiled = automata::compile_motifs(motifs);
    const automata::DenseDfa dfa =
        automata::determinize(compiled.nfa, compiled.synchronization_bound);
    const std::string text = gen_.generate(40000 + 977 * seed, seed);
    ++seed;
    const std::uint64_t expected = automata::count_matches(dfa, text);
    HeterogeneousExecutor exec(dfa, 2, 3);
    for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
      for (const double pct : {12.5, 50.0, 75.0}) {
        for (const std::size_t chunks : {std::size_t{2}, std::size_t{7}}) {
          EXPECT_EQ(exec.run(text, pct, chunks, chunks, policy).total_matches(), expected)
              << "policy=" << parallel::to_string(policy) << " pct=" << pct
              << " chunks=" << chunks;
        }
      }
    }
  }
}

TEST_F(ExecutorFixture, SharedQueueUnboundedEngineDegradesToStatic) {
  // An unbounded pattern has no warm-up bound: demand schedules must run
  // the static path and say so in the report.
  const auto compiled = automata::compile_motifs({"GC(A)*GC"});
  const automata::DenseDfa dfa =
      automata::determinize(compiled.nfa, compiled.synchronization_bound);
  ASSERT_EQ(dfa.synchronization_bound(), 0u);
  const std::string text = gen_.generate(30000, 7);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport r =
      exec.run(text, 60.0, 0, 0, parallel::SchedulePolicy::kAdaptive);
  EXPECT_EQ(r.schedule, parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(r.total_matches(), expected);
}

TEST_F(ExecutorFixture, AdaptiveStealAccountingIsConsistent) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"TATA", "GGCC"});
  const std::string text = gen_.generate(200000, 17);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 2, 2);
  // All bytes configured to the host: anything the device did is a steal,
  // and everything it scanned came across the boundary.
  const ExecutionReport r =
      exec.run(text, 100.0, 8, 8, parallel::SchedulePolicy::kAdaptive);
  EXPECT_EQ(r.total_matches(), expected);
  EXPECT_EQ(r.host_steals, 0u);  // the host owns every chunk
  if (r.device_bytes > 0) {
    EXPECT_GT(r.device_steals, 0u);
    EXPECT_LT(r.realized_host_percent, 100.0);
  } else {
    EXPECT_EQ(r.device_steals, 0u);
    EXPECT_DOUBLE_EQ(r.realized_host_percent, 100.0);
  }
}

TEST_F(ExecutorFixture, ReportToStringMentionsTheEssentials) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACG"});
  const std::string text = gen_.generate(50000, 3);
  HeterogeneousExecutor exec(dfa, 2, 2);
  const ExecutionReport r =
      exec.run(text, 75.0, 4, 4, parallel::SchedulePolicy::kDynamic);
  const std::string line = r.to_string();
  EXPECT_NE(line.find("[dynamic]"), std::string::npos) << line;
  EXPECT_NE(line.find(std::to_string(r.total_matches()) + " matches"),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("configured 75%"), std::string::npos) << line;
  EXPECT_NE(line.find("imbalance"), std::string::npos) << line;
  EXPECT_NE(line.find("steals"), std::string::npos) << line;
}

class SplitSweep : public ::testing::TestWithParam<double> {};

TEST_P(SplitSweep, CountsInvariantUnderSplit) {
  const double pct = GetParam();
  const dna::GenomeGenerator gen;
  const automata::DenseDfa dfa =
      automata::build_aho_corasick({"TATA", "GGCC", "AAAAA"});
  const std::string text = gen.generate(60000, 42);
  const std::uint64_t expected = automata::count_matches(dfa, text);
  HeterogeneousExecutor exec(dfa, 3, 5);
  EXPECT_EQ(exec.run(text, pct).total_matches(), expected);
}

INSTANTIATE_TEST_SUITE_P(Fractions, SplitSweep,
                         ::testing::Values(0.0, 2.5, 25.0, 49.9, 50.0, 50.1, 75.0,
                                           97.5, 100.0));

}  // namespace
}  // namespace hetopt::core
