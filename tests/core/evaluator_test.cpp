#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include "core/training.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::core {
namespace {

Workload human() { return Workload("human", 3170.0); }

TEST(MeasurementEvaluatorTest, MatchesMachineAndCounts) {
  const sim::Machine machine = sim::emil_machine();
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  MeasurementEvaluator evaluator(machine);
  const opt::SystemConfig c = space.at(1234);

  const double direct = machine.measure_combined(human().size_mb, c.host_percent,
                                                 c.host_threads, c.host_affinity,
                                                 c.device_threads, c.device_affinity);
  EXPECT_DOUBLE_EQ(evaluator.evaluate(c, human()), direct);
  EXPECT_EQ(evaluator.evaluations(), 1u);

  // Scoring re-reads the same repetition-0 experiment and is not counted.
  EXPECT_DOUBLE_EQ(evaluator.score(c, human()), direct);
  EXPECT_EQ(evaluator.evaluations(), 1u);

  evaluator.reset_evaluations();
  EXPECT_EQ(evaluator.evaluations(), 0u);
}

TEST(MeasurementEvaluatorTest, BatchMatchesSerialWithAndWithoutPool) {
  const sim::Machine machine = sim::emil_machine();
  const opt::ConfigSpace space = opt::ConfigSpace::paper();
  std::vector<opt::SystemConfig> configs;
  for (std::size_t i = 0; i < 64; ++i) configs.push_back(space.at(i * 17));

  MeasurementEvaluator serial(machine);
  std::vector<double> expected;
  expected.reserve(configs.size());
  for (const auto& c : configs) expected.push_back(serial.evaluate(c, human()));

  MeasurementEvaluator inline_batch(machine);
  EXPECT_EQ(inline_batch.evaluate_batch(configs, human()), expected);
  EXPECT_EQ(inline_batch.evaluations(), configs.size());

  parallel::ThreadPool pool(2);
  MeasurementEvaluator pooled(machine);
  EXPECT_EQ(pooled.evaluate_batch(configs, human(), &pool), expected);
  EXPECT_EQ(pooled.evaluations(), configs.size());
}

TEST(PredictionEvaluatorTest, RequiresTrainedPredictor) {
  const sim::Machine machine = sim::emil_machine();
  const PerformancePredictor untrained;
  EXPECT_THROW(PredictionEvaluator(untrained, machine), std::logic_error);
}

TEST(PredictionEvaluatorTest, SearchesOnPredictionsButScoresByMeasurement) {
  const sim::Machine machine = sim::emil_machine();
  const dna::GenomeCatalog catalog;
  const TrainingData data =
      generate_training_data(machine, catalog, TrainingSweepOptions::tiny());
  PerformancePredictor predictor;
  predictor.train(data.host, data.device);

  PredictionEvaluator evaluator(predictor, machine);
  const opt::SystemConfig c = opt::ConfigSpace::paper().at(4321);

  EXPECT_DOUBLE_EQ(evaluator.evaluate(c, human()),
                   predictor.predict_combined(c, human().size_mb));
  const double measured = machine.measure_combined(human().size_mb, c.host_percent,
                                                   c.host_threads, c.host_affinity,
                                                   c.device_threads, c.device_affinity);
  EXPECT_DOUBLE_EQ(evaluator.score(c, human()), measured);
  // Prediction and measurement agree only approximately.
  EXPECT_NE(evaluator.evaluate(c, human()), evaluator.score(c, human()));
}

TEST(MultiDeviceEvaluatorTest, SharesSumTo100AndRespectHostFraction) {
  const sim::MultiDeviceMachine node = sim::emil_with_phis(3);
  MultiDeviceMeasurementEvaluator evaluator(node);

  opt::SystemConfig c;
  c.host_threads = 48;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 240;
  c.device_affinity = parallel::DeviceAffinity::kBalanced;
  for (double hp : {0.0, 12.5, 40.0, 77.5}) {
    c.host_percent = hp;
    const sim::ShareVector shares = evaluator.shares(c, human());
    EXPECT_NEAR(shares.total_percent(), 100.0, 1e-6) << "host_percent=" << hp;
    EXPECT_NEAR(shares.host_percent, hp, 1e-9) << "host_percent=" << hp;
    EXPECT_GT(shares.makespan_s, 0.0);
    EXPECT_DOUBLE_EQ(evaluator.evaluate(c, human()), shares.makespan_s);
  }
}

TEST(MultiDeviceEvaluatorTest, WaterFillingEqualizesIdenticalDevices) {
  const sim::MultiDeviceMachine node = sim::emil_with_phis(4);
  MultiDeviceMeasurementEvaluator evaluator(node);
  opt::SystemConfig c;
  c.host_threads = 48;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 240;
  c.device_affinity = parallel::DeviceAffinity::kBalanced;
  c.host_percent = 20.0;
  const sim::ShareVector shares = evaluator.shares(c, human());
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_NEAR(shares.device_percent[i], shares.device_percent[0], 0.1);
  }
}

TEST(MultiDeviceEvaluatorTest, ZeroDevicesFallsBackToHostOnly) {
  const sim::MachineSpec spec = sim::emil_spec();
  const sim::MultiDeviceMachine node(spec.host, {});
  MultiDeviceMeasurementEvaluator evaluator(node);

  opt::SystemConfig c;
  c.host_threads = 48;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.host_percent = 30.0;  // devices cannot take the other 70% — host takes all
  const sim::ShareVector shares = evaluator.shares(c, human());
  EXPECT_DOUBLE_EQ(shares.host_percent, 100.0);
  EXPECT_TRUE(shares.device_percent.empty());
  EXPECT_DOUBLE_EQ(shares.makespan_s,
                   node.host_time(human().size_mb, c.host_threads, c.host_affinity));
  EXPECT_GT(evaluator.score(c, human()), 0.0);
}

TEST(MultiDeviceEvaluatorTest, HostOnlyFractionGivesDevicesNothing) {
  const sim::MultiDeviceMachine node = sim::emil_with_phis(2);
  MultiDeviceMeasurementEvaluator evaluator(node);
  opt::SystemConfig c;
  c.host_threads = 48;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.host_percent = 100.0;
  const sim::ShareVector shares = evaluator.shares(c, human());
  EXPECT_DOUBLE_EQ(shares.host_percent, 100.0);
  for (double d : shares.device_percent) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(MultiDeviceEvaluatorTest, DeviceTimeOverrideMatchesDistributeModel) {
  // The overridden-threading device_time overload is the model distribute()
  // prices candidates with: participating devices finish no later than the
  // makespan.
  const sim::MultiDeviceMachine node = sim::emil_with_phis(3);
  MultiDeviceMeasurementEvaluator evaluator(node);
  opt::SystemConfig c;
  c.host_threads = 48;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 120;  // below the contexts' 240 — the override matters
  c.device_affinity = parallel::DeviceAffinity::kScatter;
  c.host_percent = 25.0;
  const sim::ShareVector shares = evaluator.shares(c, human());
  for (std::size_t i = 0; i < node.device_count(); ++i) {
    const double t = node.device_time(i, human().size_mb * shares.device_percent[i] / 100.0,
                                      c.device_threads, c.device_affinity);
    EXPECT_LE(t, shares.makespan_s * (1.0 + 1e-9)) << "device " << i;
    EXPECT_GT(t, 0.0) << "device " << i;
  }
}

TEST(MultiDeviceEvaluatorTest, SingleDeviceMakespanMatchesNoiselessModel) {
  // With one device and the context's own threading, distribute() must agree
  // with the single-device noiseless surface at the same split.
  const sim::MultiDeviceMachine node = sim::emil_with_phis(1);
  const sim::Machine machine = sim::emil_machine();
  MultiDeviceMeasurementEvaluator evaluator(node);

  opt::SystemConfig c;
  c.host_threads = 48;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 240;
  c.device_affinity = parallel::DeviceAffinity::kBalanced;
  c.host_percent = 70.0;
  const double model = machine.combined_time_model(human().size_mb, c.host_percent,
                                                   c.host_threads, c.host_affinity,
                                                   c.device_threads, c.device_affinity);
  EXPECT_NEAR(evaluator.evaluate(c, human()), model, model * 1e-9);
}

}  // namespace
}  // namespace hetopt::core
