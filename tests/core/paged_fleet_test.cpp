// Out-of-core fleet execution: run_fleet_paged must reproduce the in-memory
// fleet (and the sequential oracle) byte for byte while streaming the corpus
// through the bounded page cache, and RealWorkload's out_of_core mode must
// materialize, measure and clean up its on-disk fixture transparently.
#include "core/executor.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "automata/aho_corasick.hpp"
#include "automata/scanner.hpp"
#include "core/real_workload.hpp"
#include "dna/generator.hpp"
#include "dna/paged_genome.hpp"

namespace hetopt::core {
namespace {

[[nodiscard]] dna::PagedGenome paged_of(const std::string& text, std::size_t page_bytes,
                                        std::size_t resident) {
  dna::PagedGenomeOptions options;
  options.page_bytes = page_bytes;
  options.resident_pages = resident;
  return dna::PagedGenome(std::make_unique<dna::BufferPageSource>(text), options);
}

TEST(PagedFleet, CountsMatchTheInMemoryFleetAndTheOracle) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"GATTACA", "CCGG"});
  dna::GenomeGenerator gen;
  std::string text = gen.generate(300000, 41);
  text.replace(4096 - 3, 7, "GATTACA");  // straddles a page seam
  const std::uint64_t expected = automata::count_matches(dfa, text);

  std::vector<PoolSpec> specs(3);
  specs[0].threads = 2;
  specs[1].threads = 1;
  specs[2].threads = 3;
  specs[0].share_percent = 50.0;
  specs[1].share_percent = 20.0;
  specs[2].share_percent = 30.0;
  HeterogeneousExecutor exec(dfa, specs);
  const std::vector<double> shares{50.0, 20.0, 30.0};
  ASSERT_EQ(exec.run_fleet(text, shares, parallel::SchedulePolicy::kStatic).total_matches(),
            expected);

  for (const parallel::SchedulePolicy schedule : parallel::kAllSchedulePolicies) {
    dna::PagedGenome genome = paged_of(text, 4096, 24);
    PagedFleetOptions options;
    options.schedule = schedule;
    const ExecutionReport report = exec.run_fleet_paged(genome, shares, options);
    EXPECT_EQ(report.total_matches(), expected) << parallel::to_string(schedule);
    ASSERT_EQ(report.pools.size(), 3u);
    std::size_t bytes = 0;
    for (const PoolReport& p : report.pools) bytes += p.bytes;
    EXPECT_EQ(bytes, text.size());
    EXPECT_GT(report.total_seconds, 0.0);
  }
}

TEST(PagedFleet, ConstructedSharesOverloadAndScheduleDegradation) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"TTT"});
  dna::GenomeGenerator gen;
  const std::string text = gen.generate(100000, 43);
  const std::uint64_t expected = automata::count_matches(dfa, text);

  std::vector<PoolSpec> specs(2);
  specs[0].threads = 2;
  specs[1].threads = 2;
  specs[0].share_percent = 60.0;
  specs[1].share_percent = 40.0;
  HeterogeneousExecutor exec(dfa, specs);
  dna::PagedGenome genome = paged_of(text, 4096, 16);
  // No-shares overload uses the constructed share_percent values.
  EXPECT_EQ(exec.run_fleet_paged(genome).total_matches(), expected);
  // kAdaptive has no cross-segment stealing on the paged path; the report
  // must record the schedule that actually ran.
  PagedFleetOptions options;
  options.schedule = parallel::SchedulePolicy::kAdaptive;
  const ExecutionReport report = exec.run_fleet_paged(genome, {50.0, 50.0}, options);
  EXPECT_EQ(report.total_matches(), expected);
  EXPECT_EQ(report.schedule, parallel::SchedulePolicy::kDynamic);
}

TEST(PagedFleet, ZeroSharePoolsScanNothing) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACG"});
  dna::GenomeGenerator gen;
  const std::string text = gen.generate(60000, 47);
  std::vector<PoolSpec> specs(2);
  specs[0].threads = 2;
  specs[1].threads = 2;
  specs[0].share_percent = 100.0;
  HeterogeneousExecutor exec(dfa, specs);
  dna::PagedGenome genome = paged_of(text, 4096, 16);
  const ExecutionReport report = exec.run_fleet_paged(genome, {100.0, 0.0});
  EXPECT_EQ(report.total_matches(), automata::count_matches(dfa, text));
  ASSERT_EQ(report.pools.size(), 2u);
  EXPECT_EQ(report.pools[1].bytes, 0u);
  EXPECT_EQ(report.pools[1].matches, 0u);
}

TEST(PagedFleet, ThrowsWhenTheBudgetCannotCoverTheFleet) {
  const automata::DenseDfa dfa = automata::build_aho_corasick({"ACG"});
  dna::GenomeGenerator gen;
  const std::string text = gen.generate(60000, 53);
  std::vector<PoolSpec> specs(2);
  specs[0].threads = 3;
  specs[1].threads = 3;
  specs[0].share_percent = 50.0;
  specs[1].share_percent = 50.0;
  HeterogeneousExecutor exec(dfa, specs);
  // 6 fleet workers against a 3-page budget: concurrent backpressure could
  // deadlock, so the paged fleet must refuse up front.
  dna::PagedGenome genome = paged_of(text, 4096, 3);
  EXPECT_THROW((void)exec.run_fleet_paged(genome), std::invalid_argument);
}

// --- RealWorkload out-of-core mode -----------------------------------------

RealWorkloadOptions out_of_core_options() {
  RealWorkloadOptions options;
  options.bytes_per_logical_mb = 54.0;  // cat (2430 logical MB) -> ~128 KB
  options.min_physical_bytes = 64 * 1024;
  options.deterministic_timing = true;
  options.out_of_core = true;
  options.paged.page_bytes = 16 * 1024;  // ~8 pages: genuinely paged
  options.paged.resident_pages = 16;     // covers every fleet the tests build
  return options;
}

Workload cat() { return Workload("cat", 2430.0); }

TEST(RealWorkloadOutOfCore, FixtureFileIsMaterializedAndRemoved) {
  const dna::GenomeCatalog catalog;
  std::string path;
  {
    const RealWorkload rw(catalog, cat(), out_of_core_options());
    ASSERT_TRUE(rw.out_of_core());
    path = rw.paged_path();
    ASSERT_FALSE(path.empty());
    EXPECT_TRUE(std::filesystem::exists(path));
    // The paged view serves exactly the in-memory bytes.
    dna::PagedGenome& genome = rw.paged_genome();
    EXPECT_EQ(genome.size(), rw.physical_bytes());
    std::string reassembled;
    for (std::size_t p = 0; p < genome.page_count(); ++p) {
      reassembled.append(rw.paged_genome().acquire(p).payload());
    }
    EXPECT_EQ(reassembled, rw.text());
  }
  EXPECT_FALSE(std::filesystem::exists(path));  // dtor cleans up
}

TEST(RealWorkloadOutOfCore, DefaultModeHasNoFixture) {
  const dna::GenomeCatalog catalog;
  RealWorkloadOptions options = out_of_core_options();
  options.out_of_core = false;
  const RealWorkload rw(catalog, cat(), options);
  EXPECT_FALSE(rw.out_of_core());
  EXPECT_TRUE(rw.paged_path().empty());
  EXPECT_THROW((void)rw.paged_genome(), std::logic_error);
}

TEST(RealWorkloadOutOfCore, MeasurementsStreamWithExactMatchCounts) {
  const dna::GenomeCatalog catalog;
  const RealWorkloadEvaluator evaluator(catalog, out_of_core_options());
  const std::uint64_t expected = evaluator.real(cat()).sequential_matches();
  ASSERT_GT(expected, 0u);
  for (const int host_threads : {1, 4}) {
    for (const double fraction : {0.0, 40.0, 100.0}) {
      opt::SystemConfig c;
      c.host_threads = host_threads;
      c.device_threads = 2;
      c.host_percent = fraction;
      const RealMeasurement m = evaluator.measure(c, cat());
      EXPECT_TRUE(m.valid);
      EXPECT_EQ(m.matches, expected)
          << "host_threads=" << host_threads << " fraction=" << fraction;
      EXPECT_EQ(m.host_bytes + m.device_bytes, evaluator.real(cat()).physical_bytes());
    }
  }
}

TEST(RealWorkloadOutOfCore, PagedAndInMemoryMeasurementsAgree) {
  const dna::GenomeCatalog catalog;
  RealWorkloadOptions in_memory = out_of_core_options();
  in_memory.out_of_core = false;
  const RealWorkloadEvaluator paged_eval(catalog, out_of_core_options());
  const RealWorkloadEvaluator memory_eval(catalog, in_memory);
  opt::SystemConfig c;
  c.host_threads = 2;
  c.device_threads = 2;
  c.host_percent = 50.0;
  const RealMeasurement paged = paged_eval.measure(c, cat());
  const RealMeasurement memory = memory_eval.measure(c, cat());
  EXPECT_EQ(paged.matches, memory.matches);
  EXPECT_EQ(paged.host_bytes + paged.device_bytes,
            memory.host_bytes + memory.device_bytes);
}

}  // namespace
}  // namespace hetopt::core
