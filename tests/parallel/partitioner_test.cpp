#include "parallel/partitioner.hpp"

#include <gtest/gtest.h>

namespace hetopt::parallel {
namespace {

TEST(SplitByPercent, ExactEndpoints) {
  const auto all_host = split_by_percent(1000, 100.0);
  EXPECT_EQ(all_host.host_bytes, 1000u);
  EXPECT_EQ(all_host.device_bytes, 0u);
  const auto all_device = split_by_percent(1000, 0.0);
  EXPECT_EQ(all_device.host_bytes, 0u);
  EXPECT_EQ(all_device.device_bytes, 1000u);
}

TEST(SplitByPercent, PartsAlwaysSumToTotal) {
  for (std::size_t total : {0u, 1u, 7u, 999u, 1000000u}) {
    for (double pct = 0.0; pct <= 100.0; pct += 2.5) {
      const auto s = split_by_percent(total, pct);
      EXPECT_EQ(s.host_bytes + s.device_bytes, total);
    }
  }
}

TEST(SplitByPercent, RoundsToNearest) {
  EXPECT_EQ(split_by_percent(10, 25.0).host_bytes, 3u);   // 2.5 -> 3 (llround)
  EXPECT_EQ(split_by_percent(100, 62.5).host_bytes, 63u);
}

TEST(SplitByPercent, RejectsOutOfRange) {
  EXPECT_THROW((void)split_by_percent(10, -1.0), std::invalid_argument);
  EXPECT_THROW((void)split_by_percent(10, 100.5), std::invalid_argument);
}

TEST(MakeChunks, TilesExactly) {
  const auto chunks = make_chunks(100, 7, 5);
  ASSERT_EQ(chunks.size(), 7u);
  EXPECT_EQ(chunks.front().begin, 0u);
  EXPECT_EQ(chunks.back().end, 100u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].end, chunks[i].begin);
  }
}

TEST(MakeChunks, HaloExtendsButClampsAtEnd) {
  const auto chunks = make_chunks(100, 4, 10);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.scan_end, std::min<std::size_t>(100, c.end + 10));
  }
  EXPECT_EQ(chunks.back().scan_end, 100u);
}

TEST(MakeChunks, MoreChunksThanItemsClamps) {
  const auto chunks = make_chunks(3, 10, 0);
  EXPECT_EQ(chunks.size(), 3u);
}

TEST(MakeChunks, EmptyInputs) {
  EXPECT_TRUE(make_chunks(0, 4, 1).empty());
  EXPECT_TRUE(make_chunks(10, 0, 1).empty());
}

}  // namespace
}  // namespace hetopt::parallel
