#include "parallel/partitioner.hpp"

#include <gtest/gtest.h>

namespace hetopt::parallel {
namespace {

TEST(SplitByPercent, ExactEndpoints) {
  const auto all_host = split_by_percent(1000, 100.0);
  EXPECT_EQ(all_host.host_bytes, 1000u);
  EXPECT_EQ(all_host.device_bytes, 0u);
  const auto all_device = split_by_percent(1000, 0.0);
  EXPECT_EQ(all_device.host_bytes, 0u);
  EXPECT_EQ(all_device.device_bytes, 1000u);
}

TEST(SplitByPercent, PartsAlwaysSumToTotal) {
  for (std::size_t total : {0u, 1u, 7u, 999u, 1000000u}) {
    for (double pct = 0.0; pct <= 100.0; pct += 2.5) {
      const auto s = split_by_percent(total, pct);
      EXPECT_EQ(s.host_bytes + s.device_bytes, total);
    }
  }
}

TEST(SplitByPercent, RoundsToNearest) {
  EXPECT_EQ(split_by_percent(10, 25.0).host_bytes, 3u);   // 2.5 -> 3 (llround)
  EXPECT_EQ(split_by_percent(100, 62.5).host_bytes, 63u);
}

TEST(SplitByPercent, RejectsOutOfRange) {
  EXPECT_THROW((void)split_by_percent(10, -1.0), std::invalid_argument);
  EXPECT_THROW((void)split_by_percent(10, 100.5), std::invalid_argument);
}

TEST(MakeChunks, TilesExactly) {
  const auto chunks = make_chunks(100, 7, 5);
  ASSERT_EQ(chunks.size(), 7u);
  EXPECT_EQ(chunks.front().begin, 0u);
  EXPECT_EQ(chunks.back().end, 100u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].end, chunks[i].begin);
  }
}

TEST(MakeChunks, HaloExtendsButClampsAtEnd) {
  const auto chunks = make_chunks(100, 4, 10);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.scan_end, std::min<std::size_t>(100, c.end + 10));
  }
  EXPECT_EQ(chunks.back().scan_end, 100u);
}

TEST(MakeChunks, MoreChunksThanItemsClamps) {
  const auto chunks = make_chunks(3, 10, 0);
  EXPECT_EQ(chunks.size(), 3u);
}

TEST(MakeChunks, EmptyInputs) {
  EXPECT_TRUE(make_chunks(0, 4, 1).empty());
  EXPECT_TRUE(make_chunks(10, 0, 1).empty());
}

TEST(MakeChunks, HaloLongerThanChunkStillClamps) {
  // Warm-up leads longer than a whole chunk (short chunks, long motifs):
  // scan_end may reach across several following chunks but never past the
  // input, and ownership ranges still tile exactly.
  const auto chunks = make_chunks(20, 10, 50);
  ASSERT_EQ(chunks.size(), 10u);
  for (const auto& c : chunks) {
    EXPECT_EQ(c.end - c.begin, 2u);
    EXPECT_EQ(c.scan_end, 20u);  // halo 50 always clamps to the input end
  }
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i - 1].end, chunks[i].begin);
  }
}

TEST(MakeChunksGuided, TilesExactlyWithNonIncreasingSizes) {
  for (std::size_t total : {1u, 7u, 100u, 4096u, 100003u}) {
    for (std::size_t workers : {1u, 2u, 4u, 16u}) {
      const auto chunks = make_chunks_guided(total, workers, /*min_chunk=*/8);
      ASSERT_FALSE(chunks.empty());
      EXPECT_EQ(chunks.front().begin, 0u);
      EXPECT_EQ(chunks.back().end, total);
      for (std::size_t i = 1; i < chunks.size(); ++i) {
        EXPECT_EQ(chunks[i - 1].end, chunks[i].begin);
        // Guided shape: coarse head, fine tail.
        EXPECT_GE(chunks[i - 1].end - chunks[i - 1].begin,
                  chunks[i].end - chunks[i].begin);
      }
      for (const auto& c : chunks) {
        EXPECT_EQ(c.scan_end, c.end);  // guided chunks carry no halo
        EXPECT_GT(c.end, c.begin);
      }
    }
  }
}

TEST(MakeChunksGuided, RespectsMinChunkExceptFinalRemainder) {
  const auto chunks = make_chunks_guided(1000, 4, 64);
  for (std::size_t i = 0; i + 1 < chunks.size(); ++i) {
    EXPECT_GE(chunks[i].end - chunks[i].begin, 64u);
  }
  // The first chunk is the guided head: half an even 4-way split of 1000.
  EXPECT_EQ(chunks.front().end - chunks.front().begin, 125u);
}

TEST(MakeChunksGuided, DegenerateInputs) {
  EXPECT_TRUE(make_chunks_guided(0, 4, 8).empty());
  EXPECT_TRUE(make_chunks_guided(100, 0, 8).empty());
  // min_chunk of 0 behaves as 1 (never an infinite loop of empty chunks).
  const auto tiny = make_chunks_guided(3, 2, 0);
  ASSERT_FALSE(tiny.empty());
  EXPECT_EQ(tiny.back().end, 3u);
  // min_chunk larger than the input: one chunk covering everything.
  const auto one = make_chunks_guided(10, 4, 100);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front().begin, 0u);
  EXPECT_EQ(one.front().end, 10u);
}

}  // namespace
}  // namespace hetopt::parallel
