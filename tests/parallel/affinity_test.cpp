#include "parallel/affinity.hpp"

#include <gtest/gtest.h>

namespace hetopt::parallel {
namespace {

TEST(Affinity, HostRoundTripThroughStrings) {
  for (HostAffinity a : kAllHostAffinities) {
    EXPECT_EQ(host_affinity_from_string(to_string(a)), a);
  }
}

TEST(Affinity, DeviceRoundTripThroughStrings) {
  for (DeviceAffinity a : kAllDeviceAffinities) {
    EXPECT_EQ(device_affinity_from_string(to_string(a)), a);
  }
}

TEST(Affinity, TableOneVocabulary) {
  // Host: none/scatter/compact; device: balanced/scatter/compact (Table I).
  EXPECT_EQ(to_string(HostAffinity::kNone), "none");
  EXPECT_EQ(to_string(DeviceAffinity::kBalanced), "balanced");
  EXPECT_EQ(kAllHostAffinities.size(), 3u);
  EXPECT_EQ(kAllDeviceAffinities.size(), 3u);
}

TEST(Affinity, UnknownNamesThrow) {
  EXPECT_THROW((void)host_affinity_from_string("balanced"), std::invalid_argument);
  EXPECT_THROW((void)device_affinity_from_string("none"), std::invalid_argument);
  EXPECT_THROW((void)host_affinity_from_string(""), std::invalid_argument);
}

TEST(Affinity, CompactFillsCpusConsecutively) {
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cpu_for_worker(HostAffinity::kCompact, i, 8, 4), i % 4);
    EXPECT_EQ(cpu_for_worker(DeviceAffinity::kCompact, i, 8, 4), i % 4);
  }
}

TEST(Affinity, ScatterSpreadsWorkersAcrossCpus) {
  // 4 workers on 8 CPUs: cpus 0,2,4,6 (maximal spacing).
  EXPECT_EQ(cpu_for_worker(HostAffinity::kScatter, 0, 4, 8), 0u);
  EXPECT_EQ(cpu_for_worker(HostAffinity::kScatter, 1, 4, 8), 2u);
  EXPECT_EQ(cpu_for_worker(HostAffinity::kScatter, 2, 4, 8), 4u);
  EXPECT_EQ(cpu_for_worker(HostAffinity::kScatter, 3, 4, 8), 6u);
  // 6 workers on 8 CPUs must NOT degenerate to compact: the spread still
  // uses the whole range.
  EXPECT_EQ(cpu_for_worker(HostAffinity::kScatter, 5, 6, 8), 6u);
}

TEST(Affinity, BalancedSplitsCpusIntoEvenGroups) {
  // 2 workers on 8 CPUs: groups [0..3] and [4..7].
  EXPECT_EQ(cpu_for_worker(DeviceAffinity::kBalanced, 0, 2, 8), 0u);
  EXPECT_EQ(cpu_for_worker(DeviceAffinity::kBalanced, 1, 2, 8), 4u);
}

TEST(Affinity, OversubscriptionDistinguishesScatterFromBalanced) {
  // 8 workers on 4 CPUs (the device axis oversubscribes 2x): scatter
  // round-robins consecutive ids apart, balanced keeps them together.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cpu_for_worker(DeviceAffinity::kScatter, i, 8, 4), i % 4);
    EXPECT_EQ(cpu_for_worker(DeviceAffinity::kBalanced, i, 8, 4), i / 2);
  }
}

TEST(Affinity, PlacementNeverExceedsCpuCount) {
  for (HostAffinity a : kAllHostAffinities) {
    for (std::size_t count : {1u, 3u, 16u}) {
      for (std::size_t i = 0; i < 2 * count; ++i) {
        EXPECT_LT(cpu_for_worker(a, i, count, 3), 3u);
      }
    }
  }
  for (DeviceAffinity a : kAllDeviceAffinities) {
    for (std::size_t i = 0; i < 32; ++i) {
      EXPECT_LT(cpu_for_worker(a, i, 16, 5), 5u);
    }
  }
  // Degenerate inputs clamp instead of dividing by zero.
  EXPECT_EQ(cpu_for_worker(HostAffinity::kScatter, 0, 0, 0), 0u);
}

TEST(Affinity, PinCurrentThreadIsBestEffort) {
  // kNone never pins; the others may or may not succeed depending on the
  // platform — the call must simply not crash or throw.
  EXPECT_FALSE(pin_current_thread(HostAffinity::kNone, 0, 1));
  (void)pin_current_thread(HostAffinity::kCompact, 0, 1);
  (void)pin_current_thread(DeviceAffinity::kBalanced, 0, 1);
}

}  // namespace
}  // namespace hetopt::parallel
