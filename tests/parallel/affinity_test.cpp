#include "parallel/affinity.hpp"

#include <gtest/gtest.h>

namespace hetopt::parallel {
namespace {

TEST(Affinity, HostRoundTripThroughStrings) {
  for (HostAffinity a : kAllHostAffinities) {
    EXPECT_EQ(host_affinity_from_string(to_string(a)), a);
  }
}

TEST(Affinity, DeviceRoundTripThroughStrings) {
  for (DeviceAffinity a : kAllDeviceAffinities) {
    EXPECT_EQ(device_affinity_from_string(to_string(a)), a);
  }
}

TEST(Affinity, TableOneVocabulary) {
  // Host: none/scatter/compact; device: balanced/scatter/compact (Table I).
  EXPECT_EQ(to_string(HostAffinity::kNone), "none");
  EXPECT_EQ(to_string(DeviceAffinity::kBalanced), "balanced");
  EXPECT_EQ(kAllHostAffinities.size(), 3u);
  EXPECT_EQ(kAllDeviceAffinities.size(), 3u);
}

TEST(Affinity, UnknownNamesThrow) {
  EXPECT_THROW((void)host_affinity_from_string("balanced"), std::invalid_argument);
  EXPECT_THROW((void)device_affinity_from_string("none"), std::invalid_argument);
  EXPECT_THROW((void)host_affinity_from_string(""), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::parallel
