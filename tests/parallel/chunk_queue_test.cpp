#include "parallel/chunk_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

namespace hetopt::parallel {
namespace {

TEST(ChunkQueueTest, FrontDispensesAscending) {
  ChunkQueue q(5);
  EXPECT_EQ(q.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q.remaining(), 5 - i);
    const auto t = q.take_front();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, i);
  }
  EXPECT_FALSE(q.take_front().has_value());
  EXPECT_FALSE(q.take_back().has_value());
  EXPECT_EQ(q.remaining(), 0u);
}

TEST(ChunkQueueTest, BackDispensesDescending) {
  ChunkQueue q(4);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto t = q.take_back();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 3 - i);
  }
  EXPECT_FALSE(q.take_back().has_value());
}

TEST(ChunkQueueTest, FrontAndBackMeetWithoutOverlap) {
  ChunkQueue q(7);
  std::vector<std::size_t> seen;
  for (;;) {
    const auto f = q.take_front();
    if (!f) break;
    seen.push_back(*f);
    const auto b = q.take_back();
    if (!b) break;
    seen.push_back(*b);
  }
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 7u);
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

TEST(ChunkQueueTest, EmptyQueueDispensesNothing) {
  ChunkQueue q(0);
  EXPECT_EQ(q.remaining(), 0u);
  EXPECT_FALSE(q.take_front().has_value());
  EXPECT_FALSE(q.take_back().has_value());
}

TEST(ChunkQueueTest, RejectsOversizedRange) {
  EXPECT_THROW(ChunkQueue(std::size_t{1} << 33), std::invalid_argument);
}

TEST(ChunkQueueTest, CloseDiscardsUnclaimedIndices) {
  ChunkQueue q(10);
  EXPECT_FALSE(q.closed());
  (void)q.take_front();
  (void)q.take_front();
  (void)q.take_back();
  EXPECT_EQ(q.close(), 7u);
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.remaining(), 0u);
  EXPECT_FALSE(q.take_front().has_value());
  EXPECT_FALSE(q.take_back().has_value());
  // Closing again discards nothing and the queue never reopens.
  EXPECT_EQ(q.close(), 0u);
  EXPECT_TRUE(q.closed());
}

TEST(ChunkQueueTest, CloseOnDrainedQueueDiscardsNothing) {
  ChunkQueue q(2);
  (void)q.take_front();
  (void)q.take_front();
  EXPECT_EQ(q.close(), 0u);
  EXPECT_TRUE(q.closed());
}

TEST(ChunkQueueTest, ConcurrentCloseVersusTakersNeverDuplicatesOrSpins) {
  // The watchdog closes a failed pool's queue while its (and stealers')
  // takers are mid-claim. Every index must end up either claimed by exactly
  // one taker or discarded by exactly one close — claimed + discarded ==
  // size — and every taker must terminate (nullopt) instead of spinning.
  // Runs under TSan in CI via the parallel_tests drain job.
  constexpr std::size_t kIndices = 20000;
  constexpr std::size_t kTakers = 6;
  ChunkQueue q(kIndices);
  std::vector<std::atomic<int>> claimed(kIndices);
  std::atomic<std::size_t> taken{0};
  std::vector<std::thread> threads;
  threads.reserve(kTakers + 1);
  for (std::size_t t = 0; t < kTakers; ++t) {
    threads.emplace_back([&q, &claimed, &taken, t] {
      for (;;) {
        const auto i = (t % 2 == 0) ? q.take_front() : q.take_back();
        if (!i) break;
        claimed[*i].fetch_add(1);
        taken.fetch_add(1);
      }
    });
  }
  std::atomic<std::size_t> discarded{0};
  threads.emplace_back([&q, &discarded] {
    // Let the takers make some progress, then poison the queue under them.
    while (q.remaining() > kIndices / 2) std::this_thread::yield();
    discarded.store(q.close());
  });
  for (auto& th : threads) th.join();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(taken.load() + discarded.load(), kIndices);
  for (const auto& c : claimed) EXPECT_LE(c.load(), 1);
  EXPECT_FALSE(q.take_front().has_value());
}

TEST(ChunkQueueTest, ConcurrentTakersClaimEveryIndexExactlyOnce) {
  // Hammer both ends from many threads; every index must be claimed exactly
  // once and the total must drain. This is the invariant the adaptive
  // executor's steal accounting rests on.
  constexpr std::size_t kIndices = 10000;
  constexpr std::size_t kThreads = 8;
  ChunkQueue q(kIndices);
  std::vector<std::atomic<int>> claimed(kIndices);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&q, &claimed, t] {
      for (;;) {
        const auto i = (t % 2 == 0) ? q.take_front() : q.take_back();
        if (!i) break;
        claimed[*i].fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (const auto& c : claimed) EXPECT_EQ(c.load(), 1);
  EXPECT_EQ(q.remaining(), 0u);
}

TEST(ChunkQueueTest, MultiQueueDrainClaimsEveryIndexExactlyOnce) {
  // The N-pool adaptive layout: one queue per segment, each pool draining
  // its own queue and stealing from its neighbors' (forward from the front,
  // backward from the back). Whatever the interleaving, every global index
  // must be claimed exactly once across all queues — the invariant the
  // fleet executor's per-segment scheme rests on.
  constexpr std::size_t kSegments = 4;
  constexpr std::size_t kPerSegment = 2500;
  std::vector<std::unique_ptr<ChunkQueue>> queues;
  queues.reserve(kSegments);
  for (std::size_t s = 0; s < kSegments; ++s) {
    queues.push_back(std::make_unique<ChunkQueue>(kPerSegment));
  }
  std::vector<std::atomic<int>> claimed(kSegments * kPerSegment);
  std::vector<std::thread> drains;
  drains.reserve(kSegments);
  for (std::size_t pool = 0; pool < kSegments; ++pool) {
    drains.emplace_back([&queues, &claimed, pool] {
      const auto take = [&]() -> std::optional<std::pair<std::size_t, std::size_t>> {
        // Own segment first (last pool from the back, the rest from the
        // front), then steal nearest-first from both directions.
        const bool last = pool == kSegments - 1;
        if (auto t = last ? queues[pool]->take_back() : queues[pool]->take_front()) {
          return std::pair{pool, *t};
        }
        for (std::size_t d = 1; d < kSegments; ++d) {
          if (pool + d < kSegments) {
            if (auto t = queues[pool + d]->take_front()) return std::pair{pool + d, *t};
          }
          if (pool >= d) {
            if (auto t = queues[pool - d]->take_back()) return std::pair{pool - d, *t};
          }
        }
        return std::nullopt;
      };
      for (;;) {
        const auto t = take();
        if (!t) break;
        claimed[t->first * kPerSegment + t->second].fetch_add(1);
      }
    });
  }
  for (auto& th : drains) th.join();
  for (const auto& c : claimed) EXPECT_EQ(c.load(), 1);
  for (const auto& q : queues) EXPECT_EQ(q->remaining(), 0u);
}

}  // namespace
}  // namespace hetopt::parallel
