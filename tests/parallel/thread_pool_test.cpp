#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace hetopt::parallel {
namespace {

TEST(ChunkBegin, EvenAndUnevenSplits) {
  // 10 items, 3 chunks -> sizes 4,3,3.
  EXPECT_EQ(chunk_begin(10, 3, 0), 0u);
  EXPECT_EQ(chunk_begin(10, 3, 1), 4u);
  EXPECT_EQ(chunk_begin(10, 3, 2), 7u);
  EXPECT_EQ(chunk_begin(10, 3, 3), 10u);
}

TEST(ChunkBegin, DegenerateInputs) {
  EXPECT_EQ(chunk_begin(0, 4, 0), 0u);
  EXPECT_EQ(chunk_begin(0, 4, 4), 0u);
  EXPECT_EQ(chunk_begin(5, 0, 0), 0u);
}

TEST(ChunkBegin, TilesExactlyForManyShapes) {
  for (std::size_t n : {1u, 2u, 7u, 100u, 101u}) {
    for (std::size_t k : {1u, 2u, 3u, 7u, 100u}) {
      EXPECT_EQ(chunk_begin(n, k, 0), 0u);
      EXPECT_EQ(chunk_begin(n, k, k), n);
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_LE(chunk_begin(n, k, i), chunk_begin(n, k, i + 1));
      }
    }
  }
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelChunksTileTheRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_chunks(103, 7, [&](std::size_t, std::size_t b, std::size_t e) {
    const std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_EQ(ranges.size(), 7u);
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, 103u);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].second, ranges[i].first);
  }
}

TEST(ThreadPoolTest, ParallelChunksClampsToItemCount) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  pool.parallel_chunks(3, 10, [&](std::size_t, std::size_t, std::size_t) {
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 3);
}

TEST(ThreadPoolTest, ManySmallTasksComplete) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(500);
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPoolTest, NestedParallelismViaSeparatePools) {
  // The executor runs two pools concurrently; verify that pattern works.
  ThreadPool a(2);
  ThreadPool b(2);
  std::atomic<int> total{0};
  auto fa = a.submit([&] {
    b.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
    return 0;
  });
  fa.get();
  EXPECT_EQ(total.load(), 10);
}

}  // namespace
}  // namespace hetopt::parallel
