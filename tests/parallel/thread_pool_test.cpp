#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include "util/fault.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hetopt::parallel {
namespace {

TEST(ChunkBegin, EvenAndUnevenSplits) {
  // 10 items, 3 chunks -> sizes 4,3,3.
  EXPECT_EQ(chunk_begin(10, 3, 0), 0u);
  EXPECT_EQ(chunk_begin(10, 3, 1), 4u);
  EXPECT_EQ(chunk_begin(10, 3, 2), 7u);
  EXPECT_EQ(chunk_begin(10, 3, 3), 10u);
}

TEST(ChunkBegin, DegenerateInputs) {
  EXPECT_EQ(chunk_begin(0, 4, 0), 0u);
  EXPECT_EQ(chunk_begin(0, 4, 4), 0u);
  EXPECT_EQ(chunk_begin(5, 0, 0), 0u);
}

TEST(ChunkBegin, TilesExactlyForManyShapes) {
  for (std::size_t n : {1u, 2u, 7u, 100u, 101u}) {
    for (std::size_t k : {1u, 2u, 3u, 7u, 100u}) {
      EXPECT_EQ(chunk_begin(n, k, 0), 0u);
      EXPECT_EQ(chunk_begin(n, k, k), n);
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_LE(chunk_begin(n, k, i), chunk_begin(n, k, i + 1));
      }
    }
  }
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
}

TEST(ThreadPoolTest, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ParallelChunksTileTheRange) {
  ThreadPool pool(3);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  pool.parallel_chunks(103, 7, [&](std::size_t, std::size_t b, std::size_t e) {
    const std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  ASSERT_EQ(ranges.size(), 7u);
  EXPECT_EQ(ranges.front().first, 0u);
  EXPECT_EQ(ranges.back().second, 103u);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].second, ranges[i].first);
  }
}

TEST(ThreadPoolTest, ParallelChunksClampsToItemCount) {
  ThreadPool pool(4);
  std::atomic<int> chunks{0};
  pool.parallel_chunks(3, 10, [&](std::size_t, std::size_t, std::size_t) {
    chunks.fetch_add(1);
  });
  EXPECT_EQ(chunks.load(), 3);
}

TEST(ThreadPoolTest, ManySmallTasksComplete) {
  ThreadPool pool(8);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(500);
  for (int i = 1; i <= 500; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 500L * 501 / 2);
}

TEST(ThreadPoolTest, ParallelPullRunsOncePerWorker) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> slots(4);
  pool.parallel_pull([&](std::size_t slot) { slots[slot].fetch_add(1); });
  for (const auto& s : slots) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, ParallelPullPropagatesBodyException) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_pull([](std::size_t slot) {
    if (slot == 1) throw std::runtime_error("pull");
  }),
               std::runtime_error);
}

TEST(ThreadPoolTest, StressConcurrentSubmitters) {
  // Many external threads submitting concurrently while the pool churns
  // through small tasks — the queue mutex/condvar protocol must neither
  // lose nor duplicate work.
  ThreadPool pool(4);
  constexpr int kSubmitters = 6;
  constexpr int kTasksEach = 400;
  std::atomic<long> sum{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksEach);
      for (int i = 1; i <= kTasksEach; ++i) {
        futures.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(sum.load(), static_cast<long>(kSubmitters) * kTasksEach * (kTasksEach + 1) / 2);
}

TEST(ThreadPoolTest, WorkerInitRunsUnderChurn) {
  // Construct and destroy pools with a worker-init hook in a tight loop
  // (the executor builds two pinned pools per measurement); every worker
  // must run its init exactly once before any task, and a throwing init
  // must not take the pool down.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> inits{0};
    {
      ThreadPool pool(3, [&inits](std::size_t) {
        inits.fetch_add(1);
        if (inits.load() == 1) throw std::runtime_error("best-effort placement");
      });
      EXPECT_TRUE(pool.has_worker_init());
      std::atomic<int> tasks{0};
      pool.parallel_for(9, [&](std::size_t) { tasks.fetch_add(1); });
      EXPECT_EQ(tasks.load(), 9);
    }
    // Only after the destructor joins is every worker guaranteed to have
    // run its init (a late-starting worker may still be pinning itself
    // while the others drain the whole task queue).
    EXPECT_EQ(inits.load(), 3);
  }
}

TEST(ThreadPoolTest, OversubscribedPoolCompletesAllWork) {
  // Far more workers than cores (this container has very few): everything
  // still completes and every index is visited exactly once.
  ThreadPool pool(32);
  EXPECT_EQ(pool.thread_count(), 32u);
  std::vector<std::atomic<int>> hits(5000);
  pool.parallel_for(5000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  std::vector<std::atomic<int>> slots(32);
  pool.parallel_pull([&](std::size_t slot) { slots[slot].fetch_add(1); });
  for (const auto& s : slots) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadPoolTest, RethrowWorkerErrorIsNoopByDefault) {
  ThreadPool pool(2);
  pool.parallel_for(20, [](std::size_t) {});
  EXPECT_NO_THROW(pool.rethrow_worker_error());
}

TEST(ThreadPoolTest, WorkerThreadExceptionSurfacesAtJoinInsteadOfTerminating) {
  // An exception escaping a task on the worker thread (here the injected
  // worker-throw fault, which fires outside any packaged_task wrapper) used
  // to hit the worker loop's noexcept boundary and terminate the process.
  // Now the first escapee is recorded and rethrown at the join point.
  ThreadPool pool(2);
  std::atomic<int> done{0};
  {
    const util::FaultInjector injector(util::FaultPlan::parse("worker-throw:after=0"));
    EXPECT_THROW(pool.parallel_for(50, [&](std::size_t) { done.fetch_add(1); }),
                 util::FaultInjectedError);
  }
  // The fault fires after its task completes, so no iteration was lost.
  EXPECT_EQ(done.load(), 50);
  // The join consumed the recorded error; the pool stays serviceable.
  EXPECT_NO_THROW(pool.rethrow_worker_error());
  std::atomic<int> more{0};
  pool.parallel_for(10, [&](std::size_t) { more.fetch_add(1); });
  EXPECT_EQ(more.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelismViaSeparatePools) {
  // The executor runs two pools concurrently; verify that pattern works.
  ThreadPool a(2);
  ThreadPool b(2);
  std::atomic<int> total{0};
  auto fa = a.submit([&] {
    b.parallel_for(10, [&](std::size_t) { total.fetch_add(1); });
    return 0;
  });
  fa.get();
  EXPECT_EQ(total.load(), 10);
}

}  // namespace
}  // namespace hetopt::parallel
