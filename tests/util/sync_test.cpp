// Runtime coverage for the annotated sync layer (util/sync.hpp): the
// wrappers must behave exactly like the standard primitives they forward to —
// mutual exclusion, RAII scope, try_lock semantics, condvar wait/notify with
// the mutex re-held on return.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace {

using hetopt::util::CondVar;
using hetopt::util::Mutex;
using hetopt::util::MutexLock;

TEST(SyncMutex, MutexLockExcludesConcurrentIncrements) {
  Mutex mutex;
  std::size_t counter = 0;  // guarded by `mutex` (local, so annotated by hand)
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t i = 0; i < kPerThread; ++i) {
        const MutexLock lock(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(SyncMutex, TryLockReflectsOwnership) {
  Mutex mutex;
  mutex.lock();
  // try_lock on the owning thread is UB for std::mutex, so probe from another.
  std::thread prober([&] { EXPECT_FALSE(mutex.try_lock()); });
  prober.join();
  mutex.unlock();
  std::thread taker([&] {
    ASSERT_TRUE(mutex.try_lock());
    mutex.unlock();
  });
  taker.join();
}

TEST(SyncCondVar, WaitReleasesAndReacquires) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mutex);
    while (!ready) cv.wait(mutex);
    // The mutex is held again here: flipping `observed` under it must not
    // race with the main thread's own locked section.
    observed = true;
  });
  {
    const MutexLock lock(mutex);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
  const MutexLock lock(mutex);
  EXPECT_TRUE(observed);
}

TEST(SyncCondVar, NotifyAllWakesEveryWaiter) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  std::size_t awake = 0;
  constexpr std::size_t kWaiters = 6;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (std::size_t i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(mutex);
      while (!go) cv.wait(mutex);
      ++awake;
    });
  }
  {
    const MutexLock lock(mutex);
    go = true;
  }
  cv.notify_all();
  for (auto& thread : waiters) thread.join();
  EXPECT_EQ(awake, kWaiters);
}

// The annotations themselves must be inert at runtime: a guarded class built
// through the macros behaves exactly like its unannotated twin.
class AnnotatedBox {
 public:
  void put(int v) {
    const MutexLock lock(mutex_);
    value_ = v;
  }
  [[nodiscard]] int get() {
    const MutexLock lock(mutex_);
    return value_;
  }

 private:
  Mutex mutex_;
  int value_ HETOPT_GUARDED_BY(mutex_) = 0;
};

TEST(SyncAnnotations, GuardedMemberRoundTrips) {
  AnnotatedBox box;
  box.put(42);
  EXPECT_EQ(box.get(), 42);
}

}  // namespace
