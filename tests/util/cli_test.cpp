#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace hetopt::util {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  return CliArgs(static_cast<int>(argv.size()), std::data(argv));
}

TEST(Cli, ParsesEqualsForm) {
  const auto args = make({"prog", "--size=42", "--name=human"});
  EXPECT_EQ(args.get("size", std::int64_t{0}), 42);
  EXPECT_EQ(args.get("name", std::string{}), "human");
}

TEST(Cli, ParsesSpaceForm) {
  const auto args = make({"prog", "--iters", "100"});
  EXPECT_EQ(args.get("iters", std::int64_t{0}), 100);
}

TEST(Cli, BooleanFlags) {
  const auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_FALSE(args.flag("quiet"));
}

TEST(Cli, PositionalArguments) {
  const auto args = make({"prog", "input.fa", "--x=1", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.fa");
  EXPECT_EQ(args.positional()[1], "output.txt");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FallbacksWhenMissing) {
  const auto args = make({"prog"});
  EXPECT_EQ(args.get("missing", std::string{"dflt"}), "dflt");
  EXPECT_DOUBLE_EQ(args.get("missing", 2.5), 2.5);
  EXPECT_EQ(args.get("missing", std::int64_t{7}), 7);
}

TEST(Cli, DoubleValues) {
  const auto args = make({"prog", "--frac=62.5"});
  EXPECT_DOUBLE_EQ(args.get("frac", 0.0), 62.5);
}

TEST(Cli, FlagFollowedByFlagIsBoolean) {
  const auto args = make({"prog", "--a", "--b", "val"});
  EXPECT_TRUE(args.flag("a"));
  EXPECT_EQ(args.get("a", std::string{}), "true");
  EXPECT_EQ(args.get("b", std::string{}), "val");
}

}  // namespace
}  // namespace hetopt::util
