#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace hetopt::util {
namespace {

TEST(TableTest, RendersHeaderRuleAndRows) {
  Table t("Demo");
  t.header({"a", "bb"}).row({"1", "2"}).row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("a   | bb"), std::string::npos);
  EXPECT_NE(out.find("333 | 4"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TableTest, NotesAppearAtEnd) {
  Table t;
  t.header({"x"}).row({"1"}).note("a footnote");
  EXPECT_NE(t.render().find("* a footnote"), std::string::npos);
}

TEST(TableTest, HandlesRaggedRows) {
  Table t;
  t.header({"a", "b", "c"}).row({"1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("1"), std::string::npos);  // must not crash
}

TEST(TableTest, RowCountTracksRows) {
  Table t;
  EXPECT_EQ(t.row_count(), 0u);
  t.row({"x"});
  t.row({"y"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table t;
  t.header({"name", "value"});
  t.row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TableTest, PrintWritesToStream) {
  Table t;
  t.header({"h"}).row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.render());
}

}  // namespace
}  // namespace hetopt::util
