// The runtime ISA probe and the aligned storage the SIMD tier sits on.
// Suite names matter: the `simd_cpu_features` ctest entry runs exactly
// CpuFeatures* and AlignedBuffer*.
#include "util/cpu_features.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/aligned_buffer.hpp"

namespace hetopt::util {
namespace {

/// Saves and restores HETOPT_FORCE_ISA around a test (the CI forced-scalar
/// job sets it process-wide; the test must not clobber that for later tests).
class ForceIsaGuard {
 public:
  ForceIsaGuard() {
    const char* value = std::getenv("HETOPT_FORCE_ISA");
    if (value != nullptr) {
      had_value_ = true;
      value_ = value;
    }
  }
  ~ForceIsaGuard() {
    if (had_value_) {
      ::setenv("HETOPT_FORCE_ISA", value_.c_str(), 1);
    } else {
      ::unsetenv("HETOPT_FORCE_ISA");
    }
  }

 private:
  bool had_value_ = false;
  std::string value_;
};

TEST(CpuFeatures, IsaLevelStringsRoundTrip) {
  for (const IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSse2, IsaLevel::kAvx2}) {
    const auto parsed = isa_from_string(to_string(level));
    ASSERT_TRUE(parsed.has_value()) << to_string(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(isa_from_string("").has_value());
  EXPECT_FALSE(isa_from_string("avx512").has_value());
  EXPECT_FALSE(isa_from_string("SSE2").has_value());  // exact, lowercase names
}

TEST(CpuFeatures, ProbeIsCachedAndInternallyConsistent) {
  const CpuFeatures& a = cpu_features();
  const CpuFeatures& b = cpu_features();
  EXPECT_EQ(&a, &b);  // one probe per process
  EXPECT_FALSE(a.model_name.empty());
  // Feature implications on real silicon (and on the all-false non-x86
  // probe): AVX2 implies AVX, AVX implies SSE2.
  if (a.avx2) EXPECT_TRUE(a.avx);
  if (a.avx) EXPECT_TRUE(a.sse2);
}

TEST(CpuFeatures, DetectedIsaMatchesTheFeatureFlags) {
  const CpuFeatures& f = cpu_features();
  const IsaLevel detected = detected_isa();
  if (f.avx2) {
    EXPECT_EQ(detected, IsaLevel::kAvx2);
  } else if (f.sse2) {
    EXPECT_EQ(detected, IsaLevel::kSse2);
  } else {
    EXPECT_EQ(detected, IsaLevel::kScalar);
  }
}

TEST(CpuFeatures, SupportIsMonotoneDownward) {
  // Everything at or below the detected level runs; scalar always runs.
  EXPECT_TRUE(cpu_supports(IsaLevel::kScalar));
  const IsaLevel detected = detected_isa();
  for (const IsaLevel level : {IsaLevel::kScalar, IsaLevel::kSse2, IsaLevel::kAvx2}) {
    if (static_cast<int>(level) <= static_cast<int>(detected)) {
      EXPECT_TRUE(cpu_supports(level)) << to_string(level);
    }
  }
}

TEST(CpuFeatures, ForcedIsaReadsTheEnvironmentPerCall) {
  const ForceIsaGuard guard;
  ::unsetenv("HETOPT_FORCE_ISA");
  EXPECT_FALSE(forced_isa().has_value());
  ::setenv("HETOPT_FORCE_ISA", "", 1);
  EXPECT_FALSE(forced_isa().has_value());  // empty counts as unset
  ::setenv("HETOPT_FORCE_ISA", "scalar", 1);
  ASSERT_TRUE(forced_isa().has_value());
  EXPECT_EQ(*forced_isa(), IsaLevel::kScalar);
  ::setenv("HETOPT_FORCE_ISA", "avx2", 1);
  EXPECT_EQ(*forced_isa(), IsaLevel::kAvx2);  // re-read, not cached
  ::setenv("HETOPT_FORCE_ISA", "turbo", 1);
  EXPECT_THROW((void)forced_isa(), std::runtime_error);  // typos are hard errors
}

TEST(AlignedBuffer, StorageStartsOnACacheLine) {
  for (const std::size_t n : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<std::uint64_t> buffer(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 64, 0u) << n;
    EXPECT_EQ(buffer.size(), n);
  }
  const AlignedBuffer<std::uint32_t> empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.data(), nullptr);
}

TEST(AlignedBuffer, AssignFillsAndOverwrites) {
  AlignedBuffer<int> buffer;
  buffer.assign(5, 42);
  ASSERT_EQ(buffer.size(), 5u);
  for (const int v : buffer) EXPECT_EQ(v, 42);
  buffer.assign(3, 7);
  ASSERT_EQ(buffer.size(), 3u);
  EXPECT_EQ(buffer[0], 7);
}

TEST(AlignedBuffer, ResizeGrowsValueInitializedAndPreservesThePrefix) {
  AlignedBuffer<int> buffer(3, 9);
  buffer.resize(8);
  ASSERT_EQ(buffer.size(), 8u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buffer.data()) % 64, 0u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(buffer[i], 9) << i;
  for (std::size_t i = 3; i < 8; ++i) EXPECT_EQ(buffer[i], 0) << i;
  // Shrink requests keep the buffer as-is (scratch reuse across runs).
  buffer.resize(2);
  EXPECT_EQ(buffer.size(), 8u);
}

TEST(AlignedBuffer, CopyMoveAndEquality) {
  AlignedBuffer<int> a(4, 1);
  a[2] = 5;
  const AlignedBuffer<int> copy(a);
  EXPECT_TRUE(copy == a);
  EXPECT_NE(copy.data(), a.data());

  AlignedBuffer<int> assigned;
  assigned = a;
  EXPECT_TRUE(assigned == a);

  const int* const storage = a.data();
  const AlignedBuffer<int> moved(std::move(a));
  EXPECT_EQ(moved.data(), storage);  // moves steal the allocation
  EXPECT_TRUE(moved == copy);

  AlignedBuffer<int> different(4, 1);
  EXPECT_FALSE(different == copy);
}

}  // namespace
}  // namespace hetopt::util
