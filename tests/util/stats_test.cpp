#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hetopt::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, MatchesClosedForm) {
  RunningStats s;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);  // sample variance of 1..5
  EXPECT_DOUBLE_EQ(s.stddev(), std::sqrt(2.5));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.1 * i * (i % 7 ? 1 : -3);
    all.add(x);
    (i < 37 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(SpanStats, MeanVarianceOfKnownData) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(min_of(xs), 2.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 9.0);
}

TEST(SpanStats, EmptyInputsAreZero) {
  const std::vector<double> empty;
  EXPECT_EQ(mean(empty), 0.0);
  EXPECT_EQ(variance(empty), 0.0);
  EXPECT_EQ(min_of(empty), 0.0);
  EXPECT_EQ(max_of(empty), 0.0);
}

TEST(Percentile, MedianAndExtremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 7.5);
}

TEST(Percentile, ThrowsOnEmpty) {
  const std::vector<double> empty;
  EXPECT_THROW((void)percentile(empty, 50.0), std::invalid_argument);
}

TEST(HistogramTest, BinningMatchesEdgesInclusive) {
  Histogram h({1.0, 2.0, 3.0});
  h.add(0.5);   // bin 0: <= 1
  h.add(1.0);   // bin 0 (inclusive upper edge)
  h.add(1.5);   // bin 1
  h.add(3.0);   // bin 2
  h.add(99.0);  // overflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(), 4u);
}

TEST(HistogramTest, AddAllAccumulates) {
  Histogram h({0.1, 0.2});
  const std::vector<double> xs{0.05, 0.15, 0.25, 0.01};
  h.add_all(xs);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
}

TEST(HistogramTest, RejectsBadEdges) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, LabelsDescribeBins) {
  Histogram h({0.01, 0.2});
  EXPECT_EQ(h.label(0), "<=0.010");
  EXPECT_EQ(h.label(1), "<=0.200");
  EXPECT_EQ(h.label(2), ">0.200");
  EXPECT_THROW((void)h.label(3), std::out_of_range);
}

}  // namespace
}  // namespace hetopt::util
