#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace hetopt::util {
namespace {

TEST(Split, BasicAndEdgeCases) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(split(",a", ','), (std::vector<std::string>{"", "a"}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(Join, RoundTripsWithSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, "-"), "x-y-z");
  EXPECT_EQ(split(join(parts, ","), ','), parts);
  EXPECT_EQ(join({}, ","), "");
}

TEST(Trim, StripsWhitespaceBothEnds) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StartsWith, PrefixSemantics) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-f", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_FALSE(starts_with("", "a"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
}

TEST(FormatDouble, FixedPrecision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatTrimmed, DropsTrailingZeros) {
  EXPECT_EQ(format_trimmed(1.50, 2), "1.5");
  EXPECT_EQ(format_trimmed(2.00, 2), "2");
  EXPECT_EQ(format_trimmed(2.25, 2), "2.25");
  EXPECT_EQ(format_trimmed(100.0, 1), "100");
}

TEST(ParseDouble, AcceptsValidRejectsInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(parse_double("  -2.25 "), -2.25);
  EXPECT_THROW((void)parse_double("abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("1.5x"), std::invalid_argument);
  EXPECT_THROW((void)parse_double(""), std::invalid_argument);
}

TEST(ParseInt, AcceptsValidRejectsInvalid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int(" -7 "), -7);
  EXPECT_THROW((void)parse_int("4.5"), std::invalid_argument);
  EXPECT_THROW((void)parse_int(""), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::util
