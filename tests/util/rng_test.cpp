#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace hetopt::util {
namespace {

TEST(SplitMix, Deterministic) {
  std::uint64_t a = 42;
  std::uint64_t b = 42;
  EXPECT_EQ(splitmix64(a), splitmix64(b));
  EXPECT_EQ(a, b);
}

TEST(SplitMix, AdvancesState) {
  std::uint64_t s = 1;
  const auto first = splitmix64(s);
  const auto second = splitmix64(s);
  EXPECT_NE(first, second);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(HashString, DistinguishesNames) {
  EXPECT_NE(hash_string("human"), hash_string("mouse"));
  EXPECT_EQ(hash_string("human"), hash_string("human"));
}

TEST(Xoshiro, ReproducibleBySeed) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256 a(7);
  Xoshiro256 b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 3.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 3.5);
  }
}

TEST(Xoshiro, BoundedCoversAllResidues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(Xoshiro, BoundedZeroIsZero) {
  Xoshiro256 rng(1);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256 rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.range(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(Xoshiro, RangeDegenerate) {
  Xoshiro256 rng(13);
  EXPECT_EQ(rng.range(5, 5), 5);
  EXPECT_EQ(rng.range(5, 4), 5);  // hi <= lo returns lo
}

TEST(Xoshiro, NormalMomentsApproximatelyStandard) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Xoshiro, LognormalFactorMedianNearOne) {
  Xoshiro256 rng(19);
  int above = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) above += (rng.lognormal_factor(0.05) > 1.0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(above) / kN, 0.5, 0.02);
}

TEST(Xoshiro, LognormalFactorAlwaysPositive) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal_factor(0.5), 0.0);
}

TEST(Xoshiro, BernoulliExtremes) {
  Xoshiro256 rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, ForkIndependentStreams) {
  Xoshiro256 parent(29);
  Xoshiro256 a = parent.fork(1);
  Xoshiro256 b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(Shuffle, PermutesAllElements) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  Xoshiro256 rng(31);
  shuffle(v, rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Shuffle, SingleAndEmptyAreNoops) {
  std::vector<int> empty;
  std::vector<int> one{42};
  Xoshiro256 rng(31);
  shuffle(empty, rng);
  shuffle(one, rng);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(one[0], 42);
}

class BoundedUniformity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedUniformity, ApproximatelyUniform) {
  const std::uint64_t n = GetParam();
  Xoshiro256 rng(n * 977 + 5);
  std::vector<int> counts(n, 0);
  const int draws = static_cast<int>(n) * 2000;
  for (int i = 0; i < draws; ++i) ++counts[rng.bounded(n)];
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(counts[k], 2000, 2000 * 0.15) << "bucket " << k << " of " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallModuli, BoundedUniformity,
                         ::testing::Values(2u, 3u, 5u, 7u, 11u, 41u));

}  // namespace
}  // namespace hetopt::util
