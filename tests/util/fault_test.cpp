// util::FaultPlan / util::FaultInjector: plan-grammar parsing (valid specs,
// every malformed shape), scoped arming/disarming with the single-injector
// invariant, and the per-kind injection-point queries the runtime consults.
#include "util/fault.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hetopt::util {
namespace {

// --- Plan parsing -----------------------------------------------------------

TEST(FaultPlanTest, ParsesEveryKindWithItsKeys) {
  const FaultPlan plan = FaultPlan::parse(
      "pool-death:pool=2; pool-stall:pool=1; chunk-throw:chunk=5,times=3; "
      "chunk-slow:chunk=7,factor=4.5; worker-throw:after=10,times=2; "
      "measure-fail:after=1,times=4; measure-noise:repeat=2,factor=100; probe",
      99);
  ASSERT_EQ(plan.faults.size(), 8u);
  EXPECT_EQ(plan.seed, 99u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kPoolDeath);
  EXPECT_EQ(plan.faults[0].pool, 2u);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kPoolStall);
  EXPECT_EQ(plan.faults[1].pool, 1u);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::kChunkThrow);
  EXPECT_EQ(plan.faults[2].chunk, 5u);
  EXPECT_EQ(plan.faults[2].times, 3u);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kChunkSlow);
  EXPECT_EQ(plan.faults[3].chunk, 7u);
  EXPECT_DOUBLE_EQ(plan.faults[3].factor, 4.5);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::kWorkerThrow);
  EXPECT_EQ(plan.faults[4].after, 10u);
  EXPECT_EQ(plan.faults[4].times, 2u);
  EXPECT_EQ(plan.faults[5].kind, FaultKind::kMeasureFail);
  EXPECT_EQ(plan.faults[6].kind, FaultKind::kMeasureNoise);
  EXPECT_EQ(plan.faults[6].repeat, 2u);
  EXPECT_DOUBLE_EQ(plan.faults[6].factor, 100.0);
  EXPECT_EQ(plan.faults[7].kind, FaultKind::kProbe);
}

TEST(FaultPlanTest, EmptySpecIsAnEmptyArmablePlan) {
  const FaultPlan plan = FaultPlan::parse("");
  EXPECT_TRUE(plan.faults.empty());
  EXPECT_FALSE(plan.exercises_recovery());
  const FaultInjector injector(plan);  // arming an empty plan is legal
  EXPECT_EQ(FaultInjector::current(), &injector);
}

TEST(FaultPlanTest, WhitespaceAndEmptyEntriesAreIgnored) {
  const FaultPlan plan =
      FaultPlan::parse("  pool-death : pool = 3  ; ; chunk-slow: chunk=1 , factor=2 ;");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].pool, 3u);
  EXPECT_DOUBLE_EQ(plan.faults[1].factor, 2.0);
}

TEST(FaultPlanTest, MalformedSpecsThrow) {
  EXPECT_THROW((void)FaultPlan::parse("meteor-strike"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("pool-death:planet=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("pool-death:pool"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("pool-death:pool=x"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("chunk-slow:chunk=1,factor=0"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("chunk-slow:chunk=1,factor=-2"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("chunk-slow:chunk=1,factor=fast"),
               std::invalid_argument);
}

TEST(FaultPlanTest, ExercisesRecoveryOnlyForExecutorFaults) {
  EXPECT_TRUE(FaultPlan::parse("pool-death:pool=0").exercises_recovery());
  EXPECT_TRUE(FaultPlan::parse("pool-stall:pool=0").exercises_recovery());
  EXPECT_TRUE(FaultPlan::parse("chunk-throw:chunk=0").exercises_recovery());
  EXPECT_TRUE(FaultPlan::parse("chunk-slow:chunk=0,factor=2").exercises_recovery());
  EXPECT_TRUE(FaultPlan::parse("probe").exercises_recovery());
  EXPECT_FALSE(FaultPlan::parse("measure-fail:after=0").exercises_recovery());
  EXPECT_FALSE(
      FaultPlan::parse("measure-noise:repeat=0,factor=10").exercises_recovery());
}

TEST(FaultPlanTest, ToStringRoundTripsThroughParse) {
  const std::string spec =
      "pool-death:pool=1; chunk-throw:chunk=4,times=2; measure-noise:repeat=1,factor=8";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.faults.size(), plan.faults.size());
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    EXPECT_EQ(again.faults[i].kind, plan.faults[i].kind) << i;
    EXPECT_EQ(again.faults[i].pool, plan.faults[i].pool) << i;
    EXPECT_EQ(again.faults[i].chunk, plan.faults[i].chunk) << i;
    EXPECT_EQ(again.faults[i].times, plan.faults[i].times) << i;
    EXPECT_DOUBLE_EQ(again.faults[i].factor, plan.faults[i].factor) << i;
  }
}

// --- Arming -----------------------------------------------------------------

TEST(FaultInjectorTest, ArmingIsScopedAndExclusive) {
  EXPECT_EQ(FaultInjector::current(), nullptr);
  {
    const FaultInjector injector(FaultPlan::parse("probe"));
    EXPECT_EQ(FaultInjector::current(), &injector);
    EXPECT_THROW((void)FaultInjector(FaultPlan::parse("probe")), std::logic_error);
    EXPECT_EQ(FaultInjector::current(), &injector);  // failed arm changes nothing
  }
  EXPECT_EQ(FaultInjector::current(), nullptr);
}

// --- Injection-point queries ------------------------------------------------

TEST(FaultInjectorTest, PoolQueriesTargetThePlannedPoolOnly) {
  const FaultInjector injector(FaultPlan::parse("pool-death:pool=2; pool-stall:pool=1"));
  EXPECT_FALSE(injector.pool_dies(0));
  EXPECT_FALSE(injector.pool_dies(1));
  EXPECT_TRUE(injector.pool_dies(2));
  EXPECT_TRUE(injector.pool_stalls(1));
  EXPECT_FALSE(injector.pool_stalls(2));
}

TEST(FaultInjectorTest, ChunkScanThrowsWhileAttemptBelowTimes) {
  const FaultInjector injector(FaultPlan::parse("chunk-throw:chunk=3,times=2"));
  EXPECT_THROW(injector.chunk_scan(3, 0), FaultInjectedError);
  EXPECT_THROW(injector.chunk_scan(3, 1), FaultInjectedError);
  EXPECT_NO_THROW(injector.chunk_scan(3, 2));  // budget of 2 is exhausted
  EXPECT_NO_THROW(injector.chunk_scan(4, 0));  // untargeted chunk
  EXPECT_EQ(injector.injected(), 2u);
}

TEST(FaultInjectorTest, ChunkSlowFactorsMultiplyAndFaultyCoversBothKinds) {
  const FaultInjector injector(FaultPlan::parse(
      "chunk-slow:chunk=1,factor=2; chunk-slow:chunk=1,factor=3; chunk-throw:chunk=2"));
  EXPECT_DOUBLE_EQ(injector.chunk_slow_factor(1), 6.0);
  EXPECT_DOUBLE_EQ(injector.chunk_slow_factor(2), 1.0);
  EXPECT_TRUE(injector.chunk_faulty(1));
  EXPECT_TRUE(injector.chunk_faulty(2));
  EXPECT_FALSE(injector.chunk_faulty(0));
}

TEST(FaultInjectorTest, WorkerThrowCoversTheAfterTimesWindow) {
  const FaultInjector injector(FaultPlan::parse("worker-throw:after=2,times=2"));
  EXPECT_FALSE(injector.worker_throws());  // call 0
  EXPECT_FALSE(injector.worker_throws());  // call 1
  EXPECT_TRUE(injector.worker_throws());   // call 2
  EXPECT_TRUE(injector.worker_throws());   // call 3
  EXPECT_FALSE(injector.worker_throws());  // call 4: window closed
}

TEST(FaultInjectorTest, MeasureFailAndNoiseAreIndependentlyCounted) {
  const FaultInjector injector(
      FaultPlan::parse("measure-fail:after=1,times=1; measure-noise:repeat=2,factor=10"));
  EXPECT_FALSE(injector.measure_fails());  // attempt 0
  EXPECT_TRUE(injector.measure_fails());   // attempt 1
  EXPECT_FALSE(injector.measure_fails());  // attempt 2
  EXPECT_DOUBLE_EQ(injector.measure_noise(0), 1.0);
  EXPECT_DOUBLE_EQ(injector.measure_noise(2), 10.0);
  EXPECT_EQ(injector.injected(), 2u);  // one fail + one noise spike
}

}  // namespace
}  // namespace hetopt::util
