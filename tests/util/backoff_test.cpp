// util::Backoff: the delay sequence is a pure function of (seed, options) —
// deterministic replay, bounded jittered growth, and option validation.
#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace hetopt::util {
namespace {

TEST(BackoffTest, SameSeedReplaysTheSameDelaySequence) {
  Backoff a(42);
  Backoff b(42);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(a.next_delay(), b.next_delay()) << i;
  }
  EXPECT_EQ(a.attempts(), 8u);
}

TEST(BackoffTest, DifferentSeedsJitterDifferently) {
  Backoff a(1);
  Backoff b(2);
  bool any_difference = false;
  for (int i = 0; i < 8; ++i) {
    if (a.next_delay() != b.next_delay()) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(BackoffTest, DelaysStayWithinTheJitteredEnvelope) {
  Backoff::Options options;
  options.base_seconds = 0.001;
  options.max_seconds = 0.016;
  options.multiplier = 2.0;
  options.jitter = 0.25;
  Backoff backoff(7, options);
  double raw = options.base_seconds;
  for (int i = 0; i < 10; ++i) {
    const double delay = backoff.next_delay();
    EXPECT_GE(delay, raw * (1.0 - options.jitter)) << i;
    EXPECT_LT(delay, raw * (1.0 + options.jitter)) << i;
    raw = std::min(raw * options.multiplier, options.max_seconds);
  }
}

TEST(BackoffTest, ZeroJitterIsExactExponentialGrowthToTheCap) {
  Backoff::Options options;
  options.base_seconds = 0.001;
  options.max_seconds = 0.004;
  options.multiplier = 2.0;
  options.jitter = 0.0;
  Backoff backoff(0, options);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.001);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.002);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.004);
  EXPECT_DOUBLE_EQ(backoff.next_delay(), 0.004);  // capped thereafter
}

TEST(BackoffTest, ResetReplaysFromTheOriginalSeed) {
  Backoff backoff(9);
  std::vector<double> first;
  for (int i = 0; i < 5; ++i) first.push_back(backoff.next_delay());
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(backoff.next_delay(), first[static_cast<std::size_t>(i)]) << i;
  }
}

TEST(BackoffTest, InvalidOptionsThrow) {
  Backoff::Options bad_base;
  bad_base.base_seconds = 0.0;
  EXPECT_THROW((void)Backoff(0, bad_base), std::invalid_argument);
  Backoff::Options bad_max;
  bad_max.max_seconds = bad_max.base_seconds / 2.0;
  EXPECT_THROW((void)Backoff(0, bad_max), std::invalid_argument);
  Backoff::Options bad_mult;
  bad_mult.multiplier = 0.5;
  EXPECT_THROW((void)Backoff(0, bad_mult), std::invalid_argument);
  Backoff::Options bad_jitter;
  bad_jitter.jitter = 1.0;
  EXPECT_THROW((void)Backoff(0, bad_jitter), std::invalid_argument);
}

TEST(BackoffTest, SleepBlocksForRoughlyTheNextDelay) {
  Backoff::Options options;
  options.base_seconds = 0.0001;
  options.max_seconds = 0.0001;
  options.jitter = 0.0;
  Backoff backoff(0, options);
  backoff.sleep();  // just exercise the blocking path; duration is OS noise
  EXPECT_EQ(backoff.attempts(), 1u);
}

}  // namespace
}  // namespace hetopt::util
