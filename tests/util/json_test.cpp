#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace hetopt::util {
namespace {

TEST(JsonWriterTest, NestedObjectsAndArrays) {
  JsonWriter json;
  json.begin_object()
      .member("schema", "hetopt-bench-v1")
      .member("count", 3)
      .member("pi", 3.5)
      .member("ok", true)
      .key("rows")
      .begin_array();
  json.begin_object().member("id", std::uint64_t{1}).end_object();
  json.begin_object().member("id", std::uint64_t{2}).key("note").null().end_object();
  json.value(-7);
  json.end_array().end_object();
  EXPECT_EQ(json.str(),
            R"({"schema":"hetopt-bench-v1","count":3,"pi":3.5,"ok":true,)"
            R"("rows":[{"id":1},{"id":2,"note":null},-7]})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json;
  json.begin_object().member("k\"ey", "a\\b\n\t\x01z").end_object();
  EXPECT_EQ(json.str(), "{\"k\\\"ey\":\"a\\\\b\\n\\t\\u0001z\"}");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json;
  json.begin_array()
      .value(std::numeric_limits<double>::infinity())
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(1.25)
      .end_array();
  EXPECT_EQ(json.str(), "[null,null,1.25]");
}

TEST(JsonWriterTest, EmptyContainers) {
  JsonWriter object;
  object.begin_object().end_object();
  EXPECT_EQ(object.str(), "{}");
  JsonWriter array;
  array.begin_array().end_array();
  EXPECT_EQ(array.str(), "[]");
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    JsonWriter json;  // incomplete document
    json.begin_object();
    EXPECT_THROW((void)json.str(), std::logic_error);
  }
  {
    JsonWriter json;  // value without key inside an object
    json.begin_object();
    EXPECT_THROW(json.value(1), std::logic_error);
  }
  {
    JsonWriter json;  // key inside an array
    json.begin_array();
    EXPECT_THROW(json.key("k"), std::logic_error);
  }
  {
    JsonWriter json;  // mismatched closer
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);
  }
  {
    JsonWriter json;  // writing past the end
    json.begin_object();
    json.end_object();
    EXPECT_THROW(json.begin_object(), std::logic_error);
  }
}

TEST(JsonEscapeTest, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("host 24t/scatter 70%"), "host 24t/scatter 70%");
}

}  // namespace
}  // namespace hetopt::util
