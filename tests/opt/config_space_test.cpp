#include "opt/config_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <set>
#include <vector>

namespace hetopt::opt {
namespace {

TEST(ConfigSpaceTest, PaperSpaceHas19926Points) {
  // 6 host threads x 3 host affinities x 9 device threads x 3 device
  // affinities x 41 fractions = 19 926 (see DESIGN.md).
  const ConfigSpace space = ConfigSpace::paper();
  EXPECT_EQ(space.size(), 19926u);
  EXPECT_EQ(space.host_threads().size(), 6u);
  EXPECT_EQ(space.device_threads().size(), 9u);
  EXPECT_EQ(space.fractions().size(), 41u);
}

TEST(ConfigSpaceTest, AtAndIndexOfAreInverse) {
  const ConfigSpace space = ConfigSpace::tiny();
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.index_of(space.at(i)), i);
  }
}

TEST(ConfigSpaceTest, AtEnumeratesDistinctConfigs) {
  const ConfigSpace space = ConfigSpace::tiny();
  std::set<std::string> seen;
  for (std::size_t i = 0; i < space.size(); ++i) {
    seen.insert(to_string(space.at(i)));
  }
  EXPECT_EQ(seen.size(), space.size());
}

TEST(ConfigSpaceTest, AtOutOfRangeThrows) {
  const ConfigSpace space = ConfigSpace::tiny();
  EXPECT_THROW((void)space.at(space.size()), std::out_of_range);
}

TEST(ConfigSpaceTest, IndexOfRejectsOffAxisValues) {
  const ConfigSpace space = ConfigSpace::tiny();
  SystemConfig c = space.at(0);
  c.host_threads = 999;
  EXPECT_THROW((void)space.index_of(c), std::invalid_argument);
  EXPECT_FALSE(space.contains(c));
  EXPECT_TRUE(space.contains(space.at(3)));
}

TEST(ConfigSpaceTest, RandomStaysInSpace) {
  const ConfigSpace space = ConfigSpace::paper();
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(space.contains(space.random(rng)));
  }
}

TEST(ConfigSpaceTest, RandomCoversTheSpace) {
  const ConfigSpace space = ConfigSpace::tiny();
  util::Xoshiro256 rng(2);
  std::set<std::size_t> seen;
  for (int i = 0; i < 4000; ++i) {
    seen.insert(space.index_of(space.random(rng)));
  }
  EXPECT_EQ(seen.size(), space.size());  // all 80 points sampled
}

TEST(ConfigSpaceTest, NeighborAlwaysValidAndDifferent) {
  const ConfigSpace space = ConfigSpace::paper();
  util::Xoshiro256 rng(3);
  SystemConfig current = space.random(rng);
  int unchanged = 0;
  for (int i = 0; i < 1000; ++i) {
    const SystemConfig next = space.neighbor(current, rng);
    EXPECT_TRUE(space.contains(next));
    if (next == current) ++unchanged;
    current = next;
  }
  // Affinity axes with 3 values can occasionally propose the same config via
  // a categorical resample, but that must be rare-to-never.
  EXPECT_LE(unchanged, 10);
}

TEST(ConfigSpaceTest, NeighborChangesExactlyOneParameter) {
  const ConfigSpace space = ConfigSpace::paper();
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 500; ++i) {
    const SystemConfig current = space.random(rng);
    const SystemConfig next = space.neighbor(current, rng);
    int changed = 0;
    changed += (next.host_threads != current.host_threads) ? 1 : 0;
    changed += (next.host_affinity != current.host_affinity) ? 1 : 0;
    changed += (next.device_threads != current.device_threads) ? 1 : 0;
    changed += (next.device_affinity != current.device_affinity) ? 1 : 0;
    changed += (next.host_percent != current.host_percent) ? 1 : 0;
    EXPECT_LE(changed, 1);
  }
}

TEST(ConfigSpaceTest, NeighborStepsAreLocalOnOrderedAxes) {
  const ConfigSpace space = ConfigSpace::paper();
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 500; ++i) {
    const SystemConfig current = space.random(rng);
    const SystemConfig next = space.neighbor(current, rng);
    if (next.host_percent != current.host_percent) {
      EXPECT_LE(std::abs(next.host_percent - current.host_percent), 3 * 2.5 + 1e-9);
    }
  }
}

TEST(ConfigSpaceTest, ValidationOfAxes) {
  EXPECT_THROW(ConfigSpace({}, {parallel::HostAffinity::kNone}, {2},
                           {parallel::DeviceAffinity::kBalanced}, {50.0}),
               std::invalid_argument);
  EXPECT_THROW(ConfigSpace({4, 2}, {parallel::HostAffinity::kNone}, {2},
                           {parallel::DeviceAffinity::kBalanced}, {50.0}),
               std::invalid_argument);
  EXPECT_THROW(ConfigSpace({2}, {parallel::HostAffinity::kNone}, {2},
                           {parallel::DeviceAffinity::kBalanced}, {150.0}),
               std::invalid_argument);
  EXPECT_THROW(ConfigSpace({2}, {}, {2}, {parallel::DeviceAffinity::kBalanced}, {50.0}),
               std::invalid_argument);
}

TEST(ConfigSpaceTest, SinglePointSpaceWorks) {
  const ConfigSpace space({4}, {parallel::HostAffinity::kScatter}, {60},
                          {parallel::DeviceAffinity::kBalanced}, {50.0});
  EXPECT_EQ(space.size(), 1u);
  util::Xoshiro256 rng(6);
  const SystemConfig only = space.at(0);
  EXPECT_EQ(space.random(rng), only);
  // Neighbour of the only point stays the only point (threads/fraction axes
  // cannot move, affinity axes have no alternative).
  EXPECT_EQ(space.neighbor(only, rng), only);
}

TEST(ConfigSpaceTest, RealSpaceIsSizedToTheMachine) {
  const ConfigSpace space = ConfigSpace::real(8);
  EXPECT_EQ(space.host_threads(), (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(space.device_threads(), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(space.host_affinities().size(), 3u);
  EXPECT_EQ(space.device_affinities().size(), 3u);
  EXPECT_EQ(space.fractions(), (std::vector<double>{0.0, 25.0, 50.0, 75.0, 100.0}));
  EXPECT_EQ(space.size(), 4u * 3u * 5u * 3u * 5u);

  // Non-power-of-two machines can still reach "use every hardware thread".
  const ConfigSpace twelve = ConfigSpace::real(12);
  EXPECT_EQ(twelve.host_threads(), (std::vector<int>{1, 2, 4, 8, 12}));
  EXPECT_EQ(twelve.device_threads(), (std::vector<int>{1, 2, 4, 8, 16, 24}));

  // A single-threaded machine still yields a searchable space.
  const ConfigSpace one = ConfigSpace::real(1);
  EXPECT_EQ(one.host_threads(), (std::vector<int>{1}));
  EXPECT_EQ(one.device_threads(), (std::vector<int>{1, 2}));
  EXPECT_GT(one.size(), 1u);

  // 0 = autodetect; the result is a valid non-empty space.
  const ConfigSpace self = ConfigSpace::real();
  EXPECT_GE(self.host_threads().front(), 1);
  EXPECT_GT(self.size(), 0u);
}

TEST(ConfigTest, ToStringIsHumanReadable) {
  SystemConfig c;
  c.host_threads = 24;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 60;
  c.device_affinity = parallel::DeviceAffinity::kBalanced;
  c.host_percent = 62.5;
  EXPECT_EQ(to_string(c), "host 24t/scatter 62.5% | device 60t/balanced 37.5%");
  // The default engine is implied; a non-default one is appended.
  c.engine = automata::EngineKind::kBitap;
  EXPECT_EQ(to_string(c), "host 24t/scatter 62.5% | device 60t/balanced 37.5% [bitap]");
}

TEST(ConfigSpaceTest, DefaultEngineAxisIsSingleCompiledDfa) {
  const ConfigSpace space = ConfigSpace::tiny();
  ASSERT_EQ(space.engines().size(), 1u);
  EXPECT_EQ(space.engines().front(), automata::EngineKind::kCompiledDfa);
  // Every decoded point carries the default engine.
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.at(i).engine, automata::EngineKind::kCompiledDfa);
  }
}

TEST(ConfigSpaceTest, EngineAxisMultipliesAndRoundTrips) {
  const ConfigSpace base = ConfigSpace::tiny();
  const ConfigSpace wide = base.with_engines(
      {automata::EngineKind::kCompiledDfa, automata::EngineKind::kBitap});
  EXPECT_EQ(wide.size(), 2 * base.size());
  // The engine axis is outermost: the first base.size() indices decode
  // exactly as the engine-less space did.
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(wide.at(i), base.at(i));
  }
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const SystemConfig c = wide.at(i);
    EXPECT_EQ(wide.index_of(c), i);
    EXPECT_EQ(c.engine, i < base.size() ? automata::EngineKind::kCompiledDfa
                                        : automata::EngineKind::kBitap);
  }
  // A config with an off-axis engine is outside the space.
  SystemConfig off = wide.at(0);
  off.engine = automata::EngineKind::kAhoCorasick;
  EXPECT_FALSE(wide.contains(off));
  EXPECT_TRUE(base.contains(base.at(0)));
}

TEST(ConfigSpaceTest, EngineAxisValidation) {
  EXPECT_THROW((void)ConfigSpace::tiny().with_engines({}), std::invalid_argument);
  EXPECT_THROW((void)ConfigSpace::tiny().with_engines(
                   {automata::EngineKind::kBitap, automata::EngineKind::kBitap}),
               std::invalid_argument);
}

TEST(ConfigSpaceTest, DefaultScheduleAxisIsSingleStatic) {
  const ConfigSpace space = ConfigSpace::tiny();
  ASSERT_EQ(space.schedules().size(), 1u);
  EXPECT_EQ(space.schedules().front(), parallel::SchedulePolicy::kStatic);
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.at(i).schedule, parallel::SchedulePolicy::kStatic);
  }
}

TEST(ConfigSpaceTest, ScheduleAxisMultipliesAndRoundTrips) {
  const ConfigSpace base = ConfigSpace::tiny();
  const ConfigSpace wide = base.with_schedules(
      {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic,
       parallel::SchedulePolicy::kAdaptive});
  EXPECT_EQ(wide.size(), 3 * base.size());
  // The schedule axis is outermost (outside even the engine axis): the
  // first base.size() indices decode exactly as the schedule-less space did.
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(wide.at(i), base.at(i));
  }
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const SystemConfig c = wide.at(i);
    EXPECT_EQ(wide.index_of(c), i);
    EXPECT_EQ(c.schedule, wide.schedules()[i / base.size()]);
  }
  // A config with an off-axis schedule is outside the space.
  SystemConfig off = wide.at(0);
  off.schedule = parallel::SchedulePolicy::kGuided;
  EXPECT_FALSE(wide.contains(off));
}

TEST(ConfigSpaceTest, ScheduleAxisStacksOutsideTheEngineAxis) {
  const ConfigSpace base = ConfigSpace::tiny();
  const ConfigSpace both =
      base.with_engines({automata::EngineKind::kCompiledDfa, automata::EngineKind::kBitap})
          .with_schedules(
              {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic});
  EXPECT_EQ(both.size(), 4 * base.size());
  // Engine cycles within one schedule block; schedule flips between blocks.
  EXPECT_EQ(both.at(0).schedule, parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(both.at(2 * base.size()).schedule, parallel::SchedulePolicy::kDynamic);
  EXPECT_EQ(both.at(base.size()).engine, automata::EngineKind::kBitap);
  for (std::size_t i = 0; i < both.size(); ++i) {
    EXPECT_EQ(both.index_of(both.at(i)), i);
  }
}

TEST(ConfigSpaceTest, ScheduleAxisValidation) {
  EXPECT_THROW((void)ConfigSpace::tiny().with_schedules({}), std::invalid_argument);
  EXPECT_THROW((void)ConfigSpace::tiny().with_schedules(
                   {parallel::SchedulePolicy::kDynamic,
                    parallel::SchedulePolicy::kDynamic}),
               std::invalid_argument);
}

TEST(ConfigSpaceTest, NeighborMovesAcrossTheScheduleAxis) {
  const ConfigSpace wide = ConfigSpace::tiny().with_schedules(
      {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic,
       parallel::SchedulePolicy::kGuided, parallel::SchedulePolicy::kAdaptive});
  util::Xoshiro256 rng(123);
  SystemConfig current = wide.at(0);
  bool schedule_moved = false;
  for (int step = 0; step < 400; ++step) {
    const SystemConfig next = wide.neighbor(current, rng);
    EXPECT_TRUE(wide.contains(next));
    if (next.schedule != current.schedule) schedule_moved = true;
    current = next;
  }
  EXPECT_TRUE(schedule_moved);  // the axis is reachable by annealing
}

TEST(ConfigSpaceTest, SingleValueScheduleAxisNeverJoinsTheMove) {
  // With the default schedule axis, every neighbor keeps schedule == static
  // and at most one *other* parameter moves — the engine-era move shape, so
  // seeded engine-axis runs from before the schedule axis reproduce.
  const ConfigSpace wide = ConfigSpace::tiny().with_engines(
      {automata::EngineKind::kCompiledDfa, automata::EngineKind::kAhoCorasick,
       automata::EngineKind::kBitap});
  util::Xoshiro256 rng(7);
  SystemConfig current = wide.at(5);
  for (int step = 0; step < 300; ++step) {
    const SystemConfig next = wide.neighbor(current, rng);
    EXPECT_EQ(next.schedule, parallel::SchedulePolicy::kStatic);
    int changed = 0;
    changed += (next.host_threads != current.host_threads) ? 1 : 0;
    changed += (next.host_affinity != current.host_affinity) ? 1 : 0;
    changed += (next.device_threads != current.device_threads) ? 1 : 0;
    changed += (next.device_affinity != current.device_affinity) ? 1 : 0;
    changed += (next.host_percent != current.host_percent) ? 1 : 0;
    changed += (next.engine != current.engine) ? 1 : 0;
    EXPECT_LE(changed, 1);
    current = next;
  }
}

TEST(ConfigSpaceTest, DefaultDeviceCountAxisIsTheClassicPair) {
  // Without with_device_counts the space is exactly the paper's host+device
  // pair: a single-value {1} axis that neither multiplies the size nor ever
  // appears in a decoded config as anything but 1.
  const ConfigSpace space = ConfigSpace::tiny();
  ASSERT_EQ(space.device_counts(), (std::vector<int>{1}));
  for (std::size_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.at(i).device_count, 1);
  }
}

TEST(ConfigSpaceTest, DeviceCountAxisMultipliesAndRoundTrips) {
  const ConfigSpace base = ConfigSpace::tiny();
  const ConfigSpace wide = base.with_device_counts({1, 2, 4});
  EXPECT_EQ(wide.size(), 3 * base.size());
  // The device-count axis is outermost — outside even the schedule axis —
  // so the first base.size() indices decode exactly as the fleet-less space
  // did: the PR-5 layout is the K=1 block.
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(wide.at(i), base.at(i));
  }
  for (std::size_t i = 0; i < wide.size(); ++i) {
    const SystemConfig c = wide.at(i);
    EXPECT_EQ(wide.index_of(c), i);
    EXPECT_EQ(c.device_count,
              wide.device_counts()[i / base.size()]);
  }
  SystemConfig off = wide.at(0);
  off.device_count = 3;
  EXPECT_FALSE(wide.contains(off));
}

TEST(ConfigSpaceTest, DeviceCountAxisStacksOutsideEveryOtherAxis) {
  const ConfigSpace base = ConfigSpace::tiny();
  const ConfigSpace all =
      base.with_engines({automata::EngineKind::kCompiledDfa, automata::EngineKind::kBitap})
          .with_schedules(
              {parallel::SchedulePolicy::kStatic, parallel::SchedulePolicy::kDynamic})
          .with_device_counts({1, 2});
  EXPECT_EQ(all.size(), 8 * base.size());
  // Engine cycles innermost of the extensions, then schedule, then fleet.
  EXPECT_EQ(all.at(0).device_count, 1);
  EXPECT_EQ(all.at(4 * base.size()).device_count, 2);
  EXPECT_EQ(all.at(4 * base.size()).schedule, parallel::SchedulePolicy::kStatic);
  EXPECT_EQ(all.at(2 * base.size()).schedule, parallel::SchedulePolicy::kDynamic);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all.index_of(all.at(i)), i);
  }
}

TEST(ConfigSpaceTest, DeviceCountAxisValidation) {
  EXPECT_THROW((void)ConfigSpace::tiny().with_device_counts({}), std::invalid_argument);
  EXPECT_THROW((void)ConfigSpace::tiny().with_device_counts({2, 1}),
               std::invalid_argument);  // unsorted
  EXPECT_THROW((void)ConfigSpace::tiny().with_device_counts({1, 1}),
               std::invalid_argument);  // duplicate
  EXPECT_THROW((void)ConfigSpace::tiny().with_device_counts({0, 1}),
               std::invalid_argument);  // no zero-device fleets
}

TEST(ConfigSpaceTest, NeighborMovesAcrossTheDeviceCountAxisLocally) {
  // The fleet-size axis is ordered, not categorical: annealing reaches it,
  // and every move slides at most three axis positions (the same +-1..3
  // window the thread and fraction axes use), never teleporting across a
  // long axis.
  const std::vector<int> counts{1, 2, 3, 4, 5, 6, 7, 8};
  const ConfigSpace wide = ConfigSpace::tiny().with_device_counts(counts);
  const auto index_on_axis = [&](int k) {
    return std::distance(counts.begin(),
                         std::find(counts.begin(), counts.end(), k));
  };
  util::Xoshiro256 rng(321);
  SystemConfig current = wide.at(0);
  bool device_moved = false;
  for (int step = 0; step < 400; ++step) {
    const SystemConfig next = wide.neighbor(current, rng);
    EXPECT_TRUE(wide.contains(next));
    if (next.device_count != current.device_count) {
      device_moved = true;
      EXPECT_LE(std::abs(index_on_axis(next.device_count) -
                         index_on_axis(current.device_count)),
                3)
          << current.device_count << " -> " << next.device_count;
    }
    current = next;
  }
  EXPECT_TRUE(device_moved);
}

TEST(ConfigSpaceTest, SingleValueDeviceAxisDrawsThePreFleetRngStream) {
  // Bit-identity regression for every seeded PR-5-era run: when the
  // device-count axis is left at its {1} default, neighbor() must consume
  // the RNG exactly as the schedule-era space did — same draws, same moves
  // — so Table II preset streams reproduce. Proven by lockstep comparison
  // against a space built without ever touching the fleet axis.
  const ConfigSpace pre = ConfigSpace::tiny().with_engines(
      {automata::EngineKind::kCompiledDfa, automata::EngineKind::kBitap});
  const ConfigSpace post = pre.with_device_counts({1});
  util::Xoshiro256 rng_pre(4242);
  util::Xoshiro256 rng_post(4242);
  SystemConfig a = pre.at(3);
  SystemConfig b = post.at(3);
  for (int step = 0; step < 500; ++step) {
    a = pre.neighbor(a, rng_pre);
    b = post.neighbor(b, rng_post);
    ASSERT_EQ(a, b) << "streams diverged at step " << step;
    EXPECT_EQ(b.device_count, 1);
  }
}

TEST(ConfigSpaceTest, EngineAxisStreamDependsOnLengthNotMembers) {
  // The documented RNG-stream contract for the SIMD era: neighbor() draws
  // depend only on each axis's *length*, never on which engines populate it.
  // Swapping the three pre-SIMD kinds for three SIMD-era kinds must consume
  // the RNG identically and make the same moves (by flat index), so seeded
  // presets stay bit-identical as long as the axis length is unchanged.
  const ConfigSpace pre = ConfigSpace::tiny().with_engines(
      {automata::EngineKind::kCompiledDfa, automata::EngineKind::kAhoCorasick,
       automata::EngineKind::kBitap});
  const ConfigSpace post = ConfigSpace::tiny().with_engines(
      {automata::EngineKind::kCompiledDfa, automata::EngineKind::kBitapSimd,
       automata::EngineKind::kPrefilterDfa});
  ASSERT_EQ(pre.size(), post.size());
  util::Xoshiro256 rng_pre(4242);
  util::Xoshiro256 rng_post(4242);
  SystemConfig a = pre.at(3);
  SystemConfig b = post.at(3);
  for (int step = 0; step < 500; ++step) {
    a = pre.neighbor(a, rng_pre);
    b = post.neighbor(b, rng_post);
    ASSERT_EQ(pre.index_of(a), post.index_of(b))
        << "streams diverged at step " << step;
  }
}

TEST(ConfigSpaceTest, FullEngineAxisReachesEveryKindAndRoundTrips) {
  // Widening the axis to all five kinds: the space multiplies by five,
  // decode/index round-trips, and annealing reaches the SIMD-era kinds.
  const ConfigSpace base = ConfigSpace::tiny();
  const ConfigSpace wide = base.with_engines(std::vector<automata::EngineKind>(
      automata::kAllEngineKinds.begin(), automata::kAllEngineKinds.end()));
  EXPECT_EQ(wide.size(), automata::kEngineKindCount * base.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(wide.index_of(wide.at(i)), i);
  }
  util::Xoshiro256 rng(99);
  SystemConfig current = wide.at(0);
  bool saw_simd = false;
  bool saw_prefilter = false;
  for (int step = 0; step < 600; ++step) {
    current = wide.neighbor(current, rng);
    EXPECT_TRUE(wide.contains(current));
    saw_simd |= current.engine == automata::EngineKind::kBitapSimd;
    saw_prefilter |= current.engine == automata::EngineKind::kPrefilterDfa;
  }
  EXPECT_TRUE(saw_simd);
  EXPECT_TRUE(saw_prefilter);
}

TEST(ConfigTest, ToStringAppendsOnlyNonDefaultFleetSizes) {
  SystemConfig c;
  c.host_threads = 24;
  c.host_affinity = parallel::HostAffinity::kScatter;
  c.device_threads = 60;
  c.device_affinity = parallel::DeviceAffinity::kBalanced;
  c.host_percent = 62.5;
  // The paper's pair prints exactly the pre-fleet string (seeded logs and
  // JSON diffs must not change)...
  ASSERT_EQ(c.device_count, 1);
  EXPECT_EQ(to_string(c), "host 24t/scatter 62.5% | device 60t/balanced 37.5%");
  // ...while a real fleet announces its size.
  c.device_count = 3;
  EXPECT_EQ(to_string(c), "host 24t/scatter 62.5% | device 60t/balanced 37.5% [3dev]");
}

TEST(ConfigSpaceTest, NeighborMovesAcrossTheEngineAxis) {
  const ConfigSpace wide = ConfigSpace::tiny().with_engines(
      {automata::EngineKind::kCompiledDfa, automata::EngineKind::kAhoCorasick,
       automata::EngineKind::kBitap});
  util::Xoshiro256 rng(99);
  SystemConfig current = wide.at(0);
  bool engine_moved = false;
  for (int step = 0; step < 400; ++step) {
    const SystemConfig next = wide.neighbor(current, rng);
    EXPECT_TRUE(wide.contains(next));
    if (next.engine != current.engine) engine_moved = true;
    current = next;
  }
  EXPECT_TRUE(engine_moved);  // the axis is actually reachable by annealing
}

}  // namespace
}  // namespace hetopt::opt
