#include "opt/strategy.hpp"

#include <gtest/gtest.h>

#include "opt/enumeration.hpp"

namespace hetopt::opt {
namespace {

double bowl(const SystemConfig& c) {
  const double f = c.host_percent - 50.0;
  const double t = c.host_threads - 8.0;
  return 1.0 + f * f / 200.0 + t * t / 20.0 +
         (c.device_affinity == parallel::DeviceAffinity::kBalanced ? 0.0 : 0.2);
}

SearchObjective bowl_objective() { return SearchObjective(bowl); }

TEST(SearchObjective, RejectsNullSingleObjective) {
  EXPECT_THROW(SearchObjective(Objective{}), std::invalid_argument);
}

TEST(SearchObjective, BatchFallsBackToSingle) {
  const SearchObjective obj(bowl);
  const ConfigSpace space = ConfigSpace::tiny();
  const std::vector<SystemConfig> configs{space.at(0), space.at(1), space.at(2)};
  const std::vector<double> energies = obj.evaluate(configs);
  ASSERT_EQ(energies.size(), 3u);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    EXPECT_DOUBLE_EQ(energies[i], bowl(configs[i]));
  }
}

TEST(SearchObjective, MismatchedBatchSizeThrows) {
  const SearchObjective obj(bowl, [](const std::vector<SystemConfig>&) {
    return std::vector<double>{1.0};  // wrong size on purpose
  });
  const ConfigSpace space = ConfigSpace::tiny();
  EXPECT_THROW((void)obj.evaluate({space.at(0), space.at(1)}), std::runtime_error);
}

TEST(ExhaustiveSearchTest, MatchesEnumerateBestIncludingTieBreak) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto reference = enumerate_best(space, bowl);
  // Batch size 7 exercises a remainder chunk on the 80-point tiny space.
  const ExhaustiveSearch strategy(7);
  const SearchOutcome outcome = strategy.search(space, bowl_objective(), SearchBudget{});
  EXPECT_EQ(outcome.best, reference.best);
  EXPECT_DOUBLE_EQ(outcome.best_energy, reference.best_energy);
  EXPECT_EQ(outcome.evaluations, space.size());
}

TEST(ExhaustiveSearchTest, ConstantObjectiveTiesToLowestIndex) {
  const ConfigSpace space = ConfigSpace::tiny();
  const ExhaustiveSearch strategy;
  const SearchOutcome outcome =
      strategy.search(space, SearchObjective([](const SystemConfig&) { return 3.0; }),
                      SearchBudget{});
  EXPECT_EQ(outcome.best, space.at(0));
}

TEST(RandomSearchTest, RespectsBudgetAndIsDeterministic) {
  const ConfigSpace space = ConfigSpace::paper();
  const RandomSearch strategy;
  SearchBudget budget;
  budget.max_evaluations = 50;
  budget.seed = 9;
  const SearchOutcome a = strategy.search(space, bowl_objective(), budget);
  const SearchOutcome b = strategy.search(space, bowl_objective(), budget);
  EXPECT_EQ(a.evaluations, 50u);
  EXPECT_TRUE(space.contains(a.best));
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_energy, b.best_energy);
}

TEST(RandomSearchTest, BatchedAndSerialPathsAgree) {
  const ConfigSpace space = ConfigSpace::paper();
  SearchBudget budget;
  budget.max_evaluations = 100;
  budget.seed = 17;
  // Batch size 1 forces per-candidate calls; 64 exercises chunking. The RNG
  // stream only depends on the seed, so outcomes must match exactly.
  const SearchOutcome serial = RandomSearch(1).search(space, bowl_objective(), budget);
  const SearchOutcome batched = RandomSearch(64).search(space, bowl_objective(), budget);
  EXPECT_EQ(serial.best, batched.best);
  EXPECT_DOUBLE_EQ(serial.best_energy, batched.best_energy);
  EXPECT_EQ(serial.evaluations, batched.evaluations);
}

TEST(AnnealingSearchTest, ExplicitParamsReproduceSimulatedAnnealing) {
  const ConfigSpace space = ConfigSpace::paper();
  const SaParams params = AnnealingSearch::schedule(300, 4);
  const SaResult reference = simulated_annealing(space, bowl, params);
  const SearchOutcome outcome =
      AnnealingSearch(params).search(space, bowl_objective(), SearchBudget{});
  EXPECT_EQ(outcome.best, reference.best);
  EXPECT_DOUBLE_EQ(outcome.best_energy, reference.best_energy);
  EXPECT_EQ(outcome.evaluations, reference.evaluations);
}

TEST(AnnealingSearchTest, DerivesScheduleFromBudget) {
  const ConfigSpace space = ConfigSpace::paper();
  SearchBudget budget;
  budget.max_evaluations = 200;
  budget.seed = 5;
  const SearchOutcome outcome = AnnealingSearch().search(space, bowl_objective(), budget);
  EXPECT_LE(outcome.evaluations, 200u);
  EXPECT_GT(outcome.evaluations, 100u);  // the schedule actually uses the budget
  EXPECT_TRUE(space.contains(outcome.best));
}

TEST(AnnealingSearchTest, BudgetZeroMeansPaperDefaultAndBudgetOneThrows) {
  const ConfigSpace space = ConfigSpace::paper();
  SearchBudget budget;
  budget.max_evaluations = 0;  // "strategy default": the ~1000-step schedule
  budget.seed = 6;
  const SearchOutcome outcome = AnnealingSearch().search(space, bowl_objective(), budget);
  EXPECT_LE(outcome.evaluations, 1000u);
  EXPECT_GT(outcome.evaluations, 500u);

  budget.max_evaluations = 1;  // cannot fit initial + one move
  EXPECT_THROW((void)AnnealingSearch().search(space, bowl_objective(), budget),
               std::invalid_argument);
}

TEST(GeneticSearchTest, RunsWithinBudgetAndFindsTinyOptimum) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto reference = enumerate_best(space, bowl);
  SearchBudget budget;
  budget.max_evaluations = 600;
  budget.seed = 5;
  const SearchOutcome outcome = GeneticSearch().search(space, bowl_objective(), budget);
  EXPECT_LE(outcome.evaluations, 600u);
  EXPECT_DOUBLE_EQ(outcome.best_energy, reference.best_energy);
}

TEST(GeneticSearchTest, ShrinksPopulationToFitSmallBudget) {
  const ConfigSpace space = ConfigSpace::tiny();
  SearchBudget budget;
  budget.max_evaluations = 10;  // smaller than the default population of 32
  budget.seed = 1;
  const SearchOutcome outcome = GeneticSearch().search(space, bowl_objective(), budget);
  EXPECT_LE(outcome.evaluations, 10u);
  EXPECT_GT(outcome.evaluations, 0u);
  EXPECT_TRUE(space.contains(outcome.best));
}

TEST(GeneticSearchTest, ExplicitParamsWinOverBudgetLikeAnnealing) {
  const ConfigSpace space = ConfigSpace::tiny();
  GaParams params;
  params.max_evaluations = 100;
  params.seed = 123;
  SearchBudget budget;
  budget.max_evaluations = 700;  // must be ignored: explicit params win
  budget.seed = 9;
  const SearchOutcome via_strategy =
      GeneticSearch(params).search(space, bowl_objective(), budget);
  const GaResult direct = genetic_algorithm(space, Objective(bowl), params);
  EXPECT_EQ(via_strategy.best, direct.best);
  EXPECT_DOUBLE_EQ(via_strategy.best_energy, direct.best_energy);
  EXPECT_EQ(via_strategy.evaluations, direct.evaluations);
  EXPECT_LE(via_strategy.evaluations, 100u);
}

TEST(GeneticSearchTest, BudgetOfOneThrows) {
  const ConfigSpace space = ConfigSpace::tiny();
  SearchBudget budget;
  budget.max_evaluations = 1;
  EXPECT_THROW((void)GeneticSearch().search(space, bowl_objective(), budget),
               std::invalid_argument);
}

TEST(GeneticAlgorithmBatch, BatchedOverloadBitIdenticalToSerial) {
  const ConfigSpace space = ConfigSpace::paper();
  GaParams params;
  params.max_evaluations = 400;
  params.seed = 11;
  const GaResult serial = genetic_algorithm(space, Objective(bowl), params);
  const GaResult batched = genetic_algorithm(
      space,
      BatchObjective([](const std::vector<SystemConfig>& cs) {
        std::vector<double> out;
        out.reserve(cs.size());
        for (const SystemConfig& c : cs) out.push_back(bowl(c));
        return out;
      }),
      params);
  EXPECT_EQ(serial.best, batched.best);
  EXPECT_DOUBLE_EQ(serial.best_energy, batched.best_energy);
  EXPECT_EQ(serial.evaluations, batched.evaluations);
  EXPECT_EQ(serial.generations, batched.generations);
}

TEST(EnumerateBestBatched, MatchesSerialEnumeration) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto serial = enumerate_best(space, bowl);
  std::size_t visited = 0;
  const auto batched = enumerate_best_batched(
      space,
      [](const std::vector<SystemConfig>& cs) {
        std::vector<double> out;
        out.reserve(cs.size());
        for (const SystemConfig& c : cs) out.push_back(bowl(c));
        return out;
      },
      13, [&](const SystemConfig&, double) { ++visited; });
  EXPECT_EQ(batched.best, serial.best);
  EXPECT_DOUBLE_EQ(batched.best_energy, serial.best_energy);
  EXPECT_EQ(batched.evaluations, space.size());
  EXPECT_EQ(visited, space.size());
}

}  // namespace
}  // namespace hetopt::opt
