#include "opt/simulated_annealing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "opt/enumeration.hpp"

namespace hetopt::opt {
namespace {

/// A smooth synthetic objective with a unique optimum inside the tiny space.
double bowl(const SystemConfig& c) {
  const double f = c.host_percent - 50.0;
  const double t = c.host_threads - 8.0;
  const double d = c.device_threads - 60.0;
  return 1.0 + f * f / 100.0 + t * t / 10.0 + d * d / 100.0 +
         (c.host_affinity == parallel::HostAffinity::kScatter ? 0.0 : 0.3) +
         (c.device_affinity == parallel::DeviceAffinity::kBalanced ? 0.0 : 0.3);
}

TEST(CoolingRate, ProducesRequestedIterationCount) {
  const double rate = SaParams::cooling_rate_for(2.0, 1e-3, 1000);
  // (1-rate)^1000 * 2.0 should land just at 1e-3.
  EXPECT_NEAR(2.0 * std::pow(1.0 - rate, 1000.0), 1e-3, 1e-6);
  EXPECT_THROW((void)SaParams::cooling_rate_for(1.0, 2.0, 100), std::invalid_argument);
  EXPECT_THROW((void)SaParams::cooling_rate_for(2.0, 1e-3, 0), std::invalid_argument);
}

TEST(SimulatedAnnealingTest, FindsOptimumOfTinySpace) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto em = enumerate_best(space, bowl);
  SaParams params;
  params.cooling_rate = SaParams::cooling_rate_for(2.0, 1e-3, 2000);
  params.seed = 123;
  const SaResult sa = simulated_annealing(space, bowl, params);
  EXPECT_NEAR(sa.best_energy, em.best_energy, 1e-12);
  EXPECT_EQ(sa.best, em.best);
}

TEST(SimulatedAnnealingTest, DeterministicInSeed) {
  const ConfigSpace space = ConfigSpace::tiny();
  SaParams params;
  params.seed = 7;
  const SaResult a = simulated_annealing(space, bowl, params);
  const SaResult b = simulated_annealing(space, bowl, params);
  EXPECT_EQ(a.best, b.best);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.accepted_worse, b.accepted_worse);
}

TEST(SimulatedAnnealingTest, IterationCapRespected) {
  const ConfigSpace space = ConfigSpace::tiny();
  SaParams params;
  params.max_iterations = 50;
  const SaResult r = simulated_annealing(space, bowl, params);
  EXPECT_EQ(r.iterations, 50u);
  EXPECT_EQ(r.trace.size(), 50u);
  // One evaluation for the initial solution plus one per iteration.
  EXPECT_EQ(r.evaluations, 51u);
}

TEST(SimulatedAnnealingTest, BestTraceIsMonotoneNonIncreasing) {
  const ConfigSpace space = ConfigSpace::tiny();
  SaParams params;
  params.seed = 11;
  const SaResult r = simulated_annealing(space, bowl, params);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_LE(r.trace[i].best_energy, r.trace[i - 1].best_energy);
  }
  EXPECT_DOUBLE_EQ(r.trace.back().best_energy, r.best_energy);
}

TEST(SimulatedAnnealingTest, TemperatureFollowsGeometricSchedule) {
  const ConfigSpace space = ConfigSpace::tiny();
  SaParams params;
  params.initial_temperature = 4.0;
  params.cooling_rate = 0.1;
  params.max_iterations = 10;
  const SaResult r = simulated_annealing(space, bowl, params);
  ASSERT_GE(r.trace.size(), 3u);
  EXPECT_DOUBLE_EQ(r.trace[0].temperature, 4.0);
  EXPECT_NEAR(r.trace[1].temperature, 4.0 * 0.9, 1e-12);
  EXPECT_NEAR(r.trace[2].temperature, 4.0 * 0.81, 1e-12);
}

TEST(SimulatedAnnealingTest, AcceptsWorseMovesAtHighTemperature) {
  // With a high temperature and a rugged objective, uphill moves must occur
  // (the paper's key local-optimum escape property).
  const ConfigSpace space = ConfigSpace::tiny();
  SaParams params;
  params.initial_temperature = 100.0;
  params.min_temperature = 50.0;
  params.cooling_rate = 0.001;
  params.max_iterations = 500;
  params.seed = 13;
  const SaResult r = simulated_annealing(space, bowl, params);
  EXPECT_GT(r.accepted_worse, 0u);
}

TEST(SimulatedAnnealingTest, RarelyAcceptsWorseAtLowTemperature) {
  const ConfigSpace space = ConfigSpace::tiny();
  SaParams params;
  params.initial_temperature = 1e-6;
  params.min_temperature = 1e-9;
  params.cooling_rate = 0.01;
  params.max_iterations = 500;
  params.seed = 13;
  const SaResult r = simulated_annealing(space, bowl, params);
  EXPECT_EQ(r.accepted_worse, 0u);
}

TEST(SimulatedAnnealingTest, ParameterValidation) {
  const ConfigSpace space = ConfigSpace::tiny();
  SaParams bad;
  bad.initial_temperature = -1.0;
  EXPECT_THROW((void)simulated_annealing(space, bowl, bad), std::invalid_argument);
  bad = {};
  bad.cooling_rate = 0.0;
  EXPECT_THROW((void)simulated_annealing(space, bowl, bad), std::invalid_argument);
  bad = {};
  bad.cooling_rate = 1.0;
  EXPECT_THROW((void)simulated_annealing(space, bowl, bad), std::invalid_argument);
  EXPECT_THROW((void)simulated_annealing(space, Objective{}, SaParams{}),
               std::invalid_argument);
}

TEST(SimulatedAnnealingTest, NanEnergyRejected) {
  const ConfigSpace space = ConfigSpace::tiny();
  const Objective nan_obj = [](const SystemConfig&) { return std::nan(""); };
  EXPECT_THROW((void)simulated_annealing(space, nan_obj, SaParams{}), std::runtime_error);
}

class BudgetSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BudgetSweep, MoreIterationsNeverWorseOnAverage) {
  // Across several seeds, the mean best energy with a larger budget must not
  // be worse than with a smaller one (Table VI's monotone improvement).
  const std::size_t budget = GetParam();
  const ConfigSpace space = ConfigSpace::paper();
  const Objective obj = bowl;
  double small_sum = 0.0;
  double large_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SaParams p_small;
    p_small.cooling_rate = SaParams::cooling_rate_for(2.0, 1e-3, budget);
    p_small.max_iterations = budget;
    p_small.seed = seed;
    SaParams p_large = p_small;
    p_large.cooling_rate = SaParams::cooling_rate_for(2.0, 1e-3, budget * 4);
    p_large.max_iterations = budget * 4;
    small_sum += simulated_annealing(space, obj, p_small).best_energy;
    large_sum += simulated_annealing(space, obj, p_large).best_energy;
  }
  EXPECT_LE(large_sum, small_sum + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetSweep, ::testing::Values(50u, 100u, 250u));

}  // namespace
}  // namespace hetopt::opt
