#include "opt/enumeration.hpp"

#include <gtest/gtest.h>

namespace hetopt::opt {
namespace {

double fraction_energy(const SystemConfig& c) {
  return std::abs(c.host_percent - 75.0) + 0.01 * c.host_threads;
}

TEST(Enumeration, VisitsEveryConfigurationExactlyOnce) {
  const ConfigSpace space = ConfigSpace::tiny();
  std::size_t visits = 0;
  const auto r = enumerate_best(space, fraction_energy,
                                [&](const SystemConfig&, double) { ++visits; });
  EXPECT_EQ(visits, space.size());
  EXPECT_EQ(r.evaluations, space.size());
}

TEST(Enumeration, FindsTheTrueOptimum) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto r = enumerate_best(space, fraction_energy);
  // Optimum: fraction 75, fewest host threads (4).
  EXPECT_DOUBLE_EQ(r.best.host_percent, 75.0);
  EXPECT_EQ(r.best.host_threads, 4);
  double expected = fraction_energy(r.best);
  EXPECT_DOUBLE_EQ(r.best_energy, expected);
}

TEST(Enumeration, VisitorSeesEnergies) {
  const ConfigSpace space = ConfigSpace::tiny();
  double sum = 0.0;
  (void)enumerate_best(space, fraction_energy,
                       [&](const SystemConfig& c, double e) {
                         EXPECT_DOUBLE_EQ(e, fraction_energy(c));
                         sum += e;
                       });
  EXPECT_GT(sum, 0.0);
}

TEST(Enumeration, PaperSpaceCountsMatch) {
  // The paper reports 19 926 enumeration experiments.
  const ConfigSpace space = ConfigSpace::paper();
  const auto r = enumerate_best(space, [](const SystemConfig&) { return 1.0; });
  EXPECT_EQ(r.evaluations, 19926u);
}

TEST(Enumeration, NullObjectiveRejected) {
  const ConfigSpace space = ConfigSpace::tiny();
  EXPECT_THROW((void)enumerate_best(space, Objective{}), std::invalid_argument);
}

TEST(Enumeration, TieBreaksToLowestIndex) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto r = enumerate_best(space, [](const SystemConfig&) { return 5.0; });
  EXPECT_EQ(space.index_of(r.best), 0u);
}

}  // namespace
}  // namespace hetopt::opt
