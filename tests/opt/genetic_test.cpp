#include "opt/genetic.hpp"

#include <gtest/gtest.h>

#include "opt/enumeration.hpp"

namespace hetopt::opt {
namespace {

double bowl(const SystemConfig& c) {
  const double f = c.host_percent - 50.0;
  const double t = c.host_threads - 8.0;
  return 1.0 + f * f / 200.0 + t * t / 20.0 +
         (c.device_affinity == parallel::DeviceAffinity::kBalanced ? 0.0 : 0.2);
}

TEST(GeneticAlgorithm, FindsOptimumOfTinySpace) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto em = enumerate_best(space, bowl);
  GaParams params;
  params.population = 16;
  params.max_evaluations = 600;
  params.seed = 5;
  const GaResult ga = genetic_algorithm(space, bowl, params);
  EXPECT_DOUBLE_EQ(ga.best_energy, em.best_energy);
}

TEST(GeneticAlgorithm, RespectsEvaluationBudget) {
  const ConfigSpace space = ConfigSpace::paper();
  std::size_t calls = 0;
  const Objective counting = [&](const SystemConfig& c) {
    ++calls;
    return bowl(c);
  };
  GaParams params;
  params.max_evaluations = 500;
  const GaResult ga = genetic_algorithm(space, counting, params);
  EXPECT_LE(calls, 500u);
  EXPECT_EQ(ga.evaluations, calls);
  EXPECT_GT(ga.generations, 0u);
}

TEST(GeneticAlgorithm, DeterministicInSeed) {
  const ConfigSpace space = ConfigSpace::paper();
  GaParams params;
  params.seed = 11;
  params.max_evaluations = 400;
  const GaResult a = genetic_algorithm(space, bowl, params);
  const GaResult b = genetic_algorithm(space, bowl, params);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_energy, b.best_energy);
}

TEST(GeneticAlgorithm, ElitismNeverLosesTheBest) {
  const ConfigSpace space = ConfigSpace::paper();
  // Track the best energy ever evaluated; GA's reported best must equal it.
  double best_seen = 1e300;
  const Objective tracking = [&](const SystemConfig& c) {
    const double e = bowl(c);
    best_seen = std::min(best_seen, e);
    return e;
  };
  GaParams params;
  params.max_evaluations = 800;
  params.seed = 13;
  const GaResult ga = genetic_algorithm(space, tracking, params);
  EXPECT_DOUBLE_EQ(ga.best_energy, best_seen);
}

TEST(GeneticAlgorithm, OffspringStayInsideTheSpace) {
  const ConfigSpace space = ConfigSpace::paper();
  const Objective checking = [&](const SystemConfig& c) {
    EXPECT_TRUE(space.contains(c));
    return bowl(c);
  };
  GaParams params;
  params.max_evaluations = 600;
  params.mutation_rate = 1.0;  // exercise mutation heavily
  (void)genetic_algorithm(space, checking, params);
}

TEST(GeneticAlgorithm, ParameterValidation) {
  const ConfigSpace space = ConfigSpace::tiny();
  GaParams bad;
  bad.population = 1;
  EXPECT_THROW((void)genetic_algorithm(space, bowl, bad), std::invalid_argument);
  bad = {};
  bad.elites = bad.population;
  EXPECT_THROW((void)genetic_algorithm(space, bowl, bad), std::invalid_argument);
  bad = {};
  bad.max_evaluations = bad.population - 1;
  EXPECT_THROW((void)genetic_algorithm(space, bowl, bad), std::invalid_argument);
  bad = {};
  bad.tournament = 0;
  EXPECT_THROW((void)genetic_algorithm(space, bowl, bad), std::invalid_argument);
  EXPECT_THROW((void)genetic_algorithm(space, Objective{}, GaParams{}),
               std::invalid_argument);
}

TEST(GeneticAlgorithm, LargerBudgetNotWorseOnAverage) {
  const ConfigSpace space = ConfigSpace::paper();
  double small_sum = 0.0;
  double large_sum = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GaParams p_small;
    p_small.max_evaluations = 200;
    p_small.seed = seed;
    GaParams p_large = p_small;
    p_large.max_evaluations = 1200;
    small_sum += genetic_algorithm(space, bowl, p_small).best_energy;
    large_sum += genetic_algorithm(space, bowl, p_large).best_energy;
  }
  EXPECT_LE(large_sum, small_sum + 1e-9);
}

}  // namespace
}  // namespace hetopt::opt
