#include "opt/baselines.hpp"

#include <gtest/gtest.h>

#include "opt/enumeration.hpp"

namespace hetopt::opt {
namespace {

double valley(const SystemConfig& c) {
  const double f = c.host_percent - 50.0;
  return 1.0 + f * f / 500.0 + 0.02 * std::abs(c.host_threads - 8);
}

TEST(RandomSearchTest, RespectsBudgetExactly) {
  const ConfigSpace space = ConfigSpace::tiny();
  std::size_t calls = 0;
  const Objective counting = [&](const SystemConfig& c) {
    ++calls;
    return valley(c);
  };
  const auto r = random_search(space, counting, 37, 1);
  EXPECT_EQ(calls, 37u);
  EXPECT_EQ(r.evaluations, 37u);
}

TEST(RandomSearchTest, DeterministicInSeed) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto a = random_search(space, valley, 100, 5);
  const auto b = random_search(space, valley, 100, 5);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_energy, b.best_energy);
}

TEST(RandomSearchTest, LargeBudgetFindsOptimumOfTinySpace) {
  const ConfigSpace space = ConfigSpace::tiny();
  const auto em = enumerate_best(space, valley);
  const auto rs = random_search(space, valley, 2000, 3);
  EXPECT_DOUBLE_EQ(rs.best_energy, em.best_energy);
}

TEST(RandomSearchTest, ZeroBudgetRejected) {
  const ConfigSpace space = ConfigSpace::tiny();
  EXPECT_THROW((void)random_search(space, valley, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)random_search(space, Objective{}, 10, 1), std::invalid_argument);
}

TEST(HillClimbingTest, RespectsBudget) {
  const ConfigSpace space = ConfigSpace::tiny();
  std::size_t calls = 0;
  const Objective counting = [&](const SystemConfig& c) {
    ++calls;
    return valley(c);
  };
  const auto r = hill_climbing(space, counting, 73, 2);
  EXPECT_EQ(calls, 73u);
  EXPECT_EQ(r.evaluations, 73u);
}

TEST(HillClimbingTest, ImprovesOverItsStartingPoint) {
  const ConfigSpace space = ConfigSpace::paper();
  util::Xoshiro256 rng(4);
  const SystemConfig start = space.random(rng);
  (void)start;
  const auto r = hill_climbing(space, valley, 500, 4);
  // On a smooth valley the climber should get close to the global optimum.
  const auto em = enumerate_best(space, valley);
  EXPECT_LT(r.best_energy, em.best_energy * 1.5 + 0.5);
}

TEST(HillClimbingTest, RestartsEscapeFlatRegions) {
  const ConfigSpace space = ConfigSpace::tiny();
  // Constant objective: every move is non-improving, so the budget is spent
  // through restarts. Must terminate and return a valid config.
  const auto r = hill_climbing(
      space, [](const SystemConfig&) { return 1.0; }, 200, 6, /*patience=*/5);
  EXPECT_EQ(r.evaluations, 200u);
  EXPECT_TRUE(space.contains(r.best));
}

TEST(HillClimbingTest, ArgumentValidation) {
  const ConfigSpace space = ConfigSpace::tiny();
  EXPECT_THROW((void)hill_climbing(space, valley, 0, 1), std::invalid_argument);
  EXPECT_THROW((void)hill_climbing(space, Objective{}, 10, 1), std::invalid_argument);
}

TEST(CountingObjectiveTest, CountsAndValidates) {
  CountingObjective obj(valley);
  const ConfigSpace space = ConfigSpace::tiny();
  const SystemConfig c = space.at(0);
  (void)obj(c);
  (void)obj(c);
  EXPECT_EQ(obj.count(), 2u);
  obj.reset();
  EXPECT_EQ(obj.count(), 0u);
  CountingObjective bad([](const SystemConfig&) { return -1.0; });
  EXPECT_THROW((void)bad(c), std::runtime_error);
  EXPECT_THROW(CountingObjective(Objective{}), std::invalid_argument);
}

}  // namespace
}  // namespace hetopt::opt
