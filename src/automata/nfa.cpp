#include "automata/nfa.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>

namespace hetopt::automata {

StateId Nfa::add_state() {
  const auto id = static_cast<StateId>(transitions_.size());
  transitions_.emplace_back();
  epsilons_.emplace_back();
  accept_mask_.push_back(0);
  return id;
}

void Nfa::add_transition(StateId from, dna::BaseSet on, StateId to) {
  if (on.empty()) throw std::invalid_argument("Nfa: empty character class");
  transitions_.at(from).push_back(Transition{on, to});
  if (to >= state_count()) throw std::out_of_range("Nfa: transition to unknown state");
}

void Nfa::add_epsilon(StateId from, StateId to) {
  epsilons_.at(from).push_back(to);
  if (to >= state_count()) throw std::out_of_range("Nfa: epsilon to unknown state");
}

void Nfa::set_accepting(StateId s, std::size_t pattern_id) {
  if (pattern_id >= kMaxPatterns) {
    throw std::out_of_range("Nfa: pattern id exceeds kMaxPatterns");
  }
  accept_mask_.at(s) |= (1ULL << pattern_id);
}

std::vector<StateId> Nfa::epsilon_closure(std::vector<StateId> states) const {
  std::vector<bool> seen(state_count(), false);
  std::vector<StateId> stack;
  for (StateId s : states) {
    if (s >= state_count()) throw std::out_of_range("Nfa: unknown state in closure");
    if (!seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  std::vector<StateId> result = stack;
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (StateId t : epsilons_[s]) {
      if (!seen[t]) {
        seen[t] = true;
        stack.push_back(t);
        result.push_back(t);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::uint64_t Nfa::simulate(std::string_view text) const {
  if (start_ == kInvalidState) throw std::logic_error("Nfa: no start state");
  std::vector<StateId> current = epsilon_closure({start_});
  std::uint64_t seen_accepts = 0;
  const auto accumulate = [&](const std::vector<StateId>& states) {
    for (StateId s : states) seen_accepts |= accept_mask_[s];
  };
  accumulate(current);
  for (char c : text) {
    const auto base = dna::base_from_char(c);
    if (!base) throw std::invalid_argument("Nfa::simulate: invalid base");
    std::vector<StateId> next;
    for (StateId s : current) {
      for (const Transition& t : transitions_[s]) {
        if (t.on.contains(*base)) next.push_back(t.to);
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = epsilon_closure(std::move(next));
    accumulate(current);
  }
  return seen_accepts;
}

}  // namespace hetopt::automata
