#include "automata/simd_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "automata/hopcroft.hpp"
#include "automata/regex.hpp"
#include "automata/subset.hpp"

namespace hetopt::automata {

// --- BitapSimdEngine --------------------------------------------------------

BitapSimdEngine::BitapSimdEngine(const std::vector<std::string>& patterns,
                                 std::optional<util::IsaLevel> isa)
    : matcher_(patterns),
      isa_(simd::resolve_isa(isa)),
      kernel_(&simd::bitap_kernel(isa_)) {}

std::uint64_t BitapSimdEngine::count_chunk(std::string_view text, std::size_t begin,
                                           std::size_t end) const {
  bool bad = false;
  const std::uint64_t count = kernel_->count_range(
      matcher_.tables(), text, begin, end, matcher_.synchronization_bound(), &bad);
  if (bad) {
    // Cold path: replay the scalar engine's exact scan order (warm-up lead,
    // then body) so the thrown exception names the same first invalid byte
    // with the same message as BitapEngine would.
    std::uint64_t state = 0;
    const std::size_t lead = std::min(matcher_.synchronization_bound() - 1, begin);
    if (lead > 0) (void)matcher_.scan(text.substr(begin - lead, lead), state);
    (void)matcher_.scan(text.substr(begin, end - begin), state);
    throw std::logic_error("bitap-simd: kernel flagged invalid input the scalar "
                           "replay did not reproduce");
  }
  return count;
}

std::uint64_t BitapSimdEngine::collect_chunk(std::string_view text, std::size_t begin,
                                             std::size_t end,
                                             std::vector<Match>& out) const {
  // Collection is event-append-bound, not scan-bound: events must land in
  // one ordered vector anyway, so this path runs the scalar matcher directly
  // — byte-identical to BitapEngine::collect_chunk by construction.
  std::uint64_t state = 0;
  const std::size_t lead = std::min(matcher_.synchronization_bound() - 1, begin);
  if (lead > 0) (void)matcher_.scan(text.substr(begin - lead, lead), state);
  return matcher_.collect(text.substr(begin, end - begin), begin, out, state);
}

// --- PrefilterDfaEngine -----------------------------------------------------

namespace {

DenseDfa build_minimized(const std::vector<std::string>& motifs) {
  const CompiledMotifs compiled = compile_motifs(motifs);
  return minimize(determinize(compiled.nfa, compiled.synchronization_bound));
}

/// Minimum mean quiet-run length for the skip to pay: the wider the probe,
/// the more bytes each find_candidate call must clear to beat the plain
/// fused scan's per-byte table step. (The scalar probe is a cheap byte loop;
/// the vector probes carry load/compare/movemask setup per step.)
[[nodiscard]] double density_skip_cutoff(util::IsaLevel isa) noexcept {
  switch (isa) {
    case util::IsaLevel::kScalar: return 2.0;
    case util::IsaLevel::kSse2: return 4.0;
    case util::IsaLevel::kAvx2: return 4.0;
  }
  return 2.0;
}

}  // namespace

PrefilterDfaEngine::PrefilterDfaEngine(const std::vector<std::string>& motifs,
                                       std::optional<util::IsaLevel> isa,
                                       std::string_view density_sample)
    : dfa_(build_minimized(motifs)),
      kernel_(dfa_),
      isa_(simd::resolve_isa(isa)),
      prefilter_(&simd::prefilter_kernel(isa_)) {
  if (dfa_.synchronization_bound() == 0) {
    // lower() gates this syntactically ('*'/'+'); direct construction with
    // unbounded motifs is a caller bug, not an input error.
    throw std::logic_error(
        "PrefilterDfaEngine: unbounded motif set (no synchronization bound)");
  }
  // Quiet bytes keep the start state put. Invalid bytes step start -> sink
  // (never == start), so they classify as candidates for free and are never
  // skipped past.
  const StateId start = kernel_.start();
  const std::uint32_t* const nx = kernel_.byte_table();
  for (std::size_t byte = 0; byte < 256; ++byte) {
    classes_.quiet[byte] =
        nx[(static_cast<std::size_t>(start) << 8) | byte] == start ? 1 : 0;
  }
  // The quiet set is case-symmetric (the DFA folds case), so the vector
  // kernels compare case-folded input against the lowercase quiet bases.
  for (const char base : {'a', 'c', 'g', 't'}) {
    if (classes_.quiet[static_cast<unsigned char>(base)] != 0) {
      classes_.quiet_bases[classes_.quiet_base_count++] = base;
    }
  }
  // Skipping a quiet run from the start state is exact only when staying at
  // start contributes no occurrences; motif automata never accept at start
  // (motifs are non-empty), but all-optional motifs like "A?" can — those
  // degenerate to the plain fused scan.
  can_skip_ = kernel_.accept_count(start) == 0 && classes_.quiet_base_count > 0;

  // Density probe: measure the mean quiet-run length on the sample and
  // self-disable the skip below the ISA-adaptive cutoff. A sample with no
  // quiet bytes (every byte a candidate) measures 0 and always disables;
  // exactness never depends on the decision — only the scan strategy does.
  if (can_skip_ && !density_sample.empty()) {
    std::uint64_t quiet_bytes = 0;
    std::uint64_t quiet_runs = 0;
    bool in_run = false;
    for (const char c : density_sample) {
      if (classes_.quiet[static_cast<unsigned char>(c)] != 0) {
        ++quiet_bytes;
        if (!in_run) {
          ++quiet_runs;
          in_run = true;
        }
      } else {
        in_run = false;
      }
    }
    sampled_quiet_run_ = quiet_runs > 0 ? static_cast<double>(quiet_bytes) /
                                              static_cast<double>(quiet_runs)
                                        : 0.0;
    density_cutoff_ = density_skip_cutoff(isa_);
    if (sampled_quiet_run_ < density_cutoff_) can_skip_ = false;
  }
}

StateId PrefilterDfaEngine::entry_state(std::string_view text, std::size_t begin) const {
  if (begin == 0) return kernel_.start();
  const std::size_t lead = std::min(dfa_.synchronization_bound() - 1, begin);
  if (lead == 0) return kernel_.start();
  return kernel_.count(text.substr(begin - lead, lead), kernel_.start()).final_state;
}

std::uint64_t PrefilterDfaEngine::count_chunk(std::string_view text, std::size_t begin,
                                              std::size_t end) const {
  StateId s = entry_state(text, begin);
  const StateId start = kernel_.start();
  const std::uint32_t* const nx = kernel_.byte_table();
  const auto* const p = reinterpret_cast<const unsigned char*>(text.data());
  std::uint64_t count = 0;
  std::size_t pos = begin;
  if (can_skip_) {
    while (pos < end) {
      if (s == start) {
        // In the start state every quiet byte is a no-op on both state and
        // count — skip the whole run at vector speed.
        pos = prefilter_->find_candidate(classes_, text, pos, end);
        if (pos >= end) break;
      }
      s = nx[(static_cast<std::size_t>(s) << 8) | p[pos]];
      count += kernel_.accept_count(s);
      ++pos;
    }
  } else {
    for (; pos < end; ++pos) {
      s = nx[(static_cast<std::size_t>(s) << 8) | p[pos]];
      count += kernel_.accept_count(s);
    }
  }
  if (s == kernel_.sink()) {
    // Invalid input: the fused kernel's cold path throws the scanner's exact
    // exception for the first bad byte of the chunk body.
    (void)kernel_.count(text.substr(begin, end - begin), entry_state(text, begin));
    throw std::logic_error("prefilter-dfa: sink reached on input the fused "
                           "kernel accepted");
  }
  return count;
}

std::uint64_t PrefilterDfaEngine::collect_chunk(std::string_view text, std::size_t begin,
                                                std::size_t end,
                                                std::vector<Match>& out) const {
  StateId s = entry_state(text, begin);
  const StateId start = kernel_.start();
  const std::uint32_t* const nx = kernel_.byte_table();
  const auto* const p = reinterpret_cast<const unsigned char*>(text.data());
  std::uint64_t count = 0;
  std::size_t pos = begin;
  while (pos < end) {
    if (can_skip_ && s == start) {
      // Quiet runs produce no events (the start state accepts nothing).
      pos = prefilter_->find_candidate(classes_, text, pos, end);
      if (pos >= end) break;
    }
    s = nx[(static_cast<std::size_t>(s) << 8) | p[pos]];
    const std::uint32_t hits = kernel_.accept_count(s);
    if (hits != 0) {
      count += hits;
      out.push_back(Match{pos + 1, kernel_.accept_mask(s)});
    }
    ++pos;
  }
  if (s == kernel_.sink()) {
    (void)kernel_.count(text.substr(begin, end - begin), entry_state(text, begin));
    throw std::logic_error("prefilter-dfa: sink reached on input the fused "
                           "kernel accepted");
  }
  return count;
}

}  // namespace hetopt::automata
