#include "automata/hopcroft.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace hetopt::automata {

DenseDfa minimize(const DenseDfa& dfa) {
  const std::uint32_t n = dfa.state_count();
  if (n == 0) throw std::invalid_argument("minimize: empty automaton");

  // --- Initial partition by accept signature -------------------------------
  // block_of[s] = index of the block containing s.
  std::vector<std::uint32_t> block_of(n, 0);
  {
    std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint32_t> sig_to_block;
    for (StateId s = 0; s < n; ++s) {
      const auto sig = std::make_pair(dfa.accept_mask(s), dfa.accept_count(s));
      const auto [it, inserted] =
          sig_to_block.emplace(sig, static_cast<std::uint32_t>(sig_to_block.size()));
      block_of[s] = it->second;
    }
  }

  // blocks as member lists (rebuilt on each split; simple and fast enough for
  // the automata sizes in this project — thousands of states).
  std::uint32_t num_blocks = 1 + *std::max_element(block_of.begin(), block_of.end());

  // Pre-compute inverse transitions: inv[c][t] = states s with step(s,c)==t.
  std::array<std::vector<std::vector<StateId>>, dna::kAlphabetSize> inv;
  for (std::size_t c = 0; c < dna::kAlphabetSize; ++c) {
    inv[c].assign(n, {});
    for (StateId s = 0; s < n; ++s) {
      inv[c][dfa.step(s, static_cast<dna::Base>(c))].push_back(s);
    }
  }

  // Worklist of (block, character) pairs. Hopcroft's "smaller half" trick is
  // replaced by enqueueing all blocks — asymptotically worse but simpler and
  // robust; automata here are small.
  std::deque<std::pair<std::uint32_t, std::size_t>> work;
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    for (std::size_t c = 0; c < dna::kAlphabetSize; ++c) work.emplace_back(b, c);
  }

  while (!work.empty()) {
    const auto [splitter, c] = work.front();
    work.pop_front();

    // X = states whose c-transition lands in the splitter block.
    std::vector<StateId> x;
    for (StateId t = 0; t < n; ++t) {
      if (block_of[t] == splitter) {
        x.insert(x.end(), inv[c][t].begin(), inv[c][t].end());
      }
    }
    if (x.empty()) continue;

    // Group X members by their current block; any block partially covered by
    // X splits into (in X) / (not in X).
    std::vector<std::uint32_t> touched;  // blocks intersecting X
    std::vector<std::uint32_t> in_x_count(num_blocks, 0);
    std::vector<char> in_x(n, 0);
    for (StateId s : x) {
      if (!in_x[s]) {
        in_x[s] = 1;
        if (in_x_count[block_of[s]]++ == 0) touched.push_back(block_of[s]);
      }
    }
    // Block sizes.
    std::vector<std::uint32_t> block_size(num_blocks, 0);
    for (StateId s = 0; s < n; ++s) ++block_size[block_of[s]];

    for (std::uint32_t b : touched) {
      if (in_x_count[b] == block_size[b]) continue;  // fully inside X: no split
      const std::uint32_t fresh = num_blocks++;
      for (StateId s = 0; s < n; ++s) {
        if (block_of[s] == b && in_x[s]) block_of[s] = fresh;
      }
      for (std::size_t ch = 0; ch < dna::kAlphabetSize; ++ch) {
        work.emplace_back(fresh, ch);
        work.emplace_back(b, ch);
      }
    }
  }

  // --- Emit the quotient automaton ----------------------------------------
  // Renumber blocks in order of first occurrence for determinism.
  std::vector<std::uint32_t> renum(num_blocks, static_cast<std::uint32_t>(-1));
  std::uint32_t next_id = 0;
  for (StateId s = 0; s < n; ++s) {
    if (renum[block_of[s]] == static_cast<std::uint32_t>(-1)) renum[block_of[s]] = next_id++;
  }

  DenseDfa out(next_id);
  std::vector<char> emitted(next_id, 0);
  for (StateId s = 0; s < n; ++s) {
    const std::uint32_t b = renum[block_of[s]];
    if (emitted[b]) continue;
    emitted[b] = 1;
    for (std::size_t c = 0; c < dna::kAlphabetSize; ++c) {
      out.set_transition(b, static_cast<dna::Base>(c),
                         renum[block_of[dfa.step(s, static_cast<dna::Base>(c))]]);
    }
    if (dfa.accept_mask(s) != 0) {
      out.set_accept(b, dfa.accept_mask(s), dfa.accept_count(s));
    }
  }
  out.set_start(renum[block_of[dfa.start()]]);
  out.set_synchronization_bound(dfa.synchronization_bound());
  out.set_pattern_count(dfa.pattern_count());
  return out;
}

}  // namespace hetopt::automata
