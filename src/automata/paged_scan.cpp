// The IO/compute-pipelined scan path: ParallelMatcher's paged-input mode.
//
// The in-memory matcher (parallel_matcher.cpp) assumes the whole text is
// addressable; here the corpus lives behind dna::PagedGenome's bounded page
// cache. The pipeline:
//
//   - chunks are cut *within* pages, so a worker scanning chunk i touches
//     exactly one resident page — the stored halo in front of each payload
//     carries the PaREM warm-up context across page seams, which keeps every
//     schedule's counts and collected positions byte-identical to an
//     in-memory scan of the same bytes (property-tested);
//   - chunk tickets are dispensed in ascending page order through the PR-5
//     ChunkQueue; a worker claiming a chunk on a new page publishes the scan
//     frontier, which tells the background PrefetchReader to load further
//     ahead and lets it drop ring pins the scan has passed;
//   - workers block only on genuinely-cold pages (PagedGenome::acquire);
//     everything already resident — prefetched or still warm from another
//     worker — is pinned without waiting.
//
// Scan semantics per chunk match the in-memory paths exactly: the kernel
// path warms up over the lead bytes and scans the body on the compiled DFA;
// the engine path drives MatchEngine::count_chunk/collect_chunk on the
// page-local view (the engine reads its own warm-up lead out of the halo).
#include <algorithm>
#include <optional>
#include <stdexcept>

#include "automata/parallel_matcher.hpp"
#include "parallel/chunk_queue.hpp"
#include "util/timer.hpp"

namespace hetopt::automata {

namespace {

[[nodiscard]] dna::CacheStats cache_delta(const dna::CacheStats& before,
                                          const dna::CacheStats& after) {
  dna::CacheStats d;
  d.hits = after.hits - before.hits;
  d.loads = after.loads - before.loads;
  d.evictions = after.evictions - before.evictions;
  d.cold_stalls = after.cold_stalls - before.cold_stalls;
  d.backpressure_waits = after.backpressure_waits - before.backpressure_waits;
  d.bytes_read = after.bytes_read - before.bytes_read;
  d.load_seconds = after.load_seconds - before.load_seconds;
  d.cold_stall_seconds = after.cold_stall_seconds - before.cold_stall_seconds;
  return d;
}

}  // namespace

PagedScanStats ParallelMatcher::count_paged(dna::PagedGenome& genome,
                                            const PagedScanOptions& options) const {
  return run_paged(genome, options, /*want_matches=*/false, nullptr);
}

PagedScanStats ParallelMatcher::collect_paged(dna::PagedGenome& genome,
                                              std::vector<Match>& out,
                                              const PagedScanOptions& options) const {
  return run_paged(genome, options, /*want_matches=*/true, &out);
}

PagedScanStats ParallelMatcher::run_paged(dna::PagedGenome& genome,
                                          const PagedScanOptions& options,
                                          bool want_matches, std::vector<Match>* out) const {
  const std::size_t bound =
      engine_ != nullptr ? engine_->synchronization_bound() : dfa_->synchronization_bound();
  if (bound == 0) {
    throw std::invalid_argument(
        "ParallelMatcher: paged scanning needs a synchronization bound "
        "(per-chunk warm-up out of the page halo); unbounded automata cannot "
        "stream");
  }
  if (want_matches && engine_ != nullptr && !engine_->supports_collect()) {
    throw std::logic_error("ParallelMatcher: engine '" + std::string(engine_->name()) +
                           "' does not support match collection");
  }
  const dna::PagedGenomeOptions& gopts = genome.options();
  if (gopts.halo_bytes < bound - 1) {
    throw std::invalid_argument(
        "ParallelMatcher: page halo (" + std::to_string(gopts.halo_bytes) +
        "B) is smaller than the warm-up lead (" + std::to_string(bound - 1) +
        "B); configure PagedGenomeOptions::halo_bytes >= synchronization_bound - 1");
  }
  const std::size_t workers = pool_.thread_count();
  const std::size_t budget = options.pin_budget == 0
                                 ? gopts.resident_pages
                                 : std::min(options.pin_budget, gopts.resident_pages);
  if (budget < workers) {
    throw std::invalid_argument(
        "ParallelMatcher: resident budget (" + std::to_string(budget) +
        " pages) must cover the pool's " + std::to_string(workers) +
        " workers or the paged scan can deadlock on backpressure");
  }

  PagedScanStats stats;
  const std::size_t first = std::min(options.first_page, genome.page_count());
  const std::size_t last = std::min(options.last_page, genome.page_count());
  if (first >= last) return stats;

  // The ring, one in-flight prefetch load, and every worker's pin must fit
  // the budget together or backpressure could deadlock: clamp the depth.
  const std::size_t depth =
      std::min(options.prefetch_depth, budget > workers + 2 ? budget - workers - 2 : 0);

  // Chunk layout: every page's payload cut independently, pages ascending.
  const std::size_t per_page =
      std::max<std::size_t>(1, options.chunks_per_page == 0 ? workers
                                                            : options.chunks_per_page);
  std::vector<parallel::Chunk> ranges;
  std::vector<std::uint32_t> page_of;
  ranges.reserve((last - first) * per_page);
  page_of.reserve((last - first) * per_page);
  for (std::size_t p = first; p < last; ++p) {
    const std::size_t base = genome.page_begin(p);
    const std::size_t len = genome.page_payload_bytes(p);
    if (len == 0) continue;
    const auto cut =
        options.schedule == parallel::SchedulePolicy::kGuided
            ? parallel::make_chunks_guided(len, workers,
                                           parallel::guided_min_chunk(len, per_page))
            : parallel::make_chunks(len, std::min(per_page, len), /*halo=*/0);
    for (const parallel::Chunk& c : cut) {
      ranges.push_back(parallel::Chunk{c.begin + base, c.end + base, c.scan_end + base});
      page_of.push_back(static_cast<std::uint32_t>(p));
      stats.bytes += c.end - c.begin;
    }
  }
  stats.chunks = ranges.size();
  stats.pages = last - first;
  stats.prefetch_depth = depth;
  if (ranges.empty()) return stats;
  if (scratch_.size() < ranges.size()) scratch_.resize(ranges.size());

  const dna::CacheStats before = genome.stats();
  const util::Timer run_timer;
  std::optional<dna::PrefetchReader> prefetch;
  if (depth > 0) prefetch.emplace(genome, first, last, depth);
  dna::PrefetchReader* reader = prefetch.has_value() ? &*prefetch : nullptr;

  const std::size_t warmup = bound - 1;
  const auto scan_chunk = [&](std::size_t i, dna::PagedGenome::PageRef& ref) {
    const std::size_t p = page_of[i];
    if (!ref.valid() || ref.page() != p) {
      ref.release();  // at most one pin per worker: the progress guarantee
      if (reader != nullptr) reader->publish(p);
      ref = genome.acquire(p);
    }
    const std::string_view local = ref.view();
    const std::size_t base = ref.begin() - ref.halo();  // global offset of local[0]
    const parallel::Chunk& c = ranges[i];
    ChunkResult& cr = scratch_[i];
    cr.matches.clear();  // clear() keeps capacity — reused across runs
    cr.scan = ScanResult{};
    if (engine_ != nullptr) {
      // The engine reads its own warm-up lead before the chunk; the halo in
      // front of the payload provides it for chunks at a page seam.
      if (want_matches) {
        cr.scan.match_count =
            engine_->collect_chunk(local, c.begin - base, c.end - base, cr.matches);
        // collect_chunk reports offsets within `local`; lift them to global.
        for (Match& m : cr.matches) m.end += base;
      } else {
        cr.scan.match_count = engine_->count_chunk(local, c.begin - base, c.end - base);
      }
    } else {
      const std::size_t lead = std::min(warmup, c.begin);
      StateId entry = dfa_->start();
      if (lead > 0) {
        entry = kernel_->count(local.substr(c.begin - lead - base, lead), entry)
                    .final_state;
      }
      const std::string_view body = local.substr(c.begin - base, c.end - c.begin);
      if (want_matches) {
        cr.scan = kernel_->collect(body, entry, c.begin, cr.matches);
      } else {
        cr.scan = kernel_->count(body, entry);
      }
    }
  };

  if (options.schedule == parallel::SchedulePolicy::kStatic) {
    // Pre-assigned contiguous chunk groups: every worker streams its own
    // page sub-range (its own frontier; the single shared ring serves the
    // lowest pages first).
    pool_.parallel_chunks(ranges.size(), workers,
                          [&](std::size_t, std::size_t lo, std::size_t hi) {
                            dna::PagedGenome::PageRef ref;
                            for (std::size_t i = lo; i < hi; ++i) scan_chunk(i, ref);
                          });
  } else {
    // Demand-driven: tickets ascend through the pages, so the claim order
    // IS the scan frontier the prefetcher runs ahead of.
    parallel::ChunkQueue queue(ranges.size());
    pool_.parallel_pull([&](std::size_t) {
      dna::PagedGenome::PageRef ref;
      while (const auto t = queue.take_front()) scan_chunk(*t, ref);
    });
  }
  if (reader != nullptr) {
    stats.prefetch = reader->stats();
    reader->stop();
  }
  stats.seconds = run_timer.seconds();
  stats.cache = cache_delta(before, genome.stats());

  for (std::size_t i = 0; i < ranges.size(); ++i) {
    stats.match_count += scratch_[i].scan.match_count;
  }
  if (want_matches && out != nullptr) {
    collect_sorted(ranges.size(), out);
  }
  return stats;
}

}  // namespace hetopt::automata
