// Dense table-driven deterministic finite automaton over {A,C,G,T}.
// This is the runtime representation every matcher executes: a flat
// `next[state * 4 + base]` transition table plus per-state accept metadata.
//
// For pattern-matching automata (built over an implicit leading "Σ*"), a
// state is accepting when at least one motif *ends* at the current input
// position; `accept_count(s)` says how many motifs end there so occurrence
// counting is exact even when several motifs end at the same offset.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dna/alphabet.hpp"
#include "automata/nfa.hpp"

namespace hetopt::automata {

class DenseDfa {
 public:
  DenseDfa() = default;

  /// Builds an empty automaton with `num_states` states, all transitions to
  /// state 0, nothing accepting.
  explicit DenseDfa(std::uint32_t num_states);

  [[nodiscard]] std::uint32_t state_count() const noexcept {
    return static_cast<std::uint32_t>(accept_mask_.size());
  }
  [[nodiscard]] StateId start() const noexcept { return start_; }
  void set_start(StateId s);

  void set_transition(StateId from, dna::Base on, StateId to);
  [[nodiscard]] StateId step(StateId from, dna::Base on) const noexcept {
    return next_[from * dna::kAlphabetSize + static_cast<std::size_t>(on)];
  }

  void set_accept(StateId s, std::uint64_t mask, std::uint32_t count);
  /// Hot accessors are unchecked (scanners read one per input byte); callers
  /// validate the automaton once up front — ParallelMatcher and the
  /// CompiledDfa lowering both run validate() at construction.
  [[nodiscard]] std::uint64_t accept_mask(StateId s) const noexcept {
    assert(s < state_count());
    return accept_mask_[s];
  }
  [[nodiscard]] std::uint32_t accept_count(StateId s) const noexcept {
    assert(s < state_count());
    return accept_count_[s];
  }

  /// Longest motif this automaton matches; any scan state is fully determined
  /// by the previous `synchronization_bound()` input bytes (0 = unknown, e.g.
  /// for automata with unbounded patterns).
  void set_synchronization_bound(std::size_t n) noexcept { sync_bound_ = n; }
  [[nodiscard]] std::size_t synchronization_bound() const noexcept { return sync_bound_; }

  /// Number of distinct patterns (for reporting); optional metadata.
  void set_pattern_count(std::size_t n) noexcept { pattern_count_ = n; }
  [[nodiscard]] std::size_t pattern_count() const noexcept { return pattern_count_; }

  /// Raw transition table (state-major). Exposed for benchmarks.
  [[nodiscard]] const std::vector<StateId>& table() const noexcept { return next_; }

  /// Runs the automaton over `text` starting at `state`; returns the final
  /// state. Throws on non-ACGT characters.
  [[nodiscard]] StateId run(StateId state, std::string_view text) const;

  /// Checks structural invariants (all transitions in range, start valid).
  /// Returns an error description, or empty when consistent.
  [[nodiscard]] std::string validate() const;

 private:
  std::vector<StateId> next_;            // state_count * 4
  std::vector<std::uint64_t> accept_mask_;
  std::vector<std::uint32_t> accept_count_;
  StateId start_ = 0;
  std::size_t sync_bound_ = 0;
  std::size_t pattern_count_ = 0;
};

/// A single match event: `end` is the offset one past the last matched byte;
/// `pattern_mask` has a bit set for every pattern ending there.
struct Match {
  std::size_t end = 0;
  std::uint64_t pattern_mask = 0;
  friend bool operator==(const Match&, const Match&) = default;
};

}  // namespace hetopt::automata
