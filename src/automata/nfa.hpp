// Thompson-style nondeterministic finite automaton over the DNA alphabet.
// Transitions are labelled with BaseSet character classes (so IUPAC codes are
// first-class); epsilon edges support the usual regex constructions.
// Accepting states carry a pattern id so multi-pattern automata can report
// which motif matched.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "dna/alphabet.hpp"

namespace hetopt::automata {

using StateId = std::uint32_t;
inline constexpr StateId kInvalidState = static_cast<StateId>(-1);

/// Maximum number of distinct patterns an automaton can report (accept sets
/// are stored as 64-bit masks).
inline constexpr std::size_t kMaxPatterns = 64;

class Nfa {
 public:
  struct Transition {
    dna::BaseSet on;
    StateId to = kInvalidState;
  };

  /// Adds a state; returns its id.
  StateId add_state();

  /// Adds a labelled transition from -> to on the given class.
  void add_transition(StateId from, dna::BaseSet on, StateId to);
  /// Adds an epsilon transition.
  void add_epsilon(StateId from, StateId to);
  /// Marks `s` accepting for pattern `pattern_id` (< kMaxPatterns).
  void set_accepting(StateId s, std::size_t pattern_id);

  void set_start(StateId s) { start_ = s; }
  [[nodiscard]] StateId start() const noexcept { return start_; }
  [[nodiscard]] std::size_t state_count() const noexcept { return transitions_.size(); }
  [[nodiscard]] const std::vector<Transition>& transitions(StateId s) const {
    return transitions_.at(s);
  }
  [[nodiscard]] const std::vector<StateId>& epsilons(StateId s) const {
    return epsilons_.at(s);
  }
  /// Bitmask of pattern ids accepted at `s` (0 when non-accepting).
  [[nodiscard]] std::uint64_t accept_mask(StateId s) const { return accept_mask_.at(s); }

  /// Epsilon closure of a state set (sorted, deduplicated).
  [[nodiscard]] std::vector<StateId> epsilon_closure(std::vector<StateId> states) const;

  /// Direct NFA simulation; returns the accept mask after consuming `text`
  /// tracking all live states (slow; used as a test oracle).
  [[nodiscard]] std::uint64_t simulate(std::string_view text) const;

 private:
  std::vector<std::vector<Transition>> transitions_;
  std::vector<std::vector<StateId>> epsilons_;
  std::vector<std::uint64_t> accept_mask_;
  StateId start_ = kInvalidState;
};

}  // namespace hetopt::automata
