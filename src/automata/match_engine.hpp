// MatchEngine: the scan engine as a first-class, swappable component.
//
// The repo owns three independent ways to execute a motif search — the
// compiled dense-DFA kernels (regex subset construction + minimization), the
// Aho–Corasick multi-pattern automaton, and the bit-parallel Shift-And
// matcher. Everything above the automata layer used to be hard-wired to the
// dense-DFA path; this interface lifts the engine into an axis the tuner can
// move through (opt::SystemConfig carries an EngineKind next to the
// thread/affinity knobs).
//
// The contract is chunk-aware: count_chunk(text, begin, end) counts the
// occurrences whose end positions lie in (begin, end], and the engine may
// read up to synchronization_bound()-1 bytes *before* begin to warm up —
// exactly the PaREM warm-up protocol, so chunked scans stay exact for motifs
// spanning chunk boundaries. Engines without a DFA behind them must declare a
// positive synchronization bound; DFA-backed engines additionally expose the
// automaton + lowered kernel so ParallelMatcher can unlock its speculative
// and multi-stream paths.
//
// lower()/try_lower() build the right engine for a motif set; engine_gap()
// reports applicability (AC needs literal ACGT patterns, Bitap needs <= 64
// summed pattern bits and no regex operators) without constructing anything.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/bitap.hpp"
#include "automata/compiled_dfa.hpp"
#include "automata/dense_dfa.hpp"
#include "automata/engine_kind.hpp"

namespace hetopt::automata {

class MatchEngine {
 public:
  virtual ~MatchEngine() = default;

  [[nodiscard]] virtual EngineKind kind() const noexcept = 0;
  [[nodiscard]] std::string_view name() const noexcept { return to_string(kind()); }

  /// Longest motif the engine matches: any scan state is fully determined by
  /// the previous synchronization_bound()-1 input bytes. 0 = unknown
  /// (unbounded patterns), allowed only for DFA-backed engines.
  [[nodiscard]] virtual std::size_t synchronization_bound() const noexcept = 0;
  [[nodiscard]] virtual std::size_t pattern_count() const noexcept = 0;

  /// Counts the occurrences whose end positions lie in (begin, end]. The
  /// engine may read text[begin - lead, begin) as warm-up context, where
  /// lead = min(synchronization_bound() - 1, begin). Throws
  /// std::invalid_argument on non-ACGT bytes in the scanned range.
  [[nodiscard]] virtual std::uint64_t count_chunk(std::string_view text, std::size_t begin,
                                                  std::size_t end) const = 0;

  /// Chunk-aware match collection: appends the events of (begin, end] to
  /// `out` (end offsets are global) and returns their occurrence count.
  /// Only valid when supports_collect().
  [[nodiscard]] virtual std::uint64_t collect_chunk(std::string_view text, std::size_t begin,
                                                    std::size_t end,
                                                    std::vector<Match>& out) const = 0;
  [[nodiscard]] virtual bool supports_collect() const noexcept { return true; }

  /// Whole-text sequential count/collect (chunk = everything).
  [[nodiscard]] std::uint64_t count(std::string_view text) const {
    return count_chunk(text, 0, text.size());
  }
  [[nodiscard]] std::uint64_t collect(std::string_view text, std::vector<Match>& out) const {
    return collect_chunk(text, 0, text.size(), out);
  }

  /// DFA-backed engines expose their automaton and lowered kernel so the
  /// chunk-parallel matcher can run its speculative / multi-stream kernels
  /// directly; generic engines return nullptr and are driven through the
  /// chunk-aware interface above.
  [[nodiscard]] virtual const DenseDfa* dfa() const noexcept { return nullptr; }
  [[nodiscard]] virtual const CompiledDfa* kernel() const noexcept { return nullptr; }
};

/// A DenseDfa (either the regex subset-construction product or the
/// Aho–Corasick table) owned by the engine and lowered into the compiled
/// kernels once at construction.
class DenseDfaEngine final : public MatchEngine {
 public:
  /// Takes ownership of `dfa`; `kind` records which construction produced it
  /// (kCompiledDfa or kAhoCorasick). Validates and lowers once.
  DenseDfaEngine(EngineKind kind, DenseDfa dfa);

  [[nodiscard]] EngineKind kind() const noexcept override { return kind_; }
  [[nodiscard]] std::size_t synchronization_bound() const noexcept override {
    return dfa_.synchronization_bound();
  }
  [[nodiscard]] std::size_t pattern_count() const noexcept override {
    return dfa_.pattern_count();
  }

  [[nodiscard]] std::uint64_t count_chunk(std::string_view text, std::size_t begin,
                                          std::size_t end) const override;
  [[nodiscard]] std::uint64_t collect_chunk(std::string_view text, std::size_t begin,
                                            std::size_t end,
                                            std::vector<Match>& out) const override;

  [[nodiscard]] const DenseDfa* dfa() const noexcept override { return &dfa_; }
  [[nodiscard]] const CompiledDfa* kernel() const noexcept override { return &kernel_; }

 private:
  /// The entry state for a chunk starting at `begin` (warm-up scan).
  [[nodiscard]] StateId entry_state(std::string_view text, std::size_t begin) const;

  EngineKind kind_;
  DenseDfa dfa_;
  CompiledDfa kernel_;
};

/// The bit-parallel Shift-And matcher as an engine. No tables, no DFA: the
/// whole pattern-set state is one 64-bit register, advanced with a shift,
/// two ANDs and a popcount per byte.
class BitapEngine final : public MatchEngine {
 public:
  /// Throws std::invalid_argument when BitapMatcher::supports() is false.
  explicit BitapEngine(const std::vector<std::string>& patterns);

  [[nodiscard]] EngineKind kind() const noexcept override { return EngineKind::kBitap; }
  [[nodiscard]] std::size_t synchronization_bound() const noexcept override {
    return matcher_.synchronization_bound();
  }
  [[nodiscard]] std::size_t pattern_count() const noexcept override {
    return matcher_.pattern_count();
  }

  [[nodiscard]] std::uint64_t count_chunk(std::string_view text, std::size_t begin,
                                          std::size_t end) const override;
  [[nodiscard]] std::uint64_t collect_chunk(std::string_view text, std::size_t begin,
                                            std::size_t end,
                                            std::vector<Match>& out) const override;

  [[nodiscard]] const BitapMatcher& matcher() const noexcept { return matcher_; }

 private:
  BitapMatcher matcher_;
};

/// Why `kind` cannot execute `motifs`, or the empty string when it can.
/// Purely syntactic (no automaton is built): AC requires literal ACGT
/// patterns, Bitap requires IUPAC-only patterns with <= 64 summed bits;
/// the compiled DFA accepts the full motif language.
[[nodiscard]] std::string engine_gap(EngineKind kind, const std::vector<std::string>& motifs);

/// Builds the engine of `kind` for `motifs`, or returns nullptr with the gap
/// reason in *why (when given) if the kind does not support the set.
/// `density_sample` — a representative slice of the corpus the engine will
/// scan (callers typically pass the first page) — feeds engines that tune
/// themselves to the input at lowering time; today only the prefiltered DFA
/// uses it (the density-aware skip cutoff). An empty sample keeps every
/// engine's static behavior.
[[nodiscard]] std::unique_ptr<const MatchEngine> try_lower(
    EngineKind kind, const std::vector<std::string>& motifs, std::string* why = nullptr,
    std::string_view density_sample = {});

/// Builds the engine of `kind` for `motifs`; throws std::invalid_argument
/// with the gap reason when the kind does not support the set.
[[nodiscard]] std::unique_ptr<const MatchEngine> lower(
    EngineKind kind, const std::vector<std::string>& motifs,
    std::string_view density_sample = {});

}  // namespace hetopt::automata
