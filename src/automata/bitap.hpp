// Bit-parallel multi-pattern matcher (multi-pattern Shift-And, Baeza-Yates &
// Gonnet / Wu-Manber style). This is the SIMD-flavoured counterpart of the
// table-driven DFA: one 64-bit word carries the match state of *all*
// patterns simultaneously, advancing with two ANDs, a shift and an OR per
// input byte — the same "wide registers do the work" idea the paper invokes
// for the Xeon Phi's 512-bit vector units, scaled to portable C++.
//
// Constraints: plain/IUPAC patterns without regex operators; the summed
// pattern lengths must fit in 64 bits. Match semantics are identical to the
// DFA engines (count every occurrence by end position; per-pattern ids).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "automata/dense_dfa.hpp"
#include "dna/alphabet.hpp"

namespace hetopt::automata {

class BitapMatcher {
 public:
  /// Compiles IUPAC patterns (classes allowed, no operators). Throws
  /// std::invalid_argument if a pattern is empty/invalid or the summed
  /// lengths exceed 64 bits.
  explicit BitapMatcher(const std::vector<std::string>& patterns);

  [[nodiscard]] std::size_t pattern_count() const noexcept { return final_masks_count_; }
  /// Longest pattern (the warm-up bound, like DenseDfa's).
  [[nodiscard]] std::size_t synchronization_bound() const noexcept { return max_len_; }

  /// Counts occurrences (every pattern, every end position).
  [[nodiscard]] std::uint64_t count(std::string_view text) const;

  /// Collects match events compatible with the DFA scanners.
  void collect(std::string_view text, std::size_t base_offset,
               std::vector<Match>& out) const;

  /// Resumable scanning: feeds `text` through state `d` (0 = fresh start),
  /// accumulating occurrences into `matches`. Enables chunked scans with a
  /// warm-up prefix, mirroring ParallelMatcher::kWarmup.
  [[nodiscard]] std::uint64_t scan(std::string_view text, std::uint64_t& d) const;

 private:
  // cls_mask_[base] has bit b set if pattern position b accepts `base`.
  std::uint64_t cls_mask_[dna::kAlphabetSize]{};
  std::uint64_t initial_ = 0;  // bits at each pattern's first position
  std::uint64_t final_ = 0;    // bits at each pattern's last position
  std::vector<std::uint64_t> final_bit_to_pattern_;  // map final-bit index -> pattern id
  std::size_t max_len_ = 0;
  std::size_t final_masks_count_ = 0;
};

}  // namespace hetopt::automata
