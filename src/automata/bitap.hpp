// Bit-parallel multi-pattern matcher (multi-pattern Shift-And, Baeza-Yates &
// Gonnet / Wu-Manber style). This is the SIMD-flavoured counterpart of the
// table-driven DFA: one 64-bit word carries the match state of *all*
// patterns simultaneously, advancing with two ANDs, a shift and an OR per
// input byte — the same "wide registers do the work" idea the paper invokes
// for the Xeon Phi's 512-bit vector units, scaled to portable C++.
//
// The hot loop is byte-fused like the compiled DFA kernels: class masks are
// expanded to a 256-entry byte table (both cases folded in), so counting
// runs with zero per-byte branches; invalid bytes are detected once per
// scanned range and reported with the original exception.
//
// Constraints: plain/IUPAC patterns without regex operators; the summed
// pattern lengths must fit in 64 bits — query supports() before
// constructing. Match semantics are identical to the DFA engines (count
// every occurrence by end position; per-pattern ids).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "automata/dense_dfa.hpp"
#include "dna/alphabet.hpp"

namespace hetopt::automata {

class BitapMatcher {
 public:
  /// Capability query: can this matcher execute `patterns`? False when the
  /// set is empty, a pattern is empty or contains a non-IUPAC character
  /// (regex operators included), or the summed lengths exceed 64 bits; the
  /// reason lands in *why when given. Callers (e.g. core::RealWorkload)
  /// check this instead of catching the constructor's exception.
  [[nodiscard]] static bool supports(const std::vector<std::string>& patterns,
                                     std::string* why = nullptr);

  /// Compiles IUPAC patterns (classes allowed, no operators). Throws
  /// std::invalid_argument exactly when supports() is false.
  explicit BitapMatcher(const std::vector<std::string>& patterns);

  [[nodiscard]] std::size_t pattern_count() const noexcept { return final_masks_count_; }
  /// Longest pattern (the warm-up bound, like DenseDfa's).
  [[nodiscard]] std::size_t synchronization_bound() const noexcept { return max_len_; }

  /// Counts occurrences (every pattern, every end position).
  [[nodiscard]] std::uint64_t count(std::string_view text) const;

  /// Collects match events compatible with the DFA scanners, scanning from
  /// `entry_state` (0 = fresh start; pass a warmed state for chunked scans).
  /// Returns the occurrence count of the collected events. Like count(),
  /// invalid bytes are detected branch-free during the scan and reported
  /// once at the end — on throw, the contents appended to `out` are
  /// unspecified partial output.
  std::uint64_t collect(std::string_view text, std::size_t base_offset,
                        std::vector<Match>& out, std::uint64_t entry_state = 0) const;

  /// Resumable scanning: feeds `text` through state `d` (0 = fresh start),
  /// accumulating occurrences into the return value. Enables chunked scans
  /// with a warm-up prefix, mirroring ParallelMatcher::kWarmup.
  [[nodiscard]] std::uint64_t scan(std::string_view text, std::uint64_t& d) const;

  /// Read-only view of the compiled tables for the vector kernels in
  /// src/automata/simd/, which run the same recurrence one sub-stream per
  /// lane. The pointers alias this matcher and share its lifetime.
  struct Tables {
    const std::uint64_t* byte_mask;  // [256]
    const std::uint8_t* byte_ok;     // [256]
    std::uint64_t initial;
    std::uint64_t final;
  };
  [[nodiscard]] Tables tables() const noexcept {
    return Tables{byte_mask_, byte_ok_, initial_, final_};
  }

 private:
  /// Locates the first invalid byte of `text` and throws the matcher's
  /// exception for it.
  [[noreturn]] void throw_invalid(std::string_view text) const;

  // byte_mask_[byte] has bit b set if pattern position b accepts the base the
  // byte decodes to (upper and lower case folded in); invalid bytes map to 0
  // and are flagged in byte_ok_ (a zero mask alone is legal for valid bases).
  std::uint64_t byte_mask_[256] = {};
  std::uint8_t byte_ok_[256] = {};
  std::uint64_t initial_ = 0;  // bits at each pattern's first position
  std::uint64_t final_ = 0;    // bits at each pattern's last position
  std::vector<std::uint64_t> final_bit_to_pattern_;  // map final-bit index -> pattern id
  std::size_t max_len_ = 0;
  std::size_t final_masks_count_ = 0;
};

}  // namespace hetopt::automata
