#include "automata/match_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "automata/aho_corasick.hpp"
#include "automata/hopcroft.hpp"
#include "automata/regex.hpp"
#include "automata/simd_engine.hpp"
#include "automata/subset.hpp"
#include "dna/alphabet.hpp"

namespace hetopt::automata {

// --- DenseDfaEngine ---------------------------------------------------------

DenseDfaEngine::DenseDfaEngine(EngineKind kind, DenseDfa dfa)
    : kind_(kind), dfa_(std::move(dfa)), kernel_(dfa_) {}

StateId DenseDfaEngine::entry_state(std::string_view text, std::size_t begin) const {
  if (begin == 0) return kernel_.start();
  // Bounded automata synchronize within bound-1 bytes; unbounded ones must
  // replay the whole prefix (begin bytes) to derive the true entry state.
  const std::size_t bound = dfa_.synchronization_bound();
  const std::size_t lead = bound > 0 ? std::min(bound - 1, begin) : begin;
  if (lead == 0) return kernel_.start();
  return kernel_.count(text.substr(begin - lead, lead), kernel_.start()).final_state;
}

std::uint64_t DenseDfaEngine::count_chunk(std::string_view text, std::size_t begin,
                                          std::size_t end) const {
  return kernel_.count(text.substr(begin, end - begin), entry_state(text, begin))
      .match_count;
}

std::uint64_t DenseDfaEngine::collect_chunk(std::string_view text, std::size_t begin,
                                            std::size_t end, std::vector<Match>& out) const {
  return kernel_
      .collect(text.substr(begin, end - begin), entry_state(text, begin), begin, out)
      .match_count;
}

// --- BitapEngine ------------------------------------------------------------

BitapEngine::BitapEngine(const std::vector<std::string>& patterns) : matcher_(patterns) {}

std::uint64_t BitapEngine::count_chunk(std::string_view text, std::size_t begin,
                                       std::size_t end) const {
  std::uint64_t state = 0;
  const std::size_t lead = std::min(matcher_.synchronization_bound() - 1, begin);
  if (lead > 0) (void)matcher_.scan(text.substr(begin - lead, lead), state);
  return matcher_.scan(text.substr(begin, end - begin), state);
}

std::uint64_t BitapEngine::collect_chunk(std::string_view text, std::size_t begin,
                                         std::size_t end, std::vector<Match>& out) const {
  std::uint64_t state = 0;
  const std::size_t lead = std::min(matcher_.synchronization_bound() - 1, begin);
  if (lead > 0) (void)matcher_.scan(text.substr(begin - lead, lead), state);
  return matcher_.collect(text.substr(begin, end - begin), begin, out, state);
}

// --- Applicability + factory ------------------------------------------------

std::string engine_gap(EngineKind kind, const std::vector<std::string>& motifs) {
  if (motifs.empty()) return "no motifs";
  switch (kind) {
    case EngineKind::kCompiledDfa:
      // The full motif language; syntax errors surface from compile_motifs.
      return "";
    case EngineKind::kAhoCorasick:
      for (const std::string& m : motifs) {
        if (m.empty()) return "empty pattern";
        for (const char c : m) {
          if (!dna::base_from_char(c)) {
            return "pattern '" + m + "' is not a literal ACGT string ('" +
                   std::string(1, c) + "')";
          }
        }
      }
      return "";
    case EngineKind::kBitap:
    case EngineKind::kBitapSimd: {
      // The SIMD variant executes the same recurrence, so it carries exactly
      // the scalar matcher's applicability.
      std::string why;
      if (!BitapMatcher::supports(motifs, &why)) return why;
      return "";
    }
    case EngineKind::kPrefilterDfa:
      // The prefilter warms up per chunk, which needs a positive
      // synchronization bound: no unbounded operators.
      for (const std::string& m : motifs) {
        for (const char c : m) {
          if (c == '*' || c == '+') {
            return "pattern '" + m + "' uses the unbounded operator '" +
                   std::string(1, c) +
                   "' (no synchronization bound for the prefilter warm-up)";
          }
        }
      }
      return "";
  }
  return "unknown engine kind";
}

std::unique_ptr<const MatchEngine> try_lower(EngineKind kind,
                                             const std::vector<std::string>& motifs,
                                             std::string* why,
                                             std::string_view density_sample) {
  std::string gap = engine_gap(kind, motifs);
  if (!gap.empty()) {
    if (why != nullptr) *why = std::move(gap);
    return nullptr;
  }
  switch (kind) {
    case EngineKind::kCompiledDfa: {
      const CompiledMotifs compiled = compile_motifs(motifs);
      return std::make_unique<DenseDfaEngine>(
          kind, minimize(determinize(compiled.nfa, compiled.synchronization_bound)));
    }
    case EngineKind::kAhoCorasick:
      return std::make_unique<DenseDfaEngine>(kind, build_aho_corasick(motifs));
    case EngineKind::kBitap:
      return std::make_unique<BitapEngine>(motifs);
    case EngineKind::kBitapSimd:
      return std::make_unique<BitapSimdEngine>(motifs);
    case EngineKind::kPrefilterDfa:
      return std::make_unique<PrefilterDfaEngine>(motifs, std::nullopt, density_sample);
  }
  return nullptr;
}

std::unique_ptr<const MatchEngine> lower(EngineKind kind,
                                         const std::vector<std::string>& motifs,
                                         std::string_view density_sample) {
  std::string why;
  auto engine = try_lower(kind, motifs, &why, density_sample);
  if (engine == nullptr) {
    throw std::invalid_argument("lower: engine '" + std::string(to_string(kind)) +
                                "' cannot execute the motif set: " + why);
  }
  return engine;
}

}  // namespace hetopt::automata
