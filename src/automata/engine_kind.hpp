// The match-engine vocabulary: which scan-engine implementation executes the
// motif search. This is a *tuned axis* — opt::SystemConfig carries one of
// these values next to the thread/affinity knobs, so the optimizers can
// discover that a different engine wins for a given motif set or genome.
//
// Kept in its own header (enum + string helpers only) so the opt layer can
// name engines without depending on the automata machinery behind them.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace hetopt::automata {

enum class EngineKind {
  /// IUPAC regex -> NFA -> subset construction -> Hopcroft minimization,
  /// lowered into the compiled scan kernels (compiled_dfa.hpp). Handles the
  /// full motif language; the default and the only pre-engine-axis behavior.
  kCompiledDfa = 0,
  /// Aho–Corasick multi-pattern automaton (aho_corasick.hpp), emitted as a
  /// dense table and lowered into the same kernels. Literal ACGT motif sets
  /// only; skips subset construction and minimization entirely.
  kAhoCorasick = 1,
  /// Bit-parallel Shift-And (bitap.hpp): the whole pattern-set state lives in
  /// one 64-bit register, no transition tables. IUPAC classes allowed, no
  /// regex operators, summed pattern lengths <= 64.
  kBitap = 2,
};

inline constexpr std::size_t kEngineKindCount = 3;
inline constexpr std::array<EngineKind, kEngineKindCount> kAllEngineKinds{
    EngineKind::kCompiledDfa, EngineKind::kAhoCorasick, EngineKind::kBitap};

[[nodiscard]] constexpr std::string_view to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kCompiledDfa: return "compiled-dfa";
    case EngineKind::kAhoCorasick: return "aho-corasick";
    case EngineKind::kBitap: return "bitap";
  }
  return "?";
}

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] constexpr std::optional<EngineKind> engine_kind_from_string(
    std::string_view name) noexcept {
  for (const EngineKind kind : kAllEngineKinds) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

}  // namespace hetopt::automata
