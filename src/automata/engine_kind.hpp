// The match-engine vocabulary: which scan-engine implementation executes the
// motif search. This is a *tuned axis* — opt::SystemConfig carries one of
// these values next to the thread/affinity knobs, so the optimizers can
// discover that a different engine wins for a given motif set or genome.
//
// Kept in its own header (enum + string helpers only) so the opt layer can
// name engines without depending on the automata machinery behind them.
#pragma once

#include <array>
#include <optional>
#include <string_view>

namespace hetopt::automata {

enum class EngineKind {
  /// IUPAC regex -> NFA -> subset construction -> Hopcroft minimization,
  /// lowered into the compiled scan kernels (compiled_dfa.hpp). Handles the
  /// full motif language; the default and the only pre-engine-axis behavior.
  kCompiledDfa = 0,
  /// Aho–Corasick multi-pattern automaton (aho_corasick.hpp), emitted as a
  /// dense table and lowered into the same kernels. Literal ACGT motif sets
  /// only; skips subset construction and minimization entirely.
  kAhoCorasick = 1,
  /// Bit-parallel Shift-And (bitap.hpp): the whole pattern-set state lives in
  /// one 64-bit register, no transition tables. IUPAC classes allowed, no
  /// regex operators, summed pattern lengths <= 64.
  kBitap = 2,
  /// Vectorized Shift-And (simd_engine.hpp): the bitap recurrence run one
  /// chunk sub-stream per vector lane, with runtime ISA dispatch
  /// (scalar/SSE2/AVX2 — see src/automata/simd/). Same applicability as
  /// kBitap; bit-identical counts and positions.
  kBitapSimd = 3,
  /// Compiled-DFA scan behind a vectorized byte-class prefilter
  /// (simd_engine.hpp): SIMD-skips runs of bytes that cannot leave the DFA
  /// start state before the fused inner loop runs. Needs a positive
  /// synchronization bound, so no unbounded operators ('*'/'+').
  kPrefilterDfa = 4,
};

inline constexpr std::size_t kEngineKindCount = 5;
inline constexpr std::array<EngineKind, kEngineKindCount> kAllEngineKinds{
    EngineKind::kCompiledDfa, EngineKind::kAhoCorasick, EngineKind::kBitap,
    EngineKind::kBitapSimd, EngineKind::kPrefilterDfa};

[[nodiscard]] constexpr std::string_view to_string(EngineKind kind) noexcept {
  switch (kind) {
    case EngineKind::kCompiledDfa: return "compiled-dfa";
    case EngineKind::kAhoCorasick: return "aho-corasick";
    case EngineKind::kBitap: return "bitap";
    case EngineKind::kBitapSimd: return "bitap-simd";
    case EngineKind::kPrefilterDfa: return "prefilter-dfa";
  }
  return "?";
}

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] constexpr std::optional<EngineKind> engine_kind_from_string(
    std::string_view name) noexcept {
  for (const EngineKind kind : kAllEngineKinds) {
    if (to_string(kind) == name) return kind;
  }
  return std::nullopt;
}

}  // namespace hetopt::automata
