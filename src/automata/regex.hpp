// Compiler from a motif expression language to a Thompson NFA.
//
// The language is a regex subset over IUPAC nucleotide classes, sufficient
// for the motif searches the paper's DNA application performs (PaREM is a
// "parallel regular expression matching" engine):
//
//   expr    := term ('|' term)*
//   term    := factor*
//   factor  := atom ('?' | '*' | '+')?
//   atom    := IUPAC-char | '(' expr ')'
//
// Examples: "TATAWAW", "GGG(ACG)?TTT", "GC(N)*GC", "CCWGG|GGWCC".
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "automata/nfa.hpp"

namespace hetopt::automata {

/// Length metadata of a compiled expression: [min_len, max_len]; max_len of
/// SIZE_MAX means unbounded ('*' or '+' present).
struct LengthRange {
  std::size_t min_len = 0;
  std::size_t max_len = 0;
  static constexpr std::size_t kUnbounded = static_cast<std::size_t>(-1);
};

/// A set of motif patterns compiled into one NFA that recognizes
/// "Σ* (p_0 | ... | p_{k-1})", with accepting states tagged by pattern index.
/// Scanning the resulting automaton over a text reports, at every position,
/// which patterns end there.
struct CompiledMotifs {
  Nfa nfa;
  std::vector<LengthRange> lengths;  // per pattern
  /// Longest bounded pattern, or 0 when any pattern is unbounded. This is the
  /// synchronization bound used by the chunk-parallel matcher.
  std::size_t synchronization_bound = 0;
};

/// Compiles the given motif expressions (at most kMaxPatterns). Throws
/// std::invalid_argument with a position-annotated message on syntax errors.
[[nodiscard]] CompiledMotifs compile_motifs(const std::vector<std::string>& patterns);

}  // namespace hetopt::automata
