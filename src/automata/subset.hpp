// Subset construction: determinizes a (motif) NFA into a DenseDfa.
#pragma once

#include "automata/dense_dfa.hpp"
#include "automata/nfa.hpp"

namespace hetopt::automata {

/// Determinizes `nfa`. The resulting DFA's accept mask at a state is the OR
/// of the NFA accept masks of its member states, and accept_count is the
/// popcount of that mask (one occurrence per pattern per end position).
/// `synchronization_bound` is copied into the result as matcher metadata.
[[nodiscard]] DenseDfa determinize(const Nfa& nfa, std::size_t synchronization_bound = 0);

}  // namespace hetopt::automata
