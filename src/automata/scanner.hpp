// Sequential scanning primitives over a DenseDfa. These are the inner loops
// every matcher (and the real DNA application kernel) runs.
//
// Two implementations coexist:
//  - scan_count / scan_collect transparently dispatch long inputs to the
//    compiled kernels (automata/compiled_dfa.hpp) — byte-fused transition
//    tables with no per-byte decode branch or bounds check — and keep the
//    simple loop for short inputs, where building the tables would not pay.
//  - scan_count_naive / scan_collect_naive are the original per-byte
//    reference loops, kept as the oracle the kernels are property-tested
//    against and as the baseline the scan_kernel bench suite reports
//    speedups over.
// Both produce byte-identical results, including the exception raised on the
// first non-ACGT character.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/dense_dfa.hpp"

namespace hetopt::automata {

/// Result of scanning a text range.
struct ScanResult {
  StateId final_state = 0;
  std::uint64_t match_count = 0;  // occurrences (sum of accept counts)
};

/// Scans `text` from `state`, summing accept counts at every position.
/// Throws std::invalid_argument on non-ACGT characters.
[[nodiscard]] ScanResult scan_count(const DenseDfa& dfa, std::string_view text,
                                    StateId state);

/// Convenience: scan from the start state.
[[nodiscard]] inline std::uint64_t count_matches(const DenseDfa& dfa, std::string_view text) {
  return scan_count(dfa, text, dfa.start()).match_count;
}

/// Scans and records every match event. `base_offset` is added to reported
/// end positions so chunked callers can report global offsets.
[[nodiscard]] ScanResult scan_collect(const DenseDfa& dfa, std::string_view text,
                                      StateId state, std::size_t base_offset,
                                      std::vector<Match>& out);

/// The seed per-byte reference loop behind scan_count (decode + step + accept
/// per byte). Oracle for property tests, baseline for the kernel bench.
[[nodiscard]] ScanResult scan_count_naive(const DenseDfa& dfa, std::string_view text,
                                          StateId state);

/// The seed per-byte reference loop behind scan_collect.
[[nodiscard]] ScanResult scan_collect_naive(const DenseDfa& dfa, std::string_view text,
                                            StateId state, std::size_t base_offset,
                                            std::vector<Match>& out);

/// Naive oracle: counts occurrences of literal `pattern` in `text` by direct
/// comparison (overlapping occurrences included). Used by property tests.
[[nodiscard]] std::uint64_t naive_count(std::string_view text, std::string_view pattern);

}  // namespace hetopt::automata
