// Sequential scanning primitives over a DenseDfa. These are the inner loops
// every matcher (and the real DNA application kernel) runs.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/dense_dfa.hpp"

namespace hetopt::automata {

/// Result of scanning a text range.
struct ScanResult {
  StateId final_state = 0;
  std::uint64_t match_count = 0;  // occurrences (sum of accept counts)
};

/// Scans `text` from `state`, summing accept counts at every position.
/// Throws std::invalid_argument on non-ACGT characters.
[[nodiscard]] ScanResult scan_count(const DenseDfa& dfa, std::string_view text,
                                    StateId state);

/// Convenience: scan from the start state.
[[nodiscard]] inline std::uint64_t count_matches(const DenseDfa& dfa, std::string_view text) {
  return scan_count(dfa, text, dfa.start()).match_count;
}

/// Scans and records every match event. `base_offset` is added to reported
/// end positions so chunked callers can report global offsets.
[[nodiscard]] ScanResult scan_collect(const DenseDfa& dfa, std::string_view text,
                                      StateId state, std::size_t base_offset,
                                      std::vector<Match>& out);

/// Naive oracle: counts occurrences of literal `pattern` in `text` by direct
/// comparison (overlapping occurrences included). Used by property tests.
[[nodiscard]] std::uint64_t naive_count(std::string_view text, std::string_view pattern);

}  // namespace hetopt::automata
