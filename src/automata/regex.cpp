#include "automata/regex.hpp"

#include <algorithm>
#include <stdexcept>

namespace hetopt::automata {

namespace {

/// An NFA fragment under construction: entry state and a single exit state
/// (Thompson construction keeps one of each by inserting epsilons).
struct Fragment {
  StateId entry = kInvalidState;
  StateId exit = kInvalidState;
  LengthRange len;
};

constexpr std::size_t kUnb = LengthRange::kUnbounded;

[[nodiscard]] std::size_t add_len(std::size_t a, std::size_t b) noexcept {
  return (a == kUnb || b == kUnb) ? kUnb : a + b;
}

class Parser {
 public:
  Parser(std::string_view pattern, Nfa& nfa) : pattern_(pattern), nfa_(nfa) {}

  Fragment parse() {
    if (pattern_.empty()) fail("empty pattern");
    Fragment f = parse_expr();
    if (pos_ != pattern_.size()) fail("unexpected character");
    return f;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("motif '" + std::string(pattern_) + "': " + what +
                                " at position " + std::to_string(pos_));
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= pattern_.size(); }
  [[nodiscard]] char peek() const noexcept { return pattern_[pos_]; }

  Fragment parse_expr() {
    Fragment first = parse_term();
    if (eof() || peek() != '|') return first;
    // Alternation: fresh entry/exit with epsilons to/from each branch.
    const StateId entry = nfa_.add_state();
    const StateId exit = nfa_.add_state();
    nfa_.add_epsilon(entry, first.entry);
    nfa_.add_epsilon(first.exit, exit);
    LengthRange len = first.len;
    while (!eof() && peek() == '|') {
      ++pos_;
      Fragment branch = parse_term();
      nfa_.add_epsilon(entry, branch.entry);
      nfa_.add_epsilon(branch.exit, exit);
      len.min_len = std::min(len.min_len, branch.len.min_len);
      len.max_len = (len.max_len == kUnb || branch.len.max_len == kUnb)
                        ? kUnb
                        : std::max(len.max_len, branch.len.max_len);
    }
    return Fragment{entry, exit, len};
  }

  Fragment parse_term() {
    // A term may be empty (e.g. "(|A)"): create a pass-through fragment.
    Fragment acc;
    acc.entry = nfa_.add_state();
    acc.exit = acc.entry;
    acc.len = LengthRange{0, 0};
    while (!eof() && peek() != '|' && peek() != ')') {
      Fragment f = parse_factor();
      nfa_.add_epsilon(acc.exit, f.entry);
      acc.exit = f.exit;
      acc.len.min_len = add_len(acc.len.min_len, f.len.min_len);
      acc.len.max_len = add_len(acc.len.max_len, f.len.max_len);
    }
    return acc;
  }

  Fragment parse_factor() {
    Fragment atom = parse_atom();
    if (eof()) return atom;
    const char op = peek();
    if (op != '?' && op != '*' && op != '+') return atom;
    ++pos_;
    const StateId entry = nfa_.add_state();
    const StateId exit = nfa_.add_state();
    nfa_.add_epsilon(entry, atom.entry);
    nfa_.add_epsilon(atom.exit, exit);
    LengthRange len = atom.len;
    if (op == '?' || op == '*') {
      nfa_.add_epsilon(entry, exit);
      len.min_len = 0;
    }
    if (op == '*' || op == '+') {
      nfa_.add_epsilon(atom.exit, atom.entry);
      len.max_len = (atom.len.max_len == 0) ? 0 : kUnb;
    }
    return Fragment{entry, exit, len};
  }

  Fragment parse_atom() {
    if (eof()) fail("expected atom");
    const char c = peek();
    if (c == '(') {
      ++pos_;
      Fragment inner = parse_expr();
      if (eof() || peek() != ')') fail("missing ')'");
      ++pos_;
      return inner;
    }
    if (c == ')' || c == '|' || c == '?' || c == '*' || c == '+') fail("unexpected operator");
    const auto cls = dna::iupac_from_char(c);
    if (!cls) fail("invalid IUPAC character '" + std::string(1, c) + "'");
    ++pos_;
    const StateId entry = nfa_.add_state();
    const StateId exit = nfa_.add_state();
    nfa_.add_transition(entry, *cls, exit);
    return Fragment{entry, exit, LengthRange{1, 1}};
  }

  std::string_view pattern_;
  Nfa& nfa_;
  std::size_t pos_ = 0;
};

}  // namespace

CompiledMotifs compile_motifs(const std::vector<std::string>& patterns) {
  if (patterns.empty()) throw std::invalid_argument("compile_motifs: no patterns");
  if (patterns.size() > kMaxPatterns) {
    throw std::invalid_argument("compile_motifs: more than " +
                                std::to_string(kMaxPatterns) + " patterns");
  }
  CompiledMotifs out;
  Nfa& nfa = out.nfa;

  // Σ* prefix: start state loops on every base, then forks into each pattern.
  const StateId start = nfa.add_state();
  nfa.set_start(start);
  nfa.add_transition(start, dna::BaseSet::all(), start);

  std::size_t sync = 0;
  bool bounded = true;
  for (std::size_t i = 0; i < patterns.size(); ++i) {
    Parser parser(patterns[i], nfa);
    const Fragment frag = parser.parse();
    if (frag.len.min_len == 0) {
      throw std::invalid_argument("motif '" + patterns[i] +
                                  "': may match the empty string, which is not a "
                                  "meaningful motif");
    }
    nfa.add_epsilon(start, frag.entry);
    nfa.set_accepting(frag.exit, i);
    out.lengths.push_back(frag.len);
    if (frag.len.max_len == LengthRange::kUnbounded) {
      bounded = false;
    } else {
      sync = std::max(sync, frag.len.max_len);
    }
  }
  out.synchronization_bound = bounded ? sync : 0;
  return out;
}

}  // namespace hetopt::automata
