#include "automata/bitap.hpp"

#include <bit>
#include <stdexcept>

namespace hetopt::automata {

BitapMatcher::BitapMatcher(const std::vector<std::string>& patterns) {
  if (patterns.empty()) throw std::invalid_argument("BitapMatcher: no patterns");

  std::size_t total_bits = 0;
  for (const std::string& p : patterns) total_bits += p.size();
  if (total_bits == 0) throw std::invalid_argument("BitapMatcher: empty pattern");
  if (total_bits > 64) {
    throw std::invalid_argument("BitapMatcher: summed pattern lengths " +
                                std::to_string(total_bits) + " exceed 64 bits");
  }

  final_bit_to_pattern_.assign(64, 0);
  std::size_t bit = 0;
  for (std::size_t pid = 0; pid < patterns.size(); ++pid) {
    const std::string& p = patterns[pid];
    if (p.empty()) throw std::invalid_argument("BitapMatcher: empty pattern");
    initial_ |= (1ULL << bit);
    for (std::size_t i = 0; i < p.size(); ++i, ++bit) {
      const auto cls = dna::iupac_from_char(p[i]);
      if (!cls) {
        throw std::invalid_argument("BitapMatcher: invalid IUPAC character in '" + p + "'");
      }
      for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
        if (cls->contains(static_cast<dna::Base>(b))) {
          cls_mask_[b] |= (1ULL << bit);
        }
      }
    }
    final_ |= (1ULL << (bit - 1));
    final_bit_to_pattern_[bit - 1] = pid;
    max_len_ = std::max(max_len_, p.size());
  }
  final_masks_count_ = patterns.size();

  // A final bit shifting left lands on the next pattern's initial bit; since
  // substring search restarts every pattern at every position, that bit is
  // OR-ed in anyway, so adjacent packing needs no separator bits.
}

std::uint64_t BitapMatcher::scan(std::string_view text, std::uint64_t& d) const {
  std::uint64_t count = 0;
  std::uint64_t state = d;
  for (char c : text) {
    const auto base = dna::base_from_char(c);
    if (!base) {
      throw std::invalid_argument("BitapMatcher: invalid base '" + std::string(1, c) + "'");
    }
    // Shift-And step: advance every live prefix by one position, restart all
    // patterns at their initial bit, keep only positions whose class accepts
    // the current character.
    state = ((state << 1) | initial_) & cls_mask_[static_cast<std::size_t>(*base)];
    count += static_cast<std::uint64_t>(std::popcount(state & final_));
  }
  d = state;
  return count;
}

std::uint64_t BitapMatcher::count(std::string_view text) const {
  std::uint64_t state = 0;
  return scan(text, state);
}

void BitapMatcher::collect(std::string_view text, std::size_t base_offset,
                           std::vector<Match>& out) const {
  std::uint64_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const auto base = dna::base_from_char(text[i]);
    if (!base) {
      throw std::invalid_argument("BitapMatcher: invalid base '" +
                                  std::string(1, text[i]) + "'");
    }
    state = ((state << 1) | initial_) & cls_mask_[static_cast<std::size_t>(*base)];
    std::uint64_t hits = state & final_;
    if (hits != 0) {
      std::uint64_t pattern_mask = 0;
      while (hits != 0) {
        const int bit = std::countr_zero(hits);
        const std::uint64_t pid = final_bit_to_pattern_[static_cast<std::size_t>(bit)];
        if (pid < kMaxPatterns) pattern_mask |= (1ULL << pid);
        hits &= hits - 1;
      }
      out.push_back(Match{base_offset + i + 1, pattern_mask});
    }
  }
}

}  // namespace hetopt::automata
