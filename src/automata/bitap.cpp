#include "automata/bitap.hpp"

#include <bit>
#include <stdexcept>

namespace hetopt::automata {

bool BitapMatcher::supports(const std::vector<std::string>& patterns, std::string* why) {
  const auto fail = [&](std::string reason) {
    if (why != nullptr) *why = std::move(reason);
    return false;
  };
  if (patterns.empty()) return fail("no patterns");
  std::size_t total_bits = 0;
  for (const std::string& p : patterns) {
    if (p.empty()) return fail("empty pattern");
    for (const char c : p) {
      if (!dna::iupac_from_char(c)) {
        return fail("pattern '" + p + "' contains non-IUPAC character '" +
                    std::string(1, c) + "'");
      }
    }
    total_bits += p.size();
  }
  if (total_bits > 64) {
    return fail("summed pattern lengths " + std::to_string(total_bits) +
                " exceed 64 bits");
  }
  return true;
}

BitapMatcher::BitapMatcher(const std::vector<std::string>& patterns) {
  std::string why;
  if (!supports(patterns, &why)) throw std::invalid_argument("BitapMatcher: " + why);

  std::uint64_t cls_mask[dna::kAlphabetSize] = {};
  final_bit_to_pattern_.assign(64, 0);
  std::size_t bit = 0;
  for (std::size_t pid = 0; pid < patterns.size(); ++pid) {
    const std::string& p = patterns[pid];
    initial_ |= (1ULL << bit);
    for (std::size_t i = 0; i < p.size(); ++i, ++bit) {
      const auto cls = dna::iupac_from_char(p[i]);
      for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
        if (cls->contains(static_cast<dna::Base>(b))) {
          cls_mask[b] |= (1ULL << bit);
        }
      }
    }
    final_ |= (1ULL << (bit - 1));
    final_bit_to_pattern_[bit - 1] = pid;
    max_len_ = std::max(max_len_, p.size());
  }
  final_masks_count_ = patterns.size();

  // Fuse the ACGT decode into a byte-indexed table so the scan loop carries
  // no per-byte branch; invalid bytes keep a zero mask and are detected via
  // byte_ok_ once per scanned range.
  for (unsigned byte = 0; byte < 256; ++byte) {
    const auto base = dna::base_from_char(static_cast<char>(byte));
    if (base) {
      byte_mask_[byte] = cls_mask[static_cast<std::size_t>(*base)];
      byte_ok_[byte] = 1;
    }
  }

  // A final bit shifting left lands on the next pattern's initial bit; since
  // substring search restarts every pattern at every position, that bit is
  // OR-ed in anyway, so adjacent packing needs no separator bits.
}

void BitapMatcher::throw_invalid(std::string_view text) const {
  // The cold path the kernels dispatch to once per failing scan; re-walking
  // the text to name the first offending byte is fine here, and the loop's
  // throw is the designated exception to the kernel-throw rule.
  for (const char c : text) {
    if (!byte_ok_[static_cast<unsigned char>(c)]) {
      throw std::invalid_argument("BitapMatcher: invalid base '" +  // hetopt-lint: allow(kernel-throw)
                                  std::string(1, c) + "'");
    }
  }
  throw std::logic_error("BitapMatcher: throw_invalid on valid input");
}

std::uint64_t BitapMatcher::scan(std::string_view text, std::uint64_t& d) const {
  std::uint64_t count = 0;
  std::uint64_t state = d;
  std::size_t bad = 0;
  for (const char c : text) {
    const auto byte = static_cast<unsigned char>(c);
    bad += static_cast<std::size_t>(byte_ok_[byte] ^ 1U);
    // Shift-And step: advance every live prefix by one position, restart all
    // patterns at their initial bit, keep only positions whose class accepts
    // the current character.
    state = ((state << 1) | initial_) & byte_mask_[byte];
    count += static_cast<std::uint64_t>(std::popcount(state & final_));
  }
  if (bad != 0) throw_invalid(text);
  d = state;
  return count;
}

std::uint64_t BitapMatcher::count(std::string_view text) const {
  std::uint64_t state = 0;
  return scan(text, state);
}

std::uint64_t BitapMatcher::collect(std::string_view text, std::size_t base_offset,
                                    std::vector<Match>& out,
                                    std::uint64_t entry_state) const {
  std::uint64_t count = 0;
  std::uint64_t state = entry_state;
  std::size_t bad = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const auto byte = static_cast<unsigned char>(text[i]);
    // Same deferred invalid-byte detection as scan(): no throw in the loop
    // (the kernel-throw lint rule), one cold report after it. An invalid
    // byte's mask is 0, so it kills every live prefix and cannot create a
    // false match; whatever lands in `out` is discarded by the throw below.
    bad += static_cast<std::size_t>(byte_ok_[byte] ^ 1U);
    state = ((state << 1) | initial_) & byte_mask_[byte];
    std::uint64_t hits = state & final_;
    if (hits != 0) {
      count += static_cast<std::uint64_t>(std::popcount(hits));
      std::uint64_t pattern_mask = 0;
      while (hits != 0) {
        const int bit = std::countr_zero(hits);
        const std::uint64_t pid = final_bit_to_pattern_[static_cast<std::size_t>(bit)];
        if (pid < kMaxPatterns) pattern_mask |= (1ULL << pid);
        hits &= hits - 1;
      }
      out.push_back(Match{base_offset + i + 1, pattern_mask});
    }
  }
  if (bad != 0) throw_invalid(text);
  return count;
}

}  // namespace hetopt::automata
