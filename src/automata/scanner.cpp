#include "automata/scanner.hpp"

#include <stdexcept>

#include "automata/compiled_dfa.hpp"

namespace hetopt::automata {

namespace {

[[nodiscard]] dna::Base require_base(char c) {
  const auto b = dna::base_from_char(c);
  if (!b) {
    throw std::invalid_argument("scan: invalid base '" + std::string(1, c) + "'");
  }
  return *b;
}

/// Lowering the automaton costs a few hundred table writes per state (plus
/// allocations), paid on *every* call here; only scans long enough to
/// amortize that with a wide margin take the compiled path. Callers that
/// scan the same automaton repeatedly should hold a CompiledDfa (or a
/// ParallelMatcher, which lowers once) instead.
[[nodiscard]] bool worth_compiling(const DenseDfa& dfa, std::string_view text) {
  return text.size() >= 4096 && text.size() >= 128 * dfa.state_count();
}

}  // namespace

ScanResult scan_count(const DenseDfa& dfa, std::string_view text, StateId state) {
  if (state >= dfa.state_count()) throw std::out_of_range("scan_count: bad state");
  if (worth_compiling(dfa, text)) return CompiledDfa(dfa).count(text, state);
  return scan_count_naive(dfa, text, state);
}

ScanResult scan_collect(const DenseDfa& dfa, std::string_view text, StateId state,
                        std::size_t base_offset, std::vector<Match>& out) {
  if (state >= dfa.state_count()) throw std::out_of_range("scan_collect: bad state");
  if (worth_compiling(dfa, text)) {
    return CompiledDfa(dfa).collect(text, state, base_offset, out);
  }
  return scan_collect_naive(dfa, text, state, base_offset, out);
}

ScanResult scan_count_naive(const DenseDfa& dfa, std::string_view text, StateId state) {
  if (state >= dfa.state_count()) throw std::out_of_range("scan_count: bad state");
  std::uint64_t count = 0;
  for (char c : text) {
    state = dfa.step(state, require_base(c));
    count += dfa.accept_count(state);
  }
  return ScanResult{state, count};
}

ScanResult scan_collect_naive(const DenseDfa& dfa, std::string_view text, StateId state,
                              std::size_t base_offset, std::vector<Match>& out) {
  if (state >= dfa.state_count()) throw std::out_of_range("scan_collect: bad state");
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = dfa.step(state, require_base(text[i]));
    const std::uint32_t c = dfa.accept_count(state);
    if (c != 0) {
      count += c;
      out.push_back(Match{base_offset + i + 1, dfa.accept_mask(state)});
    }
  }
  return ScanResult{state, count};
}

std::uint64_t naive_count(std::string_view text, std::string_view pattern) {
  if (pattern.empty() || pattern.size() > text.size()) return 0;
  std::uint64_t count = 0;
  for (std::size_t i = 0; i + pattern.size() <= text.size(); ++i) {
    if (text.compare(i, pattern.size(), pattern) == 0) ++count;
  }
  return count;
}

}  // namespace hetopt::automata
