// Scalar reference kernels for the SIMD tier. These are the bit-identical
// oracles every vector variant is property-tested against, and what
// HETOPT_FORCE_ISA=scalar (or a non-x86 build) executes: one stream, the
// exact BitapMatcher::scan recurrence, the exact BitapEngine warm-up — so
// forced-scalar dispatch reproduces the pre-SIMD engines byte for byte.
#include <algorithm>

#include "automata/simd/simd_common.hpp"
#include "automata/simd/simd_kernels.hpp"

namespace hetopt::automata::simd {

namespace {

std::uint64_t scalar_count_range(const BitapMatcher::Tables& t, std::string_view text,
                                 std::size_t begin, std::size_t end, std::size_t bound,
                                 bool* bad) {
  std::uint64_t badc = 0;
  std::uint64_t state = detail::lane_entry(t, text, begin, bound, badc);
  const std::uint64_t count = detail::scan_count(t, text, begin, end, state, badc);
  *bad = badc != 0;
  return count;
}

std::size_t scalar_find_candidate(const PrefilterClasses& c, std::string_view text,
                                  std::size_t pos, std::size_t end) {
  const char* const p = text.data();
  while (pos < end && c.quiet[static_cast<unsigned char>(p[pos])] != 0) ++pos;
  return pos;
}

constexpr BitapKernel kScalarBitap{util::IsaLevel::kScalar, /*lanes=*/1,
                                   &scalar_count_range};
constexpr PrefilterKernel kScalarPrefilter{util::IsaLevel::kScalar,
                                           &scalar_find_candidate};

}  // namespace

const BitapKernel& scalar_bitap_kernel() noexcept { return kScalarBitap; }
const PrefilterKernel& scalar_prefilter_kernel() noexcept { return kScalarPrefilter; }

}  // namespace hetopt::automata::simd
