// SSE2 kernels: two Shift-And lanes per 128-bit register, 16-byte candidate
// classification. SSE2 is the x86-64 baseline, so this TU needs no special
// compile flags there; other targets compile the stub tail.
//
// Lane protocol (shared with AVX2): the range splits into `lanes` contiguous
// sub-streams, each warmed scalar over its bound-1 preceding bytes, then all
// lanes advance in vector lockstep for the common step count; ragged tails
// finish scalar. Counts are integer sums over disjoint end positions, so any
// split is bit-identical to the one-stream scan. Invalid bytes accumulate
// branch-free (SSE2 lacks pshufb, so per-lane popcounts extract to scalar
// std::popcount — the vector win here is the halved shift/or/and chain).
#include "automata/simd/simd_common.hpp"
#include "automata/simd/simd_kernels.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <bit>

namespace hetopt::automata::simd {

namespace {

std::uint64_t sse2_count_range(const BitapMatcher::Tables& t, std::string_view text,
                               std::size_t begin, std::size_t end, std::size_t bound,
                               bool* bad) {
  constexpr std::size_t kLanes = 2;
  const std::size_t len = end - begin;
  std::uint64_t badc = 0;
  if (len < kLanes * std::max(detail::kMinLaneBytes, bound)) {
    std::uint64_t state = detail::lane_entry(t, text, begin, bound, badc);
    const std::uint64_t count = detail::scan_count(t, text, begin, end, state, badc);
    *bad = badc != 0;
    return count;
  }
  const std::size_t s0 = begin;
  const std::size_t s1 = detail::lane_begin(begin, len, kLanes, 1);
  const std::uint64_t d0 = detail::lane_entry(t, text, s0, bound, badc);
  const std::uint64_t d1 = detail::lane_entry(t, text, s1, bound, badc);

  __m128i state = _mm_set_epi64x(static_cast<long long>(d1), static_cast<long long>(d0));
  const __m128i vinitial = _mm_set1_epi64x(static_cast<long long>(t.initial));
  const __m128i vfinal = _mm_set1_epi64x(static_cast<long long>(t.final));
  const char* const p0 = text.data() + s0;
  const char* const p1 = text.data() + s1;
  const std::size_t steps = s1 - s0;  // == the shorter lane's full length
  std::uint64_t count = 0;
  std::uint64_t ok_sum = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const auto b0 = static_cast<unsigned char>(p0[i]);
    const auto b1 = static_cast<unsigned char>(p1[i]);
    ok_sum += static_cast<std::uint64_t>(t.byte_ok[b0]) + t.byte_ok[b1];
    const __m128i masks = _mm_set_epi64x(static_cast<long long>(t.byte_mask[b1]),
                                         static_cast<long long>(t.byte_mask[b0]));
    state = _mm_and_si128(_mm_or_si128(_mm_slli_epi64(state, 1), vinitial), masks);
    const __m128i hits = _mm_and_si128(state, vfinal);
    const auto h0 = static_cast<std::uint64_t>(_mm_cvtsi128_si64(hits));
    const auto h1 = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_unpackhi_epi64(hits, hits)));
    count += static_cast<std::uint64_t>(std::popcount(h0) + std::popcount(h1));
  }
  badc += kLanes * steps - ok_sum;

  // Ragged tail: only the last lane can be longer than `steps`.
  auto d1_out = static_cast<std::uint64_t>(
      _mm_cvtsi128_si64(_mm_unpackhi_epi64(state, state)));
  count += detail::scan_count(t, text, s1 + steps, end, d1_out, badc);
  *bad = badc != 0;
  return count;
}

std::size_t sse2_find_candidate(const PrefilterClasses& c, std::string_view text,
                                std::size_t pos, std::size_t end) {
  const char* const p = text.data();
  const __m128i fold = _mm_set1_epi8(0x20);
  // Case-fold then compare against the lowercase quiet bases: b | 0x20 maps
  // 'A'->'a' etc., and no non-base byte aliases onto a base that way.
  __m128i needles[4] = {};
  for (std::size_t j = 0; j < c.quiet_base_count; ++j) {
    needles[j] = _mm_set1_epi8(c.quiet_bases[j]);
  }
  while (pos + 16 <= end) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + pos));
    const __m128i folded = _mm_or_si128(v, fold);
    __m128i quiet = _mm_setzero_si128();
    for (std::size_t j = 0; j < c.quiet_base_count; ++j) {
      quiet = _mm_or_si128(quiet, _mm_cmpeq_epi8(folded, needles[j]));
    }
    const auto candidates =
        static_cast<unsigned>(_mm_movemask_epi8(quiet)) ^ 0xFFFFu;
    if (candidates != 0) {
      return pos + static_cast<std::size_t>(std::countr_zero(candidates));
    }
    pos += 16;
  }
  while (pos < end && c.quiet[static_cast<unsigned char>(p[pos])] != 0) ++pos;
  return pos;
}

constexpr BitapKernel kSse2Bitap{util::IsaLevel::kSse2, /*lanes=*/2,
                                 &sse2_count_range};
constexpr PrefilterKernel kSse2Prefilter{util::IsaLevel::kSse2,
                                         &sse2_find_candidate};

}  // namespace

const BitapKernel* sse2_bitap_kernel() noexcept { return &kSse2Bitap; }
const PrefilterKernel* sse2_prefilter_kernel() noexcept { return &kSse2Prefilter; }

}  // namespace hetopt::automata::simd

#else  // !__SSE2__: this toolchain/target has no SSE2 — stub the getters.

namespace hetopt::automata::simd {
const BitapKernel* sse2_bitap_kernel() noexcept { return nullptr; }
const PrefilterKernel* sse2_prefilter_kernel() noexcept { return nullptr; }
}  // namespace hetopt::automata::simd

#endif
