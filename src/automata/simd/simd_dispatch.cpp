// Runtime ISA dispatch for the SIMD kernel tier: what is compiled in, what
// the CPU supports, what the user forced — resolved once per engine
// construction. No intrinsics here; only the kernel tables the per-ISA TUs
// export.
#include <stdexcept>
#include <string>

#include "automata/simd/simd_kernels.hpp"

namespace hetopt::automata::simd {

namespace {

constexpr util::IsaLevel kAllLevels[] = {util::IsaLevel::kScalar, util::IsaLevel::kSse2,
                                         util::IsaLevel::kAvx2};

const BitapKernel* bitap_for(util::IsaLevel level) noexcept {
  switch (level) {
    case util::IsaLevel::kScalar:
      return &scalar_bitap_kernel();
    case util::IsaLevel::kSse2:
      return sse2_bitap_kernel();
    case util::IsaLevel::kAvx2:
      return avx2_bitap_kernel();
  }
  return nullptr;
}

const PrefilterKernel* prefilter_for(util::IsaLevel level) noexcept {
  switch (level) {
    case util::IsaLevel::kScalar:
      return &scalar_prefilter_kernel();
    case util::IsaLevel::kSse2:
      return sse2_prefilter_kernel();
    case util::IsaLevel::kAvx2:
      return avx2_prefilter_kernel();
  }
  return nullptr;
}

bool compiled_in(util::IsaLevel level) noexcept { return bitap_for(level) != nullptr; }

/// Throws unless `level` is both compiled in and executable on this CPU;
/// the message names which of the two is the gap.
void require_available(util::IsaLevel level) {
  if (!compiled_in(level)) {
    throw std::runtime_error(std::string("simd: ISA '") + util::to_string(level) +
                             "' is not compiled into this binary");
  }
  if (!util::cpu_supports(level)) {
    throw std::runtime_error(std::string("simd: ISA '") + util::to_string(level) +
                             "' is not supported by this CPU");
  }
}

}  // namespace

std::vector<util::IsaLevel> available_isas() {
  std::vector<util::IsaLevel> out;
  for (const util::IsaLevel level : kAllLevels) {
    if (compiled_in(level) && util::cpu_supports(level)) out.push_back(level);
  }
  return out;
}

util::IsaLevel resolve_isa(std::optional<util::IsaLevel> request) {
  // Explicit request > HETOPT_FORCE_ISA > widest available. forced_isa()
  // itself throws on unparseable values; unavailable picks throw here.
  const std::optional<util::IsaLevel> pick =
      request.has_value() ? request : util::forced_isa();
  if (pick.has_value()) {
    require_available(*pick);
    return *pick;
  }
  util::IsaLevel best = util::IsaLevel::kScalar;
  for (const util::IsaLevel level : available_isas()) best = level;
  return best;
}

const BitapKernel& bitap_kernel(util::IsaLevel isa) {
  require_available(isa);
  return *bitap_for(isa);
}

const PrefilterKernel& prefilter_kernel(util::IsaLevel isa) {
  require_available(isa);
  return *prefilter_for(isa);
}

}  // namespace hetopt::automata::simd
