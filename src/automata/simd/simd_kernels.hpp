// The SIMD kernel tier: per-ISA vector kernels behind a runtime dispatcher.
//
// Everything that touches raw intrinsics lives in this directory — the
// hetopt_lint `raw-intrinsics` rule enforces it — and is reached only
// through the kernel tables declared here. One binary compiles every
// variant its toolchain can build (the AVX2 translation unit gets a
// per-file -mavx2; SSE2 is the x86-64 baseline; non-x86 builds compile the
// vector TUs to stubs), and resolve_isa() picks per *running* CPU:
//
//     requested ISA (engine ctor)  >  HETOPT_FORCE_ISA  >  widest available
//
// Forcing a level the build or the CPU cannot run is a hard error — a
// result labeled "avx2" must actually have executed AVX2. The scalar
// variants are the bit-identical reference implementations: every vector
// kernel is property-tested against them (tests/automata/simd_engine_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "automata/bitap.hpp"
#include "util/cpu_features.hpp"

namespace hetopt::automata::simd {

/// One ISA variant of the lane-parallel Shift-And kernel. The range
/// (begin, end] is split into `lanes` contiguous sub-streams; each lane
/// warms up over the `bound - 1` bytes preceding its sub-stream (the PaREM
/// chunk-entry protocol) and all lanes then advance in vector lockstep.
struct BitapKernel {
  util::IsaLevel isa;
  std::size_t lanes;
  /// Counts occurrences with end positions in (begin, end]. Invalid bytes
  /// are detected branch-free and reported via *bad (set to true, count
  /// then meaningless); the caller re-walks the range and throws the
  /// scalar matcher's exact exception. Never throws itself.
  std::uint64_t (*count_range)(const BitapMatcher::Tables& t, std::string_view text,
                               std::size_t begin, std::size_t end, std::size_t bound,
                               bool* bad);
};

/// Byte classes for the prefilter: quiet bytes are the valid bases that keep
/// the DFA start state put (delta(start, b) == start); every other byte —
/// invalid ones included — is a candidate the DFA must actually step on.
struct PrefilterClasses {
  std::uint8_t quiet[256] = {};  // 1 = quiet
  /// The distinct quiet bases, lowercase; vector kernels case-fold the
  /// input (| 0x20) and compare against these. At most 4 (a/c/g/t).
  char quiet_bases[4] = {};
  std::size_t quiet_base_count = 0;
};

/// One ISA variant of the candidate finder: the first position in
/// [pos, end) holding a non-quiet byte, or end when the run is all quiet.
struct PrefilterKernel {
  util::IsaLevel isa;
  std::size_t (*find_candidate)(const PrefilterClasses& c, std::string_view text,
                                std::size_t pos, std::size_t end);
};

// Per-ISA kernel tables. The scalar pair always exists; a vector getter
// returns nullptr when its TU was compiled without the ISA. Whether the
// *CPU* can run a compiled-in variant is resolve_isa()'s job.
[[nodiscard]] const BitapKernel& scalar_bitap_kernel() noexcept;
[[nodiscard]] const BitapKernel* sse2_bitap_kernel() noexcept;
[[nodiscard]] const BitapKernel* avx2_bitap_kernel() noexcept;
[[nodiscard]] const PrefilterKernel& scalar_prefilter_kernel() noexcept;
[[nodiscard]] const PrefilterKernel* sse2_prefilter_kernel() noexcept;
[[nodiscard]] const PrefilterKernel* avx2_prefilter_kernel() noexcept;

/// ISA levels this binary can execute here and now (compiled in AND
/// supported by the running CPU). Always contains kScalar, ascending order.
[[nodiscard]] std::vector<util::IsaLevel> available_isas();

/// Resolves the level an engine runs at: `request` when given, else the
/// HETOPT_FORCE_ISA override, else the widest available. Throws
/// std::runtime_error when the resolved level is not available (and names
/// whether the build or the CPU is the gap).
[[nodiscard]] util::IsaLevel resolve_isa(std::optional<util::IsaLevel> request);

/// The kernel tables for an *available* level (resolve_isa() output).
/// Throws std::runtime_error for unavailable levels.
[[nodiscard]] const BitapKernel& bitap_kernel(util::IsaLevel isa);
[[nodiscard]] const PrefilterKernel& prefilter_kernel(util::IsaLevel isa);

}  // namespace hetopt::automata::simd
