// Shared scalar building blocks for the per-ISA kernel TUs: warm-up, scalar
// Shift-And scanning, and lane geometry. Header-only, intrinsic-free — the
// vector TUs use these for lane warm-ups and ragged tails so every variant
// shares one definition of the reference recurrence.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "automata/bitap.hpp"

namespace hetopt::automata::simd::detail {

/// Below this many bytes per lane the vector kernels fall back to the plain
/// scalar scan: the per-lane warm-up (bound - 1 bytes each) would dominate.
inline constexpr std::size_t kMinLaneBytes = 64;

/// Advances a Shift-And state over text[from, to) without counting — the
/// per-lane warm-up. Invalid bytes accumulate into `badc` (deferred
/// detection; the caller reports once per range).
[[nodiscard]] inline std::uint64_t warm(const BitapMatcher::Tables& t,
                                        std::string_view text, std::size_t from,
                                        std::size_t to, std::uint64_t& badc) {
  std::uint64_t state = 0;
  for (std::size_t i = from; i < to; ++i) {
    const auto byte = static_cast<unsigned char>(text[i]);
    badc += static_cast<std::uint64_t>(t.byte_ok[byte] ^ 1U);
    state = ((state << 1) | t.initial) & t.byte_mask[byte];
  }
  return state;
}

/// The reference counting scan over text[from, to) from state `d` (updated
/// in place) — the exact BitapMatcher::scan recurrence with the deferred
/// invalid-byte accounting externalized.
[[nodiscard]] inline std::uint64_t scan_count(const BitapMatcher::Tables& t,
                                              std::string_view text, std::size_t from,
                                              std::size_t to, std::uint64_t& d,
                                              std::uint64_t& badc) {
  std::uint64_t count = 0;
  std::uint64_t state = d;
  for (std::size_t i = from; i < to; ++i) {
    const auto byte = static_cast<unsigned char>(text[i]);
    badc += static_cast<std::uint64_t>(t.byte_ok[byte] ^ 1U);
    state = ((state << 1) | t.initial) & t.byte_mask[byte];
    count += static_cast<std::uint64_t>(std::popcount(state & t.final));
  }
  d = state;
  return count;
}

/// Warm-up entry state for a lane whose sub-stream starts at `at`: advance
/// over the up-to-(bound-1) preceding bytes, exactly the PaREM chunk entry.
[[nodiscard]] inline std::uint64_t lane_entry(const BitapMatcher::Tables& t,
                                              std::string_view text, std::size_t at,
                                              std::size_t bound, std::uint64_t& badc) {
  const std::size_t lead = std::min(bound - 1, at);
  return warm(t, text, at - lead, at, badc);
}

/// Start of lane k when [begin, begin + len) splits into `lanes` contiguous
/// sub-streams (lane `lanes` yields the exclusive end).
[[nodiscard]] inline std::size_t lane_begin(std::size_t begin, std::size_t len,
                                            std::size_t lanes, std::size_t k) {
  return begin + (len / lanes) * k;
}

}  // namespace hetopt::automata::simd::detail
