// AVX2 kernels: four Shift-And lanes per 256-bit register, 32-byte candidate
// classification. This TU is compiled with a per-file -mavx2 (see
// CMakeLists.txt) when the toolchain knows the flag; execution is guarded at
// runtime by the dispatcher's CPU probe, so the rest of the binary never
// executes an AVX2 instruction.
//
// Per step the four lanes share one vpsllq/vpor/vpand chain; the per-lane
// match masks are popcounted with the classic pshufb nibble LUT into a
// per-byte accumulator that is flushed through vpsadbw at most every 31
// steps (255 / 8 carries per byte), keeping the horizontal reduction off the
// per-byte path. Invalid-byte accounting stays scalar and branch-free.
#include "automata/simd/simd_common.hpp"
#include "automata/simd/simd_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace hetopt::automata::simd {

namespace {

std::uint64_t avx2_count_range(const BitapMatcher::Tables& t, std::string_view text,
                               std::size_t begin, std::size_t end, std::size_t bound,
                               bool* bad) {
  constexpr std::size_t kLanes = 4;
  const std::size_t len = end - begin;
  std::uint64_t badc = 0;
  if (len < kLanes * std::max(detail::kMinLaneBytes, bound)) {
    std::uint64_t state = detail::lane_entry(t, text, begin, bound, badc);
    const std::uint64_t count = detail::scan_count(t, text, begin, end, state, badc);
    *bad = badc != 0;
    return count;
  }
  std::size_t starts[kLanes];
  std::uint64_t entries[kLanes];
  for (std::size_t k = 0; k < kLanes; ++k) {
    starts[k] = detail::lane_begin(begin, len, kLanes, k);
    entries[k] = detail::lane_entry(t, text, starts[k], bound, badc);
  }
  __m256i state =
      _mm256_set_epi64x(static_cast<long long>(entries[3]), static_cast<long long>(entries[2]),
                        static_cast<long long>(entries[1]), static_cast<long long>(entries[0]));
  const __m256i vinitial = _mm256_set1_epi64x(static_cast<long long>(t.initial));
  const __m256i vfinal = _mm256_set1_epi64x(static_cast<long long>(t.final));
  const __m256i nibble = _mm256_set1_epi8(0x0F);
  const __m256i lut = _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const char* lanes_p[kLanes];
  for (std::size_t k = 0; k < kLanes; ++k) lanes_p[k] = text.data() + starts[k];
  const std::size_t steps = len / kLanes;  // every lane holds at least this many
  __m256i counts64 = _mm256_setzero_si256();
  std::uint64_t ok_sum = 0;
  std::size_t i = 0;
  while (i < steps) {
    // <= 31 iterations per block so the per-byte popcount accumulator (max
    // +8 per byte per step) cannot wrap before the vpsadbw flush.
    const std::size_t block_end = std::min(steps, i + 31);
    __m256i acc8 = _mm256_setzero_si256();
    for (; i < block_end; ++i) {
      const auto b0 = static_cast<unsigned char>(lanes_p[0][i]);
      const auto b1 = static_cast<unsigned char>(lanes_p[1][i]);
      const auto b2 = static_cast<unsigned char>(lanes_p[2][i]);
      const auto b3 = static_cast<unsigned char>(lanes_p[3][i]);
      ok_sum += static_cast<std::uint64_t>(t.byte_ok[b0]) + t.byte_ok[b1] +
                t.byte_ok[b2] + t.byte_ok[b3];
      const __m256i masks = _mm256_set_epi64x(static_cast<long long>(t.byte_mask[b3]),
                                              static_cast<long long>(t.byte_mask[b2]),
                                              static_cast<long long>(t.byte_mask[b1]),
                                              static_cast<long long>(t.byte_mask[b0]));
      state = _mm256_and_si256(_mm256_or_si256(_mm256_slli_epi64(state, 1), vinitial),
                               masks);
      const __m256i hits = _mm256_and_si256(state, vfinal);
      const __m256i lo = _mm256_and_si256(hits, nibble);
      const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(hits, 4), nibble);
      const __m256i per_byte = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                               _mm256_shuffle_epi8(lut, hi));
      acc8 = _mm256_add_epi8(acc8, per_byte);
    }
    counts64 = _mm256_add_epi64(counts64, _mm256_sad_epu8(acc8, _mm256_setzero_si256()));
  }
  badc += kLanes * steps - ok_sum;

  alignas(32) std::uint64_t lane_counts[kLanes];
  alignas(32) std::uint64_t lane_states[kLanes];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_counts), counts64);
  _mm256_store_si256(reinterpret_cast<__m256i*>(lane_states), state);
  std::uint64_t count = 0;
  for (std::size_t k = 0; k < kLanes; ++k) {
    count += lane_counts[k];
    // Ragged tail: lane k continues scalar to the start of lane k+1 (the
    // last lane to `end`). Lanes 0..2 can be at most kLanes-1 bytes short.
    const std::size_t lane_end = k + 1 < kLanes ? starts[k + 1] : end;
    count += detail::scan_count(t, text, starts[k] + steps, lane_end, lane_states[k],
                                badc);
  }
  *bad = badc != 0;
  return count;
}

std::size_t avx2_find_candidate(const PrefilterClasses& c, std::string_view text,
                                std::size_t pos, std::size_t end) {
  const char* const p = text.data();
  const __m256i fold = _mm256_set1_epi8(0x20);
  __m256i needles[4] = {};
  for (std::size_t j = 0; j < c.quiet_base_count; ++j) {
    needles[j] = _mm256_set1_epi8(c.quiet_bases[j]);
  }
  while (pos + 32 <= end) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + pos));
    const __m256i folded = _mm256_or_si256(v, fold);
    __m256i quiet = _mm256_setzero_si256();
    for (std::size_t j = 0; j < c.quiet_base_count; ++j) {
      quiet = _mm256_or_si256(quiet, _mm256_cmpeq_epi8(folded, needles[j]));
    }
    const auto candidates =
        static_cast<unsigned>(_mm256_movemask_epi8(quiet)) ^ 0xFFFFFFFFu;
    if (candidates != 0) {
      return pos + static_cast<std::size_t>(std::countr_zero(candidates));
    }
    pos += 32;
  }
  while (pos < end && c.quiet[static_cast<unsigned char>(p[pos])] != 0) ++pos;
  return pos;
}

constexpr BitapKernel kAvx2Bitap{util::IsaLevel::kAvx2, /*lanes=*/4,
                                 &avx2_count_range};
constexpr PrefilterKernel kAvx2Prefilter{util::IsaLevel::kAvx2,
                                         &avx2_find_candidate};

}  // namespace

const BitapKernel* avx2_bitap_kernel() noexcept { return &kAvx2Bitap; }
const PrefilterKernel* avx2_prefilter_kernel() noexcept { return &kAvx2Prefilter; }

}  // namespace hetopt::automata::simd

#else  // !__AVX2__: compiled without -mavx2 — stub the getters.

namespace hetopt::automata::simd {
const BitapKernel* avx2_bitap_kernel() noexcept { return nullptr; }
const PrefilterKernel* avx2_prefilter_kernel() noexcept { return nullptr; }
}  // namespace hetopt::automata::simd

#endif
