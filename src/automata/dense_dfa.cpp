#include "automata/dense_dfa.hpp"

#include <stdexcept>

namespace hetopt::automata {

DenseDfa::DenseDfa(std::uint32_t num_states)
    : next_(static_cast<std::size_t>(num_states) * dna::kAlphabetSize, 0),
      accept_mask_(num_states, 0),
      accept_count_(num_states, 0) {}

void DenseDfa::set_start(StateId s) {
  if (s >= state_count()) throw std::out_of_range("DenseDfa: bad start state");
  start_ = s;
}

void DenseDfa::set_transition(StateId from, dna::Base on, StateId to) {
  if (from >= state_count() || to >= state_count()) {
    throw std::out_of_range("DenseDfa: transition state out of range");
  }
  next_[from * dna::kAlphabetSize + static_cast<std::size_t>(on)] = to;
}

void DenseDfa::set_accept(StateId s, std::uint64_t mask, std::uint32_t count) {
  if (s >= state_count()) throw std::out_of_range("DenseDfa: accept state out of range");
  accept_mask_.at(s) = mask;
  accept_count_.at(s) = count;
}

StateId DenseDfa::run(StateId state, std::string_view text) const {
  if (state >= state_count()) throw std::out_of_range("DenseDfa::run: bad state");
  for (char c : text) {
    const auto base = dna::base_from_char(c);
    if (!base) {
      throw std::invalid_argument("DenseDfa::run: invalid base '" + std::string(1, c) + "'");
    }
    state = step(state, *base);
  }
  return state;
}

std::string DenseDfa::validate() const {
  if (state_count() == 0) return "automaton has no states";
  if (start_ >= state_count()) return "start state out of range";
  for (std::size_t i = 0; i < next_.size(); ++i) {
    if (next_[i] >= state_count()) {
      return "transition " + std::to_string(i) + " out of range";
    }
  }
  for (StateId s = 0; s < state_count(); ++s) {
    const bool has_mask = accept_mask_[s] != 0;
    const bool has_count = accept_count_[s] != 0;
    if (has_mask != has_count) {
      return "state " + std::to_string(s) + ": accept mask/count disagree";
    }
  }
  return {};
}

}  // namespace hetopt::automata
