// Aho–Corasick multi-pattern automaton for literal (plain-ACGT) motifs,
// converted into the dense table form shared by all matchers.
//
// Counting semantics match the subset-construction path: accept_count(s) is
// the number of pattern occurrences ending when the automaton sits in s
// (accumulated along suffix links, so duplicated patterns each count).
// Pattern-identity masks cover the first kMaxPatterns patterns; automata with
// more patterns still count exactly but mask bits saturate.
#pragma once

#include <string>
#include <vector>

#include "automata/dense_dfa.hpp"

namespace hetopt::automata {

/// Builds the AC automaton for the given literal patterns. Patterns must be
/// non-empty plain ACGT strings (case-insensitive). Duplicates are allowed
/// and count separately. Throws std::invalid_argument on bad input.
[[nodiscard]] DenseDfa build_aho_corasick(const std::vector<std::string>& patterns);

}  // namespace hetopt::automata
