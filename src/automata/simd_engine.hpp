// The SIMD engine tier as MatchEngines: the vector kernels from
// src/automata/simd/ packaged behind the same chunk-aware contract every
// other engine honors, so the parallel matcher, the executor fleet, and the
// tuner price them like any other EngineKind.
//
//  BitapSimdEngine   (kBitapSimd)   lane-parallel Shift-And: each chunk is
//                                   split into one contiguous sub-stream per
//                                   vector lane, each lane warms up over its
//                                   bound-1 preceding bytes (the PaREM chunk
//                                   protocol applied *inside* the chunk), and
//                                   all lanes advance in lockstep. Counts are
//                                   sums over disjoint end-position ranges —
//                                   bit-identical to BitapEngine by
//                                   construction, property-tested to stay so.
//
//  PrefilterDfaEngine (kPrefilterDfa) compiled-DFA scan behind a vectorized
//                                   byte-class prefilter: bytes that cannot
//                                   move the DFA off its start state are
//                                   skipped at vector speed whenever the scan
//                                   sits in the start state; the fused kernel
//                                   only runs while the automaton is live.
//                                   Exact because skipping quiet bytes from
//                                   the start state is the identity on both
//                                   state and count (the start state accepts
//                                   nothing, or skipping is disabled).
//
// Both resolve their ISA at construction: explicit request > HETOPT_FORCE_ISA
// > widest the CPU supports. Forcing an unavailable level throws.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "automata/bitap.hpp"
#include "automata/compiled_dfa.hpp"
#include "automata/dense_dfa.hpp"
#include "automata/match_engine.hpp"
#include "automata/simd/simd_kernels.hpp"
#include "util/cpu_features.hpp"

namespace hetopt::automata {

class BitapSimdEngine final : public MatchEngine {
 public:
  /// Same applicability as BitapEngine (IUPAC, <= 64 summed bits). `isa`
  /// pins a specific variant (tests sweep every available level); nullopt
  /// defers to HETOPT_FORCE_ISA, then the widest available.
  explicit BitapSimdEngine(const std::vector<std::string>& patterns,
                           std::optional<util::IsaLevel> isa = std::nullopt);

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kBitapSimd;
  }
  [[nodiscard]] std::size_t synchronization_bound() const noexcept override {
    return matcher_.synchronization_bound();
  }
  [[nodiscard]] std::size_t pattern_count() const noexcept override {
    return matcher_.pattern_count();
  }

  [[nodiscard]] std::uint64_t count_chunk(std::string_view text, std::size_t begin,
                                          std::size_t end) const override;
  [[nodiscard]] std::uint64_t collect_chunk(std::string_view text, std::size_t begin,
                                            std::size_t end,
                                            std::vector<Match>& out) const override;

  /// The ISA variant this engine resolved to at construction.
  [[nodiscard]] util::IsaLevel isa() const noexcept { return isa_; }
  /// Vector lanes the resolved kernel advances in lockstep.
  [[nodiscard]] std::size_t lanes() const noexcept { return kernel_->lanes; }

 private:
  BitapMatcher matcher_;
  util::IsaLevel isa_;
  const simd::BitapKernel* kernel_;
};

class PrefilterDfaEngine final : public MatchEngine {
 public:
  /// Full motif language minus the unbounded operators '*' and '+' (the
  /// prefilter's per-chunk warm-up needs a positive synchronization bound).
  /// Throws std::invalid_argument via compile_motifs on syntax errors.
  ///
  /// `density_sample` (typically the corpus' first page) makes the skip
  /// density-aware: the sample's mean quiet-run length is measured against
  /// an ISA-adaptive cutoff and the quiet-byte skip self-disables below it
  /// — on candidate-dense input the vector probe rarely clears its own
  /// cost, so the plain fused scan is faster. Exactness is unaffected
  /// either way. An empty sample keeps the static rule (skip whenever the
  /// classes allow it), the pre-probe behavior.
  explicit PrefilterDfaEngine(const std::vector<std::string>& motifs,
                              std::optional<util::IsaLevel> isa = std::nullopt,
                              std::string_view density_sample = {});

  [[nodiscard]] EngineKind kind() const noexcept override {
    return EngineKind::kPrefilterDfa;
  }
  [[nodiscard]] std::size_t synchronization_bound() const noexcept override {
    return dfa_.synchronization_bound();
  }
  [[nodiscard]] std::size_t pattern_count() const noexcept override {
    return dfa_.pattern_count();
  }

  [[nodiscard]] std::uint64_t count_chunk(std::string_view text, std::size_t begin,
                                          std::size_t end) const override;
  [[nodiscard]] std::uint64_t collect_chunk(std::string_view text, std::size_t begin,
                                            std::size_t end,
                                            std::vector<Match>& out) const override;

  // dfa()/kernel() stay nullptr on purpose: the parallel matcher and the
  // executor must drive this engine through the chunk-aware interface so the
  // prefilter actually runs (the kernel() fast path would bypass it).

  [[nodiscard]] util::IsaLevel isa() const noexcept { return isa_; }
  /// True when the quiet-byte skip is active (the DFA start state accepts
  /// nothing and at least one base is quiet); false degenerates to the plain
  /// fused scan, still exact.
  [[nodiscard]] bool skip_enabled() const noexcept { return can_skip_; }
  /// The candidate bytes' count (256 - quiet bytes); bench provenance.
  [[nodiscard]] std::size_t quiet_base_count() const noexcept {
    return classes_.quiet_base_count;
  }
  /// Mean quiet-run length measured on the construction sample, and the
  /// adaptive cutoff it was held against (both 0 when no sample was given);
  /// bench provenance for the density-aware skip decision.
  [[nodiscard]] double sampled_quiet_run() const noexcept { return sampled_quiet_run_; }
  [[nodiscard]] double density_cutoff() const noexcept { return density_cutoff_; }

 private:
  /// Warm-up entry state for a chunk starting at `begin` — identical to
  /// DenseDfaEngine's (throws on invalid warm-up bytes like the oracle).
  [[nodiscard]] StateId entry_state(std::string_view text, std::size_t begin) const;

  DenseDfa dfa_;
  CompiledDfa kernel_;
  simd::PrefilterClasses classes_;
  util::IsaLevel isa_;
  const simd::PrefilterKernel* prefilter_;
  bool can_skip_ = false;
  double sampled_quiet_run_ = 0.0;
  double density_cutoff_ = 0.0;
};

}  // namespace hetopt::automata
