#include "automata/compiled_dfa.hpp"

#include <algorithm>
#include <stdexcept>

#include "dna/alphabet.hpp"

namespace hetopt::automata {

namespace {

constexpr std::uint8_t kInvalidCode = 0xFF;
/// Block size for the paired kernel's byte->code translation buffer. Must be
/// even so pair parity is preserved across blocks.
constexpr std::size_t kTranslateBlock = 8192;
/// count() switches from the byte kernel to the paired kernel at this length
/// (below it the translation buffer overhead is not worth it).
constexpr std::size_t kPairedMin = 256;

/// Advances `K` interleaved scan streams by `steps` bytes. K is a compile-time
/// constant so the inner loop fully unrolls and each stream's state chain
/// lives in its own register — the K dependent-load chains then overlap in
/// the out-of-order window instead of serializing.
template <std::size_t K>
void step_streams(const std::uint32_t* nx, const std::uint32_t* ac,
                  const unsigned char** p, std::uint32_t* s, std::uint64_t* c,
                  std::size_t steps) {
  std::uint32_t st[K];
  std::uint64_t cn[K];
  const unsigned char* pp[K];
  for (std::size_t k = 0; k < K; ++k) {
    st[k] = s[k];
    cn[k] = c[k];
    pp[k] = p[k];
  }
  for (std::size_t i = 0; i < steps; ++i) {
    for (std::size_t k = 0; k < K; ++k) {
      st[k] = nx[(static_cast<std::size_t>(st[k]) << 8) | pp[k][i]];
      cn[k] += ac[st[k]];
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    s[k] = st[k];
    c[k] = cn[k];
    p[k] += steps;
  }
}

}  // namespace

CompiledDfa::CompiledDfa(const DenseDfa& dfa) {
  const std::string err = dfa.validate();
  if (!err.empty()) throw std::invalid_argument("CompiledDfa: " + err);

  state_count_ = dfa.state_count();
  start_ = dfa.start();
  sync_bound_ = dfa.synchronization_bound();
  const std::size_t states = static_cast<std::size_t>(state_count_) + 1;  // + sink
  const std::uint32_t sink = state_count_;

  // Byte -> 2-bit code (both cases), everything else invalid.
  std::fill(std::begin(code_), std::end(code_), kInvalidCode);
  for (unsigned b = 0; b < dna::kAlphabetSize; ++b) {
    const char upper = dna::to_char(static_cast<dna::Base>(b));
    code_[static_cast<unsigned char>(upper)] = static_cast<std::uint8_t>(b);
    code_[static_cast<unsigned char>(upper - 'A' + 'a')] = static_cast<std::uint8_t>(b);
  }

  // Accept metadata in flat unchecked arrays; the sink accepts nothing.
  accept_count_.assign(states, 0);
  accept_mask_.assign(states, 0);
  for (StateId s = 0; s < state_count_; ++s) {
    accept_count_[s] = dfa.accept_count(s);
    accept_mask_[s] = dfa.accept_mask(s);
  }

  // Byte table with the decode and the sink fused in. The sink row maps every
  // byte back to the sink, making it absorbing.
  byte_next_.assign(states * 256, sink);
  for (StateId s = 0; s < state_count_; ++s) {
    for (unsigned byte = 0; byte < 256; ++byte) {
      const std::uint8_t code = code_[byte];
      if (code == kInvalidCode) continue;
      byte_next_[(static_cast<std::size_t>(s) << 8) | byte] =
          dfa.step(s, static_cast<dna::Base>(code));
    }
  }

  // Paired table: one step consumes codes (c0, c1); pair_count_ carries the
  // accept counts of both intermediate states so position sums stay exact.
  pair_next_.assign(states * 16, sink);
  pair_count_.assign(states * 16, 0);
  for (StateId s = 0; s < state_count_; ++s) {
    for (unsigned c0 = 0; c0 < dna::kAlphabetSize; ++c0) {
      const StateId mid = dfa.step(s, static_cast<dna::Base>(c0));
      for (unsigned c1 = 0; c1 < dna::kAlphabetSize; ++c1) {
        const StateId end = dfa.step(mid, static_cast<dna::Base>(c1));
        const std::size_t idx = (static_cast<std::size_t>(s) << 4) | (c0 << 2) | c1;
        pair_next_[idx] = end;
        pair_count_[idx] = accept_count_[mid] + accept_count_[end];
      }
    }
  }
}

void CompiledDfa::check_entry(StateId state) const {
  if (state >= state_count_) throw std::out_of_range("CompiledDfa: bad state");
}

void CompiledDfa::throw_invalid(std::string_view text) const {
  // The cold path every kernel dispatches to once per failing scan — the
  // designated exception to the kernel-throw rule (the hot loops themselves
  // stay throw-free and branch-free on the validity plane).
  for (const char c : text) {
    if (code_[static_cast<unsigned char>(c)] == kInvalidCode) {
      // The seed scanner's exact exception (scan_count_naive / require_base).
      throw std::invalid_argument("scan: invalid base '" +  // hetopt-lint: allow(kernel-throw)
                                  std::string(1, c) + "'");
    }
  }
  throw std::invalid_argument("scan: invalid base");  // unreachable for sink entries
}

ScanResult CompiledDfa::count(std::string_view text, StateId state) const {
  return text.size() >= kPairedMin ? count_paired(text, state)
                                   : count_fused(text, state);
}

ScanResult CompiledDfa::count_fused(std::string_view text, StateId state) const {
  check_entry(state);
  const std::uint32_t* const nx = byte_next_.data();
  const std::uint32_t* const ac = accept_count_.data();
  const auto* const p = reinterpret_cast<const unsigned char*>(text.data());
  std::uint32_t s = state;
  std::uint64_t count = 0;
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    s = nx[(static_cast<std::size_t>(s) << 8) | p[i]];
    count += ac[s];
  }
  if (s == sink()) throw_invalid(text);
  return ScanResult{s, count};
}

ScanResult CompiledDfa::count_paired(std::string_view text, StateId state) const {
  check_entry(state);
  const std::uint32_t* const pn = pair_next_.data();
  const std::uint32_t* const pc = pair_count_.data();
  const auto* const p = reinterpret_cast<const unsigned char*>(text.data());
  const std::size_t n = text.size();
  std::uint32_t s = state;
  std::uint64_t count = 0;
  std::uint8_t codes[kTranslateBlock];
  std::size_t pos = 0;
  while (pos < n) {
    const std::size_t len = std::min(kTranslateBlock, n - pos);
    // Translate and validate the whole block up front (branch-free: invalid
    // codes poison `bad` past the 2-bit range).
    unsigned bad = 0;
    for (std::size_t i = 0; i < len; ++i) {
      const std::uint8_t code = code_[p[pos + i]];
      bad |= code;
      codes[i] = code;
    }
    // Earlier blocks were clean, so the block's first bad byte is the text's.
    if (bad > 3) throw_invalid(text.substr(pos));
    const std::size_t pairs = len / 2;
    for (std::size_t i = 0; i < pairs; ++i) {
      const std::size_t idx = (static_cast<std::size_t>(s) << 4) |
                              (static_cast<std::size_t>(codes[2 * i]) << 2) |
                              codes[2 * i + 1];
      count += pc[idx];
      s = pn[idx];
    }
    if (len & 1) {  // odd tail — only possible in the final block
      s = byte_next_[(static_cast<std::size_t>(s) << 8) | p[pos + len - 1]];
      count += accept_count_[s];
    }
    pos += len;
  }
  return ScanResult{s, count};
}

void CompiledDfa::count_multi(const std::string_view* texts, const StateId* entries,
                              ScanResult* results, std::size_t n) const {
  for (std::size_t first = 0; first < n; first += kMaxStreams) {
    count_multi_batch(texts + first, entries + first, results + first,
                      std::min(kMaxStreams, n - first));
  }
}

void CompiledDfa::count_multi_batch(const std::string_view* texts,
                                    const StateId* entries, ScanResult* results,
                                    std::size_t n) const {
  const std::uint32_t* const nx = byte_next_.data();
  const std::uint32_t* const ac = accept_count_.data();
  const unsigned char* p[kMaxStreams];
  const unsigned char* e[kMaxStreams];
  std::uint32_t s[kMaxStreams];
  std::uint64_t c[kMaxStreams];
  std::size_t which[kMaxStreams];
  for (std::size_t k = 0; k < n; ++k) {
    check_entry(entries[k]);
    p[k] = reinterpret_cast<const unsigned char*>(texts[k].data());
    e[k] = p[k] + texts[k].size();
    s[k] = entries[k];
    c[k] = 0;
    which[k] = k;
  }
  std::size_t active = n;
  while (active > 0) {
    // Retire finished streams (checking invalid input once per stream) and
    // compact the arrays so the interleave loop only touches live ones.
    std::size_t live = 0;
    for (std::size_t k = 0; k < active; ++k) {
      if (p[k] == e[k]) {
        if (s[k] == sink()) throw_invalid(texts[which[k]]);
        results[which[k]] = ScanResult{s[k], c[k]};
      } else {
        p[live] = p[k];
        e[live] = e[k];
        s[live] = s[k];
        c[live] = c[k];
        which[live] = which[k];
        ++live;
      }
    }
    active = live;
    if (active == 0) break;
    std::size_t steps = static_cast<std::size_t>(-1);
    for (std::size_t k = 0; k < active; ++k) {
      steps = std::min(steps, static_cast<std::size_t>(e[k] - p[k]));
    }
    switch (active) {
      case 1: step_streams<1>(nx, ac, p, s, c, steps); break;
      case 2: step_streams<2>(nx, ac, p, s, c, steps); break;
      case 3: step_streams<3>(nx, ac, p, s, c, steps); break;
      case 4: step_streams<4>(nx, ac, p, s, c, steps); break;
      case 5: step_streams<5>(nx, ac, p, s, c, steps); break;
      case 6: step_streams<6>(nx, ac, p, s, c, steps); break;
      case 7: step_streams<7>(nx, ac, p, s, c, steps); break;
      default: step_streams<8>(nx, ac, p, s, c, steps); break;
    }
  }
}

ScanResult CompiledDfa::collect(std::string_view text, StateId state,
                                std::size_t base_offset, std::vector<Match>& out) const {
  check_entry(state);
  const std::uint32_t* const nx = byte_next_.data();
  const std::uint32_t* const ac = accept_count_.data();
  const std::uint64_t* const am = accept_mask_.data();
  const auto* const p = reinterpret_cast<const unsigned char*>(text.data());
  std::uint32_t s = state;
  std::uint64_t count = 0;
  const std::size_t n = text.size();
  for (std::size_t i = 0; i < n; ++i) {
    s = nx[(static_cast<std::size_t>(s) << 8) | p[i]];
    const std::uint32_t hits = ac[s];
    if (hits != 0) {
      count += hits;
      out.push_back(Match{base_offset + i + 1, am[s]});
    }
  }
  // The sink accepts nothing, so on invalid input `out` holds exactly the
  // matches the seed scanner appended before its throw.
  if (s == sink()) throw_invalid(text);
  return ScanResult{s, count};
}

}  // namespace hetopt::automata
