// PaREM-style chunk-parallel finite-automaton matching (Memeti & Pllana,
// CSE 2014). The input is cut into contiguous chunks, one per worker; the
// difficulty is that a chunk's correct entry state depends on all preceding
// text. Two resolution strategies are provided:
//
//  kWarmup      Exact, one pass. Usable when the automaton has a finite
//               synchronization bound L (= longest motif): the scan state at
//               any position is fully determined by the previous L-1 bytes,
//               so each worker "warms up" from the start state over the L-1
//               bytes before its chunk and then counts only inside the chunk.
//
//  kSpeculative Exact, two phases. Phase 1 scans every chunk from the start
//               state in parallel (a guess) and records exit states. Phase 2
//               propagates true entry states and re-scans mispredicted chunks
//               in parallel waves until the propagation settles; because
//               motif automata synchronize quickly, almost no chunk needs a
//               second scan and the first wave is usually empty. Works for
//               unbounded patterns ('*'/'+') where no warm-up bound exists.
//
// All scanning runs on the compiled kernels (automata/compiled_dfa.hpp); the
// automaton is lowered once at matcher construction. Counting can further
// interleave several chunk scans per worker (multi-stream) to hide the
// per-byte load latency a single scan chain serializes on — by default the
// matcher picks the stream width from the chunk/worker ratio.
//
// Both strategies return byte-identical results to a sequential scan (this is
// property-tested). A matcher instance reuses per-chunk scratch buffers
// across runs and must therefore not be used from two threads concurrently
// (distinct matchers sharing a pool are fine).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/compiled_dfa.hpp"
#include "automata/dense_dfa.hpp"
#include "automata/scanner.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::automata {

enum class ParallelStrategy { kWarmup, kSpeculative };

struct MatcherOptions {
  ParallelStrategy strategy = ParallelStrategy::kWarmup;
  /// Independent chunk scans interleaved per worker task when counting.
  /// 0 = auto (chunks / pool workers, capped at CompiledDfa::kMaxStreams);
  /// 1 = one chunk per task (the seed behavior). Match collection always
  /// scans one chunk per task (events need per-chunk append order).
  std::size_t streams_per_worker = 0;
};

struct ParallelScanStats {
  std::uint64_t match_count = 0;
  std::size_t chunks = 0;
  std::size_t rescanned_chunks = 0;  // speculative only (rescans summed over waves)
};

class ParallelMatcher {
 public:
  /// The matcher borrows the automaton and pool; both must outlive it.
  /// Validates the automaton once and lowers it into the compiled kernels.
  ParallelMatcher(const DenseDfa& dfa, parallel::ThreadPool& pool);

  /// Counts occurrences in `text` using `chunks` parallel chunks.
  /// Falls back to kSpeculative when kWarmup is requested but the automaton
  /// has no synchronization bound. A single chunk is scanned directly on the
  /// calling thread (no pool round-trip).
  [[nodiscard]] ParallelScanStats count(std::string_view text, std::size_t chunks,
                                        ParallelStrategy strategy =
                                            ParallelStrategy::kWarmup) const;
  [[nodiscard]] ParallelScanStats count(std::string_view text, std::size_t chunks,
                                        const MatcherOptions& options) const;

  /// Counts and also collects match events (sorted by end offset).
  [[nodiscard]] ParallelScanStats collect(std::string_view text, std::size_t chunks,
                                          std::vector<Match>& out,
                                          ParallelStrategy strategy =
                                              ParallelStrategy::kWarmup) const;
  [[nodiscard]] ParallelScanStats collect(std::string_view text, std::size_t chunks,
                                          std::vector<Match>& out,
                                          const MatcherOptions& options) const;

  /// The lowered automaton (shared with callers that scan outside the
  /// chunked path, e.g. the heterogeneous executor's boundary scans).
  [[nodiscard]] const CompiledDfa& compiled() const noexcept { return compiled_; }

 private:
  struct ChunkResult {
    ScanResult scan;
    std::vector<Match> matches;
  };

  [[nodiscard]] ParallelScanStats run(std::string_view text, std::size_t chunks,
                                      MatcherOptions options, bool want_matches,
                                      std::vector<Match>* out) const;

  const DenseDfa& dfa_;
  parallel::ThreadPool& pool_;
  CompiledDfa compiled_;
  mutable std::vector<ChunkResult> scratch_;  // reused across runs (capacity kept)
};

}  // namespace hetopt::automata
