// PaREM-style chunk-parallel finite-automaton matching (Memeti & Pllana,
// CSE 2014). The input is cut into contiguous chunks, one per worker; the
// difficulty is that a chunk's correct entry state depends on all preceding
// text. Two resolution strategies are provided:
//
//  kWarmup      Exact, one pass. Usable when the automaton has a finite
//               synchronization bound L (= longest motif): the scan state at
//               any position is fully determined by the previous L-1 bytes,
//               so each worker "warms up" from the start state over the L-1
//               bytes before its chunk and then counts only inside the chunk.
//
//  kSpeculative Exact, two phases. Phase 1 scans every chunk from the start
//               state in parallel (a guess) and records exit states. Phase 2
//               propagates true entry states and re-scans mispredicted chunks
//               in parallel waves until the propagation settles; because
//               motif automata synchronize quickly, almost no chunk needs a
//               second scan and the first wave is usually empty. Works for
//               unbounded patterns ('*'/'+') where no warm-up bound exists.
//
// The matcher is engine-generic: construct it from any automata::MatchEngine.
// DFA-backed engines (compiled-dfa, aho-corasick) run on the compiled kernels
// (automata/compiled_dfa.hpp) with both strategies available; counting can
// further interleave several chunk scans per worker (multi-stream) to hide
// the per-byte load latency a single scan chain serializes on — by default
// the matcher picks the stream width from the chunk/worker ratio. Engines
// without a DFA behind them (bitap) are driven through the chunk-aware
// MatchEngine interface with the warm-up strategy (they must declare a
// positive synchronization bound). The legacy DenseDfa constructor lowers
// the automaton itself and behaves exactly as before.
//
// Both strategies return byte-identical results to a sequential scan (this is
// property-tested). A matcher instance reuses per-chunk scratch buffers
// across runs and must therefore not be used from two threads concurrently
// (distinct matchers sharing a pool are fine).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/compiled_dfa.hpp"
#include "automata/dense_dfa.hpp"
#include "automata/match_engine.hpp"
#include "automata/scanner.hpp"
#include "dna/paged_genome.hpp"
#include "dna/prefetch_reader.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/schedule.hpp"
#include "parallel/thread_pool.hpp"
#include "util/aligned_buffer.hpp"

namespace hetopt::automata {

/// Scans chunks ids[0..m) of `text` as interleaved streams on `kernel`: one
/// count_multi pass warms the entry states over each chunk's lead bytes (up
/// to `warmup` before chunk.begin), a second scans the chunk bodies from the
/// warmed states; res[k] receives chunk ids[k]'s result. Exact for any
/// subset of chunks — the PaREM warm-up protocol, batched. Shared by the
/// matcher's schedule paths and the executor's shared-queue runtime so
/// warm-up semantics can never diverge between layers.
/// m must be <= CompiledDfa::kMaxStreams.
void scan_chunk_streams(const CompiledDfa& kernel, std::string_view text,
                        std::size_t warmup, const parallel::Chunk* chunks,
                        const std::size_t* ids, std::size_t m, ScanResult* res);

enum class ParallelStrategy { kWarmup, kSpeculative };

struct MatcherOptions {
  ParallelStrategy strategy = ParallelStrategy::kWarmup;
  /// Independent chunk scans interleaved per worker task when counting.
  /// 0 = auto (chunks / pool workers, capped at CompiledDfa::kMaxStreams);
  /// 1 = one chunk per task (the seed behavior). Match collection always
  /// scans one chunk per task (events need per-chunk append order).
  std::size_t streams_per_worker = 0;
  /// How chunks reach the workers (parallel/schedule.hpp): kStatic
  /// pre-assigns contiguous chunk groups (the seed behavior); kDynamic and
  /// kAdaptive pull chunk indices from an atomic ticket queue (a single pool
  /// has no one to steal from, so adaptive degenerates to dynamic here);
  /// kGuided pulls decreasing chunk sizes, reinterpreting `chunks` as the
  /// tail-granularity hint. Demand-driven schedules need per-chunk warm-up,
  /// so they force the kWarmup strategy; automata without a synchronization
  /// bound fall back to the static speculative path. Results are
  /// byte-identical across every policy (property-tested).
  parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic;
};

struct ParallelScanStats {
  std::uint64_t match_count = 0;
  std::size_t chunks = 0;
  std::size_t rescanned_chunks = 0;  // speculative only (rescans summed over waves)
};

/// Options for the paged (out-of-core) scan path. Chunks are cut *within*
/// pages (no chunk ever spans a page seam; the stored halo carries the
/// warm-up context across seams instead), so every schedule's results stay
/// byte-identical to an in-memory scan of the same bytes.
struct PagedScanOptions {
  /// kStatic pre-assigns contiguous chunk groups per worker (each worker
  /// streams its own page range); the demand-driven schedules pull chunk
  /// tickets in ascending page order — the shape the prefetch ring is built
  /// for, and the recommended paged default. kAdaptive degenerates to
  /// kDynamic here, as in the in-memory matcher.
  parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kDynamic;
  /// Chunks each page's payload is cut into; 0 = one per pool worker.
  std::size_t chunks_per_page = 0;
  /// Lookahead pages for the background PrefetchReader; clamped so the ring,
  /// one in-flight load, and every worker's pin fit the resident budget
  /// together (progress is never deadlocked on backpressure). 0 = no
  /// prefetch thread — every page is a cold consumer load (the baseline the
  /// io_bound bench's depth sweep compares against).
  std::size_t prefetch_depth = 2;
  /// Page range [first_page, last_page) to scan; last clamps to page_count.
  std::size_t first_page = 0;
  std::size_t last_page = static_cast<std::size_t>(-1);
  /// Resident-budget share this run may pin at once; 0 = the genome's whole
  /// budget. The heterogeneous executor divides the budget across its
  /// concurrently running pools through this knob.
  std::size_t pin_budget = 0;
};

struct PagedScanStats {
  std::uint64_t match_count = 0;
  std::size_t chunks = 0;
  std::size_t pages = 0;
  std::size_t bytes = 0;            // payload bytes scanned
  double seconds = 0.0;             // wall time of the paged run
  std::size_t prefetch_depth = 0;   // effective depth after budget clamping
  /// Genome-wide cache-stat delta over the run window (equals this run's
  /// activity when it is the only scanner of the genome).
  dna::CacheStats cache;
  dna::PrefetchStats prefetch;

  /// Fraction of page-load time hidden from the consumers: 1 minus
  /// cold-stall time over load time, clamped to [0, 1] (1 when nothing was
  /// loaded). The io_bound bench's overlap metric.
  [[nodiscard]] double overlap_efficiency() const noexcept {
    if (cache.load_seconds <= 0.0) return 1.0;
    const double ratio = cache.cold_stall_seconds / cache.load_seconds;
    return ratio >= 1.0 ? 0.0 : 1.0 - ratio;
  }
};

class ParallelMatcher {
 public:
  /// The matcher borrows the automaton and pool; both must outlive it.
  /// Validates the automaton once and lowers it into the compiled kernels.
  ParallelMatcher(const DenseDfa& dfa, parallel::ThreadPool& pool);

  /// Engine-generic construction; the engine and pool must outlive the
  /// matcher. DFA-backed engines run on their already-lowered kernel (no
  /// re-lowering); other engines use the chunk-aware warm-up path and must
  /// have a positive synchronization bound (throws std::invalid_argument
  /// otherwise).
  ParallelMatcher(const MatchEngine& engine, parallel::ThreadPool& pool);

  // Not copyable/movable: kernel_ may point into owned_kernel_, so a copy
  // would scan through the source's (possibly destroyed) tables.
  ParallelMatcher(const ParallelMatcher&) = delete;
  ParallelMatcher& operator=(const ParallelMatcher&) = delete;

  /// Counts occurrences in `text` using `chunks` parallel chunks.
  /// Falls back to kSpeculative when kWarmup is requested but the automaton
  /// has no synchronization bound. A single chunk is scanned directly on the
  /// calling thread (no pool round-trip).
  [[nodiscard]] ParallelScanStats count(std::string_view text, std::size_t chunks,
                                        ParallelStrategy strategy =
                                            ParallelStrategy::kWarmup) const;
  [[nodiscard]] ParallelScanStats count(std::string_view text, std::size_t chunks,
                                        const MatcherOptions& options) const;

  /// Counts and also collects match events (sorted by end offset).
  [[nodiscard]] ParallelScanStats collect(std::string_view text, std::size_t chunks,
                                          std::vector<Match>& out,
                                          ParallelStrategy strategy =
                                              ParallelStrategy::kWarmup) const;
  [[nodiscard]] ParallelScanStats collect(std::string_view text, std::size_t chunks,
                                          std::vector<Match>& out,
                                          const MatcherOptions& options) const;

  /// Counts occurrences across a paged corpus, streaming pages through the
  /// genome's bounded cache (pool workers block only on genuinely-cold
  /// pages; a PrefetchReader loads ahead of the scan frontier when
  /// prefetch_depth > 0). Byte-identical to count() over the same bytes.
  /// Requires an automaton with a positive synchronization bound, a genome
  /// halo of at least bound-1 bytes, and a resident budget that covers the
  /// pool's workers (throws std::invalid_argument otherwise).
  [[nodiscard]] PagedScanStats count_paged(dna::PagedGenome& genome,
                                           const PagedScanOptions& options = {}) const;

  /// Same, collecting every match event (global end offsets, sorted
  /// ascending — byte-identical to collect() over the same bytes).
  [[nodiscard]] PagedScanStats collect_paged(dna::PagedGenome& genome,
                                             std::vector<Match>& out,
                                             const PagedScanOptions& options = {}) const;

  /// The lowered automaton (shared with callers that scan outside the
  /// chunked path, e.g. the heterogeneous executor's boundary scans). Only
  /// valid for DFA-backed matchers — see dfa_backed().
  [[nodiscard]] const CompiledDfa& compiled() const noexcept { return *kernel_; }

  /// True when the matcher runs on the compiled DFA kernels (the DenseDfa
  /// constructor or an engine with a dfa() behind it); false for generic
  /// engines such as bitap, where compiled() must not be called.
  [[nodiscard]] bool dfa_backed() const noexcept { return kernel_ != nullptr; }

 private:
  struct ChunkResult {
    ScanResult scan;
    std::vector<Match> matches;
  };

  [[nodiscard]] ParallelScanStats run(std::string_view text, std::size_t chunks,
                                      MatcherOptions options, bool want_matches,
                                      std::vector<Match>* out) const;
  [[nodiscard]] ParallelScanStats run_engine(std::string_view text, std::size_t chunks,
                                             parallel::SchedulePolicy schedule,
                                             bool want_matches,
                                             std::vector<Match>* out) const;
  /// The paged-input mode (automata/paged_scan.cpp): pages pinned on
  /// demand, chunk tickets in page order, per-chunk warm-up out of the halo.
  [[nodiscard]] PagedScanStats run_paged(dna::PagedGenome& genome,
                                         const PagedScanOptions& options,
                                         bool want_matches,
                                         std::vector<Match>* out) const;
  /// Merges the first `range_count` scratch slots' matches into *out, sorted
  /// by end offset.
  void collect_sorted(std::size_t range_count, std::vector<Match>* out) const;

  const DenseDfa* dfa_ = nullptr;            // non-null when DFA-backed
  const MatchEngine* engine_ = nullptr;      // non-null on the generic engine path
  parallel::ThreadPool& pool_;
  CompiledDfa owned_kernel_;                 // lowered here on the DenseDfa path
  const CompiledDfa* kernel_ = nullptr;      // owned_kernel_ or the engine's kernel
  // Per-chunk scratch in cache-line-aligned storage: workers write disjoint
  // slots concurrently, and the 64-byte alignment keeps slot boundaries off
  // shared cache lines. Reused across runs (element capacity kept).
  mutable util::AlignedBuffer<ChunkResult> scratch_;
};

}  // namespace hetopt::automata
