// PaREM-style chunk-parallel finite-automaton matching (Memeti & Pllana,
// CSE 2014). The input is cut into contiguous chunks, one per worker; the
// difficulty is that a chunk's correct entry state depends on all preceding
// text. Two resolution strategies are provided:
//
//  kWarmup      Exact, one pass. Usable when the automaton has a finite
//               synchronization bound L (= longest motif): the scan state at
//               any position is fully determined by the previous L-1 bytes,
//               so each worker "warms up" from the start state over the L-1
//               bytes before its chunk and then counts only inside the chunk.
//
//  kSpeculative Exact, two phases. Phase 1 scans every chunk from the start
//               state in parallel (a guess) and records exit states. Phase 2
//               walks chunks in order, re-scanning only those whose true
//               entry state differs from the guess; because motif automata
//               synchronize quickly, corrected exits almost always equal the
//               recorded ones and the propagation stops. Works for unbounded
//               patterns ('*'/'+') where no warm-up bound exists.
//
// Both strategies return byte-identical results to a sequential scan (this is
// property-tested across chunk counts).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/dense_dfa.hpp"
#include "automata/scanner.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::automata {

enum class ParallelStrategy { kWarmup, kSpeculative };

struct ParallelScanStats {
  std::uint64_t match_count = 0;
  std::size_t chunks = 0;
  std::size_t rescanned_chunks = 0;  // speculative only
};

class ParallelMatcher {
 public:
  /// The matcher borrows the automaton and pool; both must outlive it.
  ParallelMatcher(const DenseDfa& dfa, parallel::ThreadPool& pool);

  /// Counts occurrences in `text` using `chunks` parallel chunks.
  /// Falls back to kSpeculative when kWarmup is requested but the automaton
  /// has no synchronization bound.
  [[nodiscard]] ParallelScanStats count(std::string_view text, std::size_t chunks,
                                        ParallelStrategy strategy =
                                            ParallelStrategy::kWarmup) const;

  /// Counts and also collects match events (sorted by end offset).
  [[nodiscard]] ParallelScanStats collect(std::string_view text, std::size_t chunks,
                                          std::vector<Match>& out,
                                          ParallelStrategy strategy =
                                              ParallelStrategy::kWarmup) const;

 private:
  struct ChunkResult {
    ScanResult scan;
    std::vector<Match> matches;
  };

  [[nodiscard]] ParallelScanStats run(std::string_view text, std::size_t chunks,
                                      ParallelStrategy strategy, bool want_matches,
                                      std::vector<Match>* out) const;

  const DenseDfa& dfa_;
  parallel::ThreadPool& pool_;
};

}  // namespace hetopt::automata
