// Compiled scan kernels: a DenseDfa lowered into branch-free hot-loop form.
//
// The seed scanner decodes every byte through std::optional<Base> (a branch
// and a throw per byte) and reads accept metadata through bounds-checked
// .at(); that prices the paper's "expensive" DNA kernel an order of magnitude
// below what the hardware allows. CompiledDfa removes all per-byte control
// flow by *fusing it into the tables* at build time:
//
//  byte table    next[state * 256 + byte]. The ACGT decode (upper and lower
//                case) is folded into the indices; every non-base byte leads
//                to an absorbing SINK state with no accepts. A chunk is thus
//                scanned with two dependent L1 loads per byte and zero
//                branches; invalid input is detected once per chunk (final
//                state == sink) instead of once per byte, then reported with
//                the seed scanner's exact exception.
//
//  paired table  next2[state * 16 + (code0 << 2 | code1)] consumes two bases
//                per step, halving the dependent-load chain that limits a
//                single scan stream; pair_count holds the sum of the two
//                intermediate accept counts so per-position occurrence sums
//                stay exact. Input bytes are translated to 2-bit codes block
//                by block (validating each block up front).
//
//  multi-stream  count_multi() interleaves up to kMaxStreams independent
//                scans in one loop. Each stream's next-state load depends
//                only on its own chain, so K streams hide the L1/L2 load
//                latency a single chain must eat serially — this is how one
//                worker scans K chunks at far more than 1x speed.
//
// Accept metadata lives in flat arrays indexed without bounds checks; the
// constructor validates the automaton once (and throws std::invalid_argument
// on corruption) so the hot loops never have to.
//
// Every kernel returns byte-identical results to the seed scanner loops
// (scan_count_naive / scan_collect_naive), including the exception type and
// message on non-ACGT input. This is property-tested.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "automata/dense_dfa.hpp"
#include "automata/scanner.hpp"
#include "util/aligned_buffer.hpp"

namespace hetopt::automata {

class CompiledDfa {
 public:
  /// Streams one interleaved count_multi() loop carries at once; callers may
  /// pass any stream count, which is processed in batches of this width.
  static constexpr std::size_t kMaxStreams = 8;

  /// An empty, unusable kernel (every scan throws); exists so owners can
  /// default-construct and assign once the automaton is built.
  CompiledDfa() = default;

  /// Lowers `dfa` into the fused tables. Validates the automaton once and
  /// throws std::invalid_argument("CompiledDfa: ...") if it is corrupt.
  explicit CompiledDfa(const DenseDfa& dfa);

  /// States of the source automaton (the sink is one past this).
  [[nodiscard]] std::uint32_t state_count() const noexcept { return state_count_; }
  [[nodiscard]] StateId start() const noexcept { return start_; }
  [[nodiscard]] StateId sink() const noexcept { return state_count_; }
  [[nodiscard]] std::size_t synchronization_bound() const noexcept { return sync_bound_; }

  /// Unchecked accept metadata (valid for source states and the sink).
  [[nodiscard]] std::uint32_t accept_count(StateId s) const noexcept {
    return accept_count_[s];
  }
  [[nodiscard]] std::uint64_t accept_mask(StateId s) const noexcept {
    return accept_mask_[s];
  }

  /// Counts occurrences from `state`: auto-dispatches to the paired kernel
  /// for long runs and the byte kernel for short ones. Same results and
  /// errors as scan_count_naive.
  [[nodiscard]] ScanResult count(std::string_view text, StateId state) const;

  /// The byte-at-a-time fused kernel (one table load + one accept load per
  /// byte, no branches). Exposed for benchmarks and tests.
  [[nodiscard]] ScanResult count_fused(std::string_view text, StateId state) const;

  /// The 2-bases-per-step paired kernel. Exposed for benchmarks and tests.
  [[nodiscard]] ScanResult count_paired(std::string_view text, StateId state) const;

  /// Scans `n` independent (texts[i], entries[i]) streams, interleaving up to
  /// kMaxStreams of them per loop to hide load latency; results[i] receives
  /// what count() would return for stream i. Invalid input is reported when
  /// its stream finishes: the first failing stream to retire throws (its
  /// first bad byte; deterministic for given inputs) and the remaining
  /// results are discarded.
  void count_multi(const std::string_view* texts, const StateId* entries,
                   ScanResult* results, std::size_t n) const;

  /// Fused match collection: same events as scan_collect_naive (end offsets
  /// shifted by `base_offset`), appended to `out`.
  [[nodiscard]] ScanResult collect(std::string_view text, StateId state,
                                   std::size_t base_offset,
                                   std::vector<Match>& out) const;

  /// Raw fused byte table, next[state * 256 + byte], 64-byte aligned.
  /// Exposed for the prefiltered scan engine (simd_engine.hpp), which
  /// interleaves SIMD candidate-skips with single fused steps; invalid bytes
  /// lead to sink() like everywhere else.
  [[nodiscard]] const std::uint32_t* byte_table() const noexcept {
    return byte_next_.data();
  }

 private:
  void check_entry(StateId state) const;
  void count_multi_batch(const std::string_view* texts, const StateId* entries,
                         ScanResult* results, std::size_t n) const;
  /// Locates the first non-ACGT byte of `text` and throws the seed scanner's
  /// exact exception for it.
  [[noreturn]] void throw_invalid(std::string_view text) const;

  // The hot tables live in 64-byte-aligned storage (util::AlignedBuffer):
  // cache-line-aligned rows for the scalar kernels, aligned-load targets for
  // the SIMD tier.
  util::AlignedBuffer<std::uint32_t> byte_next_;     // (states + 1) * 256
  util::AlignedBuffer<std::uint32_t> pair_next_;     // (states + 1) * 16
  util::AlignedBuffer<std::uint32_t> pair_count_;    // accept sum of the two half-steps
  util::AlignedBuffer<std::uint32_t> accept_count_;  // states + 1 (sink accepts nothing)
  util::AlignedBuffer<std::uint64_t> accept_mask_;   // states + 1
  std::uint8_t code_[256] = {};              // byte -> 2-bit base code, 0xFF invalid
  std::uint32_t state_count_ = 0;
  StateId start_ = 0;
  std::size_t sync_bound_ = 0;
};

}  // namespace hetopt::automata
