// Hopcroft's DFA minimization (O(n·k·log n) partition refinement).
// Initial partition groups states by their (accept_mask, accept_count)
// signature so pattern identities survive minimization.
#pragma once

#include "automata/dense_dfa.hpp"

namespace hetopt::automata {

/// Returns the minimal automaton equivalent to `dfa` (same accept signatures
/// along every input). All states of the input are assumed reachable — the
/// constructions in this project only produce reachable states.
[[nodiscard]] DenseDfa minimize(const DenseDfa& dfa);

}  // namespace hetopt::automata
