#include "automata/subset.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace hetopt::automata {

namespace {

struct VectorHash {
  std::size_t operator()(const std::vector<StateId>& v) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (StateId s : v) h = util::hash_combine(h, s);
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

DenseDfa determinize(const Nfa& nfa, std::size_t synchronization_bound) {
  if (nfa.start() == kInvalidState) throw std::logic_error("determinize: NFA has no start");

  std::unordered_map<std::vector<StateId>, StateId, VectorHash> ids;
  std::vector<std::vector<StateId>> sets;
  std::vector<std::uint64_t> masks;

  const auto intern = [&](std::vector<StateId> set) -> StateId {
    const auto it = ids.find(set);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<StateId>(sets.size());
    std::uint64_t mask = 0;
    for (StateId s : set) mask |= nfa.accept_mask(s);
    ids.emplace(set, id);
    sets.push_back(std::move(set));
    masks.push_back(mask);
    return id;
  };

  const StateId start = intern(nfa.epsilon_closure({nfa.start()}));

  // BFS over reachable subsets; transition rows filled as we go.
  std::vector<std::array<StateId, dna::kAlphabetSize>> rows;
  for (StateId current = 0; current < sets.size(); ++current) {
    std::array<StateId, dna::kAlphabetSize> row{};
    for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
      const auto base = static_cast<dna::Base>(b);
      std::vector<StateId> next;
      for (StateId s : sets[current]) {
        for (const Nfa::Transition& t : nfa.transitions(s)) {
          if (t.on.contains(base)) next.push_back(t.to);
        }
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      row[b] = intern(nfa.epsilon_closure(std::move(next)));
    }
    rows.push_back(row);
    if (sets.size() > 4'000'000) {
      throw std::runtime_error("determinize: state explosion (>4M states)");
    }
  }

  DenseDfa dfa(static_cast<std::uint32_t>(sets.size()));
  for (StateId s = 0; s < rows.size(); ++s) {
    for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
      dfa.set_transition(s, static_cast<dna::Base>(b), rows[s][b]);
    }
    if (masks[s] != 0) {
      dfa.set_accept(s, masks[s], static_cast<std::uint32_t>(std::popcount(masks[s])));
    }
  }
  dfa.set_start(start);
  dfa.set_synchronization_bound(synchronization_bound);
  return dfa;
}

}  // namespace hetopt::automata
