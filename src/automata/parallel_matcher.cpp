#include "automata/parallel_matcher.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "parallel/chunk_queue.hpp"
#include "parallel/partitioner.hpp"

namespace hetopt::automata {

namespace {

/// The chunk layout for a schedule: equal chunks for static/dynamic pulls,
/// decreasing sizes for guided (where `chunks` becomes the tail-granularity
/// hint: the smallest guided chunk is ~1/4 of the equal-split size).
[[nodiscard]] std::vector<parallel::Chunk> layout_chunks(std::size_t total,
                                                         std::size_t chunks,
                                                         std::size_t workers,
                                                         parallel::SchedulePolicy schedule) {
  if (schedule == parallel::SchedulePolicy::kGuided) {
    return parallel::make_chunks_guided(total, workers,
                                        parallel::guided_min_chunk(total, chunks));
  }
  return parallel::make_chunks(total, chunks, /*halo=*/0);
}

}  // namespace

void scan_chunk_streams(const CompiledDfa& kernel, std::string_view text,
                        std::size_t warmup, const parallel::Chunk* chunks,
                        const std::size_t* ids, std::size_t m, ScanResult* res) {
  std::string_view views[CompiledDfa::kMaxStreams] = {};
  StateId entries[CompiledDfa::kMaxStreams] = {};
  for (std::size_t k = 0; k < m; ++k) {
    const parallel::Chunk& c = chunks[ids[k]];
    const std::size_t lead = std::min(warmup, c.begin);
    views[k] = text.substr(c.begin - lead, lead);
    entries[k] = kernel.start();
  }
  kernel.count_multi(views, entries, res, m);
  for (std::size_t k = 0; k < m; ++k) {
    const parallel::Chunk& c = chunks[ids[k]];
    entries[k] = res[k].final_state;
    views[k] = text.substr(c.begin, c.end - c.begin);
  }
  kernel.count_multi(views, entries, res, m);
}

ParallelMatcher::ParallelMatcher(const DenseDfa& dfa, parallel::ThreadPool& pool)
    : dfa_(&dfa), pool_(pool) {
  const std::string err = dfa.validate();
  if (!err.empty()) throw std::invalid_argument("ParallelMatcher: " + err);
  owned_kernel_ = CompiledDfa(dfa);
  kernel_ = &owned_kernel_;
}

ParallelMatcher::ParallelMatcher(const MatchEngine& engine, parallel::ThreadPool& pool)
    : pool_(pool) {
  if (engine.dfa() != nullptr) {
    // DFA-backed: run on the engine's already-lowered kernel; behavior is
    // identical to the DenseDfa constructor (same tables, no re-lowering).
    dfa_ = engine.dfa();
    kernel_ = engine.kernel();
  } else {
    if (engine.synchronization_bound() == 0) {
      throw std::invalid_argument("ParallelMatcher: engine '" + std::string(engine.name()) +
                                  "' has no synchronization bound and no DFA; "
                                  "chunked scanning would be inexact");
    }
    engine_ = &engine;
  }
}

ParallelScanStats ParallelMatcher::count(std::string_view text, std::size_t chunks,
                                         ParallelStrategy strategy) const {
  return run(text, chunks, MatcherOptions{strategy, 0}, /*want_matches=*/false, nullptr);
}

ParallelScanStats ParallelMatcher::count(std::string_view text, std::size_t chunks,
                                         const MatcherOptions& options) const {
  return run(text, chunks, options, /*want_matches=*/false, nullptr);
}

ParallelScanStats ParallelMatcher::collect(std::string_view text, std::size_t chunks,
                                           std::vector<Match>& out,
                                           ParallelStrategy strategy) const {
  return run(text, chunks, MatcherOptions{strategy, 0}, /*want_matches=*/true, &out);
}

ParallelScanStats ParallelMatcher::collect(std::string_view text, std::size_t chunks,
                                           std::vector<Match>& out,
                                           const MatcherOptions& options) const {
  return run(text, chunks, options, /*want_matches=*/true, &out);
}

ParallelScanStats ParallelMatcher::run(std::string_view text, std::size_t chunks,
                                       MatcherOptions options, bool want_matches,
                                       std::vector<Match>* out) const {
  ParallelScanStats stats;
  if (text.empty()) return stats;
  chunks = std::max<std::size_t>(1, std::min(chunks, text.size()));

  if (engine_ != nullptr) return run_engine(text, chunks, options.schedule, want_matches, out);

  // Demand-driven schedules scan every chunk independently (per-chunk
  // warm-up), which requires a synchronization bound; unbounded automata
  // fall back to the ordered static speculative waves.
  if (options.schedule != parallel::SchedulePolicy::kStatic) {
    if (dfa_->synchronization_bound() == 0) {
      options.schedule = parallel::SchedulePolicy::kStatic;
    } else {
      options.strategy = ParallelStrategy::kWarmup;
    }
  }
  if (options.strategy == ParallelStrategy::kWarmup && dfa_->synchronization_bound() == 0) {
    options.strategy = ParallelStrategy::kSpeculative;
  }

  const auto ranges =
      layout_chunks(text.size(), chunks, pool_.thread_count(), options.schedule);
  stats.chunks = ranges.size();
  if (scratch_.size() < ranges.size()) scratch_.resize(ranges.size());

  std::size_t streams = options.streams_per_worker;
  if (streams == 0) {  // auto: the chunks one worker would process serially anyway
    streams = (ranges.size() + pool_.thread_count() - 1) / pool_.thread_count();
  }
  streams = std::min(std::max<std::size_t>(streams, 1), CompiledDfa::kMaxStreams);

  const auto body = [&](std::size_t i) {
    return text.substr(ranges[i].begin, ranges[i].end - ranges[i].begin);
  };
  const auto scan_chunk = [&](std::size_t i, StateId entry) {
    ChunkResult& cr = scratch_[i];
    cr.matches.clear();  // clear() keeps capacity — reused across runs
    if (want_matches) {
      cr.scan = kernel_->collect(body(i), entry, ranges[i].begin, cr.matches);
    } else {
      cr.scan = kernel_->count(body(i), entry);
    }
  };
  // Scans one chunk, on the calling thread when that cannot change placement
  // (no pool round-trip), on a pool worker when workers are pinned — the
  // scan must not escape the configured placement measurements price.
  const auto scan_one = [&](std::size_t i, StateId entry) {
    if (pool_.has_worker_init()) {
      pool_.submit([&] { scan_chunk(i, entry); }).get();
    } else {
      scan_chunk(i, entry);
    }
  };
  // Scans chunk idx[j] from entries[j] for all j across the pool. Counting
  // interleaves `streams` chunks per worker task (multi-stream); collection
  // scans one chunk per task, since events append per chunk.
  const auto scan_wave = [&](const std::vector<std::size_t>& idx,
                             const std::vector<StateId>& entries) {
    if (idx.size() == 1) {
      scan_one(idx[0], entries[0]);
      return;
    }
    if (want_matches || streams == 1) {
      pool_.parallel_for(idx.size(),
                         [&](std::size_t j) { scan_chunk(idx[j], entries[j]); });
      return;
    }
    const std::size_t groups = (idx.size() + streams - 1) / streams;
    pool_.parallel_for(groups, [&](std::size_t g) {
      const std::size_t first = g * streams;
      const std::size_t m = std::min(streams, idx.size() - first);
      std::string_view views[CompiledDfa::kMaxStreams];
      ScanResult res[CompiledDfa::kMaxStreams];
      for (std::size_t k = 0; k < m; ++k) views[k] = body(idx[first + k]);
      kernel_->count_multi(views, entries.data() + first, res, m);
      for (std::size_t k = 0; k < m; ++k) scratch_[idx[first + k]].scan = res[k];
    });
  };

  if (ranges.size() == 1) {
    // Single chunk: equal to a sequential scan for either strategy.
    scan_one(0, dfa_->start());
  } else if (options.strategy == ParallelStrategy::kWarmup) {
    const std::size_t warmup = dfa_->synchronization_bound() - 1;
    const auto warm_entry = [&](std::size_t i) {
      // Warm up from the start state over the bytes preceding the chunk.
      const std::size_t lead = std::min(warmup, ranges[i].begin);
      if (lead == 0) return dfa_->start();
      return kernel_->count(text.substr(ranges[i].begin - lead, lead), dfa_->start())
          .final_state;
    };
    if (options.schedule != parallel::SchedulePolicy::kStatic) {
      // Demand-driven: an idle worker claims the next chunk (or the next
      // `streams` chunks, scanned interleaved) from the ticket queue.
      parallel::ChunkQueue queue(ranges.size());
      if (want_matches || streams == 1) {
        pool_.parallel_pull([&](std::size_t) {
          while (const auto t = queue.take_front()) scan_chunk(*t, warm_entry(*t));
        });
      } else {
        pool_.parallel_pull([&](std::size_t) {
          std::size_t idx[CompiledDfa::kMaxStreams] = {};
          ScanResult res[CompiledDfa::kMaxStreams];
          for (;;) {
            std::size_t m = 0;
            while (m < streams) {
              const auto t = queue.take_front();
              if (!t) break;
              idx[m++] = *t;
            }
            if (m == 0) break;
            scan_chunk_streams(*kernel_, text, warmup, ranges.data(), idx, m, res);
            for (std::size_t k = 0; k < m; ++k) scratch_[idx[k]].scan = res[k];
          }
        });
      }
    } else if (want_matches || streams == 1) {
      pool_.parallel_for(ranges.size(),
                         [&](std::size_t i) { scan_chunk(i, warm_entry(i)); });
    } else {
      const std::size_t groups = (ranges.size() + streams - 1) / streams;
      pool_.parallel_for(groups, [&](std::size_t g) {
        const std::size_t first = g * streams;
        const std::size_t m = std::min(streams, ranges.size() - first);
        std::size_t ids[CompiledDfa::kMaxStreams] = {};
        ScanResult res[CompiledDfa::kMaxStreams];
        for (std::size_t k = 0; k < m; ++k) ids[k] = first + k;
        scan_chunk_streams(*kernel_, text, warmup, ranges.data(), ids, m, res);
        for (std::size_t k = 0; k < m; ++k) scratch_[first + k].scan = res[k];
      });
    }
  } else {
    // Phase 1: optimistic parallel scan, every chunk entered at start state.
    std::vector<std::size_t> idx(ranges.size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::vector<StateId> entries(ranges.size(), dfa_->start());
    scan_wave(idx, entries);
    // Phase 2: propagate true entry states and re-scan mispredicted chunks
    // in parallel waves until the propagation settles. Chunk 0's entry is
    // always correct, so the settled prefix grows every wave and the loop
    // terminates; motif automata synchronize fast enough that one wave
    // (usually empty) is the norm.
    std::vector<StateId> scanned_from(ranges.size(), dfa_->start());
    std::vector<std::size_t> redo;
    std::vector<StateId> redo_entries;
    while (true) {
      redo.clear();
      StateId entry = dfa_->start();
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (entry != scanned_from[i]) redo.push_back(i);
        entry = scratch_[i].scan.final_state;
      }
      if (redo.empty()) break;
      redo_entries.resize(redo.size());
      for (std::size_t j = 0; j < redo.size(); ++j) {
        const std::size_t i = redo[j];  // never 0
        redo_entries[j] = scratch_[i - 1].scan.final_state;
        scanned_from[i] = redo_entries[j];
      }
      stats.rescanned_chunks += redo.size();
      scan_wave(redo, redo_entries);
    }
  }

  for (std::size_t i = 0; i < ranges.size(); ++i) {
    stats.match_count += scratch_[i].scan.match_count;
  }
  if (want_matches && out != nullptr) {
    collect_sorted(ranges.size(), out);
  }
  return stats;
}

ParallelScanStats ParallelMatcher::run_engine(std::string_view text, std::size_t chunks,
                                              parallel::SchedulePolicy schedule,
                                              bool want_matches,
                                              std::vector<Match>* out) const {
  // Generic engines: warm-up chunking through the chunk-aware MatchEngine
  // interface. The engine reads its own warm-up lead before each chunk, so
  // every chunk scan is independent — exactly the kWarmup strategy, under
  // any schedule (pre-assigned groups or demand-driven pulls).
  if (want_matches && !engine_->supports_collect()) {
    throw std::logic_error("ParallelMatcher: engine '" + std::string(engine_->name()) +
                           "' does not support match collection");
  }
  ParallelScanStats stats;
  const auto ranges = layout_chunks(text.size(), chunks, pool_.thread_count(), schedule);
  stats.chunks = ranges.size();
  if (scratch_.size() < ranges.size()) scratch_.resize(ranges.size());

  const auto scan_chunk = [&](std::size_t i) {
    ChunkResult& cr = scratch_[i];
    cr.matches.clear();  // clear() keeps capacity — reused across runs
    cr.scan = ScanResult{};
    if (want_matches) {
      cr.scan.match_count =
          engine_->collect_chunk(text, ranges[i].begin, ranges[i].end, cr.matches);
    } else {
      cr.scan.match_count = engine_->count_chunk(text, ranges[i].begin, ranges[i].end);
    }
  };
  if (ranges.size() == 1) {
    // Same placement-honesty rule as the kernel path: scan on the calling
    // thread unless workers are pinned.
    if (pool_.has_worker_init()) {
      pool_.submit([&] { scan_chunk(0); }).get();
    } else {
      scan_chunk(0);
    }
  } else if (schedule != parallel::SchedulePolicy::kStatic) {
    parallel::ChunkQueue queue(ranges.size());
    pool_.parallel_pull([&](std::size_t) {
      while (const auto t = queue.take_front()) scan_chunk(*t);
    });
  } else {
    pool_.parallel_for(ranges.size(), [&](std::size_t i) { scan_chunk(i); });
  }

  for (std::size_t i = 0; i < ranges.size(); ++i) {
    stats.match_count += scratch_[i].scan.match_count;
  }
  if (want_matches && out != nullptr) {
    collect_sorted(ranges.size(), out);
  }
  return stats;
}

void ParallelMatcher::collect_sorted(std::size_t range_count, std::vector<Match>* out) const {
  std::size_t total = out->size();
  for (std::size_t i = 0; i < range_count; ++i) total += scratch_[i].matches.size();
  out->reserve(total);
  for (std::size_t i = 0; i < range_count; ++i) {
    out->insert(out->end(), scratch_[i].matches.begin(), scratch_[i].matches.end());
  }
  std::sort(out->begin(), out->end(),
            [](const Match& a, const Match& b) { return a.end < b.end; });
}

}  // namespace hetopt::automata
