#include "automata/parallel_matcher.hpp"

#include <algorithm>
#include <stdexcept>

#include "parallel/partitioner.hpp"

namespace hetopt::automata {

ParallelMatcher::ParallelMatcher(const DenseDfa& dfa, parallel::ThreadPool& pool)
    : dfa_(dfa), pool_(pool) {
  const std::string err = dfa.validate();
  if (!err.empty()) throw std::invalid_argument("ParallelMatcher: " + err);
}

ParallelScanStats ParallelMatcher::count(std::string_view text, std::size_t chunks,
                                         ParallelStrategy strategy) const {
  return run(text, chunks, strategy, /*want_matches=*/false, nullptr);
}

ParallelScanStats ParallelMatcher::collect(std::string_view text, std::size_t chunks,
                                           std::vector<Match>& out,
                                           ParallelStrategy strategy) const {
  return run(text, chunks, strategy, /*want_matches=*/true, &out);
}

ParallelScanStats ParallelMatcher::run(std::string_view text, std::size_t chunks,
                                       ParallelStrategy strategy, bool want_matches,
                                       std::vector<Match>* out) const {
  ParallelScanStats stats;
  if (text.empty()) return stats;
  chunks = std::max<std::size_t>(1, std::min(chunks, text.size()));

  if (strategy == ParallelStrategy::kWarmup && dfa_.synchronization_bound() == 0) {
    strategy = ParallelStrategy::kSpeculative;
  }

  const auto ranges = parallel::make_chunks(text.size(), chunks, /*halo=*/0);
  stats.chunks = ranges.size();
  std::vector<ChunkResult> results(ranges.size());

  if (strategy == ParallelStrategy::kWarmup) {
    const std::size_t warmup = dfa_.synchronization_bound() - 1;
    pool_.parallel_for(ranges.size(), [&](std::size_t i) {
      const auto& r = ranges[i];
      // Warm up from the start state over the bytes preceding the chunk.
      const std::size_t lead = std::min(warmup, r.begin);
      StateId state = dfa_.start();
      if (lead > 0) {
        state = scan_count(dfa_, text.substr(r.begin - lead, lead), state).final_state;
      }
      if (want_matches) {
        results[i].scan = scan_collect(dfa_, text.substr(r.begin, r.end - r.begin), state,
                                       r.begin, results[i].matches);
      } else {
        results[i].scan = scan_count(dfa_, text.substr(r.begin, r.end - r.begin), state);
      }
    });
  } else {
    // Phase 1: optimistic parallel scan, every chunk entered at start state.
    pool_.parallel_for(ranges.size(), [&](std::size_t i) {
      const auto& r = ranges[i];
      if (want_matches) {
        results[i].scan = scan_collect(dfa_, text.substr(r.begin, r.end - r.begin),
                                       dfa_.start(), r.begin, results[i].matches);
      } else {
        results[i].scan =
            scan_count(dfa_, text.substr(r.begin, r.end - r.begin), dfa_.start());
      }
    });
    // Phase 2: propagate true entry states; re-scan mispredicted chunks.
    StateId entry = dfa_.start();
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      if (entry != dfa_.start()) {
        const auto& r = ranges[i];
        results[i].matches.clear();
        if (want_matches) {
          results[i].scan = scan_collect(dfa_, text.substr(r.begin, r.end - r.begin),
                                         entry, r.begin, results[i].matches);
        } else {
          results[i].scan =
              scan_count(dfa_, text.substr(r.begin, r.end - r.begin), entry);
        }
        ++stats.rescanned_chunks;
      }
      entry = results[i].scan.final_state;
    }
  }

  for (const auto& r : results) stats.match_count += r.scan.match_count;
  if (want_matches && out != nullptr) {
    std::size_t total = out->size();
    for (const auto& r : results) total += r.matches.size();
    out->reserve(total);
    for (auto& r : results) {
      out->insert(out->end(), r.matches.begin(), r.matches.end());
    }
    std::sort(out->begin(), out->end(),
              [](const Match& a, const Match& b) { return a.end < b.end; });
  }
  return stats;
}

}  // namespace hetopt::automata
