#include "automata/aho_corasick.hpp"

#include <algorithm>
#include <cctype>
#include <deque>
#include <stdexcept>

namespace hetopt::automata {

DenseDfa build_aho_corasick(const std::vector<std::string>& patterns) {
  if (patterns.empty()) throw std::invalid_argument("aho_corasick: no patterns");

  // --- Trie construction ----------------------------------------------------
  struct Node {
    std::array<std::int64_t, dna::kAlphabetSize> child;
    std::uint32_t fail = 0;
    std::uint64_t mask = 0;        // patterns ending exactly here (ids < 64)
    std::uint32_t count = 0;       // number of patterns ending exactly here
    Node() { child.fill(-1); }
  };
  std::vector<Node> trie(1);
  std::size_t max_len = 0;

  for (std::size_t pid = 0; pid < patterns.size(); ++pid) {
    const std::string& pat = patterns[pid];
    if (pat.empty()) throw std::invalid_argument("aho_corasick: empty pattern");
    std::size_t node = 0;
    for (char raw : pat) {
      const auto base = dna::base_from_char(raw);
      if (!base) {
        throw std::invalid_argument("aho_corasick: pattern '" + pat +
                                    "' contains non-ACGT character");
      }
      const auto b = static_cast<std::size_t>(*base);
      if (trie[node].child[b] < 0) {
        trie[node].child[b] = static_cast<std::int64_t>(trie.size());
        trie.emplace_back();
      }
      node = static_cast<std::size_t>(trie[node].child[b]);
    }
    if (pid < kMaxPatterns) trie[node].mask |= (1ULL << pid);
    ++trie[node].count;
    max_len = std::max(max_len, pat.size());
  }

  // --- BFS: failure links + dense goto --------------------------------------
  // After this pass child[] holds the complete transition function
  // delta(s, c) = goto(s, c) if defined else delta(fail(s), c).
  std::deque<std::uint32_t> queue;
  for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
    if (trie[0].child[b] < 0) {
      trie[0].child[b] = 0;
    } else {
      const auto ch = static_cast<std::uint32_t>(trie[0].child[b]);
      trie[ch].fail = 0;
      queue.push_back(ch);
    }
  }
  while (!queue.empty()) {
    const std::uint32_t u = queue.front();
    queue.pop_front();
    // Accumulate accepts along the suffix link so one table lookup suffices.
    trie[u].mask |= trie[trie[u].fail].mask;
    trie[u].count += trie[trie[u].fail].count;
    for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
      const std::int64_t v = trie[u].child[b];
      const auto fallback = static_cast<std::uint32_t>(trie[trie[u].fail].child[b]);
      if (v < 0) {
        trie[u].child[b] = fallback;
      } else {
        trie[static_cast<std::size_t>(v)].fail = fallback;
        queue.push_back(static_cast<std::uint32_t>(v));
      }
    }
  }

  // --- Emit dense automaton --------------------------------------------------
  DenseDfa dfa(static_cast<std::uint32_t>(trie.size()));
  for (std::uint32_t s = 0; s < trie.size(); ++s) {
    for (std::size_t b = 0; b < dna::kAlphabetSize; ++b) {
      dfa.set_transition(s, static_cast<dna::Base>(b),
                         static_cast<StateId>(trie[s].child[b]));
    }
    if (trie[s].count != 0) dfa.set_accept(s, trie[s].mask, trie[s].count);
  }
  dfa.set_start(0);
  dfa.set_synchronization_bound(max_len);
  dfa.set_pattern_count(patterns.size());
  return dfa;
}

}  // namespace hetopt::automata
