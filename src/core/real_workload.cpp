#include "core/real_workload.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <stdexcept>
#include <utility>

#include "automata/hopcroft.hpp"
#include "automata/regex.hpp"
#include "automata/scanner.hpp"
#include "automata/subset.hpp"
#include "core/executor.hpp"
#include "dna/alphabet.hpp"
#include "sim/multi.hpp"
#include "util/backoff.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace hetopt::core {

namespace {

/// One concrete ACGT instantiation of an IUPAC motif (first base of every
/// ambiguity class), used to plant findable copies into the genome. Regex
/// operators ('?', '*', '+', '(', ')', '|') are skipped: planting works on
/// the literal backbone and is best-effort anyway.
[[nodiscard]] std::string instantiate_motif(std::string_view motif) {
  std::string out;
  out.reserve(motif.size());
  for (const char c : motif) {
    const auto cls = dna::iupac_from_char(c);
    if (!cls) continue;  // regex operator
    for (unsigned b = 0; b < dna::kAlphabetSize; ++b) {
      if (cls->contains(static_cast<dna::Base>(b))) {
        out.push_back(dna::to_char(static_cast<dna::Base>(b)));
        break;
      }
    }
  }
  return out;
}

[[nodiscard]] std::size_t scaled_bytes(const Workload& logical,
                                       const RealWorkloadOptions& options) {
  const double raw = logical.size_mb * options.bytes_per_logical_mb;
  const auto bytes = static_cast<std::size_t>(std::llround(raw));
  return std::clamp(bytes, options.min_physical_bytes, options.max_physical_bytes);
}

[[nodiscard]] double affinity_model_factor(parallel::HostAffinity a) noexcept {
  switch (a) {
    case parallel::HostAffinity::kNone: return 1.00;
    case parallel::HostAffinity::kScatter: return 0.94;
    case parallel::HostAffinity::kCompact: return 1.06;
  }
  return 1.0;
}

[[nodiscard]] double affinity_model_factor(parallel::DeviceAffinity a) noexcept {
  switch (a) {
    case parallel::DeviceAffinity::kBalanced: return 1.00;
    case parallel::DeviceAffinity::kScatter: return 1.04;
    case parallel::DeviceAffinity::kCompact: return 1.10;
  }
  return 1.0;
}

/// Relative scan cost of the configured engine in the deterministic model.
/// The compiled-DFA factor is exactly 1 so pre-engine-axis numbers are
/// unchanged; bitap is modeled cheapest (its whole state is one register, no
/// table loads), Aho–Corasick slightly dearer than the minimized DFA (more
/// states, more table pressure). Real measurements of course override this —
/// the model only needs seeded runs to face an engine-shaped landscape.
[[nodiscard]] double engine_model_factor(automata::EngineKind k) noexcept {
  switch (k) {
    case automata::EngineKind::kCompiledDfa: return 1.00;
    case automata::EngineKind::kAhoCorasick: return 1.08;
    case automata::EngineKind::kBitap: return 0.85;
    // The SIMD bitap amortizes the same recurrence over vector lanes, so the
    // model prices it cheapest of all; the prefiltered DFA only wins on
    // sparse inputs, which the deterministic model does not see — slightly
    // under the plain DFA, never under bitap.
    case automata::EngineKind::kBitapSimd: return 0.70;
    case automata::EngineKind::kPrefilterDfa: return 0.95;
  }
  return 1.0;
}

/// Queue-traffic overhead of the shared-queue schedules in the deterministic
/// model (multiplies the combined-rate drain time). The static schedule never
/// reaches this — its formula is untouched, so its factor is exactly 1.0 and
/// pre-schedule-axis numbers are unchanged. Adaptive mostly works its own
/// seeded region (only steals touch the shared ends), guided pulls fewer,
/// bigger head chunks than dynamic's uniform tickets.
[[nodiscard]] double schedule_model_overhead(parallel::SchedulePolicy p) noexcept {
  switch (p) {
    case parallel::SchedulePolicy::kStatic: return 1.00;  // unused; see above
    case parallel::SchedulePolicy::kDynamic: return 1.03;
    case parallel::SchedulePolicy::kGuided: return 1.02;
    case parallel::SchedulePolicy::kAdaptive: return 1.01;
  }
  return 1.0;
}

}  // namespace

double real_workload_model_seconds(const opt::SystemConfig& config, std::size_t host_bytes,
                                   std::size_t device_bytes) {
  return real_workload_model_fleet_seconds(config, host_bytes, {device_bytes});
}

double real_workload_model_fleet_seconds(const opt::SystemConfig& config,
                                         std::size_t host_bytes,
                                         const std::vector<std::size_t>& device_bytes) {
  if (device_bytes.empty()) {
    throw std::invalid_argument("real_workload_model_fleet_seconds: no device pools");
  }
  // Sub-linear thread scaling (Amdahl-flavoured exponents) plus a fixed
  // offload launch cost; shapes match the simulated surface qualitatively so
  // searches face a realistic landscape, but the numbers are pure functions
  // of the executed work — that is what makes seeded runs reproducible.
  const double host_mb = static_cast<double>(host_bytes) / (1024.0 * 1024.0);
  const double host_rate =
      80.0 * std::pow(static_cast<double>(std::max(1, config.host_threads)), 0.8) /
      affinity_model_factor(config.host_affinity);
  const double device_rate =
      40.0 * std::pow(static_cast<double>(std::max(1, config.device_threads)), 0.7) /
      affinity_model_factor(config.device_affinity);
  const double engine = engine_model_factor(config.engine);
  if (config.schedule != parallel::SchedulePolicy::kStatic) {
    // Shared-queue schedules: every pool drains the combined work regardless
    // of the configured shares (dynamic/guided ignore them, adaptive steals
    // its way there), so the model is the summed-rate drain time plus the
    // offload launch cost, scaled by the policy's queue-traffic overhead.
    // This rewards demand-driven schedules exactly where the real runtime
    // does — at badly configured fractions — while a well-tuned static
    // split (whose optimum approaches the same combined-rate time) still
    // wins on overhead. K identical devices contribute K device rates.
    double total_mb = host_mb;
    for (const std::size_t bytes : device_bytes) {
      total_mb += static_cast<double>(bytes) / (1024.0 * 1024.0);
    }
    if (total_mb <= 0.0) return 1e-9;
    return 0.002 +
           schedule_model_overhead(config.schedule) * engine * total_mb /
               (host_rate + static_cast<double>(device_bytes.size()) * device_rate) +
           1e-9;
  }
  // Static: every pool drains its own share standalone; the run is the
  // slowest pool. Zero-share device pools are skipped entirely by the
  // executor, so they cost nothing — not even the launch.
  double worst = host_mb > 0.0 ? engine * host_mb / host_rate : 0.0;
  for (const std::size_t bytes : device_bytes) {
    const double device_mb = static_cast<double>(bytes) / (1024.0 * 1024.0);
    const double device_s =
        device_mb > 0.0 ? 0.002 + engine * device_mb / device_rate : 0.0;
    worst = std::max(worst, device_s);
  }
  return worst + 1e-9;
}

// --- RealWorkload -----------------------------------------------------------

RealWorkload::RealWorkload(const dna::GenomeCatalog& catalog, const Workload& logical,
                           const RealWorkloadOptions& options)
    : logical_(logical) {
  if (options.motifs.empty()) {
    throw std::invalid_argument("RealWorkload: no motifs to search for");
  }
  const std::size_t bytes = scaled_bytes(logical, options);
  // Plant a handful of findable copies per motif so tuning runs always have
  // non-trivial match counts to cross-check.
  std::vector<dna::PlantedMotif> planted;
  for (const std::string& motif : options.motifs) {
    std::string concrete = instantiate_motif(motif);
    if (concrete.empty() || concrete.size() > bytes) continue;
    planted.push_back({std::move(concrete), std::max<std::size_t>(8, bytes / 65536)});
  }
  sequence_ = catalog.materialize(logical.name, bytes, planted);

  // Build every engine the motif set qualifies for; record why the others
  // are skipped. The compiled-DFA engine handles the full motif language and
  // is therefore always present (compile errors propagate from here). The
  // materialized genome's first page is the density sample input-adaptive
  // engines (the prefiltered DFA's skip cutoff) probe at lowering time.
  const std::string_view sample =
      sequence_.view().substr(0, std::min(options.paged.page_bytes, sequence_.size()));
  for (const automata::EngineKind kind : automata::kAllEngineKinds) {
    const auto i = static_cast<std::size_t>(kind);
    engines_[i] = automata::try_lower(kind, options.motifs, &engine_gaps_[i], sample);
  }
  // The oracle every parallel/kernel run is checked against must stay
  // independent of the kernels under test: use the naive reference loop.
  // One slow scan per materialized workload (cached) is cheap.
  sequential_matches_ =
      automata::scan_count_naive(dfa(), sequence_.view(), dfa().start()).match_count;

  if (options.out_of_core) {
    // Materialize-to-disk fixture: the same bytes written raw to a temp
    // file and re-served through the bounded page cache, so out-of-core
    // measurements are checked against the in-memory oracle above. The path
    // is keyed by workload identity plus this object's address — unique per
    // live fixture without reaching for banned entropy sources.
    const std::uint64_t tag = util::hash_combine(
        util::hash_combine(util::hash_string(logical.name), sequence_.size()),
        reinterpret_cast<std::uintptr_t>(this));
    const std::filesystem::path path =
        std::filesystem::temp_directory_path() /
        ("hetopt_ooc_" + std::to_string(tag) + ".raw");
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::runtime_error("RealWorkload: cannot create out-of-core fixture at " +
                                 path.string());
      }
      const std::string_view view = sequence_.view();
      out.write(view.data(), static_cast<std::streamsize>(view.size()));
      if (!out) {
        throw std::runtime_error("RealWorkload: short write to out-of-core fixture " +
                                 path.string());
      }
    }
    paged_path_ = path.string();
    paged_ = std::make_unique<dna::PagedGenome>(
        std::make_unique<dna::FilePageSource>(paged_path_), options.paged);
  }
}

RealWorkload::~RealWorkload() {
  if (!paged_path_.empty()) {
    paged_.reset();  // drop the open file handle before removing the fixture
    std::error_code ec;
    std::filesystem::remove(paged_path_, ec);  // best-effort temp cleanup
  }
}

dna::PagedGenome& RealWorkload::paged_genome() const {
  if (paged_ == nullptr) {
    throw std::logic_error(
        "RealWorkload: paged_genome() requires RealWorkloadOptions::out_of_core");
  }
  return *paged_;
}

const automata::MatchEngine& RealWorkload::engine(automata::EngineKind kind) const {
  const automata::MatchEngine* e = find_engine(kind);
  if (e == nullptr) {
    throw std::invalid_argument("RealWorkload: engine '" +
                                std::string(automata::to_string(kind)) +
                                "' is not applicable to the motif set: " +
                                engine_gap(kind));
  }
  return *e;
}

std::vector<automata::EngineKind> RealWorkload::engines() const {
  std::vector<automata::EngineKind> kinds;
  for (const automata::EngineKind kind : automata::kAllEngineKinds) {
    if (find_engine(kind) != nullptr) kinds.push_back(kind);
  }
  return kinds;
}

// --- RealWorkloadEvaluator --------------------------------------------------

RealWorkloadEvaluator::RealWorkloadEvaluator(dna::GenomeCatalog catalog,
                                             RealWorkloadOptions options)
    : catalog_(std::move(catalog)), options_(std::move(options)) {
  if (options_.repeats == 0) {
    throw std::invalid_argument("RealWorkloadEvaluator: repeats must be >= 1");
  }
  if (options_.chunks_per_thread == 0) {
    throw std::invalid_argument("RealWorkloadEvaluator: chunks_per_thread must be >= 1");
  }
}

std::shared_ptr<const RealWorkload> RealWorkloadEvaluator::cached(
    const Workload& workload) const {
  const std::string key =
      workload.name + "@" + std::to_string(scaled_bytes(workload, options_));
  const util::MutexLock lock(mutex_);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, std::make_shared<RealWorkload>(catalog_, workload, options_))
             .first;
  }
  return it->second;
}

const RealWorkload& RealWorkloadEvaluator::real(const Workload& workload) const {
  return *cached(workload);
}

RealMeasurement RealWorkloadEvaluator::measure(const opt::SystemConfig& config,
                                               const Workload& workload) const {
  if (config.host_threads < 1 || config.device_threads < 1) {
    throw std::invalid_argument("RealWorkloadEvaluator: thread counts must be >= 1");
  }
  if (config.device_count < 1) {
    throw std::invalid_argument("RealWorkloadEvaluator: device_count must be >= 1");
  }
  const std::shared_ptr<const RealWorkload> rw = cached(workload);

  const auto host_threads = static_cast<std::size_t>(config.host_threads);
  const auto device_threads = static_cast<std::size_t>(config.device_threads);
  const auto devices = static_cast<std::size_t>(config.device_count);

  RealMeasurement m;
  m.pool_count = config.device_count + 1;
  m.host_chunks = host_threads * options_.chunks_per_thread;
  m.device_chunks = device_threads * options_.chunks_per_thread;

  // Configured shares, fleet order. The paper's pair splits by the raw
  // fraction (run() would pass exactly this pair to the fleet runtime, so
  // the classic path is unchanged); a larger fleet keeps the host fraction
  // and water-fills the device remainder across K identical Phis so they
  // finish together — the same sim::MultiDeviceMachine::distribute call the
  // differential-oracle test compares against.
  std::vector<double> shares;
  shares.reserve(devices + 1);
  if (devices == 1) {
    shares = {config.host_percent, 100.0 - config.host_percent};
  } else {
    const sim::ShareVector sv = sim::emil_with_phis(devices).distribute(
        rw->physical_mb(), config.host_percent, config.host_threads,
        config.host_affinity, config.device_threads, config.device_affinity);
    shares.push_back(sv.host_percent);
    for (const double d : sv.device_percent) shares.push_back(d);
  }

  // The configured engine runs every pool; asking for an engine the motif
  // set does not qualify for throws with the gap reason (callers size the
  // engine axis from RealWorkload::engines(), so search never gets here).
  std::vector<PoolSpec> specs;
  specs.reserve(devices + 1);
  PoolSpec host;
  host.threads = host_threads;
  host.share_percent = shares[0];
  host.chunks = m.host_chunks;
  if (options_.pin_threads) host.host_affinity = config.host_affinity;
  specs.push_back(host);
  for (std::size_t d = 0; d < devices; ++d) {
    PoolSpec dev;
    dev.threads = device_threads;
    dev.share_percent = shares[d + 1];
    dev.chunks = m.device_chunks;
    if (options_.pin_threads) dev.device_affinity = config.device_affinity;
    specs.push_back(dev);
  }
  HeterogeneousExecutor executor(rw->engine(config.engine), std::move(specs));

  // --- Self-healing measurement loop ----------------------------------------
  // Each successful attempt contributes one timing sample; an attempt that
  // throws (a genuine executor error, or an injected measure-fail) burns one
  // unit of the retry budget and backs off with seeded jitter before the
  // next try. With no armed fault plan this collects exactly `repeats`
  // samples, as before.
  const util::FaultInjector* injector = util::FaultInjector::current();
  util::Backoff backoff(injector != nullptr ? injector->plan().seed : 0);
  struct Sample {
    double seconds;
    ExecutionReport report;
  };
  std::vector<Sample> samples;
  samples.reserve(options_.repeats);
  std::size_t budget = options_.measure_retry_budget;
  while (samples.size() < options_.repeats) {
    try {
      if (injector != nullptr && injector->measure_fails()) {
        throw util::FaultInjectedError("injected measure-fail");
      }
      // Out-of-core mode streams the on-disk fixture through the paged
      // fleet path; the default scans the in-memory copy, as always.
      ExecutionReport report;
      if (options_.out_of_core) {
        PagedFleetOptions po;
        po.schedule = config.schedule;
        po.prefetch_depth = options_.paged_prefetch_depth;
        report = executor.run_fleet_paged(rw->paged_genome(), shares, po);
      } else {
        report = executor.run_fleet(rw->text(), config.schedule);
      }
      double seconds = report.total_seconds;
      if (injector != nullptr) {
        seconds *= injector->measure_noise(samples.size());
      }
      samples.push_back(Sample{seconds, std::move(report)});
    } catch (...) {
      ++m.measure_failures;  // recorded failure; retried below or given up on
      if (budget == 0) break;
      --budget;
      backoff.sleep();
    }
  }
  if (samples.empty()) {
    // Total measurement loss: the candidate is priced out, not the session.
    // seconds = +inf flows through opt::checked_energy (which admits +inf),
    // so the search simply never picks this configuration.
    m.valid = false;
    m.seconds = std::numeric_limits<double>::infinity();
    invalid_count_.fetch_add(1, std::memory_order_relaxed);
    return m;
  }
  // Median-of-k outlier rejection: with three or more samples, samples slower
  // than 4x the median are disqualified from being the reported run (a noise
  // spike must not masquerade as a measurement). The minimum can never be
  // rejected, so the no-fault reported run is unchanged.
  double reject_above = std::numeric_limits<double>::infinity();
  if (samples.size() >= 3) {
    std::vector<double> sorted;
    sorted.reserve(samples.size());
    for (const Sample& s : samples) sorted.push_back(s.seconds);
    std::sort(sorted.begin(), sorted.end());
    reject_above = 4.0 * sorted[sorted.size() / 2];
  }
  const Sample* best = nullptr;
  for (const Sample& s : samples) {
    if (s.seconds > reject_above) {
      ++m.rejected_outliers;
      continue;
    }
    if (best == nullptr || s.seconds < best->seconds) best = &s;
  }
  {
    const ExecutionReport& report = best->report;
    m.seconds = best->seconds;
    m.host_seconds = report.host_seconds;
    m.device_seconds = report.device_seconds;
    m.matches = report.total_matches();
    m.host_bytes = report.host_bytes;
    m.device_bytes = report.device_bytes;
    m.realized_host_percent = report.realized_host_percent;
    m.host_steals = report.host_steals;
    m.device_steals = report.device_steals;
    m.imbalance = report.imbalance;
    m.configured_percents.clear();
    m.realized_percents.clear();
    m.pool_seconds.clear();
    m.pool_bytes.clear();
    m.pool_steals.clear();
    for (const PoolReport& pool : report.pools) {
      m.configured_percents.push_back(pool.configured_percent);
      m.realized_percents.push_back(pool.realized_percent);
      m.pool_seconds.push_back(pool.seconds);
      m.pool_bytes.push_back(pool.bytes);
      m.pool_steals.push_back(pool.steals);
    }
    m.failed_pools = report.failed_pools;
    m.requeued_chunks = report.requeued_chunks;
    m.chunk_retries = report.chunk_retries;
    m.degraded = report.degraded;
  }
  if (options_.deterministic_timing) {
    // Model the *configured* split, not the realized bytes: under the
    // shared-queue schedules the realized distribution varies run to run,
    // and seeded deterministic tuning must not. (For static the two are the
    // same split, so pre-schedule-axis numbers are unchanged.) The
    // distribution-runtime fields are overridden to the configured split
    // too — a half-deterministic measurement whose bytes disagreed with its
    // modeled seconds would flake any test or JSON diff that reads them.
    //
    // The byte split uses the same cumulative-rounding scheme as the
    // executor's segment layout; for the 2-pool pair this is exactly
    // parallel::split_by_percent, so pre-fleet numbers are unchanged.
    const std::size_t total = rw->text().size();
    std::vector<std::size_t> bounds(shares.size() + 1, 0);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      cumulative += shares[i];
      const auto cut = static_cast<std::size_t>(
          std::llround(static_cast<double>(total) * cumulative / 100.0));
      bounds[i + 1] = std::max(bounds[i], std::min(total, cut));
    }
    bounds.back() = total;
    const std::size_t host_b = bounds[1] - bounds[0];
    std::vector<std::size_t> device_b(shares.size() - 1);
    for (std::size_t d = 0; d + 1 < shares.size(); ++d) {
      device_b[d] = bounds[d + 2] - bounds[d + 1];
    }
    m.seconds = real_workload_model_fleet_seconds(config, host_b, device_b);
    // The per-pool display fields use the static per-pool formula — a
    // pool's standalone drain time, deterministic in the config alone.
    opt::SystemConfig side = config;
    side.schedule = parallel::SchedulePolicy::kStatic;
    m.host_seconds = real_workload_model_seconds(side, host_b, 0);
    m.device_seconds = 0.0;
    m.configured_percents = shares;
    m.realized_percents.assign(shares.size(), 0.0);
    m.pool_seconds.assign(shares.size(), 0.0);
    m.pool_bytes.assign(shares.size(), 0);
    m.pool_steals.assign(shares.size(), 0);
    m.pool_seconds[0] = m.host_seconds;
    m.pool_bytes[0] = host_b;
    std::size_t device_total = 0;
    for (std::size_t d = 0; d < device_b.size(); ++d) {
      const double device_s = real_workload_model_seconds(side, 0, device_b[d]);
      m.device_seconds = std::max(m.device_seconds, device_s);
      m.pool_seconds[d + 1] = device_s;
      m.pool_bytes[d + 1] = device_b[d];
      device_total += device_b[d];
    }
    for (std::size_t i = 0; i < shares.size(); ++i) {
      m.realized_percents[i] =
          total == 0 ? 0.0
                     : 100.0 * static_cast<double>(m.pool_bytes[i]) /
                           static_cast<double>(total);
    }
    m.host_bytes = host_b;
    m.device_bytes = device_total;
    m.realized_host_percent = m.realized_percents[0];
    m.host_steals = 0;
    m.device_steals = 0;
    m.imbalance = 0.0;
  }
  m.throughput_mb_s = m.seconds > 0.0 ? rw->physical_mb() / m.seconds : 0.0;
  return m;
}

double RealWorkloadEvaluator::value(const opt::SystemConfig& config,
                                    const Workload& workload) const {
  return measure(config, workload).seconds;
}

double RealWorkloadEvaluator::score(const opt::SystemConfig& config,
                                    const Workload& workload) const {
  // Scoring is one more real run of the winner — the literal §IV-C protocol.
  return measure(config, workload).seconds;
}

}  // namespace hetopt::core
