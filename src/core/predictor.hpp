// The paper's Fig. 4 pipeline: normalize -> train Boosted Decision Tree
// Regression -> predict unseen configurations. One model per environment
// (host, device); the combined estimate is Eq. 2, max of the two sides.
#pragma once

#include <iosfwd>
#include <memory>

#include "core/workload.hpp"
#include "ml/boosted_trees.hpp"
#include "ml/dataset.hpp"
#include "opt/config.hpp"

namespace hetopt::core {

struct PredictorOptions {
  ml::BoostedTreesParams host_params;
  ml::BoostedTreesParams device_params;
  bool normalize = true;  // the Fig. 4 "Normalize Data" stage
  /// Fit in log-time space. Execution times span two orders of magnitude
  /// (0.02 s .. 42 s); least-squares boosting on raw seconds spends all its
  /// capacity on the slow corner. Log targets make residuals relative, which
  /// is what the paper's percent-error metric rewards.
  bool log_target = true;

  [[nodiscard]] static PredictorOptions defaults();
};

class PerformancePredictor {
 public:
  explicit PerformancePredictor(PredictorOptions options = PredictorOptions::defaults());

  /// Trains both environment models. Datasets must use the feature layout of
  /// core/features.hpp.
  void train(const ml::Dataset& host_data, const ml::Dataset& device_data);
  [[nodiscard]] bool trained() const noexcept { return trained_; }

  [[nodiscard]] double predict_host(
      double size_mb, int threads, parallel::HostAffinity affinity,
      automata::EngineKind engine = automata::EngineKind::kCompiledDfa,
      parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic,
      int pool_count = 2, double pool_share_percent = 100.0) const;
  [[nodiscard]] double predict_device(
      double size_mb, int threads, parallel::DeviceAffinity affinity,
      automata::EngineKind engine = automata::EngineKind::kCompiledDfa,
      parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic,
      int pool_count = 2, double pool_share_percent = 100.0) const;

  /// Eq. 2 over a configuration: split the workload by the configured
  /// fraction and take the slower side. Zero-byte sides predict 0. With
  /// device_count K > 1 the device fraction is shared equally by K identical
  /// device pools (the water-filled split of sim::MultiDeviceMachine), so
  /// static predicts max(host, one device's 1/K share) and the shared-queue
  /// schedules combine one host rate with K device rates.
  [[nodiscard]] double predict_combined(const opt::SystemConfig& config,
                                        double total_mb) const;

  [[nodiscard]] const ml::BoostedTreesRegressor& host_model() const { return host_model_; }
  [[nodiscard]] const ml::BoostedTreesRegressor& device_model() const {
    return device_model_;
  }

  /// Persists a trained predictor (normalizers + both ensembles + options),
  /// so the 7200-experiment sweep runs once per platform, ever. Throws
  /// std::runtime_error on malformed input / untrained predictors.
  void save(std::ostream& os) const;
  [[nodiscard]] static PerformancePredictor load(std::istream& is);

 private:
  PredictorOptions options_;
  ml::Normalizer host_norm_;
  ml::Normalizer device_norm_;
  ml::BoostedTreesRegressor host_model_;
  ml::BoostedTreesRegressor device_model_;
  bool trained_ = false;
};

}  // namespace hetopt::core
