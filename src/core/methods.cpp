#include "core/methods.hpp"

#include <memory>
#include <stdexcept>

#include "core/evaluator.hpp"
#include "core/tuning_session.hpp"
#include "opt/strategy.hpp"

namespace hetopt::core {

std::string_view to_string(Method m) noexcept {
  switch (m) {
    case Method::kEM: return "EM";
    case Method::kEML: return "EML";
    case Method::kSAM: return "SAM";
    case Method::kSAML: return "SAML";
  }
  return "?";
}

opt::Objective measurement_objective(const sim::Machine& machine, const Workload& workload,
                                     bool fresh_noise) {
  // Repetition 0 is the scoring/enumeration stream; the training sweep uses
  // 1; live re-measurements during an SA search start at 2.
  auto counter = std::make_shared<std::uint64_t>(1);
  return [&machine, workload, fresh_noise, counter](const opt::SystemConfig& c) {
    const std::uint64_t repetition = fresh_noise ? ++*counter : 0;
    return machine.measure_combined(workload.size_mb, c.host_percent, c.host_threads,
                                    c.host_affinity, c.device_threads, c.device_affinity,
                                    repetition);
  };
}

opt::Objective prediction_objective(const PerformancePredictor& predictor,
                                    const Workload& workload) {
  if (!predictor.trained()) {
    throw std::logic_error("prediction_objective: predictor not trained");
  }
  return [&predictor, workload](const opt::SystemConfig& c) {
    return predictor.predict_combined(c, workload.size_mb);
  };
}

// The four methods are thin presets over the Strategy x Evaluator core:
// EM/EML enumerate, SAM/SAML anneal; EM/SAM evaluate by measurement, EML/SAML
// by prediction. TuningSession::run re-scores every winner by measurement,
// which for the measurement-backed methods re-reads the repetition-0
// experiment the search already logged — so results are bit-identical to the
// historical direct implementations.

MethodResult run_em(const opt::ConfigSpace& space, const sim::Machine& machine,
                    const Workload& workload) {
  TuningSession session = TuningSession::preset(Method::kEM, machine, space);
  return to_method_result(session.run(workload), Method::kEM);
}

MethodResult run_eml(const opt::ConfigSpace& space, const sim::Machine& machine,
                     const Workload& workload, const PerformancePredictor& predictor) {
  TuningSession session = TuningSession::preset(Method::kEML, machine, space, &predictor);
  return to_method_result(session.run(workload), Method::kEML);
}

MethodResult run_sam(const opt::ConfigSpace& space, const sim::Machine& machine,
                     const Workload& workload, const opt::SaParams& sa) {
  // SAM measures on the same one-experiment-per-configuration stream as EM
  // (re-running an already-logged experiment would be wasted effort), so its
  // best-so-far is a subset-minimum of EM's stream: always >= EM's optimum
  // and decreasing in the iteration budget — exactly Fig. 9's SAM curve.
  TuningSession session(space);
  session.with_strategy(std::make_shared<opt::AnnealingSearch>(sa))
      .with_evaluator(std::make_shared<MeasurementEvaluator>(machine))
      .with_seed(sa.seed);
  return to_method_result(session.run(workload), Method::kSAM);
}

MethodResult run_saml(const opt::ConfigSpace& space, const sim::Machine& machine,
                      const Workload& workload, const PerformancePredictor& predictor,
                      const opt::SaParams& sa) {
  TuningSession session(space);
  session.with_strategy(std::make_shared<opt::AnnealingSearch>(sa))
      .with_evaluator(std::make_shared<PredictionEvaluator>(predictor, machine))
      .with_seed(sa.seed);
  return to_method_result(session.run(workload), Method::kSAML);
}

opt::SaParams sa_params_for_iterations(std::size_t iterations, std::uint64_t seed) {
  return opt::AnnealingSearch::schedule(iterations, seed);
}

namespace {

[[nodiscard]] MethodResult one_sided_baseline(const opt::ConfigSpace& space,
                                              const sim::Machine& machine,
                                              const Workload& workload, bool host_side) {
  // Fix the fraction to 100 (host-only) or 0 (device-only) and the busy
  // side's thread count to its maximum; measure all affinities of the busy
  // side. The idle side's parameters are irrelevant (zero bytes).
  MethodResult r;
  r.method = Method::kEM;
  bool first = true;
  opt::SystemConfig c;
  c.host_threads = space.host_threads().back();
  c.device_threads = space.device_threads().back();
  c.host_percent = host_side ? 100.0 : 0.0;
  if (host_side) {
    for (parallel::HostAffinity a : space.host_affinities()) {
      c.host_affinity = a;
      const double t = machine.measure_combined(workload.size_mb, c.host_percent,
                                                c.host_threads, c.host_affinity,
                                                c.device_threads, c.device_affinity);
      ++r.evaluations;
      if (first || t < r.measured_time) {
        first = false;
        r.measured_time = t;
        r.config = c;
      }
    }
  } else {
    for (parallel::DeviceAffinity a : space.device_affinities()) {
      c.device_affinity = a;
      const double t = machine.measure_combined(workload.size_mb, c.host_percent,
                                                c.host_threads, c.host_affinity,
                                                c.device_threads, c.device_affinity);
      ++r.evaluations;
      if (first || t < r.measured_time) {
        first = false;
        r.measured_time = t;
        r.config = c;
      }
    }
  }
  r.search_energy = r.measured_time;
  return r;
}

}  // namespace

MethodResult host_only_baseline(const opt::ConfigSpace& space, const sim::Machine& machine,
                                const Workload& workload) {
  return one_sided_baseline(space, machine, workload, /*host_side=*/true);
}

MethodResult device_only_baseline(const opt::ConfigSpace& space, const sim::Machine& machine,
                                  const Workload& workload) {
  return one_sided_baseline(space, machine, workload, /*host_side=*/false);
}

}  // namespace hetopt::core
