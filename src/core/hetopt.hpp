// Umbrella header: the public API of the hetopt library.
//
// hetopt reproduces "Combinatorial Optimization of Work Distribution on
// Heterogeneous Systems" (Memeti & Pllana, ICPPW 2016): simulated annealing
// explores the (threads, affinity, workload-fraction) configuration space of
// a CPU + accelerator platform while boosted decision tree regression
// predicts each candidate's execution time.
//
// Layering (bottom to top):
//   util      RNG, statistics, tables
//   dna       sequences, synthetic genomes, FASTA
//   automata  NFA/DFA motif matching engine (the application kernel)
//   parallel  thread pool, affinity vocabulary, partitioning
//   sim       the simulated Xeon E5 + Xeon Phi platform (time surface)
//   ml        datasets, boosted trees, linear/Poisson baselines, metrics
//   opt       configuration space, simulated annealing, enumeration
//   core      training sweep, predictor, EM/EML/SAM/SAML, autotuner
#pragma once

#include "core/autotuner.hpp"       // IWYU pragma: export
#include "core/executor.hpp"        // IWYU pragma: export
#include "core/features.hpp"        // IWYU pragma: export
#include "core/methods.hpp"         // IWYU pragma: export
#include "core/predictor.hpp"       // IWYU pragma: export
#include "core/training.hpp"        // IWYU pragma: export
#include "core/workload.hpp"        // IWYU pragma: export
