// Umbrella header: the public API of the hetopt library.
//
// hetopt reproduces "Combinatorial Optimization of Work Distribution on
// Heterogeneous Systems" (Memeti & Pllana, ICPPW 2016): a search strategy
// explores the (threads, affinity, workload-fraction) configuration space of
// a CPU + accelerator platform while an evaluation backend prices each
// candidate — by simulated measurement, by boosted-decision-tree prediction,
// or by the multi-accelerator water-filling makespan.
//
// Layering (bottom to top):
//   util      RNG, statistics, tables
//   dna       sequences, synthetic genomes, FASTA
//   automata  motif matching engines (the application kernel): NFA/DFA
//             pipeline, Aho–Corasick, bitap, unified behind MatchEngine —
//             a tuned axis of the configuration space
//   parallel  thread pool, affinity vocabulary, partitioning, batch map
//   sim       the simulated Xeon E5 + Xeon Phi platform (time surface),
//             plus the 1-host + K-device MultiDeviceMachine
//   ml        datasets, boosted trees, linear/Poisson baselines, metrics
//   opt       configuration space, SearchStrategy implementations
//             (exhaustive / random / annealing / genetic)
//   core      training sweep, predictor, Evaluator backends (measurement /
//             prediction / multi-device / real-workload), TuningSession,
//             strategy registry, Table II method presets, autotuner facade
#pragma once

#include "core/autotuner.hpp"           // IWYU pragma: export
#include "core/evaluator.hpp"           // IWYU pragma: export
#include "core/executor.hpp"            // IWYU pragma: export
#include "core/features.hpp"            // IWYU pragma: export
#include "core/methods.hpp"             // IWYU pragma: export
#include "core/predictor.hpp"           // IWYU pragma: export
#include "core/real_workload.hpp"       // IWYU pragma: export
#include "core/strategy_registry.hpp"   // IWYU pragma: export
#include "core/training.hpp"            // IWYU pragma: export
#include "core/tuning_session.hpp"      // IWYU pragma: export
#include "core/workload.hpp"            // IWYU pragma: export
