#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "core/features.hpp"
#include "ml/serialize.hpp"

namespace hetopt::core {

PredictorOptions PredictorOptions::defaults() {
  PredictorOptions o;
  o.host_params.rounds = 300;
  o.host_params.learning_rate = 0.08;
  o.host_params.tree.max_depth = 6;
  o.host_params.tree.min_samples_leaf = 3;
  o.host_params.tree.min_samples_split = 6;
  o.device_params = o.host_params;
  return o;
}

PerformancePredictor::PerformancePredictor(PredictorOptions options)
    : options_(options),
      host_model_(options.host_params),
      device_model_(options.device_params) {}

void PerformancePredictor::train(const ml::Dataset& host_data,
                                 const ml::Dataset& device_data) {
  if (host_data.empty() || device_data.empty()) {
    throw std::invalid_argument("PerformancePredictor::train: empty dataset");
  }
  if (host_data.feature_count() != kFeatureCount ||
      device_data.feature_count() != kFeatureCount) {
    throw std::invalid_argument("PerformancePredictor::train: unexpected feature layout");
  }
  const auto prepare = [this](const ml::Dataset& data,
                              const ml::Normalizer& norm) -> ml::Dataset {
    const ml::Dataset base = options_.normalize ? norm.transform(data) : data;
    if (!options_.log_target) return base;
    ml::Dataset logged(base.feature_names());
    for (std::size_t i = 0; i < base.size(); ++i) {
      const double t = base.target(i);
      if (t <= 0.0) {
        throw std::invalid_argument(
            "PerformancePredictor: log_target requires positive times");
      }
      logged.add(base.row(i), std::log(t));
    }
    return logged;
  };

  if (options_.normalize) {
    host_norm_.fit(host_data);
    device_norm_.fit(device_data);
  }
  host_model_.fit(prepare(host_data, host_norm_));
  device_model_.fit(prepare(device_data, device_norm_));
  trained_ = true;
}

double PerformancePredictor::predict_host(double size_mb, int threads,
                                          parallel::HostAffinity affinity,
                                          automata::EngineKind engine) const {
  if (!trained_) throw std::logic_error("PerformancePredictor: predict before train");
  if (size_mb <= 0.0) return 0.0;
  std::vector<double> f = host_features(size_mb, threads, affinity, engine);
  if (options_.normalize) {
    std::vector<double> norm(f.size());
    host_norm_.transform_row(f, norm);
    f = std::move(norm);
  }
  const double raw = host_model_.predict(f);
  // Times are positive; in log space exponentiate, otherwise clamp tiny
  // negative ensemble outputs.
  return options_.log_target ? std::exp(raw) : std::max(0.0, raw);
}

double PerformancePredictor::predict_device(double size_mb, int threads,
                                            parallel::DeviceAffinity affinity,
                                            automata::EngineKind engine) const {
  if (!trained_) throw std::logic_error("PerformancePredictor: predict before train");
  if (size_mb <= 0.0) return 0.0;
  std::vector<double> f = device_features(size_mb, threads, affinity, engine);
  if (options_.normalize) {
    std::vector<double> norm(f.size());
    device_norm_.transform_row(f, norm);
    f = std::move(norm);
  }
  const double raw = device_model_.predict(f);
  return options_.log_target ? std::exp(raw) : std::max(0.0, raw);
}

void PerformancePredictor::save(std::ostream& os) const {
  if (!trained_) throw std::runtime_error("PerformancePredictor::save: not trained");
  os << "hetopt-predictor-v1 " << (options_.normalize ? 1 : 0) << ' '
     << (options_.log_target ? 1 : 0) << '\n';
  if (options_.normalize) {
    ml::save(os, host_norm_);
    ml::save(os, device_norm_);
  }
  ml::save(os, host_model_);
  ml::save(os, device_model_);
}

PerformancePredictor PerformancePredictor::load(std::istream& is) {
  std::string magic;
  int normalize = 0;
  int log_target = 0;
  if (!(is >> magic >> normalize >> log_target) || magic != "hetopt-predictor-v1") {
    throw std::runtime_error("PerformancePredictor::load: bad header");
  }
  PredictorOptions options = PredictorOptions::defaults();
  options.normalize = normalize != 0;
  options.log_target = log_target != 0;
  PerformancePredictor p(options);
  if (options.normalize) {
    p.host_norm_ = ml::load_normalizer(is);
    p.device_norm_ = ml::load_normalizer(is);
  }
  p.host_model_ = ml::load_boosted_trees(is);
  p.device_model_ = ml::load_boosted_trees(is);
  p.trained_ = true;
  return p;
}

double PerformancePredictor::predict_combined(const opt::SystemConfig& config,
                                              double total_mb) const {
  if (total_mb <= 0.0) throw std::invalid_argument("predict_combined: non-positive size");
  const double host_mb = total_mb * config.host_percent / 100.0;
  const double device_mb = total_mb - host_mb;
  const double t_host =
      predict_host(host_mb, config.host_threads, config.host_affinity, config.engine);
  const double t_device =
      predict_device(device_mb, config.device_threads, config.device_affinity,
                     config.engine);
  return std::max(t_host, t_device);
}

}  // namespace hetopt::core
