#include "core/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <vector>

#include "core/features.hpp"
#include "ml/serialize.hpp"

namespace hetopt::core {

PredictorOptions PredictorOptions::defaults() {
  PredictorOptions o;
  o.host_params.rounds = 300;
  o.host_params.learning_rate = 0.08;
  o.host_params.tree.max_depth = 6;
  o.host_params.tree.min_samples_leaf = 3;
  o.host_params.tree.min_samples_split = 6;
  o.device_params = o.host_params;
  return o;
}

PerformancePredictor::PerformancePredictor(PredictorOptions options)
    : options_(options),
      host_model_(options.host_params),
      device_model_(options.device_params) {}

void PerformancePredictor::train(const ml::Dataset& host_data,
                                 const ml::Dataset& device_data) {
  if (host_data.empty() || device_data.empty()) {
    throw std::invalid_argument("PerformancePredictor::train: empty dataset");
  }
  if (host_data.feature_count() != kFeatureCount ||
      device_data.feature_count() != kFeatureCount) {
    throw std::invalid_argument("PerformancePredictor::train: unexpected feature layout");
  }
  const auto prepare = [this](const ml::Dataset& data,
                              const ml::Normalizer& norm) -> ml::Dataset {
    const ml::Dataset base = options_.normalize ? norm.transform(data) : data;
    if (!options_.log_target) return base;
    ml::Dataset logged(base.feature_names());
    for (std::size_t i = 0; i < base.size(); ++i) {
      const double t = base.target(i);
      if (t <= 0.0) {
        throw std::invalid_argument(
            "PerformancePredictor: log_target requires positive times");
      }
      logged.add(base.row(i), std::log(t));
    }
    return logged;
  };

  if (options_.normalize) {
    host_norm_.fit(host_data);
    device_norm_.fit(device_data);
  }
  host_model_.fit(prepare(host_data, host_norm_));
  device_model_.fit(prepare(device_data, device_norm_));
  trained_ = true;
}

double PerformancePredictor::predict_host(double size_mb, int threads,
                                          parallel::HostAffinity affinity,
                                          automata::EngineKind engine,
                                          parallel::SchedulePolicy schedule,
                                          int pool_count,
                                          double pool_share_percent) const {
  if (!trained_) throw std::logic_error("PerformancePredictor: predict before train");
  if (size_mb <= 0.0) return 0.0;
  std::vector<double> f = host_features(size_mb, threads, affinity, engine, schedule,
                                        pool_count, pool_share_percent);
  if (options_.normalize) {
    std::vector<double> norm(f.size());
    host_norm_.transform_row(f, norm);
    f = std::move(norm);
  }
  const double raw = host_model_.predict(f);
  // Times are positive; in log space exponentiate, otherwise clamp tiny
  // negative ensemble outputs.
  return options_.log_target ? std::exp(raw) : std::max(0.0, raw);
}

double PerformancePredictor::predict_device(double size_mb, int threads,
                                            parallel::DeviceAffinity affinity,
                                            automata::EngineKind engine,
                                            parallel::SchedulePolicy schedule,
                                            int pool_count,
                                            double pool_share_percent) const {
  if (!trained_) throw std::logic_error("PerformancePredictor: predict before train");
  if (size_mb <= 0.0) return 0.0;
  std::vector<double> f = device_features(size_mb, threads, affinity, engine, schedule,
                                          pool_count, pool_share_percent);
  if (options_.normalize) {
    std::vector<double> norm(f.size());
    device_norm_.transform_row(f, norm);
    f = std::move(norm);
  }
  const double raw = device_model_.predict(f);
  return options_.log_target ? std::exp(raw) : std::max(0.0, raw);
}

void PerformancePredictor::save(std::ostream& os) const {
  if (!trained_) throw std::runtime_error("PerformancePredictor::save: not trained");
  // The header records the feature-layout width so a file saved under an
  // older (narrower) layout fails at load time with a clear message instead
  // of throwing a row-size mismatch on every predict. v4 = the SIMD-era
  // layout (five-way engine one-hot: bitap-simd and prefilter-dfa columns).
  os << "hetopt-predictor-v4 " << kFeatureCount << ' ' << (options_.normalize ? 1 : 0)
     << ' ' << (options_.log_target ? 1 : 0) << '\n';
  if (options_.normalize) {
    ml::save(os, host_norm_);
    ml::save(os, device_norm_);
  }
  ml::save(os, host_model_);
  ml::save(os, device_model_);
}

PerformancePredictor PerformancePredictor::load(std::istream& is) {
  std::string magic;
  if (!(is >> magic)) {
    throw std::runtime_error("PerformancePredictor::load: bad header");
  }
  if (magic == "hetopt-predictor-v1") {
    throw std::runtime_error(
        "PerformancePredictor::load: v1 file uses a pre-schedule-axis feature "
        "layout; retrain and re-save the predictor");
  }
  if (magic == "hetopt-predictor-v2") {
    throw std::runtime_error(
        "PerformancePredictor::load: v2 file uses a pre-fleet feature layout "
        "(no pool_count/pool_share_pct columns); retrain and re-save the "
        "predictor");
  }
  if (magic == "hetopt-predictor-v3") {
    throw std::runtime_error(
        "PerformancePredictor::load: v3 file uses the pre-SIMD three-way "
        "engine one-hot (no bitap-simd/prefilter-dfa columns); retrain and "
        "re-save the predictor");
  }
  std::size_t features = 0;
  int normalize = 0;
  int log_target = 0;
  if (!(is >> features >> normalize >> log_target) || magic != "hetopt-predictor-v4") {
    throw std::runtime_error("PerformancePredictor::load: bad header");
  }
  if (features != kFeatureCount) {
    throw std::runtime_error(
        "PerformancePredictor::load: file has " + std::to_string(features) +
        " features, this build expects " + std::to_string(kFeatureCount) +
        "; retrain and re-save the predictor");
  }
  PredictorOptions options = PredictorOptions::defaults();
  options.normalize = normalize != 0;
  options.log_target = log_target != 0;
  PerformancePredictor p(options);
  if (options.normalize) {
    p.host_norm_ = ml::load_normalizer(is);
    p.device_norm_ = ml::load_normalizer(is);
  }
  p.host_model_ = ml::load_boosted_trees(is);
  p.device_model_ = ml::load_boosted_trees(is);
  p.trained_ = true;
  return p;
}

double PerformancePredictor::predict_combined(const opt::SystemConfig& config,
                                              double total_mb) const {
  if (total_mb <= 0.0) throw std::invalid_argument("predict_combined: non-positive size");
  if (config.device_count < 1) {
    throw std::invalid_argument("predict_combined: device_count < 1");
  }
  // The fleet shape reaches the models as features: K identical devices make
  // pool_count = K + 1 pools, the host keeps its whole side and each device
  // holds 1/K of the device side (the water-filled equal split of
  // sim::MultiDeviceMachine across identical accelerators). The K = 1
  // defaults reproduce the pre-fleet feature rows bit for bit.
  const int devices = config.device_count;
  const int pool_count = devices + 1;
  const double device_pool_share = 100.0 / static_cast<double>(devices);
  if (config.schedule != parallel::SchedulePolicy::kStatic) {
    // Shared-queue schedules drain the combined input with every pool
    // regardless of the configured fraction (the runtime ignores it for
    // dynamic/guided and steals its way off it for adaptive), so Eq. 2's
    // max-of-sides over a fraction split is the wrong shape. Predict each
    // environment scanning the whole input and combine the implied rates
    // (harmonic sum, with the device rate counted K times) — the
    // prediction-side analogue of the deterministic model's summed-rate
    // drain time.
    const double t_host = predict_host(total_mb, config.host_threads,
                                       config.host_affinity, config.engine,
                                       config.schedule, pool_count, 100.0);
    const double t_device = predict_device(total_mb, config.device_threads,
                                           config.device_affinity, config.engine,
                                           config.schedule, pool_count,
                                           device_pool_share);
    if (t_host <= 0.0) return t_device;
    if (t_device <= 0.0) return t_host;
    const double rate = 1.0 / t_host + static_cast<double>(devices) / t_device;
    return 1.0 / rate;
  }
  const double host_mb = total_mb * config.host_percent / 100.0;
  const double device_mb = (total_mb - host_mb) / static_cast<double>(devices);
  const double t_host =
      predict_host(host_mb, config.host_threads, config.host_affinity, config.engine,
                   config.schedule, pool_count, 100.0);
  // Identical devices with equal shares finish together, so the slowest
  // device is any one of them scanning its 1/K slice.
  const double t_device =
      predict_device(device_mb, config.device_threads, config.device_affinity,
                     config.engine, config.schedule, pool_count, device_pool_share);
  return std::max(t_host, t_device);
}

}  // namespace hetopt::core
