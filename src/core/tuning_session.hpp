// TuningSession: the composable successor of the four hardwired methods.
// Pick any opt::SearchStrategy, any core::Evaluator, a budget and a seed;
// run() searches, then re-scores the winner with a measurement (the §IV-C
// protocol). The paper's Table II methods are the four presets
//
//   EM   = ExhaustiveSearch x MeasurementEvaluator
//   EML  = ExhaustiveSearch x PredictionEvaluator
//   SAM  = AnnealingSearch  x MeasurementEvaluator
//   SAML = AnnealingSearch  x PredictionEvaluator
//
// and the presets reproduce the legacy run_em/run_eml/run_sam/run_saml
// results bit-for-bit at a fixed seed. GeneticSearch, RandomSearch and the
// MultiDeviceMeasurementEvaluator (1 host + K accelerators) compose the same
// way — that is the point of the redesign.
//
//   core::TuningSession session(space);
//   session.with_strategy("genetic")
//          .with_evaluator(std::make_shared<core::MeasurementEvaluator>(machine))
//          .with_budget(1000)
//          .with_seed(42);
//   const core::SessionReport r = session.run(workload);
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/evaluator.hpp"
#include "core/methods.hpp"
#include "opt/config_space.hpp"
#include "opt/strategy.hpp"

namespace hetopt::parallel {
class ThreadPool;
}

namespace hetopt::core {

struct SessionReport {
  std::string strategy;         // strategy name ("exhaustive", "genetic", ...)
  std::string evaluator;        // evaluator name ("measurement", ...)
  opt::SystemConfig config;     // the suggested configuration
  double measured_time = 0.0;   // measured execution time of `config` (score)
  double search_energy = 0.0;   // energy the search itself saw (may be predicted)
  std::size_t evaluations = 0;  // experiments / predictions performed
};

class TuningSession {
 public:
  explicit TuningSession(opt::ConfigSpace space);

  TuningSession& with_strategy(std::shared_ptr<opt::SearchStrategy> strategy);
  /// Registry lookup ("exhaustive", "random", "annealing", "genetic").
  TuningSession& with_strategy(std::string_view name);
  TuningSession& with_evaluator(std::shared_ptr<Evaluator> evaluator);
  TuningSession& with_budget(std::size_t max_evaluations);
  TuningSession& with_seed(std::uint64_t seed);
  /// Batched candidate evaluation runs on this pool (enumeration chunks and
  /// GA generations score concurrently; results are identical either way).
  TuningSession& with_thread_pool(std::shared_ptr<parallel::ThreadPool> pool);

  /// Searches, re-scores the winner by measurement, reports. Throws
  /// std::logic_error until both a strategy and an evaluator are set.
  [[nodiscard]] SessionReport run(const Workload& workload);

  [[nodiscard]] const opt::ConfigSpace& space() const noexcept { return space_; }
  [[nodiscard]] const opt::SearchStrategy* strategy() const noexcept { return strategy_.get(); }
  [[nodiscard]] const Evaluator* evaluator() const noexcept { return evaluator_.get(); }
  [[nodiscard]] const opt::SearchBudget& budget() const noexcept { return budget_; }

  /// The Table II methods as sessions. EML/SAML require a trained
  /// `predictor`; `sa_iterations` is the annealing budget (Fig. 9's x-axis).
  [[nodiscard]] static TuningSession preset(Method method, const sim::Machine& machine,
                                            opt::ConfigSpace space,
                                            const PerformancePredictor* predictor = nullptr,
                                            std::size_t sa_iterations = 1000,
                                            std::uint64_t seed = 0x7475ULL);

 private:
  opt::ConfigSpace space_;
  std::shared_ptr<opt::SearchStrategy> strategy_;
  std::shared_ptr<Evaluator> evaluator_;
  std::shared_ptr<parallel::ThreadPool> pool_;
  opt::SearchBudget budget_;
};

/// Squeezes a report into the legacy MethodResult shape (the four presets).
[[nodiscard]] MethodResult to_method_result(const SessionReport& report, Method method);

}  // namespace hetopt::core
