// The real-workload measurement pipeline: tune the *actual* PaREM-style
// chunk-parallel DNA matcher instead of the simulated Emil surface.
//
// core::RealWorkload materializes a physically scaled-down synthetic genome
// for one of the paper's logical workloads (dna::GenomeCatalog) and compiles
// the motif set into the dense scanning automaton. core::RealWorkloadEvaluator
// plugs into core::TuningSession exactly like the simulated evaluators: every
// candidate configuration is priced by *running* the heterogeneous executor —
// one host pool plus `device_count` emulated-device pools, sized, pinned and
// chunked from the opt::SystemConfig — and timing the overlapped scan.
// EM/EML/SAM/SAML therefore tune live code end-to-end, which is what the
// paper's testbed did.
//
// Two timing modes:
//   wall          (default) monotonic wall-clock of the real scan, min over
//                 `repeats` runs. Non-deterministic, as real measurements are.
//   deterministic the scan still runs (match counts stay live and exact) but
//                 the reported seconds come from a pure work model of the
//                 executed bytes/threads/affinity. Used by tests and CI smoke
//                 runs, where wall-clock noise would make seeds meaningless.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/compiled_dfa.hpp"
#include "automata/dense_dfa.hpp"
#include "automata/engine_kind.hpp"
#include "automata/match_engine.hpp"
#include "automata/parallel_matcher.hpp"
#include "core/evaluator.hpp"
#include "core/workload.hpp"
#include "dna/catalog.hpp"
#include "dna/paged_genome.hpp"
#include "dna/sequence.hpp"
#include "opt/config.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace hetopt::core {

struct RealWorkloadOptions {
  /// IUPAC motif expressions compiled into one scanning automaton.
  std::vector<std::string> motifs{"TATAWAW", "GGGCGG"};
  /// Physical bytes materialized per *logical* megabyte of the workload
  /// (the paper's genomes are GBs; the default scales human to ~3.2 MB).
  double bytes_per_logical_mb = 1024.0;
  /// Clamp on the materialized sequence size.
  std::size_t min_physical_bytes = std::size_t{64} * 1024;
  std::size_t max_physical_bytes = std::size_t{64} * 1024 * 1024;
  /// Timed repetitions per measurement; the minimum is reported (standard
  /// practice for wall-clock microbenchmarks).
  std::size_t repeats = 1;
  /// Chunks per pool worker (the matcher's chunking knob).
  std::size_t chunks_per_thread = 1;
  /// Apply the configuration's scatter/compact policies to the pool workers.
  bool pin_threads = true;
  /// Replace wall-clock with the deterministic work model (tests, CI).
  bool deterministic_timing = false;
  /// Extra measurement attempts (beyond `repeats`) a self-healing measure()
  /// may spend on failed runs before giving up and returning a marked-invalid
  /// (infinite-seconds) measurement. Retries back off with seeded jitter.
  std::size_t measure_retry_budget = 2;
  /// Opt-in out-of-core mode: the materialized genome is additionally
  /// written to a temporary raw file and every measurement streams it
  /// through a bounded page cache (dna::PagedGenome + the executor's paged
  /// fleet mode) instead of scanning the in-memory copy. Match counts stay
  /// checked against the same in-memory sequential oracle. The `paged`
  /// resident budget must cover the largest fleet a measured configuration
  /// builds (total workers across pools) or measure() attempts fail. The
  /// default (false) leaves every path byte-identical to before.
  bool out_of_core = false;
  /// Page geometry/budget of the out-of-core cache. The halo default (63)
  /// covers any motif shorter than 64 bases; longer motif sets need a
  /// larger halo (>= synchronization bound - 1).
  dna::PagedGenomeOptions paged{};
  /// Prefetch lookahead per pool for out-of-core measurements.
  std::size_t paged_prefetch_depth = 2;
};

/// A logical workload made physical: the scaled synthetic genome plus every
/// match engine applicable to the motif set, with the sequential match count
/// as ground truth. The compiled-DFA engine always exists; Aho–Corasick and
/// bitap are built when the motif set qualifies (literal ACGT patterns /
/// <= 64 summed pattern bits) and skipped — with a recorded reason — when
/// not, so the tuner's engine axis can be sized per workload.
class RealWorkload {
 public:
  RealWorkload(const dna::GenomeCatalog& catalog, const Workload& logical,
               const RealWorkloadOptions& options);

  // The out-of-core fixture owns a temp file; neither it nor the engines
  // are copyable.
  RealWorkload(const RealWorkload&) = delete;
  RealWorkload& operator=(const RealWorkload&) = delete;
  ~RealWorkload();

  [[nodiscard]] const Workload& logical() const noexcept { return logical_; }
  [[nodiscard]] std::string_view text() const noexcept { return sequence_.view(); }
  [[nodiscard]] const automata::DenseDfa& dfa() const noexcept {
    return *engines_[0]->dfa();
  }
  /// The motif automaton lowered into the compiled scan kernels (built once
  /// per workload; what the executor and the kernel bench scan with).
  [[nodiscard]] const automata::CompiledDfa& compiled() const noexcept {
    return *engines_[0]->kernel();
  }
  [[nodiscard]] std::size_t physical_bytes() const noexcept { return sequence_.size(); }
  [[nodiscard]] double physical_mb() const noexcept {
    return static_cast<double>(sequence_.size()) / (1024.0 * 1024.0);
  }
  /// Match count of a plain sequential scan — the oracle every parallel
  /// configuration must reproduce exactly.
  [[nodiscard]] std::uint64_t sequential_matches() const noexcept {
    return sequential_matches_;
  }

  // --- Out-of-core fixture ---------------------------------------------------
  /// True when this workload was materialized with
  /// RealWorkloadOptions::out_of_core: the genome also lives in a temp raw
  /// file behind a bounded page cache, and measurements stream it.
  [[nodiscard]] bool out_of_core() const noexcept { return paged_ != nullptr; }
  /// The paged view of the materialized genome (same bytes as text(), served
  /// from disk through the bounded cache — the parity tests check both the
  /// content and the match counts against the in-memory copy). Thread-safe
  /// like any PagedGenome; throws std::logic_error when not out-of-core.
  [[nodiscard]] dna::PagedGenome& paged_genome() const;
  /// Path of the on-disk raw fixture ("" when not out-of-core).
  [[nodiscard]] const std::string& paged_path() const noexcept { return paged_path_; }

  // --- Engine selection ------------------------------------------------------
  /// The engine of `kind`, or nullptr when the motif set does not qualify.
  [[nodiscard]] const automata::MatchEngine* find_engine(
      automata::EngineKind kind) const noexcept {
    return engines_[static_cast<std::size_t>(kind)].get();
  }
  /// The engine of `kind`; throws std::invalid_argument (with the gap
  /// reason) when it is not applicable to the motif set.
  [[nodiscard]] const automata::MatchEngine& engine(automata::EngineKind kind) const;
  /// The kinds applicable to this motif set, in axis order (always includes
  /// kCompiledDfa) — what ConfigSpace::with_engines() should receive.
  [[nodiscard]] std::vector<automata::EngineKind> engines() const;
  /// Why `kind` is unavailable ("" when it is available).
  [[nodiscard]] const std::string& engine_gap(automata::EngineKind kind) const noexcept {
    return engine_gaps_[static_cast<std::size_t>(kind)];
  }

 private:
  Workload logical_;
  // Indexed by EngineKind; [0] (compiled-dfa) is always present.
  std::array<std::unique_ptr<const automata::MatchEngine>, automata::kEngineKindCount>
      engines_;
  std::array<std::string, automata::kEngineKindCount> engine_gaps_;
  dna::Sequence sequence_;
  std::uint64_t sequential_matches_ = 0;
  // Out-of-core fixture: the on-disk raw copy of sequence_ plus its paged
  // view (null when the mode is off). The file is removed in the dtor.
  std::string paged_path_;
  std::unique_ptr<dna::PagedGenome> paged_;
};

/// Everything one timed run of a configuration produced.
struct RealMeasurement {
  double seconds = 0.0;          // overlapped time (max of pools; min over repeats)
  double host_seconds = 0.0;     // host-side wall time of the reported run
  double device_seconds = 0.0;   // slowest emulated-device-side wall time
  double throughput_mb_s = 0.0;  // physical MB scanned per reported second
  std::uint64_t matches = 0;     // total motif occurrences found
  std::size_t host_bytes = 0;    // bytes the host side actually scanned
  std::size_t device_bytes = 0;  // bytes all device pools scanned, summed
  std::size_t host_chunks = 0;
  std::size_t device_chunks = 0;  // chunks *per device pool*
  // The distribution runtime's view of the reported run (executor.hpp):
  // under the shared-queue schedules the realized fraction emerges at
  // runtime; under static it equals the configured one and steals are 0.
  double realized_host_percent = 0.0;
  std::uint64_t host_steals = 0;
  std::uint64_t device_steals = 0;  // summed over all device pools
  double imbalance = 0.0;

  // --- Fleet view (pool 0 = host, pools 1..K = devices) ----------------------
  // One entry per pool of the executed fleet, in fleet order. For the
  // paper's pair (device_count = 1) these have exactly two entries and
  // mirror the scalars above; the differential-oracle test layer compares
  // configured_percents against sim::MultiDeviceMachine::distribute.
  int pool_count = 2;                       // host + device_count
  std::vector<double> configured_percents;  // shares the run was asked for
  std::vector<double> realized_percents;    // shares that actually emerged
  std::vector<double> pool_seconds;         // per-pool wall time
  std::vector<std::size_t> pool_bytes;      // per-pool scanned bytes
  std::vector<std::uint64_t> pool_steals;   // per-pool cross-segment claims

  // --- Self-healing / failure view -------------------------------------------
  /// False when every attempt failed and the retry budget ran out; `seconds`
  /// is then +infinity, so opt::checked_energy prices the candidate out
  /// instead of aborting the tuning session.
  bool valid = true;
  /// Measurement attempts that threw (and were retried with backoff).
  std::uint64_t measure_failures = 0;
  /// Timing samples rejected by the median-of-k outlier filter.
  std::uint64_t rejected_outliers = 0;
  // Executor failure telemetry of the reported run (ExecutionReport):
  std::vector<std::size_t> failed_pools;
  std::uint64_t requeued_chunks = 0;
  std::uint64_t chunk_retries = 0;
  bool degraded = false;
};

/// Evaluator backend that prices configurations by executing the real
/// matcher. Materialized workloads are cached per (genome, scale), so a
/// tuning run generates the genome once. Not concurrent(): timed runs must
/// not overlap or they would perturb each other's measurements.
class RealWorkloadEvaluator final : public Evaluator {
 public:
  explicit RealWorkloadEvaluator(dna::GenomeCatalog catalog, RealWorkloadOptions options = {});

  [[nodiscard]] std::string_view name() const noexcept override { return "real-workload"; }
  [[nodiscard]] double score(const opt::SystemConfig& config,
                             const Workload& workload) const override;

  /// One full measurement of `config` (what value()/score() consume the
  /// seconds of); exposed so benches can report throughput and match counts.
  ///
  /// `config.device_count` sizes the executed fleet: 1 (the default) runs
  /// the paper's host+device pair on the exact legacy path; K > 1 runs one
  /// host pool plus K emulated-device pools, with the device remainder of
  /// the configured fraction water-filled across the K devices by
  /// sim::MultiDeviceMachine::distribute (the Emil host + K Phi model) so
  /// identical devices finish together.
  [[nodiscard]] RealMeasurement measure(const opt::SystemConfig& config,
                                        const Workload& workload) const;

  /// The materialized physical workload behind `workload` (cached).
  [[nodiscard]] const RealWorkload& real(const Workload& workload) const;

  [[nodiscard]] const RealWorkloadOptions& options() const noexcept { return options_; }

  /// Measurements that exhausted their retry budget and were returned
  /// marked-invalid (infinite seconds) over this evaluator's lifetime — how
  /// a tuning run reports "kept searching through N hard failures".
  [[nodiscard]] std::uint64_t invalid_measurements() const noexcept {
    return invalid_count_.load(std::memory_order_relaxed);
  }

 protected:
  [[nodiscard]] double value(const opt::SystemConfig& config,
                             const Workload& workload) const override;
  [[nodiscard]] bool concurrent() const noexcept override { return false; }

 private:
  [[nodiscard]] std::shared_ptr<const RealWorkload> cached(const Workload& workload) const;

  dna::GenomeCatalog catalog_;
  RealWorkloadOptions options_;
  mutable std::atomic<std::uint64_t> invalid_count_{0};
  mutable util::Mutex mutex_;
  mutable std::map<std::string, std::shared_ptr<const RealWorkload>> cache_
      HETOPT_GUARDED_BY(mutex_);
};

/// The deterministic work model (exposed for tests): overlapped seconds for
/// scanning `host_bytes` + `device_bytes` under `config`, including the
/// configured engine's rate factor (the default compiled-DFA engine's factor
/// is exactly 1, so pre-engine-axis numbers are unchanged) and the
/// configured schedule's shape: static is exactly the pre-schedule-axis
/// formula (factor 1.0); the shared-queue schedules drain the combined work
/// with both pools, costed at the summed rates times a policy-specific
/// queue-traffic factor (dynamic > guided > adaptive — adaptive touches the
/// shared ends least). Pure.
[[nodiscard]] double real_workload_model_seconds(const opt::SystemConfig& config,
                                                 std::size_t host_bytes,
                                                 std::size_t device_bytes);

/// Fleet generalization of the work model: `device_bytes[i]` is the share of
/// device pool i (all device pools run `config.device_threads` under
/// `config.device_affinity` — the identical-accelerator assumption of
/// sim::emil_with_phis). Static is the max over the host's drain and every
/// device's launch + drain; the shared-queue schedules drain the combined
/// bytes at the summed rate (one host rate + K device rates). With one
/// device this is *literally* real_workload_model_seconds — the 2-arg form
/// delegates here — so pre-fleet seeded numbers are unchanged. Pure.
[[nodiscard]] double real_workload_model_fleet_seconds(
    const opt::SystemConfig& config, std::size_t host_bytes,
    const std::vector<std::size_t>& device_bytes);

}  // namespace hetopt::core
