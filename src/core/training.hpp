// The training-data sweep of §IV-B: 7200 experiments — 2880 on the host
// (4 genomes x 40 fractions x 6 thread counts x 3 affinities) and 4320 on
// the device (4 x 40 x 9 x 3). Each experiment "runs" the application via
// the simulated machine and records (features, measured seconds).
#pragma once

#include <utility>
#include <vector>

#include "dna/catalog.hpp"
#include "ml/dataset.hpp"
#include "opt/config_space.hpp"
#include "sim/machine.hpp"

namespace hetopt::core {

struct TrainingData {
  ml::Dataset host;    // 2880 rows for the paper's sweep
  ml::Dataset device;  // 4320 rows
};

struct TrainingSweepOptions {
  /// Fractions of each genome to measure, in percent. The paper uses
  /// 2.5..100 in 2.5 steps (40 values).
  std::vector<double> fractions;
  /// Thread axes (defaults = the paper's Table I values, 6 host / 9 device).
  std::vector<int> host_threads;
  std::vector<int> device_threads;
  /// Noise epoch of the sweep. Training experiments are separate runs from
  /// the optimizers' experiments, so they must not share noise draws —
  /// otherwise the learner can memorize the "measurement noise" and every
  /// ML method becomes unrealistically exact.
  std::uint64_t repetition = 1;

  [[nodiscard]] static TrainingSweepOptions paper();
  /// A reduced sweep for fast unit tests.
  [[nodiscard]] static TrainingSweepOptions tiny();
};

/// Runs the sweep on `machine` for every genome in `catalog`.
[[nodiscard]] TrainingData generate_training_data(const sim::Machine& machine,
                                                  const dna::GenomeCatalog& catalog,
                                                  const TrainingSweepOptions& options);

}  // namespace hetopt::core
