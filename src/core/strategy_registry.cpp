#include "core/strategy_registry.hpp"

#include <stdexcept>
#include <utility>

namespace hetopt::core {

StrategyRegistry::StrategyRegistry() {
  add("exhaustive", [] { return std::make_shared<opt::ExhaustiveSearch>(); });
  add("random", [] { return std::make_shared<opt::RandomSearch>(); });
  add("annealing", [] { return std::make_shared<opt::AnnealingSearch>(); });
  add("genetic", [] { return std::make_shared<opt::GeneticSearch>(); });
}

StrategyRegistry& StrategyRegistry::instance() {
  static StrategyRegistry registry;
  return registry;
}

void StrategyRegistry::add(std::string name, StrategyFactory factory) {
  if (name.empty()) throw std::invalid_argument("StrategyRegistry: empty name");
  if (!factory) throw std::invalid_argument("StrategyRegistry: null factory");
  factories_[std::move(name)] = std::move(factory);
}

std::shared_ptr<opt::SearchStrategy> StrategyRegistry::create(std::string_view name) const {
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string message = "StrategyRegistry: unknown strategy \"";
    message += name;
    message += "\"; available:";
    for (const auto& [known, factory] : factories_) {
      message += ' ';
      message += known;
    }
    throw std::invalid_argument(message);
  }
  return it->second();
}

bool StrategyRegistry::contains(std::string_view name) const noexcept {
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> StrategyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

std::shared_ptr<opt::SearchStrategy> make_strategy(std::string_view name) {
  return StrategyRegistry::instance().create(name);
}

}  // namespace hetopt::core
