// A divisible workload to be shared between host and device: for the paper's
// application this is "scan `size_mb` of the named DNA sequence".
#pragma once

#include <stdexcept>
#include <string>

namespace hetopt::core {

struct Workload {
  std::string name;     // e.g. "human"
  double size_mb = 0.0; // logical input size

  Workload() = default;
  Workload(std::string n, double mb) : name(std::move(n)), size_mb(mb) {
    if (!(mb > 0.0)) throw std::invalid_argument("Workload: size must be positive");
  }
};

}  // namespace hetopt::core
