// The real (non-simulated) heterogeneous execution path: given a match
// engine and a physical DNA sequence, distribute the bytes across the host
// pool and the emulated-device pool and scan both sides *concurrently*,
// mirroring the paper's overlapped offload model.
//
// How the bytes are distributed is a tuned axis (parallel/schedule.hpp):
//
//   static    split by the configured fraction, each side scans its share
//             and joins — the seed behavior and the paper's model;
//   dynamic   one shared chunk queue, both pools pull from the front, the
//             realized split emerges from relative speeds;
//   guided    shared queue with guided (decreasing) chunk sizes;
//   adaptive  the shared pool is seeded by the configured fraction — the
//             host drains its region from the front, the device drains its
//             region from the back, and a side that finishes early *steals*
//             the other side's remaining chunks.
//
// Every policy produces byte-identical match counts (each chunk scan warms
// up over its own lead bytes); what changes is who scans what and when.
// ExecutionReport records the realized fraction, steal counts, and an
// imbalance metric so the tuner and the benches can see the difference.
//
// The executor is engine-generic: any automata::MatchEngine (compiled DFA,
// Aho–Corasick, bitap) drives both sides, which is how the tuner prices the
// engine axis with live runs. The legacy DenseDfa constructor wraps the
// automaton in an owned compiled-DFA engine and behaves exactly as before.
//
// Substitution note: with no Xeon Phi present, the "device" share runs on an
// emulated device — a second thread pool on the host. Results (match counts,
// positions) are exactly what the offloaded code would produce; *performance*
// of a real device is the business of hetopt::sim, not this class.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "automata/dense_dfa.hpp"
#include "automata/match_engine.hpp"
#include "automata/parallel_matcher.hpp"
#include "parallel/affinity.hpp"
#include "parallel/schedule.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::core {

struct ExecutionReport {
  std::uint64_t host_matches = 0;
  std::uint64_t device_matches = 0;
  /// Bytes each side *actually* scanned. Under the static schedule this is
  /// the configured split; under the shared-queue schedules it is the
  /// realized distribution. The two always sum to the input size.
  std::size_t host_bytes = 0;
  std::size_t device_bytes = 0;
  double host_seconds = 0.0;    // wall time of the host share
  double device_seconds = 0.0;  // wall time of the emulated-device share
  double total_seconds = 0.0;   // max of the two (overlapped execution)

  /// The schedule that actually ran (a requested demand-driven schedule
  /// degrades to kStatic when the engine has no synchronization bound).
  parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic;
  double configured_host_percent = 0.0;
  /// host_bytes as a percentage of the input — equals the configured
  /// fraction under static, emerges at runtime under the shared queues.
  double realized_host_percent = 0.0;
  /// Chunks a side claimed beyond its configured share (adaptive: work
  /// stolen across the boundary; dynamic/guided: demand that crossed it;
  /// static: always 0).
  std::uint64_t host_steals = 0;
  std::uint64_t device_steals = 0;
  /// (slowest side - fastest side) / slowest side, over the sides that
  /// scanned bytes; 0 when one side (or neither) worked. 0 = perfectly
  /// overlapped, → 1 = one side idled while the other carried the run.
  double imbalance = 0.0;

  [[nodiscard]] std::uint64_t total_matches() const noexcept {
    return host_matches + device_matches;
  }

  /// One human-readable line — matches, bytes, seconds, realized vs
  /// configured fraction, steals, imbalance — for examples and bench logs.
  [[nodiscard]] std::string to_string() const;
};

class HeterogeneousExecutor {
 public:
  /// `host_threads` / `device_threads` size the two worker pools. The
  /// automaton is copied into an owned compiled-DFA engine (the pre-engine
  /// behavior). Pinning is opt-in: when an affinity policy is given, the
  /// corresponding pool's workers are placed at startup (best-effort, Linux
  /// pinning; HostAffinity::kNone and unsupported platforms leave threads
  /// floating), mirroring the paper's OMP_PROC_BIND / KMP_AFFINITY knobs on
  /// the live code path. The defaults leave all threads floating — the
  /// pre-pinning behavior.
  HeterogeneousExecutor(const automata::DenseDfa& dfa, std::size_t host_threads,
                        std::size_t device_threads,
                        std::optional<parallel::HostAffinity> host_affinity = std::nullopt,
                        std::optional<parallel::DeviceAffinity> device_affinity = std::nullopt);

  /// Engine-generic construction; the engine must outlive the executor.
  /// Engines without a DFA behind them must have a positive synchronization
  /// bound (throws std::invalid_argument otherwise).
  HeterogeneousExecutor(const automata::MatchEngine& engine, std::size_t host_threads,
                        std::size_t device_threads,
                        std::optional<parallel::HostAffinity> host_affinity = std::nullopt,
                        std::optional<parallel::DeviceAffinity> device_affinity = std::nullopt);

  /// Scans `text`, assigning `host_percent` of the bytes to the host pool
  /// and the remainder to the device pool, both running concurrently.
  /// Match counts are exact across the split boundary (chunk-parallel
  /// matching with warm-up handles motifs spanning the cut).
  /// One chunk per pool worker, static schedule.
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent);

  /// Same, with explicit chunk counts for the two sides (the real-workload
  /// tuner derives these from the configuration's thread axes). Zero means
  /// "one chunk per worker".
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent,
                                    std::size_t host_chunks, std::size_t device_chunks);

  /// Same, under an explicit distribution schedule. The shared-queue
  /// schedules (dynamic/guided/adaptive) need per-chunk warm-up and
  /// therefore an engine with a positive synchronization bound; unbounded
  /// engines run the static path (the report records the effective
  /// schedule).
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent,
                                    std::size_t host_chunks, std::size_t device_chunks,
                                    parallel::SchedulePolicy schedule);

  /// The engine both sides execute.
  [[nodiscard]] const automata::MatchEngine& engine() const noexcept { return *engine_; }

 private:
  [[nodiscard]] ExecutionReport run_static(std::string_view text, double host_percent,
                                           std::size_t host_chunks,
                                           std::size_t device_chunks);
  [[nodiscard]] ExecutionReport run_shared(std::string_view text, double host_percent,
                                           std::size_t host_chunks,
                                           std::size_t device_chunks,
                                           parallel::SchedulePolicy schedule);

  std::unique_ptr<const automata::MatchEngine> owned_engine_;  // DenseDfa compat path
  const automata::MatchEngine* engine_;
  parallel::ThreadPool host_pool_;
  parallel::ThreadPool device_pool_;
  automata::ParallelMatcher host_matcher_;
  automata::ParallelMatcher device_matcher_;
};

}  // namespace hetopt::core
