// The real (non-simulated) heterogeneous execution path: given a match
// engine and a physical DNA sequence, distribute the bytes across an ordered
// fleet of worker pools — pool 0 is the host, pools 1..N-1 are emulated
// devices — and scan every share *concurrently*, mirroring the paper's
// overlapped offload model generalized to the multi-accelerator machines the
// paper names as future work.
//
// How the bytes are distributed is a tuned axis (parallel/schedule.hpp):
//
//   static    split by the configured shares, each pool scans its segment
//             and joins — the seed behavior and the paper's model;
//   dynamic   one shared chunk queue, every pool pulls from the front, the
//             realized split emerges from relative speeds;
//   guided    shared queue with guided (decreasing) chunk sizes;
//   adaptive  one queue per configured segment — each pool drains its own
//             segment (the last pool descending from the back, everyone
//             else ascending from the front, so adjacent pools meet at the
//             boundary exactly as the 2-pool host/device pair did), and a
//             pool that finishes early *steals* from the nearest unfinished
//             segment: forward steals take the front, backward steals the
//             back, so every boundary behaves like the classic two-ended
//             scheme between its two neighbors.
//
// Every policy produces byte-identical match counts (each chunk scan warms
// up over its own lead bytes); what changes is who scans what and when.
// ExecutionReport records per-pool realized shares, steal counts, and an
// imbalance metric so the tuner and the benches can see the difference.
//
// The executor is engine-generic: any automata::MatchEngine (compiled DFA,
// Aho–Corasick, bitap) drives every pool, which is how the tuner prices the
// engine axis with live runs. The legacy host+device constructors build a
// 2-pool fleet and behave exactly as before.
//
// Substitution note: with no Xeon Phi present, every device share runs on an
// emulated device — another thread pool on the host. Results (match counts,
// positions) are exactly what the offloaded code would produce; *performance*
// of a real device fleet is the business of hetopt::sim, not this class.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "automata/dense_dfa.hpp"
#include "automata/match_engine.hpp"
#include "automata/parallel_matcher.hpp"
#include "parallel/affinity.hpp"
#include "parallel/schedule.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::core {

/// One pool of the fleet. Pool 0 is conventionally the host (pin with
/// `host_affinity`); pools 1..N-1 are emulated devices (pin with
/// `device_affinity`). Setting both affinities on one pool is rejected.
struct PoolSpec {
  /// Workers in this pool's thread pool (at least 1).
  std::size_t threads = 1;
  /// Configured share of the input bytes, in percent. The shares of a fleet
  /// must sum to 100 (run_fleet overloads can override them per run).
  double share_percent = 0.0;
  /// Chunks this pool's segment is cut into under the static and adaptive
  /// schedules; 0 means one chunk per worker.
  std::size_t chunks = 0;
  /// Watchdog deadline for this pool when the recovery path is active: the
  /// pool is declared failed after this long without completing a chunk.
  /// 0 means "use the executor's RecoveryOptions::watchdog_seconds".
  double watchdog_seconds = 0.0;
  std::optional<parallel::HostAffinity> host_affinity;
  std::optional<parallel::DeviceAffinity> device_affinity;
};

/// Tunables of the fault-tolerant execution path (active only while a
/// util::FaultInjector plan with execution faults is armed — the no-fault
/// hot path bypasses all of it).
struct RecoveryOptions {
  /// Default per-pool watchdog deadline: a pool that completes no chunk for
  /// this long is declared failed and its unclaimed work is redistributed.
  double watchdog_seconds = 0.05;
  /// Scan attempts per chunk before degrading to the naive scanner.
  std::size_t max_chunk_attempts = 3;
};

/// Tunables of the fleet's paged (out-of-core) scan mode. Each pool streams
/// its contiguous page range through the shared PagedGenome cache with its
/// own PrefetchReader; the per-pool schedule/chunking/prefetch knobs of
/// automata::PagedScanOptions are set from these.
struct PagedFleetOptions {
  /// Distribution *within* each pool's page range (the range itself is cut
  /// by the shares, statically). kAdaptive degenerates to kDynamic on the
  /// paged path; the report records the effective schedule.
  parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kDynamic;
  /// Per-pool prefetch lookahead, clamped inside each pool's budget slice.
  std::size_t prefetch_depth = 2;
  /// Chunks each page is cut into per pool; 0 = one per pool worker.
  std::size_t chunks_per_page = 0;
};

/// Per-pool slice of an ExecutionReport.
struct PoolReport {
  std::uint64_t matches = 0;
  /// Bytes this pool *actually* scanned (configured share under static,
  /// realized share under the shared-queue schedules).
  std::size_t bytes = 0;
  double seconds = 0.0;  // wall time of this pool's share
  double configured_percent = 0.0;
  /// bytes as a percentage of the input.
  double realized_percent = 0.0;
  /// Chunks this pool claimed out of another pool's configured segment.
  std::uint64_t steals = 0;
  /// True when the recovery path declared this pool dead or stalled; its
  /// unclaimed chunks were requeued to the survivors.
  bool failed = false;
};

struct ExecutionReport {
  /// One entry per pool, in fleet order (pool 0 = host). The legacy scalar
  /// fields below are always kept in sync: host_* mirrors pools[0] and
  /// device_* aggregates pools[1..] (sums, with device_seconds the max).
  std::vector<PoolReport> pools;

  std::uint64_t host_matches = 0;
  std::uint64_t device_matches = 0;
  /// Bytes each side *actually* scanned. Under the static schedule this is
  /// the configured split; under the shared-queue schedules it is the
  /// realized distribution. The two always sum to the input size.
  std::size_t host_bytes = 0;
  std::size_t device_bytes = 0;
  double host_seconds = 0.0;    // wall time of the host share
  double device_seconds = 0.0;  // wall time of the slowest device share
  double total_seconds = 0.0;   // max over the pools (overlapped execution)

  /// The schedule that actually ran (a requested demand-driven schedule
  /// degrades to kStatic when the engine has no synchronization bound).
  parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic;
  double configured_host_percent = 0.0;
  /// host_bytes as a percentage of the input — equals the configured
  /// fraction under static, emerges at runtime under the shared queues.
  double realized_host_percent = 0.0;
  /// Chunks a side claimed beyond its configured share (adaptive: work
  /// stolen across a segment boundary; dynamic/guided: demand that crossed
  /// it; static: always 0).
  std::uint64_t host_steals = 0;
  std::uint64_t device_steals = 0;
  /// (slowest pool - fastest pool) / slowest pool, over the pools that
  /// scanned bytes; 0 when fewer than two pools worked. 0 = perfectly
  /// overlapped, → 1 = a pool idled while another carried the run.
  double imbalance = 0.0;

  // Failure telemetry, filled only by the recovery path (all stay at their
  // zero defaults on a no-fault run, keeping the report bit-identical).
  /// Pools declared dead or stalled, ascending.
  std::vector<std::size_t> failed_pools;
  /// Chunks claimed out of a failed pool's unclaimed remainder (by the
  /// survivors or the coordinator's final sweep).
  std::uint64_t requeued_chunks = 0;
  /// Chunk scan attempts that failed and were retried.
  std::uint64_t chunk_retries = 0;
  /// True when some chunk exhausted its retry budget and fell back to the
  /// naive reference scanner.
  bool degraded = false;

  [[nodiscard]] std::uint64_t total_matches() const noexcept {
    return host_matches + device_matches;
  }

  /// One human-readable line — matches, bytes, seconds, then one section per
  /// pool (realized vs configured share, wall time), per-pool steal counts,
  /// imbalance — for examples and bench logs.
  [[nodiscard]] std::string to_string() const;
};

class HeterogeneousExecutor {
 public:
  /// `host_threads` / `device_threads` size a classic 2-pool fleet. The
  /// automaton is copied into an owned compiled-DFA engine (the pre-engine
  /// behavior). Pinning is opt-in: when an affinity policy is given, the
  /// corresponding pool's workers are placed at startup (best-effort, Linux
  /// pinning; HostAffinity::kNone and unsupported platforms leave threads
  /// floating), mirroring the paper's OMP_PROC_BIND / KMP_AFFINITY knobs on
  /// the live code path. The defaults leave all threads floating — the
  /// pre-pinning behavior.
  HeterogeneousExecutor(const automata::DenseDfa& dfa, std::size_t host_threads,
                        std::size_t device_threads,
                        std::optional<parallel::HostAffinity> host_affinity = std::nullopt,
                        std::optional<parallel::DeviceAffinity> device_affinity = std::nullopt);

  /// Engine-generic 2-pool construction; the engine must outlive the
  /// executor. Engines without a DFA behind them must have a positive
  /// synchronization bound (throws std::invalid_argument otherwise).
  HeterogeneousExecutor(const automata::MatchEngine& engine, std::size_t host_threads,
                        std::size_t device_threads,
                        std::optional<parallel::HostAffinity> host_affinity = std::nullopt,
                        std::optional<parallel::DeviceAffinity> device_affinity = std::nullopt);

  /// Fleet construction: one thread pool per PoolSpec, in order (thread
  /// counts are clamped to at least 1, as ThreadPool does). Throws
  /// std::invalid_argument when `pools` is empty, a share is outside
  /// [0, 100], or a spec sets both affinity kinds. The automaton is copied
  /// into an owned compiled-DFA engine.
  HeterogeneousExecutor(const automata::DenseDfa& dfa, std::vector<PoolSpec> pools);

  /// Engine-generic fleet construction; the engine must outlive the
  /// executor.
  HeterogeneousExecutor(const automata::MatchEngine& engine, std::vector<PoolSpec> pools);

  /// Scans `text`, assigning `host_percent` of the bytes to pool 0 and the
  /// remainder to pool 1 (requires a 2-pool fleet, the legacy shape; throws
  /// std::logic_error otherwise). Match counts are exact across every split
  /// boundary (chunk-parallel matching with warm-up handles motifs spanning
  /// a cut). One chunk per pool worker, static schedule.
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent);

  /// Same, with explicit chunk counts for the two sides (the real-workload
  /// tuner derives these from the configuration's thread axes). Zero means
  /// "one chunk per worker".
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent,
                                    std::size_t host_chunks, std::size_t device_chunks);

  /// Same, under an explicit distribution schedule. The shared-queue
  /// schedules (dynamic/guided/adaptive) need per-chunk warm-up and
  /// therefore an engine with a positive synchronization bound; unbounded
  /// engines run the static path (the report records the effective
  /// schedule).
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent,
                                    std::size_t host_chunks, std::size_t device_chunks,
                                    parallel::SchedulePolicy schedule);

  /// Scans `text` across the whole fleet using the constructed
  /// share_percent of every pool.
  [[nodiscard]] ExecutionReport run_fleet(
      std::string_view text,
      parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic);

  /// Same, with per-run shares overriding the constructed ones. `shares`
  /// must have one entry per pool, each in [0, 100], summing to 100. Pools
  /// whose share rounds to zero bytes are skipped entirely under the static
  /// schedule (no scan, no launch — their report fields stay exactly zero),
  /// generalizing the 2-pool 0%/100% behavior.
  [[nodiscard]] ExecutionReport run_fleet(std::string_view text,
                                          const std::vector<double>& shares,
                                          parallel::SchedulePolicy schedule);

  /// Scans a paged (out-of-core) corpus across the whole fleet: the page
  /// range is divided by the constructed share_percent of every pool (cuts
  /// land on page seams; the stored halos keep counts exact across them),
  /// every pool runs the streaming scan path concurrently, and the genome's
  /// resident budget is divided across the pools in proportion to their
  /// worker counts so concurrent backpressure can never deadlock. Requires
  /// an engine with a positive synchronization bound, a genome halo of at
  /// least bound-1 bytes, and a resident budget covering the fleet's total
  /// workers (throws std::invalid_argument otherwise). Counts are
  /// byte-identical to run_fleet over the same bytes (property-tested).
  [[nodiscard]] ExecutionReport run_fleet_paged(dna::PagedGenome& genome,
                                                const PagedFleetOptions& options = {});

  /// Same, with per-run shares overriding the constructed ones (one entry
  /// per pool, each in [0, 100], summing to 100; zero-page pools are skipped
  /// entirely, as under the static in-memory schedule).
  [[nodiscard]] ExecutionReport run_fleet_paged(dna::PagedGenome& genome,
                                                const std::vector<double>& shares,
                                                const PagedFleetOptions& options = {});

  /// run_fleet that additionally collects every match event into `out`
  /// (global end offsets, ascending — byte-identical to a sequential
  /// scan_collect_naive over the whole text). Requires an engine with
  /// supports_collect(); throws std::invalid_argument otherwise. This is
  /// the N-way position-parity hook the test layer drives.
  [[nodiscard]] ExecutionReport collect_fleet(std::string_view text,
                                              const std::vector<double>& shares,
                                              parallel::SchedulePolicy schedule,
                                              std::vector<automata::Match>& out);

  [[nodiscard]] std::size_t pool_count() const noexcept { return specs_.size(); }
  [[nodiscard]] const std::vector<PoolSpec>& pools() const noexcept { return specs_; }

  /// Tunes the fault-tolerant path (watchdog deadline, retry budget). Takes
  /// effect on the next run; irrelevant while no fault plan is armed.
  void set_recovery(const RecoveryOptions& options) noexcept { recovery_ = options; }
  [[nodiscard]] const RecoveryOptions& recovery() const noexcept { return recovery_; }

  /// The engine every pool executes.
  [[nodiscard]] const automata::MatchEngine& engine() const noexcept { return *engine_; }

 private:
  void build_fleet(std::vector<PoolSpec> pools);
  [[nodiscard]] ExecutionReport run_impl(std::string_view text,
                                         const std::vector<double>& shares,
                                         const std::vector<std::size_t>& chunk_counts,
                                         parallel::SchedulePolicy schedule);
  [[nodiscard]] ExecutionReport run_static_fleet(std::string_view text,
                                                 const std::vector<double>& shares,
                                                 const std::vector<std::size_t>& chunk_counts);
  [[nodiscard]] ExecutionReport run_shared_fleet(std::string_view text,
                                                 const std::vector<double>& shares,
                                                 const std::vector<std::size_t>& chunk_counts,
                                                 parallel::SchedulePolicy schedule);
  /// The fault-tolerant twin of run_shared_fleet/collect_fleet: watchdogged
  /// pools, failed-pool requeue, per-chunk retry with naive-scanner
  /// degradation. Entered only while an armed fault plan has execution
  /// faults. `out` non-null collects match events (collect_fleet mode).
  [[nodiscard]] ExecutionReport run_recovery_fleet(std::string_view text,
                                                   const std::vector<double>& shares,
                                                   const std::vector<std::size_t>& chunk_counts,
                                                   parallel::SchedulePolicy schedule,
                                                   std::vector<automata::Match>* out);
  [[nodiscard]] std::vector<std::size_t> resolve_chunk_counts() const;

  std::unique_ptr<const automata::MatchEngine> owned_engine_;  // DenseDfa compat path
  const automata::MatchEngine* engine_ = nullptr;
  std::vector<PoolSpec> specs_;
  // ThreadPool and ParallelMatcher are pinned to their addresses
  // (non-movable), so the fleet owns them through pointers.
  std::vector<std::unique_ptr<parallel::ThreadPool>> pools_;
  std::vector<std::unique_ptr<automata::ParallelMatcher>> matchers_;
  RecoveryOptions recovery_;
};

}  // namespace hetopt::core
