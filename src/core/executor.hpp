// The real (non-simulated) heterogeneous execution path: given a match
// engine and a physical DNA sequence, split the input by the configured
// fraction and scan the host share and the device share *concurrently*,
// mirroring the paper's overlapped offload model.
//
// The executor is engine-generic: any automata::MatchEngine (compiled DFA,
// Aho–Corasick, bitap) drives both sides, which is how the tuner prices the
// engine axis with live runs. The legacy DenseDfa constructor wraps the
// automaton in an owned compiled-DFA engine and behaves exactly as before.
//
// Substitution note: with no Xeon Phi present, the "device" share runs on an
// emulated device — a second thread pool on the host. Results (match counts,
// positions) are exactly what the offloaded code would produce; *performance*
// of a real device is the business of hetopt::sim, not this class.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "automata/dense_dfa.hpp"
#include "automata/match_engine.hpp"
#include "automata/parallel_matcher.hpp"
#include "parallel/affinity.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::core {

struct ExecutionReport {
  std::uint64_t host_matches = 0;
  std::uint64_t device_matches = 0;
  std::size_t host_bytes = 0;
  std::size_t device_bytes = 0;
  double host_seconds = 0.0;    // wall time of the host share
  double device_seconds = 0.0;  // wall time of the emulated-device share
  double total_seconds = 0.0;   // max of the two (overlapped execution)

  [[nodiscard]] std::uint64_t total_matches() const noexcept {
    return host_matches + device_matches;
  }
};

class HeterogeneousExecutor {
 public:
  /// `host_threads` / `device_threads` size the two worker pools. The
  /// automaton is copied into an owned compiled-DFA engine (the pre-engine
  /// behavior). Pinning is opt-in: when an affinity policy is given, the
  /// corresponding pool's workers are placed at startup (best-effort, Linux
  /// pinning; HostAffinity::kNone and unsupported platforms leave threads
  /// floating), mirroring the paper's OMP_PROC_BIND / KMP_AFFINITY knobs on
  /// the live code path. The defaults leave all threads floating — the
  /// pre-pinning behavior.
  HeterogeneousExecutor(const automata::DenseDfa& dfa, std::size_t host_threads,
                        std::size_t device_threads,
                        std::optional<parallel::HostAffinity> host_affinity = std::nullopt,
                        std::optional<parallel::DeviceAffinity> device_affinity = std::nullopt);

  /// Engine-generic construction; the engine must outlive the executor.
  /// Engines without a DFA behind them must have a positive synchronization
  /// bound (throws std::invalid_argument otherwise).
  HeterogeneousExecutor(const automata::MatchEngine& engine, std::size_t host_threads,
                        std::size_t device_threads,
                        std::optional<parallel::HostAffinity> host_affinity = std::nullopt,
                        std::optional<parallel::DeviceAffinity> device_affinity = std::nullopt);

  /// Scans `text`, assigning `host_percent` of the bytes to the host pool
  /// and the remainder to the device pool, both running concurrently.
  /// Match counts are exact across the split boundary (chunk-parallel
  /// matching with warm-up handles motifs spanning the cut).
  /// One chunk per pool worker.
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent);

  /// Same, with explicit chunk counts for the two sides (the real-workload
  /// tuner derives these from the configuration's thread axes). Zero means
  /// "one chunk per worker".
  [[nodiscard]] ExecutionReport run(std::string_view text, double host_percent,
                                    std::size_t host_chunks, std::size_t device_chunks);

  /// The engine both sides execute.
  [[nodiscard]] const automata::MatchEngine& engine() const noexcept { return *engine_; }

 private:
  std::unique_ptr<const automata::MatchEngine> owned_engine_;  // DenseDfa compat path
  const automata::MatchEngine* engine_;
  parallel::ThreadPool host_pool_;
  parallel::ThreadPool device_pool_;
  automata::ParallelMatcher host_matcher_;
  automata::ParallelMatcher device_matcher_;
};

}  // namespace hetopt::core
