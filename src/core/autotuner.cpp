#include "core/autotuner.hpp"

#include <stdexcept>
#include <string>

namespace hetopt::core {

Autotuner::Autotuner(sim::Machine machine, opt::ConfigSpace space, AutotunerOptions options)
    : machine_(std::move(machine)),
      space_(std::move(space)),
      options_(std::move(options)),
      predictor_(options_.predictor) {}

std::size_t Autotuner::train(const dna::GenomeCatalog& catalog) {
  const TrainingData data = generate_training_data(machine_, catalog, options_.sweep);
  predictor_.train(data.host, data.device);
  return data.host.size() + data.device.size();
}

TuningSession Autotuner::session(Method method) const {
  return session(method, options_.sa_iterations);
}

TuningSession Autotuner::session(Method method, std::size_t sa_iterations) const {
  if ((method == Method::kEML || method == Method::kSAML) && !trained()) {
    throw std::logic_error("Autotuner: " + std::string(to_string(method)) +
                           " requires train() first");
  }
  return TuningSession::preset(method, machine_, space_, trained() ? &predictor_ : nullptr,
                               sa_iterations, options_.seed);
}

MethodResult Autotuner::tune(const Workload& workload, Method method) const {
  return tune_with_budget(workload, method, options_.sa_iterations);
}

MethodResult Autotuner::tune_with_budget(const Workload& workload, Method method,
                                         std::size_t sa_iterations) const {
  TuningSession s = session(method, sa_iterations);
  return to_method_result(s.run(workload), method);
}

}  // namespace hetopt::core
