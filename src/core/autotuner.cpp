#include "core/autotuner.hpp"

#include <stdexcept>

namespace hetopt::core {

Autotuner::Autotuner(sim::Machine machine, opt::ConfigSpace space, AutotunerOptions options)
    : machine_(std::move(machine)),
      space_(std::move(space)),
      options_(std::move(options)),
      predictor_(options_.predictor) {}

std::size_t Autotuner::train(const dna::GenomeCatalog& catalog) {
  const TrainingData data = generate_training_data(machine_, catalog, options_.sweep);
  predictor_.train(data.host, data.device);
  return data.host.size() + data.device.size();
}

MethodResult Autotuner::tune(const Workload& workload, Method method) const {
  return tune_with_budget(workload, method, options_.sa_iterations);
}

MethodResult Autotuner::tune_with_budget(const Workload& workload, Method method,
                                         std::size_t sa_iterations) const {
  switch (method) {
    case Method::kEM:
      return run_em(space_, machine_, workload);
    case Method::kEML:
      if (!trained()) throw std::logic_error("Autotuner: EML requires train() first");
      return run_eml(space_, machine_, workload, predictor_);
    case Method::kSAM:
      return run_sam(space_, machine_, workload,
                     sa_params_for_iterations(sa_iterations, options_.seed));
    case Method::kSAML:
      if (!trained()) throw std::logic_error("Autotuner: SAML requires train() first");
      return run_saml(space_, machine_, workload, predictor_,
                      sa_params_for_iterations(sa_iterations, options_.seed));
  }
  throw std::logic_error("Autotuner: unknown method");
}

}  // namespace hetopt::core
