#include "core/tuning_session.hpp"

#include <stdexcept>
#include <utility>

#include "core/strategy_registry.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::core {

TuningSession::TuningSession(opt::ConfigSpace space) : space_(std::move(space)) {}

TuningSession& TuningSession::with_strategy(std::shared_ptr<opt::SearchStrategy> strategy) {
  if (!strategy) throw std::invalid_argument("TuningSession: null strategy");
  strategy_ = std::move(strategy);
  return *this;
}

TuningSession& TuningSession::with_strategy(std::string_view name) {
  return with_strategy(make_strategy(name));
}

TuningSession& TuningSession::with_evaluator(std::shared_ptr<Evaluator> evaluator) {
  if (!evaluator) throw std::invalid_argument("TuningSession: null evaluator");
  evaluator_ = std::move(evaluator);
  return *this;
}

TuningSession& TuningSession::with_budget(std::size_t max_evaluations) {
  budget_.max_evaluations = max_evaluations;
  return *this;
}

TuningSession& TuningSession::with_seed(std::uint64_t seed) {
  budget_.seed = seed;
  return *this;
}

TuningSession& TuningSession::with_thread_pool(std::shared_ptr<parallel::ThreadPool> pool) {
  pool_ = std::move(pool);
  return *this;
}

SessionReport TuningSession::run(const Workload& workload) {
  if (!strategy_) throw std::logic_error("TuningSession: no strategy set");
  if (!evaluator_) throw std::logic_error("TuningSession: no evaluator set");

  evaluator_->reset_evaluations();
  const opt::SearchObjective objective(
      [this, &workload](const opt::SystemConfig& c) {
        return evaluator_->evaluate(c, workload);
      },
      [this, &workload](const std::vector<opt::SystemConfig>& cs) {
        return evaluator_->evaluate_batch(cs, workload, pool_.get());
      });
  const opt::SearchOutcome outcome = strategy_->search(space_, objective, budget_);

  SessionReport report;
  report.strategy = std::string(strategy_->name());
  report.evaluator = std::string(evaluator_->name());
  report.config = outcome.best;
  report.search_energy = outcome.best_energy;
  // §IV-C: whatever the search optimized, the winner is scored by a
  // measurement (not counted as a search evaluation).
  report.measured_time = evaluator_->score(outcome.best, workload);
  report.evaluations = evaluator_->evaluations();
  return report;
}

TuningSession TuningSession::preset(Method method, const sim::Machine& machine,
                                    opt::ConfigSpace space,
                                    const PerformancePredictor* predictor,
                                    std::size_t sa_iterations, std::uint64_t seed) {
  TuningSession session(std::move(space));
  session.with_seed(seed);

  switch (method) {
    case Method::kEM:
    case Method::kEML:
      session.with_strategy(std::make_shared<opt::ExhaustiveSearch>());
      session.with_budget(session.space().size());
      break;
    case Method::kSAM:
    case Method::kSAML:
      session.with_strategy(
          std::make_shared<opt::AnnealingSearch>(sa_params_for_iterations(sa_iterations, seed)));
      session.with_budget(sa_iterations + 1);
      break;
  }

  switch (method) {
    case Method::kEM:
    case Method::kSAM:
      session.with_evaluator(std::make_shared<MeasurementEvaluator>(machine));
      break;
    case Method::kEML:
    case Method::kSAML: {
      if (predictor == nullptr) {
        throw std::logic_error("TuningSession: " + std::string(to_string(method)) +
                               " preset requires a trained predictor");
      }
      session.with_evaluator(std::make_shared<PredictionEvaluator>(*predictor, machine));
      break;
    }
  }
  if (session.strategy() == nullptr || session.evaluator() == nullptr) {
    // Out-of-range Method values fall through both switches.
    throw std::logic_error("TuningSession: unknown method");
  }
  return session;
}

MethodResult to_method_result(const SessionReport& report, Method method) {
  MethodResult r;
  r.method = method;
  r.config = report.config;
  r.measured_time = report.measured_time;
  r.search_energy = report.search_energy;
  r.evaluations = report.evaluations;
  return r;
}

}  // namespace hetopt::core
