// Name -> SearchStrategy factory registry (in the spirit of xgboost's
// updater/learner registries): lets CLIs, configs and TuningSession pick a
// strategy by string without linking against its concrete type. The four
// built-ins ("exhaustive", "random", "annealing", "genetic") are registered
// at construction; callers may add their own.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "opt/strategy.hpp"

namespace hetopt::core {

using StrategyFactory = std::function<std::shared_ptr<opt::SearchStrategy>()>;

class StrategyRegistry {
 public:
  /// The process-wide registry with the built-ins pre-registered.
  [[nodiscard]] static StrategyRegistry& instance();

  /// Registers (or replaces) a factory under `name`.
  void add(std::string name, StrategyFactory factory);

  /// Instantiates a strategy; throws std::invalid_argument for unknown names
  /// (the message lists what is available).
  [[nodiscard]] std::shared_ptr<opt::SearchStrategy> create(std::string_view name) const;

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  /// Registered names in sorted order.
  [[nodiscard]] std::vector<std::string> names() const;

  StrategyRegistry();  // public for isolated registries in tests

 private:
  std::map<std::string, StrategyFactory, std::less<>> factories_;
};

/// Shorthand for StrategyRegistry::instance().create(name).
[[nodiscard]] std::shared_ptr<opt::SearchStrategy> make_strategy(std::string_view name);

}  // namespace hetopt::core
