// Facade over the whole pipeline: train the predictor once, then tune any
// workload. The four Table II methods keep their one-call interface (tune()),
// and session() exposes the composable Strategy x Evaluator core underneath,
// so callers can swap in GeneticSearch/RandomSearch or their own evaluator
// while reusing this tuner's machine, space and trained predictor.
#pragma once

#include <optional>

#include "core/methods.hpp"
#include "core/training.hpp"
#include "core/tuning_session.hpp"
#include "dna/catalog.hpp"
#include "opt/config_space.hpp"
#include "sim/machine.hpp"

namespace hetopt::core {

struct AutotunerOptions {
  TrainingSweepOptions sweep = TrainingSweepOptions::paper();
  PredictorOptions predictor = PredictorOptions::defaults();
  std::size_t sa_iterations = 1000;  // the paper's "about 5% of experiments"
  std::uint64_t seed = 0x7475ULL;
};

class Autotuner {
 public:
  Autotuner(sim::Machine machine, opt::ConfigSpace space,
            AutotunerOptions options = {});

  /// Runs the training sweep and fits the predictor (needed by EML/SAML).
  /// Returns the number of training experiments performed.
  std::size_t train(const dna::GenomeCatalog& catalog);
  [[nodiscard]] bool trained() const noexcept { return predictor_.trained(); }

  /// Tunes a workload; EML/SAML require train() first.
  [[nodiscard]] MethodResult tune(const Workload& workload, Method method) const;
  /// Like tune() but with an explicit SA iteration budget (SAM/SAML only).
  [[nodiscard]] MethodResult tune_with_budget(const Workload& workload, Method method,
                                              std::size_t sa_iterations) const;

  /// A TuningSession preset for `method` over this tuner's machine, space,
  /// seed and (for EML/SAML) trained predictor — the starting point for
  /// custom strategy/evaluator swaps.
  [[nodiscard]] TuningSession session(Method method) const;
  [[nodiscard]] TuningSession session(Method method, std::size_t sa_iterations) const;

  [[nodiscard]] const sim::Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] const opt::ConfigSpace& space() const noexcept { return space_; }
  [[nodiscard]] const PerformancePredictor& predictor() const noexcept { return predictor_; }

 private:
  sim::Machine machine_;
  opt::ConfigSpace space_;
  AutotunerOptions options_;
  PerformancePredictor predictor_;
};

}  // namespace hetopt::core
