#include "core/features.hpp"

#include <stdexcept>

namespace hetopt::core {

namespace {

void append_engine_names(std::vector<std::string>& names) {
  for (const automata::EngineKind kind : automata::kAllEngineKinds) {
    std::string name = "engine_";
    for (const char c : to_string(kind)) name.push_back(c == '-' ? '_' : c);
    names.push_back(std::move(name));
  }
}

void append_schedule_names(std::vector<std::string>& names) {
  for (const parallel::SchedulePolicy policy : parallel::kAllSchedulePolicies) {
    std::string name = "schedule_";
    name += to_string(policy);
    names.push_back(std::move(name));
  }
}

void append_fleet_names(std::vector<std::string>& names) {
  names.push_back("pool_count");
  names.push_back("pool_share_pct");
}

void require_valid_fleet(int pool_count, double pool_share_percent, const char* who) {
  if (pool_count < 1) {
    throw std::invalid_argument(std::string(who) + ": pool_count < 1");
  }
  if (!(pool_share_percent >= 0.0 && pool_share_percent <= 100.0)) {
    throw std::invalid_argument(std::string(who) + ": pool share out of [0,100]");
  }
}

}  // namespace

std::vector<std::string> host_feature_names() {
  std::vector<std::string> names{"size_mb", "threads", "affinity_none", "affinity_scatter",
                                 "affinity_compact"};
  append_engine_names(names);
  append_schedule_names(names);
  append_fleet_names(names);
  return names;
}

std::vector<std::string> device_feature_names() {
  std::vector<std::string> names{"size_mb", "threads", "affinity_balanced",
                                 "affinity_scatter", "affinity_compact"};
  append_engine_names(names);
  append_schedule_names(names);
  append_fleet_names(names);
  return names;
}

std::vector<double> host_features(double size_mb, int threads,
                                  parallel::HostAffinity affinity,
                                  automata::EngineKind engine,
                                  parallel::SchedulePolicy schedule, int pool_count,
                                  double pool_share_percent) {
  if (size_mb < 0.0) throw std::invalid_argument("host_features: negative size");
  if (threads < 1) throw std::invalid_argument("host_features: threads < 1");
  require_valid_fleet(pool_count, pool_share_percent, "host_features");
  std::vector<double> f(kFeatureCount, 0.0);
  f[0] = size_mb;
  f[1] = static_cast<double>(threads);
  f[2 + static_cast<std::size_t>(affinity)] = 1.0;
  f[5 + static_cast<std::size_t>(engine)] = 1.0;
  f[10 + static_cast<std::size_t>(schedule)] = 1.0;
  f[14] = static_cast<double>(pool_count);
  f[15] = pool_share_percent;
  return f;
}

std::vector<double> device_features(double size_mb, int threads,
                                    parallel::DeviceAffinity affinity,
                                    automata::EngineKind engine,
                                    parallel::SchedulePolicy schedule, int pool_count,
                                    double pool_share_percent) {
  if (size_mb < 0.0) throw std::invalid_argument("device_features: negative size");
  if (threads < 1) throw std::invalid_argument("device_features: threads < 1");
  require_valid_fleet(pool_count, pool_share_percent, "device_features");
  std::vector<double> f(kFeatureCount, 0.0);
  f[0] = size_mb;
  f[1] = static_cast<double>(threads);
  f[2 + static_cast<std::size_t>(affinity)] = 1.0;
  f[5 + static_cast<std::size_t>(engine)] = 1.0;
  f[10 + static_cast<std::size_t>(schedule)] = 1.0;
  f[14] = static_cast<double>(pool_count);
  f[15] = pool_share_percent;
  return f;
}

}  // namespace hetopt::core
