// Pluggable evaluation backends. A SearchStrategy asks "how long does this
// configuration take?"; an Evaluator answers it — by simulated measurement
// (the paper's EM/SAM protocol), by ML prediction (EML/SAML, Fig. 4), or by
// the multi-device water-filling makespan (the paper's "one to eight
// accelerators" future-work platform). The search axis and the evaluation
// axis are orthogonal; core::TuningSession composes one of each.
//
// Evaluators count their evaluations (the paper's "number of experiments")
// and separately provide score(): the measured execution time of the winning
// configuration, which is how every method is ranked regardless of what the
// search optimized ("for fair comparison we use the measured values", §IV-C).
#pragma once

#include <cstddef>
#include <string_view>
#include <utility>
#include <vector>

#include "core/predictor.hpp"
#include "core/workload.hpp"
#include "opt/config.hpp"
#include "sim/machine.hpp"
#include "sim/multi.hpp"

namespace hetopt::parallel {
class ThreadPool;
}

namespace hetopt::core {

class Evaluator {
 public:
  virtual ~Evaluator() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// Energy of one candidate; counts one evaluation. Throws
  /// std::runtime_error when the backend produces a NaN or negative time.
  double evaluate(const opt::SystemConfig& config, const Workload& workload);

  /// Batch counterpart, energies in input order; counts configs.size()
  /// evaluations. Runs on `pool` when one is provided, the backend is safe
  /// to query concurrently, and the batch is big enough to matter.
  std::vector<double> evaluate_batch(const std::vector<opt::SystemConfig>& configs,
                                     const Workload& workload,
                                     parallel::ThreadPool* pool = nullptr);

  /// Measured execution time of a (winning) configuration — the §IV-C
  /// scoring step. Never counted as a search evaluation. For *deterministic*
  /// measurement backends (the simulated evaluators) this returns exactly
  /// the value the search saw; RealWorkloadEvaluator in wall-clock mode runs
  /// a fresh measurement instead, so its score carries real noise.
  [[nodiscard]] virtual double score(const opt::SystemConfig& config,
                                     const Workload& workload) const = 0;

  [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }
  void reset_evaluations() noexcept { evaluations_ = 0; }

 protected:
  /// The backend query. Must be pure and thread-safe when concurrent() is
  /// true (the batch path may call it from pool workers).
  [[nodiscard]] virtual double value(const opt::SystemConfig& config,
                                     const Workload& workload) const = 0;
  [[nodiscard]] virtual bool concurrent() const noexcept { return true; }

 private:
  [[nodiscard]] double checked(const opt::SystemConfig& config, const Workload& workload) const;

  std::size_t evaluations_ = 0;
};

/// Simulated measurement on a single host + device machine (the enumeration
/// protocol: repetition 0, one experiment per configuration, so repeated
/// queries of a configuration return the same draw). The machine is stored
/// by value (it is a cheap spec), so temporaries are safe to pass.
class MeasurementEvaluator final : public Evaluator {
 public:
  explicit MeasurementEvaluator(sim::Machine machine) : machine_(std::move(machine)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "measurement"; }
  [[nodiscard]] double score(const opt::SystemConfig& config,
                             const Workload& workload) const override;

 protected:
  [[nodiscard]] double value(const opt::SystemConfig& config,
                             const Workload& workload) const override;

 private:
  sim::Machine machine_;
};

/// Boosted-trees prediction (Fig. 4). The machine is only used by score():
/// the search itself never runs an experiment, which is the entire point of
/// the ML-based methods. Throws std::logic_error when the predictor is not
/// trained. The predictor is held by reference (trained ensembles are big
/// and long-lived) and must outlive the evaluator; the machine is copied.
class PredictionEvaluator final : public Evaluator {
 public:
  PredictionEvaluator(const PerformancePredictor& predictor, sim::Machine machine);

  [[nodiscard]] std::string_view name() const noexcept override { return "prediction"; }
  [[nodiscard]] double score(const opt::SystemConfig& config,
                             const Workload& workload) const override;

 protected:
  [[nodiscard]] double value(const opt::SystemConfig& config,
                             const Workload& workload) const override;

 private:
  const PerformancePredictor* predictor_;
  sim::Machine machine_;
};

/// Noiseless makespan of a 1-host + K-device node: the host keeps the
/// configuration's fraction, the device remainder is water-filled across the
/// devices running with the configuration's (uniform) device threading. With
/// zero devices the host takes everything. The node is stored by value.
class MultiDeviceMeasurementEvaluator final : public Evaluator {
 public:
  explicit MultiDeviceMeasurementEvaluator(sim::MultiDeviceMachine machine)
      : machine_(std::move(machine)) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "multi-device"; }
  [[nodiscard]] double score(const opt::SystemConfig& config,
                             const Workload& workload) const override;

  /// The share vector behind a configuration's makespan, for reporting.
  [[nodiscard]] sim::ShareVector shares(const opt::SystemConfig& config,
                                        const Workload& workload) const;

  [[nodiscard]] const sim::MultiDeviceMachine& machine() const noexcept { return machine_; }

 protected:
  [[nodiscard]] double value(const opt::SystemConfig& config,
                             const Workload& workload) const override;

 private:
  sim::MultiDeviceMachine machine_;
};

}  // namespace hetopt::core
