#include "core/executor.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>
#include <utility>

#include "automata/compiled_dfa.hpp"
#include "parallel/partitioner.hpp"
#include "util/timer.hpp"

namespace hetopt::core {

namespace {

[[nodiscard]] parallel::ThreadPool::WorkerInit host_init(
    std::optional<parallel::HostAffinity> affinity, std::size_t threads) {
  if (!affinity) return nullptr;
  return [a = *affinity, threads](std::size_t worker) {
    parallel::pin_current_thread(a, worker, threads);
  };
}

[[nodiscard]] parallel::ThreadPool::WorkerInit device_init(
    std::optional<parallel::DeviceAffinity> affinity, std::size_t threads) {
  if (!affinity) return nullptr;
  return [a = *affinity, threads](std::size_t worker) {
    parallel::pin_current_thread(a, worker, threads);
  };
}

}  // namespace

HeterogeneousExecutor::HeterogeneousExecutor(
    const automata::DenseDfa& dfa, std::size_t host_threads, std::size_t device_threads,
    std::optional<parallel::HostAffinity> host_affinity,
    std::optional<parallel::DeviceAffinity> device_affinity)
    : owned_engine_(std::make_unique<automata::DenseDfaEngine>(
          automata::EngineKind::kCompiledDfa, dfa)),
      engine_(owned_engine_.get()),
      host_pool_(host_threads, host_init(host_affinity, host_threads)),
      device_pool_(device_threads, device_init(device_affinity, device_threads)),
      host_matcher_(*engine_, host_pool_),
      device_matcher_(*engine_, device_pool_) {}

HeterogeneousExecutor::HeterogeneousExecutor(
    const automata::MatchEngine& engine, std::size_t host_threads,
    std::size_t device_threads, std::optional<parallel::HostAffinity> host_affinity,
    std::optional<parallel::DeviceAffinity> device_affinity)
    : engine_(&engine),
      host_pool_(host_threads, host_init(host_affinity, host_threads)),
      device_pool_(device_threads, device_init(device_affinity, device_threads)),
      host_matcher_(*engine_, host_pool_),
      device_matcher_(*engine_, device_pool_) {
  // A boundless engine without a DFA is rejected by the ParallelMatcher
  // members above, so the unbounded branch of run() can rely on kernel().
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent) {
  return run(text, host_percent, 0, 0);
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent,
                                           std::size_t host_chunks,
                                           std::size_t device_chunks) {
  if (host_chunks == 0) host_chunks = host_pool_.thread_count();
  if (device_chunks == 0) device_chunks = device_pool_.thread_count();
  const auto split = parallel::split_by_percent(text.size(), host_percent);
  ExecutionReport report;
  report.host_bytes = split.host_bytes;
  report.device_bytes = split.device_bytes;
  if (text.empty()) return report;

  const std::string_view host_part = text.substr(0, split.host_bytes);
  // The device part starts earlier by the warm-up so motifs spanning the cut
  // are counted on the device side exactly once: the device share owns match
  // end positions in [host_bytes, size).
  const std::string_view device_part = text.substr(split.host_bytes);

  // Launch the device share asynchronously (the "offload"), scan the host
  // share on the calling thread's pool, then join — overlapped execution.
  auto device_future = std::async(std::launch::async, [&]() {
    util::Timer timer;
    std::uint64_t matches = 0;
    if (!device_part.empty()) {
      if (engine_->synchronization_bound() > 0) {
        // Warm up over the host-side boundary bytes so motifs spanning the
        // cut are counted: scan from (host_bytes - lead) and subtract the
        // matches that end inside the warm-up prefix (the host owns those).
        const std::size_t lead =
            std::min(engine_->synchronization_bound() - 1, split.host_bytes);
        const auto stats =
            device_matcher_.count(text.substr(split.host_bytes - lead), device_chunks);
        const auto lead_matches =
            engine_->count(text.substr(split.host_bytes - lead, lead));
        matches = stats.match_count - lead_matches;
      } else {
        // Unbounded patterns: the entry state depends on the whole prefix, so
        // derive it by replaying the host share, then scan sequentially. Only
        // DFA-backed engines can have unbounded patterns (checked at
        // construction), so the kernel is available here.
        const automata::CompiledDfa& kernel = *engine_->kernel();
        const automata::StateId entry =
            kernel.count(host_part, kernel.start()).final_state;
        matches = kernel.count(device_part, entry).match_count;
      }
    }
    return std::pair<std::uint64_t, double>(matches, timer.seconds());
  });

  util::Timer host_timer;
  if (!host_part.empty()) {
    report.host_matches = host_matcher_.count(host_part, host_chunks).match_count;
  }
  report.host_seconds = host_timer.seconds();

  const auto [device_matches, device_seconds] = device_future.get();
  report.device_matches = device_matches;
  report.device_seconds = device_seconds;
  report.total_seconds = std::max(report.host_seconds, report.device_seconds);
  return report;
}

}  // namespace hetopt::core
