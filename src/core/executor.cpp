#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <future>
#include <stdexcept>
#include <utility>
#include <vector>

#include "automata/compiled_dfa.hpp"
#include "parallel/chunk_queue.hpp"
#include "parallel/partitioner.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"

namespace hetopt::core {

namespace {

[[nodiscard]] parallel::ThreadPool::WorkerInit host_init(
    std::optional<parallel::HostAffinity> affinity, std::size_t threads) {
  if (!affinity) return nullptr;
  return [a = *affinity, threads](std::size_t worker) {
    parallel::pin_current_thread(a, worker, threads);
  };
}

[[nodiscard]] parallel::ThreadPool::WorkerInit device_init(
    std::optional<parallel::DeviceAffinity> affinity, std::size_t threads) {
  if (!affinity) return nullptr;
  return [a = *affinity, threads](std::size_t worker) {
    parallel::pin_current_thread(a, worker, threads);
  };
}

/// Derives the realized fraction and the imbalance metric from the filled
/// bytes/seconds fields.
void finalize_report(ExecutionReport& report) {
  const std::size_t total = report.host_bytes + report.device_bytes;
  report.realized_host_percent =
      total > 0 ? 100.0 * static_cast<double>(report.host_bytes) / static_cast<double>(total)
                : 0.0;
  if (report.host_bytes > 0 && report.device_bytes > 0) {
    const double slow = std::max(report.host_seconds, report.device_seconds);
    const double fast = std::min(report.host_seconds, report.device_seconds);
    report.imbalance = slow > 0.0 ? (slow - fast) / slow : 0.0;
  }
}

}  // namespace

std::string ExecutionReport::to_string() const {
  const double total_mb =
      static_cast<double>(host_bytes + device_bytes) / (1024.0 * 1024.0);
  std::string out = "[";
  out += parallel::to_string(schedule);
  out += "] ";
  out += std::to_string(total_matches());
  out += " matches, ";
  out += util::format_double(total_mb, 2);
  out += " MB in ";
  out += util::format_double(total_seconds, 4);
  out += " s | host ";
  out += util::format_trimmed(realized_host_percent, 1);
  out += "% of bytes (configured ";
  out += util::format_trimmed(configured_host_percent, 1);
  out += "%), ";
  out += util::format_double(host_seconds, 4);
  out += " s | device ";
  out += util::format_double(device_seconds, 4);
  out += " s | steals ";
  out += std::to_string(host_steals);
  out += "+";
  out += std::to_string(device_steals);
  out += " | imbalance ";
  out += util::format_double(imbalance, 2);
  return out;
}

HeterogeneousExecutor::HeterogeneousExecutor(
    const automata::DenseDfa& dfa, std::size_t host_threads, std::size_t device_threads,
    std::optional<parallel::HostAffinity> host_affinity,
    std::optional<parallel::DeviceAffinity> device_affinity)
    : owned_engine_(std::make_unique<automata::DenseDfaEngine>(
          automata::EngineKind::kCompiledDfa, dfa)),
      engine_(owned_engine_.get()),
      host_pool_(host_threads, host_init(host_affinity, host_threads)),
      device_pool_(device_threads, device_init(device_affinity, device_threads)),
      host_matcher_(*engine_, host_pool_),
      device_matcher_(*engine_, device_pool_) {}

HeterogeneousExecutor::HeterogeneousExecutor(
    const automata::MatchEngine& engine, std::size_t host_threads,
    std::size_t device_threads, std::optional<parallel::HostAffinity> host_affinity,
    std::optional<parallel::DeviceAffinity> device_affinity)
    : engine_(&engine),
      host_pool_(host_threads, host_init(host_affinity, host_threads)),
      device_pool_(device_threads, device_init(device_affinity, device_threads)),
      host_matcher_(*engine_, host_pool_),
      device_matcher_(*engine_, device_pool_) {
  // A boundless engine without a DFA is rejected by the ParallelMatcher
  // members above, so the unbounded branch of run() can rely on kernel().
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent) {
  return run(text, host_percent, 0, 0);
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent,
                                           std::size_t host_chunks,
                                           std::size_t device_chunks) {
  return run(text, host_percent, host_chunks, device_chunks,
             parallel::SchedulePolicy::kStatic);
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent,
                                           std::size_t host_chunks,
                                           std::size_t device_chunks,
                                           parallel::SchedulePolicy schedule) {
  if (host_chunks == 0) host_chunks = host_pool_.thread_count();
  if (device_chunks == 0) device_chunks = device_pool_.thread_count();
  // Shared-queue schedules scan every chunk independently (per-chunk
  // warm-up); an unbounded engine cannot, so it runs the static path.
  if (schedule != parallel::SchedulePolicy::kStatic &&
      engine_->synchronization_bound() == 0) {
    schedule = parallel::SchedulePolicy::kStatic;
  }
  if (schedule == parallel::SchedulePolicy::kStatic) {
    return run_static(text, host_percent, host_chunks, device_chunks);
  }
  return run_shared(text, host_percent, host_chunks, device_chunks, schedule);
}

ExecutionReport HeterogeneousExecutor::run_static(std::string_view text,
                                                  double host_percent,
                                                  std::size_t host_chunks,
                                                  std::size_t device_chunks) {
  const auto split = parallel::split_by_percent(text.size(), host_percent);
  ExecutionReport report;
  report.configured_host_percent = host_percent;
  report.host_bytes = split.host_bytes;
  report.device_bytes = split.device_bytes;
  if (text.empty()) return report;

  const std::string_view host_part = text.substr(0, split.host_bytes);
  // The device part starts earlier by the warm-up so motifs spanning the cut
  // are counted on the device side exactly once: the device share owns match
  // end positions in [host_bytes, size).
  const std::string_view device_part = text.substr(split.host_bytes);

  // A 0%/100% fraction gives one side nothing: skip that side's dispatch
  // entirely — no empty-share scan, no async launch, no pool wake — and
  // keep its matches/bytes/seconds fields exactly zero.
  std::future<std::pair<std::uint64_t, double>> device_future;
  if (!device_part.empty()) {
    // Launch the device share asynchronously (the "offload"), scan the host
    // share on the calling thread's pool, then join — overlapped execution.
    device_future = std::async(std::launch::async, [&]() {
      util::Timer timer;
      std::uint64_t matches = 0;
      if (engine_->synchronization_bound() > 0) {
        // Warm up over the host-side boundary bytes so motifs spanning the
        // cut are counted: scan from (host_bytes - lead) and subtract the
        // matches that end inside the warm-up prefix (the host owns those).
        const std::size_t lead =
            std::min(engine_->synchronization_bound() - 1, split.host_bytes);
        const auto stats =
            device_matcher_.count(text.substr(split.host_bytes - lead), device_chunks);
        const auto lead_matches =
            engine_->count(text.substr(split.host_bytes - lead, lead));
        matches = stats.match_count - lead_matches;
      } else {
        // Unbounded patterns: the entry state depends on the whole prefix, so
        // derive it by replaying the host share, then scan sequentially. Only
        // DFA-backed engines can have unbounded patterns (checked at
        // construction), so the kernel is available here.
        const automata::CompiledDfa& kernel = *engine_->kernel();
        const automata::StateId entry =
            kernel.count(host_part, kernel.start()).final_state;
        matches = kernel.count(device_part, entry).match_count;
      }
      return std::pair<std::uint64_t, double>(matches, timer.seconds());
    });
  }

  if (!host_part.empty()) {
    util::Timer host_timer;
    report.host_matches = host_matcher_.count(host_part, host_chunks).match_count;
    report.host_seconds = host_timer.seconds();
  }

  if (device_future.valid()) {
    const auto [device_matches, device_seconds] = device_future.get();
    report.device_matches = device_matches;
    report.device_seconds = device_seconds;
  }
  report.total_seconds = std::max(report.host_seconds, report.device_seconds);
  finalize_report(report);
  return report;
}

ExecutionReport HeterogeneousExecutor::run_shared(std::string_view text,
                                                  double host_percent,
                                                  std::size_t host_chunks,
                                                  std::size_t device_chunks,
                                                  parallel::SchedulePolicy schedule) {
  const auto split = parallel::split_by_percent(text.size(), host_percent);
  ExecutionReport report;
  report.schedule = schedule;
  report.configured_host_percent = host_percent;
  if (text.empty()) return report;

  // The chunk layout plus the configured-share boundary: chunks below it are
  // host-preferred, chunks at/above it device-preferred. A side claiming a
  // chunk across the boundary is recorded as a steal.
  std::vector<parallel::Chunk> chunks;
  std::size_t boundary = 0;
  if (schedule == parallel::SchedulePolicy::kAdaptive) {
    // Seed the pool with the configured split: each region keeps its own
    // chunk granularity, exactly as the static path would have cut it.
    chunks = parallel::make_chunks(split.host_bytes, host_chunks, /*halo=*/0);
    boundary = chunks.size();
    for (const parallel::Chunk& c :
         parallel::make_chunks(split.device_bytes, device_chunks, /*halo=*/0)) {
      chunks.push_back({c.begin + split.host_bytes, c.end + split.host_bytes,
                        c.scan_end + split.host_bytes});
    }
  } else {
    const std::size_t total_chunks = std::max<std::size_t>(1, host_chunks + device_chunks);
    if (schedule == parallel::SchedulePolicy::kGuided) {
      const std::size_t workers = host_pool_.thread_count() + device_pool_.thread_count();
      chunks = parallel::make_chunks_guided(
          text.size(), workers, parallel::guided_min_chunk(text.size(), total_chunks));
    } else {
      chunks = parallel::make_chunks(text.size(), total_chunks, /*halo=*/0);
    }
    while (boundary < chunks.size() && chunks[boundary].begin < split.host_bytes) {
      ++boundary;
    }
  }

  parallel::ChunkQueue queue(chunks.size());
  // Per-side accumulators, fetch_add'ed by that side's pull-loop workers.
  // All operations are relaxed: the totals carry no payload another thread
  // reads mid-run, and the pool join below (parallel_pull's future.get plus
  // device_future.get) is the synchronization that publishes them before
  // the single-threaded reads into the report.
  struct SideTotals {
    std::atomic<std::uint64_t> matches{0};
    std::atomic<std::size_t> bytes{0};
    std::atomic<std::uint64_t> steals{0};
  };
  SideTotals host_side;
  SideTotals device_side;
  // Adaptive: the device drains descending from the back so the two sides
  // meet where the hardware says the split belongs. Dynamic/guided: both
  // sides race down the same front — fully demand-driven.
  const bool device_from_back = schedule == parallel::SchedulePolicy::kAdaptive;
  // DFA-backed engines pull several tickets per claim and scan them as
  // interleaved streams (the same latency-hiding the static matcher path
  // uses); generic engines pull one chunk at a time through the chunk-aware
  // interface. Batch size = the chunks one worker would own anyway.
  const automata::CompiledDfa* kernel = engine_->kernel();
  const auto drain = [&](parallel::ThreadPool& pool, SideTotals& side, bool device) {
    const std::size_t streams = std::clamp<std::size_t>(
        chunks.size() / std::max<std::size_t>(1, pool.thread_count()), 1,
        automata::CompiledDfa::kMaxStreams);
    pool.parallel_pull([&, device, streams](std::size_t) {
      std::uint64_t matches = 0;
      std::uint64_t steals = 0;
      std::size_t bytes = 0;
      const auto take = [&] {
        return device && device_from_back ? queue.take_back() : queue.take_front();
      };
      if (kernel == nullptr || streams == 1) {
        for (;;) {
          const auto t = take();
          if (!t) break;
          const parallel::Chunk& c = chunks[*t];
          // Chunk-aware engine scan: the engine reads its own warm-up lead
          // before c.begin, so any side can scan any chunk exactly.
          matches += engine_->count_chunk(text, c.begin, c.end);
          bytes += c.end - c.begin;
          if (device ? *t < boundary : *t >= boundary) ++steals;
        }
      } else {
        const std::size_t warmup = engine_->synchronization_bound() - 1;
        std::size_t ids[automata::CompiledDfa::kMaxStreams] = {};
        automata::ScanResult res[automata::CompiledDfa::kMaxStreams];
        for (;;) {
          std::size_t m = 0;
          while (m < streams) {
            const auto t = take();
            if (!t) break;
            ids[m++] = *t;
          }
          if (m == 0) break;
          automata::scan_chunk_streams(*kernel, text, warmup, chunks.data(), ids, m,
                                       res);
          for (std::size_t k = 0; k < m; ++k) {
            matches += res[k].match_count;
            bytes += chunks[ids[k]].end - chunks[ids[k]].begin;
            if (device ? ids[k] < boundary : ids[k] >= boundary) ++steals;
          }
        }
      }
      side.matches.fetch_add(matches, std::memory_order_relaxed);
      side.bytes.fetch_add(bytes, std::memory_order_relaxed);
      side.steals.fetch_add(steals, std::memory_order_relaxed);
    });
  };

  auto device_future = std::async(std::launch::async, [&]() {
    util::Timer timer;
    drain(device_pool_, device_side, /*device=*/true);
    return timer.seconds();
  });
  util::Timer host_timer;
  drain(host_pool_, host_side, /*device=*/false);
  report.host_seconds = host_timer.seconds();
  report.device_seconds = device_future.get();

  // Relaxed is enough: both drains have joined above, so these are
  // single-threaded reads ordered by the pool/future synchronization.
  report.host_matches = host_side.matches.load(std::memory_order_relaxed);
  report.device_matches = device_side.matches.load(std::memory_order_relaxed);
  report.host_bytes = host_side.bytes.load(std::memory_order_relaxed);
  report.device_bytes = device_side.bytes.load(std::memory_order_relaxed);
  report.host_steals = host_side.steals.load(std::memory_order_relaxed);
  report.device_steals = device_side.steals.load(std::memory_order_relaxed);
  report.total_seconds = std::max(report.host_seconds, report.device_seconds);
  finalize_report(report);
  return report;
}

}  // namespace hetopt::core
