#include "core/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>
#include <utility>

#include "automata/compiled_dfa.hpp"
#include "automata/scanner.hpp"
#include "parallel/chunk_queue.hpp"
#include "parallel/partitioner.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"
#include "util/sync.hpp"
#include "util/timer.hpp"

namespace hetopt::core {

namespace {

[[nodiscard]] parallel::ThreadPool::WorkerInit pool_init(const PoolSpec& spec) {
  if (spec.host_affinity) {
    return [a = *spec.host_affinity, threads = spec.threads](std::size_t worker) {
      parallel::pin_current_thread(a, worker, threads);
    };
  }
  if (spec.device_affinity) {
    return [a = *spec.device_affinity, threads = spec.threads](std::size_t worker) {
      parallel::pin_current_thread(a, worker, threads);
    };
  }
  return nullptr;
}

[[nodiscard]] std::vector<PoolSpec> pair_specs(
    std::size_t host_threads, std::size_t device_threads,
    std::optional<parallel::HostAffinity> host_affinity,
    std::optional<parallel::DeviceAffinity> device_affinity) {
  PoolSpec host;
  host.threads = host_threads;
  host.host_affinity = host_affinity;
  PoolSpec device;
  device.threads = device_threads;
  device.device_affinity = device_affinity;
  return {host, device};
}

void validate_shares(const std::vector<double>& shares, std::size_t pool_count) {
  if (shares.size() != pool_count) {
    throw std::invalid_argument("HeterogeneousExecutor: one share per pool required");
  }
  double sum = 0.0;
  for (const double s : shares) {
    if (!(s >= 0.0 && s <= 100.0)) {
      throw std::invalid_argument("HeterogeneousExecutor: share out of [0,100]");
    }
    sum += s;
  }
  if (std::abs(sum - 100.0) > 1e-6) {
    throw std::invalid_argument("HeterogeneousExecutor: shares must sum to 100");
  }
}

/// Byte boundaries of the configured segments: bounds[i]..bounds[i+1] is pool
/// i's share. Cumulative llround so a 2-pool fleet reproduces
/// parallel::split_by_percent exactly; the last boundary absorbs rounding.
[[nodiscard]] std::vector<std::size_t> segment_bounds(std::size_t total,
                                                      const std::vector<double>& shares) {
  std::vector<std::size_t> bounds(shares.size() + 1, 0);
  double cumulative = 0.0;
  for (std::size_t i = 0; i + 1 < shares.size(); ++i) {
    cumulative += shares[i];
    const auto cut = static_cast<std::size_t>(
        std::llround(static_cast<double>(total) * cumulative / 100.0));
    bounds[i + 1] = std::max(bounds[i], std::min(total, cut));
  }
  bounds[shares.size()] = total;
  return bounds;
}

/// Derives realized shares and the imbalance metric from the filled per-pool
/// bytes/seconds fields, and mirrors the fleet into the legacy host/device
/// scalars (host = pool 0, device = the aggregate of pools 1..N-1).
void finalize_fleet(ExecutionReport& report) {
  std::size_t total = 0;
  for (const PoolReport& p : report.pools) total += p.bytes;
  for (PoolReport& p : report.pools) {
    p.realized_percent =
        total > 0 ? 100.0 * static_cast<double>(p.bytes) / static_cast<double>(total) : 0.0;
  }
  double slow = 0.0;
  double fast = std::numeric_limits<double>::infinity();
  std::size_t active = 0;
  for (const PoolReport& p : report.pools) {
    if (p.bytes == 0) continue;
    ++active;
    slow = std::max(slow, p.seconds);
    fast = std::min(fast, p.seconds);
  }
  report.imbalance = active >= 2 && slow > 0.0 ? (slow - fast) / slow : 0.0;

  const PoolReport& host = report.pools.front();
  report.host_matches = host.matches;
  report.host_bytes = host.bytes;
  report.host_seconds = host.seconds;
  report.host_steals = host.steals;
  report.configured_host_percent = host.configured_percent;
  report.realized_host_percent = host.realized_percent;
  report.device_matches = 0;
  report.device_bytes = 0;
  report.device_seconds = 0.0;
  report.device_steals = 0;
  for (std::size_t i = 1; i < report.pools.size(); ++i) {
    report.device_matches += report.pools[i].matches;
    report.device_bytes += report.pools[i].bytes;
    report.device_steals += report.pools[i].steals;
    report.device_seconds = std::max(report.device_seconds, report.pools[i].seconds);
  }
  report.total_seconds = 0.0;
  for (const PoolReport& p : report.pools) {
    report.total_seconds = std::max(report.total_seconds, p.seconds);
  }
}

/// The chunk layout of a run plus who owns each chunk. kStatic/kAdaptive cut
/// every configured segment with its own granularity (per-segment queues);
/// kDynamic/kGuided cut the whole input as one shared range.
struct FleetLayout {
  std::vector<parallel::Chunk> chunks;
  /// The pool whose configured segment contains chunks[t].begin — a claim by
  /// any other pool is a steal.
  std::vector<std::uint32_t> owners;
  /// chunks[seg_offset[i] .. seg_offset[i+1]) is segment i (per-segment
  /// layouts only).
  std::vector<std::size_t> seg_offset;
  bool per_segment = false;
};

[[nodiscard]] FleetLayout build_layout(std::size_t total,
                                       const std::vector<std::size_t>& bounds,
                                       const std::vector<std::size_t>& chunk_counts,
                                       std::size_t total_workers,
                                       parallel::SchedulePolicy schedule) {
  const std::size_t n = bounds.size() - 1;
  FleetLayout layout;
  layout.per_segment = schedule == parallel::SchedulePolicy::kStatic ||
                       schedule == parallel::SchedulePolicy::kAdaptive;
  layout.seg_offset.assign(n + 1, 0);
  if (layout.per_segment) {
    // Seed each pool with its configured segment, cut exactly as the static
    // path would have cut it.
    for (std::size_t i = 0; i < n; ++i) {
      layout.seg_offset[i] = layout.chunks.size();
      for (const parallel::Chunk& c :
           parallel::make_chunks(bounds[i + 1] - bounds[i], chunk_counts[i], /*halo=*/0)) {
        layout.chunks.push_back(
            {c.begin + bounds[i], c.end + bounds[i], c.scan_end + bounds[i]});
      }
    }
    layout.seg_offset[n] = layout.chunks.size();
  } else {
    std::size_t total_chunks = 0;
    for (const std::size_t c : chunk_counts) total_chunks += c;
    total_chunks = std::max<std::size_t>(1, total_chunks);
    if (schedule == parallel::SchedulePolicy::kGuided) {
      layout.chunks = parallel::make_chunks_guided(
          total, total_workers, parallel::guided_min_chunk(total, total_chunks));
    } else {
      layout.chunks = parallel::make_chunks(total, total_chunks, /*halo=*/0);
    }
  }
  layout.owners.resize(layout.chunks.size());
  std::size_t seg = 0;
  for (std::size_t t = 0; t < layout.chunks.size(); ++t) {
    while (seg + 1 < n && layout.chunks[t].begin >= bounds[seg + 1]) ++seg;
    layout.owners[t] = static_cast<std::uint32_t>(seg);
  }
  return layout;
}

/// Per-pool accumulators, fetch_add'ed by that pool's pull-loop workers.
/// All operations are relaxed: the totals carry no payload another thread
/// reads mid-run, and the pool join (parallel_pull's future.get plus the
/// per-pool future.get) is the synchronization that publishes them before
/// the single-threaded reads into the report.
struct PoolTotals {
  std::atomic<std::uint64_t> matches{0};
  std::atomic<std::size_t> bytes{0};
  std::atomic<std::uint64_t> steals{0};
};

/// Shared state of one fault-tolerant run (run_recovery_fleet). The failed
/// mask and the per-pool progress words are the only state read across
/// threads mid-run; everything else is telemetry merged after the joins.
struct RecoveryContext {
  explicit RecoveryContext(std::size_t pools)
      : progress(pools), started(pools), finished(pools) {}

  /// Bit i set = pool i declared dead or stalled. fetch_or with acq_rel so
  /// the claim paths that acquire-load the mask observe everything the
  /// failure handler published before raising the bit.
  std::atomic<std::uint64_t> failed_mask{0};
  /// Chunks completed per pool — the liveness signal the watchdog reads.
  std::vector<std::atomic<std::uint64_t>> progress;
  std::vector<std::atomic<bool>> started;
  std::vector<std::atomic<bool>> finished;
  std::atomic<std::uint64_t> requeued{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<bool> degraded{false};
  std::atomic<bool> done{false};
  util::Mutex mutex;
  util::CondVar cv;  // parks stalled pools; signaled by mark_failed

  void mark_failed(std::size_t pool) {
    const std::uint64_t bit = std::uint64_t{1} << pool;
    if ((failed_mask.fetch_or(bit, std::memory_order_acq_rel) & bit) != 0) return;
    {
      // Empty critical section: a stalled worker that has checked the mask
      // but not yet blocked cannot miss the wakeup (lost-notify guard).
      const util::MutexLock lock(mutex);
    }
    cv.notify_all();
  }

  [[nodiscard]] bool failed(std::size_t pool) const noexcept {
    return ((failed_mask.load(std::memory_order_acquire) >> pool) & 1) != 0;
  }

  /// Blocks until this pool is declared failed — how an injected stall
  /// hangs "like a wedged device" until the watchdog gives up on it.
  void wait_until_failed(std::size_t pool) {
    util::MutexLock lock(mutex);
    while (!failed(pool)) cv.wait(mutex);
  }
};

/// The watchdog: ticks on a fraction of the tightest deadline and declares a
/// pool failed once it has gone `deadlines[i]` seconds without completing a
/// chunk. Runs on its own thread until RecoveryContext::done.
void watchdog_loop(RecoveryContext& ctx, const std::vector<double>& deadlines) {
  const std::size_t n = deadlines.size();
  double tick = *std::min_element(deadlines.begin(), deadlines.end()) / 4.0;
  tick = std::max(tick, 0.001);
  std::vector<std::uint64_t> last(n, 0);
  std::vector<double> stagnant(n, 0.0);
  while (!ctx.done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::duration<double>(tick));
    for (std::size_t i = 0; i < n; ++i) {
      if (!ctx.started[i].load(std::memory_order_relaxed) ||
          ctx.finished[i].load(std::memory_order_relaxed) || ctx.failed(i)) {
        stagnant[i] = 0.0;
        continue;
      }
      const std::uint64_t cur = ctx.progress[i].load(std::memory_order_relaxed);
      if (cur != last[i]) {
        last[i] = cur;
        stagnant[i] = 0.0;
        continue;
      }
      stagnant[i] += tick;
      if (stagnant[i] >= deadlines[i]) ctx.mark_failed(i);
    }
  }
}

}  // namespace

std::string ExecutionReport::to_string() const {
  // Pre-fleet reports (pools empty) render through the legacy 2-pool view.
  std::vector<PoolReport> view = pools;
  if (view.empty()) {
    const std::size_t total = host_bytes + device_bytes;
    PoolReport host;
    host.matches = host_matches;
    host.bytes = host_bytes;
    host.seconds = host_seconds;
    host.configured_percent = configured_host_percent;
    host.realized_percent = realized_host_percent;
    host.steals = host_steals;
    PoolReport device;
    device.matches = device_matches;
    device.bytes = device_bytes;
    device.seconds = device_seconds;
    device.configured_percent = 100.0 - configured_host_percent;
    device.realized_percent =
        total > 0 ? 100.0 * static_cast<double>(device_bytes) / static_cast<double>(total)
                  : 0.0;
    device.steals = device_steals;
    view.push_back(host);
    view.push_back(device);
  }
  std::size_t total_bytes = 0;
  for (const PoolReport& p : view) total_bytes += p.bytes;
  const double total_mb = static_cast<double>(total_bytes) / (1024.0 * 1024.0);
  std::string out = "[";
  out += parallel::to_string(schedule);
  out += "] ";
  out += std::to_string(total_matches());
  out += " matches, ";
  out += util::format_double(total_mb, 2);
  out += " MB in ";
  out += util::format_double(total_seconds, 4);
  out += " s";
  for (std::size_t i = 0; i < view.size(); ++i) {
    out += " | ";
    out += i == 0 ? "host" : "dev" + std::to_string(i);
    out += " ";
    out += util::format_trimmed(view[i].realized_percent, 1);
    out += "% of bytes (configured ";
    out += util::format_trimmed(view[i].configured_percent, 1);
    out += "%), ";
    out += util::format_double(view[i].seconds, 4);
    out += " s";
  }
  out += " | steals ";
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (i > 0) out += "+";
    out += std::to_string(view[i].steals);
  }
  out += " | imbalance ";
  out += util::format_double(imbalance, 2);
  // Failure section only when the recovery path did something — the no-fault
  // report line stays byte-identical to the pre-fault-tolerance format.
  if (!failed_pools.empty() || requeued_chunks > 0 || chunk_retries > 0 || degraded) {
    out += " | faults: failed={";
    for (std::size_t i = 0; i < failed_pools.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(failed_pools[i]);
    }
    out += "}, requeued ";
    out += std::to_string(requeued_chunks);
    out += ", retries ";
    out += std::to_string(chunk_retries);
    if (degraded) out += ", degraded";
  }
  return out;
}

HeterogeneousExecutor::HeterogeneousExecutor(
    const automata::DenseDfa& dfa, std::size_t host_threads, std::size_t device_threads,
    std::optional<parallel::HostAffinity> host_affinity,
    std::optional<parallel::DeviceAffinity> device_affinity)
    : owned_engine_(std::make_unique<automata::DenseDfaEngine>(
          automata::EngineKind::kCompiledDfa, dfa)),
      engine_(owned_engine_.get()) {
  build_fleet(pair_specs(host_threads, device_threads, host_affinity, device_affinity));
}

HeterogeneousExecutor::HeterogeneousExecutor(
    const automata::MatchEngine& engine, std::size_t host_threads,
    std::size_t device_threads, std::optional<parallel::HostAffinity> host_affinity,
    std::optional<parallel::DeviceAffinity> device_affinity)
    : engine_(&engine) {
  build_fleet(pair_specs(host_threads, device_threads, host_affinity, device_affinity));
}

HeterogeneousExecutor::HeterogeneousExecutor(const automata::DenseDfa& dfa,
                                             std::vector<PoolSpec> pools)
    : owned_engine_(std::make_unique<automata::DenseDfaEngine>(
          automata::EngineKind::kCompiledDfa, dfa)),
      engine_(owned_engine_.get()) {
  build_fleet(std::move(pools));
}

HeterogeneousExecutor::HeterogeneousExecutor(const automata::MatchEngine& engine,
                                             std::vector<PoolSpec> pools)
    : engine_(&engine) {
  build_fleet(std::move(pools));
}

void HeterogeneousExecutor::build_fleet(std::vector<PoolSpec> pools) {
  if (pools.empty()) {
    throw std::invalid_argument("HeterogeneousExecutor: at least one pool required");
  }
  for (const PoolSpec& spec : pools) {
    if (!(spec.share_percent >= 0.0 && spec.share_percent <= 100.0)) {
      throw std::invalid_argument("HeterogeneousExecutor: pool share out of [0,100]");
    }
    if (spec.host_affinity && spec.device_affinity) {
      throw std::invalid_argument(
          "HeterogeneousExecutor: a pool pins as host or as device, not both");
    }
  }
  specs_ = std::move(pools);
  pools_.reserve(specs_.size());
  matchers_.reserve(specs_.size());
  for (const PoolSpec& spec : specs_) {
    pools_.push_back(std::make_unique<parallel::ThreadPool>(spec.threads, pool_init(spec)));
    // A boundless engine without a DFA is rejected by the ParallelMatcher
    // constructor, so the unbounded branches below can rely on kernel().
    matchers_.push_back(std::make_unique<automata::ParallelMatcher>(*engine_, *pools_.back()));
  }
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent) {
  return run(text, host_percent, 0, 0);
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent,
                                           std::size_t host_chunks,
                                           std::size_t device_chunks) {
  return run(text, host_percent, host_chunks, device_chunks,
             parallel::SchedulePolicy::kStatic);
}

ExecutionReport HeterogeneousExecutor::run(std::string_view text, double host_percent,
                                           std::size_t host_chunks,
                                           std::size_t device_chunks,
                                           parallel::SchedulePolicy schedule) {
  if (specs_.size() != 2) {
    throw std::logic_error(
        "HeterogeneousExecutor::run(host_percent) needs the 2-pool fleet; use run_fleet");
  }
  if (!(host_percent >= 0.0 && host_percent <= 100.0)) {
    throw std::invalid_argument("run: percent out of [0,100]");
  }
  if (host_chunks == 0) host_chunks = pools_[0]->thread_count();
  if (device_chunks == 0) device_chunks = pools_[1]->thread_count();
  return run_impl(text, {host_percent, 100.0 - host_percent}, {host_chunks, device_chunks},
                  schedule);
}

ExecutionReport HeterogeneousExecutor::run_fleet(std::string_view text,
                                                 parallel::SchedulePolicy schedule) {
  std::vector<double> shares;
  shares.reserve(specs_.size());
  for (const PoolSpec& spec : specs_) shares.push_back(spec.share_percent);
  return run_fleet(text, shares, schedule);
}

ExecutionReport HeterogeneousExecutor::run_fleet(std::string_view text,
                                                 const std::vector<double>& shares,
                                                 parallel::SchedulePolicy schedule) {
  return run_impl(text, shares, resolve_chunk_counts(), schedule);
}

ExecutionReport HeterogeneousExecutor::run_fleet_paged(dna::PagedGenome& genome,
                                                       const PagedFleetOptions& options) {
  std::vector<double> shares;
  shares.reserve(specs_.size());
  for (const PoolSpec& spec : specs_) shares.push_back(spec.share_percent);
  return run_fleet_paged(genome, shares, options);
}

ExecutionReport HeterogeneousExecutor::run_fleet_paged(dna::PagedGenome& genome,
                                                       const std::vector<double>& shares,
                                                       const PagedFleetOptions& options) {
  validate_shares(shares, specs_.size());
  const std::size_t n = specs_.size();
  std::size_t total_workers = 0;
  for (const auto& pool : pools_) total_workers += pool->thread_count();
  const std::size_t resident = genome.options().resident_pages;
  if (resident < total_workers) {
    throw std::invalid_argument(
        "HeterogeneousExecutor: resident budget (" + std::to_string(resident) +
        " pages) must cover the fleet's " + std::to_string(total_workers) +
        " workers for a paged run");
  }

  // Page-granular segment cuts: the same cumulative-rounding split as the
  // static byte path, but over pages so every pool boundary is a page seam
  // (the halo makes counts exact across it, like any other seam).
  const auto bounds = segment_bounds(genome.page_count(), shares);

  // The shared cache serves every pool at once, so the resident budget is
  // divided up front in proportion to worker counts: each slice covers its
  // pool's workers (floor(resident * w / W) >= w because resident >= W) and
  // the slices sum to at most `resident`, which bounds the fleet's total
  // pins below the budget — concurrent backpressure always has a free slot.
  std::vector<std::size_t> budget(n);
  for (std::size_t i = 0; i < n; ++i) {
    budget[i] = resident * pools_[i]->thread_count() / total_workers;
  }

  ExecutionReport report;
  report.schedule = options.schedule == parallel::SchedulePolicy::kAdaptive
                        ? parallel::SchedulePolicy::kDynamic
                        : options.schedule;
  report.pools.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.pools[i].configured_percent = shares[i];

  const auto scan_pages = [&](std::size_t i) {
    automata::PagedScanOptions popts;
    popts.schedule = report.schedule;
    popts.chunks_per_page = options.chunks_per_page;
    popts.prefetch_depth = options.prefetch_depth;
    popts.first_page = bounds[i];
    popts.last_page = bounds[i + 1];
    popts.pin_budget = budget[i];
    return matchers_[i]->count_paged(genome, popts);
  };

  // Pools 1..N-1 stream their page ranges asynchronously (the "offload");
  // pool 0 streams on the calling thread's pool. Zero-page shares are
  // skipped entirely, as under the static in-memory schedule.
  std::vector<std::future<automata::PagedScanStats>> futures(n);
  for (std::size_t i = 1; i < n; ++i) {
    if (bounds[i + 1] > bounds[i]) {
      futures[i] = std::async(std::launch::async, scan_pages, i);
    }
  }
  if (bounds[1] > 0) {
    const automata::PagedScanStats stats = scan_pages(0);
    report.pools[0].matches = stats.match_count;
    report.pools[0].bytes = stats.bytes;
    report.pools[0].seconds = stats.seconds;
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (!futures[i].valid()) continue;
    const automata::PagedScanStats stats = futures[i].get();
    report.pools[i].matches = stats.match_count;
    report.pools[i].bytes = stats.bytes;
    report.pools[i].seconds = stats.seconds;
  }
  finalize_fleet(report);
  return report;
}

std::vector<std::size_t> HeterogeneousExecutor::resolve_chunk_counts() const {
  std::vector<std::size_t> counts(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    counts[i] = specs_[i].chunks > 0 ? specs_[i].chunks : pools_[i]->thread_count();
  }
  return counts;
}

ExecutionReport HeterogeneousExecutor::run_impl(std::string_view text,
                                                const std::vector<double>& shares,
                                                const std::vector<std::size_t>& chunk_counts,
                                                parallel::SchedulePolicy schedule) {
  validate_shares(shares, specs_.size());
  // Shared-queue schedules scan every chunk independently (per-chunk
  // warm-up); an unbounded engine cannot, so it runs the static path.
  if (schedule != parallel::SchedulePolicy::kStatic &&
      engine_->synchronization_bound() == 0) {
    schedule = parallel::SchedulePolicy::kStatic;
  }
  // The fault-tolerant twin takes over only while an armed plan carries
  // execution faults. It needs position-independent chunk scans (a positive
  // synchronization bound) and one mask bit per pool; unbounded engines and
  // >64-pool fleets keep the plain path (no injection there).
  if (const util::FaultInjector* injector = util::FaultInjector::current();
      injector != nullptr && injector->exercises_recovery() &&
      engine_->synchronization_bound() > 0 && specs_.size() <= 64) {
    return run_recovery_fleet(text, shares, chunk_counts, schedule, nullptr);
  }
  if (schedule == parallel::SchedulePolicy::kStatic) {
    return run_static_fleet(text, shares, chunk_counts);
  }
  return run_shared_fleet(text, shares, chunk_counts, schedule);
}

ExecutionReport HeterogeneousExecutor::run_static_fleet(
    std::string_view text, const std::vector<double>& shares,
    const std::vector<std::size_t>& chunk_counts) {
  const std::size_t n = specs_.size();
  const auto bounds = segment_bounds(text.size(), shares);
  ExecutionReport report;
  report.pools.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    report.pools[i].configured_percent = shares[i];
    report.pools[i].bytes = bounds[i + 1] - bounds[i];
  }
  if (!text.empty()) {
    const bool bounded = engine_->synchronization_bound() > 0;
    const auto scan_segment = [&](std::size_t i) {
      util::Timer timer;
      const std::size_t begin = bounds[i];
      const std::size_t end = bounds[i + 1];
      std::uint64_t matches = 0;
      if (bounded) {
        // Warm up over the boundary bytes so motifs spanning the cut are
        // counted exactly once: scan from (begin - lead) and subtract the
        // matches that end inside the warm-up prefix (the pool to the left
        // owns those). Pool 0 has lead 0, so this is a plain segment scan.
        const std::size_t lead = std::min(engine_->synchronization_bound() - 1, begin);
        const auto stats =
            matchers_[i]->count(text.substr(begin - lead, end - begin + lead),
                                chunk_counts[i]);
        matches = stats.match_count - engine_->count(text.substr(begin - lead, lead));
      } else if (begin == 0) {
        matches = matchers_[i]->count(text.substr(0, end), chunk_counts[i]).match_count;
      } else {
        // Unbounded patterns: the entry state depends on the whole prefix,
        // so derive it by replaying [0, begin), then scan sequentially. Only
        // DFA-backed engines can have unbounded patterns (checked at
        // construction), so the kernel is available here.
        const automata::CompiledDfa& kernel = *engine_->kernel();
        const automata::StateId entry =
            kernel.count(text.substr(0, begin), kernel.start()).final_state;
        matches = kernel.count(text.substr(begin, end - begin), entry).match_count;
      }
      return std::pair<std::uint64_t, double>(matches, timer.seconds());
    };

    // A zero-byte share gives a pool nothing: skip that pool's dispatch
    // entirely — no empty-share scan, no async launch, no pool wake — and
    // keep its matches/bytes/seconds fields exactly zero. Pools 1..N-1 run
    // asynchronously (the "offload"); pool 0 scans on the calling thread's
    // pool; the joins make the execution overlapped.
    std::vector<std::future<std::pair<std::uint64_t, double>>> futures(n);
    for (std::size_t i = 1; i < n; ++i) {
      if (bounds[i + 1] > bounds[i]) {
        futures[i] = std::async(std::launch::async, scan_segment, i);
      }
    }
    if (bounds[1] > 0) {
      const auto [matches, seconds] = scan_segment(0);
      report.pools[0].matches = matches;
      report.pools[0].seconds = seconds;
    }
    for (std::size_t i = 1; i < n; ++i) {
      if (!futures[i].valid()) continue;
      const auto [matches, seconds] = futures[i].get();
      report.pools[i].matches = matches;
      report.pools[i].seconds = seconds;
    }
  }
  finalize_fleet(report);
  return report;
}

ExecutionReport HeterogeneousExecutor::run_shared_fleet(
    std::string_view text, const std::vector<double>& shares,
    const std::vector<std::size_t>& chunk_counts, parallel::SchedulePolicy schedule) {
  const std::size_t n = specs_.size();
  const auto bounds = segment_bounds(text.size(), shares);
  ExecutionReport report;
  report.schedule = schedule;
  report.pools.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.pools[i].configured_percent = shares[i];
  if (text.empty()) {
    finalize_fleet(report);
    return report;
  }

  std::size_t total_workers = 0;
  for (const auto& pool : pools_) total_workers += pool->thread_count();
  const FleetLayout layout =
      build_layout(text.size(), bounds, chunk_counts, total_workers, schedule);
  const std::vector<parallel::Chunk>& chunks = layout.chunks;

  // Adaptive: one queue per configured segment; every other shared schedule
  // races every pool down one queue's front — fully demand-driven.
  std::vector<std::unique_ptr<parallel::ChunkQueue>> queues;
  if (layout.per_segment) {
    for (std::size_t i = 0; i < n; ++i) {
      queues.push_back(std::make_unique<parallel::ChunkQueue>(layout.seg_offset[i + 1] -
                                                              layout.seg_offset[i]));
    }
  } else {
    queues.push_back(std::make_unique<parallel::ChunkQueue>(chunks.size()));
  }
  // Claims a global chunk index for pool i. Adaptive: the pool drains its
  // own segment first (the last pool descending from the back, everyone else
  // ascending from the front), then steals from the nearest unfinished
  // segment — forward steals take the stolen segment's front, backward
  // steals its back, so every segment boundary keeps the two-ended meeting
  // dynamics of the 2-pool host/device scheme.
  const auto take_for = [&](std::size_t i) -> std::optional<std::size_t> {
    if (!layout.per_segment) return queues[0]->take_front();
    if (const auto t = i + 1 == n ? queues[i]->take_back() : queues[i]->take_front()) {
      return layout.seg_offset[i] + *t;
    }
    for (std::size_t d = 1; d < n; ++d) {
      if (i + d < n) {
        if (const auto t = queues[i + d]->take_front()) return layout.seg_offset[i + d] + *t;
      }
      if (d <= i) {
        if (const auto t = queues[i - d]->take_back()) return layout.seg_offset[i - d] + *t;
      }
    }
    return std::nullopt;
  };

  std::vector<PoolTotals> totals(n);
  // DFA-backed engines pull several tickets per claim and scan them as
  // interleaved streams (the same latency-hiding the static matcher path
  // uses); generic engines pull one chunk at a time through the chunk-aware
  // interface. Batch size = the chunks one worker would own anyway.
  const automata::CompiledDfa* kernel = engine_->kernel();
  const auto drain = [&](std::size_t pool_idx) {
    parallel::ThreadPool& pool = *pools_[pool_idx];
    PoolTotals& mine = totals[pool_idx];
    const std::size_t streams = std::clamp<std::size_t>(
        chunks.size() / std::max<std::size_t>(1, pool.thread_count()), 1,
        automata::CompiledDfa::kMaxStreams);
    pool.parallel_pull([&, pool_idx, streams](std::size_t) {
      std::uint64_t matches = 0;
      std::uint64_t steals = 0;
      std::size_t bytes = 0;
      if (kernel == nullptr || streams == 1) {
        for (;;) {
          const auto t = take_for(pool_idx);
          if (!t) break;
          const parallel::Chunk& c = chunks[*t];
          // Chunk-aware engine scan: the engine reads its own warm-up lead
          // before c.begin, so any pool can scan any chunk exactly.
          matches += engine_->count_chunk(text, c.begin, c.end);
          bytes += c.end - c.begin;
          if (layout.owners[*t] != pool_idx) ++steals;
        }
      } else {
        const std::size_t warmup = engine_->synchronization_bound() - 1;
        std::size_t ids[automata::CompiledDfa::kMaxStreams] = {};
        automata::ScanResult res[automata::CompiledDfa::kMaxStreams];
        for (;;) {
          std::size_t m = 0;
          while (m < streams) {
            const auto t = take_for(pool_idx);
            if (!t) break;
            ids[m++] = *t;
          }
          if (m == 0) break;
          automata::scan_chunk_streams(*kernel, text, warmup, chunks.data(), ids, m,
                                       res);
          for (std::size_t k = 0; k < m; ++k) {
            matches += res[k].match_count;
            bytes += chunks[ids[k]].end - chunks[ids[k]].begin;
            if (layout.owners[ids[k]] != pool_idx) ++steals;
          }
        }
      }
      mine.matches.fetch_add(matches, std::memory_order_relaxed);
      mine.bytes.fetch_add(bytes, std::memory_order_relaxed);
      mine.steals.fetch_add(steals, std::memory_order_relaxed);
    });
  };

  std::vector<std::future<double>> futures(n);
  for (std::size_t i = 1; i < n; ++i) {
    futures[i] = std::async(std::launch::async, [&drain, i]() {
      util::Timer timer;
      drain(i);
      return timer.seconds();
    });
  }
  util::Timer host_timer;
  drain(0);
  report.pools[0].seconds = host_timer.seconds();
  for (std::size_t i = 1; i < n; ++i) report.pools[i].seconds = futures[i].get();

  // Relaxed is enough: every drain has joined above, so these are
  // single-threaded reads ordered by the pool/future synchronization.
  for (std::size_t i = 0; i < n; ++i) {
    report.pools[i].matches = totals[i].matches.load(std::memory_order_relaxed);
    report.pools[i].bytes = totals[i].bytes.load(std::memory_order_relaxed);
    report.pools[i].steals = totals[i].steals.load(std::memory_order_relaxed);
  }
  finalize_fleet(report);
  return report;
}

ExecutionReport HeterogeneousExecutor::collect_fleet(std::string_view text,
                                                     const std::vector<double>& shares,
                                                     parallel::SchedulePolicy schedule,
                                                     std::vector<automata::Match>& out) {
  if (!engine_->supports_collect()) {
    throw std::invalid_argument("collect_fleet: engine does not support collection");
  }
  validate_shares(shares, specs_.size());
  if (schedule != parallel::SchedulePolicy::kStatic &&
      engine_->synchronization_bound() == 0) {
    schedule = parallel::SchedulePolicy::kStatic;
  }
  // Same routing as run_impl: an armed execution-fault plan sends the
  // collection run through the fault-tolerant twin.
  if (const util::FaultInjector* injector = util::FaultInjector::current();
      injector != nullptr && injector->exercises_recovery() &&
      engine_->synchronization_bound() > 0 && specs_.size() <= 64) {
    return run_recovery_fleet(text, shares, resolve_chunk_counts(), schedule, &out);
  }
  const std::size_t n = specs_.size();
  const auto chunk_counts = resolve_chunk_counts();
  const auto bounds = segment_bounds(text.size(), shares);
  ExecutionReport report;
  report.schedule = schedule;
  report.pools.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.pools[i].configured_percent = shares[i];
  if (text.empty()) {
    finalize_fleet(report);
    return report;
  }

  std::size_t total_workers = 0;
  for (const auto& pool : pools_) total_workers += pool->thread_count();
  const FleetLayout layout =
      build_layout(text.size(), bounds, chunk_counts, total_workers, schedule);
  const std::vector<parallel::Chunk>& chunks = layout.chunks;
  const bool is_static = schedule == parallel::SchedulePolicy::kStatic;

  std::vector<std::unique_ptr<parallel::ChunkQueue>> queues;
  if (layout.per_segment) {
    for (std::size_t i = 0; i < n; ++i) {
      queues.push_back(std::make_unique<parallel::ChunkQueue>(layout.seg_offset[i + 1] -
                                                              layout.seg_offset[i]));
    }
  } else {
    queues.push_back(std::make_unique<parallel::ChunkQueue>(chunks.size()));
  }
  // Static collection drains own-segment queues only (no stealing — the
  // configured split is the realized split); the shared schedules use the
  // same claim order as the counting path.
  const auto take_for = [&](std::size_t i) -> std::optional<std::size_t> {
    if (!layout.per_segment) return queues[0]->take_front();
    if (const auto t = i + 1 == n ? queues[i]->take_back() : queues[i]->take_front()) {
      return layout.seg_offset[i] + *t;
    }
    if (is_static) return std::nullopt;
    for (std::size_t d = 1; d < n; ++d) {
      if (i + d < n) {
        if (const auto t = queues[i + d]->take_front()) return layout.seg_offset[i + d] + *t;
      }
      if (d <= i) {
        if (const auto t = queues[i - d]->take_back()) return layout.seg_offset[i - d] + *t;
      }
    }
    return std::nullopt;
  };

  // Whoever claims chunk t owns slot t exclusively; the joins below publish
  // the slots before the single-threaded merge.
  std::vector<std::vector<automata::Match>> slots(chunks.size());
  std::vector<PoolTotals> totals(n);
  const auto drain = [&](std::size_t pool_idx) {
    PoolTotals& mine = totals[pool_idx];
    pools_[pool_idx]->parallel_pull([&, pool_idx](std::size_t) {
      std::uint64_t matches = 0;
      std::uint64_t steals = 0;
      std::size_t bytes = 0;
      for (;;) {
        const auto t = take_for(pool_idx);
        if (!t) break;
        const parallel::Chunk& c = chunks[*t];
        matches += engine_->collect_chunk(text, c.begin, c.end, slots[*t]);
        bytes += c.end - c.begin;
        if (layout.owners[*t] != pool_idx) ++steals;
      }
      mine.matches.fetch_add(matches, std::memory_order_relaxed);
      mine.bytes.fetch_add(bytes, std::memory_order_relaxed);
      mine.steals.fetch_add(steals, std::memory_order_relaxed);
    });
  };

  // Static runs skip pools with empty segments entirely, exactly like the
  // counting path.
  const auto pool_runs = [&](std::size_t i) {
    return !is_static || layout.seg_offset[i + 1] > layout.seg_offset[i];
  };
  std::vector<std::future<double>> futures(n);
  for (std::size_t i = 1; i < n; ++i) {
    if (!pool_runs(i)) continue;
    futures[i] = std::async(std::launch::async, [&drain, i]() {
      util::Timer timer;
      drain(i);
      return timer.seconds();
    });
  }
  if (pool_runs(0)) {
    util::Timer host_timer;
    drain(0);
    report.pools[0].seconds = host_timer.seconds();
  }
  for (std::size_t i = 1; i < n; ++i) {
    if (futures[i].valid()) report.pools[i].seconds = futures[i].get();
  }

  for (std::size_t i = 0; i < n; ++i) {
    report.pools[i].matches = totals[i].matches.load(std::memory_order_relaxed);
    report.pools[i].bytes = totals[i].bytes.load(std::memory_order_relaxed);
    report.pools[i].steals = totals[i].steals.load(std::memory_order_relaxed);
  }
  // Chunks are laid out in ascending byte order and every match end belongs
  // to exactly one chunk, so a chunk-ordered merge is globally sorted — the
  // same order scan_collect_naive produces.
  std::size_t events = 0;
  for (const auto& slot : slots) events += slot.size();
  out.reserve(out.size() + events);
  for (const auto& slot : slots) out.insert(out.end(), slot.begin(), slot.end());
  finalize_fleet(report);
  return report;
}

ExecutionReport HeterogeneousExecutor::run_recovery_fleet(
    std::string_view text, const std::vector<double>& shares,
    const std::vector<std::size_t>& chunk_counts, parallel::SchedulePolicy schedule,
    std::vector<automata::Match>* out) {
  const std::size_t n = specs_.size();
  const auto bounds = segment_bounds(text.size(), shares);
  ExecutionReport report;
  report.schedule = schedule;
  report.pools.resize(n);
  for (std::size_t i = 0; i < n; ++i) report.pools[i].configured_percent = shares[i];
  if (text.empty()) {
    finalize_fleet(report);
    return report;
  }

  std::size_t total_workers = 0;
  for (const auto& pool : pools_) total_workers += pool->thread_count();
  // kStatic gets the per-segment layout too (build_layout cuts it exactly as
  // the static path would), so a failed pool's segment has a queue the
  // survivors can drain; healthy pools never leave their own segment under
  // static, keeping the configured split.
  const FleetLayout layout =
      build_layout(text.size(), bounds, chunk_counts, total_workers, schedule);
  const std::vector<parallel::Chunk>& chunks = layout.chunks;
  const bool collect = out != nullptr;
  const bool steal_live = layout.per_segment && schedule != parallel::SchedulePolicy::kStatic;

  std::vector<std::unique_ptr<parallel::ChunkQueue>> queues;
  if (layout.per_segment) {
    for (std::size_t i = 0; i < n; ++i) {
      queues.push_back(std::make_unique<parallel::ChunkQueue>(layout.seg_offset[i + 1] -
                                                              layout.seg_offset[i]));
    }
  } else {
    queues.push_back(std::make_unique<parallel::ChunkQueue>(chunks.size()));
  }

  RecoveryContext ctx(n);
  const util::FaultInjector* injector = util::FaultInjector::current();

  // Claim order mirrors the plain paths (own segment, then nearest-first
  // steal), with two changes: a failed pool claims nothing more, and under
  // static the only legal steal source is a failed pool's segment — that
  // steal IS the requeue of its unclaimed remainder.
  const auto take_for = [&](std::size_t i) -> std::optional<std::size_t> {
    if (ctx.failed(i)) return std::nullopt;
    if (!layout.per_segment) return queues[0]->take_front();
    if (const auto t = i + 1 == n ? queues[i]->take_back() : queues[i]->take_front()) {
      return layout.seg_offset[i] + *t;
    }
    const std::uint64_t mask = ctx.failed_mask.load(std::memory_order_acquire);
    for (std::size_t d = 1; d < n; ++d) {
      if (i + d < n && (steal_live || ((mask >> (i + d)) & 1) != 0)) {
        if (const auto t = queues[i + d]->take_front()) {
          if (((mask >> (i + d)) & 1) != 0) ctx.requeued.fetch_add(1, std::memory_order_relaxed);
          return layout.seg_offset[i + d] + *t;
        }
      }
      if (d <= i && (steal_live || ((mask >> (i - d)) & 1) != 0)) {
        if (const auto t = queues[i - d]->take_back()) {
          if (((mask >> (i - d)) & 1) != 0) ctx.requeued.fetch_add(1, std::memory_order_relaxed);
          return layout.seg_offset[i - d] + *t;
        }
      }
    }
    return std::nullopt;
  };

  std::vector<std::vector<automata::Match>> slots(collect ? chunks.size() : 0);
  const automata::DenseDfa* dfa = engine_->dfa();
  const std::size_t sync_bound = engine_->synchronization_bound();

  // Degradation ladder, bottom rung: the per-byte reference scanner over the
  // raw DFA with the same warm-up subtraction the static path uses. Engines
  // without a DFA behind them get one last engine scan with no injection.
  const auto scan_degraded = [&](std::size_t t) -> std::uint64_t {
    const parallel::Chunk& c = chunks[t];
    if (dfa == nullptr) {
      return collect ? engine_->collect_chunk(text, c.begin, c.end, slots[t])
                     : engine_->count_chunk(text, c.begin, c.end);
    }
    const std::size_t lead = std::min(sync_bound - 1, c.begin);
    const std::string_view window = text.substr(c.begin - lead, c.end - c.begin + lead);
    if (!collect) {
      const std::uint64_t full =
          automata::scan_count_naive(*dfa, window, dfa->start()).match_count;
      const std::uint64_t prefix =
          automata::scan_count_naive(*dfa, window.substr(0, lead), dfa->start()).match_count;
      return full - prefix;
    }
    // Collect over the warmed-up window, then keep only the events ending
    // inside (c.begin, c.end] — the chunk contract.
    std::vector<automata::Match> events;
    (void)automata::scan_collect_naive(*dfa, window, dfa->start(), c.begin - lead, events);
    std::uint64_t kept = 0;
    for (const automata::Match& m : events) {
      if (m.end > c.begin) {
        slots[t].push_back(m);
        ++kept;
      }
    }
    return kept;
  };

  // One chunk, healed: injected or genuine scan failures are retried up to
  // the budget, then the chunk falls back to the naive scanner. An injected
  // slowdown stretches the scan by the planned factor.
  const auto scan_recover = [&](std::size_t t) -> std::uint64_t {
    const parallel::Chunk& c = chunks[t];
    for (std::size_t attempt = 0; attempt < recovery_.max_chunk_attempts; ++attempt) {
      try {
        if (injector != nullptr) injector->chunk_scan(t, attempt);
        util::Timer timer;
        const std::uint64_t m = collect
                                    ? engine_->collect_chunk(text, c.begin, c.end, slots[t])
                                    : engine_->count_chunk(text, c.begin, c.end);
        if (injector != nullptr) {
          const double slow = injector->chunk_slow_factor(t);
          if (slow > 1.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>((slow - 1.0) * timer.seconds()));
          }
        }
        return m;
      } catch (...) {
        // Count the failed attempt, drop any partial events, try again.
        ctx.retries.fetch_add(1, std::memory_order_relaxed);
        if (collect) slots[t].clear();
      }
    }
    ctx.degraded.store(true, std::memory_order_relaxed);
    return scan_degraded(t);
  };

  std::vector<PoolTotals> totals(n);
  const automata::CompiledDfa* kernel = engine_->kernel();
  const auto drain = [&](std::size_t pool_idx) {
    parallel::ThreadPool& pool = *pools_[pool_idx];
    PoolTotals& mine = totals[pool_idx];
    const std::size_t streams =
        collect ? 1
                : std::clamp<std::size_t>(
                      chunks.size() / std::max<std::size_t>(1, pool.thread_count()), 1,
                      automata::CompiledDfa::kMaxStreams);
    pool.parallel_pull([&, pool_idx, streams](std::size_t) {
      ctx.started[pool_idx].store(true, std::memory_order_relaxed);
      if (injector != nullptr && injector->pool_dies(pool_idx)) {
        throw util::FaultInjectedError("injected pool-death: pool " +
                                       std::to_string(pool_idx));
      }
      if (injector != nullptr && injector->pool_stalls(pool_idx)) {
        // Hang exactly as a wedged device would: no progress until the
        // watchdog declares the pool failed, then return empty-handed.
        ctx.wait_until_failed(pool_idx);
        return;
      }
      std::uint64_t matches = 0;
      std::uint64_t steals = 0;
      std::size_t bytes = 0;
      const auto account = [&](std::size_t t, std::uint64_t m) {
        matches += m;
        bytes += chunks[t].end - chunks[t].begin;
        if (layout.owners[t] != pool_idx) ++steals;
        ctx.progress[pool_idx].fetch_add(1, std::memory_order_relaxed);
      };
      if (kernel == nullptr || streams == 1) {
        for (;;) {
          const auto t = take_for(pool_idx);
          if (!t) break;
          account(*t, scan_recover(*t));
        }
      } else {
        // Clean chunks ride the multi-stream batch path (the hot path the
        // zero-fault overhead probe measures); chunks with a planned fault
        // take the one-at-a-time recovery scan.
        const std::size_t warmup = sync_bound - 1;
        std::size_t ids[automata::CompiledDfa::kMaxStreams] = {};
        automata::ScanResult res[automata::CompiledDfa::kMaxStreams];
        for (;;) {
          std::size_t m = 0;
          bool claimed_any = false;
          while (m < streams) {
            const auto t = take_for(pool_idx);
            if (!t) break;
            claimed_any = true;
            if (injector != nullptr && injector->chunk_faulty(*t)) {
              account(*t, scan_recover(*t));
              continue;
            }
            ids[m++] = *t;
          }
          if (m > 0) {
            automata::scan_chunk_streams(*kernel, text, warmup, chunks.data(), ids, m, res);
            for (std::size_t k = 0; k < m; ++k) account(ids[k], res[k].match_count);
          }
          if (!claimed_any) break;
        }
      }
      mine.matches.fetch_add(matches, std::memory_order_relaxed);
      mine.bytes.fetch_add(bytes, std::memory_order_relaxed);
      mine.steals.fetch_add(steals, std::memory_order_relaxed);
    });
  };

  // A pool whose workers or join threw is dead: record the failure so the
  // claim paths treat its segment as requeue material, and move on — the
  // survivors and the final sweep own its work now.
  const auto drain_guarded = [&](std::size_t pool_idx) {
    util::Timer timer;
    try {
      drain(pool_idx);
    } catch (...) {
      ctx.mark_failed(pool_idx);
    }
    ctx.finished[pool_idx].store(true, std::memory_order_relaxed);
    return timer.seconds();
  };

  std::vector<double> deadlines(n);
  for (std::size_t i = 0; i < n; ++i) {
    deadlines[i] =
        specs_[i].watchdog_seconds > 0.0 ? specs_[i].watchdog_seconds : recovery_.watchdog_seconds;
  }
  std::thread watchdog([&ctx, deadlines] { watchdog_loop(ctx, deadlines); });

  std::vector<std::future<double>> futures(n);
  for (std::size_t i = 1; i < n; ++i) {
    futures[i] = std::async(std::launch::async, drain_guarded, i);
  }
  report.pools[0].seconds = drain_guarded(0);
  for (std::size_t i = 1; i < n; ++i) report.pools[i].seconds = futures[i].get();
  ctx.done.store(true, std::memory_order_release);
  watchdog.join();

  // Final sweep on the caller thread: anything still unclaimed (total fleet
  // loss, or a pool declared failed after the survivors had already left) is
  // scanned here and attributed to pool 0 — parity holds unconditionally.
  {
    std::uint64_t matches = 0;
    std::uint64_t steals = 0;
    std::uint64_t requeued = 0;
    std::size_t bytes = 0;
    const std::uint64_t mask = ctx.failed_mask.load(std::memory_order_acquire);
    for (std::size_t qi = 0; qi < queues.size(); ++qi) {
      for (;;) {
        const auto local = queues[qi]->take_front();
        if (!local) break;
        const std::size_t t = layout.per_segment ? layout.seg_offset[qi] + *local : *local;
        matches += scan_recover(t);
        bytes += chunks[t].end - chunks[t].begin;
        if (layout.owners[t] != 0) ++steals;
        if (((mask >> layout.owners[t]) & 1) != 0) ++requeued;
      }
      // Poison the drained queue: a late-waking claimant cannot resurrect a
      // range whose results are already merged.
      (void)queues[qi]->close();
    }
    totals[0].matches.fetch_add(matches, std::memory_order_relaxed);
    totals[0].bytes.fetch_add(bytes, std::memory_order_relaxed);
    totals[0].steals.fetch_add(steals, std::memory_order_relaxed);
    ctx.requeued.fetch_add(requeued, std::memory_order_relaxed);
  }

  for (std::size_t i = 0; i < n; ++i) {
    report.pools[i].matches = totals[i].matches.load(std::memory_order_relaxed);
    report.pools[i].bytes = totals[i].bytes.load(std::memory_order_relaxed);
    report.pools[i].steals = totals[i].steals.load(std::memory_order_relaxed);
  }
  const std::uint64_t mask = ctx.failed_mask.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    if (((mask >> i) & 1) != 0) {
      report.pools[i].failed = true;
      report.failed_pools.push_back(i);
    }
  }
  report.requeued_chunks = ctx.requeued.load(std::memory_order_relaxed);
  report.chunk_retries = ctx.retries.load(std::memory_order_relaxed);
  report.degraded = ctx.degraded.load(std::memory_order_relaxed);
  finalize_fleet(report);
  if (collect) {
    // Chunk-ordered merge: ascending chunks, each slot sorted, so the result
    // is globally sorted — identical to a sequential scan_collect_naive.
    std::size_t events = 0;
    for (const auto& slot : slots) events += slot.size();
    out->reserve(out->size() + events);
    for (const auto& slot : slots) out->insert(out->end(), slot.begin(), slot.end());
  }
  return report;
}

}  // namespace hetopt::core
