#include "core/training.hpp"

#include <stdexcept>

#include "core/features.hpp"

namespace hetopt::core {

TrainingSweepOptions TrainingSweepOptions::paper() {
  TrainingSweepOptions o;
  for (int i = 1; i <= 40; ++i) o.fractions.push_back(2.5 * i);
  o.host_threads = {2, 6, 12, 24, 36, 48};
  o.device_threads = {2, 4, 8, 16, 30, 60, 120, 180, 240};
  return o;
}

TrainingSweepOptions TrainingSweepOptions::tiny() {
  TrainingSweepOptions o;
  o.fractions = {25.0, 50.0, 75.0, 100.0};
  o.host_threads = {4, 24};
  o.device_threads = {30, 120};
  return o;
}

TrainingData generate_training_data(const sim::Machine& machine,
                                    const dna::GenomeCatalog& catalog,
                                    const TrainingSweepOptions& options) {
  if (options.fractions.empty() || options.host_threads.empty() ||
      options.device_threads.empty()) {
    throw std::invalid_argument("generate_training_data: empty sweep axis");
  }
  TrainingData data{ml::Dataset(host_feature_names()), ml::Dataset(device_feature_names())};

  for (const dna::GenomeInfo& genome : catalog.all()) {
    for (double fraction : options.fractions) {
      const double mb = genome.size_mb * fraction / 100.0;
      for (int threads : options.host_threads) {
        for (parallel::HostAffinity affinity : parallel::kAllHostAffinities) {
          const double seconds =
              machine.measure_host(mb, threads, affinity, options.repetition);
          data.host.add(host_features(mb, threads, affinity), seconds);
        }
      }
      for (int threads : options.device_threads) {
        for (parallel::DeviceAffinity affinity : parallel::kAllDeviceAffinities) {
          const double seconds =
              machine.measure_device(mb, threads, affinity, options.repetition);
          data.device.add(device_features(mb, threads, affinity), seconds);
        }
      }
    }
  }
  return data;
}

}  // namespace hetopt::core
