// Feature encoding for the performance-prediction models. The paper trains
// on "the input size, the available computing resources, and the thread
// allocation strategies" (§III-B); we encode these as
//   [ size_mb, threads, one-hot affinity (3) ]
// separately per environment (host / device), mirroring the paper's two
// models.
#pragma once

#include <string>
#include <vector>

#include "parallel/affinity.hpp"

namespace hetopt::core {

inline constexpr std::size_t kFeatureCount = 5;

[[nodiscard]] std::vector<std::string> host_feature_names();
[[nodiscard]] std::vector<std::string> device_feature_names();

[[nodiscard]] std::vector<double> host_features(double size_mb, int threads,
                                                parallel::HostAffinity affinity);
[[nodiscard]] std::vector<double> device_features(double size_mb, int threads,
                                                  parallel::DeviceAffinity affinity);

}  // namespace hetopt::core
