// Feature encoding for the performance-prediction models. The paper trains
// on "the input size, the available computing resources, and the thread
// allocation strategies" (§III-B); we encode these as
//   [ size_mb, threads, one-hot affinity (3), one-hot engine (5),
//     one-hot schedule (4), pool_count, pool_share_pct ]
// separately per environment (host / device), mirroring the paper's two
// models. The engine and schedule one-hots and the fleet columns are this
// reproduction's extensions: when the training data varies the match
// engine, the distribution schedule, or the device-fleet size, EML/SAML can
// predict across them too. Sweeps that keep the defaults produce constant
// columns, which the min-max normalizer maps to zero — boosted-tree splits
// and predictions are then identical to the 5-feature layout.
//
// Fleet columns: `pool_count` is the total number of pools in the fleet
// (host + devices; 2 = the paper's host+device pair), `pool_share_pct` the
// percentage of this environment's bytes that one pool of the environment
// holds (host: always 100; device: 100 / device_count, the water-filled
// equal split across identical accelerators). The defaults encode the
// classic pair, so legacy call sites produce constant columns.
#pragma once

#include <string>
#include <vector>

#include "automata/engine_kind.hpp"
#include "parallel/affinity.hpp"
#include "parallel/schedule.hpp"

namespace hetopt::core {

inline constexpr std::size_t kFeatureCount = 16;

[[nodiscard]] std::vector<std::string> host_feature_names();
[[nodiscard]] std::vector<std::string> device_feature_names();

[[nodiscard]] std::vector<double> host_features(
    double size_mb, int threads, parallel::HostAffinity affinity,
    automata::EngineKind engine = automata::EngineKind::kCompiledDfa,
    parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic,
    int pool_count = 2, double pool_share_percent = 100.0);
[[nodiscard]] std::vector<double> device_features(
    double size_mb, int threads, parallel::DeviceAffinity affinity,
    automata::EngineKind engine = automata::EngineKind::kCompiledDfa,
    parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic,
    int pool_count = 2, double pool_share_percent = 100.0);

}  // namespace hetopt::core
