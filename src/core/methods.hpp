// The four optimization methods of Table II:
//   EM    Enumeration          + Measurements
//   EML   Enumeration          + Machine Learning
//   SAM   Simulated Annealing  + Measurements
//   SAML  Simulated Annealing  + Machine Learning
//
// Methods that search with ML predictions are nevertheless *scored* with a
// measurement of the winning configuration ("for fair comparison we use the
// measured values", §IV-C) — which is why EML can end up worse than SAM in
// Fig. 9.
//
// Since the Strategy x Evaluator redesign these are thin presets over
// core::TuningSession (see tuning_session.hpp): the Method enum and the
// run_* functions keep their historical signatures and bit-identical results,
// while new combinations (GeneticSearch, RandomSearch, multi-device
// evaluation) compose through the session API directly.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/predictor.hpp"
#include "core/workload.hpp"
#include "opt/config_space.hpp"
#include "opt/simulated_annealing.hpp"
#include "sim/machine.hpp"

namespace hetopt::core {

enum class Method { kEM, kEML, kSAM, kSAML };

[[nodiscard]] std::string_view to_string(Method m) noexcept;

struct MethodResult {
  Method method = Method::kEM;
  opt::SystemConfig config;      // the suggested configuration
  double measured_time = 0.0;    // measured execution time of `config` (score)
  double search_energy = 0.0;    // energy the search itself saw (may be predicted)
  std::size_t evaluations = 0;   // experiments / predictions performed
};

/// Objective factories. With `fresh_noise` every evaluation is a separate
/// "run" of the application (a fresh noise draw) — what SAM actually does on
/// real hardware; without it, repeated evaluations of a configuration return
/// the same measurement (the enumeration protocol: one experiment per
/// configuration).
[[nodiscard]] opt::Objective measurement_objective(const sim::Machine& machine,
                                                   const Workload& workload,
                                                   bool fresh_noise = false);
[[nodiscard]] opt::Objective prediction_objective(const PerformancePredictor& predictor,
                                                  const Workload& workload);

[[nodiscard]] MethodResult run_em(const opt::ConfigSpace& space, const sim::Machine& machine,
                                  const Workload& workload);
[[nodiscard]] MethodResult run_eml(const opt::ConfigSpace& space, const sim::Machine& machine,
                                   const Workload& workload,
                                   const PerformancePredictor& predictor);
[[nodiscard]] MethodResult run_sam(const opt::ConfigSpace& space, const sim::Machine& machine,
                                   const Workload& workload, const opt::SaParams& sa);
[[nodiscard]] MethodResult run_saml(const opt::ConfigSpace& space, const sim::Machine& machine,
                                    const Workload& workload,
                                    const PerformancePredictor& predictor,
                                    const opt::SaParams& sa);

/// SA parameters tuned so the schedule spends exactly `iterations` steps
/// (the x-axis of Fig. 9 / Tables VI-IX).
[[nodiscard]] opt::SaParams sa_params_for_iterations(std::size_t iterations,
                                                     std::uint64_t seed);

/// Baselines of §IV-D: best configuration that uses only the host
/// (fraction 100, host threads maxed) or only the device (fraction 0).
/// "Host-only (48 threads)" means the thread axis is fixed to its maximum;
/// the affinity axis is optimized by measurement.
[[nodiscard]] MethodResult host_only_baseline(const opt::ConfigSpace& space,
                                              const sim::Machine& machine,
                                              const Workload& workload);
[[nodiscard]] MethodResult device_only_baseline(const opt::ConfigSpace& space,
                                                const sim::Machine& machine,
                                                const Workload& workload);

}  // namespace hetopt::core
