#include "core/evaluator.hpp"

#include <stdexcept>

#include "opt/objective.hpp"
#include "parallel/batch.hpp"
#include "parallel/thread_pool.hpp"

namespace hetopt::core {

double Evaluator::checked(const opt::SystemConfig& config, const Workload& workload) const {
  return opt::checked_energy(value(config, workload));
}

double Evaluator::evaluate(const opt::SystemConfig& config, const Workload& workload) {
  const double e = checked(config, workload);
  ++evaluations_;
  return e;
}

std::vector<double> Evaluator::evaluate_batch(const std::vector<opt::SystemConfig>& configs,
                                              const Workload& workload,
                                              parallel::ThreadPool* pool) {
  parallel::ThreadPool* usable = (concurrent() && configs.size() > 1) ? pool : nullptr;
  std::vector<double> energies = parallel::map_indexed(
      usable, configs.size(),
      [&](std::size_t i) { return checked(configs[i], workload); });
  evaluations_ += configs.size();
  return energies;
}

// --- MeasurementEvaluator ---------------------------------------------------

double MeasurementEvaluator::value(const opt::SystemConfig& c, const Workload& w) const {
  return machine_.measure_combined(w.size_mb, c.host_percent, c.host_threads, c.host_affinity,
                                   c.device_threads, c.device_affinity);
}

double MeasurementEvaluator::score(const opt::SystemConfig& c, const Workload& w) const {
  // Repetition 0 again: scoring re-reads the experiment the search logged,
  // so EM/SAM report exactly the energy their search saw.
  return value(c, w);
}

// --- PredictionEvaluator ----------------------------------------------------

PredictionEvaluator::PredictionEvaluator(const PerformancePredictor& predictor,
                                         sim::Machine machine)
    : predictor_(&predictor), machine_(std::move(machine)) {
  if (!predictor.trained()) {
    throw std::logic_error("PredictionEvaluator: predictor not trained");
  }
}

double PredictionEvaluator::value(const opt::SystemConfig& c, const Workload& w) const {
  return predictor_->predict_combined(c, w.size_mb);
}

double PredictionEvaluator::score(const opt::SystemConfig& c, const Workload& w) const {
  return machine_.measure_combined(w.size_mb, c.host_percent, c.host_threads, c.host_affinity,
                                   c.device_threads, c.device_affinity);
}

// --- MultiDeviceMeasurementEvaluator ----------------------------------------

sim::ShareVector MultiDeviceMeasurementEvaluator::shares(const opt::SystemConfig& c,
                                                         const Workload& w) const {
  return machine_.distribute(w.size_mb, c.host_percent, c.host_threads, c.host_affinity,
                             c.device_threads, c.device_affinity);
}

double MultiDeviceMeasurementEvaluator::value(const opt::SystemConfig& c,
                                              const Workload& w) const {
  return shares(c, w).makespan_s;
}

double MultiDeviceMeasurementEvaluator::score(const opt::SystemConfig& c,
                                              const Workload& w) const {
  return value(c, w);
}

}  // namespace hetopt::core
