#include "opt/enumeration.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hetopt::opt {

EnumerationResult enumerate_best(
    const ConfigSpace& space, const Objective& objective,
    const std::function<void(const SystemConfig&, double)>& visitor) {
  if (!objective) throw std::invalid_argument("enumerate_best: null objective");
  // One shared sweep implementation: the serial form is the batched form
  // with singleton batches (identical order, tie-break and visitor calls).
  return enumerate_best_batched(
      space,
      [&objective](const std::vector<SystemConfig>& configs) {
        std::vector<double> energies;
        energies.reserve(configs.size());
        for (const SystemConfig& c : configs) energies.push_back(objective(c));
        return energies;
      },
      1, visitor);
}

EnumerationResult enumerate_best_batched(
    const ConfigSpace& space, const BatchObjective& objective, std::size_t batch_size,
    const std::function<void(const SystemConfig&, double)>& visitor) {
  if (!objective) throw std::invalid_argument("enumerate_best_batched: null objective");
  if (space.size() == 0) throw std::invalid_argument("enumerate_best_batched: empty space");
  if (batch_size == 0) batch_size = 1;

  EnumerationResult result;
  bool first = true;
  std::vector<SystemConfig> batch;
  batch.reserve(batch_size);
  for (std::size_t begin = 0; begin < space.size(); begin += batch_size) {
    const std::size_t end = std::min(space.size(), begin + batch_size);
    batch.clear();
    for (std::size_t i = begin; i < end; ++i) batch.push_back(space.at(i));
    const std::vector<double> energies = objective(batch);
    if (energies.size() != batch.size()) {
      throw std::runtime_error("enumerate_best_batched: batch objective size mismatch");
    }
    for (std::size_t j = 0; j < batch.size(); ++j) {
      ++result.evaluations;
      if (visitor) visitor(batch[j], energies[j]);
      if (first || energies[j] < result.best_energy) {
        first = false;
        result.best = batch[j];
        result.best_energy = energies[j];
      }
    }
  }
  return result;
}

}  // namespace hetopt::opt
