#include "opt/enumeration.hpp"

#include <stdexcept>

namespace hetopt::opt {

EnumerationResult enumerate_best(
    const ConfigSpace& space, const Objective& objective,
    const std::function<void(const SystemConfig&, double)>& visitor) {
  if (!objective) throw std::invalid_argument("enumerate_best: null objective");
  if (space.size() == 0) throw std::invalid_argument("enumerate_best: empty space");

  EnumerationResult result;
  bool first = true;
  for (std::size_t i = 0; i < space.size(); ++i) {
    const SystemConfig config = space.at(i);
    const double energy = objective(config);
    ++result.evaluations;
    if (visitor) visitor(config, energy);
    if (first || energy < result.best_energy) {
      first = false;
      result.best = config;
      result.best_energy = energy;
    }
  }
  return result;
}

}  // namespace hetopt::opt
