#include "opt/genetic.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace hetopt::opt {

namespace {

struct Individual {
  SystemConfig config;
  double energy = 0.0;
};

/// Per-axis uniform crossover: each of the five parameters comes from one
/// parent chosen by a fair coin.
[[nodiscard]] SystemConfig crossover(const SystemConfig& a, const SystemConfig& b,
                                     util::Xoshiro256& rng) {
  SystemConfig child;
  child.host_threads = rng.bernoulli(0.5) ? a.host_threads : b.host_threads;
  child.host_affinity = rng.bernoulli(0.5) ? a.host_affinity : b.host_affinity;
  child.device_threads = rng.bernoulli(0.5) ? a.device_threads : b.device_threads;
  child.device_affinity = rng.bernoulli(0.5) ? a.device_affinity : b.device_affinity;
  child.host_percent = rng.bernoulli(0.5) ? a.host_percent : b.host_percent;
  return child;
}

[[nodiscard]] const Individual& tournament_pick(const std::vector<Individual>& pop,
                                                std::size_t k, util::Xoshiro256& rng) {
  const Individual* best = &pop[rng.bounded(pop.size())];
  for (std::size_t i = 1; i < k; ++i) {
    const Individual& challenger = pop[rng.bounded(pop.size())];
    if (challenger.energy < best->energy) best = &challenger;
  }
  return *best;
}

}  // namespace

GaResult genetic_algorithm(const ConfigSpace& space, const BatchObjective& objective,
                           const GaParams& params) {
  if (!objective) throw std::invalid_argument("genetic_algorithm: null objective");
  if (params.population < 2) throw std::invalid_argument("genetic_algorithm: population < 2");
  if (params.tournament < 1) throw std::invalid_argument("genetic_algorithm: tournament < 1");
  if (params.elites >= params.population) {
    throw std::invalid_argument("genetic_algorithm: elites must be < population");
  }
  if (params.max_evaluations < params.population) {
    throw std::invalid_argument("genetic_algorithm: budget smaller than one population");
  }

  util::Xoshiro256 rng(params.seed);
  GaResult result;

  std::size_t evaluations = 0;
  const auto evaluate = [&](const std::vector<SystemConfig>& configs) {
    std::vector<double> energies = objective(configs);
    if (energies.size() != configs.size()) {
      throw std::runtime_error("genetic_algorithm: batch objective size mismatch");
    }
    for (double e : energies) (void)checked_energy(e);
    evaluations += energies.size();
    return energies;
  };

  std::vector<SystemConfig> candidates;
  candidates.reserve(params.population);
  for (std::size_t i = 0; i < params.population; ++i) candidates.push_back(space.random(rng));
  std::vector<double> energies = evaluate(candidates);

  std::vector<Individual> population;
  population.reserve(params.population);
  for (std::size_t i = 0; i < params.population; ++i) {
    population.push_back(Individual{candidates[i], energies[i]});
  }

  const auto by_energy = [](const Individual& a, const Individual& b) {
    return a.energy < b.energy;
  };
  std::sort(population.begin(), population.end(), by_energy);
  result.best = population.front().config;
  result.best_energy = population.front().energy;

  while (evaluations + (params.population - params.elites) <= params.max_evaluations) {
    candidates.clear();
    while (candidates.size() < params.population - params.elites) {
      const Individual& pa = tournament_pick(population, params.tournament, rng);
      const Individual& pb = tournament_pick(population, params.tournament, rng);
      SystemConfig child = rng.bernoulli(params.crossover_rate)
                               ? crossover(pa.config, pb.config, rng)
                               : pa.config;
      if (rng.bernoulli(params.mutation_rate)) child = space.neighbor(child, rng);
      candidates.push_back(child);
    }
    energies = evaluate(candidates);

    std::vector<Individual> next(population.begin(),
                                 population.begin() + static_cast<std::ptrdiff_t>(params.elites));
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      next.push_back(Individual{candidates[i], energies[i]});
    }
    population = std::move(next);
    std::sort(population.begin(), population.end(), by_energy);
    if (population.front().energy < result.best_energy) {
      result.best = population.front().config;
      result.best_energy = population.front().energy;
    }
    ++result.generations;
  }

  result.evaluations = evaluations;
  return result;
}

GaResult genetic_algorithm(const ConfigSpace& space, const Objective& objective,
                           const GaParams& params) {
  if (!objective) throw std::invalid_argument("genetic_algorithm: null objective");
  const BatchObjective batched = [&objective](const std::vector<SystemConfig>& configs) {
    std::vector<double> energies;
    energies.reserve(configs.size());
    for (const SystemConfig& c : configs) energies.push_back(objective(c));
    return energies;
  };
  return genetic_algorithm(space, batched, params);
}

}  // namespace hetopt::opt
