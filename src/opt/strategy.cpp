#include "opt/strategy.hpp"

#include <algorithm>
#include <stdexcept>

#include "opt/enumeration.hpp"
#include "util/rng.hpp"

namespace hetopt::opt {

SearchObjective::SearchObjective(Objective single, BatchObjective batch)
    : single_(std::move(single)), batch_(std::move(batch)) {
  if (!single_) throw std::invalid_argument("SearchObjective: null objective");
}

std::vector<double> SearchObjective::evaluate(const std::vector<SystemConfig>& configs) const {
  if (batch_) {
    std::vector<double> energies = batch_(configs);
    if (energies.size() != configs.size()) {
      throw std::runtime_error("SearchObjective: batch objective size mismatch");
    }
    return energies;
  }
  std::vector<double> energies;
  energies.reserve(configs.size());
  for (const SystemConfig& c : configs) energies.push_back(single_(c));
  return energies;
}

SearchOutcome ExhaustiveSearch::search(const ConfigSpace& space,
                                       const SearchObjective& objective,
                                       const SearchBudget& /*budget*/) const {
  const EnumerationResult res = enumerate_best_batched(
      space, [&objective](const std::vector<SystemConfig>& cs) { return objective.evaluate(cs); },
      batch_size_);
  return SearchOutcome{res.best, res.best_energy, res.evaluations};
}

SearchOutcome RandomSearch::search(const ConfigSpace& space, const SearchObjective& objective,
                                   const SearchBudget& budget) const {
  const std::size_t samples =
      budget.max_evaluations != 0 ? budget.max_evaluations : std::min<std::size_t>(space.size(), 1000);
  util::Xoshiro256 rng(budget.seed);

  SearchOutcome outcome;
  bool first = true;
  std::vector<SystemConfig> batch;
  const std::size_t chunk = std::max<std::size_t>(1, batch_size_);
  batch.reserve(std::min(samples, chunk));
  for (std::size_t drawn = 0; drawn < samples;) {
    const std::size_t n = std::min(chunk, samples - drawn);
    batch.clear();
    for (std::size_t i = 0; i < n; ++i) batch.push_back(space.random(rng));
    const std::vector<double> energies = objective.evaluate(batch);
    for (std::size_t i = 0; i < n; ++i) {
      ++outcome.evaluations;
      if (first || energies[i] < outcome.best_energy) {
        first = false;
        outcome.best = batch[i];
        outcome.best_energy = energies[i];
      }
    }
    drawn += n;
  }
  return outcome;
}

SaParams AnnealingSearch::schedule(std::size_t iterations, std::uint64_t seed) {
  SaParams p;
  p.initial_temperature = 2.0;
  p.min_temperature = 1e-3;
  p.cooling_rate =
      SaParams::cooling_rate_for(p.initial_temperature, p.min_temperature, iterations);
  p.max_iterations = iterations;
  p.seed = seed;
  return p;
}

SearchOutcome AnnealingSearch::search(const ConfigSpace& space, const SearchObjective& objective,
                                      const SearchBudget& budget) const {
  SaParams params;
  if (params_) {
    params = *params_;
  } else {
    // Initial evaluation + one per iteration must fit the budget; 0 means
    // the strategy default (the paper's ~1000-iteration schedule).
    const std::size_t evals = budget.max_evaluations != 0 ? budget.max_evaluations : 1000;
    if (evals < 2) {
      throw std::invalid_argument(
          "AnnealingSearch: budget must allow at least 2 evaluations (initial + 1 move)");
    }
    params = schedule(evals - 1, budget.seed);
  }
  const SaResult res = simulated_annealing(space, objective.single(), params);
  return SearchOutcome{res.best, res.best_energy, res.evaluations};
}

SearchOutcome GeneticSearch::search(const ConfigSpace& space, const SearchObjective& objective,
                                    const SearchBudget& budget) const {
  GaParams params;
  if (params_) {
    params = *params_;
  } else {
    params.seed = budget.seed;
    if (budget.max_evaluations != 0) params.max_evaluations = budget.max_evaluations;
  }
  if (params.max_evaluations < 2) {
    throw std::invalid_argument("GeneticSearch: budget must allow a population of at least 2");
  }
  if (params.population > params.max_evaluations) {
    params.population = params.max_evaluations;
  }
  if (params.elites >= params.population) params.elites = params.population - 1;
  if (params.tournament < 1) params.tournament = 1;

  const GaResult res = genetic_algorithm(
      space, BatchObjective([&objective](const std::vector<SystemConfig>& cs) {
        return objective.evaluate(cs);
      }),
      params);
  return SearchOutcome{res.best, res.best_energy, res.evaluations};
}

}  // namespace hetopt::opt
