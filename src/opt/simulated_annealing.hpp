// Simulated annealing, structured exactly like the paper's Fig. 3:
//
//   set initial/best solution & temperature
//   loop until T < T_min:
//     generate a neighbour solution
//     evaluate it (measurement or ML prediction)
//     accept if better, or with probability p = exp((E - E') / T)   (Eq. 4)
//     update current/best
//     T = T * (1 - coolingRate)                                     (Eq. 3)
#pragma once

#include <cstdint>
#include <vector>

#include "opt/config.hpp"
#include "opt/config_space.hpp"
#include "opt/objective.hpp"

namespace hetopt::opt {

struct SaParams {
  double initial_temperature = 2.0;
  double min_temperature = 1e-3;
  double cooling_rate = 0.0076;  // ~1000 iterations with the defaults
  /// Optional hard cap on iterations (0 = schedule decides).
  std::size_t max_iterations = 0;
  std::uint64_t seed = 0x5A5AULL;

  /// Computes the cooling rate that makes the schedule run for exactly
  /// `iterations` steps between the two temperatures (Eq. 3 geometric decay).
  [[nodiscard]] static double cooling_rate_for(double initial_temperature,
                                               double min_temperature,
                                               std::size_t iterations);
};

struct SaTracePoint {
  std::size_t iteration = 0;
  double temperature = 0.0;
  double current_energy = 0.0;
  double best_energy = 0.0;
  bool accepted = false;
  bool accepted_worse = false;
};

struct SaResult {
  SystemConfig best;
  double best_energy = 0.0;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  std::size_t accepted_worse = 0;  // uphill moves taken (local-optimum escapes)
  std::vector<SaTracePoint> trace;
};

/// Runs simulated annealing over `space` minimizing `objective`.
/// Deterministic in params.seed.
[[nodiscard]] SaResult simulated_annealing(const ConfigSpace& space, const Objective& objective,
                                           const SaParams& params = {});

}  // namespace hetopt::opt
