// Pluggable search strategies. The paper hardwires two searches (enumeration,
// simulated annealing); this interface makes the search axis orthogonal to
// the evaluation axis, so any strategy can drive any backend (measurement,
// ML prediction, multi-device makespan) through core::TuningSession.
//
// A strategy minimizes a SearchObjective over a ConfigSpace within a
// SearchBudget. Objectives come in single-candidate and batched form; batch
// consumers (enumeration chunks, GA generations, random batches) let a
// concurrent backend score many candidates at once, while inherently
// sequential strategies (simulated annealing) use the single form.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "opt/config.hpp"
#include "opt/config_space.hpp"
#include "opt/genetic.hpp"
#include "opt/objective.hpp"
#include "opt/simulated_annealing.hpp"

namespace hetopt::opt {

struct SearchBudget {
  /// Maximum number of objective evaluations. 0 means "strategy default";
  /// ExhaustiveSearch ignores the cap entirely (optimality needs the full
  /// space).
  std::size_t max_evaluations = 1000;
  std::uint64_t seed = 0x7475ULL;
};

struct SearchOutcome {
  SystemConfig best;
  double best_energy = 0.0;
  std::size_t evaluations = 0;
};

/// Bundles the single and batched views of one objective. The batch view is
/// optional; when absent, batches fall back to a sequential loop over the
/// single view, so strategies can always call evaluate().
class SearchObjective {
 public:
  explicit SearchObjective(Objective single, BatchObjective batch = nullptr);

  [[nodiscard]] double operator()(const SystemConfig& c) const { return single_(c); }
  [[nodiscard]] std::vector<double> evaluate(const std::vector<SystemConfig>& configs) const;
  [[nodiscard]] bool has_batch() const noexcept { return static_cast<bool>(batch_); }
  [[nodiscard]] const Objective& single() const noexcept { return single_; }

 private:
  Objective single_;
  BatchObjective batch_;
};

class SearchStrategy {
 public:
  virtual ~SearchStrategy() = default;
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual SearchOutcome search(const ConfigSpace& space,
                                             const SearchObjective& objective,
                                             const SearchBudget& budget) const = 0;
};

/// Enumeration: evaluates every configuration (ties resolve to the lowest
/// flat index), `batch_size` candidates per objective call.
class ExhaustiveSearch final : public SearchStrategy {
 public:
  explicit ExhaustiveSearch(std::size_t batch_size = 256) : batch_size_(batch_size) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "exhaustive"; }
  [[nodiscard]] SearchOutcome search(const ConfigSpace& space, const SearchObjective& objective,
                                     const SearchBudget& budget) const override;

 private:
  std::size_t batch_size_;
};

/// Uniform random sampling — the cheap sanity baseline every metaheuristic
/// must beat. Deterministic in budget.seed; ties resolve to the earliest
/// sample.
class RandomSearch final : public SearchStrategy {
 public:
  explicit RandomSearch(std::size_t batch_size = 256) : batch_size_(batch_size) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "random"; }
  [[nodiscard]] SearchOutcome search(const ConfigSpace& space, const SearchObjective& objective,
                                     const SearchBudget& budget) const override;

 private:
  std::size_t batch_size_;
};

/// Simulated annealing (the paper's Fig. 3 loop). Constructed with explicit
/// SaParams it reproduces opt::simulated_annealing bit-for-bit — the params
/// (including their seed and iteration cap) then take precedence over the
/// SearchBudget entirely, which is what makes the Table II presets exact.
/// Default construction instead derives the cooling schedule from the budget
/// so that initial + iterations <= budget.max_evaluations (0 = the paper's
/// ~1000-step default; a budget of 1 cannot fit a move and throws).
class AnnealingSearch final : public SearchStrategy {
 public:
  AnnealingSearch() = default;
  explicit AnnealingSearch(SaParams params) : params_(params) {}

  /// The schedule used by the paper presets: T 2.0 -> 1e-3 with the cooling
  /// rate that spends exactly `iterations` steps (Fig. 9's x-axis).
  [[nodiscard]] static SaParams schedule(std::size_t iterations, std::uint64_t seed);

  [[nodiscard]] std::string_view name() const noexcept override { return "annealing"; }
  [[nodiscard]] SearchOutcome search(const ConfigSpace& space, const SearchObjective& objective,
                                     const SearchBudget& budget) const override;

 private:
  std::optional<SaParams> params_;
};

/// Generational GA (opt/genetic.hpp) as a strategy. Same precedence rule as
/// AnnealingSearch: explicit GaParams (including their seed and evaluation
/// cap) win over the SearchBudget; default construction takes both from the
/// budget. Either way the population is shrunk when the evaluation cap
/// cannot fit the configured one (at least 2).
class GeneticSearch final : public SearchStrategy {
 public:
  GeneticSearch() = default;
  explicit GeneticSearch(GaParams params) : params_(params) {}
  [[nodiscard]] std::string_view name() const noexcept override { return "genetic"; }
  [[nodiscard]] SearchOutcome search(const ConfigSpace& space, const SearchObjective& objective,
                                     const SearchBudget& budget) const override;

 private:
  std::optional<GaParams> params_;
};

}  // namespace hetopt::opt
