// The discrete configuration space (Eq. 1: |space| = product of the value
// ranges). Provides flat indexing for enumeration, uniform sampling, and the
// neighbour move used by simulated annealing.
//
// Beyond the paper's five Table I axes, the space can carry three optional
// axes: the match engine (which scan engine executes the search), the
// distribution schedule (how chunks reach the workers), and the device
// count (how many accelerators share the device fraction — sized in
// practice by the sim layer's MultiDeviceMachine at the call site). All
// default to single-value axes ({compiled-dfa}, {static}, {1}) under which
// every operation — indexing order, sampling, the annealing move's random
// stream — is bit-identical to the paper-axes-only space, so existing
// presets and seeds reproduce exactly. with_engines() / with_schedules() /
// with_device_counts() widen them.
#pragma once

#include <cstdint>
#include <vector>

#include "automata/engine_kind.hpp"
#include "opt/config.hpp"
#include "util/rng.hpp"

namespace hetopt::opt {

class ConfigSpace {
 public:
  /// Axes must be non-empty; numeric axes strictly increasing. The engine
  /// and schedule axes (categorical) must hold distinct values; they default
  /// to the single-value compiled-DFA / static axes.
  ConfigSpace(std::vector<int> host_threads,
              std::vector<parallel::HostAffinity> host_affinities,
              std::vector<int> device_threads,
              std::vector<parallel::DeviceAffinity> device_affinities,
              std::vector<double> fractions,
              std::vector<automata::EngineKind> engines = {
                  automata::EngineKind::kCompiledDfa},
              std::vector<parallel::SchedulePolicy> schedules = {
                  parallel::SchedulePolicy::kStatic});

  /// The paper's space: host threads {2,6,12,24,36,48} x 3 affinities x
  /// device threads {2,4,8,16,30,60,120,180,240} x 3 affinities x
  /// fractions {0, 2.5, ..., 100} = 19 926 configurations (see DESIGN.md).
  [[nodiscard]] static ConfigSpace paper();

  /// A reduced space for fast tests: 2 x 2 x 2 x 2 x 5 = 80 configurations.
  [[nodiscard]] static ConfigSpace tiny();

  /// A space sized to the *actual* machine for live-code tuning (the
  /// real-workload measurement pipeline): host threads are the powers of two
  /// up to `hardware_threads` plus the cap itself, device (emulated
  /// accelerator) threads the same up to 2x that (accelerators
  /// oversubscribe), all six affinities, fractions {0, 25, 50, 75, 100}.
  /// Deterministic in `hardware_threads`; pass 0 to use
  /// std::thread::hardware_concurrency().
  [[nodiscard]] static ConfigSpace real(unsigned hardware_threads = 0);

  /// A copy of this space with the engine axis replaced (e.g. the engines a
  /// core::RealWorkload reports as applicable to its motif set).
  [[nodiscard]] ConfigSpace with_engines(std::vector<automata::EngineKind> engines) const;

  /// A copy of this space with the schedule axis replaced (e.g. all four
  /// policies, to let the tuner price the distribution runtime).
  [[nodiscard]] ConfigSpace with_schedules(
      std::vector<parallel::SchedulePolicy> schedules) const;

  /// A copy of this space with the device-count axis replaced (strictly
  /// increasing counts >= 1; e.g. {1, 2, 4} for the fleets a
  /// sim::MultiDeviceMachine can seat). The default single-value axis {1}
  /// leaves every index, sample, and neighbor stream unchanged.
  [[nodiscard]] ConfigSpace with_device_counts(std::vector<int> device_counts) const;

  [[nodiscard]] std::size_t size() const noexcept;
  /// Mixed-radix decode of a flat index in [0, size()).
  [[nodiscard]] SystemConfig at(std::size_t flat_index) const;
  /// Inverse of at(); throws std::invalid_argument when a component is not
  /// one of the axis values.
  [[nodiscard]] std::size_t index_of(const SystemConfig& config) const;
  [[nodiscard]] bool contains(const SystemConfig& config) const noexcept;

  [[nodiscard]] SystemConfig random(util::Xoshiro256& rng) const;

  /// Simulated-annealing move: pick one parameter uniformly; ordered axes
  /// (threads, fraction, device count) step to a nearby value (±1..±3
  /// positions), the categorical axes (affinities, engine, schedule) jump to
  /// a different value. Single-value extension axes (engine, schedule,
  /// device count) are never picked, so with the defaults the random stream
  /// matches the paper-axes-only move exactly.
  [[nodiscard]] SystemConfig neighbor(const SystemConfig& config,
                                      util::Xoshiro256& rng) const;

  [[nodiscard]] const std::vector<int>& host_threads() const noexcept { return host_threads_; }
  [[nodiscard]] const std::vector<parallel::HostAffinity>& host_affinities() const noexcept {
    return host_affinities_;
  }
  [[nodiscard]] const std::vector<int>& device_threads() const noexcept {
    return device_threads_;
  }
  [[nodiscard]] const std::vector<parallel::DeviceAffinity>& device_affinities()
      const noexcept {
    return device_affinities_;
  }
  [[nodiscard]] const std::vector<double>& fractions() const noexcept { return fractions_; }
  [[nodiscard]] const std::vector<automata::EngineKind>& engines() const noexcept {
    return engines_;
  }
  [[nodiscard]] const std::vector<parallel::SchedulePolicy>& schedules() const noexcept {
    return schedules_;
  }
  [[nodiscard]] const std::vector<int>& device_counts() const noexcept {
    return device_counts_;
  }

 private:
  std::vector<int> host_threads_;
  std::vector<parallel::HostAffinity> host_affinities_;
  std::vector<int> device_threads_;
  std::vector<parallel::DeviceAffinity> device_affinities_;
  std::vector<double> fractions_;
  std::vector<automata::EngineKind> engines_;
  std::vector<parallel::SchedulePolicy> schedules_;
  // Outermost of all axes so the default {1} keeps every flat index — and
  // with it every seeded stream — bit-identical to the pre-fleet space.
  std::vector<int> device_counts_ = {1};
};

}  // namespace hetopt::opt
