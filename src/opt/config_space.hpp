// The discrete configuration space (Eq. 1: |space| = product of the value
// ranges). Provides flat indexing for enumeration, uniform sampling, and the
// neighbour move used by simulated annealing.
#pragma once

#include <cstdint>
#include <vector>

#include "opt/config.hpp"
#include "util/rng.hpp"

namespace hetopt::opt {

class ConfigSpace {
 public:
  /// Axes must be non-empty; numeric axes strictly increasing.
  ConfigSpace(std::vector<int> host_threads,
              std::vector<parallel::HostAffinity> host_affinities,
              std::vector<int> device_threads,
              std::vector<parallel::DeviceAffinity> device_affinities,
              std::vector<double> fractions);

  /// The paper's space: host threads {2,6,12,24,36,48} x 3 affinities x
  /// device threads {2,4,8,16,30,60,120,180,240} x 3 affinities x
  /// fractions {0, 2.5, ..., 100} = 19 926 configurations (see DESIGN.md).
  [[nodiscard]] static ConfigSpace paper();

  /// A reduced space for fast tests: 2 x 2 x 2 x 2 x 5 = 80 configurations.
  [[nodiscard]] static ConfigSpace tiny();

  /// A space sized to the *actual* machine for live-code tuning (the
  /// real-workload measurement pipeline): host threads are the powers of two
  /// up to `hardware_threads` plus the cap itself, device (emulated
  /// accelerator) threads the same up to 2x that (accelerators
  /// oversubscribe), all six affinities, fractions {0, 25, 50, 75, 100}.
  /// Deterministic in `hardware_threads`; pass 0 to use
  /// std::thread::hardware_concurrency().
  [[nodiscard]] static ConfigSpace real(unsigned hardware_threads = 0);

  [[nodiscard]] std::size_t size() const noexcept;
  /// Mixed-radix decode of a flat index in [0, size()).
  [[nodiscard]] SystemConfig at(std::size_t flat_index) const;
  /// Inverse of at(); throws std::invalid_argument when a component is not
  /// one of the axis values.
  [[nodiscard]] std::size_t index_of(const SystemConfig& config) const;
  [[nodiscard]] bool contains(const SystemConfig& config) const noexcept;

  [[nodiscard]] SystemConfig random(util::Xoshiro256& rng) const;

  /// Simulated-annealing move: pick one parameter uniformly; ordered axes
  /// (threads, fraction) step to a nearby value (±1..±3 positions), the
  /// categorical affinity axes jump to a different value.
  [[nodiscard]] SystemConfig neighbor(const SystemConfig& config,
                                      util::Xoshiro256& rng) const;

  [[nodiscard]] const std::vector<int>& host_threads() const noexcept { return host_threads_; }
  [[nodiscard]] const std::vector<parallel::HostAffinity>& host_affinities() const noexcept {
    return host_affinities_;
  }
  [[nodiscard]] const std::vector<int>& device_threads() const noexcept {
    return device_threads_;
  }
  [[nodiscard]] const std::vector<parallel::DeviceAffinity>& device_affinities()
      const noexcept {
    return device_affinities_;
  }
  [[nodiscard]] const std::vector<double>& fractions() const noexcept { return fractions_; }

 private:
  std::vector<int> host_threads_;
  std::vector<parallel::HostAffinity> host_affinities_;
  std::vector<int> device_threads_;
  std::vector<parallel::DeviceAffinity> device_affinities_;
  std::vector<double> fractions_;
};

}  // namespace hetopt::opt
