// Ablation baselines for the search-strategy comparison (bench/ablation_search):
// uniform random search and restarted first-improvement hill climbing.
// Both honour the same evaluation budget as simulated annealing so the
// comparison is apples-to-apples.
#pragma once

#include <cstdint>

#include "opt/config.hpp"
#include "opt/config_space.hpp"
#include "opt/objective.hpp"

namespace hetopt::opt {

struct SearchResult {
  SystemConfig best;
  double best_energy = 0.0;
  std::size_t evaluations = 0;
};

/// Uniformly samples `budget` configurations; keeps the best.
[[nodiscard]] SearchResult random_search(const ConfigSpace& space, const Objective& objective,
                                         std::size_t budget, std::uint64_t seed);

/// First-improvement hill climbing with random restarts. Each step proposes
/// a neighbour; improving moves are taken, otherwise after
/// `patience` consecutive failures the walk restarts from a random point.
/// Stops when `budget` evaluations are spent.
[[nodiscard]] SearchResult hill_climbing(const ConfigSpace& space, const Objective& objective,
                                         std::size_t budget, std::uint64_t seed,
                                         std::size_t patience = 25);

}  // namespace hetopt::opt
