#include "opt/config_space.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace hetopt::opt {

namespace {

template <typename T>
void require_sorted_unique(const std::vector<T>& v, const char* what) {
  if (v.empty()) throw std::invalid_argument(std::string("ConfigSpace: empty axis ") + what);
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (!(v[i - 1] < v[i])) {
      throw std::invalid_argument(std::string("ConfigSpace: axis ") + what +
                                  " must be strictly increasing");
    }
  }
}

template <typename T>
std::size_t axis_index(const std::vector<T>& axis, const T& value, const char* what) {
  const auto it = std::find(axis.begin(), axis.end(), value);
  if (it == axis.end()) {
    throw std::invalid_argument(std::string("ConfigSpace: value not on axis ") + what);
  }
  return static_cast<std::size_t>(it - axis.begin());
}

void require_valid_engine_axis(const std::vector<automata::EngineKind>& engines) {
  if (engines.empty()) throw std::invalid_argument("ConfigSpace: empty engine axis");
  for (std::size_t i = 0; i < engines.size(); ++i) {
    for (std::size_t j = i + 1; j < engines.size(); ++j) {
      if (engines[i] == engines[j]) {
        throw std::invalid_argument("ConfigSpace: duplicate engine on axis");
      }
    }
  }
}

void require_valid_schedule_axis(const std::vector<parallel::SchedulePolicy>& schedules) {
  if (schedules.empty()) throw std::invalid_argument("ConfigSpace: empty schedule axis");
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    for (std::size_t j = i + 1; j < schedules.size(); ++j) {
      if (schedules[i] == schedules[j]) {
        throw std::invalid_argument("ConfigSpace: duplicate schedule on axis");
      }
    }
  }
}

/// Ordered-axis step: move ±1..±3 positions, clamped to the axis.
template <typename T>
std::size_t step_index(const std::vector<T>& axis, std::size_t current,
                       util::Xoshiro256& rng) {
  if (axis.size() == 1) return current;
  const auto span = static_cast<std::int64_t>(rng.range(1, 3));
  const std::int64_t dir = rng.bernoulli(0.5) ? 1 : -1;
  std::int64_t next = static_cast<std::int64_t>(current) + dir * span;
  next = std::clamp<std::int64_t>(next, 0, static_cast<std::int64_t>(axis.size()) - 1);
  if (static_cast<std::size_t>(next) == current) {
    // Clamped into place: move one step the other way instead so the move
    // never degenerates to a no-op on axis boundaries.
    next = static_cast<std::int64_t>(current) - dir;
    next = std::clamp<std::int64_t>(next, 0, static_cast<std::int64_t>(axis.size()) - 1);
  }
  return static_cast<std::size_t>(next);
}

}  // namespace

ConfigSpace::ConfigSpace(std::vector<int> host_threads,
                         std::vector<parallel::HostAffinity> host_affinities,
                         std::vector<int> device_threads,
                         std::vector<parallel::DeviceAffinity> device_affinities,
                         std::vector<double> fractions,
                         std::vector<automata::EngineKind> engines,
                         std::vector<parallel::SchedulePolicy> schedules)
    : host_threads_(std::move(host_threads)),
      host_affinities_(std::move(host_affinities)),
      device_threads_(std::move(device_threads)),
      device_affinities_(std::move(device_affinities)),
      fractions_(std::move(fractions)),
      engines_(std::move(engines)),
      schedules_(std::move(schedules)) {
  require_sorted_unique(host_threads_, "host_threads");
  require_sorted_unique(device_threads_, "device_threads");
  require_sorted_unique(fractions_, "fractions");
  if (host_affinities_.empty() || device_affinities_.empty()) {
    throw std::invalid_argument("ConfigSpace: empty affinity axis");
  }
  for (double f : fractions_) {
    if (f < 0.0 || f > 100.0) {
      throw std::invalid_argument("ConfigSpace: fraction outside [0,100]");
    }
  }
  require_valid_engine_axis(engines_);
  require_valid_schedule_axis(schedules_);
}

ConfigSpace ConfigSpace::with_engines(std::vector<automata::EngineKind> engines) const {
  require_valid_engine_axis(engines);
  ConfigSpace copy = *this;
  copy.engines_ = std::move(engines);
  return copy;
}

ConfigSpace ConfigSpace::with_schedules(
    std::vector<parallel::SchedulePolicy> schedules) const {
  require_valid_schedule_axis(schedules);
  ConfigSpace copy = *this;
  copy.schedules_ = std::move(schedules);
  return copy;
}

ConfigSpace ConfigSpace::with_device_counts(std::vector<int> device_counts) const {
  require_sorted_unique(device_counts, "device_counts");
  for (const int k : device_counts) {
    if (k < 1) throw std::invalid_argument("ConfigSpace: device count below 1");
  }
  ConfigSpace copy = *this;
  copy.device_counts_ = std::move(device_counts);
  return copy;
}

ConfigSpace ConfigSpace::paper() {
  std::vector<double> fractions;
  for (int i = 0; i <= 40; ++i) fractions.push_back(2.5 * i);
  return ConfigSpace(
      {2, 6, 12, 24, 36, 48},
      {parallel::HostAffinity::kNone, parallel::HostAffinity::kScatter,
       parallel::HostAffinity::kCompact},
      {2, 4, 8, 16, 30, 60, 120, 180, 240},
      {parallel::DeviceAffinity::kBalanced, parallel::DeviceAffinity::kScatter,
       parallel::DeviceAffinity::kCompact},
      std::move(fractions));
}

ConfigSpace ConfigSpace::real(unsigned hardware_threads) {
  if (hardware_threads == 0) hardware_threads = std::thread::hardware_concurrency();
  // Clamp to a sane ceiling so the int casts below (including 2x for the
  // device axis) cannot overflow on absurd inputs.
  hardware_threads = std::clamp(hardware_threads, 1u, 1u << 20);
  // Powers of two up to the cap, plus the cap itself so "use every hardware
  // thread" is always reachable on non-power-of-two machines.
  const auto powers_plus_cap = [](int cap) {
    std::vector<int> axis;
    for (int t = 1; t <= cap; t *= 2) axis.push_back(t);
    if (axis.back() != cap) axis.push_back(cap);
    return axis;
  };
  std::vector<int> host = powers_plus_cap(static_cast<int>(hardware_threads));
  std::vector<int> device = powers_plus_cap(2 * static_cast<int>(hardware_threads));
  return ConfigSpace(
      std::move(host),
      {parallel::HostAffinity::kNone, parallel::HostAffinity::kScatter,
       parallel::HostAffinity::kCompact},
      std::move(device),
      {parallel::DeviceAffinity::kBalanced, parallel::DeviceAffinity::kScatter,
       parallel::DeviceAffinity::kCompact},
      {0.0, 25.0, 50.0, 75.0, 100.0});
}

ConfigSpace ConfigSpace::tiny() {
  return ConfigSpace({4, 8},
                     {parallel::HostAffinity::kScatter, parallel::HostAffinity::kCompact},
                     {30, 60},
                     {parallel::DeviceAffinity::kBalanced, parallel::DeviceAffinity::kCompact},
                     {0.0, 25.0, 50.0, 75.0, 100.0});
}

std::size_t ConfigSpace::size() const noexcept {
  return host_threads_.size() * host_affinities_.size() * device_threads_.size() *
         device_affinities_.size() * fractions_.size() * engines_.size() *
         schedules_.size() * device_counts_.size();
}

SystemConfig ConfigSpace::at(std::size_t flat_index) const {
  if (flat_index >= size()) throw std::out_of_range("ConfigSpace::at");
  SystemConfig c;
  c.host_threads = host_threads_[flat_index % host_threads_.size()];
  flat_index /= host_threads_.size();
  c.host_affinity = host_affinities_[flat_index % host_affinities_.size()];
  flat_index /= host_affinities_.size();
  c.device_threads = device_threads_[flat_index % device_threads_.size()];
  flat_index /= device_threads_.size();
  c.device_affinity = device_affinities_[flat_index % device_affinities_.size()];
  flat_index /= device_affinities_.size();
  c.host_percent = fractions_[flat_index % fractions_.size()];
  flat_index /= fractions_.size();
  // The extension axes are outermost (engine, then schedule, then device
  // count outermost of all), so default single-value axes leave the decode
  // of every paper axis (and thus every flat index) unchanged.
  c.engine = engines_[flat_index % engines_.size()];
  flat_index /= engines_.size();
  c.schedule = schedules_[flat_index % schedules_.size()];
  flat_index /= schedules_.size();
  c.device_count = device_counts_[flat_index];
  return c;
}

std::size_t ConfigSpace::index_of(const SystemConfig& config) const {
  const std::size_t i0 = axis_index(host_threads_, config.host_threads, "host_threads");
  const std::size_t i1 = axis_index(host_affinities_, config.host_affinity, "host_affinity");
  const std::size_t i2 = axis_index(device_threads_, config.device_threads, "device_threads");
  const std::size_t i3 =
      axis_index(device_affinities_, config.device_affinity, "device_affinity");
  const std::size_t i4 = axis_index(fractions_, config.host_percent, "fractions");
  const std::size_t i5 = axis_index(engines_, config.engine, "engines");
  const std::size_t i6 = axis_index(schedules_, config.schedule, "schedules");
  const std::size_t i7 = axis_index(device_counts_, config.device_count, "device_counts");
  std::size_t idx = i7;
  idx = idx * schedules_.size() + i6;
  idx = idx * engines_.size() + i5;
  idx = idx * fractions_.size() + i4;
  idx = idx * device_affinities_.size() + i3;
  idx = idx * device_threads_.size() + i2;
  idx = idx * host_affinities_.size() + i1;
  idx = idx * host_threads_.size() + i0;
  return idx;
}

bool ConfigSpace::contains(const SystemConfig& config) const noexcept {
  try {
    (void)index_of(config);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

SystemConfig ConfigSpace::random(util::Xoshiro256& rng) const {
  return at(static_cast<std::size_t>(rng.bounded(size())));
}

SystemConfig ConfigSpace::neighbor(const SystemConfig& config, util::Xoshiro256& rng) const {
  SystemConfig next = config;
  // An extension axis joins the move only when it has somewhere to move to;
  // with the default single-value axes the draw below is bounded(5), which
  // keeps pre-extension-axis seeded runs bit-identical (bounded(6) with only
  // the engine axis widened — the PR-4 stream — and bounded(7) with engine
  // and schedule widened — the PR-5 stream).
  const bool engine_movable = engines_.size() > 1;
  const bool schedule_movable = schedules_.size() > 1;
  const bool devices_movable = device_counts_.size() > 1;
  const std::uint64_t axis =
      rng.bounded(5 + (engine_movable ? 1 : 0) + (schedule_movable ? 1 : 0) +
                  (devices_movable ? 1 : 0));
  switch (axis) {
    case 0: {
      const std::size_t i = axis_index(host_threads_, config.host_threads, "host_threads");
      next.host_threads = host_threads_[step_index(host_threads_, i, rng)];
      break;
    }
    case 1: {
      if (host_affinities_.size() > 1) {
        const std::size_t i =
            axis_index(host_affinities_, config.host_affinity, "host_affinity");
        std::size_t j = static_cast<std::size_t>(rng.bounded(host_affinities_.size() - 1));
        if (j >= i) ++j;
        next.host_affinity = host_affinities_[j];
      }
      break;
    }
    case 2: {
      const std::size_t i =
          axis_index(device_threads_, config.device_threads, "device_threads");
      next.device_threads = device_threads_[step_index(device_threads_, i, rng)];
      break;
    }
    case 3: {
      if (device_affinities_.size() > 1) {
        const std::size_t i =
            axis_index(device_affinities_, config.device_affinity, "device_affinity");
        std::size_t j = static_cast<std::size_t>(rng.bounded(device_affinities_.size() - 1));
        if (j >= i) ++j;
        next.device_affinity = device_affinities_[j];
      }
      break;
    }
    case 4: {
      const std::size_t i = axis_index(fractions_, config.host_percent, "fractions");
      next.host_percent = fractions_[step_index(fractions_, i, rng)];
      break;
    }
    default: {
      // Extension-axis moves. The movable extension axes take the draws past
      // the paper's five in a fixed order — engine, schedule, device count —
      // skipping single-value axes, so each widened axis keeps a stable
      // share of the move and every narrower space reproduces its historical
      // stream (draw 5 was the engine in PR 4, draw 6 the schedule in PR 5).
      enum Ext : int { kEngine, kSchedule, kDevices };
      Ext movable[3];
      std::size_t movable_count = 0;
      if (engine_movable) movable[movable_count++] = kEngine;
      if (schedule_movable) movable[movable_count++] = kSchedule;
      if (devices_movable) movable[movable_count++] = kDevices;
      switch (movable[axis - 5]) {
        case kEngine: {
          const std::size_t i = axis_index(engines_, config.engine, "engines");
          std::size_t j = static_cast<std::size_t>(rng.bounded(engines_.size() - 1));
          if (j >= i) ++j;
          next.engine = engines_[j];
          break;
        }
        case kSchedule: {
          const std::size_t i = axis_index(schedules_, config.schedule, "schedules");
          std::size_t j = static_cast<std::size_t>(rng.bounded(schedules_.size() - 1));
          if (j >= i) ++j;
          next.schedule = schedules_[j];
          break;
        }
        case kDevices: {
          // An ordered axis, like the thread counts: fleets grow or shrink
          // by a few devices, they do not teleport.
          const std::size_t i =
              axis_index(device_counts_, config.device_count, "device_counts");
          next.device_count = device_counts_[step_index(device_counts_, i, rng)];
          break;
        }
      }
      break;
    }
  }
  return next;
}

}  // namespace hetopt::opt
