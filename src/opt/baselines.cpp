#include "opt/baselines.hpp"

#include <stdexcept>

namespace hetopt::opt {

SearchResult random_search(const ConfigSpace& space, const Objective& objective,
                           std::size_t budget, std::uint64_t seed) {
  if (!objective) throw std::invalid_argument("random_search: null objective");
  if (budget == 0) throw std::invalid_argument("random_search: zero budget");
  util::Xoshiro256 rng(seed);
  SearchResult result;
  for (std::size_t i = 0; i < budget; ++i) {
    const SystemConfig c = space.random(rng);
    const double e = objective(c);
    ++result.evaluations;
    if (i == 0 || e < result.best_energy) {
      result.best = c;
      result.best_energy = e;
    }
  }
  return result;
}

SearchResult hill_climbing(const ConfigSpace& space, const Objective& objective,
                           std::size_t budget, std::uint64_t seed, std::size_t patience) {
  if (!objective) throw std::invalid_argument("hill_climbing: null objective");
  if (budget == 0) throw std::invalid_argument("hill_climbing: zero budget");
  util::Xoshiro256 rng(seed);
  SearchResult result;

  SystemConfig current = space.random(rng);
  double current_energy = objective(current);
  ++result.evaluations;
  result.best = current;
  result.best_energy = current_energy;
  std::size_t failures = 0;

  while (result.evaluations < budget) {
    if (failures >= patience) {
      current = space.random(rng);
      current_energy = objective(current);
      ++result.evaluations;
      failures = 0;
      if (current_energy < result.best_energy) {
        result.best = current;
        result.best_energy = current_energy;
      }
      continue;
    }
    const SystemConfig candidate = space.neighbor(current, rng);
    const double e = objective(candidate);
    ++result.evaluations;
    if (e < current_energy) {
      current = candidate;
      current_energy = e;
      failures = 0;
      if (e < result.best_energy) {
        result.best = candidate;
        result.best_energy = e;
      }
    } else {
      ++failures;
    }
  }
  return result;
}

}  // namespace hetopt::opt
