// Exhaustive search ("Enumeration" / brute force): certainly finds the
// optimum at the cost of |space| evaluations (19 926 for the paper's space).
#pragma once

#include <functional>

#include "opt/config.hpp"
#include "opt/config_space.hpp"
#include "opt/objective.hpp"

namespace hetopt::opt {

struct EnumerationResult {
  SystemConfig best;
  double best_energy = 0.0;
  std::size_t evaluations = 0;
};

/// Evaluates every configuration; ties resolve to the lowest flat index.
/// `visitor` (optional) is invoked with (config, energy) for every point —
/// the training-data generator and figure harnesses use it to record the
/// full surface.
[[nodiscard]] EnumerationResult enumerate_best(
    const ConfigSpace& space, const Objective& objective,
    const std::function<void(const SystemConfig&, double)>& visitor = nullptr);

}  // namespace hetopt::opt
