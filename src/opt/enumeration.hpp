// Exhaustive search ("Enumeration" / brute force): certainly finds the
// optimum at the cost of |space| evaluations (19 926 for the paper's space).
#pragma once

#include <functional>

#include "opt/config.hpp"
#include "opt/config_space.hpp"
#include "opt/objective.hpp"

namespace hetopt::opt {

struct EnumerationResult {
  SystemConfig best;
  double best_energy = 0.0;
  std::size_t evaluations = 0;
};

/// Evaluates every configuration; ties resolve to the lowest flat index.
/// `visitor` (optional) is invoked with (config, energy) for every point —
/// the training-data generator and figure harnesses use it to record the
/// full surface.
[[nodiscard]] EnumerationResult enumerate_best(
    const ConfigSpace& space, const Objective& objective,
    const std::function<void(const SystemConfig&, double)>& visitor = nullptr);

/// Batched enumeration: identical result and tie-breaking to enumerate_best
/// (lowest flat index wins), but candidates are evaluated `batch_size` at a
/// time through the batch objective, so a concurrent backend can evaluate a
/// whole chunk in parallel. The visitor still sees every point in flat-index
/// order.
[[nodiscard]] EnumerationResult enumerate_best_batched(
    const ConfigSpace& space, const BatchObjective& objective, std::size_t batch_size = 256,
    const std::function<void(const SystemConfig&, double)>& visitor = nullptr);

}  // namespace hetopt::opt
