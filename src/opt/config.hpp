// A system configuration — the point the optimizers move through:
// (host threads, host affinity, device threads, device affinity,
//  workload fraction), exactly the paper's Table I, plus the match-engine
// axis this reproduction adds on top (which scan engine executes the
// search; the default compiled-DFA engine reproduces the paper's fixed
// application).
#pragma once

#include <cstdint>
#include <string>

#include "automata/engine_kind.hpp"
#include "parallel/affinity.hpp"

namespace hetopt::opt {

struct SystemConfig {
  int host_threads = 1;
  parallel::HostAffinity host_affinity = parallel::HostAffinity::kNone;
  int device_threads = 1;
  parallel::DeviceAffinity device_affinity = parallel::DeviceAffinity::kBalanced;
  /// Percentage of the workload executed on the host; the device gets
  /// 100 - host_percent (Table I: "Workload Fraction").
  double host_percent = 50.0;
  /// Which scan engine executes the motif search (an axis beyond the paper's
  /// Table I; the default is the pre-engine-axis behavior).
  automata::EngineKind engine = automata::EngineKind::kCompiledDfa;

  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

/// "host 24t/scatter 70% | device 60t/balanced 30%"; a non-default engine is
/// appended as " [bitap]" (the default compiled-DFA engine is implied, so
/// paper-space strings are unchanged).
[[nodiscard]] std::string to_string(const SystemConfig& c);

}  // namespace hetopt::opt
