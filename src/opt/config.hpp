// A system configuration — the point the optimizers move through:
// (host threads, host affinity, device threads, device affinity,
//  workload fraction), exactly the paper's Table I, plus the two axes this
// reproduction adds on top: the match engine (which scan engine executes
// the search) and the distribution schedule (how chunks reach the workers).
// The defaults — compiled-DFA engine, static schedule — reproduce the
// paper's fixed application and one-shot split.
#pragma once

#include <cstdint>
#include <string>

#include "automata/engine_kind.hpp"
#include "parallel/affinity.hpp"
#include "parallel/schedule.hpp"

namespace hetopt::opt {

struct SystemConfig {
  int host_threads = 1;
  parallel::HostAffinity host_affinity = parallel::HostAffinity::kNone;
  int device_threads = 1;
  parallel::DeviceAffinity device_affinity = parallel::DeviceAffinity::kBalanced;
  /// Percentage of the workload executed on the host; the device gets
  /// 100 - host_percent (Table I: "Workload Fraction").
  double host_percent = 50.0;
  /// Which scan engine executes the motif search (an axis beyond the paper's
  /// Table I; the default is the pre-engine-axis behavior).
  automata::EngineKind engine = automata::EngineKind::kCompiledDfa;
  /// How the work reaches the pools (parallel/schedule.hpp): the paper's
  /// one-shot static split, or one of the demand-driven chunk-queue
  /// schedules. The default is the pre-schedule-axis behavior.
  parallel::SchedulePolicy schedule = parallel::SchedulePolicy::kStatic;
  /// How many accelerator devices share the device-side workload (the
  /// multi-accelerator scaling the paper names as future work). The device
  /// fraction (100 - host_percent) is water-filled across `device_count`
  /// device pools of `device_threads` each; 1 reproduces the paper's
  /// host+device pair exactly.
  int device_count = 1;

  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

/// "host 24t/scatter 70% | device 60t/balanced 30%"; a non-default engine is
/// appended as " [bitap]", a non-default schedule as " [dynamic]", and a
/// non-default device count as " [3dev]" (the defaults are implied, so
/// paper-space and 2-pool strings are unchanged).
[[nodiscard]] std::string to_string(const SystemConfig& c);

}  // namespace hetopt::opt
