// A system configuration — the point the optimizers move through:
// (host threads, host affinity, device threads, device affinity,
//  workload fraction), exactly the paper's Table I.
#pragma once

#include <cstdint>
#include <string>

#include "parallel/affinity.hpp"

namespace hetopt::opt {

struct SystemConfig {
  int host_threads = 1;
  parallel::HostAffinity host_affinity = parallel::HostAffinity::kNone;
  int device_threads = 1;
  parallel::DeviceAffinity device_affinity = parallel::DeviceAffinity::kBalanced;
  /// Percentage of the workload executed on the host; the device gets
  /// 100 - host_percent (Table I: "Workload Fraction").
  double host_percent = 50.0;

  friend bool operator==(const SystemConfig&, const SystemConfig&) = default;
};

/// "host 24t/scatter 70% | device 60t/balanced 30%"
[[nodiscard]] std::string to_string(const SystemConfig& c);

}  // namespace hetopt::opt
