// Objective functions map a SystemConfig to an energy (the paper's Eq. 2:
// predicted or measured execution time, E = max(T_host, T_device)).
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "opt/config.hpp"

namespace hetopt::opt {

using Objective = std::function<double(const SystemConfig&)>;

/// Batch form: evaluates many candidates at once, returning energies in input
/// order. Backends that can parallelize (a thread pool over the simulated
/// machine, a vectorized predictor) plug in here; strategies that produce
/// whole candidate sets (enumeration chunks, GA generations, random batches)
/// consume it.
using BatchObjective = std::function<std::vector<double>(const std::vector<SystemConfig>&)>;

/// Shared guard for every evaluation path (CountingObjective, the batched
/// GA, core::Evaluator): energies are times, so NaN and negatives are bugs.
inline double checked_energy(double e) {
  if (!(e == e) || e < 0.0) {  // NaN or negative time
    throw std::runtime_error("objective returned invalid energy");
  }
  return e;
}

/// Wraps an objective and counts evaluations (the paper's "number of
/// experiments"). Rejects non-finite energies.
class CountingObjective {
 public:
  explicit CountingObjective(Objective inner) : inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument("CountingObjective: null objective");
  }

  double operator()(const SystemConfig& c) {
    ++count_;
    return checked_energy(inner_(c));
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  Objective inner_;
  std::size_t count_ = 0;
};

}  // namespace hetopt::opt
