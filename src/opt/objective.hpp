// Objective functions map a SystemConfig to an energy (the paper's Eq. 2:
// predicted or measured execution time, E = max(T_host, T_device)).
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>

#include "opt/config.hpp"

namespace hetopt::opt {

using Objective = std::function<double(const SystemConfig&)>;

/// Wraps an objective and counts evaluations (the paper's "number of
/// experiments"). Rejects non-finite energies.
class CountingObjective {
 public:
  explicit CountingObjective(Objective inner) : inner_(std::move(inner)) {
    if (!inner_) throw std::invalid_argument("CountingObjective: null objective");
  }

  double operator()(const SystemConfig& c) {
    ++count_;
    const double e = inner_(c);
    if (!(e == e) || e < 0.0) {  // NaN or negative time
      throw std::runtime_error("objective returned invalid energy");
    }
    return e;
  }

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  Objective inner_;
  std::size_t count_ = 0;
};

}  // namespace hetopt::opt
