// Genetic algorithm over the configuration space — the other metaheuristic
// family the paper's §III-A cites (Press et al.: GA, ACO, SA, ...) before
// settling on simulated annealing. Kept here as a first-class ablation
// baseline so that choice can be quantified (bench/ablation_search).
//
// Standard generational GA: tournament selection, per-axis uniform
// crossover, neighbourhood mutation, elitism. The evaluation budget (number
// of objective calls) is the comparison currency, as everywhere else.
#pragma once

#include <cstdint>

#include "opt/config.hpp"
#include "opt/config_space.hpp"
#include "opt/objective.hpp"

namespace hetopt::opt {

struct GaParams {
  std::size_t population = 32;
  std::size_t tournament = 3;      // tournament size for parent selection
  double crossover_rate = 0.9;     // probability of crossover vs cloning
  double mutation_rate = 0.25;     // per-child probability of a neighbour move
  std::size_t elites = 2;          // unconditionally surviving top individuals
  std::size_t max_evaluations = 1000;
  std::uint64_t seed = 0x6A6AULL;
};

struct GaResult {
  SystemConfig best;
  double best_energy = 0.0;
  std::size_t generations = 0;
  std::size_t evaluations = 0;
};

[[nodiscard]] GaResult genetic_algorithm(const ConfigSpace& space,
                                         const Objective& objective,
                                         const GaParams& params = {});

/// Batch form: each generation's offspring are produced first (consuming the
/// RNG in exactly the same order as the serial form, since evaluation never
/// draws from it) and then evaluated in one batch-objective call, so a
/// concurrent backend can score a whole population in parallel. Bit-identical
/// results to the serial overload for any objective.
[[nodiscard]] GaResult genetic_algorithm(const ConfigSpace& space,
                                         const BatchObjective& objective,
                                         const GaParams& params = {});

}  // namespace hetopt::opt
