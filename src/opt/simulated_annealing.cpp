#include "opt/simulated_annealing.hpp"

#include <cmath>
#include <stdexcept>

namespace hetopt::opt {

double SaParams::cooling_rate_for(double initial_temperature, double min_temperature,
                                  std::size_t iterations) {
  if (initial_temperature <= min_temperature || min_temperature <= 0.0) {
    throw std::invalid_argument("cooling_rate_for: bad temperatures");
  }
  if (iterations == 0) throw std::invalid_argument("cooling_rate_for: zero iterations");
  // After n steps: T_min = T_0 * (1-r)^n  =>  r = 1 - (T_min/T_0)^(1/n).
  return 1.0 - std::pow(min_temperature / initial_temperature,
                        1.0 / static_cast<double>(iterations));
}

SaResult simulated_annealing(const ConfigSpace& space, const Objective& objective,
                             const SaParams& params) {
  if (!objective) throw std::invalid_argument("simulated_annealing: null objective");
  if (params.initial_temperature <= 0.0 || params.min_temperature <= 0.0 ||
      params.initial_temperature < params.min_temperature) {
    throw std::invalid_argument("simulated_annealing: bad temperature range");
  }
  if (params.cooling_rate <= 0.0 || params.cooling_rate >= 1.0) {
    throw std::invalid_argument("simulated_annealing: cooling rate out of (0,1)");
  }

  util::Xoshiro256 rng(params.seed);
  CountingObjective counted(objective);

  SaResult result;
  SystemConfig current = space.random(rng);
  double current_energy = counted(current);
  result.best = current;
  result.best_energy = current_energy;

  double temperature = params.initial_temperature;
  std::size_t iteration = 0;
  while (temperature > params.min_temperature &&
         (params.max_iterations == 0 || iteration < params.max_iterations)) {
    const SystemConfig candidate = space.neighbor(current, rng);
    const double candidate_energy = counted(candidate);

    bool accepted = false;
    bool accepted_worse = false;
    if (candidate_energy <= current_energy) {
      accepted = true;
    } else {
      const double p = std::exp((current_energy - candidate_energy) / temperature);
      if (rng.uniform() < p) {
        accepted = true;
        accepted_worse = true;
      }
    }
    if (accepted) {
      current = candidate;
      current_energy = candidate_energy;
      if (current_energy < result.best_energy) {
        result.best = current;
        result.best_energy = current_energy;
      }
      if (accepted_worse) ++result.accepted_worse;
    }

    ++iteration;
    result.trace.push_back(SaTracePoint{iteration, temperature, current_energy,
                                        result.best_energy, accepted, accepted_worse});
    temperature *= (1.0 - params.cooling_rate);
  }

  result.iterations = iteration;
  result.evaluations = counted.count();
  return result;
}

}  // namespace hetopt::opt
