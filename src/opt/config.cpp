#include "opt/config.hpp"

#include "util/strings.hpp"

namespace hetopt::opt {

std::string to_string(const SystemConfig& c) {
  std::string out = "host ";
  out += std::to_string(c.host_threads);
  out += "t/";
  out += parallel::to_string(c.host_affinity);
  out += ' ';
  out += util::format_trimmed(c.host_percent, 1);
  out += "% | device ";
  out += std::to_string(c.device_threads);
  out += "t/";
  out += parallel::to_string(c.device_affinity);
  out += ' ';
  out += util::format_trimmed(100.0 - c.host_percent, 1);
  out += '%';
  if (c.engine != automata::EngineKind::kCompiledDfa) {
    out += " [";
    out += automata::to_string(c.engine);
    out += ']';
  }
  if (c.schedule != parallel::SchedulePolicy::kStatic) {
    out += " [";
    out += parallel::to_string(c.schedule);
    out += ']';
  }
  if (c.device_count != 1) {
    out += " [";
    out += std::to_string(c.device_count);
    out += "dev]";
  }
  return out;
}

}  // namespace hetopt::opt
