// The paper's four evaluation genomes, with their *logical* sizes (what the
// performance model sees — identical to the paper's x-axes) and a recipe to
// materialize a *physical* scaled-down synthetic sequence for real runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dna/generator.hpp"
#include "dna/sequence.hpp"

namespace hetopt::dna {

struct GenomeInfo {
  std::string name;        // "human", "mouse", "cat", "dog"
  double size_mb;          // logical size, as in the paper (e.g. human 3170 MB)
  MarkovParams markov;     // organism-flavoured composition
  std::uint64_t seed;      // generation seed (derived from the name)

  [[nodiscard]] std::size_t size_bytes() const noexcept {
    return static_cast<std::size_t>(size_mb * 1024.0 * 1024.0);
  }
};

/// Registry of the paper's genomes.
class GenomeCatalog {
 public:
  GenomeCatalog();

  [[nodiscard]] const std::vector<GenomeInfo>& all() const noexcept { return genomes_; }
  /// Lookup by name; throws std::out_of_range for unknown organisms.
  [[nodiscard]] const GenomeInfo& get(std::string_view name) const;

  /// Materializes a physical synthetic sequence of `physical_bytes` bases for
  /// the named organism (deterministic). Used by examples and tests; the
  /// simulator never needs physical bases.
  [[nodiscard]] Sequence materialize(std::string_view name, std::size_t physical_bytes,
                                     const std::vector<PlantedMotif>& motifs = {}) const;

 private:
  std::vector<GenomeInfo> genomes_;
};

}  // namespace hetopt::dna
