#include "dna/paged_genome.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hetopt::dna {

// --- BufferPageSource -------------------------------------------------------

void BufferPageSource::read(std::size_t offset, char* out, std::size_t n) const {
  std::memcpy(out, bytes_.data() + offset, n);
}

std::string BufferPageSource::describe() const {
  return "buffer:" + std::to_string(bytes_.size()) + "B";
}

// --- FilePageSource ---------------------------------------------------------

FilePageSource::FilePageSource(std::string path) : path_(std::move(path)) {
  file_.open(path_, std::ios::binary);
  if (!file_) {
    throw std::runtime_error("FilePageSource: cannot open '" + path_ + "'");
  }
  file_.seekg(0, std::ios::end);
  const auto end = file_.tellg();
  if (end < 0) {
    throw std::runtime_error("FilePageSource: cannot size '" + path_ + "'");
  }
  size_ = static_cast<std::size_t>(end);
}

void FilePageSource::read(std::size_t offset, char* out, std::size_t n) const {
  const util::MutexLock lock(mutex_);
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(offset));
  file_.read(out, static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(file_.gcount()) != n) {
    throw std::runtime_error("FilePageSource: short read from '" + path_ + "'");
  }
}

// --- GeneratorPageSource ----------------------------------------------------

GeneratorPageSource::GeneratorPageSource(std::size_t size, std::uint64_t seed,
                                         MarkovParams params,
                                         std::vector<std::string> motifs,
                                         std::size_t copies_per_block)
    : generator_(params), size_(size), seed_(seed), motifs_(std::move(motifs)),
      copies_per_block_(copies_per_block), cached_index_(kNoBlock) {
  for (const std::string& m : motifs_) {
    if (m.empty()) throw std::invalid_argument("GeneratorPageSource: empty motif");
  }
}

std::string GeneratorPageSource::make_block(std::size_t index) const {
  const std::size_t begin = index * kBlockBytes;
  const std::size_t len = std::min(kBlockBytes, size_ - begin);
  std::string block = generator_.generate(len, util::hash_combine(seed_, index));
  if (!motifs_.empty() && copies_per_block_ > 0) {
    util::Xoshiro256 rng(
        util::hash_combine(util::hash_combine(seed_, 0x70616765ULL), index));
    std::vector<std::pair<std::size_t, std::size_t>> used;
    for (const std::string& m : motifs_) {
      if (m.size() > len) continue;
      for (std::size_t c = 0; c < copies_per_block_; ++c) {
        for (std::size_t attempt = 0; attempt < 16; ++attempt) {
          const std::size_t pos = rng.bounded(len - m.size() + 1);
          const bool overlaps =
              std::any_of(used.begin(), used.end(), [&](const auto& r) {
                return pos < r.second && r.first < pos + m.size();
              });
          if (overlaps) continue;
          block.replace(pos, m.size(), m);
          used.emplace_back(pos, pos + m.size());
          break;
        }
      }
    }
  }
  return block;
}

void GeneratorPageSource::read(std::size_t offset, char* out, std::size_t n) const {
  const util::MutexLock lock(mutex_);
  std::size_t done = 0;
  while (done < n) {
    const std::size_t pos = offset + done;
    const std::size_t block_index = pos / kBlockBytes;
    if (cached_index_ != block_index) {
      cached_block_ = make_block(block_index);
      cached_index_ = block_index;
    }
    const std::size_t in_block = pos - block_index * kBlockBytes;
    const std::size_t take = std::min(n - done, cached_block_.size() - in_block);
    std::memcpy(out + done, cached_block_.data() + in_block, take);
    done += take;
  }
}

std::string GeneratorPageSource::describe() const {
  return "generator:seed=" + std::to_string(seed_) + ",bytes=" + std::to_string(size_);
}

// --- PagedGenome ------------------------------------------------------------

PagedGenome::PageRef& PagedGenome::PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    release();
    owner_ = std::exchange(other.owner_, nullptr);
    slot_ = other.slot_;
    page_ = other.page_;
    begin_ = other.begin_;
    halo_ = other.halo_;
    view_ = other.view_;
  }
  return *this;
}

void PagedGenome::PageRef::release() noexcept {
  if (owner_ != nullptr) {
    owner_->unpin(slot_);
    owner_ = nullptr;
  }
}

PagedGenome::PagedGenome(std::unique_ptr<PageSource> source, PagedGenomeOptions options)
    : source_(std::move(source)), options_(options) {
  if (source_ == nullptr) throw std::invalid_argument("PagedGenome: null source");
  if (options_.page_bytes == 0) throw std::invalid_argument("PagedGenome: zero page size");
  if (options_.resident_pages == 0) {
    throw std::invalid_argument("PagedGenome: zero resident budget");
  }
  size_ = source_->size();
  page_count_ = (size_ + options_.page_bytes - 1) / options_.page_bytes;
  slots_.resize(std::min(options_.resident_pages,
                         std::max<std::size_t>(page_count_, 1)));
  slot_of_.assign(page_count_, kNoPage);
}

std::size_t PagedGenome::page_payload_bytes(std::size_t page) const noexcept {
  const std::size_t begin = page_begin(page);
  return std::min(options_.page_bytes, size_ - begin);
}

PagedGenome::PageRef PagedGenome::acquire(std::size_t page) {
  return acquire_impl(page, /*prefetch=*/false, /*cancel=*/nullptr);
}

PagedGenome::PageRef PagedGenome::acquire_prefetch(std::size_t page,
                                                   const std::atomic<bool>* cancel) {
  return acquire_impl(page, /*prefetch=*/true, cancel);
}

void PagedGenome::wake_waiters() {
  // Empty critical section: orders the caller's flag store before the
  // waiters' re-check, so no wait can miss the wake.
  { const util::MutexLock lock(mutex_); }
  cv_.notify_all();
}

std::size_t PagedGenome::pick_slot_locked() {
  std::size_t best = kNoPage;
  std::uint64_t best_tick = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.page == kNoPage) return i;
    if (s.pins > 0 || s.loading) continue;
    if (best == kNoPage || s.last_use < best_tick) {
      best = i;
      best_tick = s.last_use;
    }
  }
  return best;
}

PagedGenome::PageRef PagedGenome::acquire_impl(std::size_t page, bool prefetch,
                                               const std::atomic<bool>* cancel) {
  if (page >= page_count_) {
    throw std::out_of_range("PagedGenome: page " + std::to_string(page) + " of " +
                            std::to_string(page_count_));
  }
  const util::Timer waited;
  bool stalled = false;       // waited for a load in flight
  bool backpressured = false;
  for (;;) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) return PageRef();
    std::size_t slot = kNoPage;
    {
      util::MutexLock lock(mutex_);
      if (const std::size_t resident = slot_of_[page]; resident != kNoPage) {
        Slot& s = slots_[resident];
        if (s.loading) {
          stalled = true;
          cv_.wait(mutex_);
          continue;
        }
        ++s.pins;
        s.last_use = ++tick_;
        if (stalled && !prefetch) {
          ++stats_.cold_stalls;
          stats_.cold_stall_seconds += waited.seconds();
        } else if (!stalled) {
          ++stats_.hits;
        }
        return PageRef(this, resident, page, page_begin(page), s.halo,
                       std::string_view(s.bytes.data(), s.bytes.size()));
      }
      slot = pick_slot_locked();
      if (slot == kNoPage) {
        if (!backpressured) {
          ++stats_.backpressure_waits;
          backpressured = true;
        }
        cv_.wait(mutex_);
        continue;
      }
      Slot& s = slots_[slot];
      if (s.page != kNoPage) {
        slot_of_[s.page] = kNoPage;
        ++stats_.evictions;
      }
      s.page = page;
      s.loading = true;
      s.pins = 1;
      s.last_use = ++tick_;
      slot_of_[page] = slot;
    }
    // Load outside the lock: other pages stay acquirable, waiters for this
    // page sleep on cv_ until the loading flag clears.
    const std::size_t begin = page_begin(page);
    const std::size_t payload = page_payload_bytes(page);
    const std::size_t halo = std::min(options_.halo_bytes, begin);
    util::AlignedBuffer<char> bytes(halo + payload);
    const util::Timer load_timer;
    try {
      source_->read(begin - halo, bytes.data(), halo + payload);
    } catch (...) {
      // Return the slot to the free pool so waiters re-try (and re-throw
      // from their own load) instead of hanging on a forever-loading page.
      {
        const util::MutexLock lock(mutex_);
        Slot& s = slots_[slot];
        slot_of_[page] = kNoPage;
        s.page = kNoPage;
        s.loading = false;
        s.pins = 0;
      }
      cv_.notify_all();
      throw;
    }
    const double load_seconds = load_timer.seconds();
    PageRef ref;
    {
      const util::MutexLock lock(mutex_);
      Slot& s = slots_[slot];
      s.bytes = std::move(bytes);
      s.halo = halo;
      s.loading = false;
      ++stats_.loads;
      stats_.bytes_read += halo + payload;
      stats_.load_seconds += load_seconds;
      if (!prefetch) {
        ++stats_.cold_stalls;
        stats_.cold_stall_seconds += waited.seconds();
      }
      ref = PageRef(this, slot, page, begin, halo,
                    std::string_view(s.bytes.data(), s.bytes.size()));
    }
    cv_.notify_all();
    return ref;
  }
}

void PagedGenome::unpin(std::size_t slot) noexcept {
  bool last = false;
  {
    const util::MutexLock lock(mutex_);
    Slot& s = slots_[slot];
    if (s.pins > 0) --s.pins;
    last = s.pins == 0;
  }
  if (last) cv_.notify_all();  // budget waiters can now evict this slot
}

std::size_t PagedGenome::resident_pages() const {
  const util::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const Slot& s : slots_) {
    if (s.page != kNoPage && !s.loading) ++n;
  }
  return n;
}

CacheStats PagedGenome::stats() const {
  const util::MutexLock lock(mutex_);
  return stats_;
}

void PagedGenome::reset_stats() {
  const util::MutexLock lock(mutex_);
  stats_ = CacheStats{};
}

}  // namespace hetopt::dna
