// Minimal FASTA reader/writer so example applications can exchange
// sequences with standard bioinformatics tooling, plus a streaming decoder
// for block-wise ingestion (the out-of-core materialization path).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "dna/sequence.hpp"
#include "util/rng.hpp"

namespace hetopt::dna {

/// Writes sequences in FASTA format with the given line width.
void write_fasta(std::ostream& os, const std::vector<Sequence>& seqs,
                 std::size_t line_width = 70);

/// Reads all records from a FASTA stream. Characters other than ACGT
/// (e.g. 'N' runs in real assemblies) are handled per `policy`.
enum class AmbiguityPolicy {
  kReject,     // throw on any non-ACGT base
  kSkip,       // drop non-ACGT characters
  kRandomize,  // replace with a deterministic pseudo-random base
};

[[nodiscard]] std::vector<Sequence> read_fasta(std::istream& is,
                                               AmbiguityPolicy policy = AmbiguityPolicy::kSkip);

/// Streaming FASTA decoder for block-wise ingestion: feed() arbitrary byte
/// blocks and the decoded bases (concatenated across records, uppercased,
/// ambiguity handled per policy) accumulate into the caller's sink. All
/// parser state — inside-a-header, at-line-start, the randomizer stream —
/// carries across feeds, so headers and newlines straddling block
/// boundaries decode exactly as they would in one contiguous read: the
/// decoded output is byte-identical for every blocking of the same input
/// (property-tested). This is what lets the paged materializer cut FASTA
/// files at arbitrary page boundaries.
class FastaStreamDecoder {
 public:
  explicit FastaStreamDecoder(AmbiguityPolicy policy = AmbiguityPolicy::kSkip)
      : policy_(policy) {}

  /// Decodes `block`, appending bases to `out`. Throws std::invalid_argument
  /// under AmbiguityPolicy::kReject on a non-ACGT base.
  void feed(std::string_view block, std::string& out);

  /// FASTA records seen so far ('>' headers at line starts).
  [[nodiscard]] std::size_t records() const noexcept { return records_; }

 private:
  AmbiguityPolicy policy_;
  bool in_header_ = false;
  bool at_line_start_ = true;
  std::size_t records_ = 0;
  util::Xoshiro256 rng_{0xFA57Aull};  // same stream as read_fasta's randomizer
};

/// Materializes a FASTA stream into the raw one-byte-per-base shape
/// dna::FilePageSource serves, reading and decoding in fixed blocks so the
/// corpus never needs to fit in memory. Returns the number of bases written.
std::size_t materialize_fasta_to_raw(std::istream& in, std::ostream& out,
                                     AmbiguityPolicy policy = AmbiguityPolicy::kSkip,
                                     std::size_t block_bytes = std::size_t{64} << 10);

}  // namespace hetopt::dna
