// Minimal FASTA reader/writer so example applications can exchange
// sequences with standard bioinformatics tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "dna/sequence.hpp"

namespace hetopt::dna {

/// Writes sequences in FASTA format with the given line width.
void write_fasta(std::ostream& os, const std::vector<Sequence>& seqs,
                 std::size_t line_width = 70);

/// Reads all records from a FASTA stream. Characters other than ACGT
/// (e.g. 'N' runs in real assemblies) are handled per `policy`.
enum class AmbiguityPolicy {
  kReject,     // throw on any non-ACGT base
  kSkip,       // drop non-ACGT characters
  kRandomize,  // replace with a deterministic pseudo-random base
};

[[nodiscard]] std::vector<Sequence> read_fasta(std::istream& is,
                                               AmbiguityPolicy policy = AmbiguityPolicy::kSkip);

}  // namespace hetopt::dna
