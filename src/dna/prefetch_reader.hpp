// Background page prefetch: the IO half of the IO/compute pipeline.
//
// A PrefetchReader owns one fetch thread that keeps a lookahead ring of up
// to `depth` pinned pages ahead of the consumer's published frontier:
//
//      consumer frontier                    prefetch ring (pinned)
//            v                               v
//   [ done ][ scanning ][ resident, warm ][ loading ahead ... ]
//
// The scan path publishes its frontier (the highest page it has started
// consuming) via publish(); the reader then drops ring pins at or behind
// the frontier — the pages stay resident until LRU-evicted, the ring just
// stops protecting them — and pulls new pages through
// PagedGenome::acquire_prefetch until it is `depth` pages ahead again.
// The reader *chases* the frontier: if the consumers outrun it, it skips
// straight to the published page rather than re-loading the corpus behind
// them (passed pages are evicted or about to be — fetching them doubles IO).
// Backpressure is inherited from the cache: when every slot is pinned the
// acquire blocks, and the reader resumes as pins drop. The ring size must
// leave the consumers room inside the resident budget — the scan paths clamp
// depth to resident_pages - workers - 2 (ring + one in-flight load + the
// workers' own pins all fit, so progress is never deadlocked on the budget).
//
// depth = 0 is the measured baseline: no thread is started, every page is a
// cold consumer load. The io_bound bench's prefetch-depth sweep compares
// cold-stall time across depths against that row.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <thread>

#include "dna/paged_genome.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace hetopt::dna {

struct PrefetchStats {
  std::uint64_t pages_prefetched = 0;
  /// Times the fetch loop went to sleep because the ring was full (it was
  /// `depth` pages ahead) — the reader outrunning the consumers.
  std::uint64_t ring_full_waits = 0;
};

class PrefetchReader {
 public:
  /// Prefetches pages of [first_page, last_page) in ascending order, up to
  /// `depth` pages ahead of the published frontier. depth 0 starts no
  /// thread; any depth self-clamps to resident_pages - 1 so the ring alone
  /// can never pin the whole budget (the scan paths clamp tighter, leaving
  /// room for every worker). The genome must outlive the reader.
  PrefetchReader(PagedGenome& genome, std::size_t first_page, std::size_t last_page,
                 std::size_t depth);
  ~PrefetchReader() { stop(); }

  PrefetchReader(const PrefetchReader&) = delete;
  PrefetchReader& operator=(const PrefetchReader&) = delete;

  /// Tells the reader the consumer has started page `page`: the frontier is
  /// monotonic (lower publications are no-ops), ring pins at or behind it
  /// are dropped, and fetching extends to frontier + depth. Thread-safe.
  void publish(std::size_t page);

  /// Stops the fetch thread and drops every ring pin (idempotent; also run
  /// by the destructor). Joins even while the fetch thread is blocked
  /// behind cache backpressure: the acquire carries a cancel flag and
  /// stop() wakes the cache's waiters.
  void stop();

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] PrefetchStats stats() const;

 private:
  void fetch_loop();

  PagedGenome& genome_;
  std::size_t first_page_;
  std::size_t last_page_;
  std::size_t depth_;

  mutable util::Mutex mutex_;
  util::CondVar cv_;  // signaled on publish() and stop()
  std::size_t frontier_ HETOPT_GUARDED_BY(mutex_);
  bool stopping_ HETOPT_GUARDED_BY(mutex_) = false;
  PrefetchStats stats_ HETOPT_GUARDED_BY(mutex_);
  /// Mirrors stopping_ for the cache's cooperative-cancellation check (the
  /// blocked acquire must not take this reader's mutex).
  std::atomic<bool> cancel_{false};

  std::thread thread_;  // started last, joined by stop()
};

}  // namespace hetopt::dna
