// DNA alphabet: 2-bit base codes plus IUPAC ambiguity codes used to express
// motifs (search patterns) such as "TATAWAW".
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace hetopt::dna {

/// Canonical nucleotide codes. Values are indices into transition tables.
enum class Base : std::uint8_t { A = 0, C = 1, G = 2, T = 3 };

inline constexpr std::size_t kAlphabetSize = 4;
inline constexpr std::array<char, kAlphabetSize> kBaseChars{'A', 'C', 'G', 'T'};

[[nodiscard]] constexpr char to_char(Base b) noexcept {
  return kBaseChars[static_cast<std::size_t>(b)];
}

/// Maps an upper- or lower-case base character to its code; nullopt otherwise.
[[nodiscard]] std::optional<Base> base_from_char(char c) noexcept;

/// A set of bases encoded as a 4-bit mask (bit i = base i allowed).
/// IUPAC codes map to masks, e.g. 'N' -> 0b1111, 'R' (puRine) -> {A,G}.
class BaseSet {
 public:
  constexpr BaseSet() noexcept = default;
  explicit constexpr BaseSet(std::uint8_t mask) noexcept : mask_(mask & 0xF) {}
  static constexpr BaseSet single(Base b) noexcept {
    return BaseSet(static_cast<std::uint8_t>(1U << static_cast<unsigned>(b)));
  }
  static constexpr BaseSet all() noexcept { return BaseSet(0xF); }

  [[nodiscard]] constexpr bool contains(Base b) const noexcept {
    return (mask_ >> static_cast<unsigned>(b)) & 1U;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return mask_ == 0; }
  [[nodiscard]] constexpr std::uint8_t mask() const noexcept { return mask_; }
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    std::size_t n = 0;
    for (unsigned i = 0; i < kAlphabetSize; ++i) n += (mask_ >> i) & 1U;
    return n;
  }
  friend constexpr bool operator==(BaseSet, BaseSet) noexcept = default;

 private:
  std::uint8_t mask_ = 0;
};

/// IUPAC nucleotide ambiguity code -> base set. Accepts upper/lower case.
/// Returns nullopt for characters outside the IUPAC alphabet.
[[nodiscard]] std::optional<BaseSet> iupac_from_char(char c) noexcept;

/// Validates a motif pattern (IUPAC alphabet). Returns an error message or
/// empty string when valid.
[[nodiscard]] std::string validate_motif(std::string_view motif);

/// Watson–Crick complement.
[[nodiscard]] constexpr Base complement(Base b) noexcept {
  return static_cast<Base>(3 - static_cast<std::uint8_t>(b));
}

/// Reverse complement of a plain ACGT string; throws on invalid characters.
[[nodiscard]] std::string reverse_complement(std::string_view seq);

}  // namespace hetopt::dna
