// Out-of-core genome storage: a page-granular corpus abstraction so scans
// can stream sequences larger than RAM (ROADMAP item 2, the xgboost
// external-memory page idiom).
//
// A PagedGenome cuts a corpus of `size()` bytes into fixed-size pages and
// serves them from a bounded cache of util::AlignedBuffers:
//
//   - pages are filled on demand from a PageSource (an on-disk raw file, an
//     in-memory buffer, or the deterministic generator producing bytes on
//     the fly — corpora that never exist in full anywhere);
//   - acquire(page) pins a page and returns a RAII PageRef; pinned pages
//     cannot be evicted, unpinned pages are recycled LRU-first when the
//     resident budget is hit;
//   - when every slot is pinned, acquire() blocks until a pin drops — the
//     backpressure that keeps the scan frontier from outrunning the budget;
//   - every page is stored with up to `halo_bytes` of *preceding* corpus
//     bytes in front of its payload, so a chunk scanner can run the PaREM
//     warm-up protocol (engines read synchronization_bound()-1 bytes before
//     a chunk) without ever touching a neighboring page.
//
// Progress guarantee: callers that hold at most one pin each and release it
// before acquiring the next page can always make progress as long as the
// resident budget is at least the number of concurrent callers (the scan
// layer validates this; dna/prefetch_reader.hpp clamps its ring accordingly).
//
// CacheStats separates the two costs an out-of-core scan pays — time spent
// *reading* pages (load_seconds, charged to whoever loads) and time a
// consumer spent *waiting* for a page it needed now (cold_stall_seconds) —
// so the bench can measure how much IO a prefetcher actually hides.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "dna/generator.hpp"
#include "util/aligned_buffer.hpp"
#include "util/annotations.hpp"
#include "util/sync.hpp"

namespace hetopt::dna {

/// Source of corpus bytes for a PagedGenome. Implementations must be
/// thread-safe: the cache calls read() concurrently from pool workers and
/// the prefetch thread.
class PageSource {
 public:
  virtual ~PageSource() = default;

  /// Total corpus bytes.
  [[nodiscard]] virtual std::size_t size() const noexcept = 0;
  /// Fills out[0..n) with corpus bytes [offset, offset + n); the caller
  /// guarantees offset + n <= size().
  virtual void read(std::size_t offset, char* out, std::size_t n) const = 0;
  /// Human-readable provenance ("file:/path", "generator:seed=42", ...).
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// An in-memory corpus behind the paging interface — the oracle source for
/// the page-seam parity suites (the same bytes scanned both ways).
class BufferPageSource final : public PageSource {
 public:
  explicit BufferPageSource(std::string bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] std::size_t size() const noexcept override { return bytes_.size(); }
  void read(std::size_t offset, char* out, std::size_t n) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  std::string bytes_;
};

/// A raw on-disk corpus (one byte per base, no records). FASTA inputs are
/// materialized to this shape first — see materialize_fasta_to_raw in
/// dna/fasta.hpp. Reads are served through one seekable stream under a
/// mutex: cold loads serialize on the device anyway, and the single-stream
/// shape keeps the source trivially thread-safe.
class FilePageSource final : public PageSource {
 public:
  /// Opens `path`; throws std::runtime_error when the file cannot be opened.
  explicit FilePageSource(std::string path);

  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  void read(std::size_t offset, char* out, std::size_t n) const override;
  [[nodiscard]] std::string describe() const override { return "file:" + path_; }

 private:
  std::string path_;
  std::size_t size_ = 0;
  mutable util::Mutex mutex_;
  mutable std::ifstream file_ HETOPT_GUARDED_BY(mutex_);
};

/// The deterministic generator as a page source: a corpus that never exists
/// in full anywhere. Content is produced in fixed 64 KiB blocks, each seeded
/// independently from (seed, block index), so reading any byte range costs
/// O(range) regardless of position — the out-of-core contract. The price is
/// Markov-chain continuity across block boundaries (irrelevant for matching:
/// the transition structure restarts, the alphabet does not). Motifs are
/// planted at deterministic non-overlapping positions inside each block.
/// Deterministic in (params, seed, motifs, copies_per_block).
class GeneratorPageSource final : public PageSource {
 public:
  static constexpr std::size_t kBlockBytes = std::size_t{64} << 10;
  static constexpr std::size_t kNoBlock = static_cast<std::size_t>(-1);

  GeneratorPageSource(std::size_t size, std::uint64_t seed, MarkovParams params = {},
                      std::vector<std::string> motifs = {},
                      std::size_t copies_per_block = 0);

  [[nodiscard]] std::size_t size() const noexcept override { return size_; }
  void read(std::size_t offset, char* out, std::size_t n) const override;
  [[nodiscard]] std::string describe() const override;

 private:
  /// Generates block `index` in full (content of bytes
  /// [index * kBlockBytes, ...)), motifs planted.
  [[nodiscard]] std::string make_block(std::size_t index) const;

  GenomeGenerator generator_;
  std::size_t size_;
  std::uint64_t seed_;
  std::vector<std::string> motifs_;
  std::size_t copies_per_block_;
  // One-block cache: halo loads re-read the tail of the previous block, and
  // sequential paging revisits each block twice (payload, then the next
  // page's halo); caching the last materialized block makes those re-reads
  // a memcpy. Guarded — read() is called from workers and the prefetcher.
  mutable util::Mutex mutex_;
  mutable std::size_t cached_index_ HETOPT_GUARDED_BY(mutex_);
  mutable std::string cached_block_ HETOPT_GUARDED_BY(mutex_);
};

struct PagedGenomeOptions {
  /// Payload bytes per page.
  std::size_t page_bytes = std::size_t{1} << 20;
  /// Cache budget: pages resident at once. Must cover the maximum number of
  /// simultaneous pins (scan workers + prefetch ring) or acquire() blocks.
  std::size_t resident_pages = 8;
  /// Warm-up context stored before each page's payload. Must be at least
  /// the scanning engine's synchronization_bound() - 1 (the paged scan
  /// paths validate this).
  std::size_t halo_bytes = 63;
};

/// Cache telemetry. Counts are cumulative since construction (or the last
/// reset_stats()); the paged scan paths report per-run deltas.
struct CacheStats {
  std::uint64_t hits = 0;    // acquires served without waiting
  std::uint64_t loads = 0;   // pages read from the source
  std::uint64_t evictions = 0;
  /// Consumer acquires that had to wait for a load (their own or another
  /// thread's). Prefetch acquires never count: prefetching IS the load.
  std::uint64_t cold_stalls = 0;
  /// Acquires that waited for a pin to drop (budget full).
  std::uint64_t backpressure_waits = 0;
  std::uint64_t bytes_read = 0;
  double load_seconds = 0.0;        // time inside PageSource::read
  double cold_stall_seconds = 0.0;  // consumer wall time lost to cold pages
};

class PagedGenome {
 public:
  /// A pinned page: while any PageRef to a page is alive the page cannot be
  /// evicted and its bytes are stable. Move-only; unpins on destruction.
  class PageRef {
   public:
    PageRef() noexcept = default;
    PageRef(PageRef&& other) noexcept { *this = std::move(other); }
    PageRef& operator=(PageRef&& other) noexcept;
    PageRef(const PageRef&) = delete;
    PageRef& operator=(const PageRef&) = delete;
    ~PageRef() { release(); }

    [[nodiscard]] bool valid() const noexcept { return owner_ != nullptr; }
    [[nodiscard]] std::size_t page() const noexcept { return page_; }
    /// Global offset of the first payload byte.
    [[nodiscard]] std::size_t begin() const noexcept { return begin_; }
    [[nodiscard]] std::size_t end() const noexcept { return begin_ + view_.size() - halo_; }
    /// Context bytes stored before the payload (= corpus bytes
    /// [begin() - halo(), begin())).
    [[nodiscard]] std::size_t halo() const noexcept { return halo_; }
    /// halo + payload, i.e. corpus bytes [begin() - halo(), end()).
    [[nodiscard]] std::string_view view() const noexcept { return view_; }
    [[nodiscard]] std::string_view payload() const noexcept {
      return view_.substr(halo_);
    }

    /// Unpins early (idempotent).
    void release() noexcept;

   private:
    friend class PagedGenome;
    PageRef(PagedGenome* owner, std::size_t slot, std::size_t page, std::size_t begin,
            std::size_t halo, std::string_view view) noexcept
        : owner_(owner), slot_(slot), page_(page), begin_(begin), halo_(halo),
          view_(view) {}

    PagedGenome* owner_ = nullptr;
    std::size_t slot_ = 0;
    std::size_t page_ = 0;
    std::size_t begin_ = 0;
    std::size_t halo_ = 0;
    std::string_view view_;
  };

  /// Takes ownership of `source`. Throws std::invalid_argument on a null
  /// source, zero page_bytes, or zero resident_pages.
  explicit PagedGenome(std::unique_ptr<PageSource> source, PagedGenomeOptions options = {});

  PagedGenome(const PagedGenome&) = delete;
  PagedGenome& operator=(const PagedGenome&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t page_count() const noexcept { return page_count_; }
  [[nodiscard]] const PagedGenomeOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::string describe_source() const { return source_->describe(); }
  [[nodiscard]] std::size_t page_begin(std::size_t page) const noexcept {
    return page * options_.page_bytes;
  }
  [[nodiscard]] std::size_t page_payload_bytes(std::size_t page) const noexcept;

  /// Pins page `page`, loading it if cold; blocks while the budget is
  /// exhausted (every slot pinned or loading). Throws std::out_of_range on
  /// an invalid index; exceptions from the source propagate (the slot is
  /// returned to the free pool).
  [[nodiscard]] PageRef acquire(std::size_t page);
  /// Same, but accounted as prefetch: a load here is the IO the background
  /// reader is hiding, never a cold stall. `cancel` (optional) makes the
  /// blocking waits cooperative: when the flag turns true — pair the store
  /// with wake_waiters() — an acquire that is still waiting gives up and
  /// returns an invalid PageRef instead of a pin. This is how a prefetch
  /// thread stuck behind backpressure shuts down cleanly.
  [[nodiscard]] PageRef acquire_prefetch(std::size_t page,
                                         const std::atomic<bool>* cancel = nullptr);

  /// Wakes every blocked acquire so it re-checks its cancel flag (and the
  /// cache state). Call after storing true into a flag passed to
  /// acquire_prefetch.
  void wake_waiters();

  /// Pages currently resident (racy snapshot).
  [[nodiscard]] std::size_t resident_pages() const;
  [[nodiscard]] CacheStats stats() const;
  void reset_stats();

 private:
  static constexpr std::size_t kNoPage = static_cast<std::size_t>(-1);

  struct Slot {
    std::size_t page = kNoPage;
    util::AlignedBuffer<char> bytes;  // halo + payload
    std::size_t halo = 0;
    std::size_t pins = 0;
    std::uint64_t last_use = 0;
    bool loading = false;
  };

  [[nodiscard]] PageRef acquire_impl(std::size_t page, bool prefetch,
                                     const std::atomic<bool>* cancel);
  /// A free or evictable (unpinned, not loading) slot; kNoPage when none.
  [[nodiscard]] std::size_t pick_slot_locked() HETOPT_REQUIRES(mutex_);
  void unpin(std::size_t slot) noexcept;

  std::unique_ptr<PageSource> source_;
  PagedGenomeOptions options_;
  std::size_t size_ = 0;
  std::size_t page_count_ = 0;

  mutable util::Mutex mutex_;
  util::CondVar cv_;  // signaled on load completion and pin release
  std::vector<Slot> slots_ HETOPT_GUARDED_BY(mutex_);
  /// slot_of_[p] = slot holding page p, or kNoPage. Dense: page_count_ is
  /// bounded by corpus/page_bytes, and one std::size_t per page is noise
  /// next to the pages themselves.
  std::vector<std::size_t> slot_of_ HETOPT_GUARDED_BY(mutex_);
  std::uint64_t tick_ HETOPT_GUARDED_BY(mutex_) = 0;
  CacheStats stats_ HETOPT_GUARDED_BY(mutex_);
};

}  // namespace hetopt::dna
