#include "dna/generator.hpp"

#include <algorithm>
#include <stdexcept>

namespace hetopt::dna {

GenomeGenerator::GenomeGenerator(MarkovParams params) : params_(params) {
  if (params_.gc_content <= 0.0 || params_.gc_content >= 1.0) {
    throw std::invalid_argument("GenomeGenerator: gc_content must be in (0,1)");
  }
  if (params_.autocorrelation < 0.0 || params_.autocorrelation >= 1.0) {
    throw std::invalid_argument("GenomeGenerator: autocorrelation must be in [0,1)");
  }
  if (params_.cpg_suppression <= 0.0 || params_.cpg_suppression > 1.0) {
    throw std::invalid_argument("GenomeGenerator: cpg_suppression must be in (0,1]");
  }

  // Base composition: GC split evenly between G and C, AT between A and T.
  stationary_ = {(1.0 - params_.gc_content) / 2.0, params_.gc_content / 2.0,
                 params_.gc_content / 2.0, (1.0 - params_.gc_content) / 2.0};

  // Row i: (1 - rho) * stationary + rho * delta_i, then CpG suppression on
  // P(G | C), then renormalize each row.
  const double rho = params_.autocorrelation;
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      matrix_[i][j] = (1.0 - rho) * stationary_[j] + (i == j ? rho : 0.0);
    }
  }
  constexpr auto C = static_cast<std::size_t>(Base::C);
  constexpr auto G = static_cast<std::size_t>(Base::G);
  matrix_[C][G] *= params_.cpg_suppression;
  for (auto& row : matrix_) {
    double sum = 0.0;
    for (double v : row) sum += v;
    for (double& v : row) v /= sum;
  }
}

std::string GenomeGenerator::generate(std::size_t length, std::uint64_t seed) const {
  std::string out;
  out.resize(length);
  if (length == 0) return out;

  util::Xoshiro256 rng(seed);

  // First base from the stationary distribution.
  const auto sample = [&rng](const std::array<double, 4>& probs) {
    const double u = rng.uniform();
    double acc = 0.0;
    for (std::size_t j = 0; j < 4; ++j) {
      acc += probs[j];
      if (u < acc) return j;
    }
    return static_cast<std::size_t>(3);
  };

  std::size_t prev = sample(stationary_);
  out[0] = kBaseChars[prev];
  for (std::size_t i = 1; i < length; ++i) {
    prev = sample(matrix_[prev]);
    out[i] = kBaseChars[prev];
  }
  return out;
}

Sequence GenomeGenerator::generate_with_motifs(std::string name, std::size_t length,
                                               std::uint64_t seed,
                                               const std::vector<PlantedMotif>& motifs) const {
  std::string bases = generate(length, seed);
  util::Xoshiro256 rng(util::hash_combine(seed, 0x706c616e74ULL));  // "plant"

  // Track occupied intervals so planted copies never overlap each other.
  std::vector<std::pair<std::size_t, std::size_t>> used;  // [start, end)
  const auto overlaps = [&used](std::size_t start, std::size_t end) {
    return std::any_of(used.begin(), used.end(), [&](const auto& iv) {
      return start < iv.second && iv.first < end;
    });
  };

  for (const auto& motif : motifs) {
    if (motif.pattern.empty() || motif.pattern.size() > length) {
      throw std::invalid_argument("generate_with_motifs: motif '" + motif.pattern +
                                  "' does not fit in sequence of length " +
                                  std::to_string(length));
    }
    for (char c : motif.pattern) {
      if (!base_from_char(c)) {
        throw std::invalid_argument("generate_with_motifs: motif must be plain ACGT, got '" +
                                    motif.pattern + "'");
      }
    }
    const std::size_t span = motif.pattern.size();
    for (std::size_t k = 0; k < motif.occurrences; ++k) {
      bool placed = false;
      for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
        const auto start = static_cast<std::size_t>(rng.bounded(length - span + 1));
        if (overlaps(start, start + span)) continue;
        std::copy(motif.pattern.begin(), motif.pattern.end(), bases.begin() + static_cast<std::ptrdiff_t>(start));
        used.emplace_back(start, start + span);
        placed = true;
      }
      // Best effort: extremely dense planting may fail to find a slot.
    }
  }
  return Sequence(std::move(name), std::move(bases));
}

}  // namespace hetopt::dna
