// A DNA sequence: a named, validated string of A/C/G/T characters.
// Physically small (MBs) in tests/examples; the simulator reasons about
// *logical* sizes (GBs) separately via GenomeInfo.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "dna/alphabet.hpp"

namespace hetopt::dna {

class Sequence {
 public:
  Sequence() = default;
  /// Validates that `bases` contains only ACGT (case-insensitive; stored
  /// upper-case). Throws std::invalid_argument otherwise.
  Sequence(std::string name, std::string bases);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& bases() const noexcept { return bases_; }
  [[nodiscard]] std::string_view view() const noexcept { return bases_; }
  [[nodiscard]] std::size_t size() const noexcept { return bases_.size(); }
  [[nodiscard]] bool empty() const noexcept { return bases_.empty(); }
  [[nodiscard]] char operator[](std::size_t i) const noexcept { return bases_[i]; }

  /// Contiguous sub-range [offset, offset+length); clamps to the end.
  [[nodiscard]] std::string_view slice(std::size_t offset, std::size_t length) const noexcept;

  /// Fraction of G/C bases in [0,1]; 0 for empty sequences.
  [[nodiscard]] double gc_content() const noexcept;

  /// Per-base counts in A,C,G,T order.
  [[nodiscard]] std::array<std::size_t, kAlphabetSize> base_counts() const noexcept;

 private:
  std::string name_;
  std::string bases_;
};

}  // namespace hetopt::dna
