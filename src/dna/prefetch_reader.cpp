#include "dna/prefetch_reader.hpp"

#include <algorithm>

namespace hetopt::dna {

PrefetchReader::PrefetchReader(PagedGenome& genome, std::size_t first_page,
                               std::size_t last_page, std::size_t depth)
    : genome_(genome), first_page_(first_page),
      last_page_(std::min(last_page, genome.page_count())),
      // The ring alone must never pin the whole budget (resident_pages >= 1
      // is a construction invariant of the genome).
      depth_(std::min(depth, genome.options().resident_pages - 1)),
      frontier_(first_page) {
  if (depth_ > 0 && first_page_ < last_page_) {
    thread_ = std::thread([this] { fetch_loop(); });
  }
}

void PrefetchReader::publish(std::size_t page) {
  {
    const util::MutexLock lock(mutex_);
    if (page <= frontier_) return;
    frontier_ = page;
  }
  cv_.notify_all();
}

void PrefetchReader::stop() {
  cancel_.store(true, std::memory_order_release);
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // The fetch thread may be blocked inside the *cache* (backpressure or a
  // load in flight); nudge those waiters so the cancel flag is seen.
  genome_.wake_waiters();
  if (thread_.joinable()) thread_.join();
}

PrefetchStats PrefetchReader::stats() const {
  const util::MutexLock lock(mutex_);
  return stats_;
}

void PrefetchReader::fetch_loop() {
  // The ring: pinned pages in [frontier, frontier + depth), ascending. Local
  // to the fetch thread; pins drop as the consumer passes them and all at
  // once when the loop exits (stop or completion).
  std::deque<PagedGenome::PageRef> ring;
  std::size_t next = first_page_;
  for (;;) {
    std::size_t frontier = 0;
    {
      util::MutexLock lock(mutex_);
      for (;;) {
        if (stopping_) return;
        // Chase the frontier: when the consumers outran the ring, fetching
        // the pages they already passed would re-load the corpus behind
        // them (they are evicted or about to be) — skip straight ahead.
        if (next < frontier_) next = frontier_;
        if (next < std::min(frontier_ + depth_, last_page_)) break;
        if (next < last_page_) ++stats_.ring_full_waits;
        cv_.wait(mutex_);
      }
      frontier = frontier_;
    }
    // Pages the consumer has passed leave the ring (they stay resident
    // until the LRU needs their slot — dropping the pin only makes them
    // evictable again).
    while (!ring.empty() && ring.front().page() < frontier) ring.pop_front();
    // May block on backpressure; stop() cancels the wait through the flag.
    auto ref = genome_.acquire_prefetch(next, &cancel_);
    if (!ref.valid()) return;  // canceled while waiting
    ring.push_back(std::move(ref));
    ++next;
    const util::MutexLock lock(mutex_);
    ++stats_.pages_prefetched;
  }
}

}  // namespace hetopt::dna
