#include "dna/alphabet.hpp"

#include <cctype>
#include <stdexcept>

namespace hetopt::dna {

std::optional<Base> base_from_char(char c) noexcept {
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return Base::A;
    case 'C': return Base::C;
    case 'G': return Base::G;
    case 'T': return Base::T;
    default: return std::nullopt;
  }
}

std::optional<BaseSet> iupac_from_char(char c) noexcept {
  constexpr std::uint8_t A = 1, C = 2, G = 4, T = 8;
  switch (std::toupper(static_cast<unsigned char>(c))) {
    case 'A': return BaseSet(A);
    case 'C': return BaseSet(C);
    case 'G': return BaseSet(G);
    case 'T': case 'U': return BaseSet(T);
    case 'R': return BaseSet(A | G);   // puRine
    case 'Y': return BaseSet(C | T);   // pYrimidine
    case 'S': return BaseSet(C | G);   // Strong
    case 'W': return BaseSet(A | T);   // Weak
    case 'K': return BaseSet(G | T);   // Keto
    case 'M': return BaseSet(A | C);   // aMino
    case 'B': return BaseSet(C | G | T);
    case 'D': return BaseSet(A | G | T);
    case 'H': return BaseSet(A | C | T);
    case 'V': return BaseSet(A | C | G);
    case 'N': return BaseSet::all();
    default: return std::nullopt;
  }
}

std::string validate_motif(std::string_view motif) {
  if (motif.empty()) return "motif is empty";
  for (std::size_t i = 0; i < motif.size(); ++i) {
    if (!iupac_from_char(motif[i])) {
      return "invalid IUPAC character '" + std::string(1, motif[i]) + "' at position " +
             std::to_string(i);
    }
  }
  return {};
}

std::string reverse_complement(std::string_view seq) {
  std::string out;
  out.reserve(seq.size());
  for (auto it = seq.rbegin(); it != seq.rend(); ++it) {
    const auto b = base_from_char(*it);
    if (!b) {
      throw std::invalid_argument("reverse_complement: invalid base '" +
                                  std::string(1, *it) + "'");
    }
    out.push_back(to_char(complement(*b)));
  }
  return out;
}

}  // namespace hetopt::dna
