// Synthetic genome generation.
//
// The paper uses real GenBank genomes (human 3.17 GB, mouse 2.77 GB,
// cat 2.43 GB, dog 2.38 GB) which we cannot ship. We substitute an order-1
// Markov base generator whose stationary composition and transition
// structure are parameterised per organism, plus optional motif planting so
// pattern-matching examples find a controllable number of hits.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dna/sequence.hpp"
#include "util/rng.hpp"

namespace hetopt::dna {

/// Parameters of the order-1 Markov chain over {A,C,G,T}.
struct MarkovParams {
  /// Target GC fraction in (0,1).
  double gc_content = 0.41;
  /// Dinucleotide "stickiness" in [0,1): probability mass added to
  /// self-transitions (runs of the same base), as real genomes are not iid.
  double autocorrelation = 0.15;
  /// CpG suppression factor in (0,1]: multiplies P(G | C), mimicking the
  /// well-known CpG depletion of vertebrate genomes.
  double cpg_suppression = 0.25;
};

/// A motif to plant into a generated sequence.
struct PlantedMotif {
  std::string pattern;       // plain ACGT (instantiated, not IUPAC)
  std::size_t occurrences;   // how many copies to plant
};

/// Generates reproducible synthetic DNA.
class GenomeGenerator {
 public:
  explicit GenomeGenerator(MarkovParams params = {});

  /// The row-stochastic 4x4 transition matrix implied by the parameters.
  [[nodiscard]] const std::array<std::array<double, 4>, 4>& transition_matrix()
      const noexcept {
    return matrix_;
  }

  /// Generates `length` bases; deterministic in (params, seed).
  [[nodiscard]] std::string generate(std::size_t length, std::uint64_t seed) const;

  /// Generates a sequence and plants the given motifs at non-overlapping
  /// uniformly random positions (best effort: skips a copy if no free slot is
  /// found after a bounded number of tries). Throws if a motif is longer than
  /// the sequence or not plain ACGT.
  [[nodiscard]] Sequence generate_with_motifs(std::string name, std::size_t length,
                                              std::uint64_t seed,
                                              const std::vector<PlantedMotif>& motifs) const;

 private:
  MarkovParams params_;
  std::array<std::array<double, 4>, 4> matrix_{};
  std::array<double, 4> stationary_{};
};

}  // namespace hetopt::dna
