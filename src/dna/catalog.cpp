#include "dna/catalog.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace hetopt::dna {

GenomeCatalog::GenomeCatalog() {
  // Logical sizes follow the paper: human 3.17 GB, mouse 2.77 GB,
  // cat 2.43 GB, dog 2.38 GB (Section IV-A). GC contents are the published
  // genome-wide averages for these organisms (approximate).
  const auto mk = [](std::string name, double mb, double gc) {
    GenomeInfo info;
    info.seed = util::hash_string(name);
    info.name = std::move(name);
    info.size_mb = mb;
    info.markov.gc_content = gc;
    return info;
  };
  genomes_.push_back(mk("human", 3170.0, 0.41));
  genomes_.push_back(mk("mouse", 2770.0, 0.42));
  genomes_.push_back(mk("cat", 2430.0, 0.42));
  genomes_.push_back(mk("dog", 2380.0, 0.41));
}

const GenomeInfo& GenomeCatalog::get(std::string_view name) const {
  for (const auto& g : genomes_) {
    if (g.name == name) return g;
  }
  throw std::out_of_range("GenomeCatalog: unknown organism '" + std::string(name) + "'");
}

Sequence GenomeCatalog::materialize(std::string_view name, std::size_t physical_bytes,
                                    const std::vector<PlantedMotif>& motifs) const {
  const GenomeInfo& info = get(name);
  const GenomeGenerator gen(info.markov);
  return gen.generate_with_motifs(info.name, physical_bytes, info.seed, motifs);
}

}  // namespace hetopt::dna
