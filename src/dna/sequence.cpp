#include "dna/sequence.hpp"

#include <cctype>
#include <stdexcept>

namespace hetopt::dna {

Sequence::Sequence(std::string name, std::string bases)
    : name_(std::move(name)), bases_(std::move(bases)) {
  for (std::size_t i = 0; i < bases_.size(); ++i) {
    const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(bases_[i])));
    if (!base_from_char(upper)) {
      throw std::invalid_argument("Sequence '" + name_ + "': invalid base '" +
                                  std::string(1, bases_[i]) + "' at position " +
                                  std::to_string(i));
    }
    bases_[i] = upper;
  }
}

std::string_view Sequence::slice(std::size_t offset, std::size_t length) const noexcept {
  if (offset >= bases_.size()) return {};
  return std::string_view(bases_).substr(offset, length);
}

double Sequence::gc_content() const noexcept {
  if (bases_.empty()) return 0.0;
  std::size_t gc = 0;
  for (char c : bases_) gc += (c == 'G' || c == 'C') ? 1U : 0U;
  return static_cast<double>(gc) / static_cast<double>(bases_.size());
}

std::array<std::size_t, kAlphabetSize> Sequence::base_counts() const noexcept {
  std::array<std::size_t, kAlphabetSize> counts{};
  for (char c : bases_) {
    if (const auto b = base_from_char(c)) ++counts[static_cast<std::size_t>(*b)];
  }
  return counts;
}

}  // namespace hetopt::dna
