#include "dna/fasta.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "util/rng.hpp"

namespace hetopt::dna {

void write_fasta(std::ostream& os, const std::vector<Sequence>& seqs,
                 std::size_t line_width) {
  if (line_width == 0) throw std::invalid_argument("write_fasta: line_width == 0");
  for (const auto& seq : seqs) {
    os << '>' << seq.name() << '\n';
    const std::string& b = seq.bases();
    for (std::size_t i = 0; i < b.size(); i += line_width) {
      os.write(b.data() + i, static_cast<std::streamsize>(std::min(line_width, b.size() - i)));
      os << '\n';
    }
  }
}

std::vector<Sequence> read_fasta(std::istream& is, AmbiguityPolicy policy) {
  std::vector<Sequence> out;
  std::string name;
  std::string bases;
  util::Xoshiro256 rng(0xFA57Aull);

  const auto flush = [&] {
    if (!name.empty() || !bases.empty()) {
      out.emplace_back(name.empty() ? "unnamed" : name, std::move(bases));
      bases.clear();
    }
  };

  std::string line;
  while (std::getline(is, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      flush();
      name = line.substr(1);
      // Keep only the first whitespace-delimited token as the record name.
      const std::size_t ws = name.find_first_of(" \t");
      if (ws != std::string::npos) name.resize(ws);
      continue;
    }
    for (char c : line) {
      const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
      if (base_from_char(upper)) {
        bases.push_back(upper);
      } else {
        switch (policy) {
          case AmbiguityPolicy::kReject:
            throw std::invalid_argument("read_fasta: non-ACGT base '" + std::string(1, c) +
                                        "' in record '" + name + "'");
          case AmbiguityPolicy::kSkip:
            break;
          case AmbiguityPolicy::kRandomize:
            bases.push_back(kBaseChars[rng.bounded(kAlphabetSize)]);
            break;
        }
      }
    }
  }
  flush();
  return out;
}

void FastaStreamDecoder::feed(std::string_view block, std::string& out) {
  for (const char c : block) {
    if (c == '\n') {
      in_header_ = false;
      at_line_start_ = true;
      continue;
    }
    if (c == '\r') continue;  // CRLF line breaks: the '\n' resets state
    if (at_line_start_ && c == '>') {
      in_header_ = true;
      ++records_;
      at_line_start_ = false;
      continue;
    }
    at_line_start_ = false;
    if (in_header_) continue;
    const char upper = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    if (base_from_char(upper)) {
      out.push_back(upper);
      continue;
    }
    switch (policy_) {
      case AmbiguityPolicy::kReject:
        throw std::invalid_argument("FastaStreamDecoder: non-ACGT base '" +
                                    std::string(1, c) + "'");
      case AmbiguityPolicy::kSkip:
        break;
      case AmbiguityPolicy::kRandomize:
        out.push_back(kBaseChars[rng_.bounded(kAlphabetSize)]);
        break;
    }
  }
}

std::size_t materialize_fasta_to_raw(std::istream& in, std::ostream& out,
                                     AmbiguityPolicy policy, std::size_t block_bytes) {
  if (block_bytes == 0) {
    throw std::invalid_argument("materialize_fasta_to_raw: block_bytes == 0");
  }
  FastaStreamDecoder decoder(policy);
  std::string block(block_bytes, '\0');
  std::string decoded;
  std::size_t written = 0;
  while (in) {
    in.read(block.data(), static_cast<std::streamsize>(block.size()));
    const auto got = static_cast<std::size_t>(in.gcount());
    if (got == 0) break;
    decoded.clear();
    decoder.feed(std::string_view(block.data(), got), decoded);
    out.write(decoded.data(), static_cast<std::streamsize>(decoded.size()));
    written += decoded.size();
  }
  return written;
}

}  // namespace hetopt::dna
