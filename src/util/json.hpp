// Minimal streaming JSON writer for the bench pipeline's machine-readable
// BENCH_*.json output. No external dependency, no DOM: callers emit objects
// and arrays in order and the writer handles commas, quoting, escaping and
// number formatting. Nesting is validated (unbalanced or misplaced calls
// throw std::logic_error), so a completed writer always holds valid JSON.
#pragma once

#include <concepts>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace hetopt::util {

/// Escapes `s` for inclusion inside a JSON string literal (adds no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next member; only valid directly inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);  // non-finite values are emitted as null
  JsonWriter& value(bool v);
  /// Any integer type (int, std::size_t, std::uint64_t, ...). A single
  /// constrained template avoids the size_t-vs-uint64_t overload ambiguity
  /// on platforms where they are distinct types.
  template <typename T>
    requires(std::integral<T> && !std::same_as<T, bool>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) return signed_value(static_cast<std::int64_t>(v));
    else return unsigned_value(static_cast<std::uint64_t>(v));
  }
  JsonWriter& null();

  /// Convenience: key(name).value(v).
  template <typename T>
  JsonWriter& member(std::string_view name, const T& v) {
    key(name);
    return value(v);
  }

  /// The finished document. Throws std::logic_error while containers are
  /// still open or nothing has been written.
  [[nodiscard]] const std::string& str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  JsonWriter& signed_value(std::int64_t v);
  JsonWriter& unsigned_value(std::uint64_t v);
  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_members_;  // parallel to stack_
  bool key_pending_ = false;
  bool done_ = false;
};

}  // namespace hetopt::util
