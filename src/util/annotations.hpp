// Clang thread-safety-analysis annotations (no-ops everywhere else).
//
// `clang++ -Wthread-safety` is a *static* race detector: it proves, at
// compile time and for every interleaving, that data marked as guarded is
// only touched with its lock held — the compile-time complement to the
// TSan CI job, which can only observe the interleavings a run happens to
// take. GCC has no such analysis, so every macro below expands to nothing
// there and the annotated code is byte-identical on both compilers.
//
// The analysis only understands *annotated* capability types; the plain
// libstdc++ std::mutex carries no attributes. util/sync.hpp provides the
// annotated wrappers (util::Mutex, util::MutexLock, util::CondVar) that
// all concurrent hetopt code locks with. Conventions for new code are in
// docs/ARCHITECTURE.md ("Analysis gates").
//
// Macro reference (mirrors the canonical mutex.h from the clang docs):
//   HETOPT_CAPABILITY(name)      class is a lockable capability
//   HETOPT_SCOPED_CAPABILITY     RAII class that acquires in ctor / releases in dtor
//   HETOPT_GUARDED_BY(mu)        member may only be touched while holding mu
//   HETOPT_PT_GUARDED_BY(mu)     pointee may only be touched while holding mu
//   HETOPT_REQUIRES(mu)          caller must already hold mu
//   HETOPT_ACQUIRE(mu)           function acquires mu and does not release it
//   HETOPT_RELEASE(mu)           function releases mu
//   HETOPT_TRY_ACQUIRE(ok, mu)   function acquires mu iff it returns `ok`
//   HETOPT_EXCLUDES(mu)          caller must NOT hold mu (non-reentrancy)
//   HETOPT_ACQUIRED_BEFORE(mu)   lock-ordering declaration between mutexes
//   HETOPT_ACQUIRED_AFTER(mu)
//   HETOPT_RETURN_CAPABILITY(mu) function returns a reference to mu
//   HETOPT_NO_THREAD_SAFETY_ANALYSIS  escape hatch; justify in a comment
#pragma once

#if defined(__clang__)
#define HETOPT_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HETOPT_THREAD_ANNOTATION(x)
#endif

#define HETOPT_CAPABILITY(x) HETOPT_THREAD_ANNOTATION(capability(x))
#define HETOPT_SCOPED_CAPABILITY HETOPT_THREAD_ANNOTATION(scoped_lockable)
#define HETOPT_GUARDED_BY(x) HETOPT_THREAD_ANNOTATION(guarded_by(x))
#define HETOPT_PT_GUARDED_BY(x) HETOPT_THREAD_ANNOTATION(pt_guarded_by(x))
#define HETOPT_REQUIRES(...) HETOPT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HETOPT_ACQUIRE(...) HETOPT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HETOPT_RELEASE(...) HETOPT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define HETOPT_TRY_ACQUIRE(...) HETOPT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define HETOPT_EXCLUDES(...) HETOPT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define HETOPT_ACQUIRED_BEFORE(...) HETOPT_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define HETOPT_ACQUIRED_AFTER(...) HETOPT_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define HETOPT_RETURN_CAPABILITY(x) HETOPT_THREAD_ANNOTATION(lock_returned(x))
#define HETOPT_NO_THREAD_SAFETY_ANALYSIS HETOPT_THREAD_ANNOTATION(no_thread_safety_analysis)
