#include "util/cli.hpp"

#include "util/strings.hpp"

namespace hetopt::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!starts_with(arg, "--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      flags_.emplace(std::string(arg), std::string(argv[++i]));
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

bool CliArgs::has(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

std::string CliArgs::get(std::string_view name, std::string fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::move(fallback) : it->second;
}

double CliArgs::get(std::string_view name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : parse_double(it->second);
}

std::int64_t CliArgs::get(std::string_view name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : parse_int(it->second);
}

}  // namespace hetopt::util
