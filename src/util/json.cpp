#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace hetopt::util {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) {
    if (!out_.empty()) throw std::logic_error("JsonWriter: multiple top-level values");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    if (!key_pending_) throw std::logic_error("JsonWriter: object member needs a key");
    key_pending_ = false;
  } else {
    if (has_members_.back()) out_ += ',';
    has_members_.back() = true;
  }
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_ || stack_.empty() || stack_.back() != Scope::kObject) {
    throw std::logic_error("JsonWriter: key() outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: consecutive keys");
  if (has_members_.back()) out_ += ',';
  has_members_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Scope::kObject || key_pending_) {
    throw std::logic_error("JsonWriter: unbalanced end_object()");
  }
  out_ += '}';
  stack_.pop_back();
  has_members_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_members_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: unbalanced end_array()");
  }
  out_ += ']';
  stack_.pop_back();
  has_members_.pop_back();
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    out_ += buf;
  }
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::signed_value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::unsigned_value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_ || !stack_.empty()) {
    throw std::logic_error("JsonWriter: document incomplete");
  }
  return out_;
}

}  // namespace hetopt::util
