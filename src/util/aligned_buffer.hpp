#pragma once

// 64-byte-aligned dynamic array.
//
// std::vector's allocator aligns to alignof(T) — for the scan kernels' hot
// tables (CompiledDfa's fused byte table, the matcher's per-chunk scratch)
// that means cache lines and vector loads straddle boundaries at the
// allocator's whim. AlignedBuffer guarantees the storage starts on a cache
// line (which is also every SSE/AVX alignment), so aligned SIMD loads are
// always legal on its data() and the tables never split a line they don't
// have to.
//
// Deliberately minimal: sized construction, assign-and-fill, grow-only
// resize, element access. No push_back/insert — the kernels size their
// tables once and index into them.

#include <algorithm>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>

namespace hetopt::util {

template <typename T>
class AlignedBuffer {
 public:
  static constexpr std::size_t kAlignment = 64;
  static_assert(alignof(T) <= kAlignment, "element over-aligned past a cache line");

  AlignedBuffer() noexcept = default;
  explicit AlignedBuffer(std::size_t n, const T& value = T()) { assign(n, value); }

  AlignedBuffer(const AlignedBuffer& other) {
    reallocate(other.size_);
    std::uninitialized_copy_n(other.data(), other.size_, data_);
    size_ = other.size_;
  }
  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) {
      AlignedBuffer copy(other);
      swap(copy);
    }
    return *this;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      destroy();
      swap(other);
    }
    return *this;
  }
  ~AlignedBuffer() { destroy(); }

  /// Discards the contents and refills with `n` copies of `value` —
  /// the vector::assign shape the table builders use.
  void assign(std::size_t n, const T& value) {
    destroy();
    reallocate(n);
    std::uninitialized_fill_n(data_, n, value);
    size_ = n;
  }

  /// Grows to `n` elements, preserving the existing prefix (shrink requests
  /// keep the buffer as-is: the scratch user sizes for the largest run and
  /// reuses element capacity across runs). New elements are value-built.
  void resize(std::size_t n) {
    if (n <= size_) return;
    if (n <= capacity_) {
      for (; size_ < n; ++size_) ::new (static_cast<void*>(data_ + size_)) T();
      return;
    }
    AlignedBuffer grown;
    grown.reallocate(n);
    std::uninitialized_move_n(data_, size_, grown.data_);
    grown.size_ = size_;
    for (; grown.size_ < n; ++grown.size_) {
      ::new (static_cast<void*>(grown.data_ + grown.size_)) T();
    }
    destroy();
    swap(grown);
  }

  [[nodiscard]] T* data() noexcept { return data_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
    std::swap(capacity_, other.capacity_);
  }

  friend bool operator==(const AlignedBuffer& a, const AlignedBuffer& b) {
    return a.size_ == b.size_ && std::equal(a.begin(), a.end(), b.begin());
  }

 private:
  void reallocate(std::size_t n) {
    data_ = n == 0 ? nullptr
                   : static_cast<T*>(::operator new(n * sizeof(T),
                                                    std::align_val_t{kAlignment}));
    capacity_ = n;
  }
  void destroy() noexcept {
    std::destroy_n(data_, size_);
    if (data_ != nullptr) {
      ::operator delete(data_, std::align_val_t{kAlignment});
    }
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace hetopt::util
